#!/bin/sh
# checkdocs.sh — fail if an exported top-level declaration in the root
# package (the public API in taskgraph.go and siblings) lacks a doc
# comment. Deliberately a simple textual check: it looks at lines
# starting with `func`, `type`, `var`, or `const` followed by an
# exported identifier and requires the preceding line to be a comment.
# Members of grouped `type (...)` / `const (...)` blocks are documented
# inline and are out of scope here; go vet covers their syntax.
set -eu
cd "$(dirname "$0")/.."
fail=0
for f in ./*.go; do
    case "$f" in
    *_test.go) continue ;;
    esac
    out=$(awk '
        prev !~ /^\/\// && /^(func|type|var|const) [A-Z]/ {
            printf "%s:%d: undocumented exported declaration: %s\n", FILENAME, FNR, $0
        }
        { prev = $0 }
    ' "$f")
    if [ -n "$out" ]; then
        echo "$out"
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "checkdocs: add doc comments to the declarations above" >&2
fi
exit "$fail"
