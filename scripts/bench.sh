#!/usr/bin/env bash
# bench.sh — run the tier-1 scheduling benchmarks and record the result
# as one point of the repository's performance trajectory.
#
# Usage:
#   scripts/bench.sh [-quick] [-out FILE] [-bench REGEX] [-baseline FILE]
#
#   -quick          one iteration, one count: a smoke run that proves the
#                   benchmarks build and execute (used by CI; timings are
#                   not meaningful)
#   -out FILE       write the JSON report here (default: stdout)
#   -bench REGEX    benchmark selector (default: the Table 6 end-to-end
#                   run, the per-algorithm kernels, and the execution
#                   simulator's Monte-Carlo benchmark)
#   -baseline FILE  embed an earlier report produced by this script as
#                   the "baseline" field, for before/after records
#
# The committed BENCH_<n>.json files are successive outputs of this
# script; see docs/performance.md for how to read them.
set -eu -o pipefail
cd "$(dirname "$0")/.."

bench='BenchmarkTable6RunningTimes|BenchmarkAlgorithm/|BenchmarkSimMonteCarlo|BenchmarkComponents|BenchmarkAdversarialGeneration|BenchmarkFaultMonteCarlo|BenchmarkScalingLadder|BenchmarkObsOverhead'
benchtime=2x
count=3
out=""
baseline=""
while [ $# -gt 0 ]; do
    case "$1" in
    -quick)
        benchtime=1x
        count=1
        ;;
    -out | -bench | -baseline)
        if [ $# -lt 2 ]; then
            echo "bench.sh: $1 needs a value" >&2
            exit 2
        fi
        case "$1" in
        -out) out="$2" ;;
        -bench) bench="$2" ;;
        -baseline) baseline="$2" ;;
        esac
        shift
        ;;
    *)
        echo "bench.sh: unknown argument $1" >&2
        exit 2
        ;;
    esac
    shift
done

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
# -run '^$' skips all tests; only benchmarks execute. A build or
# benchmark failure fails the script (and the CI smoke job).
go test -run '^$' -bench "$bench" -benchtime "$benchtime" -count "$count" . | tee "$raw" >&2

report() {
    printf '{\n'
    printf '  "schema": "taskgraph-bench/v1",\n'
    printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "cpu": "%s",\n' "$(awk -F': *' '/^cpu:/{print $2; exit}' "$raw")"
    printf '  "benchtime": "%s",\n' "$benchtime"
    printf '  "count": %s,\n' "$count"
    printf '  "benchmarks": [\n'
    awk '
        /^Benchmark/ {
            name = $1
            sub(/-[0-9]+$/, "", name)
            iters = $2
            ns = $3
            # Any further "<value> <unit>" pairs (B/op, allocs/op, and
            # b.ReportMetric extras like tgb-slope) become extra fields.
            extra = ""
            for (i = 5; i + 1 <= NF; i += 2) {
                extra = extra sprintf(", \"%s\": %s", $(i + 1), $i)
            }
            if (seen[name]++) {
                runs[name] = runs[name] ", "
            } else {
                order[++n] = name
            }
            runs[name] = runs[name] sprintf("{\"iters\": %s, \"ns_per_op\": %s%s}", iters, ns, extra)
        }
        END {
            for (i = 1; i <= n; i++) {
                name = order[i]
                printf "    {\"name\": \"%s\", \"runs\": [%s]}%s\n", \
                    name, runs[name], (i < n ? "," : "")
            }
        }
    ' "$raw"
    if [ -n "$baseline" ]; then
        printf '  ],\n'
        printf '  "baseline":\n'
        sed 's/^/  /' "$baseline"
        printf '\n}\n'
    else
        printf '  ]\n}\n'
    fi
}

if [ -n "$out" ]; then
    report >"$out"
    echo "bench.sh: wrote $out" >&2
else
    report
fi
