// Package taskgraph is the public API of the reproduction of Kwok &
// Ahmad, "Benchmarking the Task Graph Scheduling Algorithms" (IPPS
// 1998). It exposes:
//
//   - the weighted-DAG task graph model (Builder, Graph) and its
//     scheduling attributes (levels, critical path, width);
//   - all 15 scheduling algorithms of the study, grouped into the
//     paper's BNP / UNC / APN classes;
//   - the processor-network model used by the APN class (Topology and
//     the standard interconnects);
//   - the exact branch-and-bound scheduler used to obtain optimal
//     solutions for small graphs;
//   - the benchmark-graph generator registry — the paper's five suites
//     plus the Canon et al. (2019) random families and traced kernels —
//     and the experiment harness that regenerates every table and
//     figure of the paper's evaluation, plus extension studies.
//
// # Quick start
//
//	b := taskgraph.NewBuilder()
//	t1 := b.AddNode(2)
//	t2 := b.AddNode(3)
//	b.AddEdge(t1, t2, 1) // t2 needs t1's data; costs 1 across processors
//	g, err := b.Build()
//	...
//	s, err := taskgraph.ScheduleBNP("MCP", g, 4)
//	fmt.Println(s.Length(), s.NSL())
//
// See the examples directory for runnable programs.
package taskgraph

import (
	"fmt"
	"io"

	"repro/internal/adversarial"
	"repro/internal/algo/apn"
	"repro/internal/algo/bnp"
	"repro/internal/algo/cs"
	"repro/internal/algo/param"
	"repro/internal/algo/tdb"
	"repro/internal/algo/unc"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/ft"
	"repro/internal/gen"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/optimal"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Core graph model, re-exported from the internal dag package.
type (
	// Graph is an immutable weighted task DAG.
	Graph = dag.Graph
	// Builder accumulates nodes and edges and produces a Graph.
	Builder = dag.Builder
	// NodeID identifies a node within one Graph.
	NodeID = dag.NodeID
	// Arc is one adjacency entry (neighbor and edge cost).
	Arc = dag.Arc
	// Levels bundles t-level, b-level, static-level, and ALAP arrays.
	Levels = dag.Levels
)

// Schedule models, re-exported.
type (
	// Schedule is a clique-model schedule (BNP and UNC classes).
	Schedule = sched.Schedule
	// APNSchedule is a task-and-message schedule on a Topology.
	APNSchedule = machine.Schedule
	// Topology is a processor interconnection network.
	Topology = machine.Topology
)

// NamedGraph pairs a benchmark graph with its provenance.
type NamedGraph = gen.NamedGraph

// DupSchedule is a duplication-based schedule in which a task may run on
// several processors (TDB class).
type DupSchedule = tdb.DupSchedule

// GraphStats summarizes the structural properties of a task graph.
type GraphStats = dag.Stats

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder { return dag.NewBuilder() }

// ReadGraph parses a graph from either exchange format, detecting the
// binary .tgb magic and falling back to the text .tg format.
func ReadGraph(r io.Reader) (*Graph, error) { return dag.ReadAny(r) }

// WriteGraph writes a graph in the text exchange format.
func WriteGraph(w io.Writer, g *Graph) error { return dag.WriteText(w, g) }

// WriteGraphBinary writes a graph in the compact binary .tgb format:
// a streaming varint-delta encoding roughly 3-4x smaller than the text
// form and decodable in one pass with a single graph allocation.
func WriteGraphBinary(w io.Writer, g *Graph) error { return dag.WriteBinary(w, g) }

// DOT renders a graph in Graphviz format.
func DOT(g *Graph, name string) string { return dag.DOT(g, name) }

// ComputeLevels returns the scheduling attributes of every node.
func ComputeLevels(g *Graph) *Levels { return dag.ComputeLevels(g) }

// CriticalPath returns one critical path of g.
func CriticalPath(g *Graph) []NodeID { return dag.CriticalPath(g) }

// CriticalPathLength returns the critical-path length of g.
func CriticalPathLength(g *Graph) int64 { return dag.CriticalPathLength(g) }

// Width returns the exact maximum number of mutually independent tasks.
func Width(g *Graph) int { return dag.Width(g) }

// WidthExactCutoff is the node count above which ComputeStats skips the
// exact width computation (its transitive closure costs O(V·E) bits of
// time and V²/8 bytes) and reports Width as -1.
const WidthExactCutoff = dag.WidthExactCutoff

// ComputeStats returns the structural summary of a graph.
func ComputeStats(g *Graph) GraphStats { return dag.ComputeStats(g) }

// TransitiveReduction returns g without redundant precedence edges.
func TransitiveReduction(g *Graph) (*Graph, error) { return dag.TransitiveReduction(g) }

// Gantt renders a clique-model schedule as a text Gantt chart.
func Gantt(w io.Writer, s *Schedule, maxCols int) error { return sched.Gantt(w, s, maxCols) }

// Topology constructors, re-exported from the machine package.
var (
	// Clique returns the fully connected topology on n processors.
	Clique = machine.Clique
	// Ring returns the cycle topology on n processors.
	Ring = machine.Ring
	// Chain returns the linear-array topology on n processors.
	Chain = machine.Chain
	// Mesh returns the rows x cols 2-D mesh topology.
	Mesh = machine.Mesh
	// Hypercube returns the d-dimensional hypercube topology.
	Hypercube = machine.Hypercube
	// Star returns the star topology with processor 0 as the hub.
	Star = machine.Star
	// Torus returns the rows x cols 2-D torus topology.
	Torus = machine.Torus
	// BinaryTree returns a complete binary tree topology.
	BinaryTree = machine.BinaryTree
)

// NewTopology builds a custom topology from an undirected link list.
func NewTopology(n int, links [][2]int) (*Topology, error) {
	return machine.NewTopology(n, links)
}

// Class identifies an algorithm family (BNP, UNC, APN, or PARAM).
type Class = core.Class

// The three algorithm classes of the paper's taxonomy, plus the
// parameterized component combinations of the extension.
const (
	BNP   = core.BNP
	UNC   = core.UNC
	APN   = core.APN
	PARAM = core.PARAM
)

// AlgorithmNames returns the algorithm names of a class in the paper's
// canonical order.
func AlgorithmNames(c Class) []string { return core.Names(c) }

// ScheduleBNP runs a BNP algorithm (HLFET, ISH, ETF, LAST, MCP, or DLS)
// on numProcs fully connected processors.
func ScheduleBNP(name string, g *Graph, numProcs int) (*Schedule, error) {
	algo, ok := bnp.Algorithms()[name]
	if !ok {
		return nil, fmt.Errorf("taskgraph: unknown BNP algorithm %q (have %v)", name, core.Names(BNP))
	}
	return algo(g, numProcs)
}

// ScheduleUNC runs a UNC clustering algorithm (EZ, LC, DSC, MD, or DCP)
// with an unbounded processor supply.
func ScheduleUNC(name string, g *Graph) (*Schedule, error) {
	algo, ok := unc.Algorithms()[name]
	if !ok {
		return nil, fmt.Errorf("taskgraph: unknown UNC algorithm %q (have %v)", name, core.Names(UNC))
	}
	return algo(g)
}

// ScheduleAPN runs an APN algorithm (MH, DLS, BU, or BSA) on an
// arbitrary processor network, scheduling messages on its links.
func ScheduleAPN(name string, g *Graph, topo *Topology) (*APNSchedule, error) {
	algo, ok := apn.Algorithms()[name]
	if !ok {
		return nil, fmt.Errorf("taskgraph: unknown APN algorithm %q (have %v)", name, core.Names(APN))
	}
	return algo(g, topo)
}

// Heterogeneous machines (extension): every scheduling entry point has
// a *Het variant taking a per-processor speed vector; a processor with
// speed f executes a task of weight w in ceil(w/f) time units. A nil
// vector is the homogeneous model; uniform (all-ones) speeds reproduce
// the homogeneous timelines byte-identically.

// ScheduleBNPHet is ScheduleBNP on numProcs processors with the given
// speeds (len(speeds) must equal numProcs).
func ScheduleBNPHet(name string, g *Graph, numProcs int, speeds []float64) (*Schedule, error) {
	return bnp.ScheduleHet(name, g, numProcs, speeds)
}

// ScheduleUNCHet is ScheduleUNC with per-processor speeds. UNC
// algorithms choose their own processor count (up to one per node), so
// speeds must cover g.NumNodes() processors.
func ScheduleUNCHet(name string, g *Graph, speeds []float64) (*Schedule, error) {
	return unc.ScheduleHet(name, g, speeds)
}

// ScheduleAPNHet is ScheduleAPN with per-processor speeds
// (len(speeds) must equal the topology's processor count).
func ScheduleAPNHet(name string, g *Graph, topo *Topology, speeds []float64) (*APNSchedule, error) {
	return apn.ScheduleHet(name, g, topo, speeds)
}

// Parameterized list scheduling (extension, after Coleman et al. 2024):
// clique-model list scheduling decomposed into orthogonal components —
// priority metric × processor rule × slot policy × priority regime —
// where every combination is a scheduler. HLFET, MCP, ETF, and DLS are
// registered points of the space, byte-identical to their kernels.

// Combo is one point of the component space: a complete list scheduler.
type Combo = param.Combo

// The component axis types of the parameterized scheduler space.
type (
	// ComboMetric is the node-priority component.
	ComboMetric = param.Metric
	// ComboRule is the processor-selection component.
	ComboRule = param.Rule
	// ComboSlot is the slot-policy component.
	ComboSlot = param.Slot
	// ComboRegime is the priority-regime component.
	ComboRegime = param.Regime
)

// The component values; see the internal/algo/param package doc for
// the taxonomy.
const (
	MetricSL         = param.MetricSL         // static level, descending (HLFET)
	MetricTL         = param.MetricTL         // t-level, ascending
	MetricBT         = param.MetricBT         // t-level + b-level, descending
	MetricALAP       = param.MetricALAP       // ALAP-list order (MCP)
	MetricDL         = param.MetricDL         // dynamic level (DLS)
	RuleEST          = param.RuleEST          // earliest start time
	RuleEFT          = param.RuleEFT          // earliest finish time (HEFT-style)
	RuleDL           = param.RuleDL           // Sih & Lee's dynamic-level rule
	SlotNonInsertion = param.SlotNonInsertion // append after the last task
	SlotInsertion    = param.SlotInsertion    // fill idle gaps
	RegimeStatic     = param.RegimeStatic     // fixed priority list
	RegimeDynamic    = param.RegimeDynamic    // re-score ready nodes each step
)

// Combos returns the full component cross-product (60 schedulers) in a
// fixed deterministic order.
func Combos() []Combo { return param.Combos() }

// ParseCombo parses a canonical combo name like "alap/est/ins/st".
func ParseCombo(s string) (Combo, error) { return param.ParseCombo(s) }

// ComboRegistration is one named combo (e.g. "MCP") in the registry.
type ComboRegistration = param.Registration

// NamedCombos returns the registered classic algorithms expressed as
// component combinations, sorted by name.
func NamedCombos() []ComboRegistration { return param.Named() }

// ScheduleCombo runs one component combination on numProcs fully
// connected processors with an optional per-processor speed vector
// (nil for the homogeneous model).
func ScheduleCombo(c Combo, g *Graph, numProcs int, speeds []float64) (*Schedule, error) {
	return c.Schedule(g, numProcs, speeds)
}

// OptimalResult reports an exact branch-and-bound run.
type OptimalResult = optimal.Result

// OptimalOptions configures the exact scheduler.
type OptimalOptions = optimal.Options

// ScheduleOptimal finds a provably minimum-length schedule of g on
// numProcs fully connected processors, within the configured search
// budget (Result.Closed reports whether optimality was proven).
func ScheduleOptimal(g *Graph, numProcs int, opts OptimalOptions) (*OptimalResult, error) {
	return optimal.Schedule(g, numProcs, opts)
}

// ScheduleOptimalParallel is ScheduleOptimal distributed over worker
// goroutines with a shared incumbent, mirroring the parallel A* the
// paper used for its RGBOS optima. workers <= 0 selects GOMAXPROCS.
func ScheduleOptimalParallel(g *Graph, numProcs int, opts OptimalOptions, workers int) (*OptimalResult, error) {
	return optimal.ScheduleParallel(g, numProcs, opts, workers)
}

// ScheduleDSH runs the task-duplication heuristic DSH (the TDB family of
// the paper's taxonomy, implemented as an extension): tasks may be
// redundantly executed on several processors to avoid communication.
func ScheduleDSH(g *Graph, numProcs int) (*DupSchedule, error) {
	return tdb.DSH(g, numProcs)
}

// MapClusters compresses a UNC clustering onto numProcs physical
// processors with a cluster-scheduling algorithm: "SARKAR" (Sarkar's
// assignment algorithm) or "RCP" (Yang's ready critical path), the two
// CS algorithms paper section 7 describes.
func MapClusters(method string, clustering *Schedule, numProcs int) (*Schedule, error) {
	m, ok := cs.Mappers()[method]
	if !ok {
		return nil, fmt.Errorf("taskgraph: unknown cluster-scheduling method %q (have SARKAR, RCP)", method)
	}
	return m(clustering, numProcs)
}

// Benchmark suites (paper section 5).

// PeerSet returns the small published-example graphs (PSG suite).
func PeerSet() []NamedGraph { return gen.PeerSet() }

// Cholesky returns the traced graph of a Cholesky factorization on an
// N x N matrix with the given communication-to-computation ratio.
func Cholesky(n int, ccr float64) (*Graph, error) { return gen.Cholesky(n, ccr) }

// GaussianElimination returns the traced graph of Gaussian elimination.
func GaussianElimination(n int, ccr float64) (*Graph, error) {
	return gen.GaussianElimination(n, ccr)
}

// FFT returns the butterfly graph of an N-point FFT (N a power of two).
func FFT(points int, ccr float64) (*Graph, error) { return gen.FFT(points, ccr) }

// LU returns the traced graph of tiled right-looking LU decomposition
// on an n x n tile grid.
func LU(n int, ccr float64) (*Graph, error) { return gen.LU(n, ccr) }

// Generator registry. Every graph family — the paper's suites, the
// traced kernels, and the random families of Canon et al. (2019) — is
// registered under a name with a parameter schema, so tools can
// enumerate and invoke workloads uniformly (see cmd/daggen and the
// "genx" experiment).

// Generator describes one registered graph family: its name, citation,
// parameter schema with defaults, and deterministic construction
// function.
type Generator = gen.Generator

// GeneratorParam declares one parameter of a registered generator: name,
// kind, textual default, and a one-line description.
type GeneratorParam = gen.ParamSpec

// GeneratorParams maps generator parameter names to textual values, as
// written on a command line; omitted parameters take their defaults.
type GeneratorParams = gen.Params

// Generators returns every registered graph family, sorted by name.
func Generators() []Generator { return gen.Generators() }

// Generate builds one graph from the named registered family. It is
// deterministic in (name, seed, params): equal inputs yield
// byte-identical graphs. Unknown names, unknown parameters, and
// malformed parameter values are errors.
func Generate(name string, seed int64, params GeneratorParams) (*Graph, error) {
	return gen.Generate(name, seed, params)
}

// Execution simulation (internal/sim): a deterministic, seeded
// discrete-event engine that executes completed schedules under
// perturbed task durations and communication costs — with per-link
// contention queues for APN schedules — plus a Monte-Carlo harness
// turning repeated executions into robustness statistics. The
// "robust" experiment is built on this API.

// SimPlan is a compiled schedule, executable any number of times by
// the discrete-event engine; compile once, then Run or SimMonteCarlo.
type SimPlan = sim.Plan

// SimOptions parameterizes one simulated execution: perturbation
// model, dispatch policy, seed, and optional per-processor slowdowns.
type SimOptions = sim.Options

// SimPerturbation configures the stochastic duration model: the
// multiplier distribution and the task/communication spreads.
type SimPerturbation = sim.Perturbation

// SimResult reports one simulated execution: static makespan,
// realized makespan, and their ratio.
type SimResult = sim.Result

// SimStats summarizes a Monte-Carlo execution study: mean/P99/max
// realized makespan and realized/static ratios over the trials.
type SimStats = sim.Stats

// SimDistribution selects the perturbation distribution.
type SimDistribution = sim.Distribution

// SimPolicy selects the dispatch rule of the simulated runtime.
type SimPolicy = sim.Policy

// The perturbation distributions of the execution simulator.
const (
	// DistNone applies no perturbation (exact replay).
	DistNone = sim.DistNone
	// DistUniform draws duration multipliers from [1-s, 1+s].
	DistUniform = sim.DistUniform
	// DistLognormal draws mean-one lognormal duration multipliers.
	DistLognormal = sim.DistLognormal
)

// The dispatch policies of the execution simulator.
const (
	// PolicyTimetable releases jobs no earlier than their planned
	// static starts; zero perturbation replays the schedule exactly.
	PolicyTimetable = sim.PolicyTimetable
	// PolicyEager starts jobs as soon as their dependencies clear.
	PolicyEager = sim.PolicyEager
)

// CompileSim compiles a complete clique-model schedule into an
// executable SimPlan.
func CompileSim(s *Schedule) (*SimPlan, error) { return sim.Compile(s) }

// CompileSimAPN compiles a complete APN schedule — tasks plus its
// committed link reservations, replayed through per-link contention
// queues — into an executable SimPlan.
func CompileSimAPN(s *APNSchedule) (*SimPlan, error) { return sim.CompileAPN(s) }

// Simulate executes a complete clique-model schedule once under the
// given options and returns the realized makespan next to the static
// one.
func Simulate(s *Schedule, opts SimOptions) (SimResult, error) { return sim.Simulate(s, opts) }

// SimulateAPN executes a complete APN schedule once under the given
// options, honoring link contention along every committed route.
func SimulateAPN(s *APNSchedule, opts SimOptions) (SimResult, error) {
	return sim.SimulateAPN(s, opts)
}

// SimMonteCarlo executes a compiled plan for the given number of
// independent trials and returns realized-makespan statistics.
// Results are deterministic in (opts, trials).
func SimMonteCarlo(p *SimPlan, opts SimOptions, trials int) (SimStats, error) {
	return sim.MonteCarlo(p, opts, trials)
}

// Fault injection (internal/ft): a fault-capable replay of the
// execution model above, extended with fail-stop processor crashes,
// transient link outages (APN), and pluggable recovery policies that
// react to failures at runtime. With the zero fault model the engine
// reproduces the fault-free simulator byte-identically; the "faults"
// experiment sweeps MTBF against recovery policy on top of this API.

// FaultModel configures deterministic fail-stop processor crashes and
// transient link outages. The zero value injects no faults.
type FaultModel = sim.FaultModel

// FaultExec is a compiled fault-capable schedule, executable any
// number of times; compile once, then Run or FaultMonteCarlo.
type FaultExec = ft.Exec

// FaultOptions parameterizes one fault-injected execution: the
// perturbation model (SimOptions), the fault model, the recovery
// policy, and an optional deadline for survival accounting.
type FaultOptions = ft.Options

// FaultResult reports one fault-injected execution: whether the
// schedule finished, the realized makespan and ratio, crash and
// lost-work counts, and per-processor busy/idle/down time.
type FaultResult = ft.Result

// FaultStats summarizes a fault-injection Monte-Carlo study:
// finish and deadline-survival rates, ratio statistics, and mean
// utilization splits over the trials.
type FaultStats = ft.Stats

// RecoveryPolicy decides how a fault-injected execution reacts to
// processor crashes; see RecoveryNone, RecoveryResubmit,
// RecoveryCheckpoint, and RecoveryReplicate.
type RecoveryPolicy = ft.RecoveryPolicy

// RecoveryNone lets lost work stay lost: a run that cannot finish
// every task reports Finished == false (an SLO miss).
func RecoveryNone() RecoveryPolicy { return ft.None() }

// RecoveryResubmit remaps the unfinished suffix of a crashed execution
// onto the surviving processors with a list-scheduling repair pass.
func RecoveryResubmit() RecoveryPolicy { return ft.Resubmit() }

// RecoveryCheckpoint is resubmit plus periodic checkpoints every
// `every` time units: re-executed tasks resume from their last
// checkpoint boundary instead of from zero.
func RecoveryCheckpoint(every int64) RecoveryPolicy { return ft.Checkpoint(every) }

// RecoveryReplicate duplicates the top-k static-b-level tasks on
// distinct processors at compile time; the first finisher wins.
func RecoveryReplicate(k int) RecoveryPolicy { return ft.Replicate(k) }

// RecoveryPolicyNames lists the registered recovery policies in
// presentation order.
func RecoveryPolicyNames() []string { return ft.PolicyNames() }

// CompileFaults compiles a complete clique-model schedule into a
// fault-capable FaultExec supporting every recovery policy.
func CompileFaults(s *Schedule) (*FaultExec, error) { return ft.Compile(s) }

// CompileFaultsAPN compiles a complete APN schedule — tasks plus
// committed link reservations — into a fault-capable FaultExec.
// APN executions support the none recovery policy.
func CompileFaultsAPN(s *APNSchedule) (*FaultExec, error) { return ft.CompileAPN(s) }

// FaultMonteCarlo executes a compiled fault-capable schedule for the
// given number of independent trials and returns survival and
// degradation statistics. Results are deterministic in (opts, trials),
// and failure traces are paired across schedules and policies at equal
// options.
func FaultMonteCarlo(x *FaultExec, opts FaultOptions, trials int) (FaultStats, error) {
	return ft.MonteCarlo(x, opts, trials)
}

// Adversarial instance search (extension, after "PISA: An Adversarial
// Approach To Comparing Task Graph Scheduling Algorithms"): a seeded,
// deterministic evolutionary loop over the generator registry's
// parameter schemas that hunts task graphs on which one scheduling
// algorithm beats another by the widest relative makespan margin —
// counterexamples to the average-case rankings of the random suites.
// The "adversarial" experiment runs it; found instances are archived
// as .tg fixtures with provenance headers and pinned by regression
// tests.

// AdversarialOptions parameterizes a search run: seed, evolutionary
// budget, families, node range, perturbation bound, and objective.
type AdversarialOptions = adversarial.Options

// AdversarialReport is the outcome of one search run: the
// per-generation trace and the top counterexamples found.
type AdversarialReport = adversarial.Report

// AdversarialCandidate is one point of the search space: a generator
// family, parameters, seeds, and an edge-weight perturbation.
type AdversarialCandidate = adversarial.Candidate

// AdversarialFound is one evaluated candidate in a report: the
// candidate, its graph, the two makespans, and the objective score.
type AdversarialFound = adversarial.Found

// AdversarialFixture is one archived counterexample: a task graph with
// the pair, machine size, provenance, and pinned makespan gap.
type AdversarialFixture = adversarial.Fixture

// AdversarialDefaults returns the quick-scale search configuration.
func AdversarialDefaults(seed int64) AdversarialOptions { return adversarial.Defaults(seed) }

// AdversarialSearch runs the evolutionary search for instances on
// which algB beats algA, evaluating candidate populations through the
// config's worker pool. The trajectory is deterministic in (opts,
// pair) for every worker count. Algorithm names are resolved like
// ParseAlgorithmPair's halves.
func AdversarialSearch(cfg ExperimentConfig, opts AdversarialOptions, algA, algB string) (*AdversarialReport, error) {
	return core.AdversarialSearch(cfg, opts, algA, algB)
}

// ParseAlgorithmPair parses and validates an "A:B" algorithm pair: two
// registry names ("MCP:LAST"), class-qualified where ambiguous
// ("DLS:APN/DLS"), or parameterized combo names ("MCP:alap/eft/ins/st").
// Unknown names fail fast with the sorted list of valid ones.
func ParseAlgorithmPair(s string) (algA, algB string, err error) {
	return core.ParseAlgorithmPair(s)
}

// AlgorithmPairNames returns every plain algorithm name accepted in an
// adversarial pair, sorted.
func AlgorithmPairNames() []string { return core.PairNames() }

// PerturbEdges returns g with every edge weight scaled by an
// independent multiplier drawn uniformly from [1-spread, 1+spread]
// (minimum 1), deterministically in (g, seed, spread). Spread 0
// returns g unchanged.
func PerturbEdges(g *Graph, seed int64, spread float64) (*Graph, error) {
	return adversarial.PerturbEdges(g, seed, spread)
}

// ArchiveAdversarial writes a report's top k positive-gap instances as
// .tg fixtures under dir and returns the written paths.
func ArchiveAdversarial(dir string, rep *AdversarialReport, procs, k int) ([]string, error) {
	return adversarial.Archive(dir, rep, procs, k)
}

// LoadAdversarialFixtures reads every archived .tg fixture under dir,
// keyed by file name.
func LoadAdversarialFixtures(dir string) (map[string]*AdversarialFixture, error) {
	return adversarial.LoadFixtures(dir)
}

// Experiment harness.

// ExperimentConfig parameterizes a paper experiment run. Workers bounds
// the number of (algorithm × instance) scheduling cells the harness
// runs concurrently (<= 0 selects GOMAXPROCS); output is byte-identical
// for every worker count. Cache optionally shares the generated
// benchmark suites and RGBOS branch-and-bound optima across runs.
type ExperimentConfig = core.Config

// SuiteCache shares generated benchmark suites and RGBOS optima across
// experiment runs with the same seed and scale, so e.g. Tables 2 and 3
// solve each branch-and-bound optimum exactly once. A nil Cache in
// ExperimentConfig falls back to a process-wide cache.
type SuiteCache = core.SuiteCache

// NewSuiteCache returns an empty, isolated suite cache.
func NewSuiteCache() *SuiteCache { return core.NewSuiteCache() }

// Experiment scales.
const (
	// Quick runs reduced instance counts (seconds).
	Quick = core.Quick
	// Full reproduces the paper's instance counts (minutes).
	Full = core.Full
)

// Experiment describes one reproducible artifact: its id, one-line
// title, and runner.
type Experiment = core.Experiment

// Experiments returns every registered experiment in paper order: the
// paper's tables and figures, then the extension studies.
func Experiments() []Experiment { return core.Experiments() }

// ExperimentIDs returns the identifiers of every reproducible artifact:
// the paper's tables and figures ("table1".."table6", "fig2".."fig4")
// and the extension studies ("unccs", "tdb", "genx", "robust",
// "components", "adversarial", "faults", "scaling").
func ExperimentIDs() []string {
	var ids []string
	for _, e := range core.Experiments() {
		ids = append(ids, e.ID)
	}
	return ids
}

// RunExperiment regenerates one of the paper's tables or figures.
func RunExperiment(id string, cfg ExperimentConfig) error {
	return core.RunExperiment(id, cfg)
}

// Observability (internal/obs): a stack-wide instrumentation layer —
// metrics, scheduler decision tracing, run manifests — with a hard
// invariant: it never changes an output byte, and the disabled path
// costs zero allocations. See docs/observability.md.

// Tracer records per-placement scheduler decisions as JSONL or Chrome
// trace-event JSON (openable in Perfetto as a per-processor Gantt).
// Install with SetTracer; traced runs must be serial.
type Tracer = obs.Tracer

// TraceFormat selects the trace serialization.
type TraceFormat = obs.TraceFormat

// The trace serializations.
const (
	// TraceJSONL writes one JSON record per line.
	TraceJSONL = obs.TraceJSONL
	// TraceChrome writes Chrome trace-event JSON for Perfetto.
	TraceChrome = obs.TraceChrome
)

// TraceCandidate is one processor considered for a traced placement.
type TraceCandidate = obs.Candidate

// NewTracer returns a tracer writing to w in the given format.
func NewTracer(w io.Writer, format TraceFormat) *Tracer { return obs.NewTracer(w, format) }

// TraceFormatForPath picks TraceJSONL for ".jsonl" paths, TraceChrome
// otherwise.
func TraceFormatForPath(path string) TraceFormat { return obs.TraceFormatForPath(path) }

// SetTracer installs the process-wide decision tracer; nil uninstalls.
// Scheduling runs must be serial while a tracer is installed (dagbench
// -trace forces -workers=1).
func SetTracer(t *Tracer) { obs.SetTracer(t) }

// EnableMetrics turns the process-wide metric registry on or off.
// Metric values never reach experiment output, so enabling them keeps
// every table byte-identical.
func EnableMetrics(on bool) { obs.EnableMetrics(on) }

// ResetMetrics zeroes every registered metric.
func ResetMetrics() { obs.ResetMetrics() }

// MetricSample is one metric's state in a snapshot.
type MetricSample = obs.Sample

// SnapshotMetrics returns every registered metric's state, sorted by
// name.
func SnapshotMetrics() []MetricSample { return obs.SnapshotMetrics() }

// WriteMetrics renders the metric snapshot as aligned text.
func WriteMetrics(w io.Writer) error { return obs.WriteMetrics(w) }

// RunManifest is a reproducibility receipt for one tool invocation:
// configuration, build, input file digests, and the output hash.
type RunManifest = obs.Manifest

// NewRunManifest returns a manifest stamped with the running build.
func NewRunManifest(tool string, command []string) *RunManifest {
	return obs.NewManifest(tool, command)
}

// HashWriter tees writes into a SHA-256 digest, for manifest output
// hashes.
type HashWriter = obs.HashWriter

// NewHashWriter returns a HashWriter forwarding to w.
func NewHashWriter(w io.Writer) *HashWriter { return obs.NewHashWriter(w) }

// VersionString returns the ldflags-stamped build version, augmented
// with the VCS revision when available.
func VersionString() string { return obs.VersionString() }

// PeakRSSKB returns the process's resident-set high-water mark in
// kilobytes (Linux VmHWM), or -1 where /proc is unavailable.
func PeakRSSKB() int64 { return obs.PeakRSSKB() }
