// Command dagopt runs the exact branch-and-bound scheduler on a task
// graph in the text exchange format — the role the paper's parallel A*
// played for its RGBOS suite.
//
// Usage:
//
//	dagopt [-procs N] [-budget N] [-compare] file.tg
//
// -compare additionally runs every BNP and UNC heuristic and reports
// each one's percentage degradation from the optimum.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	taskgraph "repro"
)

func main() {
	procs := flag.Int("procs", 4, "number of processors")
	budget := flag.Int64("budget", 0, "search-node budget (0 = default)")
	compare := flag.Bool("compare", false, "also run the clique heuristics and show degradations")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	g, err := taskgraph.ReadGraph(in)
	if err != nil {
		fail(err)
	}

	res, err := taskgraph.ScheduleOptimal(g, *procs, taskgraph.OptimalOptions{MaxExpansions: *budget})
	if err != nil {
		fail(err)
	}
	status := "proven optimal"
	if !res.Closed {
		status = "best found (budget exhausted, NOT proven optimal)"
	}
	fmt.Printf("length=%d  %s  expansions=%d\n", res.Length, status, res.Expansions)
	fmt.Print(res.Schedule)

	if !*compare {
		return
	}
	fmt.Println("\nheuristic comparison:")
	for _, name := range taskgraph.AlgorithmNames(taskgraph.BNP) {
		s, err := taskgraph.ScheduleBNP(name, g, *procs)
		if err != nil {
			fail(err)
		}
		report(name, "BNP", s.Length(), res.Length)
	}
	for _, name := range taskgraph.AlgorithmNames(taskgraph.UNC) {
		s, err := taskgraph.ScheduleUNC(name, g)
		if err != nil {
			fail(err)
		}
		report(name, "UNC", s.Length(), res.Length)
	}
}

func report(name, class string, length, opt int64) {
	deg := 100 * float64(length-opt) / float64(opt)
	fmt.Printf("  %-6s (%s)  length=%-6d  degradation=%+.1f%%\n", name, class, length, deg)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dagopt:", err)
	os.Exit(1)
}
