// Command daggen generates benchmark task graphs in the text exchange
// format, so they can be inspected with dagview, solved with dagopt, or
// consumed by external tools.
//
// Usage:
//
//	daggen -suite rgbos  -v 20 -ccr 1.0 [-seed N]        > g.tg
//	daggen -suite rgnos  -v 100 -ccr 2.0 -parallelism 3  > g.tg
//	daggen -suite cholesky -n 8 -ccr 1.0                 > g.tg
//	daggen -suite gauss    -n 6 -ccr 0.5                 > g.tg
//	daggen -suite fft      -n 16 -ccr 1.0                > g.tg
//	daggen -suite psg -name kwok-ahmad-9                 > g.tg
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	taskgraph "repro"
	"repro/internal/dag"
	"repro/internal/gen"
)

func main() {
	suite := flag.String("suite", "rgnos", "rgbos, rgnos, cholesky, gauss, fft, or psg")
	v := flag.Int("v", 50, "node count (rgbos, rgnos)")
	n := flag.Int("n", 8, "matrix dimension / point count (cholesky, gauss, fft)")
	ccr := flag.Float64("ccr", 1.0, "communication-to-computation ratio")
	parallelism := flag.Int("parallelism", 3, "RGNOS width parameter (1..5)")
	seed := flag.Int64("seed", 1, "random seed")
	name := flag.String("name", "", "PSG graph name (with -suite psg); empty lists names")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var g *dag.Graph
	var err error
	switch *suite {
	case "rgbos":
		g = gen.RGBOSGraph(rng, *v, *ccr)
	case "rgnos":
		g = gen.RGNOSGraph(rng, *v, *ccr, *parallelism)
	case "cholesky":
		g, err = taskgraph.Cholesky(*n, *ccr)
	case "gauss":
		g, err = taskgraph.GaussianElimination(*n, *ccr)
	case "fft":
		g, err = taskgraph.FFT(*n, *ccr)
	case "psg":
		for _, ng := range taskgraph.PeerSet() {
			if ng.Name == *name {
				g = ng.G
				break
			}
		}
		if g == nil {
			fmt.Fprintln(os.Stderr, "daggen: available PSG names:")
			for _, ng := range taskgraph.PeerSet() {
				fmt.Fprintf(os.Stderr, "  %-20s %s\n", ng.Name, ng.Source)
			}
			os.Exit(2)
		}
	default:
		fail(fmt.Errorf("unknown suite %q", *suite))
	}
	if err != nil {
		fail(err)
	}
	st := dag.ComputeStats(g)
	fmt.Fprintf(os.Stderr, "daggen: %s\n", st)
	if err := taskgraph.WriteGraph(os.Stdout, g); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "daggen:", err)
	os.Exit(1)
}
