// Command daggen generates benchmark task graphs in the text (.tg) or
// binary (.tgb) exchange format, so they can be inspected with dagview,
// solved with dagopt, or consumed by external tools.
//
// Usage:
//
//	daggen -list
//	daggen -suite <name> [-seed N] [-<param> <value> ...] [-format text|tgb] [-o FILE]
//
// For example:
//
//	daggen -suite rgnos -v 100 -ccr 2 -parallelism 3 > g.tg
//	daggen -suite lu -n 6 -ccr 0.5                   > g.tg
//	daggen -suite psg -name kwok-ahmad-9             > g.tg
//	daggen -suite layered -v 1000000 -o big.tgb
//
// -o writes to a file instead of stdout and, when the name ends in
// .tgb, selects the binary format; an explicit -format always wins.
//
// The suite names, their parameter flags, and the usage text are all
// generated from the generator registry (see the repro package's
// Generators), so the documentation cannot drift from the registered
// suites: registering a new family makes it available here with its
// flags and help for free.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	taskgraph "repro"
	"repro/internal/dag"
)

func main() {
	suite := flag.String("suite", "", "generator name (see -list)")
	seed := flag.Int64("seed", 1, "random seed")
	list := flag.Bool("list", false, "list the registered generators and their parameters")
	format := flag.String("format", "", "output format: text (.tg) or tgb (binary); default text, or inferred from the -o extension")
	out := flag.String("o", "", "write to this file instead of stdout (a .tgb extension implies -format tgb)")

	// One flag per distinct registry parameter, shared across the suites
	// that declare it; the help text names the suites using each flag.
	gens := taskgraph.Generators()
	paramFlags := map[string]*string{}
	for _, name := range paramNames(gens) {
		doc, def, suites := paramHelp(gens, name)
		paramFlags[name] = flag.String(name, "", fmt.Sprintf("%s (default %s) [%s]", doc, def, strings.Join(suites, ", ")))
	}
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "Usage: daggen -suite <name> [-seed N] [-<param> <value> ...] > g.tg")
		fmt.Fprintln(os.Stderr, "\nRegistered suites (daggen -list for parameter details):")
		for _, g := range gens {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", g.Name, g.Doc)
		}
		fmt.Fprintln(os.Stderr, "\nFlags:")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		printRegistry(os.Stdout, gens)
		return
	}
	if *suite == "" {
		flag.Usage()
		os.Exit(2)
	}
	params := taskgraph.GeneratorParams{}
	for name, val := range paramFlags {
		if *val != "" {
			params[name] = *val
		}
	}
	g, err := taskgraph.Generate(*suite, *seed, params)
	if err != nil {
		fail(err)
	}
	st := dag.ComputeStats(g)
	fmt.Fprintf(os.Stderr, "daggen: %s\n", st)

	write := taskgraph.WriteGraph
	switch {
	case *format == "tgb", *format == "" && strings.HasSuffix(*out, ".tgb"):
		write = taskgraph.WriteGraphBinary
	case *format != "" && *format != "text":
		fail(fmt.Errorf("unknown -format %q (want text or tgb)", *format))
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		w = f
	}
	if err := write(w, g); err != nil {
		fail(err)
	}
	if *out != "" {
		if err := w.Close(); err != nil {
			fail(err)
		}
	}
}

// paramNames returns the union of parameter names over all generators,
// sorted for stable flag registration.
func paramNames(gens []taskgraph.Generator) []string {
	seen := map[string]bool{}
	var names []string
	for _, g := range gens {
		for _, ps := range g.Params {
			if !seen[ps.Name] {
				seen[ps.Name] = true
				names = append(names, ps.Name)
			}
		}
	}
	sort.Strings(names)
	return names
}

// paramHelp returns the shared doc line and default of a parameter (or
// a pointer to -list when the declaring suites disagree on either) and
// the names of all suites that accept it.
func paramHelp(gens []taskgraph.Generator, name string) (doc, def string, suites []string) {
	first := true
	for _, g := range gens {
		for _, ps := range g.Params {
			if ps.Name != name {
				continue
			}
			if first {
				first = false
				doc, def = ps.Doc, ps.Default
			} else {
				if doc != ps.Doc {
					doc = "meaning depends on the suite, see -list"
				}
				if def != ps.Default {
					def = "per suite, see -list"
				}
			}
			suites = append(suites, g.Name)
		}
	}
	if def == "" {
		def = `""`
	}
	return doc, def, suites
}

// printRegistry writes the full generator catalog with per-suite
// parameters, kinds, and defaults.
func printRegistry(w *os.File, gens []taskgraph.Generator) {
	for _, g := range gens {
		fmt.Fprintf(w, "%s — %s\n", g.Name, g.Doc)
		fmt.Fprintf(w, "    source: %s\n", g.Source)
		for _, ps := range g.Params {
			def := ps.Default
			if def == "" {
				def = `""`
			}
			fmt.Fprintf(w, "    -%-12s %-7s default %-6s %s\n", ps.Name, ps.Kind, def, ps.Doc)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "daggen:", err)
	os.Exit(1)
}
