// Command dagbench regenerates the tables and figures of Kwok & Ahmad,
// "Benchmarking the Task Graph Scheduling Algorithms" (IPPS 1998).
//
// Usage:
//
//	dagbench [-exp table1|...|fig4|all] [-scale quick|full] [-seed N]
//
// With -scale=quick (the default) each experiment runs a reduced
// workload in seconds; -scale=full reproduces the paper's instance
// counts and can take minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	taskgraph "repro"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1..table6, fig2..fig4, or all)")
	scale := flag.String("scale", "quick", "workload scale: quick or full")
	seed := flag.Int64("seed", 1998, "random seed for the benchmark suites")
	flag.Parse()

	cfg := taskgraph.ExperimentConfig{Seed: *seed, Out: os.Stdout}
	switch *scale {
	case "quick":
		cfg.Scale = taskgraph.Quick
	case "full":
		cfg.Scale = taskgraph.Full
	default:
		fmt.Fprintf(os.Stderr, "dagbench: unknown scale %q (want quick or full)\n", *scale)
		os.Exit(2)
	}

	ids := taskgraph.ExperimentIDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		start := time.Now()
		if err := taskgraph.RunExperiment(id, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "dagbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stdout, "(%s finished in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
