// Command dagbench regenerates the tables and figures of Kwok & Ahmad,
// "Benchmarking the Task Graph Scheduling Algorithms" (IPPS 1998).
//
// Usage:
//
//	dagbench [-exp id[,id...]] [-scale quick|full] [-seed N] [-workers N]
//	         [-pair A:B] [-archive dir] [-faults] [-measure]
//	         [-trace file] [-metrics] [-manifest file] [-version]
//
// Experiment ids are table1..table6, fig2..fig4, the extension studies
// unccs, tdb, genx (the Canon et al. 2019 cross-generator ranking
// stability study), robust (the Monte-Carlo execution-robustness
// study on the internal/sim simulator), components (the component
// attribution of the parameterized scheduler space on homogeneous and
// heterogeneous machines), adversarial (the PISA-style
// evolutionary search for counterexample instances), faults (the
// fault-injection study of schedule degradation and reactive
// recovery), and scaling (the empirical-complexity ladder running
// every generator family from 10^3 up to 10^6 nodes through
// generation, both exchange encodings, and the algorithm roster), or
// all (the default); a comma-separated list runs several in order,
// e.g. -exp=table2,table3,genx. Unknown ids fail fast, before anything
// runs, with the sorted list of valid names. -exp=list (or help)
// prints the registry, one id and title per line, sorted by id, and
// exits.
//
// -measure extends the scaling experiment with wall-clock timing,
// allocation, peak-RSS columns, and fitted time-complexity slopes; it
// forces a serial run (like table6, concurrent cells would contend).
// Without it the scaling output is fully deterministic.
//
// -pair selects the algorithm pair "A:B" the adversarial experiment
// compares (default MCP:LAST); the search hunts instances on which B
// beats A. Names are the registry names, class-qualified where
// ambiguous (APN/DLS), or parameterized combo names (alap/eft/ins/st).
// An unknown name fails fast with the sorted list of valid ones.
// -archive names a directory the adversarial experiment writes its
// found counterexamples into, as .tg fixtures with provenance headers.
// -faults switches the adversarial search to the fault-gap objective:
// candidates are scored on fault-effective makespans measured under the
// canonical fault scenario (crashes at MTBF equal to the graph's
// critical-path computation cost, reactive resubmit recovery) instead
// of static makespans.
//
// With -scale=quick (the default) each experiment runs a reduced
// workload in seconds; -scale=full reproduces the paper's instance
// counts and can take minutes.
//
// -workers bounds how many (algorithm × instance) scheduling cells run
// concurrently; it defaults to GOMAXPROCS, and -workers=1 forces a
// serial run. Output is byte-identical for every worker count — except
// table6's timing cells, which are wall-clock measurements and vary run
// to run (use -workers=1 there for timings comparable to the paper's).
// The benchmark suites — including the RGBOS branch-and-bound optima
// shared by table2 and table3 — are generated once per dagbench run.
//
// -cpuprofile and -memprofile write pprof profiles covering the
// experiment runs, for diagnosing scheduling-kernel regressions:
//
//	dagbench -exp table6 -cpuprofile cpu.out
//	go tool pprof cpu.out
//
// -memprofile pairs with the scaling experiment's peak-RSS column: the
// rss-MB column (under -measure) reports the OS-level high-water mark
// per rung, while the heap profile attributes the steady-state live
// bytes to allocation sites:
//
//	dagbench -exp scaling -scale full -measure -memprofile heap.out
//
// Observability (see docs/observability.md; none of these switches
// changes a single experiment output byte):
//
//   - -trace FILE records every scheduler placement decision — node,
//     staged priority, candidate processors with their ESTs, the chosen
//     slot, insertion vs append. ".jsonl" paths get one JSON record per
//     line; any other extension gets Chrome trace-event JSON, which
//     ui.perfetto.dev renders as a per-processor Gantt chart per run.
//     Tracing forces -workers=1 (the trace is a serial log of decisions;
//     interleaved runs would shuffle it).
//   - -metrics enables the internal metric registry (scheduling cells,
//     cache hits, EST-cache rebuilds, simulator stalls, ...) and prints
//     the counters to stderr after the experiments finish.
//   - -manifest FILE writes a reproducibility receipt after a successful
//     run: tool version, go version, flags, and the SHA-256 of the
//     experiment bytes written to stdout (the wall-clock trailer lines
//     are excluded, so equal configurations yield equal output hashes).
//   - -version prints the build version (stamped via
//     -ldflags "-X repro/internal/obs.Version=...", falling back to the
//     VCS revision) and exits.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	taskgraph "repro"
)

func main() {
	// All work happens in run so its defers — in particular the pprof
	// teardown, which must flush even when an experiment fails — run
	// before the process exits.
	os.Exit(run())
}

// run returns the process exit code; it is named so the -memprofile
// defer can fail the run after the experiments succeed.
func run() (code int) {
	exp := flag.String("exp", "all", "experiment id or comma-separated list (table1..table6, fig2..fig4, unccs, tdb, genx, robust, components, adversarial, faults, scaling, or all)")
	scale := flag.String("scale", "quick", "workload scale: quick or full")
	seed := flag.Int64("seed", 1998, "random seed for the benchmark suites")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "max concurrent scheduling cells (<= 0: GOMAXPROCS)")
	pair := flag.String("pair", "", "algorithm pair \"A:B\" for the adversarial experiment (default MCP:LAST)")
	archive := flag.String("archive", "", "directory the adversarial experiment archives counterexample fixtures into")
	faults := flag.Bool("faults", false, "score adversarial candidates on fault-effective makespans (fault-gap objective) instead of static makespans")
	measure := flag.Bool("measure", false, "add wall-clock timing, allocation, peak-RSS, and time-slope columns to the scaling experiment (forces a serial run)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the experiment runs to this file")
	trace := flag.String("trace", "", "write scheduler decision traces to this file (.jsonl: JSON lines; otherwise Chrome trace-event JSON for Perfetto; forces -workers=1)")
	metrics := flag.Bool("metrics", false, "collect internal metrics and print them to stderr after the run")
	manifest := flag.String("manifest", "", "write a reproducibility manifest (build, config, output hash) to this file after a successful run")
	version := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *version {
		fmt.Fprintf(os.Stdout, "dagbench %s (%s)\n", taskgraph.VersionString(), runtime.Version())
		return 0
	}

	if *metrics {
		taskgraph.EnableMetrics(true)
		defer func() {
			if err := taskgraph.WriteMetrics(os.Stderr); err != nil {
				fmt.Fprintf(os.Stderr, "dagbench: -metrics: %v\n", err)
				code = 1
			}
		}()
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dagbench: -trace: %v\n", err)
			return 1
		}
		tracer := taskgraph.NewTracer(f, taskgraph.TraceFormatForPath(*trace))
		taskgraph.SetTracer(tracer)
		// The trace is a serial log of placement decisions; concurrent
		// cells would interleave runs, so tracing forces a serial run
		// (same policy as -measure).
		*workers = 1
		defer func() {
			taskgraph.SetTracer(nil)
			if err := tracer.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "dagbench: -trace: %v\n", err)
				code = 1
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "dagbench: -trace: %v\n", err)
				code = 1
			}
		}()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dagbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dagbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dagbench: -memprofile: %v\n", err)
				code = 1
				return
			}
			defer f.Close()
			runtime.GC() // report live steady-state heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "dagbench: -memprofile: %v\n", err)
				code = 1
			}
		}()
	}

	// Validate the adversarial pair before anything runs, so a typo
	// fails fast with the sorted algorithm menu.
	if *pair != "" {
		if _, _, err := taskgraph.ParseAlgorithmPair(*pair); err != nil {
			fmt.Fprintf(os.Stderr, "dagbench: -pair: %v\n", err)
			return 2
		}
	}

	// With -manifest, experiment output is teed through a SHA-256
	// digest. The wall-clock trailer lines below are written to stdout
	// directly, bypassing the digest, so the recorded output hash is
	// deterministic for a given configuration.
	var out io.Writer = os.Stdout
	var hashed *taskgraph.HashWriter
	if *manifest != "" {
		hashed = taskgraph.NewHashWriter(os.Stdout)
		out = hashed
	}

	cfg := taskgraph.ExperimentConfig{
		Seed:    *seed,
		Out:     out,
		Workers: *workers,
		// One cache per run: suites and RGBOS optima are shared by
		// every experiment below.
		Cache:              taskgraph.NewSuiteCache(),
		AdversarialPair:    *pair,
		AdversarialArchive: *archive,
		AdversarialFaults:  *faults,
		ScalingMeasure:     *measure,
	}
	switch *scale {
	case "quick":
		cfg.Scale = taskgraph.Quick
	case "full":
		cfg.Scale = taskgraph.Full
	default:
		fmt.Fprintf(os.Stderr, "dagbench: unknown scale %q (want quick or full)\n", *scale)
		return 2
	}

	if *exp == "list" || *exp == "help" {
		// Print the experiment registry, sorted by id, and exit without
		// running anything.
		exps := taskgraph.Experiments()
		sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
		width := 0
		for _, e := range exps {
			if len(e.ID) > width {
				width = len(e.ID)
			}
		}
		for _, e := range exps {
			fmt.Fprintf(os.Stdout, "%-*s  %s\n", width, e.ID, e.Title)
		}
		return 0
	}

	ids := taskgraph.ExperimentIDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
		for i, id := range ids {
			ids[i] = strings.TrimSpace(id)
		}
		// Validate every requested id against the experiment registry
		// before running anything, so a typo fails fast with the menu
		// instead of surfacing after earlier experiments already ran.
		valid := make(map[string]bool, len(taskgraph.ExperimentIDs()))
		for _, id := range taskgraph.ExperimentIDs() {
			valid[id] = true
		}
		for _, id := range ids {
			if !valid[id] {
				names := append([]string(nil), taskgraph.ExperimentIDs()...)
				sort.Strings(names)
				fmt.Fprintf(os.Stderr, "dagbench: unknown experiment %q (valid: %s, or all)\n",
					id, strings.Join(names, ", "))
				return 2
			}
		}
	}
	for _, id := range ids {
		start := time.Now()
		if err := taskgraph.RunExperiment(id, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "dagbench: %s: %v\n", id, err)
			return 1
		}
		fmt.Fprintf(os.Stdout, "(%s finished in %.1fs)\n\n", id, time.Since(start).Seconds())
	}

	if *manifest != "" {
		m := taskgraph.NewRunManifest("dagbench", os.Args[1:])
		m.SetConfig("exp", *exp)
		m.SetConfig("scale", *scale)
		m.SetConfig("seed", fmt.Sprint(*seed))
		m.SetConfig("workers", fmt.Sprint(*workers))
		if *pair != "" {
			m.SetConfig("pair", *pair)
		}
		if *archive != "" {
			m.SetConfig("archive", *archive)
		}
		if *faults {
			m.SetConfig("faults", "true")
		}
		if *measure {
			m.SetConfig("measure", "true")
		}
		if *trace != "" {
			m.SetConfig("trace", *trace)
		}
		m.SetOutput(hashed)
		f, err := os.Create(*manifest)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dagbench: -manifest: %v\n", err)
			return 1
		}
		if err := m.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "dagbench: -manifest: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "dagbench: -manifest: %v\n", err)
			return 1
		}
	}
	return code
}
