// Command dagview inspects a task graph stored in either exchange
// format (text .tg or binary .tgb, auto-detected): it prints size
// statistics, levels, the critical path, can export Graphviz dot, and
// can schedule the graph with any of the 15 algorithms to show the
// resulting timeline.
//
// Usage:
//
//	dagview [-dot] [-algo NAME] [-procs N] [-topo hypercube8|ring4|...]
//	        [-gantt] [-trace file] [-manifest file] file.tg
//
// Without a file argument, dagview reads the graph from stdin.
//
// With -algo, -gantt appends an ASCII Gantt chart of the schedule
// (clique schedules only — BNP and UNC algorithms; APN timelines carry
// link transfers the chart does not render). -trace records the
// algorithm's placement decisions to a file, in the same formats as
// dagbench -trace (".jsonl" for JSON lines, anything else for Chrome
// trace-event JSON viewable in ui.perfetto.dev). -manifest writes a
// reproducibility receipt including the input file's content hash and
// the SHA-256 of the bytes printed to stdout.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	taskgraph "repro"
)

func main() {
	dot := flag.Bool("dot", false, "print the graph in Graphviz dot format and exit")
	algoName := flag.String("algo", "", "schedule with this algorithm (e.g. MCP, DCP, BSA)")
	procs := flag.Int("procs", 4, "processor count for BNP algorithms")
	topoName := flag.String("topo", "hypercube8", "topology for APN algorithms")
	gantt := flag.Bool("gantt", false, "with -algo: append an ASCII Gantt chart (BNP/UNC schedules)")
	trace := flag.String("trace", "", "with -algo: write the placement decision trace to this file (.jsonl or Chrome trace-event JSON)")
	manifest := flag.String("manifest", "", "write a reproducibility manifest (build, input hash, output hash) to this file")
	flag.Parse()

	// With -manifest, everything printed to stdout is teed through a
	// SHA-256 digest so the receipt can name the exact output bytes.
	var out io.Writer = os.Stdout
	var hashed *taskgraph.HashWriter
	if *manifest != "" {
		hashed = taskgraph.NewHashWriter(os.Stdout)
		out = hashed
	}

	var in io.Reader = os.Stdin
	inName := "stdin"
	if flag.NArg() > 0 {
		inName = flag.Arg(0)
		f, err := os.Open(inName)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	g, err := taskgraph.ReadGraph(in)
	if err != nil {
		fail(err)
	}

	var tracer *taskgraph.Tracer
	if *trace != "" {
		if *algoName == "" {
			fail(fmt.Errorf("-trace needs -algo: the trace records one algorithm's placement decisions"))
		}
		f, err := os.Create(*trace)
		if err != nil {
			fail(err)
		}
		tracer = taskgraph.NewTracer(f, taskgraph.TraceFormatForPath(*trace))
		tracer.SetInstance("dagview", inName)
		taskgraph.SetTracer(tracer)
		defer func() {
			taskgraph.SetTracer(nil)
			if err := tracer.Close(); err != nil {
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
		}()
	}

	if *dot {
		fmt.Fprint(out, taskgraph.DOT(g, "taskgraph"))
		writeManifest(*manifest, hashed, inName)
		return
	}

	lv := taskgraph.ComputeLevels(g)
	width := "-" // exact width is O(V·E); skip it on huge graphs
	if g.NumNodes() <= taskgraph.WidthExactCutoff {
		width = fmt.Sprint(taskgraph.Width(g))
	}
	fmt.Fprintf(out, "nodes=%d edges=%d CCR=%.3f width=%s\n",
		g.NumNodes(), g.NumEdges(), g.CCR(), width)
	fmt.Fprintf(out, "critical path length=%d path=%v\n", lv.CPLength, taskgraph.CriticalPath(g))

	if *algoName == "" {
		fmt.Fprintln(out, "\nnode  weight  t-level  b-level  static  ALAP")
		for v := 0; v < g.NumNodes(); v++ {
			n := taskgraph.NodeID(v)
			fmt.Fprintf(out, "%4d  %6d  %7d  %7d  %6d  %4d\n",
				v, g.Weight(n), lv.T[n], lv.B[n], lv.Static[n], lv.ALAP[n])
		}
		writeManifest(*manifest, hashed, inName)
		return
	}

	// Resolve the algorithm's class before scheduling (BNP wins for the
	// ambiguous DLS, matching the try-BNP-first behavior), so the tracer
	// emits exactly one run header with the right class label.
	name := strings.ToUpper(*algoName)
	switch {
	case hasAlgo(taskgraph.BNP, name):
		beginRun(tracer, name, "BNP", g.NumNodes(), *procs)
		s, err := taskgraph.ScheduleBNP(name, g, *procs)
		endRun(tracer)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(out, "\n%s (BNP, %d procs):\n%s", name, *procs, s)
		printGantt(out, *gantt, s)
	case hasAlgo(taskgraph.UNC, name):
		beginRun(tracer, name, "UNC", g.NumNodes(), g.NumNodes())
		s, err := taskgraph.ScheduleUNC(name, g)
		endRun(tracer)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(out, "\n%s (UNC):\n%s", name, s)
		printGantt(out, *gantt, s)
	case hasAlgo(taskgraph.APN, name):
		topo, err := parseTopo(*topoName)
		if err != nil {
			fail(err)
		}
		beginRun(tracer, name, "APN", g.NumNodes(), topo.NumProcs())
		s, err := taskgraph.ScheduleAPN(name, g, topo)
		endRun(tracer)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(out, "\n%s (APN, %s):\n%s", name, topo.Name(), s)
		if *gantt {
			fmt.Fprintln(out, "(no Gantt chart for APN schedules; link transfers are not rendered)")
		}
	default:
		fail(fmt.Errorf("unknown algorithm %q", *algoName))
	}
	writeManifest(*manifest, hashed, inName)
}

// hasAlgo reports whether name is a registered algorithm of class c.
func hasAlgo(c taskgraph.Class, name string) bool {
	for _, n := range taskgraph.AlgorithmNames(c) {
		if n == name {
			return true
		}
	}
	return false
}

func beginRun(t *taskgraph.Tracer, alg, class string, v, procs int) {
	if t != nil {
		t.BeginRun(alg, class, v, procs)
	}
}

func endRun(t *taskgraph.Tracer) {
	if t != nil {
		t.EndRun()
	}
}

func printGantt(out io.Writer, on bool, s *taskgraph.Schedule) {
	if !on {
		return
	}
	fmt.Fprintln(out)
	if err := taskgraph.Gantt(out, s, 100); err != nil {
		fail(err)
	}
}

// writeManifest records the reproducibility receipt when -manifest was
// given: build stamps, the input graph's content hash (when it was a
// file), and the digest of everything printed to stdout.
func writeManifest(path string, hashed *taskgraph.HashWriter, inName string) {
	if path == "" {
		return
	}
	m := taskgraph.NewRunManifest("dagview", os.Args[1:])
	if inName != "stdin" {
		if err := m.AddInput(inName); err != nil {
			fail(err)
		}
	}
	m.SetOutput(hashed)
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
}

func parseTopo(name string) (*taskgraph.Topology, error) {
	switch name {
	case "hypercube8":
		return taskgraph.Hypercube(3), nil
	case "hypercube16":
		return taskgraph.Hypercube(4), nil
	case "ring4":
		return taskgraph.Ring(4), nil
	case "ring8":
		return taskgraph.Ring(8), nil
	case "mesh9":
		return taskgraph.Mesh(3, 3), nil
	case "star8":
		return taskgraph.Star(8), nil
	case "clique8":
		return taskgraph.Clique(8), nil
	case "torus9":
		return taskgraph.Torus(3, 3), nil
	case "btree7":
		return taskgraph.BinaryTree(3), nil
	}
	return nil, fmt.Errorf("unknown topology %q", name)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dagview:", err)
	os.Exit(1)
}
