// Command dagview inspects a task graph stored in either exchange
// format (text .tg or binary .tgb, auto-detected): it prints size
// statistics, levels, the critical path, can export Graphviz dot, and
// can schedule the graph with any of the 15 algorithms to show the
// resulting timeline.
//
// Usage:
//
//	dagview [-dot] [-algo NAME] [-procs N] [-topo hypercube8|ring4|...] file.tg
//
// Without a file argument, dagview reads the graph from stdin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	taskgraph "repro"
)

func main() {
	dot := flag.Bool("dot", false, "print the graph in Graphviz dot format and exit")
	algoName := flag.String("algo", "", "schedule with this algorithm (e.g. MCP, DCP, BSA)")
	procs := flag.Int("procs", 4, "processor count for BNP algorithms")
	topoName := flag.String("topo", "hypercube8", "topology for APN algorithms")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	g, err := taskgraph.ReadGraph(in)
	if err != nil {
		fail(err)
	}

	if *dot {
		fmt.Print(taskgraph.DOT(g, "taskgraph"))
		return
	}

	lv := taskgraph.ComputeLevels(g)
	width := "-" // exact width is O(V·E); skip it on huge graphs
	if g.NumNodes() <= taskgraph.WidthExactCutoff {
		width = fmt.Sprint(taskgraph.Width(g))
	}
	fmt.Printf("nodes=%d edges=%d CCR=%.3f width=%s\n",
		g.NumNodes(), g.NumEdges(), g.CCR(), width)
	fmt.Printf("critical path length=%d path=%v\n", lv.CPLength, taskgraph.CriticalPath(g))

	if *algoName == "" {
		fmt.Println("\nnode  weight  t-level  b-level  static  ALAP")
		for v := 0; v < g.NumNodes(); v++ {
			n := taskgraph.NodeID(v)
			fmt.Printf("%4d  %6d  %7d  %7d  %6d  %4d\n",
				v, g.Weight(n), lv.T[n], lv.B[n], lv.Static[n], lv.ALAP[n])
		}
		return
	}

	name := strings.ToUpper(*algoName)
	if s, err := taskgraph.ScheduleBNP(name, g, *procs); err == nil {
		fmt.Printf("\n%s (BNP, %d procs):\n%s", name, *procs, s)
		return
	}
	if s, err := taskgraph.ScheduleUNC(name, g); err == nil {
		fmt.Printf("\n%s (UNC):\n%s", name, s)
		return
	}
	topo, err := parseTopo(*topoName)
	if err != nil {
		fail(err)
	}
	s, err := taskgraph.ScheduleAPN(name, g, topo)
	if err != nil {
		fail(fmt.Errorf("unknown algorithm %q", *algoName))
	}
	fmt.Printf("\n%s (APN, %s):\n%s", name, topo.Name(), s)
}

func parseTopo(name string) (*taskgraph.Topology, error) {
	switch name {
	case "hypercube8":
		return taskgraph.Hypercube(3), nil
	case "hypercube16":
		return taskgraph.Hypercube(4), nil
	case "ring4":
		return taskgraph.Ring(4), nil
	case "ring8":
		return taskgraph.Ring(8), nil
	case "mesh9":
		return taskgraph.Mesh(3, 3), nil
	case "star8":
		return taskgraph.Star(8), nil
	case "clique8":
		return taskgraph.Clique(8), nil
	case "torus9":
		return taskgraph.Torus(3, 3), nil
	case "btree7":
		return taskgraph.BinaryTree(3), nil
	}
	return nil, fmt.Errorf("unknown topology %q", name)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dagview:", err)
	os.Exit(1)
}
