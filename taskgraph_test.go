package taskgraph

import (
	"bytes"
	"io"
	"sort"
	"strings"
	"testing"
)

func buildDiamond(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	a := b.AddLabeledNode(2, "a")
	nb := b.AddLabeledNode(3, "b")
	c := b.AddLabeledNode(4, "c")
	d := b.AddLabeledNode(1, "d")
	b.AddEdge(a, nb, 1)
	b.AddEdge(a, c, 5)
	b.AddEdge(nb, d, 2)
	b.AddEdge(c, d, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPublicGraphAPI(t *testing.T) {
	g := buildDiamond(t)
	if CriticalPathLength(g) != 15 {
		t.Errorf("CriticalPathLength = %d, want 15", CriticalPathLength(g))
	}
	if Width(g) != 2 {
		t.Errorf("Width = %d, want 2", Width(g))
	}
	cp := CriticalPath(g)
	if len(cp) != 3 {
		t.Errorf("CriticalPath = %v, want 3 nodes", cp)
	}
	lv := ComputeLevels(g)
	if lv.CPLength != 15 {
		t.Errorf("Levels.CPLength = %d", lv.CPLength)
	}
	if !strings.Contains(DOT(g, "x"), "digraph") {
		t.Error("DOT output malformed")
	}
}

func TestPublicGraphRoundTrip(t *testing.T) {
	g := buildDiamond(t)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != 4 || back.NumEdges() != 4 {
		t.Error("round trip lost structure")
	}
}

func TestScheduleAllClassesViaFacade(t *testing.T) {
	g := buildDiamond(t)
	for _, name := range AlgorithmNames(BNP) {
		s, err := ScheduleBNP(name, g, 2)
		if err != nil {
			t.Fatalf("BNP %s: %v", name, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("BNP %s: %v", name, err)
		}
	}
	for _, name := range AlgorithmNames(UNC) {
		s, err := ScheduleUNC(name, g)
		if err != nil {
			t.Fatalf("UNC %s: %v", name, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("UNC %s: %v", name, err)
		}
	}
	topo := Hypercube(2)
	for _, name := range AlgorithmNames(APN) {
		s, err := ScheduleAPN(name, g, topo)
		if err != nil {
			t.Fatalf("APN %s: %v", name, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("APN %s: %v", name, err)
		}
	}
}

func TestUnknownAlgorithmNames(t *testing.T) {
	g := buildDiamond(t)
	if _, err := ScheduleBNP("NOPE", g, 2); err == nil {
		t.Error("unknown BNP name accepted")
	}
	if _, err := ScheduleUNC("NOPE", g); err == nil {
		t.Error("unknown UNC name accepted")
	}
	if _, err := ScheduleAPN("NOPE", g, Ring(3)); err == nil {
		t.Error("unknown APN name accepted")
	}
}

func TestScheduleOptimalFacade(t *testing.T) {
	g := buildDiamond(t)
	res, err := ScheduleOptimal(g, 2, OptimalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Closed || res.Length != 9 {
		t.Errorf("optimal = %d closed=%v, want 9 proven", res.Length, res.Closed)
	}
}

func TestSuitesViaFacade(t *testing.T) {
	if len(PeerSet()) != 10 {
		t.Error("PeerSet size wrong")
	}
	g, err := Cholesky(6, 1.0)
	if err != nil || g.NumNodes() != 6+15 {
		t.Errorf("Cholesky(6): %d nodes, err %v", g.NumNodes(), err)
	}
	if _, err := GaussianElimination(4, 0.5); err != nil {
		t.Error(err)
	}
	if _, err := FFT(8, 1.0); err != nil {
		t.Error(err)
	}
	if _, err := NewTopology(2, [][2]int{{0, 1}}); err != nil {
		t.Error(err)
	}
	if _, err := LU(4, 1.0); err != nil {
		t.Error(err)
	}
}

func TestGeneratorRegistryFacade(t *testing.T) {
	gens := Generators()
	if len(gens) < 11 {
		t.Fatalf("Generators() returned %d families, want >= 11", len(gens))
	}
	for _, g := range gens {
		if g.Name == "" || g.Doc == "" || len(g.Params) == 0 {
			t.Errorf("generator %+v missing name, doc, or params", g.Name)
		}
	}
	g, err := Generate("faninout", 42, GeneratorParams{"v": "25", "ccr": "0.5"})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 25 {
		t.Errorf("faninout v=25 produced %d nodes", g.NumNodes())
	}
	h, err := Generate("faninout", 42, GeneratorParams{"v": "25", "ccr": "0.5"})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := WriteGraph(&a, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteGraph(&b, h); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("Generate is not deterministic through the facade")
	}
	if _, err := Generate("nope", 1, nil); err == nil {
		t.Error("unknown generator accepted")
	}
}

func TestExperimentIDsFacade(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 17 {
		t.Fatalf("ExperimentIDs = %v, want 17 entries", ids)
	}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range []string{"genx", "robust", "components", "adversarial", "faults", "scaling"} {
		if !have[id] {
			t.Errorf("ExperimentIDs missing %s: %v", id, ids)
		}
	}
	var sink bytes.Buffer
	if err := RunExperiment("table1", ExperimentConfig{Seed: 1, Scale: Quick, Out: &sink}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sink.String(), "kwok-ahmad-9") {
		t.Error("table1 output missing PSG rows")
	}
}

func TestFacadeExtensions(t *testing.T) {
	g := buildDiamond(t)
	d, err := ScheduleDSH(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	clustering, err := ScheduleUNC("DSC", g)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"SARKAR", "RCP"} {
		mapped, err := MapClusters(m, clustering, 2)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if err := mapped.Validate(); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
	if _, err := MapClusters("NOPE", clustering, 2); err == nil {
		t.Error("unknown mapper accepted")
	}
	st := ComputeStats(g)
	if st.Nodes != 4 {
		t.Errorf("stats = %+v", st)
	}
	r, err := TransitiveReduction(g)
	if err != nil || r.NumEdges() != 4 {
		t.Errorf("reduction: %v", err)
	}
	var buf bytes.Buffer
	s, err := ScheduleBNP("MCP", g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Gantt(&buf, s, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "P0") {
		t.Error("Gantt output missing rows")
	}
	if Torus(3, 3).NumProcs() != 9 || BinaryTree(2).NumProcs() != 3 {
		t.Error("extra topologies wrong")
	}
	par, err := ScheduleOptimalParallel(g, 2, OptimalOptions{}, 4)
	if err != nil || par.Length != 9 {
		t.Errorf("parallel optimal = %d, err %v", par.Length, err)
	}
}

func TestSimulationFacade(t *testing.T) {
	g := buildDiamond(t)
	s, err := ScheduleBNP("MCP", g, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Unperturbed timetable execution replays the schedule exactly.
	res, err := Simulate(s, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Static != s.Makespan() || res.Makespan != res.Static || res.Ratio != 1 {
		t.Errorf("zero-variance Simulate = %+v, static %d", res, s.Makespan())
	}
	plan, err := CompileSim(s)
	if err != nil {
		t.Fatal(err)
	}
	opts := SimOptions{
		Perturb: SimPerturbation{Dist: DistLognormal, TaskSpread: 0.3, CommSpread: 0.3},
		Policy:  PolicyTimetable,
		Seed:    1,
	}
	st, err := SimMonteCarlo(plan, opts, 50)
	if err != nil {
		t.Fatal(err)
	}
	if st.Trials != 50 || st.Static != res.Static || st.MeanRatio < 1 {
		t.Errorf("SimMonteCarlo stats = %+v", st)
	}
	st2, err := SimMonteCarlo(plan, opts, 50)
	if err != nil {
		t.Fatal(err)
	}
	if st.MeanMakespan != st2.MeanMakespan {
		t.Error("SimMonteCarlo not reproducible")
	}

	as, err := ScheduleAPN("MH", g, Hypercube(2))
	if err != nil {
		t.Fatal(err)
	}
	ares, err := SimulateAPN(as, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ares.Makespan != as.Makespan() {
		t.Errorf("zero-variance SimulateAPN = %+v, static %d", ares, as.Makespan())
	}
	if _, err := CompileSimAPN(as); err != nil {
		t.Fatal(err)
	}
}

// TestFaultFacade pins the fault-injection re-exports: compilation,
// the zero-fault anchor, a crashy Monte-Carlo run under each recovery
// policy constructor, and the APN compile path.
func TestFaultFacade(t *testing.T) {
	if names := RecoveryPolicyNames(); len(names) != 4 {
		t.Errorf("RecoveryPolicyNames = %v, want 4 policies", names)
	}
	g := buildDiamond(t)
	s, err := ScheduleBNP("MCP", g, 2)
	if err != nil {
		t.Fatal(err)
	}
	x, err := CompileFaults(s)
	if err != nil {
		t.Fatal(err)
	}
	// No faults: every trial replays the static schedule exactly.
	st, err := FaultMonteCarlo(x, FaultOptions{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Static != s.Makespan() || st.SurvivalRate != 1 || st.MeanRatio != 1 || st.MeanCrashes != 0 {
		t.Errorf("zero-fault FaultMonteCarlo stats = %+v, static %d", st, s.Makespan())
	}
	// A harsh fault model with each recovery policy; runs must be
	// reproducible and the accounting sane.
	static := s.Makespan()
	for _, pol := range []RecoveryPolicy{
		RecoveryNone(), RecoveryResubmit(), RecoveryCheckpoint(static / 4), RecoveryReplicate(2),
	} {
		opts := FaultOptions{
			Sim:      SimOptions{Seed: 7},
			Faults:   FaultModel{MTBF: static / 2, MeanRepair: static / 8},
			Recovery: pol,
			Deadline: 2 * static,
		}
		st1, err := FaultMonteCarlo(x, opts, 10)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		st2, err := FaultMonteCarlo(x, opts, 10)
		if err != nil {
			t.Fatal(err)
		}
		if st1.Survived != st2.Survived || st1.MeanRatio != st2.MeanRatio {
			t.Errorf("%s: FaultMonteCarlo not reproducible", pol.Name())
		}
		if st1.Survived > st1.Finished || st1.Finished > st1.Trials {
			t.Errorf("%s: inconsistent counts %+v", pol.Name(), st1)
		}
	}

	as, err := ScheduleAPN("MH", g, Hypercube(2))
	if err != nil {
		t.Fatal(err)
	}
	ax, err := CompileFaultsAPN(as)
	if err != nil {
		t.Fatal(err)
	}
	ast, err := FaultMonteCarlo(ax, FaultOptions{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ast.Static != as.Makespan() || ast.MeanRatio != 1 {
		t.Errorf("zero-fault APN FaultMonteCarlo stats = %+v, static %d", ast, as.Makespan())
	}
}

// TestAdversarialFacade pins the adversarial re-exports: pair parsing,
// a tiny search through the real evaluator, edge perturbation, and the
// fixture archive round trip.
func TestAdversarialFacade(t *testing.T) {
	if _, _, err := ParseAlgorithmPair("MCP:NOPE"); err == nil {
		t.Error("ParseAlgorithmPair accepted an unknown algorithm")
	}
	names := AlgorithmPairNames()
	if len(names) == 0 || !sort.StringsAreSorted(names) {
		t.Errorf("AlgorithmPairNames = %v, want a sorted non-empty list", names)
	}

	opts := AdversarialDefaults(11)
	opts.Generations = 2
	opts.Population = 6
	cfg := ExperimentConfig{Seed: 11, Scale: Quick, Out: io.Discard, Workers: 2}
	rep, err := AdversarialSearch(cfg, opts, "MCP", "LAST")
	if err != nil {
		t.Fatal(err)
	}
	if rep.AlgA != "MCP" || rep.AlgB != "LAST" || len(rep.Trace) != 2 {
		t.Errorf("report = pair %s:%s, %d trace entries", rep.AlgA, rep.AlgB, len(rep.Trace))
	}

	g := buildDiamond(t)
	perturbed, err := PerturbEdges(g, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if perturbed.NumNodes() != g.NumNodes() || perturbed.NumEdges() != g.NumEdges() {
		t.Error("PerturbEdges changed the graph structure")
	}

	dir := t.TempDir()
	paths, err := ArchiveAdversarial(dir, rep, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	fixtures, err := LoadAdversarialFixtures(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) != len(paths) {
		t.Errorf("archived %d fixtures, loaded %d", len(paths), len(fixtures))
	}
}
