package sim

import (
	"fmt"
	"math"
	"sort"
)

// Stats summarizes a Monte-Carlo execution study of one compiled
// schedule: the distribution of realized makespans over independent
// perturbation trials.
type Stats struct {
	// Static is the planned makespan of the schedule.
	Static int64
	// Trials is the number of simulated executions.
	Trials int
	// MeanMakespan is the average realized makespan.
	MeanMakespan float64
	// P99Makespan is the 99th-percentile realized makespan (the
	// smallest realized value at or above 99% of the trials).
	P99Makespan int64
	// MaxMakespan is the worst realized makespan.
	MaxMakespan int64
	// MeanRatio is the average of realized/static makespan ratios.
	MeanRatio float64
	// P99Ratio is the 99th-percentile realized/static ratio.
	P99Ratio float64
	// Ratios holds the per-trial realized/static ratios in trial
	// order, for callers that aggregate across schedules.
	Ratios []float64
}

// MonteCarlo executes the plan for the given number of independent
// trials (trial numbers 0..trials-1) and returns the realized-makespan
// statistics. Results are deterministic in (opts, trials) and
// byte-reproducible at any concurrency: each trial's perturbation is a
// pure function of (opts.Seed, trial, entity).
func MonteCarlo(p *Plan, opts Options, trials int) (Stats, error) {
	if trials < 1 {
		return Stats{}, fmt.Errorf("sim: MonteCarlo needs at least one trial, got %d", trials)
	}
	if err := opts.validate(p.numProcs); err != nil {
		return Stats{}, err
	}
	mks := make([]int64, trials)
	st := Stats{Static: p.static, Trials: trials, Ratios: make([]float64, trials)}
	var sum, sumRatio float64
	for t := range mks {
		mk := p.run(&opts, trialSeed(opts.Seed, t))
		mks[t] = mk
		r := ratio(mk, p.static)
		st.Ratios[t] = r
		sum += float64(mk)
		sumRatio += r
	}
	st.MeanMakespan = sum / float64(trials)
	st.MeanRatio = sumRatio / float64(trials)
	sorted := append([]int64(nil), mks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	st.P99Makespan = sorted[PercentileIndex(trials, 0.99)]
	st.MaxMakespan = sorted[trials-1]
	st.P99Ratio = ratio(st.P99Makespan, p.static)
	return st, nil
}

// PercentileIndex returns the index of the q-th percentile in a
// sorted sample of n values: the smallest index covering at least q
// of the mass (nearest-rank method). Exported so consumers pooling
// ratios across several Stats use the same method as Stats itself.
func PercentileIndex(n int, q float64) int {
	i := int(math.Ceil(float64(n)*q)) - 1
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
