package sim

import (
	"fmt"
	"sort"

	"repro/internal/dag"
	"repro/internal/machine"
)

// CompileAPN translates a complete APN schedule into an executable
// Plan. Tasks become jobs exactly as in the clique model; in addition,
// every committed link reservation becomes a message-transfer job
// whose duration is the (perturbable) edge cost. Arcs chain each
// message store-and-forward along its committed route — parent task to
// first hop, hop to hop, last hop to child task — and chain every
// directed link channel through its transfers in static reservation
// order, which is the per-link contention queue: a transfer cannot
// begin until the channel has finished every transfer planned before
// it. Co-located and zero-cost edges release the child directly.
func CompileAPN(s *machine.Schedule) (*Plan, error) {
	if !s.Complete() {
		return nil, fmt.Errorf("sim: cannot compile a partial APN schedule (%d of %d tasks placed)",
			s.Placed(), s.Graph().NumNodes())
	}
	g := s.Graph()
	n := g.NumNodes()
	var b planBuilder
	b.plan.tasks = n
	b.plan.numProcs = s.NumProcs()
	b.plan.static = s.Makespan()
	b.plan.jobs = make([]planJob, 0, n)
	for v := 0; v < n; v++ {
		node := dag.NodeID(v)
		// As in Compile, the base duration comes from the schedule so
		// heterogeneous execution times replay exactly.
		b.addJob(planJob{
			base:    s.FinishOf(node) - s.StartOf(node),
			planned: s.StartOf(node),
			ent:     taskEnt(node),
			proc:    int32(s.ProcOf(node)),
		})
	}
	for p := 0; p < s.NumProcs(); p++ {
		slots := s.Slots(p)
		for i := 1; i < len(slots); i++ {
			b.addArc(int32(slots[i-1].Node), int32(slots[i].Node), 0, 0)
		}
	}
	// Message-hop jobs, one per committed link reservation, chained
	// along the route, plus per-channel transfer lists for the
	// contention queues. Channels are keyed by directed endpoint pair
	// and discovered in deterministic edge order.
	type chanHop struct {
		job   int32
		start int64 // static reservation start, the queue order key
	}
	chanIndex := map[[2]int]int{}
	var chanHops [][]chanHop
	for v := 0; v < n; v++ {
		child := dag.NodeID(v)
		for _, pr := range g.Preds(child) {
			parent := pr.To
			prev := int32(parent) // previous job in the message chain
			s.EachMessageHop(parent, child, func(h machine.LinkHop) {
				job := b.addJob(planJob{
					base:    h.Finish - h.Start,
					planned: h.Start,
					ent:     commEnt(parent, child),
					proc:    -1,
				})
				b.addArc(prev, job, 0, 0)
				key := [2]int{h.From, h.To}
				ci, ok := chanIndex[key]
				if !ok {
					ci = len(chanHops)
					chanIndex[key] = ci
					chanHops = append(chanHops, nil)
				}
				chanHops[ci] = append(chanHops[ci], chanHop{job: job, start: h.Start})
				prev = job
			})
			// The child waits for the last hop, or directly for the
			// parent when the edge needed no link time.
			b.addArc(prev, int32(child), 0, 0)
		}
	}
	// Contention queues: chain each channel's transfers in static
	// start order. Static reservations on one channel never overlap
	// and have positive duration, so starts are distinct and the
	// order is total.
	for _, hops := range chanHops {
		sort.Slice(hops, func(i, j int) bool { return hops[i].start < hops[j].start })
		for i := 1; i < len(hops); i++ {
			b.addArc(hops[i-1].job, hops[i].job, 0, 0)
		}
	}
	return b.finalize(), nil
}

// SimulateAPN compiles and executes a complete APN schedule once under
// the given options (trial 0). For repeated execution compile once
// with CompileAPN and call Plan.Run or MonteCarlo.
func SimulateAPN(s *machine.Schedule, opts Options) (Result, error) {
	plan, err := CompileAPN(s)
	if err != nil {
		return Result{}, err
	}
	mk, err := plan.Run(opts, 0)
	if err != nil {
		return Result{}, err
	}
	return Result{Static: plan.static, Makespan: mk, Ratio: ratio(mk, plan.static)}, nil
}
