package sim

import "testing"

func TestExpDurationDeterministicAndPositive(t *testing.T) {
	trial := TrialSeed(7, 3)
	for k := 0; k < 200; k++ {
		ent := ProcFaultEntity(2, k)
		d := ExpDuration(1000, trial, ent)
		if d < 1 {
			t.Fatalf("draw %d: non-positive duration %d", k, d)
		}
		if d2 := ExpDuration(1000, trial, ent); d2 != d {
			t.Fatalf("draw %d: repeat draw %d != %d", k, d2, d)
		}
	}
	// A tiny mean still yields at least one tick.
	if d := ExpDuration(1, trial, ProcFaultEntity(0, 0)); d < 1 {
		t.Fatalf("mean-1 draw yields %d", d)
	}
}

func TestExpDurationMeanRoughlyMatches(t *testing.T) {
	const mean, draws = 10_000, 4000
	trial := TrialSeed(11, 0)
	var sum int64
	for k := 0; k < draws; k++ {
		sum += ExpDuration(mean, trial, ProcFaultEntity(1, k))
	}
	got := float64(sum) / draws
	if got < 0.9*mean || got > 1.1*mean {
		t.Fatalf("empirical mean %.0f is not within 10%% of %d", got, mean)
	}
}

func TestFaultEntityKeysDistinct(t *testing.T) {
	seen := map[uint64]string{}
	add := func(key uint64, label string) {
		t.Helper()
		if prev, ok := seen[key]; ok {
			t.Fatalf("entity collision: %s and %s share key %#x", prev, label, key)
		}
		seen[key] = label
	}
	for p := 0; p < 8; p++ {
		for k := 0; k < 16; k++ {
			add(ProcFaultEntity(p, k), "proc")
		}
	}
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			if u == v {
				continue
			}
			for k := 0; k < 16; k++ {
				add(LinkFaultEntity(u, v, k), "link")
			}
		}
	}
	// Fault entities live in their own kind space, disjoint from task
	// and communication entities.
	add(taskEnt(0), "task")
	add(commEnt(0, 1), "comm")
}

func TestFaultModelValidate(t *testing.T) {
	cases := []struct {
		name string
		m    FaultModel
		ok   bool
	}{
		{"zero", FaultModel{}, true},
		{"crash only", FaultModel{MTBF: 100}, true},
		{"crash and repair", FaultModel{MTBF: 100, MeanRepair: 10}, true},
		{"links", FaultModel{LinkMTBF: 50, MeanOutage: 5}, true},
		{"negative mtbf", FaultModel{MTBF: -1}, false},
		{"negative repair", FaultModel{MeanRepair: -2}, false},
		{"outage without mean", FaultModel{LinkMTBF: 50}, false},
		{"negative outage", FaultModel{LinkMTBF: 50, MeanOutage: -1}, false},
	}
	for _, tc := range cases {
		err := tc.m.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: error expected", tc.name)
		}
	}
	if (&FaultModel{}).Enabled() {
		t.Error("zero model reports enabled")
	}
	if m := (FaultModel{MTBF: 1}); !m.Enabled() {
		t.Error("crash model reports disabled")
	}
	if m := (FaultModel{LinkMTBF: 1, MeanOutage: 1}); !m.Enabled() {
		t.Error("link model reports disabled")
	}
}
