package sim

import (
	"testing"

	"repro/internal/algo/apn"
	"repro/internal/algo/bnp"
	"repro/internal/algo/param"
	"repro/internal/machine"
	"repro/internal/sched"
)

// checkCliqueZeroVariance compiles a complete clique schedule and
// checks the zero-variance anchor: timetable dispatch reproduces the
// static makespan exactly, eager never exceeds it.
func checkCliqueZeroVariance(t *testing.T, name, fam string, s *sched.Schedule) {
	t.Helper()
	plan, err := Compile(s)
	if err != nil {
		t.Fatalf("compile %s on %s: %v", name, fam, err)
	}
	mk, err := plan.Run(Options{Policy: PolicyTimetable}, 0)
	if err != nil {
		t.Fatalf("%s on %s: %v", name, fam, err)
	}
	if mk != s.Makespan() {
		t.Errorf("%s on %s: timetable zero-variance makespan %d != static %d", name, fam, mk, s.Makespan())
	}
	mk, err = plan.Run(Options{Policy: PolicyEager}, 0)
	if err != nil {
		t.Fatalf("%s eager on %s: %v", name, fam, err)
	}
	if mk > s.Makespan() {
		t.Errorf("%s on %s: eager zero-variance makespan %d > static %d", name, fam, mk, s.Makespan())
	}
}

// TestZeroVarianceReproducesStaticHeterogeneous extends the anchor
// invariant to heterogeneous schedules: the compiled plan reads task
// durations off the schedule (finish − start), so per-processor speed
// vectors replay exactly.
func TestZeroVarianceReproducesStaticHeterogeneous(t *testing.T) {
	speeds := []float64{1.0, 2.5, 4.0, 1.0, 3.0, 2.0, 1.5, 4.0}
	for _, inst := range invariantInstances(t) {
		// One classic kernel and one combination only expressible in the
		// parameterized space (EFT + insertion, the HEFT-style pairing).
		s, err := bnp.ScheduleHet("MCP", inst.G, len(speeds), speeds)
		if err != nil {
			t.Fatalf("MCP het on %s: %v", inst.Name, err)
		}
		checkCliqueZeroVariance(t, "MCP-het", inst.Name, s)
		s.Release()

		combo := param.Combo{Metric: param.MetricBT, Rule: param.RuleEFT, Slot: param.SlotInsertion, Regime: param.RegimeDynamic}
		ps, err := combo.Schedule(inst.G, len(speeds), speeds)
		if err != nil {
			t.Fatalf("%s het on %s: %v", combo.Name(), inst.Name, err)
		}
		checkCliqueZeroVariance(t, combo.Name()+"-het", inst.Name, ps)
		ps.Release()
	}
}

// TestZeroVarianceAPNHeterogeneous runs the same invariant for a
// heterogeneous APN schedule with link contention.
func TestZeroVarianceAPNHeterogeneous(t *testing.T) {
	topo := machine.Hypercube(3)
	speeds := []float64{1.0, 2.0, 4.0, 1.0, 2.0, 4.0, 1.0, 2.0}
	for _, inst := range invariantInstances(t) {
		s, err := apn.ScheduleHet("MH", inst.G, topo, speeds)
		if err != nil {
			t.Fatalf("MH het on %s: %v", inst.Name, err)
		}
		plan, err := CompileAPN(s)
		if err != nil {
			t.Fatalf("compile MH het on %s: %v", inst.Name, err)
		}
		mk, err := plan.Run(Options{Policy: PolicyTimetable}, 0)
		if err != nil {
			t.Fatalf("MH het on %s: %v", inst.Name, err)
		}
		if mk != s.Makespan() {
			t.Errorf("MH het on %s: timetable zero-variance makespan %d != static %d", inst.Name, mk, s.Makespan())
		}
		mk, err = plan.Run(Options{Policy: PolicyEager}, 0)
		if err != nil {
			t.Fatalf("MH het eager on %s: %v", inst.Name, err)
		}
		if mk > s.Makespan() {
			t.Errorf("MH het on %s: eager zero-variance makespan %d > static %d", inst.Name, mk, s.Makespan())
		}
	}
}
