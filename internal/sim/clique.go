package sim

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/sched"
)

// Compile translates a complete clique-model schedule (BNP and UNC
// classes) into an executable Plan. Jobs are the tasks; arcs encode
// the static per-processor execution order (consecutive slots chain)
// and every precedence edge, with the edge's communication cost as a
// perturbable lag when the endpoints sit on different processors and
// no lag when they are co-located.
func Compile(s *sched.Schedule) (*Plan, error) {
	if !s.Complete() {
		return nil, fmt.Errorf("sim: cannot compile a partial schedule (%d of %d tasks placed)",
			s.Placed(), s.Graph().NumNodes())
	}
	g := s.Graph()
	n := g.NumNodes()
	var b planBuilder
	b.plan.tasks = n
	b.plan.numProcs = s.NumProcs()
	b.plan.static = s.Makespan()
	b.plan.jobs = make([]planJob, 0, n)
	for v := 0; v < n; v++ {
		node := dag.NodeID(v)
		// The base duration is read off the schedule, not the graph, so
		// a heterogeneous schedule (per-processor speeds) replays the
		// execution times it actually committed; Options.Speed is a
		// further runtime perturbation on top of these.
		b.addJob(planJob{
			base:    s.FinishOf(node) - s.StartOf(node),
			planned: s.StartOf(node),
			ent:     taskEnt(node),
			proc:    int32(s.ProcOf(node)),
		})
	}
	// Processor-exclusivity chains: each processor runs its tasks in
	// the static start order.
	for p := 0; p < s.NumProcs(); p++ {
		slots := s.Slots(p)
		for i := 1; i < len(slots); i++ {
			b.addArc(int32(slots[i-1].Node), int32(slots[i].Node), 0, 0)
		}
	}
	// Precedence: co-located data is free, remote data pays the
	// (perturbable) edge cost.
	for v := 0; v < n; v++ {
		node := dag.NodeID(v)
		for _, a := range g.Succs(node) {
			if s.ProcOf(node) == s.ProcOf(a.To) {
				b.addArc(int32(node), int32(a.To), 0, 0)
			} else {
				b.addArc(int32(node), int32(a.To), a.Weight, commEnt(node, a.To))
			}
		}
	}
	return b.finalize(), nil
}

// Simulate compiles and executes a complete clique-model schedule once
// under the given options (trial 0). For repeated execution compile
// once with Compile and call Plan.Run or MonteCarlo.
func Simulate(s *sched.Schedule, opts Options) (Result, error) {
	plan, err := Compile(s)
	if err != nil {
		return Result{}, err
	}
	mk, err := plan.Run(opts, 0)
	if err != nil {
		return Result{}, err
	}
	return Result{Static: plan.static, Makespan: mk, Ratio: ratio(mk, plan.static)}, nil
}
