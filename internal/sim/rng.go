package sim

import (
	"math"

	"repro/internal/dag"
)

// Counter-based randomness: every multiplier is a pure hash of
// (seed, trial, entity), so draws are independent of event-processing
// order, identical for the same entity across algorithms and worker
// counts, and reproducible without carrying generator state.

// Entity keys name the perturbable quantities of a plan. The top two
// bits carry the kind (task duration vs communication cost), which
// selects the spread parameter; the low bits identify the task or the
// task-graph edge. All hops of one message share the edge's key, so a
// message is slow on every link of its route or on none.
const (
	entTask uint64 = 1 << 62
	entComm uint64 = 2 << 62
)

// taskEnt returns the entity key of node n's duration.
func taskEnt(n dag.NodeID) uint64 { return entTask | uint64(uint32(n)) }

// commEnt returns the entity key of edge (u,v)'s communication cost.
func commEnt(u, v dag.NodeID) uint64 {
	return entComm | uint64(uint32(u))<<31 | uint64(uint32(v))
}

// splitmix64 is the finalizer of the SplitMix64 generator: a bijective
// avalanche mix used here as a counter-based hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// trialSeed mixes the base seed with a trial number into the 64-bit
// stream selector shared by every entity of that trial.
func trialSeed(seed int64, trial int) uint64 {
	return splitmix64(splitmix64(uint64(seed)) + uint64(int64(trial)))
}

// u01 maps 64 random bits to a float in [0, 1).
func u01(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// u01pos maps 64 random bits to a float in (0, 1], safe for log.
func u01pos(x uint64) float64 { return float64(x>>11+1) / (1 << 53) }

// multiplier draws the duration multiplier of one entity for one
// trial. DistNone and a zero spread yield exactly 1 with no draws, so
// unperturbed runs stay in exact integer arithmetic.
func (p *Perturbation) multiplier(trial uint64, ent uint64) float64 {
	spread := p.TaskSpread
	if ent&entComm != 0 {
		spread = p.CommSpread
	}
	if p.Dist == DistNone || spread == 0 {
		return 1
	}
	h := splitmix64(trial ^ splitmix64(ent))
	switch p.Dist {
	case DistUniform:
		return 1 + spread*(2*u01(h)-1)
	case DistLognormal:
		// Box-Muller; the -spread²/2 shift makes the mean exactly 1.
		z := math.Sqrt(-2*math.Log(u01pos(h))) * math.Cos(2*math.Pi*u01(splitmix64(h)))
		return math.Exp(spread*z - spread*spread/2)
	}
	return 1
}

// scaleDur scales an integer duration by a multiplier, rounding to the
// nearest tick and never going negative. m == 1 returns base exactly.
func scaleDur(base int64, m float64) int64 {
	if m == 1 || base == 0 {
		return base
	}
	d := int64(math.Round(float64(base) * m))
	if d < 0 {
		return 0
	}
	return d
}
