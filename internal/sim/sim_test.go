package sim

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/machine"
	"repro/internal/sched"
)

// chainGraph builds A(10) -> C(5) with edge cost 7, plus independent
// B(20): the smallest graph exercising data arrival, processor order,
// and co-location at once.
func chainGraph(t *testing.T) (*dag.Graph, dag.NodeID, dag.NodeID, dag.NodeID) {
	t.Helper()
	b := dag.NewBuilder()
	a := b.AddNode(10)
	bb := b.AddNode(20)
	c := b.AddNode(5)
	b.AddEdge(a, c, 7)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, a, bb, c
}

// TestCliqueSemantics hand-checks one clique execution: remote data
// arrival (A finishes 10, +7 comm = 17) and processor order (B holds
// P1 until 20) give C start 20, finish 25.
func TestCliqueSemantics(t *testing.T) {
	g, a, bb, c := chainGraph(t)
	s := sched.New(g, 2)
	s.MustPlace(a, 0, 0)
	s.MustPlace(bb, 1, 0)
	s.MustPlace(c, 1, 20)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, policy := range []Policy{PolicyTimetable, PolicyEager} {
		res, err := Simulate(s, Options{Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		if res.Static != 25 || res.Makespan != 25 || res.Ratio != 1 {
			t.Errorf("policy %v: got %+v, want static=makespan=25", policy, res)
		}
	}
}

// TestSpeedFactors slows P1 by 2x: B takes 40, C waits for the
// processor and runs doubled, finishing at 50.
func TestSpeedFactors(t *testing.T) {
	g, a, bb, c := chainGraph(t)
	s := sched.New(g, 2)
	s.MustPlace(a, 0, 0)
	s.MustPlace(bb, 1, 0)
	s.MustPlace(c, 1, 20)
	for _, policy := range []Policy{PolicyTimetable, PolicyEager} {
		res, err := Simulate(s, Options{Policy: policy, Speed: []float64{1, 2}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan != 50 {
			t.Errorf("policy %v: makespan = %d, want 50", policy, res.Makespan)
		}
	}
}

// TestPolicies distinguishes the dispatch rules on a schedule with an
// unexplained gap: C planned at 30 though its constraints clear at 20.
// Timetable replays the plan (35); eager compresses the gap (25 — B's
// 20 still runs, C finishes at 25).
func TestPolicies(t *testing.T) {
	g, a, bb, c := chainGraph(t)
	s := sched.New(g, 2)
	s.MustPlace(a, 0, 0)
	s.MustPlace(bb, 1, 0)
	s.MustPlace(c, 1, 30)
	if res, err := Simulate(s, Options{Policy: PolicyTimetable}); err != nil || res.Makespan != 35 {
		t.Errorf("timetable: res=%+v err=%v, want makespan 35", res, err)
	}
	if res, err := Simulate(s, Options{Policy: PolicyEager}); err != nil || res.Makespan != 25 {
		t.Errorf("eager: res=%+v err=%v, want makespan 25", res, err)
	}
}

// TestAPNContention hand-checks the per-link FIFO queue on a 2-chain:
// two messages share channel 0->1; slowing P0 delays both senders and
// the second transfer must additionally wait for the first to clear
// the link.
func TestAPNContention(t *testing.T) {
	b := dag.NewBuilder()
	a := b.AddNode(2)  // on P0
	c := b.AddNode(3)  // on P0
	bb := b.AddNode(1) // on P1, child of a
	d := b.AddNode(1)  // on P1, child of c
	b.AddEdge(a, bb, 4)
	b.AddEdge(c, d, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	topo := machine.Chain(2)
	s := machine.NewSchedule(g, topo)
	s.MustPlace(a, 0, 0)
	s.MustPlace(c, 0, 2)
	est, ok := s.ESTOn(bb, 1, false)
	if !ok || est != 6 {
		t.Fatalf("EST of first receiver = %d (ok=%v), want 6", est, ok)
	}
	s.MustPlace(bb, 1, est)
	est, ok = s.ESTOn(d, 1, false)
	if !ok || est != 10 {
		t.Fatalf("EST of second receiver = %d (ok=%v), want 10 (link busy 2-6)", est, ok)
	}
	s.MustPlace(d, 1, est)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 11 {
		t.Fatalf("static makespan = %d, want 11", s.Makespan())
	}
	// Unperturbed replay is exact under both policies (this schedule
	// has no unexplained idle).
	for _, policy := range []Policy{PolicyTimetable, PolicyEager} {
		res, err := SimulateAPN(s, Options{Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan != 11 {
			t.Errorf("policy %v: makespan = %d, want 11", policy, res.Makespan)
		}
	}
	// Slow P0 by 2x: A finishes 4, C finishes 10. A's transfer holds
	// the channel [4,8), B runs [8,9). C's transfer waits for its data
	// (10) and the free channel, holding [10,14); D runs [14,15).
	for _, policy := range []Policy{PolicyTimetable, PolicyEager} {
		res, err := SimulateAPN(s, Options{Policy: policy, Speed: []float64{2, 1}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan != 15 {
			t.Errorf("policy %v with slow sender: makespan = %d, want 15", policy, res.Makespan)
		}
	}
}

// TestDeterminism pins the counter-based randomness: equal (seed,
// trial) reproduce the same makespan, distinct trials perturb
// differently, and MonteCarlo is reproducible end to end.
func TestDeterminism(t *testing.T) {
	g, a, bb, c := chainGraph(t)
	s := sched.New(g, 2)
	s.MustPlace(a, 0, 0)
	s.MustPlace(bb, 1, 0)
	s.MustPlace(c, 1, 20)
	plan, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Perturb: Perturbation{Dist: DistLognormal, TaskSpread: 0.4, CommSpread: 0.4}, Seed: 11}
	first := make([]int64, 16)
	distinct := false
	for i := range first {
		mk, err := plan.Run(opts, i)
		if err != nil {
			t.Fatal(err)
		}
		first[i] = mk
		if mk != first[0] {
			distinct = true
		}
	}
	if !distinct {
		t.Error("16 lognormal trials all realized the same makespan; perturbation looks inert")
	}
	for i := range first {
		mk, err := plan.Run(opts, i)
		if err != nil {
			t.Fatal(err)
		}
		if mk != first[i] {
			t.Fatalf("trial %d not reproducible: %d then %d", i, first[i], mk)
		}
	}
	st1, err := MonteCarlo(plan, opts, 40)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := MonteCarlo(plan, opts, 40)
	if err != nil {
		t.Fatal(err)
	}
	if st1.MeanMakespan != st2.MeanMakespan || st1.P99Makespan != st2.P99Makespan {
		t.Errorf("MonteCarlo not reproducible: %+v vs %+v", st1, st2)
	}
	if st1.Static != 25 || st1.Trials != 40 || len(st1.Ratios) != 40 {
		t.Errorf("MonteCarlo bookkeeping wrong: %+v", st1)
	}
	if st1.MaxMakespan < st1.P99Makespan {
		t.Errorf("max %d below P99 %d", st1.MaxMakespan, st1.P99Makespan)
	}
}

// TestZeroSpreadIsExact verifies that every distribution with spread 0
// — not just DistNone — replays exactly, keeping the zero-variance
// anchor independent of the distribution switch.
func TestZeroSpreadIsExact(t *testing.T) {
	g, a, bb, c := chainGraph(t)
	s := sched.New(g, 2)
	s.MustPlace(a, 0, 0)
	s.MustPlace(bb, 1, 0)
	s.MustPlace(c, 1, 20)
	for _, d := range []Distribution{DistNone, DistUniform, DistLognormal} {
		res, err := Simulate(s, Options{Perturb: Perturbation{Dist: d}, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan != 25 {
			t.Errorf("%v with zero spread: makespan = %d, want 25", d, res.Makespan)
		}
	}
}

// TestOptionsValidation exercises the rejection paths.
func TestOptionsValidation(t *testing.T) {
	g, a, bb, c := chainGraph(t)
	s := sched.New(g, 2)
	s.MustPlace(a, 0, 0)
	s.MustPlace(bb, 1, 0)
	// Partial schedule is rejected at compile time.
	if _, err := Compile(s); err == nil {
		t.Error("compiling a partial schedule succeeded")
	}
	s.MustPlace(c, 1, 20)
	bad := []Options{
		{Perturb: Perturbation{Dist: Distribution(9)}},
		{Perturb: Perturbation{Dist: DistUniform, TaskSpread: 1.5}},
		{Perturb: Perturbation{Dist: DistLognormal, CommSpread: -0.1}},
		{Policy: Policy(7)},
		{Speed: []float64{1}},          // wrong length
		{Speed: []float64{1, 0}},       // non-positive factor
		{Speed: []float64{1, 1, 1, 1}}, // wrong length
	}
	for i, opts := range bad {
		if _, err := Simulate(s, opts); err == nil {
			t.Errorf("bad options %d accepted: %+v", i, opts)
		}
	}
	if _, err := MonteCarlo(mustCompile(t, s), Options{}, 0); err == nil {
		t.Error("MonteCarlo with 0 trials succeeded")
	}
}

func mustCompile(t *testing.T, s *sched.Schedule) *Plan {
	t.Helper()
	p, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPercentileIndex pins the nearest-rank percentile indices.
func TestPercentileIndex(t *testing.T) {
	cases := []struct{ n, want int }{{1, 0}, {25, 24}, {100, 98}, {200, 197}, {1000, 989}}
	for _, c := range cases {
		if got := PercentileIndex(c.n, 0.99); got != c.want {
			t.Errorf("PercentileIndex(%d, 0.99) = %d, want %d", c.n, got, c.want)
		}
	}
}

// TestLognormalMeanIsOne checks the -sigma^2/2 correction empirically:
// the average multiplier over many draws must approach 1.
func TestLognormalMeanIsOne(t *testing.T) {
	p := Perturbation{Dist: DistLognormal, TaskSpread: 0.3}
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += p.multiplier(trialSeed(1, i), taskEnt(dag.NodeID(i%97)))
	}
	if mean := sum / n; mean < 0.99 || mean > 1.01 {
		t.Errorf("lognormal multiplier mean = %.4f, want ~1", mean)
	}
}

// TestUniformBounds checks uniform draws stay inside [1-s, 1+s].
func TestUniformBounds(t *testing.T) {
	p := Perturbation{Dist: DistUniform, TaskSpread: 0.25, CommSpread: 0.75}
	for i := 0; i < 10000; i++ {
		mt := p.multiplier(trialSeed(2, i), taskEnt(dag.NodeID(i%31)))
		if mt < 0.75 || mt > 1.25 {
			t.Fatalf("task multiplier %.4f outside [0.75, 1.25]", mt)
		}
		mc := p.multiplier(trialSeed(2, i), commEnt(dag.NodeID(i%31), dag.NodeID(i%13)))
		if mc < 0.25 || mc > 1.75 {
			t.Fatalf("comm multiplier %.4f outside [0.25, 1.75]", mc)
		}
	}
}
