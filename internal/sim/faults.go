package sim

import (
	"fmt"
	"math"

	"repro/internal/dag"
)

// Fault entities extend the counter-based randomness of rng.go to
// machine failures: every uptime, downtime, and link-outage duration is
// a pure hash of (seed, trial, entity), so failure traces are
// independent of event-processing order, identical for the same machine
// across algorithms and recovery policies (paired comparisons), and
// byte-reproducible at any worker count. The entFault kind occupies the
// remaining top-bit pattern next to entTask and entComm; bit 61
// separates processor-fault entities from link-outage entities, and the
// low bits carry the processor (or directed channel) plus the draw
// index along that entity's alternating up/down sequence.
const (
	entFault     uint64 = 3 << 62
	entFaultLink uint64 = 1 << 61
)

// ProcFaultEntity returns the entity key of the k-th fault draw of
// processor p: draws alternate uptime, downtime, uptime, ... along k.
func ProcFaultEntity(p, k int) uint64 {
	return entFault | uint64(uint32(p))<<32 | uint64(uint32(k))
}

// LinkFaultEntity returns the entity key of the k-th outage draw of the
// directed channel u -> v: draws alternate up-window, outage-window,
// ... along k.
func LinkFaultEntity(u, v, k int) uint64 {
	return entFault | entFaultLink | uint64(uint16(u))<<44 | uint64(uint16(v))<<28 | uint64(uint32(k))&0xfffffff
}

// ExpDuration draws a deterministic exponential duration with the given
// mean for one (trial, entity) pair, rounded to the nearest tick with a
// one-tick minimum. It is the counter-based analogue of sampling a
// time-to-failure or repair time: the draw depends only on the hash
// inputs, never on simulation state.
func ExpDuration(mean int64, trial, ent uint64) int64 {
	h := splitmix64(trial ^ splitmix64(ent))
	d := int64(math.Round(-float64(mean) * math.Log(u01pos(h))))
	if d < 1 {
		return 1
	}
	return d
}

// FaultModel configures deterministic fail-stop processor crashes and
// transient link outages for a simulated execution. The zero value
// injects no faults.
type FaultModel struct {
	// MTBF is the mean uptime before a processor crashes (exponential
	// time-to-failure, drawn per processor); 0 disables crashes. A crash
	// kills the task running on the processor and all unstarted work
	// placed there.
	MTBF int64
	// MeanRepair is the mean downtime before a crashed processor
	// returns to service (exponential, drawn per crash); 0 means crashed
	// processors never return.
	MeanRepair int64
	// LinkMTBF is the mean up time between transient outages of a
	// directed link channel (APN schedules only); 0 disables outages.
	// During an outage the channel's FIFO queue stalls: no new transfer
	// may start until the outage window closes (in-flight transfers
	// complete, store-and-forward).
	LinkMTBF int64
	// MeanOutage is the mean length of one link-outage window; it must
	// be positive when LinkMTBF is.
	MeanOutage int64
}

// Enabled reports whether the model injects any faults.
func (f *FaultModel) Enabled() bool { return f.MTBF > 0 || f.LinkMTBF > 0 }

// Validate checks the model's parameters.
func (f *FaultModel) Validate() error {
	for _, v := range [...]int64{f.MTBF, f.MeanRepair, f.LinkMTBF, f.MeanOutage} {
		if v < 0 {
			return fmt.Errorf("sim: negative fault-model duration %d", v)
		}
	}
	if f.LinkMTBF > 0 && f.MeanOutage == 0 {
		return fmt.Errorf("sim: link outages need a positive MeanOutage")
	}
	return nil
}

// The exported counter-based randomness surface: internal/ft replays
// schedules under faults with its own discrete-event engine and must
// draw byte-identical multipliers for the same (seed, trial, entity) as
// this package's engine, so the zero-fault path reproduces Plan.Run
// exactly.

// TrialSeed mixes the base seed with a trial number into the 64-bit
// stream selector shared by every entity of that trial.
func TrialSeed(seed int64, trial int) uint64 { return trialSeed(seed, trial) }

// TaskEntity returns the entity key of node n's duration.
func TaskEntity(n dag.NodeID) uint64 { return taskEnt(n) }

// CommEntity returns the entity key of edge (u, v)'s communication
// cost; all hops of one message share it.
func CommEntity(u, v dag.NodeID) uint64 { return commEnt(u, v) }

// Multiplier draws the duration multiplier of one entity for one trial,
// exactly as the engine does.
func (p *Perturbation) Multiplier(trial, ent uint64) float64 { return p.multiplier(trial, ent) }

// ScaleDur scales an integer duration by a multiplier, rounding to the
// nearest tick and never going negative. m == 1 returns base exactly.
func ScaleDur(base int64, m float64) int64 { return scaleDur(base, m) }

// Validate checks the options against a processor count, exactly as
// Plan.Run does before executing.
func (o *Options) Validate(numProcs int) error { return o.validate(numProcs) }
