package sim

import (
	"sync"

	"repro/internal/obs"
	"repro/internal/pq"
)

// Plan is a compiled schedule: a dependency graph of jobs ready to be
// executed by the discrete-event engine any number of times. Job IDs
// below tasks are task executions (one per graph node, ID == NodeID);
// the rest are per-link message transfers of an APN schedule. Arcs
// carry the release constraints — precedence (with the communication
// lag for clique schedules), processor order, message-hop chains, and
// link-channel order — in compressed sparse row form.
//
// A Plan is immutable after compilation and safe for concurrent Run
// calls from multiple goroutines.
type Plan struct {
	jobs     []planJob
	arcs     []planArc
	arcOff   []int32
	indeg    []int32
	tasks    int   // jobs[0:tasks] are task executions
	numProcs int   // processor count, for Options.Speed validation
	static   int64 // the schedule's planned makespan
}

// planJob is one unit of simulated work.
type planJob struct {
	base    int64  // unperturbed duration (task weight or message cost)
	planned int64  // static start time (the timetable release floor)
	ent     uint64 // perturbation entity key
	proc    int32  // processor of a task job, -1 for message transfers
}

// planArc releases job to when the owning job finishes, after an
// optional communication lag (clique cross-processor edges only).
type planArc struct {
	to   int32
	base int64  // unperturbed lag
	ent  uint64 // lag perturbation entity, 0 when base is 0
}

// Static returns the planned (unperturbed) makespan of the compiled
// schedule.
func (p *Plan) Static() int64 { return p.static }

// Jobs returns the number of simulated jobs: one per task, plus one
// per committed link transfer for APN schedules.
func (p *Plan) Jobs() int { return len(p.jobs) }

// Run executes the plan once under the given options and trial number
// and returns the realized makespan. Runs are deterministic in
// (Options, trial) and independent of each other; a Plan may be Run
// concurrently.
func (p *Plan) Run(opts Options, trial int) (int64, error) {
	if err := opts.validate(p.numProcs); err != nil {
		return 0, err
	}
	return p.run(&opts, trialSeed(opts.Seed, trial)), nil
}

// event is one job completion on the simulation clock. Ties break on
// job ID so the event trace is fully ordered (results are order-
// independent either way: releases are max-folds and counters).
type event struct {
	t int64
	j int32
}

// engine is the per-run mutable state, pooled so steady-state trials
// allocate nothing: the event heap and per-job arrays are reused.
type engine struct {
	deps  []int32
	ready []int64
	heap  *pq.Heap[event]

	// Run-scoped parameters, copied in by run so the release path is a
	// method (a closure would allocate per run).
	plan    *Plan
	perturb Perturbation
	speed   []float64
	trial   uint64
}

var enginePool = sync.Pool{New: func() any {
	return &engine{heap: pq.New[event](func(a, b event) bool {
		return a.t < b.t || (a.t == b.t && a.j < b.j)
	})}
}}

// release starts job j at its accumulated ready time and schedules its
// completion event after the (possibly perturbed) duration.
func (e *engine) release(j int32) {
	jb := &e.plan.jobs[j]
	dur := jb.base
	if e.perturb.Dist != DistNone {
		dur = scaleDur(dur, e.perturb.multiplier(e.trial, jb.ent))
	}
	if e.speed != nil && jb.proc >= 0 {
		dur = scaleDur(dur, e.speed[jb.proc])
	}
	e.heap.Push(event{t: e.ready[j] + dur, j: j})
}

// run is the validated core of Run: one discrete-event execution.
func (p *Plan) run(opts *Options, trial uint64) int64 {
	e := enginePool.Get().(*engine)
	e.plan, e.perturb, e.speed, e.trial = p, opts.Perturb, opts.Speed, trial
	n := len(p.jobs)
	e.deps = resize(e.deps, n)
	copy(e.deps, p.indeg)
	e.ready = resize(e.ready, n)
	if opts.Policy == PolicyTimetable {
		for j := range e.ready {
			e.ready[j] = p.jobs[j].planned
		}
	} else {
		for j := range e.ready {
			e.ready[j] = 0
		}
	}
	e.heap.Reset()
	for j := 0; j < n; j++ {
		if e.deps[j] == 0 {
			e.release(int32(j))
		}
	}
	var makespan int64
	for e.heap.Len() > 0 {
		ev := e.heap.Pop()
		if int(ev.j) < p.tasks && ev.t > makespan {
			makespan = ev.t
		}
		for _, a := range p.arcs[p.arcOff[ev.j]:p.arcOff[ev.j+1]] {
			arr := ev.t
			if a.base > 0 {
				lag := a.base
				if e.perturb.Dist != DistNone {
					lag = scaleDur(lag, e.perturb.multiplier(trial, a.ent))
				}
				arr += lag
			}
			if arr > e.ready[a.to] {
				e.ready[a.to] = arr
			}
			if e.deps[a.to]--; e.deps[a.to] == 0 {
				e.release(a.to)
			}
		}
	}
	if obs.MetricsEnabled() {
		// Every job fires exactly one completion event; a job is stalled
		// when upstream perturbation pushed its realized release past the
		// planned start floor.
		var stalls int64
		for j := range p.jobs {
			if e.ready[j] > p.jobs[j].planned {
				stalls++
			}
		}
		simRuns.Inc()
		simEvents.Add(int64(n))
		simStalls.Add(stalls)
	}
	e.plan, e.speed = nil, nil // do not pin while pooled
	enginePool.Put(e)
	return makespan
}

// resize returns a slice of length n, reusing the backing array when
// large enough. Contents are unspecified; callers overwrite them.
func resize[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// planBuilder accumulates jobs and arcs during compilation and
// finalizes the CSR layout. Compilation happens once per schedule;
// the builder favors clarity over pooling.
type planBuilder struct {
	plan Plan
	from []int32 // arc sources, parallel to plan.arcs before finalize
}

// addJob appends a job and returns its ID.
func (b *planBuilder) addJob(j planJob) int32 {
	b.plan.jobs = append(b.plan.jobs, j)
	return int32(len(b.plan.jobs) - 1)
}

// addArc records a release constraint from job u to job v.
func (b *planBuilder) addArc(u, v int32, base int64, ent uint64) {
	b.from = append(b.from, u)
	b.plan.arcs = append(b.plan.arcs, planArc{to: v, base: base, ent: ent})
}

// finalize sorts the arcs into CSR layout and computes in-degrees.
func (b *planBuilder) finalize() *Plan {
	p := &b.plan
	n := len(p.jobs)
	p.arcOff = make([]int32, n+1)
	for _, u := range b.from {
		p.arcOff[u+1]++
	}
	for i := 1; i <= n; i++ {
		p.arcOff[i] += p.arcOff[i-1]
	}
	sorted := make([]planArc, len(p.arcs))
	next := make([]int32, n)
	for i, u := range b.from {
		sorted[p.arcOff[u]+next[u]] = p.arcs[i]
		next[u]++
	}
	p.arcs = sorted
	p.indeg = make([]int32, n)
	for _, a := range p.arcs {
		p.indeg[a.to]++
	}
	return p
}
