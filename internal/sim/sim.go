// Package sim executes static schedules under runtime variability: a
// deterministic, seeded discrete-event engine that replays a completed
// sched.Schedule (clique model) or machine.Schedule (arbitrary
// processor network) with perturbed task durations and communication
// costs, and a Monte-Carlo harness that turns repeated executions into
// robustness statistics.
//
// The paper ranks algorithms by the static makespan of the schedule
// they emit; real systems execute those schedules under stochastic task
// durations and network contention, where the static ranking can flip
// (Beránek et al., "Analysis of Workflow Schedulers in Simulated
// Distributed Environments"). This package supplies the missing
// execution axis.
//
// # Execution model
//
// A schedule is compiled once into a Plan: a dependency graph of jobs
// (task executions, and per-link message transfers for APN schedules)
// whose arcs encode the three constraint kinds a static schedule
// resolves — precedence with communication delay, processor
// exclusivity (each processor runs its tasks in the static start
// order), and, for APN schedules, link exclusivity (each directed
// channel serves its transfers in the static reservation order,
// store-and-forward along the committed route). Running the plan is a
// discrete-event simulation over an event heap (internal/pq): when a
// job's dependencies clear it starts, its perturbed duration elapses,
// and its completion releases successors.
//
// Two dispatch policies are supported. PolicyTimetable (the default)
// releases every job no earlier than its planned static start, so
// delays right-shift through the dependency chains while the plan's
// ordering decisions are preserved exactly — with zero perturbation
// the simulation reproduces every static start time, and hence the
// static makespan, exactly, for any valid schedule. PolicyEager starts
// a job as soon as its dependencies clear, which can only move work
// earlier under zero perturbation (a work-conserving runtime that
// keeps the static assignment and ordering but ignores the clock).
//
// # Perturbation
//
// Durations are scaled by multiplicative factors drawn per entity
// (task or task-graph edge) from a configurable distribution: none,
// uniform over [1-s, 1+s], or mean-one lognormal with log-stddev s.
// Draws are counter-based — a hash of (seed, trial, entity) — so they
// are independent of event order, identical across algorithms for the
// same trial (paired comparisons), and byte-reproducible at any worker
// count. All hops of one message share the edge's multiplier.
//
// Compiling once and running many trials is allocation-light: the
// per-trial engine state lives in a sync.Pool and the event heap is
// reused, so steady-state trials allocate nothing.
package sim

import "fmt"

// Distribution selects the shape of the multiplicative perturbation
// applied to task durations and communication costs.
type Distribution int

const (
	// DistNone applies no perturbation: every multiplier is exactly 1
	// and no random draws are made.
	DistNone Distribution = iota
	// DistUniform draws multipliers uniformly from [1-s, 1+s], where s
	// is the spread parameter (0 <= s <= 1).
	DistUniform
	// DistLognormal draws multipliers from a lognormal distribution
	// with mean 1 and log-standard-deviation s (the spread parameter).
	DistLognormal
)

// String returns the distribution's name.
func (d Distribution) String() string {
	switch d {
	case DistNone:
		return "none"
	case DistUniform:
		return "uniform"
	case DistLognormal:
		return "lognormal"
	}
	return fmt.Sprintf("Distribution(%d)", int(d))
}

// Policy selects when a job may start relative to its static plan.
type Policy int

const (
	// PolicyTimetable releases each job no earlier than its planned
	// static start time; delays right-shift through the dependency
	// chains. With zero perturbation the simulation reproduces the
	// static schedule — every start time and the makespan — exactly.
	PolicyTimetable Policy = iota
	// PolicyEager starts each job as soon as its dependencies clear,
	// ignoring planned start times (a work-conserving runtime that
	// keeps the static assignment and ordering). With zero
	// perturbation the realized makespan never exceeds the static one.
	PolicyEager
)

// String returns the policy's name.
func (p Policy) String() string {
	switch p {
	case PolicyTimetable:
		return "timetable"
	case PolicyEager:
		return "eager"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Perturbation configures the stochastic duration model of a run.
type Perturbation struct {
	// Dist is the multiplier distribution (none, uniform, lognormal).
	Dist Distribution
	// TaskSpread is the spread parameter applied to task durations:
	// the half-width for DistUniform, the log-stddev for DistLognormal.
	TaskSpread float64
	// CommSpread is the spread parameter applied to communication
	// costs (clique edge delays and APN link transfers).
	CommSpread float64
}

// Options parameterizes one simulated execution.
type Options struct {
	// Perturb is the stochastic duration model. The zero value (no
	// perturbation) replays the schedule deterministically.
	Perturb Perturbation
	// Policy selects the dispatch rule; the zero value is
	// PolicyTimetable.
	Policy Policy
	// Seed is the base random seed. Together with the trial number it
	// fully determines every multiplier of a run.
	Seed int64
	// Speed optionally slows processors non-uniformly: task durations
	// on processor p are additionally multiplied by Speed[p]. Nil
	// means all processors run at nominal speed; otherwise the length
	// must equal the schedule's processor count and every entry must
	// be positive.
	Speed []float64
}

// validate checks the options against a plan's processor count.
func (o *Options) validate(numProcs int) error {
	switch o.Perturb.Dist {
	case DistNone, DistUniform, DistLognormal:
	default:
		return fmt.Errorf("sim: unknown distribution %d", int(o.Perturb.Dist))
	}
	switch o.Policy {
	case PolicyTimetable, PolicyEager:
	default:
		return fmt.Errorf("sim: unknown policy %d", int(o.Policy))
	}
	for _, s := range [...]float64{o.Perturb.TaskSpread, o.Perturb.CommSpread} {
		if s < 0 {
			return fmt.Errorf("sim: negative spread %g", s)
		}
		if o.Perturb.Dist == DistUniform && s > 1 {
			return fmt.Errorf("sim: uniform spread %g > 1 would allow negative durations", s)
		}
	}
	if o.Speed != nil {
		if len(o.Speed) != numProcs {
			return fmt.Errorf("sim: %d speed factors for %d processors", len(o.Speed), numProcs)
		}
		for p, s := range o.Speed {
			if s <= 0 {
				return fmt.Errorf("sim: speed factor %g for processor %d must be positive", s, p)
			}
		}
	}
	return nil
}

// Result reports one simulated execution of a schedule.
type Result struct {
	// Static is the makespan of the schedule as planned.
	Static int64
	// Makespan is the realized makespan of the simulated execution.
	Makespan int64
	// Ratio is Makespan / Static (1 when Static is 0).
	Ratio float64
}

// ratio divides realized by static makespan, defining 0/0 as 1.
func ratio(makespan, static int64) float64 {
	if static == 0 {
		return 1
	}
	return float64(makespan) / float64(static)
}
