//go:build race

package sim

// raceEnabled reports whether the race detector instruments this
// build. The detector deliberately randomizes sync.Pool reuse, so
// allocation-count assertions are meaningless under it.
const raceEnabled = true
