package sim

import "repro/internal/obs"

// Event-loop metrics: executions replayed, release events processed,
// and contention stalls — jobs whose realized release time exceeded
// their planned floor, i.e. placements right-shifted by upstream
// perturbation. Accumulated per run and added once, so the enabled path
// costs three atomic adds per execution, not per event.
var (
	simRuns   = obs.NewCounter("sim.runs")
	simEvents = obs.NewCounter("sim.events")
	simStalls = obs.NewCounter("sim.stalls")
)
