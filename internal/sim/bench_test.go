package sim

import (
	"testing"

	"repro/internal/algo/apn"
	"repro/internal/algo/bnp"
	"repro/internal/gen"
	"repro/internal/machine"
)

// benchPlan compiles an MCP schedule of a 100-node RGNOS graph — the
// per-trial workload of the Monte-Carlo study.
func benchPlan(tb testing.TB) *Plan {
	tb.Helper()
	g, err := gen.Generate("rgnos", 7, gen.Params{"v": "100", "ccr": "1"})
	if err != nil {
		tb.Fatal(err)
	}
	s, err := bnp.MCP(g, 8)
	if err != nil {
		tb.Fatal(err)
	}
	defer s.Release()
	plan, err := Compile(s)
	if err != nil {
		tb.Fatal(err)
	}
	return plan
}

// TestRunAllocs asserts the steady-state trial loop allocates nothing:
// the engine state is pooled and the event heap reused, so after one
// warm-up run every further trial is allocation-free.
func TestRunAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool reuse; allocation counts are not meaningful")
	}
	plan := benchPlan(t)
	opts := Options{Perturb: Perturbation{Dist: DistLognormal, TaskSpread: 0.3, CommSpread: 0.3}, Seed: 9}
	trial := 0
	run := func() {
		if _, err := plan.Run(opts, trial); err != nil {
			t.Fatal(err)
		}
		trial++
	}
	run() // warm the engine pool
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Errorf("steady-state trial allocates %.1f objects per run, want 0", allocs)
	}
}

// BenchmarkRun measures one perturbed discrete-event execution of a
// 100-node clique schedule.
func BenchmarkRun(b *testing.B) {
	plan := benchPlan(b)
	opts := Options{Perturb: Perturbation{Dist: DistLognormal, TaskSpread: 0.3, CommSpread: 0.3}, Seed: 9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Run(opts, i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarlo measures a full 100-trial Monte-Carlo study of
// one schedule, compile included — the per-cell cost of -exp robust.
func BenchmarkMonteCarlo(b *testing.B) {
	g, err := gen.Generate("rgnos", 7, gen.Params{"v": "100", "ccr": "1"})
	if err != nil {
		b.Fatal(err)
	}
	opts := Options{Perturb: Perturbation{Dist: DistLognormal, TaskSpread: 0.3, CommSpread: 0.3}, Seed: 9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := bnp.MCP(g, 8)
		if err != nil {
			b.Fatal(err)
		}
		plan, err := Compile(s)
		s.Release()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := MonteCarlo(plan, opts, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAPN measures one perturbed execution of an APN schedule
// with link contention on an 8-processor hypercube.
func BenchmarkRunAPN(b *testing.B) {
	g, err := gen.Generate("rgnos", 7, gen.Params{"v": "100", "ccr": "1"})
	if err != nil {
		b.Fatal(err)
	}
	s, err := apn.MH(g, machine.Hypercube(3))
	if err != nil {
		b.Fatal(err)
	}
	plan, err := CompileAPN(s)
	if err != nil {
		b.Fatal(err)
	}
	opts := Options{Perturb: Perturbation{Dist: DistLognormal, TaskSpread: 0.3, CommSpread: 0.3}, Seed: 9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Run(opts, i); err != nil {
			b.Fatal(err)
		}
	}
}
