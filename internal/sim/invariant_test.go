package sim

import (
	"fmt"
	"testing"

	"repro/internal/algo/apn"
	"repro/internal/algo/bnp"
	"repro/internal/algo/unc"
	"repro/internal/gen"
	"repro/internal/machine"
)

// invariantInstances builds one representative instance of every
// registered generator family: random (v, ccr) families at a fixed
// matched point, the rest with default parameters.
func invariantInstances(t *testing.T) []gen.NamedGraph {
	t.Helper()
	var out []gen.NamedGraph
	for _, f := range gen.Generators() {
		params := gen.Params{}
		if f.Random {
			params["v"] = "40"
			params["ccr"] = "2"
		}
		if f.Name == "psg" {
			params["name"] = "kwok-ahmad-9"
		}
		g, err := gen.Generate(f.Name, 42, params)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		out = append(out, gen.NamedGraph{Name: f.Name, G: g})
	}
	return out
}

// TestZeroVarianceReproducesStatic is the simulator's anchor
// invariant: for every algorithm of the study and every registered
// generator family, executing the schedule with no perturbation under
// the timetable policy reproduces the static makespan exactly, and
// under the eager policy never exceeds it (eager may only compress
// idle gaps the plan left unexplained).
func TestZeroVarianceReproducesStatic(t *testing.T) {
	topo := machine.Hypercube(3)
	check := func(name, fam string, plan *Plan, static int64) {
		t.Helper()
		mk, err := plan.Run(Options{Policy: PolicyTimetable}, 0)
		if err != nil {
			t.Fatalf("%s on %s: %v", name, fam, err)
		}
		if mk != static {
			t.Errorf("%s on %s: timetable zero-variance makespan %d != static %d", name, fam, mk, static)
		}
		mk, err = plan.Run(Options{Policy: PolicyEager}, 0)
		if err != nil {
			t.Fatalf("%s on %s: %v", name, fam, err)
		}
		if mk > static {
			t.Errorf("%s on %s: eager zero-variance makespan %d > static %d", name, fam, mk, static)
		}
	}
	for _, ng := range invariantInstances(t) {
		for name, alg := range bnp.Algorithms() {
			s, err := alg(ng.G, 8)
			if err != nil {
				t.Fatalf("BNP %s on %s: %v", name, ng.Name, err)
			}
			plan, err := Compile(s)
			if err != nil {
				t.Fatalf("BNP %s on %s: %v", name, ng.Name, err)
			}
			check(fmt.Sprintf("BNP %s", name), ng.Name, plan, s.Makespan())
			s.Release()
		}
		for name, alg := range unc.Algorithms() {
			s, err := alg(ng.G)
			if err != nil {
				t.Fatalf("UNC %s on %s: %v", name, ng.Name, err)
			}
			plan, err := Compile(s)
			if err != nil {
				t.Fatalf("UNC %s on %s: %v", name, ng.Name, err)
			}
			check(fmt.Sprintf("UNC %s", name), ng.Name, plan, s.Makespan())
			s.Release()
		}
		for name, alg := range apn.Algorithms() {
			s, err := alg(ng.G, topo)
			if err != nil {
				t.Fatalf("APN %s on %s: %v", name, ng.Name, err)
			}
			plan, err := CompileAPN(s)
			if err != nil {
				t.Fatalf("APN %s on %s: %v", name, ng.Name, err)
			}
			check(fmt.Sprintf("APN %s", name), ng.Name, plan, s.Makespan())
		}
	}
}

// TestPerturbedExecutionStaysValidOrdered spot-checks a stronger
// property than the makespan comparison: under heavy perturbation the
// realized makespan is still positive and grows with the spread on
// average (delays right-shift, speedups are floored by the timetable).
func TestPerturbedExecutionStaysValidOrdered(t *testing.T) {
	g, err := gen.Generate("rgnos", 7, gen.Params{"v": "60", "ccr": "1"})
	if err != nil {
		t.Fatal(err)
	}
	s, err := bnp.MCP(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	plan, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for i, spread := range []float64{0.05, 0.3, 0.6} {
		opts := Options{Perturb: Perturbation{Dist: DistLognormal, TaskSpread: spread, CommSpread: spread}, Seed: 5}
		st, err := MonteCarlo(plan, opts, 60)
		if err != nil {
			t.Fatal(err)
		}
		if st.MeanRatio < 1 {
			t.Errorf("spread %g: mean ratio %.3f below 1 under timetable dispatch", spread, st.MeanRatio)
		}
		if i > 0 && st.MeanRatio <= prev {
			t.Errorf("mean ratio did not grow with spread: %.3f then %.3f", prev, st.MeanRatio)
		}
		prev = st.MeanRatio
	}
}
