package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"hash"
	"io"
	"os"
	"runtime"
	"sort"
)

// Manifest is a reproducibility receipt for one dagbench invocation:
// everything needed to re-derive the run — the configuration, the
// build, content hashes of every input file, and the hash of the bytes
// the run wrote to stdout. Two runs with equal manifests (ignoring the
// wall-clock fields the manifest deliberately omits) produced equal
// tables.
type Manifest struct {
	Tool      string            `json:"tool"`
	Version   string            `json:"version"`
	GoVersion string            `json:"go_version"`
	OS        string            `json:"os"`
	Arch      string            `json:"arch"`
	Command   []string          `json:"command"`
	Config    map[string]string `json:"config,omitempty"`
	Inputs    []FileDigest      `json:"inputs,omitempty"`
	OutputSHA string            `json:"output_sha256"`
	OutputLen int64             `json:"output_bytes"`
}

// FileDigest is the content hash of one input file.
type FileDigest struct {
	Path   string `json:"path"`
	SHA256 string `json:"sha256"`
	Bytes  int64  `json:"bytes"`
}

// NewManifest returns a manifest stamped with the running build.
func NewManifest(tool string, command []string) *Manifest {
	return &Manifest{
		Tool:      tool,
		Version:   VersionString(),
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		Command:   command,
	}
}

// SetConfig records one configuration key (flag values, seeds, worker
// counts) in the manifest.
func (m *Manifest) SetConfig(key, value string) {
	if m.Config == nil {
		m.Config = make(map[string]string)
	}
	m.Config[key] = value
}

// AddInput hashes the file at path and records it; missing inputs are
// an error so a manifest never silently under-reports.
func (m *Manifest) AddInput(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return err
	}
	m.Inputs = append(m.Inputs, FileDigest{
		Path:   path,
		SHA256: hex.EncodeToString(h.Sum(nil)),
		Bytes:  n,
	})
	return nil
}

// SetOutput records the digest of the run's stdout, normally taken from
// a HashWriter teeing the stream.
func (m *Manifest) SetOutput(hw *HashWriter) {
	m.OutputSHA = hw.SumHex()
	m.OutputLen = hw.Len()
}

// WriteJSON serializes the manifest as indented JSON with sorted input
// records, so equal runs produce byte-identical manifests.
func (m *Manifest) WriteJSON(w io.Writer) error {
	sort.Slice(m.Inputs, func(i, j int) bool { return m.Inputs[i].Path < m.Inputs[j].Path })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// HashWriter tees writes into a SHA-256 digest. dagbench wraps stdout
// in one when a manifest is requested, so the receipt can name the
// exact bytes the run produced without buffering them.
type HashWriter struct {
	w io.Writer
	h hash.Hash
	n int64
}

// NewHashWriter returns a HashWriter forwarding to w.
func NewHashWriter(w io.Writer) *HashWriter {
	return &HashWriter{w: w, h: sha256.New()}
}

// Write forwards p to the underlying writer and folds it into the
// digest.
func (hw *HashWriter) Write(p []byte) (int, error) {
	n, err := hw.w.Write(p)
	hw.h.Write(p[:n])
	hw.n += int64(n)
	return n, err
}

// SumHex returns the hex digest of everything written so far.
func (hw *HashWriter) SumHex() string { return hex.EncodeToString(hw.h.Sum(nil)) }

// Len returns the number of bytes written so far.
func (hw *HashWriter) Len() int64 { return hw.n }
