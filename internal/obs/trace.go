package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// TraceFormat selects the serialization of a decision trace.
type TraceFormat int

const (
	// TraceJSONL writes one JSON object per line: a "run" header per
	// scheduling run followed by its "place" records. The format is
	// grep- and jq-friendly and is the one the trace schema in
	// docs/observability.md documents field by field.
	TraceJSONL TraceFormat = iota
	// TraceChrome writes Chrome trace-event JSON ("X" complete events,
	// one pid per scheduling run, one tid per processor), so the file
	// opens directly in Perfetto (ui.perfetto.dev) or chrome://tracing
	// as a per-processor Gantt timeline.
	TraceChrome
)

// TraceFormatForPath picks the format from a file name: ".jsonl" means
// TraceJSONL, anything else (conventionally ".json") TraceChrome.
func TraceFormatForPath(path string) TraceFormat {
	if strings.HasSuffix(path, ".jsonl") {
		return TraceJSONL
	}
	return TraceChrome
}

// Candidate is one processor considered for a placement, with the
// earliest start time the scheduler saw there.
type Candidate struct {
	Proc int32
	EST  int64
}

// Tracer serializes scheduler decision records. One tracer serves one
// serial stream of scheduling runs: install it with SetTracer, bracket
// each run with BeginRun/EndRun (internal/core does this in RunOn), and
// the placement hooks in internal/sched and internal/machine emit one
// record per committed task. Concurrent runs would interleave records,
// so callers enabling tracing must run cells serially — dagbench -trace
// forces -workers=1.
//
// Tracing never changes scheduler behavior: hooks only read schedule
// state, and every record is emitted after the decision it describes
// was already taken.
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer
	format TraceFormat
	err    error

	headed  bool // Chrome: array opened
	wrote   bool // Chrome: needs a comma before the next event
	inRun   atomic.Bool
	runID   int32
	step    int32
	pendExp string // instance labels staged by SetInstance
	pendIns string

	// One-shot priority stash: kernels report the priority value that
	// selected the next node just before placing it; the placement hook
	// attaches it to the matching record.
	prioNode int32
	prio     int64
	hasPrio  bool

	candBuf []Candidate // reusable scratch handed out via CandidateBuf
}

// NewTracer returns a tracer writing to w in the given format. Call
// Close when done; for TraceChrome it terminates the JSON document.
func NewTracer(w io.Writer, format TraceFormat) *Tracer {
	return &Tracer{w: w, format: format}
}

// active is the installed tracer; nil (the steady state) makes every
// hook a single atomic load and nil check.
var active atomic.Pointer[Tracer]

// SetTracer installs t as the process-wide tracer; nil uninstalls.
func SetTracer(t *Tracer) { active.Store(t) }

// ActiveTracer returns the installed tracer, or nil. Hot paths call
// this once and skip all tracing work on nil.
func ActiveTracer() *Tracer { return active.Load() }

// SetInstance stages the experiment and instance labels for the next
// BeginRun: the cell planner knows which named graph a run is for, the
// algorithm runner does not.
func (t *Tracer) SetInstance(exp, instance string) {
	t.mu.Lock()
	t.pendExp, t.pendIns = exp, instance
	t.mu.Unlock()
}

// BeginRun opens a scheduling-run context: subsequent placement records
// attach to it. It emits the run header (JSONL) or the process/thread
// metadata (Chrome) naming the run after the algorithm and the staged
// instance labels.
func (t *Tracer) BeginRun(alg, class string, v, procs int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.runID++
	t.step = 0
	t.hasPrio = false
	label := alg
	if t.pendIns != "" {
		label += " " + t.pendIns
	}
	if t.pendExp != "" {
		label = t.pendExp + ": " + label
	}
	switch t.format {
	case TraceJSONL:
		t.printf("{\"type\":\"run\",\"id\":%d,\"exp\":%s,\"instance\":%s,\"alg\":%s,\"class\":%s,\"v\":%d,\"procs\":%d}\n",
			t.runID, strconv.Quote(t.pendExp), strconv.Quote(t.pendIns),
			strconv.Quote(alg), strconv.Quote(class), v, procs)
	case TraceChrome:
		t.chromeHead()
		t.chromeEvent("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":%s}}",
			t.runID, strconv.Quote(label))
		t.chromeEvent("{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"sort_index\":%d}}",
			t.runID, t.runID)
		for p := 0; p < procs; p++ {
			t.chromeEvent("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"P%d\"}}",
				t.runID, p, p)
			t.chromeEvent("{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"sort_index\":%d}}",
				t.runID, p, p)
		}
	}
	t.pendExp, t.pendIns = "", ""
	t.inRun.Store(true)
}

// EndRun closes the current run context; placements outside a run are
// not recorded (this is what keeps bulk replays — branch-and-bound
// probes, fault-repair passes — out of the trace).
func (t *Tracer) EndRun() { t.inRun.Store(false) }

// InRun reports whether a run context is open. The placement hooks
// check it before doing any work, so schedule mutations outside
// BeginRun/EndRun (pool warmup, repair passes, backtracking search)
// cost only the check.
func (t *Tracer) InRun() bool { return t.inRun.Load() }

// Priority stages the priority value that selected node for the
// immediately following placement. Kernels call it right before Place;
// the value is attached to the next record for that node and dropped
// otherwise.
func (t *Tracer) Priority(node int32, prio int64) {
	t.mu.Lock()
	t.prioNode, t.prio, t.hasPrio = node, prio, true
	t.mu.Unlock()
}

// CandidateBuf returns a reusable empty candidate slice; the placement
// hook fills it and hands it back through Placement, so steady-state
// traced runs do not grow garbage per record.
func (t *Tracer) CandidateBuf() []Candidate {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.candBuf[:0]
}

// Placement records one committed task placement: the chosen slot, the
// insertion/append distinction, the candidate processors with the ESTs
// the scheduler saw, and the kernel-reported priority value when one
// was staged for this node.
func (t *Tracer) Placement(node, proc int32, start, finish int64, insertion bool, cands []Candidate) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.candBuf = cands // reclaim the scratch for the next record
	prio, hasPrio := t.prio, t.hasPrio && t.prioNode == node
	t.hasPrio = false
	step := t.step
	t.step++
	switch t.format {
	case TraceJSONL:
		var b strings.Builder
		fmt.Fprintf(&b, "{\"type\":\"place\",\"run\":%d,\"step\":%d,\"node\":%d,\"proc\":%d,\"start\":%d,\"finish\":%d,\"insertion\":%t",
			t.runID, step, node, proc, start, finish, insertion)
		if hasPrio {
			fmt.Fprintf(&b, ",\"priority\":%d", prio)
		}
		if len(cands) > 0 {
			b.WriteString(",\"cands\":[")
			for i, c := range cands {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "{\"p\":%d,\"est\":%d}", c.Proc, c.EST)
			}
			b.WriteByte(']')
		}
		b.WriteString("}\n")
		t.printf("%s", b.String())
	case TraceChrome:
		t.chromeHead()
		var b strings.Builder
		fmt.Fprintf(&b, "{\"name\":\"n%d\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"args\":{\"step\":%d,\"insertion\":%t",
			node, t.runID, proc, start, finish-start, step, insertion)
		if hasPrio {
			fmt.Fprintf(&b, ",\"priority\":%d", prio)
		}
		if len(cands) > 0 {
			b.WriteString(",\"cands\":\"")
			for i, c := range cands {
				if i > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "P%d@%d", c.Proc, c.EST)
			}
			b.WriteByte('"')
		}
		b.WriteString("}}")
		t.chromeEvent("%s", b.String())
	}
}

// Close terminates the stream (the Chrome format needs its array and
// document closed) and returns the first write error, if any.
func (t *Tracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.inRun.Store(false)
	if t.format == TraceChrome {
		if !t.headed {
			t.chromeHead()
		}
		t.printf("\n]}\n")
	}
	return t.err
}

// chromeHead opens the trace-event document once.
func (t *Tracer) chromeHead() {
	if t.headed {
		return
	}
	t.headed = true
	t.printf("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
}

// chromeEvent writes one event, comma-separated from the previous one.
func (t *Tracer) chromeEvent(format string, args ...any) {
	if t.wrote {
		t.printf(",\n")
	} else {
		t.printf("\n")
	}
	t.wrote = true
	t.printf(format, args...)
}

// printf writes to the underlying writer, retaining the first error.
func (t *Tracer) printf(format string, args ...any) {
	if t.err != nil {
		return
	}
	_, t.err = fmt.Fprintf(t.w, format, args...)
}
