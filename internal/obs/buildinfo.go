package obs

import "runtime/debug"

// Version is the build stamp, overridden at link time:
//
//	go build -ldflags "-X repro/internal/obs.Version=v1.2.3" ./cmd/dagbench
//
// The default marks unstamped developer builds.
var Version = "dev"

// VersionString returns the stamped version, augmented with the VCS
// revision when the binary was built from a checkout with module build
// info (unstamped `go build` embeds it automatically).
func VersionString() string {
	v := Version
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, dirty string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "+dirty"
				}
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			v += " (" + rev + dirty + ")"
		}
	}
	return v
}
