// Package obs is the stack-wide observability layer of the
// reproduction: a metrics core (atomic counters, gauges, and
// fixed-bucket histograms behind a process-wide registry), a scheduler
// decision tracer (per-placement records streamed as JSONL or as Chrome
// trace-event JSON so any run opens in Perfetto as a per-processor
// Gantt timeline), and run manifests (reproducibility receipts tying an
// experiment's output bytes to the configuration, build, and input
// hashes that produced it).
//
// # The zero-overhead invariant
//
// Instrumentation never changes an output byte, and the disabled path
// costs zero allocations and near-zero time. Both facilities hang off a
// single atomic read on their hot paths:
//
//   - metrics are gated on a package-wide atomic.Bool — a disabled
//     Counter.Inc is one uncontended load and a predicted branch;
//   - tracing is gated on a package-wide atomic.Pointer — a disabled
//     placement hook is one nil check.
//
// Neither path allocates when disabled, which keeps the steady-state
// scheduling inner loops (asserted allocation-free since PR 3) at zero
// allocations with the instrumentation compiled in. The invariant tests
// in internal/core additionally pin that enabling both facilities
// leaves every algorithm's schedule — and every experiment's output —
// byte-identical.
//
// # Determinism
//
// Decision traces are a per-run serial artifact: the tracer is a global
// singleton, so callers that enable it must run cells serially
// (dagbench -trace forces -workers=1, exactly like -measure). Metric
// values are monotone sums and are reported out of band (dagbench
// -metrics writes to stderr), so experiment stdout stays byte-identical
// at every worker count with either facility on or off.
package obs
