package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// metricsOn is the package-wide metrics gate. Instrument points write
// only while it is set, so the disabled path is one uncontended atomic
// load and a predicted branch — no stores, no allocations.
var metricsOn atomic.Bool

// EnableMetrics turns metric recording on or off process-wide. Values
// accumulated before a disable are retained; use ResetMetrics to zero
// them.
func EnableMetrics(on bool) { metricsOn.Store(on) }

// MetricsEnabled reports whether metric recording is on.
func MetricsEnabled() bool { return metricsOn.Load() }

// registry is the process-wide metric index. Metrics register once, at
// package init of the instrumented packages, and live forever; the
// registry is therefore append-only and the mutex is never on a hot
// path.
var registry struct {
	mu         sync.Mutex
	counters   []*Counter
	gauges     []*Gauge
	histograms []*Histogram
}

// Counter is a monotone event count. The zero value is unusable; obtain
// counters with NewCounter so they appear in snapshots.
type Counter struct {
	name string
	v    atomic.Int64
}

// NewCounter registers and returns a counter. Names are conventionally
// dotted paths ("sched.est.rebuild"); registering the same name twice
// panics, so instrumented packages declare their counters once as
// package-level vars.
func NewCounter(name string) *Counter {
	c := &Counter{name: name}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	mustFresh(name)
	registry.counters = append(registry.counters, c)
	return c
}

// Inc adds 1 when metrics are enabled.
func (c *Counter) Inc() {
	if metricsOn.Load() {
		c.v.Add(1)
	}
}

// Add adds d when metrics are enabled.
func (c *Counter) Add(d int64) {
	if metricsOn.Load() {
		c.v.Add(d)
	}
}

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Value returns the accumulated count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time level that also tracks its high-water mark
// (the Max column of a snapshot). Runner queue depths use Add(±1).
type Gauge struct {
	name string
	v    atomic.Int64
	max  atomic.Int64
}

// NewGauge registers and returns a gauge. Duplicate names panic.
func NewGauge(name string) *Gauge {
	g := &Gauge{name: name}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	mustFresh(name)
	registry.gauges = append(registry.gauges, g)
	return g
}

// Set stores v when metrics are enabled, folding it into the high-water
// mark.
func (g *Gauge) Set(v int64) {
	if !metricsOn.Load() {
		return
	}
	g.v.Store(v)
	g.foldMax(v)
}

// Add shifts the level by d when metrics are enabled, folding the new
// level into the high-water mark.
func (g *Gauge) Add(d int64) {
	if !metricsOn.Load() {
		return
	}
	g.foldMax(g.v.Add(d))
}

func (g *Gauge) foldMax(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Name returns the registered name.
func (g *Gauge) Name() string { return g.name }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max returns the high-water mark since the last reset.
func (g *Gauge) Max() int64 { return g.max.Load() }

// Histogram counts observations into fixed buckets: bucket i holds
// observations v <= bounds[i], with one implicit overflow bucket above
// the last bound. Bounds are fixed at registration, so recording is an
// atomic increment after a small binary search — no allocation, safe
// for concurrent use.
type Histogram struct {
	name    string
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1, last is overflow
	count   atomic.Int64
	sum     atomic.Int64
}

// NewHistogram registers and returns a histogram with the given
// ascending bucket upper bounds. Duplicate names and unsorted bounds
// panic.
func NewHistogram(name string, bounds ...int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending at %d", name, i))
		}
	}
	h := &Histogram{
		name:    name,
		bounds:  append([]int64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	mustFresh(name)
	registry.histograms = append(registry.histograms, h)
	return h
}

// Observe records one value when metrics are enabled.
func (h *Histogram) Observe(v int64) {
	if !metricsOn.Load() {
		return
	}
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Name returns the registered name.
func (h *Histogram) Name() string { return h.name }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Buckets returns the bucket upper bounds and the matching counts; the
// final count (one longer than bounds) is the overflow bucket.
func (h *Histogram) Buckets() (bounds []int64, counts []int64) {
	counts = make([]int64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return h.bounds, counts
}

// mustFresh panics when name is already registered; callers hold the
// registry mutex.
func mustFresh(name string) {
	for _, c := range registry.counters {
		if c.name == name {
			panic("obs: duplicate metric " + name)
		}
	}
	for _, g := range registry.gauges {
		if g.name == name {
			panic("obs: duplicate metric " + name)
		}
	}
	for _, h := range registry.histograms {
		if h.name == name {
			panic("obs: duplicate metric " + name)
		}
	}
}

// ResetMetrics zeroes every registered metric. Tests use it to make
// process-global counters assertable.
func ResetMetrics() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, c := range registry.counters {
		c.v.Store(0)
	}
	for _, g := range registry.gauges {
		g.v.Store(0)
		g.max.Store(0)
	}
	for _, h := range registry.histograms {
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
	}
}

// Sample is one metric's state in a snapshot.
type Sample struct {
	Name string
	Kind string // "counter", "gauge", "histogram"
	// Value is the count for counters, the level for gauges, and the
	// observation count for histograms.
	Value int64
	// Max is the gauge high-water mark; Sum the histogram value sum.
	Max, Sum int64
	// Bounds and Counts describe histogram buckets; Counts has one extra
	// overflow entry.
	Bounds, Counts []int64
}

// SnapshotMetrics returns the state of every registered metric, sorted
// by name.
func SnapshotMetrics() []Sample {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	var out []Sample
	for _, c := range registry.counters {
		out = append(out, Sample{Name: c.name, Kind: "counter", Value: c.Value()})
	}
	for _, g := range registry.gauges {
		out = append(out, Sample{Name: g.name, Kind: "gauge", Value: g.Value(), Max: g.Max()})
	}
	for _, h := range registry.histograms {
		bounds, counts := h.Buckets()
		out = append(out, Sample{
			Name: h.name, Kind: "histogram",
			Value: h.Count(), Sum: h.Sum(),
			Bounds: bounds, Counts: counts,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteMetrics renders the snapshot as aligned text, one metric per
// line, sorted by name. Histograms render their non-empty buckets
// inline.
func WriteMetrics(w io.Writer) error {
	samples := SnapshotMetrics()
	width := 0
	for _, s := range samples {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	for _, s := range samples {
		var err error
		switch s.Kind {
		case "counter":
			_, err = fmt.Fprintf(w, "%-*s  %d\n", width, s.Name, s.Value)
		case "gauge":
			_, err = fmt.Fprintf(w, "%-*s  %d (max %d)\n", width, s.Name, s.Value, s.Max)
		case "histogram":
			line := fmt.Sprintf("%-*s  n=%d sum=%d", width, s.Name, s.Value, s.Sum)
			for i, c := range s.Counts {
				if c == 0 {
					continue
				}
				if i < len(s.Bounds) {
					line += fmt.Sprintf(" le%d=%d", s.Bounds[i], c)
				} else {
					line += fmt.Sprintf(" inf=%d", c)
				}
			}
			_, err = fmt.Fprintln(w, line)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
