package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// Test metrics are registered once per process; ResetMetrics between
// tests keeps them assertable.
var (
	testCounter = NewCounter("test.counter")
	testGauge   = NewGauge("test.gauge")
	testHist    = NewHistogram("test.hist", 10, 100, 1000)
)

func resetAll(t *testing.T) {
	t.Helper()
	ResetMetrics()
	EnableMetrics(false)
	SetTracer(nil)
	t.Cleanup(func() {
		ResetMetrics()
		EnableMetrics(false)
		SetTracer(nil)
	})
}

func TestCounterGatedOnEnable(t *testing.T) {
	resetAll(t)
	testCounter.Inc()
	testCounter.Add(5)
	if got := testCounter.Value(); got != 0 {
		t.Fatalf("disabled counter advanced: %d", got)
	}
	EnableMetrics(true)
	testCounter.Inc()
	testCounter.Add(5)
	if got := testCounter.Value(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
	EnableMetrics(false)
	testCounter.Inc()
	if got := testCounter.Value(); got != 6 {
		t.Fatalf("counter advanced after disable: %d", got)
	}
}

func TestGaugeHighWaterMark(t *testing.T) {
	resetAll(t)
	EnableMetrics(true)
	testGauge.Add(3)
	testGauge.Add(4)
	testGauge.Add(-5)
	if v, m := testGauge.Value(), testGauge.Max(); v != 2 || m != 7 {
		t.Fatalf("gauge = %d (max %d), want 2 (max 7)", v, m)
	}
	testGauge.Set(1)
	if v, m := testGauge.Value(), testGauge.Max(); v != 1 || m != 7 {
		t.Fatalf("after Set: gauge = %d (max %d), want 1 (max 7)", v, m)
	}
}

func TestHistogramBuckets(t *testing.T) {
	resetAll(t)
	EnableMetrics(true)
	for _, v := range []int64{1, 10, 11, 100, 5000} {
		testHist.Observe(v)
	}
	bounds, counts := testHist.Buckets()
	wantBounds := []int64{10, 100, 1000}
	wantCounts := []int64{2, 2, 0, 1} // le10, le100, le1000, overflow
	for i := range wantBounds {
		if bounds[i] != wantBounds[i] {
			t.Fatalf("bounds = %v, want %v", bounds, wantBounds)
		}
	}
	for i := range wantCounts {
		if counts[i] != wantCounts[i] {
			t.Fatalf("counts = %v, want %v", counts, wantCounts)
		}
	}
	if n, s := testHist.Count(), testHist.Sum(); n != 5 || s != 5122 {
		t.Fatalf("count=%d sum=%d, want 5, 5122", n, s)
	}
}

func TestDuplicateMetricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	NewCounter("test.counter")
}

func TestWriteMetricsFormat(t *testing.T) {
	resetAll(t)
	EnableMetrics(true)
	testCounter.Add(7)
	testGauge.Set(2)
	testHist.Observe(50)
	var buf bytes.Buffer
	if err := WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"test.counter",
		"test.gauge",
		"2 (max 2)",
		"n=1 sum=50 le100=1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteMetrics output missing %q:\n%s", want, out)
		}
	}
}

func TestDisabledPathAllocs(t *testing.T) {
	resetAll(t)
	if n := testing.AllocsPerRun(1000, func() {
		testCounter.Inc()
		testCounter.Add(3)
		testGauge.Add(1)
		testHist.Observe(42)
		if tr := ActiveTracer(); tr != nil {
			t.Fatal("tracer unexpectedly active")
		}
	}); n != 0 {
		t.Fatalf("disabled instrumentation allocates %.1f/op, want 0", n)
	}
}

func TestTracerJSONL(t *testing.T) {
	resetAll(t)
	var buf bytes.Buffer
	tr := NewTracer(&buf, TraceJSONL)
	tr.SetInstance("genx", "rgnos-v40")
	tr.BeginRun("ETF", "BNP", 40, 4)
	if !tr.InRun() {
		t.Fatal("InRun false after BeginRun")
	}
	tr.Priority(7, 123)
	cands := append(tr.CandidateBuf(), Candidate{Proc: 0, EST: 5}, Candidate{Proc: 1, EST: 9})
	tr.Placement(7, 0, 5, 15, false, cands)
	tr.Placement(8, 1, 0, 4, true, nil) // no priority staged
	tr.EndRun()
	if tr.InRun() {
		t.Fatal("InRun true after EndRun")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	var run struct {
		Type, Exp, Instance, Alg, Class string
		ID, V, Procs                    int
	}
	if err := json.Unmarshal([]byte(lines[0]), &run); err != nil {
		t.Fatalf("run header not JSON: %v", err)
	}
	if run.Type != "run" || run.Exp != "genx" || run.Instance != "rgnos-v40" ||
		run.Alg != "ETF" || run.Class != "BNP" || run.V != 40 || run.Procs != 4 {
		t.Fatalf("run header = %+v", run)
	}
	var place struct {
		Type                    string
		Run, Step, Node, Proc   int
		Start, Finish, Priority int64
		Insertion               bool
		Cands                   []struct{ P, Est int64 }
	}
	if err := json.Unmarshal([]byte(lines[1]), &place); err != nil {
		t.Fatalf("place record not JSON: %v", err)
	}
	if place.Node != 7 || place.Proc != 0 || place.Start != 5 || place.Finish != 15 ||
		place.Priority != 123 || place.Insertion || len(place.Cands) != 2 {
		t.Fatalf("place record = %+v", place)
	}
	if !strings.Contains(lines[2], "\"insertion\":true") || strings.Contains(lines[2], "priority") {
		t.Fatalf("second place record wrong: %s", lines[2])
	}
}

func TestTracerChromeIsValidJSON(t *testing.T) {
	resetAll(t)
	var buf bytes.Buffer
	tr := NewTracer(&buf, TraceChrome)
	tr.SetInstance("genx", "rgnos-v40")
	tr.BeginRun("ETF", "BNP", 40, 2)
	tr.Priority(3, 99)
	tr.Placement(3, 1, 0, 8, false, append(tr.CandidateBuf(), Candidate{Proc: 0, EST: 2}))
	tr.EndRun()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v\n%s", err, buf.String())
	}
	// 1 process_name + 1 process_sort_index + 2*(thread_name +
	// thread_sort_index) + 1 placement = 7 events.
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("got %d events, want 7", len(doc.TraceEvents))
	}
	last := doc.TraceEvents[6]
	if last["ph"] != "X" || last["name"] != "n3" || last["dur"] != float64(8) {
		t.Fatalf("placement event = %v", last)
	}
	if got := doc.TraceEvents[0]["args"].(map[string]any)["name"]; got != "genx: ETF rgnos-v40" {
		t.Fatalf("process_name = %q", got)
	}
}

func TestTracerEmptyChromeCloses(t *testing.T) {
	resetAll(t)
	var buf bytes.Buffer
	tr := NewTracer(&buf, TraceChrome)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty chrome trace not valid JSON: %v\n%s", err, buf.String())
	}
}

func TestTraceFormatForPath(t *testing.T) {
	if TraceFormatForPath("out.jsonl") != TraceJSONL {
		t.Fatal(".jsonl should be JSONL")
	}
	if TraceFormatForPath("out.json") != TraceChrome {
		t.Fatal(".json should be Chrome")
	}
}

func TestParsePeakRSS(t *testing.T) {
	doc := []byte("Name:\tdagbench\nVmPeak:\t  123 kB\nVmHWM:\t  4567 kB\nVmRSS:\t 1 kB\n")
	if got := parsePeakRSS(doc); got != 4567 {
		t.Fatalf("parsePeakRSS = %d, want 4567", got)
	}
	if got := parsePeakRSS([]byte("Name:\tx\n")); got != -1 {
		t.Fatalf("missing VmHWM: got %d, want -1", got)
	}
	if got := parsePeakRSS([]byte("VmHWM:\tnope kB\n")); got != -1 {
		t.Fatalf("malformed VmHWM: got %d, want -1", got)
	}
	if got := parsePeakRSS([]byte("VmHWM:\n")); got != -1 {
		t.Fatalf("empty VmHWM: got %d, want -1", got)
	}
}

func TestSamplePeakRSSPublishesGauge(t *testing.T) {
	resetAll(t)
	EnableMetrics(true)
	kb := SamplePeakRSS()
	if kb <= 0 {
		t.Skip("/proc/self/status unavailable")
	}
	if got := peakRSSGauge.Value(); got != kb {
		t.Fatalf("gauge = %d, want %d", got, kb)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := dir + "/g.tg"
	if err := os.WriteFile(in, []byte("v 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := NewManifest("dagbench", []string{"-exp", "genx"})
	m.SetConfig("seed", "42")
	if err := m.AddInput(in); err != nil {
		t.Fatal(err)
	}
	hw := NewHashWriter(&bytes.Buffer{})
	if _, err := hw.Write([]byte("table\n")); err != nil {
		t.Fatal(err)
	}
	m.SetOutput(hw)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("manifest not valid JSON: %v", err)
	}
	if got.Tool != "dagbench" || got.Config["seed"] != "42" || len(got.Inputs) != 1 {
		t.Fatalf("manifest = %+v", got)
	}
	if got.Inputs[0].Bytes != 4 || len(got.Inputs[0].SHA256) != 64 {
		t.Fatalf("input digest = %+v", got.Inputs[0])
	}
	if got.OutputLen != 6 || len(got.OutputSHA) != 64 {
		t.Fatalf("output digest = %q len %d", got.OutputSHA, got.OutputLen)
	}
	if got.GoVersion == "" || got.Version == "" {
		t.Fatalf("build stamps missing: %+v", got)
	}
	if err := m.AddInput(dir + "/missing.tg"); err == nil {
		t.Fatal("AddInput of missing file did not error")
	}
}

func TestVersionStringHasStamp(t *testing.T) {
	if !strings.HasPrefix(VersionString(), Version) {
		t.Fatalf("VersionString %q does not start with Version %q", VersionString(), Version)
	}
}
