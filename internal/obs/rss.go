package obs

import (
	"bytes"
	"os"
	"strconv"
)

// peakRSSGauge mirrors the last sampled VmHWM reading so memory
// high-water marks show up next to the other metrics in -metrics dumps.
var peakRSSGauge = NewGauge("proc.peak_rss_kb")

// PeakRSSKB returns the process's resident-set high-water mark in
// kilobytes (Linux VmHWM), or -1 where /proc is unavailable.
func PeakRSSKB() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return -1
	}
	return parsePeakRSS(data)
}

// parsePeakRSS extracts the VmHWM kilobyte value from a
// /proc/self/status document, or -1 when the line is absent or
// malformed.
func parsePeakRSS(data []byte) int64 {
	for _, line := range bytes.Split(data, []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("VmHWM:")) {
			continue
		}
		fields := bytes.Fields(line[len("VmHWM:"):])
		if len(fields) < 1 {
			return -1
		}
		kb, err := strconv.ParseInt(string(fields[0]), 10, 64)
		if err != nil {
			return -1
		}
		return kb
	}
	return -1
}

// SamplePeakRSS reads the current high-water mark and, when metrics are
// enabled, publishes it through the proc.peak_rss_kb gauge. It returns
// the reading either way so callers that render it directly (-exp
// scaling -measure) share one probe.
func SamplePeakRSS() int64 {
	kb := PeakRSSKB()
	if kb >= 0 {
		peakRSSGauge.Set(kb)
	}
	return kb
}
