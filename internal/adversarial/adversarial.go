// Package adversarial implements PISA-style adversarial instance
// search over the generator registry: a seeded, deterministic
// evolutionary loop that mutates graph-family parameters, generator
// seeds, and per-instance edge-weight perturbations to find task graphs
// on which one scheduling algorithm beats another by the widest margin —
// or on which a ranking that the random benchmark suites report as
// stable inverts.
//
// The package is deliberately evaluation-agnostic: Search builds
// candidate graphs and hands whole populations to an Evaluator
// callback, which returns the two makespans per instance. The
// experiment engine (internal/core) supplies an Evaluator that fans the
// population through its worker-pool Runner, so the search parallelizes
// like every other experiment while the loop itself stays serial and
// deterministic: equal seeds yield byte-identical trajectories whatever
// the evaluation concurrency.
//
// Found counterexamples are archived as .tg fixtures (see fixture.go)
// and pinned by regression tests, turning every searched finding into a
// permanent tier-1 test.
package adversarial

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"repro/internal/dag"
	"repro/internal/gen"
)

// Objective scores one evaluated candidate from the two makespans.
// Larger is better for the search. Implementations must be pure.
type Objective interface {
	// Score maps the makespans of algorithms A and B on one instance to
	// the search objective.
	Score(lenA, lenB int64) float64
	// Name identifies the objective in experiment output and fixtures.
	Name() string
}

// GapObjective maximizes the relative makespan gap (lenA-lenB)/lenB: a
// positive score means algorithm B produced the shorter schedule, and
// the search hunts instances where B beats A by the widest margin.
type GapObjective struct{}

// Score returns (lenA-lenB)/lenB.
func (GapObjective) Score(lenA, lenB int64) float64 {
	if lenB <= 0 {
		return 0
	}
	return float64(lenA-lenB) / float64(lenB)
}

// Name returns "gap".
func (GapObjective) Name() string { return "gap" }

// FlipObjective searches for a ranking inversion: it scores like
// GapObjective but saturates at Margin, so once an instance flips the
// A-beats-B ranking by the margin, all such instances tie and the
// deterministic tie-break (candidate key order) spreads the search
// across distinct flipped instances instead of piling onto one.
type FlipObjective struct {
	// Margin is the relative gap at which the objective saturates;
	// zero selects 0.05 (a 5% inversion).
	Margin float64
}

// Score returns min((lenA-lenB)/lenB, margin).
func (o FlipObjective) Score(lenA, lenB int64) float64 {
	m := o.Margin
	if m <= 0 {
		m = 0.05
	}
	s := GapObjective{}.Score(lenA, lenB)
	if s > m {
		return m
	}
	return s
}

// Name returns "flip".
func (o FlipObjective) Name() string { return "flip" }

// FaultObjective maximizes the relative gap of fault-effective
// makespans: the evaluator feeds Score the two algorithms' expected
// realized makespans under the canonical fault scenario of
// internal/core (crashes at MTBF equal to the critical-path
// computation cost, reactive rescheduling, deadline-miss penalty)
// instead of the static lengths, so the search hunts instances whose
// static winner degrades worst under failures.
type FaultObjective struct{}

// Score returns (lenA-lenB)/lenB over fault-effective makespans.
func (FaultObjective) Score(lenA, lenB int64) float64 {
	return GapObjective{}.Score(lenA, lenB)
}

// Name returns "fault-gap".
func (FaultObjective) Name() string { return "fault-gap" }

// Candidate is one point of the search space: a generator family, an
// in-schema textual parameter set, a generation seed, and an optional
// per-instance edge-weight perturbation (multiplicative, spread
// Perturb, derived from PerturbSeed).
type Candidate struct {
	Family      string
	Params      gen.Params
	Seed        int64
	PerturbSeed int64
	Perturb     float64
}

// Key renders the candidate as a canonical string: equal candidates
// have equal keys, and keys are the deterministic tie-break of the
// search's selection step.
func (c Candidate) Key() string {
	return fmt.Sprintf("%s{%s} seed=%d perturb=%g pseed=%d",
		c.Family, gen.CanonicalParams(c.Params), c.Seed, c.Perturb, c.PerturbSeed)
}

// Build generates the candidate's graph: family generation followed by
// the candidate's edge-weight perturbation.
func (c Candidate) Build() (*dag.Graph, error) {
	g, err := gen.Generate(c.Family, c.Seed, c.Params)
	if err != nil {
		return nil, err
	}
	return PerturbEdges(g, c.PerturbSeed, c.Perturb)
}

// PerturbEdges rebuilds g with every edge weight scaled by an
// independent multiplier drawn uniformly from [1-spread, 1+spread]
// (minimum resulting weight 1). Node weights, labels, and structure are
// unchanged. The perturbation is deterministic in (g, seed, spread):
// edges are visited in canonical CSR order. A zero spread returns g
// unchanged.
func PerturbEdges(g *dag.Graph, seed int64, spread float64) (*dag.Graph, error) {
	if spread == 0 {
		return g, nil
	}
	if spread < 0 || spread >= 1 {
		return nil, fmt.Errorf("adversarial: perturbation spread must be in [0, 1), got %g", spread)
	}
	rng := rand.New(rand.NewSource(seed))
	b := dag.NewBuilder()
	for v := 0; v < g.NumNodes(); v++ {
		b.AddLabeledNode(g.Weight(dag.NodeID(v)), g.Label(dag.NodeID(v)))
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, a := range g.Succs(dag.NodeID(v)) {
			mult := 1 + (2*rng.Float64()-1)*spread
			w := int64(math.Round(float64(a.Weight) * mult))
			if w < 1 {
				w = 1
			}
			b.AddEdge(dag.NodeID(v), a.To, w)
		}
	}
	return b.Build()
}

// Options parameterizes a search run. The zero value is not runnable;
// use Defaults or fill every field.
type Options struct {
	// Seed drives every random choice of the search. Equal seeds (and
	// equal remaining options) yield byte-identical trajectories.
	Seed int64
	// Generations is the number of evolutionary steps.
	Generations int
	// Population is the number of candidates evaluated per generation.
	Population int
	// Elite is the number of top candidates carried over unchanged and
	// used as mutation parents (clamped to Population).
	Elite int
	// TopK is the number of best distinct candidates reported (and
	// archived) from the whole run.
	TopK int
	// Families names the registered generator families searched over;
	// each must be a Random family (declaring v and ccr). Empty selects
	// every registered random family.
	Families []string
	// MinNodes and MaxNodes clamp the v parameter during
	// initialization and mutation, bounding evaluation cost.
	MinNodes, MaxNodes int
	// CCRs seeds the initial population's communication-to-computation
	// ratios; empty selects {0.1, 1, 10}.
	CCRs []float64
	// MaxPerturb bounds the per-instance edge-weight perturbation
	// spread in [0, 1); zero disables perturbation mutations.
	MaxPerturb float64
	// Objective scores evaluated candidates; nil selects GapObjective.
	Objective Objective
}

// Defaults returns the search configuration used by the quick-scale
// experiment: a small population over every random family, sized to
// terminate in seconds.
func Defaults(seed int64) Options {
	return Options{
		Seed:        seed,
		Generations: 8,
		Population:  16,
		Elite:       4,
		TopK:        5,
		MinNodes:    16,
		MaxNodes:    60,
		MaxPerturb:  0.5,
	}
}

// Found is one evaluated candidate in a Report: the candidate, its
// graph, the two makespans, and the objective score.
type Found struct {
	Candidate
	Graph      *dag.Graph
	LenA, LenB int64
	Score      float64
}

// GenerationStats is one line of the search trace.
type GenerationStats struct {
	Gen     int
	Best    float64 // best score in this generation's population
	Mean    float64 // mean score over this generation's valid candidates
	Invalid int     // candidates whose generation failed (scored -Inf)
	BestKey string  // key of the generation's best candidate
}

// Report is the outcome of one search run.
type Report struct {
	AlgA, AlgB string // evaluator's algorithm pair, as labeled by the caller
	Objective  string
	Trace      []GenerationStats
	// Top holds the TopK best distinct candidates seen across all
	// generations, best first (ties in candidate-key order).
	Top []Found
}

// Evaluator computes the makespans of the fixed algorithm pair (A, B)
// on every graph of a population, indexed like the input. Evaluation
// must be deterministic in the graphs; internal/core fans this call
// through its Runner worker pool.
type Evaluator func(graphs []*dag.Graph) ([][2]int64, error)

// Search runs the evolutionary loop: initialize a population across the
// configured families, then per generation evaluate every candidate
// through eval, keep the Elite best, and refill the population by
// mutating elites (schema-driven parameter mutation, generator
// reseeding, and edge-weight perturbation). The trajectory is
// deterministic in opts: all randomness flows from opts.Seed through a
// single serial rng, selection ties break on candidate keys, and eval's
// results are consumed in population order.
func Search(opts Options, eval Evaluator) (*Report, error) {
	if eval == nil {
		return nil, fmt.Errorf("adversarial: Search needs an Evaluator")
	}
	fams, err := searchFamilies(opts.Families)
	if err != nil {
		return nil, err
	}
	if opts.Generations < 1 || opts.Population < 1 {
		return nil, fmt.Errorf("adversarial: need Generations and Population >= 1 (got %d, %d)",
			opts.Generations, opts.Population)
	}
	if opts.MinNodes < 2 || opts.MaxNodes < opts.MinNodes {
		return nil, fmt.Errorf("adversarial: need 2 <= MinNodes <= MaxNodes (got %d, %d)",
			opts.MinNodes, opts.MaxNodes)
	}
	if opts.MaxPerturb < 0 || opts.MaxPerturb >= 1 {
		return nil, fmt.Errorf("adversarial: MaxPerturb must be in [0, 1), got %g", opts.MaxPerturb)
	}
	elite := opts.Elite
	if elite < 1 {
		elite = 1
	}
	if elite > opts.Population {
		elite = opts.Population
	}
	topK := opts.TopK
	if topK < 1 {
		topK = 1
	}
	obj := opts.Objective
	if obj == nil {
		obj = GapObjective{}
	}
	ccrs := opts.CCRs
	if len(ccrs) == 0 {
		ccrs = []float64{0.1, 1, 10}
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	pop := initialPopulation(opts, fams, ccrs, rng)

	rep := &Report{Objective: obj.Name()}
	// best accumulates the best score seen per candidate key; top-K is
	// assembled from it after the last generation.
	best := map[string]Found{}

	for g := 0; g < opts.Generations; g++ {
		scored, stats, err := evaluatePopulation(pop, fams, obj, eval)
		if err != nil {
			return nil, fmt.Errorf("adversarial: generation %d: %w", g, err)
		}
		stats.Gen = g
		rep.Trace = append(rep.Trace, stats)
		for _, f := range scored {
			if f.Graph == nil {
				continue
			}
			key := f.Key()
			if prev, ok := best[key]; !ok || f.Score > prev.Score {
				best[key] = f
			}
		}
		if g == opts.Generations-1 {
			break
		}
		pop = nextGeneration(scored, elite, opts, fams, rng)
	}

	rep.Top = selectTop(best, topK)
	return rep, nil
}

// searchFamilies resolves the configured family names, defaulting to
// every registered random family, and rejects non-random families (the
// search requires the v and ccr parameters).
func searchFamilies(names []string) ([]gen.Generator, error) {
	if len(names) == 0 {
		return gen.RandomFamilies(), nil
	}
	var out []gen.Generator
	for _, name := range names {
		g, ok := gen.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("adversarial: unknown generator family %q (have %v)", name, gen.GeneratorNames())
		}
		if !g.Random {
			return nil, fmt.Errorf("adversarial: family %q is not a random (v, ccr) family; the search needs one", name)
		}
		out = append(out, g)
	}
	return out, nil
}

// initialPopulation seeds the search: candidates cycle through the
// families and initial CCRs with uniformly drawn sizes and fresh
// generator seeds.
func initialPopulation(opts Options, fams []gen.Generator, ccrs []float64, rng *rand.Rand) []Candidate {
	pop := make([]Candidate, opts.Population)
	for i := range pop {
		f := fams[i%len(fams)]
		ccr := ccrs[(i/len(fams))%len(ccrs)]
		v := opts.MinNodes + rng.Intn(opts.MaxNodes-opts.MinNodes+1)
		pop[i] = Candidate{
			Family: f.Name,
			Params: gen.Params{
				"v":   fmt.Sprint(v),
				"ccr": gen.FormatFloatParam(ccr),
			},
			Seed: rng.Int63(),
		}
	}
	return pop
}

// evaluatePopulation builds every candidate's graph, scores the valid
// ones through eval, and returns the scored population (invalid
// candidates keep a nil Graph and -Inf score) plus the generation's
// trace statistics.
func evaluatePopulation(pop []Candidate, fams []gen.Generator, obj Objective, eval Evaluator) ([]Found, GenerationStats, error) {
	scored := make([]Found, len(pop))
	var graphs []*dag.Graph
	var valid []int
	for i, c := range pop {
		scored[i] = Found{Candidate: c, Score: math.Inf(-1)}
		g, err := c.Build()
		if err != nil {
			// In-schema parameter sets can still be rejected by a family
			// (e.g. a single-layer layered graph asked to connect); such
			// candidates score -Inf and die out deterministically.
			continue
		}
		scored[i].Graph = g
		graphs = append(graphs, g)
		valid = append(valid, i)
	}
	var stats GenerationStats
	stats.Invalid = len(pop) - len(valid)
	stats.Best = math.Inf(-1)
	if len(valid) == 0 {
		return scored, stats, nil
	}
	lens, err := eval(graphs)
	if err != nil {
		return nil, stats, err
	}
	if len(lens) != len(graphs) {
		return nil, stats, fmt.Errorf("evaluator returned %d results for %d graphs", len(lens), len(graphs))
	}
	sum := 0.0
	bestIdx := -1
	for j, i := range valid {
		scored[i].LenA, scored[i].LenB = lens[j][0], lens[j][1]
		scored[i].Score = obj.Score(lens[j][0], lens[j][1])
		sum += scored[i].Score
		if scored[i].Score > stats.Best ||
			(scored[i].Score == stats.Best && bestIdx >= 0 && scored[i].Key() < scored[bestIdx].Key()) {
			stats.Best = scored[i].Score
			bestIdx = i
		}
	}
	stats.Mean = sum / float64(len(valid))
	stats.BestKey = scored[bestIdx].Key()
	return scored, stats, nil
}

// nextGeneration selects the elite candidates (score descending, key
// ascending) and refills the population with mutants of the elites.
func nextGeneration(scored []Found, elite int, opts Options, fams []gen.Generator, rng *rand.Rand) []Candidate {
	order := make([]int, len(scored))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := scored[order[a]], scored[order[b]]
		if sa.Score != sb.Score {
			return sa.Score > sb.Score
		}
		return sa.Key() < sb.Key()
	})
	next := make([]Candidate, 0, opts.Population)
	for i := 0; i < elite && i < len(order); i++ {
		next = append(next, scored[order[i]].Candidate)
	}
	for len(next) < opts.Population {
		parent := scored[order[len(next)%elite]].Candidate
		next = append(next, mutate(parent, opts, fams, rng))
	}
	return next
}

// mutate derives one offspring from a parent candidate by a randomly
// chosen operator: schema-driven parameter mutation (clamping v into
// the search's node range), generator reseeding, edge-weight
// perturbation re-draw, or a family switch that keeps the matched
// (v, ccr) point.
func mutate(parent Candidate, opts Options, fams []gen.Generator, rng *rand.Rand) Candidate {
	c := parent
	// Copy the parameter map; mutations must not alias the parent.
	c.Params = make(gen.Params, len(parent.Params))
	for k, v := range parent.Params {
		c.Params[k] = v
	}
	ops := 3
	if opts.MaxPerturb > 0 {
		ops = 4
	}
	switch rng.Intn(ops) {
	case 0: // schema-driven parameter mutation
		fam, _ := gen.Lookup(c.Family)
		c.Params = gen.MutateParams(fam, c.Params, rng)
		clampNodes(c.Params, opts)
	case 1: // reseed the generator
		c.Seed = rng.Int63()
	case 2: // switch family at the same (v, ccr) point
		f := fams[rng.Intn(len(fams))]
		kept := gen.Params{}
		for _, name := range []string{"v", "ccr"} {
			if v, ok := c.Params[name]; ok {
				kept[name] = v
			}
		}
		c.Family = f.Name
		c.Params = kept
	case 3: // re-draw the edge-weight perturbation
		c.PerturbSeed = rng.Int63()
		c.Perturb = rng.Float64() * opts.MaxPerturb
	}
	return c
}

// clampNodes forces the v parameter back into the search's node range
// after a schema mutation (schema bounds are wider than what a search
// run wants to pay for).
func clampNodes(p gen.Params, opts Options) {
	v, err := strconv.Atoi(p["v"])
	if err != nil {
		return
	}
	if v < opts.MinNodes {
		p["v"] = strconv.Itoa(opts.MinNodes)
	} else if v > opts.MaxNodes {
		p["v"] = strconv.Itoa(opts.MaxNodes)
	}
}

// selectTop assembles the TopK report entries: best score first, ties
// in candidate-key order.
func selectTop(best map[string]Found, k int) []Found {
	keys := make([]string, 0, len(best))
	for key := range best {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(a, b int) bool {
		fa, fb := best[keys[a]], best[keys[b]]
		if fa.Score != fb.Score {
			return fa.Score > fb.Score
		}
		return keys[a] < keys[b]
	})
	if len(keys) > k {
		keys = keys[:k]
	}
	out := make([]Found, len(keys))
	for i, key := range keys {
		out[i] = best[key]
	}
	return out
}
