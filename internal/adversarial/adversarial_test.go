package adversarial

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dag"
)

// toyEvaluator is a cheap deterministic stand-in for the scheduling
// pair: lenA is the serial makespan (sum of node weights), lenB the
// same minus a third — so every valid instance has a positive gap and
// the search machinery can be exercised without internal/core.
func toyEvaluator(graphs []*dag.Graph) ([][2]int64, error) {
	out := make([][2]int64, len(graphs))
	for i, g := range graphs {
		var total int64
		for v := 0; v < g.NumNodes(); v++ {
			total += g.Weight(dag.NodeID(v))
		}
		if total < 3 {
			total = 3
		}
		out[i] = [2]int64{total, total - total/3}
	}
	return out, nil
}

// renderReport flattens a report into a comparable string: the full
// trace plus the top candidate keys and scores.
func renderReport(rep *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "objective=%s\n", rep.Objective)
	for _, s := range rep.Trace {
		fmt.Fprintf(&b, "gen=%d best=%.9f mean=%.9f invalid=%d key=%s\n",
			s.Gen, s.Best, s.Mean, s.Invalid, s.BestKey)
	}
	for i, f := range rep.Top {
		fmt.Fprintf(&b, "top[%d] score=%.9f lens=%d/%d key=%s\n",
			i, f.Score, f.LenA, f.LenB, f.Key())
	}
	return b.String()
}

// TestSearchIsDeterministic pins the core reproducibility contract:
// equal seeds and options yield byte-identical trajectories and top
// lists.
func TestSearchIsDeterministic(t *testing.T) {
	run := func() string {
		rep, err := Search(Defaults(1998), toyEvaluator)
		if err != nil {
			t.Fatal(err)
		}
		return renderReport(rep)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("identically seeded searches diverged:\n--- first\n%s--- second\n%s", a, b)
	}
	other, err := Search(Defaults(2024), toyEvaluator)
	if err != nil {
		t.Fatal(err)
	}
	if renderReport(other) == a {
		t.Error("different seeds produced identical trajectories")
	}
}

// TestSearchReportShape checks the structural invariants of a run:
// full trace, sorted distinct top list, populated fields.
func TestSearchReportShape(t *testing.T) {
	opts := Defaults(7)
	opts.Generations = 5
	opts.TopK = 4
	rep, err := Search(opts, toyEvaluator)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trace) != opts.Generations {
		t.Fatalf("trace has %d entries, want %d", len(rep.Trace), opts.Generations)
	}
	for i, s := range rep.Trace {
		if s.Gen != i {
			t.Errorf("trace[%d].Gen = %d", i, s.Gen)
		}
		if s.BestKey == "" {
			t.Errorf("trace[%d] has no best key", i)
		}
	}
	if len(rep.Top) == 0 || len(rep.Top) > opts.TopK {
		t.Fatalf("top list has %d entries, want 1..%d", len(rep.Top), opts.TopK)
	}
	seen := map[string]bool{}
	for i, f := range rep.Top {
		if i > 0 && f.Score > rep.Top[i-1].Score {
			t.Errorf("top list not sorted: [%d]=%g > [%d]=%g", i, f.Score, i-1, rep.Top[i-1].Score)
		}
		if f.Graph == nil {
			t.Errorf("top[%d] carries no graph", i)
		}
		if seen[f.Key()] {
			t.Errorf("top[%d] duplicates key %s", i, f.Key())
		}
		seen[f.Key()] = true
	}
}

// TestSearchOptionValidation pins the fail-fast errors for unusable
// configurations.
func TestSearchOptionValidation(t *testing.T) {
	if _, err := Search(Defaults(1), nil); err == nil {
		t.Error("nil evaluator accepted")
	}
	bad := Defaults(1)
	bad.Families = []string{"nope"}
	if _, err := Search(bad, toyEvaluator); err == nil {
		t.Error("unknown family accepted")
	}
	bad = Defaults(1)
	bad.Families = []string{"gauss"} // registered but not a random family
	if _, err := Search(bad, toyEvaluator); err == nil {
		t.Error("non-random family accepted")
	}
	bad = Defaults(1)
	bad.Generations = 0
	if _, err := Search(bad, toyEvaluator); err == nil {
		t.Error("zero generations accepted")
	}
	bad = Defaults(1)
	bad.MinNodes, bad.MaxNodes = 30, 20
	if _, err := Search(bad, toyEvaluator); err == nil {
		t.Error("inverted node range accepted")
	}
	bad = Defaults(1)
	bad.MaxPerturb = 1.5
	if _, err := Search(bad, toyEvaluator); err == nil {
		t.Error("out-of-range MaxPerturb accepted")
	}
}

// TestSearchRespectsNodeRange checks every candidate the search reports
// stayed inside the configured size window.
func TestSearchRespectsNodeRange(t *testing.T) {
	opts := Defaults(3)
	opts.MinNodes, opts.MaxNodes = 10, 24
	rep, err := Search(opts, toyEvaluator)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Top {
		n := f.Graph.NumNodes()
		if n < opts.MinNodes || n > opts.MaxNodes {
			t.Errorf("top candidate %s has %d nodes, want %d..%d",
				f.Key(), n, opts.MinNodes, opts.MaxNodes)
		}
	}
}

// TestEvaluatePopulationInvalid pins that in-schema yet
// family-rejected candidates die with a -Inf score and are counted in
// the trace, not treated as errors.
func TestEvaluatePopulationInvalid(t *testing.T) {
	pop := []Candidate{
		{Family: "erdos", Params: map[string]string{"v": "8", "ccr": "1"}, Seed: 1},
		// layered cannot connect a single-layer multi-node graph.
		{Family: "layered", Params: map[string]string{"v": "8", "ccr": "1", "layers": "1", "connect": "true"}, Seed: 2},
	}
	scored, stats, err := evaluatePopulation(pop, nil, GapObjective{}, toyEvaluator)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Invalid != 1 {
		t.Errorf("Invalid = %d, want 1", stats.Invalid)
	}
	if scored[0].Graph == nil || math.IsInf(scored[0].Score, -1) {
		t.Error("valid candidate was not scored")
	}
	if scored[1].Graph != nil || !math.IsInf(scored[1].Score, -1) {
		t.Errorf("invalid candidate kept graph=%v score=%g", scored[1].Graph, scored[1].Score)
	}
}

// TestEvaluatorLengthMismatch pins the defensive check on evaluator
// results.
func TestEvaluatorLengthMismatch(t *testing.T) {
	short := func(graphs []*dag.Graph) ([][2]int64, error) {
		return make([][2]int64, len(graphs)-1), nil
	}
	if _, err := Search(Defaults(1), short); err == nil {
		t.Error("mismatched evaluator result length accepted")
	}
}

// TestObjectives pins the two objective scoring rules.
func TestObjectives(t *testing.T) {
	if got := (GapObjective{}).Score(150, 100); got != 0.5 {
		t.Errorf("gap(150,100) = %g, want 0.5", got)
	}
	if got := (GapObjective{}).Score(100, 150); got != -1.0/3 {
		t.Errorf("gap(100,150) = %g", got)
	}
	if got := (GapObjective{}).Score(10, 0); got != 0 {
		t.Errorf("gap with zero lenB = %g, want 0", got)
	}
	if got := (FlipObjective{}).Score(150, 100); got != 0.05 {
		t.Errorf("flip saturation = %g, want 0.05", got)
	}
	if got := (FlipObjective{Margin: 0.2}).Score(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("flip below margin = %g, want 0.1", got)
	}
}

// TestPerturbEdges pins the perturbation's determinism, structure
// preservation, and input validation.
func TestPerturbEdges(t *testing.T) {
	b := dag.NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddNode(int64(10 * (i + 1)))
	}
	b.AddEdge(0, 1, 100)
	b.AddEdge(0, 2, 100)
	b.AddEdge(1, 3, 100)
	b.AddEdge(2, 3, 100)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	if same, err := PerturbEdges(g, 5, 0); err != nil || same != g {
		t.Errorf("zero spread must return the input unchanged (got %p, %v)", same, err)
	}
	for _, spread := range []float64{-0.1, 1, 2} {
		if _, err := PerturbEdges(g, 5, spread); err == nil {
			t.Errorf("spread %g accepted", spread)
		}
	}

	render := func(g *dag.Graph) string {
		var buf bytes.Buffer
		if err := dag.WriteText(&buf, g); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	p1, err := PerturbEdges(g, 9, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PerturbEdges(g, 9, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if render(p1) != render(p2) {
		t.Error("equal (seed, spread) produced different perturbations")
	}
	if render(p1) == render(g) {
		t.Error("perturbation left every edge weight unchanged")
	}
	p3, err := PerturbEdges(g, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if render(p3) == render(p1) {
		t.Error("different seeds produced identical perturbations")
	}

	if p1.NumNodes() != g.NumNodes() || p1.NumEdges() != g.NumEdges() {
		t.Fatal("perturbation changed graph size")
	}
	for v := 0; v < g.NumNodes(); v++ {
		if p1.Weight(dag.NodeID(v)) != g.Weight(dag.NodeID(v)) {
			t.Errorf("node %d weight changed", v)
		}
		for _, a := range p1.Succs(dag.NodeID(v)) {
			if a.Weight < 1 {
				t.Errorf("edge %d->%d perturbed below 1: %d", v, a.To, a.Weight)
			}
		}
	}
}

// TestFixtureRoundTrip pins the fixture serialization format.
func TestFixtureRoundTrip(t *testing.T) {
	b := dag.NewBuilder()
	b.AddLabeledNode(5, "entry")
	b.AddNode(3)
	b.AddEdge(0, 1, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	in := &Fixture{
		AlgA:  "MCP",
		AlgB:  "DLS",
		Procs: 8,
		Candidate: Candidate{
			Family:      "erdos",
			Params:      map[string]string{"v": "2", "ccr": "0.5"},
			Seed:        42,
			PerturbSeed: 7,
			Perturb:     0.25,
		},
		LenA:      12,
		LenB:      10,
		MinGap:    0.2,
		Objective: "fault-gap",
		G:         g,
	}
	var buf bytes.Buffer
	if err := WriteFixture(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFixture(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-reading fixture: %v\n%s", err, buf.String())
	}
	if out.AlgA != in.AlgA || out.AlgB != in.AlgB || out.Procs != in.Procs {
		t.Errorf("pair/procs lost: %+v", out)
	}
	if out.Family != in.Family || out.Seed != in.Seed ||
		out.PerturbSeed != in.PerturbSeed || out.Perturb != in.Perturb {
		t.Errorf("provenance lost: %+v", out)
	}
	if out.Params["v"] != "2" || out.Params["ccr"] != "0.5" {
		t.Errorf("params lost: %v", out.Params)
	}
	if out.LenA != 12 || out.LenB != 10 || out.MinGap != 0.2 {
		t.Errorf("lengths/gap lost: %+v", out)
	}
	if out.Objective != "fault-gap" {
		t.Errorf("objective lost: %q, want \"fault-gap\"", out.Objective)
	}
	if out.G.NumNodes() != 2 || out.G.NumEdges() != 1 {
		t.Errorf("graph lost: %d nodes %d edges", out.G.NumNodes(), out.G.NumEdges())
	}
	if out.Gap() != 0.2 {
		t.Errorf("Gap() = %g, want 0.2", out.Gap())
	}

	// A fixture is also a plain .tg file.
	if _, err := dag.ReadText(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("fixture is not a valid plain .tg file: %v", err)
	}

	if _, err := ReadFixture(strings.NewReader("nodes 1\nnode 0 1\n")); err == nil {
		t.Error("fixture without provenance header accepted")
	}
	if _, err := ReadFixture(strings.NewReader("# adv bogus x\nnodes 1\nnode 0 1\n")); err == nil {
		t.Error("fixture with unknown header key accepted")
	}

	// The binary encoding round-trips the same fixture: the provenance
	// header rides in the .tgb meta string and ReadFixture detects the
	// magic.
	var bin bytes.Buffer
	if err := WriteFixtureBinary(&bin, in); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= buf.Len() {
		t.Errorf("binary fixture (%d bytes) not smaller than text fixture (%d bytes)", bin.Len(), buf.Len())
	}
	bout, err := ReadFixture(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatalf("re-reading binary fixture: %v", err)
	}
	if bout.AlgA != in.AlgA || bout.AlgB != in.AlgB || bout.Procs != in.Procs ||
		bout.Family != in.Family || bout.Seed != in.Seed || bout.Objective != in.Objective ||
		bout.LenA != in.LenA || bout.LenB != in.LenB || bout.MinGap != in.MinGap {
		t.Errorf("binary fixture lost provenance: %+v", bout)
	}
	if bout.G.NumNodes() != 2 || bout.G.NumEdges() != 1 || bout.G.Label(0) != "entry" {
		t.Errorf("binary fixture lost the graph: %d nodes %d edges label %q",
			bout.G.NumNodes(), bout.G.NumEdges(), bout.G.Label(0))
	}

	// A binary fixture is also a plain .tgb file.
	if _, err := dag.ReadAny(bytes.NewReader(bin.Bytes())); err != nil {
		t.Errorf("binary fixture is not a valid plain .tgb file: %v", err)
	}

	// LoadFixtures picks up both encodings.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.tg"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "b.tgb"), bin.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFixtures(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 2 || loaded["a.tg"] == nil || loaded["b.tgb"] == nil {
		t.Errorf("LoadFixtures found %d fixtures, want a.tg and b.tgb", len(loaded))
	}
}

// TestArchive pins the archiver: top-K positive-gap candidates become
// fixtures named by family and pair, loadable by LoadFixtures.
func TestArchive(t *testing.T) {
	opts := Defaults(11)
	opts.Generations = 4
	rep, err := Search(opts, toyEvaluator)
	if err != nil {
		t.Fatal(err)
	}
	rep.AlgA, rep.AlgB = "MCP", "APN/DLS"

	dir := t.TempDir()
	paths, err := Archive(dir, rep, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 || len(paths) > 3 {
		t.Fatalf("archived %d fixtures, want 1..3", len(paths))
	}
	fixtures, err := LoadFixtures(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) != len(paths) {
		t.Fatalf("LoadFixtures found %d of %d fixtures", len(fixtures), len(paths))
	}
	for _, path := range paths {
		name := filepath.Base(path)
		fx := fixtures[name]
		if fx == nil {
			t.Fatalf("fixture %s not loaded", name)
		}
		if fx.AlgA != "MCP" || fx.AlgB != "APN/DLS" || fx.Procs != 8 {
			t.Errorf("%s: pair/procs wrong: %+v", name, fx)
		}
		if fx.Gap() < fx.MinGap {
			t.Errorf("%s: recorded gap %g below its own pinned floor %g", name, fx.Gap(), fx.MinGap)
		}
		if !strings.Contains(name, "-mcp-vs-apn-dls-") {
			t.Errorf("fixture name %q does not follow the family-pair-rank convention", name)
		}
	}

	// Archiving a report with no pair is an error; an empty report
	// archives nothing.
	if _, err := Archive(dir, &Report{}, 8, 3); err == nil {
		t.Error("pairless report accepted")
	}
	empty := t.TempDir()
	none, err := Archive(empty, &Report{AlgA: "a", AlgB: "b"}, 8, 3)
	if err != nil || len(none) != 0 {
		t.Errorf("empty report archived %d fixtures, err %v", len(none), err)
	}
	if entries, _ := os.ReadDir(empty); len(entries) != 0 {
		t.Error("empty report left files behind")
	}
}

// TestFloorGap pins the archived gap floor's rounding rule.
func TestFloorGap(t *testing.T) {
	for _, tc := range []struct{ in, want float64 }{
		{0.123456, 0.123},
		{0.1, 0.1},
		{0.0004, 0.001},
		{2.5, 2.5},
	} {
		if got := floorGap(tc.in); got != tc.want {
			t.Errorf("floorGap(%g) = %g, want %g", tc.in, got, tc.want)
		}
	}
}
