package adversarial_test

import (
	"bytes"
	"testing"

	"repro/internal/adversarial"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/machine"
)

// These tests pin the archived counterexample fixtures under testdata:
// every .tg instance found by the adversarial search is re-scheduled
// with its recorded algorithm pair, and the gap's sign and archived
// lower bound must hold. A failure means an algorithm change shifted a
// schedule on a known adversarial instance — which may be intentional,
// but must be looked at, and the fixture regenerated deliberately
// (dagbench -exp adversarial -pair A:B -archive dir).

// loadTestdata loads the committed fixtures, requiring at least the
// populated archive this package ships.
func loadTestdata(t *testing.T) map[string]*adversarial.Fixture {
	t.Helper()
	fixtures, err := adversarial.LoadFixtures("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) < 3 {
		t.Fatalf("testdata holds %d fixtures, want >= 3", len(fixtures))
	}
	return fixtures
}

// fixtureTopology returns the machine an archived fixture was measured
// on. All shipped fixtures use the 8-processor hypercube of the APN
// experiments.
func fixtureTopology(t *testing.T, procs int) *machine.Topology {
	t.Helper()
	if procs != 8 {
		t.Fatalf("fixture recorded %d procs; only the 8-processor hypercube machine is supported", procs)
	}
	return machine.Hypercube(3)
}

// fixtureLength measures one algorithm on a fixture's graph under the
// fixture's objective: the static makespan for the default "gap"
// objective, the fault-effective makespan (the canonical fault scenario
// of core.FaultEffective) for "fault-gap" fixtures.
func fixtureLength(t *testing.T, fx *adversarial.Fixture, name string, topo *machine.Topology) int64 {
	t.Helper()
	alg, err := core.AlgorithmByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if fx.Objective == (adversarial.FaultObjective{}).Name() {
		length, err := core.FaultEffective(alg, fx.G, fx.Procs, topo)
		if err != nil {
			t.Fatalf("%s under faults: %v", name, err)
		}
		return length
	}
	res, err := alg.Run(fx.G, fx.Procs, topo)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res.Length
}

// TestFixtureGapRegression re-runs each fixture's algorithm pair on the
// stored graph — under the fixture's recorded objective — and asserts
// that B still beats A by at least the pinned relative margin.
func TestFixtureGapRegression(t *testing.T) {
	for name, fx := range loadTestdata(t) {
		t.Run(name, func(t *testing.T) {
			topo := fixtureTopology(t, fx.Procs)
			lenA := fixtureLength(t, fx, fx.AlgA, topo)
			lenB := fixtureLength(t, fx, fx.AlgB, topo)
			if lenB >= lenA {
				t.Fatalf("counterexample no longer holds: %s=%d is not shorter than %s=%d",
					fx.AlgB, lenB, fx.AlgA, lenA)
			}
			gap := float64(lenA-lenB) / float64(lenB)
			if gap < fx.MinGap {
				t.Errorf("gap shrank below the pinned floor: %.4f < %.3f (%s=%d, %s=%d; archived %d/%d)",
					gap, fx.MinGap, fx.AlgA, lenA, fx.AlgB, lenB, fx.LenA, fx.LenB)
			}
			if lenA != fx.LenA || lenB != fx.LenB {
				t.Errorf("lengths drifted from the archived values: got %d/%d, recorded %d/%d",
					lenA, lenB, fx.LenA, fx.LenB)
			}
		})
	}
}

// TestFixtureProvenance rebuilds each fixture's graph from its recorded
// candidate (family, params, seed, perturbation) and checks it is
// byte-identical to the stored instance — the archive's provenance
// headers are sufficient to regenerate the counterexample.
func TestFixtureProvenance(t *testing.T) {
	for name, fx := range loadTestdata(t) {
		t.Run(name, func(t *testing.T) {
			rebuilt, err := fx.Candidate.Build()
			if err != nil {
				t.Fatalf("rebuilding from provenance: %v", err)
			}
			render := func(g *dag.Graph) string {
				var buf bytes.Buffer
				if err := dag.WriteText(&buf, g); err != nil {
					t.Fatal(err)
				}
				return buf.String()
			}
			if got, want := render(rebuilt), render(fx.G); got != want {
				t.Errorf("provenance rebuild differs from the stored graph")
			}
		})
	}
}

// TestFixtureContradictsConsensus pins that the archive holds at least
// one instance whose winner inverts the genx consensus ranking of the
// BNP algorithms: on the random suites (quick scale, seed 1998) the
// rank-sum consensus orders MCP(1) DLS(2) ISH(3) ETF(4) HLFET(5)
// LAST(6), so a fixture where a consensus-worse algorithm produces the
// shorter schedule is a per-instance counterexample to the
// average-case ranking.
func TestFixtureContradictsConsensus(t *testing.T) {
	consensusRank := map[string]int{
		"MCP": 1, "DLS": 2, "ISH": 3, "ETF": 4, "HLFET": 5, "LAST": 6,
	}
	found := false
	for name, fx := range loadTestdata(t) {
		ra, okA := consensusRank[fx.AlgA]
		rb, okB := consensusRank[fx.AlgB]
		if !okA || !okB {
			continue // non-BNP pair; the consensus covers the BNP class
		}
		// AlgB won on this instance (TestFixtureGapRegression proves it
		// still does); a higher consensus rank number means the suites
		// rank it worse on average.
		if rb > ra {
			t.Logf("%s: %s (consensus rank %d) beats %s (rank %d)", name, fx.AlgB, rb, fx.AlgA, ra)
			found = true
		}
	}
	if !found {
		t.Error("no archived fixture inverts the genx consensus ranking")
	}
}
