package adversarial

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dag"
	"repro/internal/gen"
)

// A counterexample fixture is a .tg graph file whose header comments
// carry the adversarial provenance: the algorithm pair, the machine
// size, the candidate that produced the instance, the two measured
// makespans, and a pinned lower bound on the relative gap. Because the
// metadata lives in "# adv <key> <value>" comment lines, every fixture
// is also a plain .tg file: dag.ReadText and the cmd tools load it
// unchanged, while ReadFixture additionally recovers the provenance.
// Regression tests re-run the pair on the stored graph and assert the
// gap's sign and lower bound, making each searched finding a permanent
// tier-1 test.
//
// Fixtures also exist in the binary container: a .tgb file whose meta
// string holds the same "# adv" header lines. ReadFixture sniffs the
// magic and accepts either form; WriteFixtureBinary produces the
// binary one. Such a fixture is equally a plain .tgb file for every
// dag.ReadAny consumer.

// Fixture is one archived counterexample instance.
type Fixture struct {
	// AlgA and AlgB name the compared algorithms; the fixture pins that
	// B's schedule is shorter (LenA > LenB).
	AlgA, AlgB string
	// Procs is the machine size the makespans were measured on.
	Procs int
	// Candidate records how the instance was constructed (provenance
	// only — the graph below is authoritative).
	Candidate
	// LenA and LenB are the measured makespans at archive time.
	LenA, LenB int64
	// MinGap is the pinned lower bound on the relative gap
	// (LenA-LenB)/LenB that regression tests assert.
	MinGap float64
	// Objective names the search objective the lengths were measured
	// under; empty means the static-makespan "gap" objective. Fixtures
	// found under "fault-gap" record fault-effective makespans, and
	// regression tests re-run them through the canonical fault scenario
	// instead of static scheduling.
	Objective string
	// G is the instance itself.
	G *dag.Graph
}

// Gap returns the fixture's recorded relative makespan gap.
func (f *Fixture) Gap() float64 { return GapObjective{}.Score(f.LenA, f.LenB) }

// fixtureHeader renders the "# adv" provenance lines shared by both
// fixture encodings.
func fixtureHeader(f *Fixture) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# adversarial counterexample: %s beats %s on this instance\n", f.AlgB, f.AlgA)
	fmt.Fprintf(&sb, "# adv pair %s %s\n", f.AlgA, f.AlgB)
	fmt.Fprintf(&sb, "# adv procs %d\n", f.Procs)
	fmt.Fprintf(&sb, "# adv family %s\n", f.Family)
	fmt.Fprintf(&sb, "# adv params %s\n", gen.CanonicalParams(f.Params))
	fmt.Fprintf(&sb, "# adv seed %d\n", f.Seed)
	fmt.Fprintf(&sb, "# adv perturb %s %d\n", gen.FormatFloatParam(f.Perturb), f.PerturbSeed)
	fmt.Fprintf(&sb, "# adv lengths %d %d\n", f.LenA, f.LenB)
	fmt.Fprintf(&sb, "# adv mingap %s\n", gen.FormatFloatParam(f.MinGap))
	if f.Objective != "" && f.Objective != "gap" {
		fmt.Fprintf(&sb, "# adv objective %s\n", f.Objective)
	}
	return sb.String()
}

// WriteFixture serializes a fixture: the provenance header followed by
// the graph in the .tg text format.
func WriteFixture(w io.Writer, f *Fixture) error {
	if _, err := io.WriteString(w, fixtureHeader(f)); err != nil {
		return err
	}
	return dag.WriteText(w, f.G)
}

// WriteFixtureBinary serializes a fixture as a .tgb file carrying the
// provenance header in the binary container's meta string.
func WriteFixtureBinary(w io.Writer, f *Fixture) error {
	return dag.WriteBinaryMeta(w, f.G, fixtureHeader(f))
}

// ReadFixture parses a fixture in either encoding: the text form
// written by WriteFixture ("# adv" header lines plus the graph body,
// which ReadText parses, ignoring the comments) or the binary form
// written by WriteFixtureBinary (detected by the .tgb magic; the
// header lines come from the container's meta string).
func ReadFixture(r io.Reader) (*Fixture, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	header := data
	var g *dag.Graph
	if bytes.HasPrefix(data, []byte(dag.BinaryMagic)) {
		var meta string
		if g, meta, err = dag.ReadBinaryMeta(bytes.NewReader(data)); err != nil {
			return nil, err
		}
		header = []byte(meta)
	}
	f := &Fixture{}
	sc := bufio.NewScanner(bytes.NewReader(header))
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || fields[0] != "#" || fields[1] != "adv" {
			continue
		}
		key, args := fields[2], fields[3:]
		var perr error
		switch key {
		case "pair":
			if len(args) != 2 {
				perr = fmt.Errorf("want 2 algorithm names, got %d", len(args))
			} else {
				f.AlgA, f.AlgB = args[0], args[1]
			}
		case "procs":
			f.Procs, perr = strconv.Atoi(args[0])
		case "family":
			f.Family = args[0]
		case "params":
			f.Params, perr = gen.ParseCanonicalParams(strings.Join(args, " "))
		case "seed":
			f.Seed, perr = strconv.ParseInt(args[0], 10, 64)
		case "perturb":
			if len(args) != 2 {
				perr = fmt.Errorf("want spread and seed, got %d fields", len(args))
			} else {
				if f.Perturb, perr = strconv.ParseFloat(args[0], 64); perr == nil {
					f.PerturbSeed, perr = strconv.ParseInt(args[1], 10, 64)
				}
			}
		case "lengths":
			if len(args) != 2 {
				perr = fmt.Errorf("want 2 lengths, got %d", len(args))
			} else {
				if f.LenA, perr = strconv.ParseInt(args[0], 10, 64); perr == nil {
					f.LenB, perr = strconv.ParseInt(args[1], 10, 64)
				}
			}
		case "mingap":
			f.MinGap, perr = strconv.ParseFloat(args[0], 64)
		case "objective":
			f.Objective = args[0]
		default:
			perr = fmt.Errorf("unknown key")
		}
		if perr != nil {
			return nil, fmt.Errorf("adversarial: fixture header %q: %v", sc.Text(), perr)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if f.AlgA == "" || f.AlgB == "" {
		return nil, fmt.Errorf("adversarial: fixture is missing the '# adv pair' header")
	}
	if f.Procs < 1 {
		return nil, fmt.Errorf("adversarial: fixture is missing the '# adv procs' header")
	}
	if g == nil {
		if g, err = dag.ReadText(bytes.NewReader(data)); err != nil {
			return nil, err
		}
	}
	f.G = g
	return f, nil
}

// FixtureName returns the canonical file name an archived fixture gets:
// family and pair, lowercased, with a 1-based rank suffix.
func FixtureName(family, algA, algB string, rank int) string {
	clean := func(s string) string {
		return strings.ToLower(strings.ReplaceAll(s, "/", "-"))
	}
	return fmt.Sprintf("%s-%s-vs-%s-%d.tg", clean(family), clean(algA), clean(algB), rank)
}

// Archive writes a report's top candidates with positive scores as
// fixtures under dir, pinning each gap's floor to three decimals.
// It returns the written paths in rank order. Candidates that do not
// beat algA (non-positive gap) are skipped: a fixture asserts a strict
// counterexample, not a near miss.
func Archive(dir string, rep *Report, procs int, k int) ([]string, error) {
	if rep.AlgA == "" || rep.AlgB == "" {
		return nil, fmt.Errorf("adversarial: report carries no algorithm pair to archive")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	rank := 0
	for _, found := range rep.Top {
		if rank >= k {
			break
		}
		gap := GapObjective{}.Score(found.LenA, found.LenB)
		if gap <= 0 || found.Graph == nil {
			continue
		}
		rank++
		fx := &Fixture{
			AlgA:      rep.AlgA,
			AlgB:      rep.AlgB,
			Procs:     procs,
			Candidate: found.Candidate,
			LenA:      found.LenA,
			LenB:      found.LenB,
			// Pin a slightly slack floor so the fixture keeps passing
			// under harmless rounding churn while still asserting most
			// of the found margin.
			MinGap:    floorGap(gap),
			Objective: rep.Objective,
		}
		path := filepath.Join(dir, FixtureName(found.Family, rep.AlgA, rep.AlgB, rank))
		file, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		fx.G = found.Graph
		if err := WriteFixture(file, fx); err != nil {
			file.Close()
			return nil, err
		}
		if err := file.Close(); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// floorGap rounds a gap down to three decimals (minimum one
// thousandth), the lower bound archived fixtures pin.
func floorGap(gap float64) float64 {
	floored := float64(int(gap*1000)) / 1000
	if floored < 0.001 {
		floored = 0.001
	}
	return floored
}

// LoadFixtures reads every .tg and .tgb fixture under dir, sorted by
// file name.
func LoadFixtures(dir string) (map[string]*Fixture, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.tg"))
	if err != nil {
		return nil, err
	}
	binPaths, err := filepath.Glob(filepath.Join(dir, "*.tgb"))
	if err != nil {
		return nil, err
	}
	paths = append(paths, binPaths...)
	sort.Strings(paths)
	out := map[string]*Fixture{}
	for _, path := range paths {
		file, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		fx, err := ReadFixture(file)
		file.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out[filepath.Base(path)] = fx
	}
	return out, nil
}
