package core

import (
	"fmt"
	"sort"

	"repro/internal/gen"
	"repro/internal/table"
)

// This file implements the cross-generator sensitivity study (experiment
// id "genx"). Canon, Héam & Philippe (Euro-Par 2019) showed that the
// ranking of scheduling algorithms depends on how the random benchmark
// DAGs were generated; the study quantifies that dependence for this
// repository's BNP algorithms by scheduling every registered random
// family over one matched grid of (size, CCR, instance) points and
// comparing the per-family algorithm rankings with Kendall's tau.

// genxPoints returns the matched (size, CCR, instances-per-point) grid
// every random family is sampled on.
func genxPoints(s Scale) (sizes []int, ccrs []float64, instances int) {
	if s == Full {
		return []int{50, 100, 200, 400}, []float64{0.1, 0.5, 1.0, 2.0, 10.0}, 5
	}
	return []int{30, 60}, []float64{0.1, 1.0, 10.0}, 3
}

// GenX runs the cross-generator sensitivity study: the BNP algorithms
// over every registered random family at matched (size, CCR) points,
// reporting each family's average NSL and algorithm ranking, each
// ranking's Kendall-tau agreement with the consensus (rank-sum)
// ordering, and the mean pairwise tau across families as the overall
// stability score. Output is deterministic in (seed, scale) and
// byte-identical for every worker count.
func GenX(cfg Config) error {
	byFam, err := suiteCacheFor(cfg).genxSuite(cfg)
	if err != nil {
		return err
	}
	fams := gen.RandomFamilies()
	algs := ByClass(BNP)

	var p plan[Result]
	for _, f := range fams {
		for _, ng := range byFam[f.Name] {
			for _, a := range algs {
				runCell(&p, "genx", a, ng, BNPProcs(ng.G.NumNodes()), nil)
			}
		}
	}
	results, err := p.run(cfg)
	if err != nil {
		return err
	}

	// Average NSL per (family, algorithm), in plan order.
	cur := cursor[Result]{rs: results}
	avg := make([][]float64, len(fams))
	for fi, f := range fams {
		sums := make([]float64, len(algs))
		for range byFam[f.Name] {
			for ai := range algs {
				sums[ai] += cur.next().NSL
			}
		}
		avg[fi] = sums
		if n := len(byFam[f.Name]); n > 0 {
			for ai := range algs {
				avg[fi][ai] /= float64(n)
			}
		}
	}

	// Per-family rankings (1 = lowest average NSL) and the consensus
	// ranking by rank sum; ties break on canonical algorithm order so
	// the output is fully deterministic.
	ranks := make([][]int, len(fams))
	rankSum := make([]int, len(algs))
	for fi := range fams {
		ranks[fi] = rankAscending(avg[fi])
		for ai, r := range ranks[fi] {
			rankSum[ai] += r
		}
	}
	sums := make([]float64, len(algs))
	for ai, s := range rankSum {
		sums[ai] = float64(s)
	}
	consensus := rankAscending(sums)

	cols := []string{"family", "graphs"}
	for _, a := range algs {
		cols = append(cols, a.Name)
	}
	cols = append(cols, "tau")
	t := table.New("Average NSL (rank) per generator family, BNP algorithms", cols...)
	for fi, f := range fams {
		row := []string{f.Name, fmt.Sprint(len(byFam[f.Name]))}
		for ai := range algs {
			row = append(row, fmt.Sprintf("%.3f (%d)", avg[fi][ai], ranks[fi][ai]))
		}
		row = append(row, fmt.Sprintf("%.3f", kendallTau(ranks[fi], consensus)))
		t.AddRow(row...)
	}
	t.AddSeparator()
	crow := []string{"consensus", ""}
	for ai := range algs {
		crow = append(crow, fmt.Sprintf("(%d)", consensus[ai]))
	}
	crow = append(crow, "")
	t.AddRow(crow...)
	if err := t.Render(cfg.Out); err != nil {
		return err
	}

	// Overall stability: mean Kendall-tau over all family pairs. 1 means
	// every family ranks the algorithms identically; values near 0 mean
	// the benchmark conclusion depends on the generation method.
	var total float64
	pairs := 0
	for i := 0; i < len(fams); i++ {
		for j := i + 1; j < len(fams); j++ {
			total += kendallTau(ranks[i], ranks[j])
			pairs++
		}
	}
	if pairs > 0 {
		fmt.Fprintf(cfg.Out, "mean pairwise Kendall-tau across %d families: %.3f (1 = rankings agree everywhere)\n",
			len(fams), total/float64(pairs))
	}
	fmt.Fprintln(cfg.Out, "tau column: Kendall-tau of the family's ranking against the consensus (rank-sum) ordering")
	return nil
}

// rankAscending assigns rank 1 to the smallest value; ties break on
// index order, keeping rankings deterministic.
func rankAscending(vals []float64) []int {
	order := make([]int, len(vals))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return vals[order[a]] < vals[order[b]] })
	ranks := make([]int, len(vals))
	for pos, idx := range order {
		ranks[idx] = pos + 1
	}
	return ranks
}

// kendallTau computes Kendall's tau-a between two rankings given as
// per-item rank vectors: the normalized difference between concordant
// and discordant item pairs, +1 for identical orderings and -1 for
// exactly reversed ones.
func kendallTau(a, b []int) float64 {
	n := len(a)
	if n < 2 {
		return 1
	}
	conc, disc := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := a[i] - a[j]
			db := b[i] - b[j]
			switch {
			case da*db > 0:
				conc++
			case da*db < 0:
				disc++
			}
		}
	}
	return float64(conc-disc) / float64(n*(n-1)/2)
}
