package core

import (
	"strings"
	"testing"

	"repro/internal/gen"
)

func TestKendallTau(t *testing.T) {
	cases := []struct {
		a, b []int
		want float64
	}{
		{[]int{1, 2, 3, 4}, []int{1, 2, 3, 4}, 1},
		{[]int{1, 2, 3, 4}, []int{4, 3, 2, 1}, -1},
		{[]int{1, 2}, []int{2, 1}, -1},
		{[]int{1}, []int{1}, 1},
		// One adjacent swap in 4 items: 5 of 6 pairs concordant.
		{[]int{1, 2, 3, 4}, []int{2, 1, 3, 4}, 4.0 / 6.0},
	}
	for _, c := range cases {
		if got := kendallTau(c.a, c.b); got != c.want {
			t.Errorf("kendallTau(%v, %v) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestRankAscending(t *testing.T) {
	got := rankAscending([]float64{3.5, 1.0, 2.0})
	want := []int{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rankAscending = %v, want %v", got, want)
		}
	}
	// Ties keep canonical (index) order.
	got = rankAscending([]float64{2.0, 1.0, 1.0})
	want = []int{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rankAscending with ties = %v, want %v", got, want)
		}
	}
}

// TestGenXOutput runs the study at quick scale and checks the report
// covers every registered random family, the per-family tau column, and
// the overall stability line the acceptance criteria ask for.
func TestGenXOutput(t *testing.T) {
	out := runForOutput(t, "genx", 4, NewSuiteCache())
	fams := gen.RandomFamilies()
	if len(fams) < 4 {
		t.Fatalf("only %d random families registered, want >= 4", len(fams))
	}
	for _, f := range fams {
		if !strings.Contains(out, f.Name) {
			t.Errorf("genx output missing family %q:\n%s", f.Name, out)
		}
	}
	for _, needle := range []string{"tau", "consensus", "mean pairwise Kendall-tau"} {
		if !strings.Contains(out, needle) {
			t.Errorf("genx output missing %q:\n%s", needle, out)
		}
	}
}

// TestGenXSuiteCached verifies the genx instances are generated once per
// (seed, scale) and shared through the cache.
func TestGenXSuiteCached(t *testing.T) {
	cache := NewSuiteCache()
	cfg := Config{Seed: 5, Scale: Quick, Cache: cache}
	a, err := cache.genxSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cache.genxSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for fam := range a {
		if len(a[fam]) == 0 {
			t.Fatalf("family %s has no instances", fam)
		}
		for i := range a[fam] {
			if a[fam][i].G != b[fam][i].G {
				t.Fatalf("family %s instance %d regenerated instead of cached", fam, i)
			}
		}
	}
}
