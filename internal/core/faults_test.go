package core

import (
	"regexp"
	"strconv"
	"testing"
)

// bnpSurvivalLine parses the class-level policy comparison emitted by
// the faults experiment.
var bnpSurvivalLine = regexp.MustCompile(
	`BNP deadline survival at mtbf=[^:]+: none=([0-9.]+)% resubmit=([0-9.]+)% checkpoint=([0-9.]+)% replicate=([0-9.]+)%`)

// TestFaultsDeterministicAcrossWorkers pins the acceptance criteria of
// the fault-injection study: byte-identical output at every worker
// count, and reactive recovery (resubmit, checkpoint) strictly beating
// no recovery on deadline survival at the harshest MTBF.
func TestFaultsDeterministicAcrossWorkers(t *testing.T) {
	cache := NewSuiteCache()
	base := runForOutput(t, "faults", 1, cache)
	m := bnpSurvivalLine.FindStringSubmatch(base)
	if m == nil {
		t.Fatalf("faults output missing the BNP survival line:\n%s", base)
	}
	pct := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("unparseable survival %q", s)
		}
		return v
	}
	none, resubmit, checkpoint := pct(m[1]), pct(m[2]), pct(m[3])
	if resubmit <= none {
		t.Errorf("resubmit survival %.1f%% does not strictly beat none %.1f%%", resubmit, none)
	}
	if checkpoint <= none {
		t.Errorf("checkpoint survival %.1f%% does not strictly beat none %.1f%%", checkpoint, none)
	}
	for _, workers := range []int{4, 8} {
		if got := runForOutput(t, "faults", workers, cache); got != base {
			t.Errorf("faults output with %d workers differs from serial:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
				workers, base, workers, got)
		}
	}
}
