package core

import (
	"bytes"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"time"

	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/table"
)

// This file implements the "scaling" experiment: an empirical-complexity
// study of the reproduction itself rather than of the paper's metrics.
// Each streaming-capable generator family is run up a size ladder from
// 10^3 to 10^6 nodes; every rung is generated through the registry,
// serialized to both exchange formats (the text .tg and the binary
// .tgb), re-read from the binary form, and scheduled by the registered
// algorithms up to per-algorithm caps. The deterministic output —
// graph sizes, encoded byte counts, compression ratios, makespans, and
// the fitted log-log slopes of the structural columns — is
// byte-identical for every worker count; wall-clock timing, allocation,
// and peak-RSS columns only appear under Config.ScalingMeasure, which
// forces a serial run (concurrent cells would contend for cores and
// memory bandwidth, like Table 6's timings).

// scalingCapNone marks an algorithm or family that runs to the top of
// the ladder.
const scalingCapNone = 1 << 30

// scalingAlg pairs one registry algorithm with the largest node count it
// is asked to schedule. The caps encode the implementations' empirical
// complexity, not the paper's formulas: non-insertion BNP list
// scheduling is O(E + V·(W+P)) for ready-width W, so it climbs the full
// ladder on bounded-width families; ETF and DLS re-score every (ready ×
// processor) pair each step and the UNC clustering passes rescan
// clusters, which is quadratic or worse, so they stop early with the
// cap recorded in the column header.
type scalingAlg struct {
	alg Algorithm
	cap int
	// workCap additionally bounds v·e for the algorithms whose inner
	// loops touch every edge per node (the UNC cluster passes): a
	// v-only cap would let the dense rgnos family (e ≈ v²/15) through
	// with hundreds of times the work of a sparse rung at the same v.
	// 0 means unbounded. The budgets are set from measured rates so no
	// single cell exceeds roughly a second on commodity hardware.
	workCap int64
}

// runsAt reports whether the algorithm schedules a rung of v nodes and
// e edges. Both inputs are deterministic, so the skip pattern is too.
func (sa scalingAlg) runsAt(v, e int) bool {
	if v > sa.cap {
		return false
	}
	return sa.workCap == 0 || int64(v)*int64(e) <= sa.workCap
}

// scalingAlgs returns the ladder roster: the six BNP algorithms, the
// five UNC algorithms, and one APN representative (MH; the APN class
// schedules every message on the topology's links, which multiplies the
// work per task and caps the class lowest).
func scalingAlgs() []scalingAlg {
	caps := map[string]int{
		"ETF":  2000,  // O(W·P) candidate re-scoring per step
		"DLS":  2000,  // same scan with dynamic levels
		"MCP":  4000,  // ALAP list sort plus insertion scans go quadratic (70s at 16k)
		"ISH":  16000, // hole filling rescans the whole ready set per hole
		"LAST": 64000, // dynamic edge-locality priority rescans per step
		"DSC":  16000, // O((V+E) log V) cluster merging, but one processor per node
		"MH":   1000,  // APN: per-message link routing
	}
	// Measured v·e budgets for the edge-quadratic UNC passes (EZ's
	// zeroing rescan walks ~v nodes per edge; MD, DCP, and LC rescan
	// similarly with smaller constants).
	workCaps := map[string]int64{
		"EZ":  8e6,
		"LC":  8e7,
		"MD":  3e7,
		"DCP": 3e7,
	}
	var out []scalingAlg
	for _, a := range append(ByClass(BNP), ByClass(UNC)...) {
		c, ok := caps[a.Name]
		if !ok {
			c = scalingCapNone
		}
		out = append(out, scalingAlg{alg: a, cap: c, workCap: workCaps[a.Name]})
	}
	for _, a := range ByClass(APN) {
		if a.Name == "MH" {
			out = append(out, scalingAlg{alg: a, cap: caps["MH"]})
		}
	}
	return out
}

// scalingFamily is one generator family of the ladder with its caps:
// genCap bounds generation (rgnos's mean fanout of v/10 makes its edge
// set quadratic in v, so it cannot be streamed); schedCap bounds
// scheduling for the whole family. Per-algorithm caps live on
// scalingAlg; the only family-level bound left is rgnos, whose dense
// edge set makes every pass quadratic.
type scalingFamily struct {
	name     string
	genCap   int
	schedCap int
	params   func(v int) gen.Params
}

// scalingFamilies returns the ladder families. The edge-probability
// parameters shrink with v so every family holds E ≈ 4V at all rungs
// (rgnos excepted), keeping rungs comparable across sizes: layered uses
// p = 4/sqrt(v) over ~v^1.5 consecutive-layer pairs, erdos p = 8/(v-1)
// over v(v-1)/2 forward pairs.
func scalingFamilies() []scalingFamily {
	return []scalingFamily{
		{
			// Registry defaults: ~sqrt(v) layers of width sqrt(v) with
			// p = 4/sqrt(v) between consecutive layers, so E ≈ 4V.
			name: "layered", genCap: scalingCapNone, schedCap: scalingCapNone,
			params: func(v int) gen.Params {
				return gen.Params{
					"v": strconv.Itoa(v),
					"p": fmt.Sprintf("%g", math.Min(1, 4/math.Sqrt(float64(v)))),
				}
			},
		},
		{
			name: "erdos", genCap: scalingCapNone, schedCap: scalingCapNone,
			params: func(v int) gen.Params {
				p := 1.0
				if v > 1 {
					p = math.Min(1, 8/float64(v-1))
				}
				return gen.Params{
					"v": strconv.Itoa(v),
					"p": fmt.Sprintf("%g", p),
				}
			},
		},
		{
			name: "faninout", genCap: scalingCapNone, schedCap: scalingCapNone,
			params: func(v int) gen.Params {
				return gen.Params{"v": strconv.Itoa(v)}
			},
		},
		{
			name: "rgnos", genCap: 4000, schedCap: 4000,
			params: func(v int) gen.Params {
				return gen.Params{"v": strconv.Itoa(v)}
			},
		},
	}
}

// scalingLadder returns the node-count rungs: quick stays in the legacy
// generator regime for CI; full spans three decades into the streaming
// regime, spaced near-uniformly in log space so the slope fits are
// well-conditioned.
func scalingLadder(s Scale) []int {
	if s == Full {
		return []int{1000, 4000, 16000, 64000, 250000, 1000000}
	}
	return []int{1000, 2000, 4000}
}

// scaleRow is one (family, size) rung of the ladder.
type scaleRow struct {
	fam       string
	v, e      int
	tgBytes   int64
	tgbBytes  int64
	genDur    time.Duration
	ioDur     time.Duration
	allocPerV int64   // bytes allocated per node during generation (measure mode)
	rssKB     int64   // VmHWM after the rung, -1 when not measured
	length    []int64 // per roster algorithm; -1 = above cap
	secs      []float64
}

// countWriter counts bytes without retaining them.
type countWriter struct{ n int64 }

func (w *countWriter) Write(p []byte) (int, error) { w.n += int64(len(p)); return len(p), nil }

// fitSlope returns the least-squares slope of log(y) against log(x),
// i.e. the exponent s of the best power-law fit y ~ x^s. Pairs with
// non-positive coordinates are skipped; fewer than two usable points
// yield NaN.
func fitSlope(xs []float64, ys []float64) float64 {
	var sx, sy, sxx, sxy float64
	n := 0
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			continue
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
		n++
	}
	if n < 2 {
		return math.NaN()
	}
	den := float64(n)*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (float64(n)*sxy - sx*sy) / den
}

// scalingSeed derives the generator seed of one rung; families get
// disjoint seed streams so rungs never share RNG state.
func scalingSeed(base int64, famIdx, v int) int64 {
	return base + int64(famIdx)*1_000_003 + int64(v)
}

// scalingAlgLabel renders one roster column header, cap included:
// "ETF(BNP)<=2000"; a trailing "*" marks a v·e work budget, spelled out
// in a note under the makespan table.
func scalingAlgLabel(sa scalingAlg) string {
	l := fmt.Sprintf("%s(%s)", sa.alg.Name, sa.alg.Class)
	if sa.cap != scalingCapNone {
		l += fmt.Sprintf("<=%d", sa.cap)
	}
	if sa.workCap != 0 {
		l += "*"
	}
	return l
}

// Scaling runs the million-node ladder: generation through the
// registry, text and binary serialization, binary re-read, and
// scheduling under the roster caps, then renders the scale/encoding
// table, the makespan table, the deterministic structural slopes, and —
// under Config.ScalingMeasure — measured time, allocation, peak-RSS
// columns and fitted time slopes.
func Scaling(cfg Config) error {
	measure := cfg.ScalingMeasure
	runCfg := cfg
	if measure {
		// Measured mode is serial by definition: concurrent cells would
		// share cores and memory bandwidth and corrupt the timings.
		runCfg.Workers = 1
	}
	algs := scalingAlgs()
	fams := scalingFamilies()
	sizes := scalingLadder(cfg.Scale)
	topo := apnTopology()

	var rows []scaleRow
	for fi, fam := range fams {
		for _, v := range sizes {
			if v > fam.genCap {
				continue
			}
			var before runtime.MemStats
			if measure {
				runtime.ReadMemStats(&before)
			}
			t0 := time.Now()
			g, err := gen.Generate(fam.name, scalingSeed(cfg.Seed, fi, v), fam.params(v))
			if err != nil {
				return fmt.Errorf("scaling: %s v=%d: %w", fam.name, v, err)
			}
			genDur := time.Since(t0)
			row := scaleRow{fam: fam.name, v: g.NumNodes(), e: g.NumEdges(), genDur: genDur, rssKB: -1}
			if measure {
				var after runtime.MemStats
				runtime.ReadMemStats(&after)
				row.allocPerV = int64(after.TotalAlloc-before.TotalAlloc) / int64(v)
			}

			// Byte counts of both encodings; the binary round trip is
			// written for real and re-read so ioDur covers encode+decode.
			var tw countWriter
			if err := dag.WriteText(&tw, g); err != nil {
				return fmt.Errorf("scaling: %s v=%d: write text: %w", fam.name, v, err)
			}
			row.tgBytes = tw.n
			var buf bytes.Buffer
			t1 := time.Now()
			if err := dag.WriteBinary(&buf, g); err != nil {
				return fmt.Errorf("scaling: %s v=%d: write binary: %w", fam.name, v, err)
			}
			row.tgbBytes = int64(buf.Len())
			g2, err := dag.ReadBinary(&buf)
			if err != nil {
				return fmt.Errorf("scaling: %s v=%d: re-read binary: %w", fam.name, v, err)
			}
			row.ioDur = time.Since(t1)
			if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
				return fmt.Errorf("scaling: %s v=%d: binary round trip changed shape", fam.name, v)
			}
			// Schedule the re-read graph: the rung exercises the full
			// generate -> encode -> decode -> schedule pipeline.
			ng := gen.NamedGraph{Name: fmt.Sprintf("%s-v%d", fam.name, v), G: g2}
			g = nil

			var p plan[Result]
			for _, sa := range algs {
				if sa.runsAt(v, row.e) && v <= fam.schedCap {
					runCell(&p, "scaling", sa.alg, ng, BNPProcs(v), topo)
				}
			}
			results, err := p.run(runCfg)
			if err != nil {
				return err
			}
			cur := cursor[Result]{rs: results}
			for _, sa := range algs {
				if sa.runsAt(v, row.e) && v <= fam.schedCap {
					r := cur.next()
					row.length = append(row.length, r.Length)
					row.secs = append(row.secs, r.Elapsed.Seconds())
				} else {
					row.length = append(row.length, -1)
					row.secs = append(row.secs, math.NaN())
				}
			}
			if measure {
				// The probe lives in internal/obs; sampling also publishes
				// the proc.peak_rss_kb gauge when metrics are on.
				row.rssKB = obs.SamplePeakRSS()
			}
			rows = append(rows, row)
		}
	}

	if err := renderScaleTable(cfg, rows, measure); err != nil {
		return err
	}
	if err := renderMakespanTable(cfg, algs, fams, rows); err != nil {
		return err
	}
	if err := renderStructuralSlopes(cfg, fams, rows); err != nil {
		return err
	}
	if measure {
		if err := renderTimeTables(cfg, algs, rows); err != nil {
			return err
		}
	}
	return nil
}

// renderScaleTable prints the per-rung structural and encoding columns;
// the measured columns render "-" outside measure mode so the
// deterministic bytes never depend on it being off.
func renderScaleTable(cfg Config, rows []scaleRow, measure bool) error {
	t := table.New("Graph scale and encoding per ladder rung",
		"family", "v", "e", ".tg-bytes", ".tgb-bytes", "tgb/tg", "gen-ms", "io-ms", "alloc-B/v", "rss-MB")
	for _, r := range rows {
		genMS, ioMS, alloc, rss := "-", "-", "-", "-"
		if measure {
			genMS = fmt.Sprintf("%.1f", float64(r.genDur.Microseconds())/1000)
			ioMS = fmt.Sprintf("%.1f", float64(r.ioDur.Microseconds())/1000)
			alloc = fmt.Sprint(r.allocPerV)
			if r.rssKB >= 0 {
				rss = fmt.Sprintf("%.0f", float64(r.rssKB)/1024)
			}
		}
		t.AddRow(r.fam, fmt.Sprint(r.v), fmt.Sprint(r.e),
			fmt.Sprint(r.tgBytes), fmt.Sprint(r.tgbBytes),
			fmt.Sprintf("%.2f", float64(r.tgbBytes)/float64(r.tgBytes)),
			genMS, ioMS, alloc, rss)
	}
	return t.Render(cfg.Out)
}

// renderMakespanTable prints the deterministic makespans under the
// roster caps; "-" marks a rung above an algorithm or family cap.
func renderMakespanTable(cfg Config, algs []scalingAlg, fams []scalingFamily, rows []scaleRow) error {
	cols := []string{"family", "v"}
	for _, sa := range algs {
		cols = append(cols, scalingAlgLabel(sa))
	}
	t := table.New("Makespans up the ladder (\"-\" = above cap)", cols...)
	for _, r := range rows {
		row := []string{r.fam, fmt.Sprint(r.v)}
		for i := range algs {
			if r.length[i] < 0 {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprint(r.length[i]))
			}
		}
		t.AddRow(row...)
	}
	if err := t.Render(cfg.Out); err != nil {
		return err
	}
	// Record the work budgets and family-level caps next to the table so
	// a capped column is never mistaken for a failed run.
	for _, sa := range algs {
		if sa.workCap != 0 {
			fmt.Fprintf(cfg.Out, "note: %s runs only where v*e <= %.0e (edge-quadratic cluster passes)\n",
				sa.alg.Name, float64(sa.workCap))
		}
	}
	for _, f := range fams {
		notes := ""
		if f.genCap != scalingCapNone {
			notes += fmt.Sprintf(" generation<=%d (quadratic edge set)", f.genCap)
		}
		if f.schedCap != scalingCapNone {
			notes += fmt.Sprintf(" scheduling<=%d (dense edge set)", f.schedCap)
		}
		if notes != "" {
			fmt.Fprintf(cfg.Out, "note: %s:%s\n", f.name, notes)
		}
	}
	return nil
}

// renderStructuralSlopes prints the deterministic power-law fits: how
// the edge count and the binary encoding grow with v, and the
// steady-state encoding cost per node at the largest rung. These depend
// only on the generated graphs, never on the clock.
func renderStructuralSlopes(cfg Config, fams []scalingFamily, rows []scaleRow) error {
	t := table.New("Empirical structural complexity (least-squares log-log slopes)",
		"family", "rungs", "e~v^", ".tgb~v^", ".tgb-B/v@max")
	for _, f := range fams {
		var vs, es, bs []float64
		var last scaleRow
		for _, r := range rows {
			if r.fam != f.name {
				continue
			}
			vs = append(vs, float64(r.v))
			es = append(es, float64(r.e))
			bs = append(bs, float64(r.tgbBytes))
			last = r
		}
		if len(vs) == 0 {
			continue
		}
		t.AddRow(f.name, fmt.Sprint(len(vs)),
			fmt.Sprintf("%.2f", fitSlope(vs, es)),
			fmt.Sprintf("%.2f", fitSlope(vs, bs)),
			fmt.Sprintf("%.1f", float64(last.tgbBytes)/float64(last.v)))
	}
	return t.Render(cfg.Out)
}

// renderTimeTables prints the measured scheduling seconds and the
// fitted time slopes (time ~ v^s over the rungs an algorithm ran).
// Measure mode only: these are wall-clock values.
func renderTimeTables(cfg Config, algs []scalingAlg, rows []scaleRow) error {
	cols := []string{"family", "v"}
	for _, sa := range algs {
		cols = append(cols, scalingAlgLabel(sa))
	}
	t := table.New("Scheduling time (seconds, serial)", cols...)
	for _, r := range rows {
		row := []string{r.fam, fmt.Sprint(r.v)}
		for i := range algs {
			if math.IsNaN(r.secs[i]) {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.4f", r.secs[i]))
			}
		}
		t.AddRow(row...)
	}
	if err := t.Render(cfg.Out); err != nil {
		return err
	}

	fams := map[string]bool{}
	var order []string
	for _, r := range rows {
		if !fams[r.fam] {
			fams[r.fam] = true
			order = append(order, r.fam)
		}
	}
	slopeCols := append([]string{"family", "fit"}, cols[2:]...)
	st := table.New("Empirical time complexity (scheduling seconds ~ v^slope)", slopeCols...)
	for _, fam := range order {
		row := []string{fam, "t~v^"}
		for i := range algs {
			var vs, ts []float64
			for _, r := range rows {
				if r.fam != fam || math.IsNaN(r.secs[i]) {
					continue
				}
				vs = append(vs, float64(r.v))
				ts = append(ts, r.secs[i])
			}
			s := fitSlope(vs, ts)
			if math.IsNaN(s) {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.2f", s))
			}
		}
		st.AddRow(row...)
	}
	return st.Render(cfg.Out)
}
