// Package core is the evaluation engine of the reproduction: the
// registry of all 15 scheduling algorithms with their classes, the
// measures of paper section 6 (schedule length, NSL, percentage
// degradation from optimal, processors used, running time), and the
// experiment runners that regenerate every table and figure of the
// evaluation.
package core

import (
	"fmt"
	"time"

	"repro/internal/algo/apn"
	"repro/internal/algo/bnp"
	"repro/internal/algo/param"
	"repro/internal/algo/unc"
	"repro/internal/dag"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Class identifies an algorithm family from the paper's taxonomy.
type Class string

// The three algorithm classes compared by the paper (section 4), plus
// the parameterized component combinations of internal/algo/param.
const (
	BNP   Class = "BNP"   // bounded number of processors, clique
	UNC   Class = "UNC"   // unbounded number of clusters, clique
	APN   Class = "APN"   // arbitrary processor network with link contention
	PARAM Class = "PARAM" // parameterized component combination (clique, bounded processors)
)

// Algorithm is one registered scheduler.
type Algorithm struct {
	Name  string
	Class Class

	runBNP   bnp.Scheduler
	runUNC   unc.Scheduler
	runAPN   apn.Scheduler
	runParam func(*dag.Graph, int, []float64) (*sched.Schedule, error)
}

// Result is one measured scheduling run.
type Result struct {
	Algorithm string
	Class     Class
	Length    int64
	NSL       float64
	Procs     int // processors actually used
	Elapsed   time.Duration
}

// Run schedules g with the algorithm and measures the run. BNP
// algorithms receive bnpProcs processors; APN algorithms receive the
// topology; UNC algorithms need no machine argument. The machine is
// homogeneous; use RunOn for heterogeneous processor speeds.
func (a Algorithm) Run(g *dag.Graph, bnpProcs int, topo *machine.Topology) (Result, error) {
	return a.RunOn(g, bnpProcs, nil, topo)
}

// RunOn schedules g with the algorithm on a machine with the given
// per-processor speed vector and measures the run. A nil speeds vector
// selects the homogeneous model and reproduces Run exactly. For BNP and
// PARAM algorithms speeds must have bnpProcs entries; for APN
// algorithms it must match the topology's processor count; UNC
// algorithms choose their own processor count (up to one per node), so
// speeds must cover g.NumNodes() processors.
func (a Algorithm) RunOn(g *dag.Graph, bnpProcs int, speeds []float64, topo *machine.Topology) (Result, error) {
	if t := obs.ActiveTracer(); t != nil {
		procs := bnpProcs
		switch a.Class {
		case UNC:
			procs = g.NumNodes()
		case APN:
			if topo != nil {
				procs = topo.NumProcs()
			}
		}
		// Bracketing the run here (rather than in the kernels) keeps
		// bulk placements outside RunOn — branch-and-bound optimal
		// probes, fault-repair passes — out of the trace.
		t.BeginRun(a.Name, string(a.Class), g.NumNodes(), procs)
		defer t.EndRun()
	}
	algRuns.Inc()
	start := time.Now()
	var (
		length int64
		nsl    float64
		procs  int
	)
	switch a.Class {
	case BNP:
		var (
			s   *sched.Schedule
			err error
		)
		if speeds == nil {
			s, err = a.runBNP(g, bnpProcs)
		} else {
			s, err = bnp.ScheduleHet(a.Name, g, bnpProcs, speeds)
		}
		if err != nil {
			return Result{}, err
		}
		length, nsl, procs = s.Makespan(), s.NSL(), s.ProcessorsUsed()
		// The schedule is measured and discarded; recycling it lets the
		// next cell on this worker run without allocating one.
		s.Release()
	case PARAM:
		s, err := a.runParam(g, bnpProcs, speeds)
		if err != nil {
			return Result{}, err
		}
		length, nsl, procs = s.Makespan(), s.NSL(), s.ProcessorsUsed()
		s.Release()
	case UNC:
		var (
			s   *sched.Schedule
			err error
		)
		if speeds == nil {
			s, err = a.runUNC(g)
		} else {
			s, err = unc.ScheduleHet(a.Name, g, speeds)
		}
		if err != nil {
			return Result{}, err
		}
		length, nsl, procs = s.Makespan(), s.NSL(), s.ProcessorsUsed()
		s.Release()
	case APN:
		if topo == nil {
			return Result{}, fmt.Errorf("core: APN algorithm %s needs a topology", a.Name)
		}
		var (
			s   *machine.Schedule
			err error
		)
		if speeds == nil {
			s, err = a.runAPN(g, topo)
		} else {
			s, err = apn.ScheduleHet(a.Name, g, topo, speeds)
		}
		if err != nil {
			return Result{}, err
		}
		length, nsl, procs = s.Makespan(), s.NSL(), s.ProcessorsUsed()
	default:
		return Result{}, fmt.Errorf("core: unknown class %q", a.Class)
	}
	return Result{
		Algorithm: a.Name,
		Class:     a.Class,
		Length:    length,
		NSL:       nsl,
		Procs:     procs,
		Elapsed:   time.Since(start),
	}, nil
}

// All returns the 15 algorithms of the study in the paper's order:
// the 6 BNP, then the 5 UNC, then the 4 APN algorithms. (DLS appears in
// both the BNP and APN classes, as in the paper.)
func All() []Algorithm {
	out := make([]Algorithm, 0, 15)
	out = append(out, ByClass(BNP)...)
	out = append(out, ByClass(UNC)...)
	out = append(out, ByClass(APN)...)
	return out
}

// ByClass returns the algorithms of one class in canonical order.
func ByClass(c Class) []Algorithm {
	switch c {
	case BNP:
		return []Algorithm{
			{Name: "HLFET", Class: BNP, runBNP: bnp.HLFET},
			{Name: "ISH", Class: BNP, runBNP: bnp.ISH},
			{Name: "ETF", Class: BNP, runBNP: bnp.ETF},
			{Name: "LAST", Class: BNP, runBNP: bnp.LAST},
			{Name: "MCP", Class: BNP, runBNP: bnp.MCP},
			{Name: "DLS", Class: BNP, runBNP: bnp.DLS},
		}
	case UNC:
		return []Algorithm{
			{Name: "EZ", Class: UNC, runUNC: unc.EZ},
			{Name: "LC", Class: UNC, runUNC: unc.LC},
			{Name: "DSC", Class: UNC, runUNC: unc.DSC},
			{Name: "MD", Class: UNC, runUNC: unc.MD},
			{Name: "DCP", Class: UNC, runUNC: unc.DCP},
		}
	case APN:
		return []Algorithm{
			{Name: "MH", Class: APN, runAPN: apn.MH},
			{Name: "DLS", Class: APN, runAPN: apn.DLS},
			{Name: "BU", Class: APN, runAPN: apn.BU},
			{Name: "BSA", Class: APN, runAPN: apn.BSA},
		}
	}
	return nil
}

// ParamAlgorithm wraps one component combination of the parameterized
// scheduler space (internal/algo/param) as a registry Algorithm of
// class PARAM, named by its canonical combo name. It runs on bnpProcs
// processors, homogeneous or heterogeneous, like a BNP algorithm.
func ParamAlgorithm(c param.Combo) Algorithm {
	return Algorithm{Name: c.Name(), Class: PARAM, runParam: c.Schedule}
}

// Parameterized returns the full component cross-product of the
// parameterized scheduler space (currently 60 combinations) as
// Algorithms, in the fixed order of param.Combos.
func Parameterized() []Algorithm {
	combos := param.Combos()
	out := make([]Algorithm, len(combos))
	for i, c := range combos {
		out[i] = ParamAlgorithm(c)
	}
	return out
}

// Names returns the algorithm names of a class in canonical order.
func Names(c Class) []string {
	algs := ByClass(c)
	names := make([]string, len(algs))
	for i, a := range algs {
		names[i] = a.Name
	}
	return names
}

// BNPProcs returns the processor count used when running BNP algorithms
// on a graph of v nodes: the paper tested BNP algorithms "with a very
// large number (virtually unlimited number) of processors" and then
// recorded how many were used (section 6.4.2). 32 processors is
// effectively unlimited for the benchmark workloads while keeping the
// O(v^2 p) algorithms (ETF, DLS) tractable.
func BNPProcs(v int) int {
	if v < 32 {
		return v
	}
	return 32
}
