package core

import (
	"regexp"
	"strings"
	"testing"
)

// timingCell matches the "%.4f"-second cells of Table 6, the one piece
// of experiment output that legitimately varies between runs.
var timingCell = regexp.MustCompile(`\d+\.\d{4}`)

// normalizeOutput blanks wall-clock timing cells so byte comparison
// checks everything except measured durations.
func normalizeOutput(id, s string) string {
	if id != "table6" {
		return s
	}
	return timingCell.ReplaceAllString(s, "<t>")
}

func runForOutput(t *testing.T, id string, workers int, cache *SuiteCache) string {
	t.Helper()
	var out strings.Builder
	cfg := Config{Seed: 7, Scale: Quick, Out: &out, Workers: workers, Cache: cache}
	if err := RunExperiment(id, cfg); err != nil {
		t.Fatalf("%s with %d workers: %v", id, workers, err)
	}
	return out.String()
}

// TestExperimentsDeterministic runs every experiment with one worker
// and again with 8 workers: two runs with the same seed must be
// byte-identical, whatever the worker count, so the parallel runner
// must reproduce the serial bytes exactly. The cheap experiments are
// additionally re-run serially to separate seed-determinism from
// runner-determinism. (Table 6 is compared with its timing cells
// blanked — its structure and labels are deterministic, its measured
// seconds are not.)
func TestExperimentsDeterministic(t *testing.T) {
	cache := NewSuiteCache()
	// faults is seed-deterministic too (its own test pins that at three
	// worker counts) but costs ~10s per run, so it skips the extra
	// serial repeat here.
	cheap := map[string]bool{"table1": true, "table4": true, "table5": true, "fig4": true, "tdb": true, "genx": true, "robust": true, "components": true, "adversarial": true, "scaling": true}
	// The branch-and-bound and full-suite sweeps dominate the package's
	// test time; under -short (e.g. the -race CI job) only the cheap
	// experiments run.
	// scaling is both: its determinism is triple-checked in normal runs
	// but skipped under -short (the quick ladder still schedules ~150
	// cells; the CI scaling smoke job covers the workers diff there).
	heavy := map[string]bool{"table2": true, "table3": true, "table6": true, "fig2": true, "unccs": true, "scaling": true}
	for _, e := range Experiments() {
		t.Run(e.ID, func(t *testing.T) {
			if testing.Short() && heavy[e.ID] {
				t.Skipf("skipping %s in short mode", e.ID)
			}
			serial := normalizeOutput(e.ID, runForOutput(t, e.ID, 1, cache))
			if cheap[e.ID] {
				if repeat := normalizeOutput(e.ID, runForOutput(t, e.ID, 1, cache)); serial != repeat {
					t.Errorf("two serial runs of %s differ:\n--- first ---\n%s\n--- second ---\n%s", e.ID, serial, repeat)
				}
			}
			parallel := normalizeOutput(e.ID, runForOutput(t, e.ID, 8, cache))
			if serial != parallel {
				t.Errorf("parallel run of %s differs from serial:\n--- serial ---\n%s\n--- workers=8 ---\n%s", e.ID, serial, parallel)
			}
		})
	}
}

// TestDeterministicAcrossCaches guards against cache state leaking into
// output: a cold cache and a warm cache must render identical bytes.
func TestDeterministicAcrossCaches(t *testing.T) {
	warm := NewSuiteCache()
	first := runForOutput(t, "fig3", 4, warm)
	rewarm := runForOutput(t, "fig3", 4, warm)
	cold := runForOutput(t, "fig3", 4, NewSuiteCache())
	if first != rewarm {
		t.Error("warm-cache rerun differs")
	}
	if first != cold {
		t.Error("cold-cache run differs from warm-cache run")
	}
}
