package core

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunnerDefaultsToGOMAXPROCS(t *testing.T) {
	if got := NewRunner(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("NewRunner(0).Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := NewRunner(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("NewRunner(-3).Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := NewRunner(5).Workers(); got != 5 {
		t.Errorf("NewRunner(5).Workers() = %d, want 5", got)
	}
}

func TestRunCellsOrderAndBounds(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		var active, peak atomic.Int64
		var p plan[int]
		for i := 0; i < 40; i++ {
			p.add(func() (int, error) {
				a := active.Add(1)
				for {
					cur := peak.Load()
					if a <= cur || peak.CompareAndSwap(cur, a) {
						break
					}
				}
				defer active.Add(-1)
				return i * i, nil
			})
		}
		results, err := p.run(Config{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, r := range results {
			if r != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, r, i*i)
			}
		}
		if int(peak.Load()) > workers {
			t.Errorf("workers=%d: observed %d concurrent cells", workers, peak.Load())
		}
	}
}

func TestRunCellsEmptyPlan(t *testing.T) {
	var p plan[string]
	results, err := p.run(Config{Workers: 4})
	if err != nil || results != nil {
		t.Errorf("empty plan returned (%v, %v), want (nil, nil)", results, err)
	}
}

func TestRunCellsFirstErrorInPlanOrder(t *testing.T) {
	for _, workers := range []int{1, 8} {
		var p plan[int]
		for i := 0; i < 20; i++ {
			p.add(func() (int, error) {
				if i == 3 || i == 11 {
					return 0, fmt.Errorf("cell %d failed", i)
				}
				return i, nil
			})
		}
		_, err := p.run(Config{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		// Serial runs stop at the first failure; concurrent runs must
		// still report the lowest-indexed failure among the cells that
		// ran before the pool drained.
		if workers == 1 && err.Error() != "cell 3 failed" {
			t.Errorf("serial error = %q, want cell 3", err)
		}
		if !strings.Contains(err.Error(), "failed") {
			t.Errorf("workers=%d: unexpected error %q", workers, err)
		}
	}
}

func TestRGBOSOptimaSolvedOncePerCache(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping branch-and-bound suite in short mode")
	}
	cache := NewSuiteCache()
	cfg := Config{Seed: 11, Scale: Quick, Out: io.Discard, Workers: 4, Cache: cache}
	before := rgbosSolves.Load()
	if err := Table2(cfg); err != nil {
		t.Fatal(err)
	}
	suite, err := cache.rgbosInstances(cfg)
	if err != nil {
		t.Fatal(err)
	}
	instances := 0
	for _, insts := range suite {
		instances += len(insts)
	}
	if instances == 0 {
		t.Fatal("empty RGBOS suite")
	}
	if got := rgbosSolves.Load() - before; got != int64(instances) {
		t.Fatalf("table2 solved %d optima, want %d", got, instances)
	}
	// Table 3 must reuse the cached optima, not solve them again.
	if err := Table3(cfg); err != nil {
		t.Fatal(err)
	}
	if got := rgbosSolves.Load() - before; got != int64(instances) {
		t.Fatalf("after table3 %d optima solved, want still %d (cache shared by Tables 2 and 3)", got, instances)
	}
}

func TestSuiteCacheKeyedBySeedAndScale(t *testing.T) {
	cache := NewSuiteCache()
	a := cache.rgnosSuite(Config{Seed: 1, Scale: Quick})
	b := cache.rgnosSuite(Config{Seed: 1, Scale: Quick})
	if len(a) == 0 {
		t.Fatal("empty RGNOS suite")
	}
	for size := range a {
		if len(a[size]) != len(b[size]) || (len(a[size]) > 0 && a[size][0].G != b[size][0].G) {
			t.Fatalf("same (seed, scale) regenerated the RGNOS suite for size %d", size)
		}
	}
	c := cache.rgnosSuite(Config{Seed: 2, Scale: Quick})
	for size := range a {
		if len(c[size]) > 0 && len(a[size]) > 0 && c[size][0].G == a[size][0].G {
			t.Fatal("different seeds shared one suite entry")
		}
	}
}

var errSentinel = errors.New("sentinel")

func TestRunCellsPropagatesWrappedErrors(t *testing.T) {
	var p plan[int]
	p.add(func() (int, error) { return 0, fmt.Errorf("wrap: %w", errSentinel) })
	_, err := p.run(Config{Workers: 2})
	if !errors.Is(err, errSentinel) {
		t.Errorf("error %v does not wrap sentinel", err)
	}
}
