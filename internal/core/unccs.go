package core

import (
	"fmt"

	"repro/internal/algo/cs"
	"repro/internal/algo/unc"
	"repro/internal/table"
)

// UNCCS runs the study that paper section 7 poses as future work:
// comparing the BNP approach against UNC clustering followed by cluster
// scheduling (CS) onto the same bounded processor count. Each RGNOS
// graph is scheduled by every BNP algorithm on p processors and by
// every UNC algorithm followed by Sarkar's assignment algorithm and
// Yang's RCP, also onto p processors; the table reports average NSL per
// pipeline.
func UNCCS(cfg Config) error {
	const procs = 8
	bySize := rgnosSuite(cfg)
	sizes := rgnosSizes(cfg.Scale)

	pipelines := []string{}
	for _, a := range ByClass(BNP) {
		pipelines = append(pipelines, a.Name)
	}
	for _, u := range Names(UNC) {
		pipelines = append(pipelines, u+"+SARKAR", u+"+RCP")
	}
	cols := append([]string{"v"}, pipelines...)
	t := table.New(fmt.Sprintf("BNP vs UNC+CS on %d processors: average NSL", procs), cols...)

	uncAlgos := unc.Algorithms()
	mappers := cs.Mappers()
	for _, v := range sizes {
		row := []string{fmt.Sprint(v)}
		for _, a := range ByClass(BNP) {
			var total float64
			for _, ng := range bySize[v] {
				res, err := a.Run(ng.G, procs, nil)
				if err != nil {
					return fmt.Errorf("unccs: %s on %s: %w", a.Name, ng.Name, err)
				}
				total += res.NSL
			}
			row = append(row, fmt.Sprintf("%.3f", total/float64(len(bySize[v]))))
		}
		for _, u := range Names(UNC) {
			for _, m := range []string{"SARKAR", "RCP"} {
				var total float64
				for _, ng := range bySize[v] {
					clustering, err := uncAlgos[u](ng.G)
					if err != nil {
						return fmt.Errorf("unccs: %s on %s: %w", u, ng.Name, err)
					}
					mapped, err := mappers[m](clustering, procs)
					if err != nil {
						return fmt.Errorf("unccs: %s+%s on %s: %w", u, m, ng.Name, err)
					}
					total += mapped.NSL()
				}
				row = append(row, fmt.Sprintf("%.3f", total/float64(len(bySize[v]))))
			}
		}
		t.AddRow(row...)
	}
	return t.Render(cfg.Out)
}
