package core

import (
	"fmt"

	"repro/internal/algo/cs"
	"repro/internal/algo/unc"
	"repro/internal/gen"
	"repro/internal/table"
)

// UNCCS runs the study that paper section 7 poses as future work:
// comparing the BNP approach against UNC clustering followed by cluster
// scheduling (CS) onto the same bounded processor count. Each RGNOS
// graph is scheduled by every BNP algorithm on p processors and by
// every UNC algorithm followed by Sarkar's assignment algorithm and
// Yang's RCP, also onto p processors; the table reports average NSL per
// pipeline.
func UNCCS(cfg Config) error {
	const procs = 8
	bySize := suiteCacheFor(cfg).rgnosSuite(cfg)
	sizes := rgnosSizes(cfg.Scale)

	uncAlgos := unc.Algorithms()
	mappers := cs.Mappers()
	// Each cell is one pipeline applied to one graph, planned in the
	// table's column-major row order: the BNP columns, then every
	// UNC+CS combination.
	var p plan[float64]
	for _, v := range sizes {
		for _, a := range ByClass(BNP) {
			for _, ng := range bySize[v] {
				p.add(func() (float64, error) {
					res, err := a.Run(ng.G, procs, nil)
					if err != nil {
						return 0, fmt.Errorf("unccs: %s on %s: %w", a.Name, ng.Name, err)
					}
					return res.NSL, nil
				})
			}
		}
		for _, u := range Names(UNC) {
			for _, m := range []string{"SARKAR", "RCP"} {
				for _, ng := range bySize[v] {
					p.add(func() (float64, error) {
						clustering, err := uncAlgos[u](ng.G)
						if err != nil {
							return 0, fmt.Errorf("unccs: %s on %s: %w", u, ng.Name, err)
						}
						defer clustering.Release()
						mapped, err := mappers[m](clustering, procs)
						if err != nil {
							return 0, fmt.Errorf("unccs: %s+%s on %s: %w", u, m, ng.Name, err)
						}
						nsl := mapped.NSL()
						mapped.Release()
						return nsl, nil
					})
				}
			}
		}
	}
	results, err := p.run(cfg)
	if err != nil {
		return err
	}

	pipelines := []string{}
	for _, a := range ByClass(BNP) {
		pipelines = append(pipelines, a.Name)
	}
	for _, u := range Names(UNC) {
		pipelines = append(pipelines, u+"+SARKAR", u+"+RCP")
	}
	cols := append([]string{"v"}, pipelines...)
	t := table.New(fmt.Sprintf("BNP vs UNC+CS on %d processors: average NSL", procs), cols...)
	cur := cursor[float64]{rs: results}
	avgCell := func(graphs []gen.NamedGraph) string {
		var total float64
		for range graphs {
			total += cur.next()
		}
		if len(graphs) == 0 {
			return "-"
		}
		return fmt.Sprintf("%.3f", total/float64(len(graphs)))
	}
	for _, v := range sizes {
		row := []string{fmt.Sprint(v)}
		for range ByClass(BNP) {
			row = append(row, avgCell(bySize[v]))
		}
		for range Names(UNC) {
			row = append(row, avgCell(bySize[v]), avgCell(bySize[v]))
		}
		t.AddRow(row...)
	}
	return t.Render(cfg.Out)
}
