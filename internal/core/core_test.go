package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/machine"
)

func smallGraph() *dag.Graph {
	rng := rand.New(rand.NewSource(4))
	b := dag.NewBuilder()
	for i := 0; i < 12; i++ {
		b.AddNode(1 + rng.Int63n(20))
	}
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			if rng.Intn(3) == 0 {
				b.AddEdge(dag.NodeID(i), dag.NodeID(j), rng.Int63n(30))
			}
		}
	}
	return b.MustBuild()
}

func TestRegistryShape(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("registry has %d algorithms, want 15", len(all))
	}
	counts := map[Class]int{}
	for _, a := range all {
		counts[a.Class]++
	}
	if counts[BNP] != 6 || counts[UNC] != 5 || counts[APN] != 4 {
		t.Errorf("class counts = %v, want BNP:6 UNC:5 APN:4", counts)
	}
	if got := Names(UNC); got[4] != "DCP" {
		t.Errorf("UNC names = %v, want DCP last", got)
	}
}

func TestRunAllClasses(t *testing.T) {
	g := smallGraph()
	topo := machine.Hypercube(3)
	for _, a := range All() {
		res, err := a.Run(g, 4, topo)
		if err != nil {
			t.Fatalf("%s(%s): %v", a.Name, a.Class, err)
		}
		if res.Length <= 0 {
			t.Errorf("%s: non-positive length %d", a.Name, res.Length)
		}
		if res.NSL < 1.0-1e-9 {
			t.Errorf("%s: NSL %v < 1", a.Name, res.NSL)
		}
		if res.Procs < 1 {
			t.Errorf("%s: no processors used", a.Name)
		}
		if res.Algorithm != a.Name || res.Class != a.Class {
			t.Errorf("%s: result labels wrong: %+v", a.Name, res)
		}
	}
}

func TestAPNNeedsTopology(t *testing.T) {
	g := smallGraph()
	for _, a := range ByClass(APN) {
		if _, err := a.Run(g, 4, nil); err == nil {
			t.Errorf("%s ran without a topology", a.Name)
		}
	}
}

func TestBNPProcs(t *testing.T) {
	if BNPProcs(10) != 10 {
		t.Errorf("BNPProcs(10) = %d", BNPProcs(10))
	}
	if BNPProcs(500) != 32 {
		t.Errorf("BNPProcs(500) = %d", BNPProcs(500))
	}
}

func TestExperimentsRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 17 {
		t.Fatalf("%d experiments, want 17 (6 tables + 3 figures + 8 extensions)", len(exps))
	}
	want := []string{"table1", "table2", "table3", "table4", "table5", "table6", "fig2", "fig3", "fig4", "unccs", "tdb", "genx", "robust", "components", "adversarial", "faults", "scaling"}
	for i, e := range exps {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	var sink strings.Builder
	if err := RunExperiment("nope", Config{Out: &sink}); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestTable1Runs(t *testing.T) {
	var out strings.Builder
	if err := Table1(Config{Seed: 1, Scale: Quick, Out: &out}); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"kwok-ahmad-9", "DCP", "MCP", "HLFET"} {
		if !strings.Contains(s, want) {
			t.Errorf("table1 output missing %q", want)
		}
	}
}

func TestTable4Runs(t *testing.T) {
	var out strings.Builder
	if err := Table4(Config{Seed: 1, Scale: Quick, Out: &out}); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"avg degradation", "no. of optimal", "v="} {
		if !strings.Contains(s, want) {
			t.Errorf("table4 output missing %q:\n%s", want, s)
		}
	}
}

func TestFigure4Runs(t *testing.T) {
	var out strings.Builder
	if err := Figure4(Config{Seed: 1, Scale: Quick, Out: &out}); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"(a)", "(b)", "(c)", "Cholesky"} {
		if !strings.Contains(s, want) {
			t.Errorf("figure4 output missing %q", want)
		}
	}
}
