package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/adversarial"
	"repro/internal/algo/param"
	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/table"
)

// This file implements the adversarial instance search (experiment id
// "adversarial"). In the spirit of "PISA: An Adversarial Approach To
// Comparing Task Graph Scheduling Algorithms", an evolutionary loop
// (internal/adversarial) mutates generator-family parameters, seeds,
// and per-instance edge-weight perturbations to find task graphs on
// which the second algorithm of a chosen pair beats the first by the
// widest relative makespan margin — counterexamples to the average-case
// rankings the random suites (and the genx consensus) report. The
// search loop is serial and deterministic; every generation's
// population is evaluated through the experiment worker pool, so output
// is byte-identical for every worker count.

// adversarialProcs is the machine size of the search: 8 processors,
// matching the paper's APN hypercube and the components study.
const adversarialProcs = 8

// AlgorithmByName resolves one scheduler name for an adversarial pair:
// a canonical registry name ("MCP", "DSC", "BSA", ...), a
// class-qualified name ("APN/DLS" — plain "DLS" resolves to the BNP
// variant, which is listed first), or a parameterized combo name like
// "alap/eft/ins/st".
func AlgorithmByName(name string) (Algorithm, error) {
	if cls, rest, ok := strings.Cut(name, "/"); ok {
		switch c := Class(strings.ToUpper(cls)); c {
		case BNP, UNC, APN:
			for _, a := range ByClass(c) {
				if a.Name == rest {
					return a, nil
				}
			}
			return Algorithm{}, fmt.Errorf("core: class %s has no algorithm %q (have %v)",
				c, rest, Names(c))
		}
		if combo, err := param.ParseCombo(name); err == nil {
			return ParamAlgorithm(combo), nil
		}
	}
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return Algorithm{}, fmt.Errorf("core: unknown algorithm %q (valid: %s; or a combo like alap/eft/ins/st)",
		name, strings.Join(PairNames(), ", "))
}

// PairNames returns every algorithm name AlgorithmByName accepts,
// sorted — the canonical names of the 15 study algorithms plus the
// class-qualified forms of the duplicated DLS. (Parameterized combo
// names are accepted too but not enumerated; there are 60.)
func PairNames() []string {
	seen := map[string]bool{}
	var names []string
	for _, a := range All() {
		if !seen[a.Name] {
			seen[a.Name] = true
			names = append(names, a.Name)
		}
	}
	names = append(names, "BNP/DLS", "APN/DLS")
	sort.Strings(names)
	return names
}

// ParseAlgorithmPair parses and validates an "A:B" algorithm pair,
// returning the two validated names. Unknown names fail fast with the
// sorted list of valid ones.
func ParseAlgorithmPair(s string) (algA, algB string, err error) {
	a, b, ok := strings.Cut(s, ":")
	if !ok || a == "" || b == "" {
		return "", "", fmt.Errorf("core: algorithm pair must be \"A:B\" (e.g. \"MCP:LAST\"), got %q", s)
	}
	if _, err := AlgorithmByName(a); err != nil {
		return "", "", err
	}
	if _, err := AlgorithmByName(b); err != nil {
		return "", "", err
	}
	return a, b, nil
}

// AdversarialSearch runs the evolutionary search for instances on which
// algB beats algA, evaluating every generation's population through
// cfg's worker pool. The trajectory is deterministic in (opts, pair)
// for every worker count.
func AdversarialSearch(cfg Config, opts adversarial.Options, algA, algB string) (*adversarial.Report, error) {
	a, err := AlgorithmByName(algA)
	if err != nil {
		return nil, err
	}
	b, err := AlgorithmByName(algB)
	if err != nil {
		return nil, err
	}
	topo := apnTopology()
	// Under the fault-gap objective a candidate's two lengths are
	// fault-effective makespans (FaultEffective); otherwise they are the
	// static makespans the paper compares.
	faulty := opts.Objective != nil && opts.Objective.Name() == adversarial.FaultObjective{}.Name()
	measure := func(alg Algorithm, g *dag.Graph) (int64, error) {
		if faulty {
			return FaultEffective(alg, g, adversarialProcs, topo)
		}
		res, err := alg.Run(g, adversarialProcs, topo)
		return res.Length, err
	}
	eval := func(graphs []*dag.Graph) ([][2]int64, error) {
		var p plan[int64]
		for _, g := range graphs {
			for _, alg := range []Algorithm{a, b} {
				p.add(func() (int64, error) {
					length, err := measure(alg, g)
					if err != nil {
						return 0, fmt.Errorf("adversarial: %s on a %d-node candidate: %w",
							alg.Name, g.NumNodes(), err)
					}
					return length, nil
				})
			}
		}
		results, err := p.run(cfg)
		if err != nil {
			return nil, err
		}
		out := make([][2]int64, len(graphs))
		cur := cursor[int64]{rs: results}
		for i := range graphs {
			out[i] = [2]int64{cur.next(), cur.next()}
		}
		return out, nil
	}
	rep, err := adversarial.Search(opts, eval)
	if err != nil {
		return nil, err
	}
	rep.AlgA, rep.AlgB = algA, algB
	return rep, nil
}

// adversarialOptions returns the search budget for a scale.
func adversarialOptions(cfg Config) adversarial.Options {
	opts := adversarial.Defaults(cfg.Seed)
	if cfg.Scale == Full {
		opts.Generations = 20
		opts.Population = 40
		opts.Elite = 6
		opts.TopK = 8
		opts.MaxNodes = 120
	}
	return opts
}

// Adversarial runs the adversarial instance search as an experiment:
// the per-generation trace, the top counterexamples found, and — when
// Config.AdversarialArchive names a directory — the archived .tg
// fixtures.
func Adversarial(cfg Config) error {
	pair := cfg.AdversarialPair
	if pair == "" {
		pair = "MCP:LAST"
	}
	algA, algB, err := ParseAlgorithmPair(pair)
	if err != nil {
		return err
	}
	opts := adversarialOptions(cfg)
	if cfg.AdversarialFaults {
		opts.Objective = adversarial.FaultObjective{}
	}
	rep, err := AdversarialSearch(cfg, opts, algA, algB)
	if err != nil {
		return err
	}

	fmt.Fprintf(cfg.Out, "searching instances where %s beats %s (objective %s, %d procs, %d generations x %d candidates)\n",
		algB, algA, rep.Objective, adversarialProcs, opts.Generations, opts.Population)

	tr := table.New("Search trace", "gen", "best "+rep.Objective, "mean", "invalid", "best candidate")
	for _, s := range rep.Trace {
		tr.AddRow(fmt.Sprint(s.Gen), fmt.Sprintf("%.4f", s.Best), fmt.Sprintf("%.4f", s.Mean),
			fmt.Sprint(s.Invalid), s.BestKey)
	}
	if err := tr.Render(cfg.Out); err != nil {
		return err
	}

	tt := table.New(fmt.Sprintf("Top counterexamples (positive gap: %s shorter than %s)", algB, algA),
		"rank", "family", "v", "params", "seed", "perturb", algA, algB, "gap")
	for i, f := range rep.Top {
		v := "?"
		if f.Graph != nil {
			v = fmt.Sprint(f.Graph.NumNodes())
		}
		tt.AddRow(fmt.Sprint(i+1), f.Family, v, gen.CanonicalParams(f.Params),
			fmt.Sprint(f.Seed), fmt.Sprintf("%.3f", f.Perturb),
			fmt.Sprint(f.LenA), fmt.Sprint(f.LenB), fmt.Sprintf("%.4f", f.Score))
	}
	if err := tt.Render(cfg.Out); err != nil {
		return err
	}

	if len(rep.Top) > 0 && rep.Top[0].Score > 0 {
		fmt.Fprintf(cfg.Out, "found %d distinct instances; best: %s beats %s by %.1f%% (%d vs %d)\n",
			len(rep.Top), algB, algA, 100*rep.Top[0].Score, rep.Top[0].LenB, rep.Top[0].LenA)
	} else {
		fmt.Fprintf(cfg.Out, "no instance found on which %s beats %s\n", algB, algA)
	}

	if cfg.AdversarialArchive != "" {
		paths, err := adversarial.Archive(cfg.AdversarialArchive, rep, adversarialProcs, opts.TopK)
		if err != nil {
			return err
		}
		for _, p := range paths {
			fmt.Fprintf(cfg.Out, "archived %s\n", p)
		}
	}
	return nil
}
