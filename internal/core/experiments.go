package core

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/machine"
	"repro/internal/optimal"
	"repro/internal/table"
)

// Scale selects how much of each paper workload an experiment runs.
type Scale int

// Quick runs reduced instance counts sized for CI and benchmarks; Full
// reproduces the paper's instance counts (minutes of CPU).
const (
	Quick Scale = iota
	Full
)

// Config parameterizes an experiment run.
type Config struct {
	Seed  int64
	Scale Scale
	Out   io.Writer
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) error
}

// Experiments returns every table and figure of the paper's evaluation
// section, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table 1: schedule lengths of the UNC and BNP algorithms on the PSGs", Table1},
		{"table2", "Table 2: % degradation from optimal on RGBOS (UNC algorithms)", Table2},
		{"table3", "Table 3: % degradation from optimal on RGBOS (BNP algorithms)", Table3},
		{"table4", "Table 4: % degradation from optimal on RGPOS (UNC algorithms)", Table4},
		{"table5", "Table 5: % degradation from optimal on RGPOS (BNP algorithms)", Table5},
		{"table6", "Table 6: average running times on RGNOS (all 15 algorithms)", Table6},
		{"fig2", "Figure 2: average NSL vs graph size on RGNOS (UNC, BNP, APN)", Figure2},
		{"fig3", "Figure 3: average processors used vs graph size on RGNOS (UNC, BNP)", Figure3},
		{"fig4", "Figure 4: average NSL on Cholesky traced graphs (UNC, BNP, APN)", Figure4},
		{"unccs", "Extension (paper section 7): BNP vs UNC + cluster scheduling", UNCCS},
		{"tdb", "Extension (paper section 4): task duplication (DSH) vs non-duplication", TDB},
	}
}

// RunExperiment runs one experiment by ID.
func RunExperiment(id string, cfg Config) error {
	for _, e := range Experiments() {
		if e.ID == id {
			fmt.Fprintf(cfg.Out, "== %s ==\n", e.Title)
			return e.Run(cfg)
		}
	}
	return fmt.Errorf("core: unknown experiment %q", id)
}

// apnTopology is the network used by all APN experiments: an
// 8-processor hypercube ("a 500-node task graph is scheduled to 8
// processors", paper section 6.4).
func apnTopology() *machine.Topology { return machine.Hypercube(3) }

// rgnosSizes returns the RGNOS graph sizes for a scale.
func rgnosSizes(s Scale) []int {
	if s == Full {
		return []int{50, 100, 150, 200, 250, 300, 350, 400, 450, 500}
	}
	return []int{50, 100, 150}
}

func rgnosCCRs(s Scale) []float64 {
	if s == Full {
		return gen.RGNOSCCRs
	}
	return []float64{0.1, 1.0, 10.0}
}

func rgnosParallelism(s Scale) []int {
	if s == Full {
		return []int{1, 2, 3, 4, 5}
	}
	return []int{1, 3, 5}
}

// rgbosMaxNodes bounds the RGBOS sizes so the branch-and-bound closes:
// the paper's full range reaches 32 nodes.
func rgbosMaxNodes(s Scale) int {
	if s == Full {
		return 32
	}
	return 18
}

func rgposSizes(s Scale) (min, max, step int) {
	if s == Full {
		return 50, 500, 50
	}
	return 50, 150, 50
}

func choleskyDims(s Scale) []int {
	if s == Full {
		return []int{8, 16, 24, 32, 40}
	}
	return []int{6, 10, 14}
}

// Table1 reports the schedule length of every UNC and BNP algorithm on
// each peer set graph. APN algorithms are excluded, as in the paper
// ("many network topologies are possible as test cases", section 6.1).
func Table1(cfg Config) error {
	algs := append(ByClass(UNC), ByClass(BNP)...)
	cols := []string{"graph", "v", "CCR"}
	for _, a := range algs {
		cols = append(cols, a.Name)
	}
	t := table.New("Schedule lengths on the Peer Set Graphs", cols...)
	for _, ng := range gen.PeerSet() {
		row := []string{ng.Name, fmt.Sprint(ng.G.NumNodes()), fmt.Sprintf("%.2f", ng.G.CCR())}
		for _, a := range algs {
			res, err := a.Run(ng.G, BNPProcs(ng.G.NumNodes()), nil)
			if err != nil {
				return fmt.Errorf("table1: %s on %s: %w", a.Name, ng.Name, err)
			}
			row = append(row, fmt.Sprint(res.Length))
		}
		t.AddRow(row...)
	}
	return t.Render(cfg.Out)
}

// degradationTable is the shared body of Tables 2-5: percentage
// degradation of each algorithm from the per-instance optimum, one row
// per graph, grouped by CCR, with per-CCR "number optimal" and "average
// degradation" summary rows.
type degradationInstance struct {
	label   string
	g       *dag.Graph
	optimal int64
	closed  bool
}

func degradationTable(cfg Config, title string, algs []Algorithm, bnpProcsFor func(*dag.Graph) int,
	suites map[float64][]degradationInstance, ccrs []float64) error {

	cols := []string{"CCR", "graph", "optimal"}
	for _, a := range algs {
		cols = append(cols, a.Name)
	}
	t := table.New(title, cols...)
	for _, ccr := range ccrs {
		numOpt := make([]int, len(algs))
		sumDeg := make([]float64, len(algs))
		counted := 0
		for _, inst := range suites[ccr] {
			optLabel := fmt.Sprint(inst.optimal)
			if !inst.closed {
				optLabel += "*" // best known, not proven
			}
			row := []string{fmt.Sprintf("%g", ccr), inst.label, optLabel}
			if inst.closed {
				counted++
			}
			for i, a := range algs {
				res, err := a.Run(inst.g, bnpProcsFor(inst.g), nil)
				if err != nil {
					return fmt.Errorf("%s on %s: %w", a.Name, inst.label, err)
				}
				deg := 100 * float64(res.Length-inst.optimal) / float64(inst.optimal)
				row = append(row, fmt.Sprintf("%.1f", deg))
				if inst.closed {
					if res.Length == inst.optimal {
						numOpt[i]++
					}
					sumDeg[i] += deg
				}
			}
			t.AddRow(row...)
		}
		// Summary rows for this CCR (closed instances only).
		optRow := []string{fmt.Sprintf("%g", ccr), "no. of optimal", fmt.Sprint(counted)}
		avgRow := []string{fmt.Sprintf("%g", ccr), "avg degradation", ""}
		for i := range algs {
			optRow = append(optRow, fmt.Sprint(numOpt[i]))
			if counted > 0 {
				avgRow = append(avgRow, fmt.Sprintf("%.1f", sumDeg[i]/float64(counted)))
			} else {
				avgRow = append(avgRow, "-")
			}
		}
		t.AddRow(optRow...)
		t.AddRow(avgRow...)
		t.AddSeparator()
	}
	return t.Render(cfg.Out)
}

// rgbosInstances generates the RGBOS suite and attaches branch-and-bound
// optima (the role the paper's parallel A* played).
func rgbosInstances(cfg Config) (map[float64][]degradationInstance, error) {
	out := map[float64][]degradationInstance{}
	for _, ccr := range gen.PaperCCRs {
		rc := gen.DefaultRGBOSConfig(ccr, cfg.Seed)
		rc.MaxNodes = rgbosMaxNodes(cfg.Scale)
		for _, ng := range gen.RGBOS(rc) {
			res, err := optimal.Schedule(ng.G, ng.G.NumNodes(), optimal.Options{})
			if err != nil {
				return nil, err
			}
			out[ccr] = append(out[ccr], degradationInstance{
				label:   fmt.Sprintf("v=%d", ng.G.NumNodes()),
				g:       ng.G,
				optimal: res.Length,
				closed:  res.Closed,
			})
		}
	}
	return out, nil
}

// Table2 compares the UNC algorithms against branch-and-bound optima on
// the RGBOS suite.
func Table2(cfg Config) error {
	suites, err := rgbosInstances(cfg)
	if err != nil {
		return err
	}
	return degradationTable(cfg, "% degradation from optimal, RGBOS (UNC algorithms)",
		ByClass(UNC), func(g *dag.Graph) int { return BNPProcs(g.NumNodes()) },
		suites, gen.PaperCCRs)
}

// Table3 compares the BNP algorithms against the same optima.
func Table3(cfg Config) error {
	suites, err := rgbosInstances(cfg)
	if err != nil {
		return err
	}
	return degradationTable(cfg, "% degradation from optimal, RGBOS (BNP algorithms)",
		ByClass(BNP), func(g *dag.Graph) int { return BNPProcs(g.NumNodes()) },
		suites, gen.PaperCCRs)
}

// rgposInstances generates the RGPOS suite; optima are by construction.
func rgposInstances(cfg Config) map[float64][]degradationInstance {
	out := map[float64][]degradationInstance{}
	lo, hi, step := rgposSizes(cfg.Scale)
	for _, ccr := range gen.PaperCCRs {
		rc := gen.DefaultRGPOSConfig(ccr, cfg.Seed)
		rc.MinNodes, rc.MaxNodes, rc.Step = lo, hi, step
		for _, inst := range gen.RGPOS(rc) {
			out[ccr] = append(out[ccr], degradationInstance{
				label:   fmt.Sprintf("v=%d", inst.G.NumNodes()),
				g:       inst.G,
				optimal: inst.OptimalLength,
				closed:  true,
			})
		}
	}
	return out
}

// Table4 compares the UNC algorithms against the pre-determined optima
// of the RGPOS suite.
func Table4(cfg Config) error {
	return degradationTable(cfg, "% degradation from optimal, RGPOS (UNC algorithms)",
		ByClass(UNC), func(g *dag.Graph) int { return BNPProcs(g.NumNodes()) },
		rgposInstances(cfg), gen.PaperCCRs)
}

// Table5 compares the BNP algorithms on RGPOS. The BNP processor count
// matches the 8 processors the optimal schedules were constructed for,
// so the optimum is a true lower bound.
func Table5(cfg Config) error {
	return degradationTable(cfg, "% degradation from optimal, RGPOS (BNP algorithms)",
		ByClass(BNP), func(*dag.Graph) int { return 8 },
		rgposInstances(cfg), gen.PaperCCRs)
}

// rgnosSuite generates the RGNOS graphs grouped by size.
func rgnosSuite(cfg Config) map[int][]gen.NamedGraph {
	rc := gen.RGNOSConfig{
		MinNodes:    50,
		MaxNodes:    500,
		Step:        50,
		CCRs:        rgnosCCRs(cfg.Scale),
		Parallelism: rgnosParallelism(cfg.Scale),
		Seed:        cfg.Seed,
	}
	sizes := rgnosSizes(cfg.Scale)
	rc.MaxNodes = sizes[len(sizes)-1]
	bySize := map[int][]gen.NamedGraph{}
	for _, ng := range gen.RGNOS(rc) {
		bySize[ng.G.NumNodes()] = append(bySize[ng.G.NumNodes()], ng)
	}
	return bySize
}

// Table6 reports average scheduling running times (seconds) per graph
// size for all 15 algorithms, as the paper does for its RGNOS suite.
func Table6(cfg Config) error {
	bySize := rgnosSuite(cfg)
	sizes := rgnosSizes(cfg.Scale)
	algs := All()
	cols := []string{"v"}
	for _, a := range algs {
		cols = append(cols, fmt.Sprintf("%s(%s)", a.Name, a.Class))
	}
	t := table.New("Average running times (seconds) on RGNOS", cols...)
	topo := apnTopology()
	for _, v := range sizes {
		row := []string{fmt.Sprint(v)}
		for _, a := range algs {
			var total time.Duration
			for _, ng := range bySize[v] {
				res, err := a.Run(ng.G, BNPProcs(v), topo)
				if err != nil {
					return fmt.Errorf("table6: %s on %s: %w", a.Name, ng.Name, err)
				}
				total += res.Elapsed
			}
			avg := total / time.Duration(len(bySize[v]))
			row = append(row, fmt.Sprintf("%.4f", avg.Seconds()))
		}
		t.AddRow(row...)
	}
	return t.Render(cfg.Out)
}

// classNSLSeries renders one sub-figure: average NSL per graph size for
// the algorithms of one class.
func classNSLSeries(cfg Config, sub string, class Class, bySize map[int][]gen.NamedGraph, sizes []int) error {
	algs := ByClass(class)
	xs := make([]string, len(sizes))
	for i, v := range sizes {
		xs[i] = fmt.Sprint(v)
	}
	s := table.NewSeries(fmt.Sprintf("(%s) average NSL, %s algorithms", sub, class), "v", xs...)
	topo := apnTopology()
	for i, v := range sizes {
		for _, a := range algs {
			var total float64
			for _, ng := range bySize[v] {
				res, err := a.Run(ng.G, BNPProcs(v), topo)
				if err != nil {
					return fmt.Errorf("fig: %s on %s: %w", a.Name, ng.Name, err)
				}
				total += res.NSL
			}
			s.Set(a.Name, i, total/float64(len(bySize[v])))
		}
	}
	return s.Render(cfg.Out)
}

// Figure2 reproduces the average-NSL-vs-size curves for the UNC (a),
// BNP (b) and APN (c) classes on the RGNOS suite.
func Figure2(cfg Config) error {
	bySize := rgnosSuite(cfg)
	sizes := rgnosSizes(cfg.Scale)
	for _, part := range []struct {
		sub   string
		class Class
	}{{"a", UNC}, {"b", BNP}, {"c", APN}} {
		if err := classNSLSeries(cfg, part.sub, part.class, bySize, sizes); err != nil {
			return err
		}
	}
	return nil
}

// Figure3 reproduces the average-processors-used curves for the UNC (a)
// and BNP (b) classes on the RGNOS suite.
func Figure3(cfg Config) error {
	bySize := rgnosSuite(cfg)
	sizes := rgnosSizes(cfg.Scale)
	xs := make([]string, len(sizes))
	for i, v := range sizes {
		xs[i] = fmt.Sprint(v)
	}
	for _, part := range []struct {
		sub   string
		class Class
	}{{"a", UNC}, {"b", BNP}} {
		s := table.NewSeries(fmt.Sprintf("(%s) average processors used, %s algorithms", part.sub, part.class), "v", xs...)
		for i, v := range sizes {
			for _, a := range ByClass(part.class) {
				var total int
				for _, ng := range bySize[v] {
					res, err := a.Run(ng.G, BNPProcs(v), nil)
					if err != nil {
						return fmt.Errorf("fig3: %s on %s: %w", a.Name, ng.Name, err)
					}
					total += res.Procs
				}
				s.Set(a.Name, i, float64(total)/float64(len(bySize[v])))
			}
		}
		if err := s.Render(cfg.Out); err != nil {
			return err
		}
	}
	return nil
}

// Figure4 reproduces the average-NSL curves on the Cholesky traced
// graphs for the UNC (a), BNP (b) and APN (c) classes.
func Figure4(cfg Config) error {
	dims := choleskyDims(cfg.Scale)
	xs := make([]string, len(dims))
	graphs := make([]*dag.Graph, len(dims))
	for i, n := range dims {
		g, err := gen.Cholesky(n, 1.0)
		if err != nil {
			return err
		}
		graphs[i] = g
		xs[i] = fmt.Sprint(n)
	}
	topo := apnTopology()
	for _, part := range []struct {
		sub   string
		class Class
	}{{"a", UNC}, {"b", BNP}, {"c", APN}} {
		s := table.NewSeries(fmt.Sprintf("(%s) average NSL on Cholesky graphs, %s algorithms", part.sub, part.class), "N", xs...)
		for i, g := range graphs {
			for _, a := range ByClass(part.class) {
				res, err := a.Run(g, BNPProcs(g.NumNodes()), topo)
				if err != nil {
					return fmt.Errorf("fig4: %s on cholesky-%s: %w", a.Name, xs[i], err)
				}
				s.Set(a.Name, i, res.NSL)
			}
		}
		if err := s.Render(cfg.Out); err != nil {
			return err
		}
	}
	return nil
}

// sortedSizes is a small helper for deterministic map iteration in tests.
func sortedSizes(m map[int][]gen.NamedGraph) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
