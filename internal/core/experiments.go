package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/table"
)

// Scale selects how much of each paper workload an experiment runs.
type Scale int

// Quick runs reduced instance counts sized for CI and benchmarks; Full
// reproduces the paper's instance counts (minutes of CPU).
const (
	Quick Scale = iota
	Full
)

// Config parameterizes an experiment run.
type Config struct {
	Seed  int64
	Scale Scale
	Out   io.Writer

	// Workers bounds the number of scheduling cells run concurrently;
	// <= 0 selects GOMAXPROCS. Output is byte-identical for every
	// worker count, except Table 6's measured timing cells, which vary
	// run to run like any wall-clock measurement.
	Workers int

	// Cache shares generated suites and RGBOS optima across experiment
	// runs with the same (seed, scale); nil selects a process-wide
	// cache.
	Cache *SuiteCache

	// AdversarialPair selects the algorithm pair "A:B" the adversarial
	// experiment compares — the search hunts instances on which B beats
	// A. Empty selects "MCP:LAST". See AlgorithmByName for the accepted
	// name forms.
	AdversarialPair string

	// AdversarialArchive, when non-empty, is a directory the
	// adversarial experiment writes its top counterexample fixtures
	// into (.tg files with provenance headers).
	AdversarialArchive string

	// ScalingMeasure adds wall-clock timing, allocation, peak-RSS, and
	// fitted time-slope columns to the scaling experiment's output.
	// Measured mode forces a serial run (concurrent cells would contend
	// for cores and memory bandwidth, like Table 6's timing cells) and
	// its clock-derived columns vary run to run; with it off the
	// experiment's output is fully deterministic.
	ScalingMeasure bool

	// AdversarialFaults switches the adversarial experiment to the
	// fault-gap objective: candidates are scored on fault-effective
	// makespans measured under the canonical fault scenario (see
	// FaultEffective) instead of static makespans, hunting instances
	// whose schedules degrade ungracefully for one algorithm but not
	// the other.
	AdversarialFaults bool
}

// runner returns the worker pool for this run.
func (c Config) runner() *Runner { return NewRunner(c.Workers) }

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) error
}

// Experiments returns every table and figure of the paper's evaluation
// section, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table 1: schedule lengths of the UNC and BNP algorithms on the PSGs", Table1},
		{"table2", "Table 2: % degradation from optimal on RGBOS (UNC algorithms)", Table2},
		{"table3", "Table 3: % degradation from optimal on RGBOS (BNP algorithms)", Table3},
		{"table4", "Table 4: % degradation from optimal on RGPOS (UNC algorithms)", Table4},
		{"table5", "Table 5: % degradation from optimal on RGPOS (BNP algorithms)", Table5},
		{"table6", "Table 6: average running times on RGNOS (all 15 algorithms)", Table6},
		{"fig2", "Figure 2: average NSL vs graph size on RGNOS (UNC, BNP, APN)", Figure2},
		{"fig3", "Figure 3: average processors used vs graph size on RGNOS (UNC, BNP)", Figure3},
		{"fig4", "Figure 4: average NSL on Cholesky traced graphs (UNC, BNP, APN)", Figure4},
		{"unccs", "Extension (paper section 7): BNP vs UNC + cluster scheduling", UNCCS},
		{"tdb", "Extension (paper section 4): task duplication (DSH) vs non-duplication", TDB},
		{"genx", "Extension (Canon et al. 2019): cross-generator ranking stability of the BNP algorithms", GenX},
		{"robust", "Extension (Beránek et al.): Monte-Carlo execution robustness under perturbed durations and link contention", Robust},
		{"components", "Extension (Coleman et al. 2024): component attribution over the parameterized scheduler space, homogeneous and heterogeneous", Components},
		{"adversarial", "Extension (PISA): adversarial evolutionary search for instances where one algorithm beats another", Adversarial},
		{"faults", "Extension (fault injection): graceful degradation of static schedules under processor and link failures, with reactive recovery", Faults},
		{"scaling", "Extension (million-node scale): empirical complexity of generation, binary encoding, and scheduling up a 10^3..10^6 ladder", Scaling},
	}
}

// RunExperiment runs one experiment by ID.
func RunExperiment(id string, cfg Config) error {
	for _, e := range Experiments() {
		if e.ID == id {
			fmt.Fprintf(cfg.Out, "== %s ==\n", e.Title)
			return e.Run(cfg)
		}
	}
	return fmt.Errorf("core: unknown experiment %q", id)
}

// apnTopology is the network used by all APN experiments: an
// 8-processor hypercube ("a 500-node task graph is scheduled to 8
// processors", paper section 6.4).
func apnTopology() *machine.Topology { return machine.Hypercube(3) }

// rgnosSizes returns the RGNOS graph sizes for a scale.
func rgnosSizes(s Scale) []int {
	if s == Full {
		return []int{50, 100, 150, 200, 250, 300, 350, 400, 450, 500}
	}
	return []int{50, 100, 150}
}

func rgnosCCRs(s Scale) []float64 {
	if s == Full {
		return gen.RGNOSCCRs
	}
	return []float64{0.1, 1.0, 10.0}
}

func rgnosParallelism(s Scale) []int {
	if s == Full {
		return []int{1, 2, 3, 4, 5}
	}
	return []int{1, 3, 5}
}

// rgbosMaxNodes bounds the RGBOS sizes so the branch-and-bound closes:
// the paper's full range reaches 32 nodes.
func rgbosMaxNodes(s Scale) int {
	if s == Full {
		return 32
	}
	return 18
}

func rgposSizes(s Scale) (min, max, step int) {
	if s == Full {
		return 50, 500, 50
	}
	return 50, 150, 50
}

func choleskyDims(s Scale) []int {
	if s == Full {
		return []int{8, 16, 24, 32, 40}
	}
	return []int{6, 10, 14}
}

// runCell plans one measured scheduling run, wrapping errors with the
// experiment and instance context.
func runCell(p *plan[Result], exp string, a Algorithm, ng gen.NamedGraph, bnpProcs int, topo *machine.Topology) {
	runCellOn(p, exp, a, ng, bnpProcs, nil, topo)
}

// runCellOn is runCell with an optional per-processor speed vector
// (nil for the homogeneous machine).
func runCellOn(p *plan[Result], exp string, a Algorithm, ng gen.NamedGraph, bnpProcs int, speeds []float64, topo *machine.Topology) {
	p.add(func() (Result, error) {
		if t := obs.ActiveTracer(); t != nil {
			// The planner knows the experiment and instance names; RunOn
			// only sees the graph. Tracing implies a serial runner, so the
			// staged labels pair with the BeginRun that follows.
			t.SetInstance(exp, ng.Name)
		}
		res, err := a.RunOn(ng.G, bnpProcs, speeds, topo)
		if err != nil {
			return Result{}, fmt.Errorf("%s: %s on %s: %w", exp, a.Name, ng.Name, err)
		}
		return res, nil
	})
}

// Table1 reports the schedule length of every UNC and BNP algorithm on
// each peer set graph. APN algorithms are excluded, as in the paper
// ("many network topologies are possible as test cases", section 6.1).
func Table1(cfg Config) error {
	algs := append(ByClass(UNC), ByClass(BNP)...)
	graphs := gen.PeerSet()
	var p plan[Result]
	for _, ng := range graphs {
		for _, a := range algs {
			runCell(&p, "table1", a, ng, BNPProcs(ng.G.NumNodes()), nil)
		}
	}
	results, err := p.run(cfg)
	if err != nil {
		return err
	}
	cols := []string{"graph", "v", "CCR"}
	for _, a := range algs {
		cols = append(cols, a.Name)
	}
	t := table.New("Schedule lengths on the Peer Set Graphs", cols...)
	cur := cursor[Result]{rs: results}
	for _, ng := range graphs {
		row := []string{ng.Name, fmt.Sprint(ng.G.NumNodes()), fmt.Sprintf("%.2f", ng.G.CCR())}
		for range algs {
			row = append(row, fmt.Sprint(cur.next().Length))
		}
		t.AddRow(row...)
	}
	return t.Render(cfg.Out)
}

// degradationTable is the shared body of Tables 2-5: percentage
// degradation of each algorithm from the per-instance optimum, one row
// per graph, grouped by CCR, with per-CCR "number optimal" and "average
// degradation" summary rows.
type degradationInstance struct {
	label   string
	g       *dag.Graph
	optimal int64
	closed  bool
}

func degradationTable(cfg Config, title string, algs []Algorithm, bnpProcsFor func(*dag.Graph) int,
	suites map[float64][]degradationInstance, ccrs []float64) error {

	var p plan[Result]
	for _, ccr := range ccrs {
		for _, inst := range suites[ccr] {
			for _, a := range algs {
				p.add(func() (Result, error) {
					res, err := a.Run(inst.g, bnpProcsFor(inst.g), nil)
					if err != nil {
						return Result{}, fmt.Errorf("%s on %s: %w", a.Name, inst.label, err)
					}
					return res, nil
				})
			}
		}
	}
	results, err := p.run(cfg)
	if err != nil {
		return err
	}

	cols := []string{"CCR", "graph", "optimal"}
	for _, a := range algs {
		cols = append(cols, a.Name)
	}
	t := table.New(title, cols...)
	cur := cursor[Result]{rs: results}
	for _, ccr := range ccrs {
		numOpt := make([]int, len(algs))
		sumDeg := make([]float64, len(algs))
		counted := 0
		for _, inst := range suites[ccr] {
			optLabel := fmt.Sprint(inst.optimal)
			if !inst.closed {
				optLabel += "*" // best known, not proven
			}
			row := []string{fmt.Sprintf("%g", ccr), inst.label, optLabel}
			if inst.closed {
				counted++
			}
			for i := range algs {
				res := cur.next()
				deg := 100 * float64(res.Length-inst.optimal) / float64(inst.optimal)
				row = append(row, fmt.Sprintf("%.1f", deg))
				if inst.closed {
					if res.Length == inst.optimal {
						numOpt[i]++
					}
					sumDeg[i] += deg
				}
			}
			t.AddRow(row...)
		}
		// Summary rows for this CCR (closed instances only).
		optRow := []string{fmt.Sprintf("%g", ccr), "no. of optimal", fmt.Sprint(counted)}
		avgRow := []string{fmt.Sprintf("%g", ccr), "avg degradation", ""}
		for i := range algs {
			optRow = append(optRow, fmt.Sprint(numOpt[i]))
			if counted > 0 {
				avgRow = append(avgRow, fmt.Sprintf("%.1f", sumDeg[i]/float64(counted)))
			} else {
				avgRow = append(avgRow, "-")
			}
		}
		t.AddRow(optRow...)
		t.AddRow(avgRow...)
		t.AddSeparator()
	}
	return t.Render(cfg.Out)
}

// Table2 compares the UNC algorithms against branch-and-bound optima on
// the RGBOS suite.
func Table2(cfg Config) error {
	suites, err := suiteCacheFor(cfg).rgbosInstances(cfg)
	if err != nil {
		return err
	}
	return degradationTable(cfg, "% degradation from optimal, RGBOS (UNC algorithms)",
		ByClass(UNC), func(g *dag.Graph) int { return BNPProcs(g.NumNodes()) },
		suites, gen.PaperCCRs)
}

// Table3 compares the BNP algorithms against the same optima.
func Table3(cfg Config) error {
	suites, err := suiteCacheFor(cfg).rgbosInstances(cfg)
	if err != nil {
		return err
	}
	return degradationTable(cfg, "% degradation from optimal, RGBOS (BNP algorithms)",
		ByClass(BNP), func(g *dag.Graph) int { return BNPProcs(g.NumNodes()) },
		suites, gen.PaperCCRs)
}

// Table4 compares the UNC algorithms against the pre-determined optima
// of the RGPOS suite.
func Table4(cfg Config) error {
	return degradationTable(cfg, "% degradation from optimal, RGPOS (UNC algorithms)",
		ByClass(UNC), func(g *dag.Graph) int { return BNPProcs(g.NumNodes()) },
		suiteCacheFor(cfg).rgposInstances(cfg), gen.PaperCCRs)
}

// Table5 compares the BNP algorithms on RGPOS. The BNP processor count
// matches the 8 processors the optimal schedules were constructed for,
// so the optimum is a true lower bound.
func Table5(cfg Config) error {
	return degradationTable(cfg, "% degradation from optimal, RGPOS (BNP algorithms)",
		ByClass(BNP), func(*dag.Graph) int { return 8 },
		suiteCacheFor(cfg).rgposInstances(cfg), gen.PaperCCRs)
}

// Table6 reports average scheduling running times (seconds) per graph
// size for all 15 algorithms, as the paper does for its RGNOS suite.
// Each cell's Elapsed is measured inside Algorithm.Run, i.e. inside the
// worker goroutine executing that cell, so a timing never spans other
// cells' work. Concurrent cells still contend for cores and memory
// bandwidth, so for timings comparable to the paper's serial
// measurements run this table with Workers=1.
func Table6(cfg Config) error {
	bySize := suiteCacheFor(cfg).rgnosSuite(cfg)
	sizes := rgnosSizes(cfg.Scale)
	algs := All()
	topo := apnTopology()
	var p plan[Result]
	for _, v := range sizes {
		for _, a := range algs {
			for _, ng := range bySize[v] {
				runCell(&p, "table6", a, ng, BNPProcs(v), topo)
			}
		}
	}
	results, err := p.run(cfg)
	if err != nil {
		return err
	}
	cols := []string{"v"}
	for _, a := range algs {
		cols = append(cols, fmt.Sprintf("%s(%s)", a.Name, a.Class))
	}
	t := table.New("Average running times (seconds) on RGNOS", cols...)
	cur := cursor[Result]{rs: results}
	for _, v := range sizes {
		row := []string{fmt.Sprint(v)}
		for range algs {
			var total time.Duration
			for range bySize[v] {
				total += cur.next().Elapsed
			}
			if n := len(bySize[v]); n > 0 {
				row = append(row, fmt.Sprintf("%.4f", (total/time.Duration(n)).Seconds()))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t.Render(cfg.Out)
}

// Figure2 reproduces the average-NSL-vs-size curves for the UNC (a),
// BNP (b) and APN (c) classes on the RGNOS suite. All three
// sub-figures are planned as one cell batch so the pool never drains
// between panels.
func Figure2(cfg Config) error {
	bySize := suiteCacheFor(cfg).rgnosSuite(cfg)
	sizes := rgnosSizes(cfg.Scale)
	topo := apnTopology()
	parts := []struct {
		sub   string
		class Class
	}{{"a", UNC}, {"b", BNP}, {"c", APN}}
	var p plan[Result]
	for _, part := range parts {
		for _, v := range sizes {
			for _, a := range ByClass(part.class) {
				for _, ng := range bySize[v] {
					runCell(&p, "fig2", a, ng, BNPProcs(v), topo)
				}
			}
		}
	}
	results, err := p.run(cfg)
	if err != nil {
		return err
	}
	xs := make([]string, len(sizes))
	for i, v := range sizes {
		xs[i] = fmt.Sprint(v)
	}
	cur := cursor[Result]{rs: results}
	for _, part := range parts {
		s := table.NewSeries(fmt.Sprintf("(%s) average NSL, %s algorithms", part.sub, part.class), "v", xs...)
		for i, v := range sizes {
			for _, a := range ByClass(part.class) {
				var total float64
				for range bySize[v] {
					total += cur.next().NSL
				}
				if n := len(bySize[v]); n > 0 {
					s.Set(a.Name, i, total/float64(n))
				} else {
					s.Set(a.Name, i, 0)
				}
			}
		}
		if err := s.Render(cfg.Out); err != nil {
			return err
		}
	}
	return nil
}

// Figure3 reproduces the average-processors-used curves for the UNC (a)
// and BNP (b) classes on the RGNOS suite.
func Figure3(cfg Config) error {
	bySize := suiteCacheFor(cfg).rgnosSuite(cfg)
	sizes := rgnosSizes(cfg.Scale)
	parts := []struct {
		sub   string
		class Class
	}{{"a", UNC}, {"b", BNP}}
	var p plan[Result]
	for _, part := range parts {
		for _, v := range sizes {
			for _, a := range ByClass(part.class) {
				for _, ng := range bySize[v] {
					runCell(&p, "fig3", a, ng, BNPProcs(v), nil)
				}
			}
		}
	}
	results, err := p.run(cfg)
	if err != nil {
		return err
	}
	xs := make([]string, len(sizes))
	for i, v := range sizes {
		xs[i] = fmt.Sprint(v)
	}
	cur := cursor[Result]{rs: results}
	for _, part := range parts {
		s := table.NewSeries(fmt.Sprintf("(%s) average processors used, %s algorithms", part.sub, part.class), "v", xs...)
		for i, v := range sizes {
			for _, a := range ByClass(part.class) {
				var total int
				for range bySize[v] {
					total += cur.next().Procs
				}
				if n := len(bySize[v]); n > 0 {
					s.Set(a.Name, i, float64(total)/float64(n))
				} else {
					s.Set(a.Name, i, 0)
				}
			}
		}
		if err := s.Render(cfg.Out); err != nil {
			return err
		}
	}
	return nil
}

// Figure4 reproduces the average-NSL curves on the Cholesky traced
// graphs for the UNC (a), BNP (b) and APN (c) classes.
func Figure4(cfg Config) error {
	dims := choleskyDims(cfg.Scale)
	xs := make([]string, len(dims))
	graphs := make([]gen.NamedGraph, len(dims))
	for i, n := range dims {
		g, err := gen.Cholesky(n, 1.0)
		if err != nil {
			return err
		}
		xs[i] = fmt.Sprint(n)
		graphs[i] = gen.NamedGraph{Name: "cholesky-" + xs[i], G: g}
	}
	topo := apnTopology()
	parts := []struct {
		sub   string
		class Class
	}{{"a", UNC}, {"b", BNP}, {"c", APN}}
	var p plan[Result]
	for _, part := range parts {
		for _, ng := range graphs {
			for _, a := range ByClass(part.class) {
				runCell(&p, "fig4", a, ng, BNPProcs(ng.G.NumNodes()), topo)
			}
		}
	}
	results, err := p.run(cfg)
	if err != nil {
		return err
	}
	cur := cursor[Result]{rs: results}
	for _, part := range parts {
		s := table.NewSeries(fmt.Sprintf("(%s) average NSL on Cholesky graphs, %s algorithms", part.sub, part.class), "N", xs...)
		for i := range graphs {
			for _, a := range ByClass(part.class) {
				s.Set(a.Name, i, cur.next().NSL)
			}
		}
		if err := s.Render(cfg.Out); err != nil {
			return err
		}
	}
	return nil
}
