package core

import (
	"fmt"
	"math/rand"

	"repro/internal/algo/bnp"
	"repro/internal/algo/tdb"
	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/table"
)

// tdbRun is the measurement of one generated workload graph.
type tdbRun struct {
	hlfet, mcp, dsh float64 // NSL per scheduler
	copies          int     // extra task copies DSH placed
}

// TDB runs the duplication extension study: the paper's taxonomy
// (section 4) explains that TDB algorithms "reduce the communication
// overhead by redundantly allocating some nodes to multiple processors"
// but leaves them out of the 15-algorithm comparison. This experiment
// quantifies the claim by pitting DSH (duplication) against its
// non-duplicating base HLFET and the best BNP algorithm MCP across the
// CCR range on out-tree-rich workloads, where duplication matters most.
func TDB(cfg Config) error {
	reps := 3
	if cfg.Scale == Full {
		reps = 10
	}
	ccrs := []float64{0.1, 1.0, 10.0}
	workloads := []string{"out-tree", "fork-join"}

	// Generate every graph serially first — the rng is one sequential
	// stream — then fan the scheduling runs out as cells.
	rng := rand.New(rand.NewSource(cfg.Seed))
	var p plan[tdbRun]
	for _, ccr := range ccrs {
		for _, name := range workloads {
			for r := 0; r < reps; r++ {
				var (
					g   *dag.Graph
					err error
				)
				switch name {
				case "out-tree":
					g, err = gen.OutTree(rng, 4, 3, ccr)
				case "fork-join":
					g, err = gen.ForkJoin(rng, 3, 6, ccr)
				}
				if err != nil {
					return fmt.Errorf("tdb: %w", err)
				}
				p.add(func() (tdbRun, error) {
					h, err := bnp.HLFET(g, 8)
					if err != nil {
						return tdbRun{}, fmt.Errorf("tdb: %w", err)
					}
					defer h.Release()
					m, err := bnp.MCP(g, 8)
					if err != nil {
						return tdbRun{}, fmt.Errorf("tdb: %w", err)
					}
					defer m.Release()
					d, err := tdb.DSH(g, 8)
					if err != nil {
						return tdbRun{}, fmt.Errorf("tdb: %w", err)
					}
					run := tdbRun{hlfet: h.NSL(), mcp: m.NSL(), dsh: d.NSL()}
					for v := 0; v < g.NumNodes(); v++ {
						run.copies += len(d.Copies(dag.NodeID(v))) - 1
					}
					return run, nil
				})
			}
		}
	}
	results, err := p.run(cfg)
	if err != nil {
		return err
	}

	t := table.New("Task duplication (DSH) vs non-duplication (HLFET, MCP): average NSL on 8 processors",
		"CCR", "workload", "HLFET", "MCP", "DSH", "dup copies")
	cur := cursor[tdbRun]{rs: results}
	for _, ccr := range ccrs {
		for _, name := range workloads {
			var hl, mcp, dsh float64
			copies := 0
			for r := 0; r < reps; r++ {
				run := cur.next()
				hl += run.hlfet
				mcp += run.mcp
				dsh += run.dsh
				copies += run.copies
			}
			t.AddRow(fmt.Sprintf("%g", ccr), name,
				fmt.Sprintf("%.3f", hl/float64(reps)),
				fmt.Sprintf("%.3f", mcp/float64(reps)),
				fmt.Sprintf("%.3f", dsh/float64(reps)),
				fmt.Sprint(copies/reps))
		}
	}
	return t.Render(cfg.Out)
}
