package core

import (
	"fmt"
	"math/rand"

	"repro/internal/algo/bnp"
	"repro/internal/algo/tdb"
	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/table"
)

// TDB runs the duplication extension study: the paper's taxonomy
// (section 4) explains that TDB algorithms "reduce the communication
// overhead by redundantly allocating some nodes to multiple processors"
// but leaves them out of the 15-algorithm comparison. This experiment
// quantifies the claim by pitting DSH (duplication) against its
// non-duplicating base HLFET and the best BNP algorithm MCP across the
// CCR range on out-tree-rich workloads, where duplication matters most.
func TDB(cfg Config) error {
	t := table.New("Task duplication (DSH) vs non-duplication (HLFET, MCP): average NSL on 8 processors",
		"CCR", "workload", "HLFET", "MCP", "DSH", "dup copies")
	rng := rand.New(rand.NewSource(cfg.Seed))
	reps := 3
	if cfg.Scale == Full {
		reps = 10
	}
	for _, ccr := range []float64{0.1, 1.0, 10.0} {
		workloads := map[string]func() *dag.Graph{
			"out-tree": func() *dag.Graph {
				g, err := gen.OutTree(rng, 4, 3, ccr)
				if err != nil {
					panic(err)
				}
				return g
			},
			"fork-join": func() *dag.Graph {
				g, err := gen.ForkJoin(rng, 3, 6, ccr)
				if err != nil {
					panic(err)
				}
				return g
			},
		}
		for _, name := range []string{"out-tree", "fork-join"} {
			makeGraph := workloads[name]
			var hl, mcp, dsh float64
			copies := 0
			for r := 0; r < reps; r++ {
				g := makeGraph()
				h, err := bnp.HLFET(g, 8)
				if err != nil {
					return fmt.Errorf("tdb: %w", err)
				}
				m, err := bnp.MCP(g, 8)
				if err != nil {
					return fmt.Errorf("tdb: %w", err)
				}
				d, err := tdb.DSH(g, 8)
				if err != nil {
					return fmt.Errorf("tdb: %w", err)
				}
				hl += h.NSL()
				mcp += m.NSL()
				dsh += d.NSL()
				for v := 0; v < g.NumNodes(); v++ {
					copies += len(d.Copies(dag.NodeID(v))) - 1
				}
			}
			t.AddRow(fmt.Sprintf("%g", ccr), name,
				fmt.Sprintf("%.3f", hl/float64(reps)),
				fmt.Sprintf("%.3f", mcp/float64(reps)),
				fmt.Sprintf("%.3f", dsh/float64(reps)),
				fmt.Sprint(copies/reps))
		}
	}
	return t.Render(cfg.Out)
}
