package core

import (
	"strings"
	"testing"
)

// TestRobustDeterministicAcrossWorkers pins the acceptance criterion
// of the robustness study: for a fixed seed the output is
// byte-identical at every worker count — the Monte-Carlo draws are
// counter-based, so neither cell scheduling order nor concurrency can
// leak into the bytes.
func TestRobustDeterministicAcrossWorkers(t *testing.T) {
	cache := NewSuiteCache()
	base := runForOutput(t, "robust", 1, cache)
	if !strings.Contains(base, "Kendall-tau") || !strings.Contains(base, "timetable") {
		t.Fatalf("robust output missing expected sections:\n%s", base)
	}
	for _, workers := range []int{4, 8} {
		if got := runForOutput(t, "robust", workers, cache); got != base {
			t.Errorf("robust output with %d workers differs from serial:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
				workers, base, workers, got)
		}
	}
}

// TestRobustSuiteCoversRegistry checks the study really runs every
// registered generator family: each family name must appear as a row.
func TestRobustSuiteCoversRegistry(t *testing.T) {
	fams, err := NewSuiteCache().robustSuite(Config{Seed: 3, Scale: Quick})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, f := range fams {
		if len(f.graphs) == 0 {
			t.Errorf("family %s contributed no instances", f.name)
		}
		names[f.name] = true
	}
	for _, want := range []string{"rgbos", "rgnos", "rgpos", "psg", "cholesky", "gauss", "fft", "lu", "layered", "erdos", "faninout"} {
		if !names[want] {
			t.Errorf("registered family %s missing from the robust suite", want)
		}
	}
}
