package core

import (
	"testing"

	"repro/internal/obs"
)

// counterValue reads one registered counter's current count.
func counterValue(t *testing.T, name string) int64 {
	t.Helper()
	for _, s := range obs.SnapshotMetrics() {
		if s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("metric %q not registered", name)
	return 0
}

// TestSuiteCacheHitMissAccounting pins the cache counters against a
// hand-computed access sequence: every getter's first call on a fresh
// (seed, scale) key is one miss, every repeat is one hit, and a
// different seed is a fresh key again.
func TestSuiteCacheHitMissAccounting(t *testing.T) {
	obs.EnableMetrics(true)
	t.Cleanup(func() { obs.EnableMetrics(false) })

	cache := NewSuiteCache()
	cfg := Config{Seed: 11, Scale: Quick, Cache: cache}
	hits0 := counterValue(t, "core.cache.hit")
	misses0 := counterValue(t, "core.cache.miss")
	step := func(wantHits, wantMisses int64) {
		t.Helper()
		if got := counterValue(t, "core.cache.hit") - hits0; got != wantHits {
			t.Fatalf("cache hits = %d, want %d", got, wantHits)
		}
		if got := counterValue(t, "core.cache.miss") - misses0; got != wantMisses {
			t.Fatalf("cache misses = %d, want %d", got, wantMisses)
		}
	}

	// Cold: one miss, no hits.
	cache.rgnosSuite(cfg)
	step(0, 1)
	// Warm repeat on the same key: one hit, still one miss.
	cache.rgnosSuite(cfg)
	step(1, 1)
	// A different suite on the same key is its own cold entry.
	cache.rgposInstances(cfg)
	step(1, 2)
	cache.rgposInstances(cfg)
	step(2, 2)
	// A different seed is a fresh key: cold again for a suite the cache
	// already holds under the old seed.
	other := cfg
	other.Seed = 12
	cache.rgnosSuite(other)
	step(2, 3)
	// Both keys stay warm independently.
	cache.rgnosSuite(cfg)
	cache.rgnosSuite(other)
	step(4, 3)
}

// TestCacheCountersGatedOnEnable pins the zero-overhead contract on the
// cache path: with metrics disabled, cache traffic moves no counters.
func TestCacheCountersGatedOnEnable(t *testing.T) {
	obs.EnableMetrics(true)
	hits0 := counterValue(t, "core.cache.hit")
	misses0 := counterValue(t, "core.cache.miss")
	obs.EnableMetrics(false)

	cache := NewSuiteCache()
	cfg := Config{Seed: 13, Scale: Quick, Cache: cache}
	cache.rgnosSuite(cfg)
	cache.rgnosSuite(cfg)

	obs.EnableMetrics(true)
	t.Cleanup(func() { obs.EnableMetrics(false) })
	if got := counterValue(t, "core.cache.hit"); got != hits0 {
		t.Fatalf("disabled metrics moved cache hits: %d -> %d", hits0, got)
	}
	if got := counterValue(t, "core.cache.miss"); got != misses0 {
		t.Fatalf("disabled metrics moved cache misses: %d -> %d", misses0, got)
	}
}
