package core

import (
	"fmt"
	"testing"

	"repro/internal/algo/apn"
	"repro/internal/algo/bnp"
	"repro/internal/algo/unc"
	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/machine"
)

// hetTestGraphs generates one instance per registered generator family,
// sized so the quadratic algorithms stay fast.
func hetTestGraphs(t *testing.T, seed int64) map[string]*dag.Graph {
	t.Helper()
	out := map[string]*dag.Graph{}
	for _, fam := range gen.Generators() {
		params := gen.Params{}
		if fam.Random {
			params["v"] = "40"
			params["ccr"] = "1.0"
		}
		if fam.Name == "psg" {
			params["name"] = "wu-gajski-18"
		}
		g, err := gen.Generate(fam.Name, seed, params)
		if err != nil {
			t.Fatalf("generate %s: %v", fam.Name, err)
		}
		out[fam.Name] = g
	}
	return out
}

func uniformSpeeds(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1.0
	}
	return out
}

// TestUniformSpeedsReproduceHomogeneous pins the default-compatibility
// half of the heterogeneous extension: running any of the 15 algorithms
// through its heterogeneous entry point with an all-ones speed vector
// yields a byte-identical timeline to the homogeneous entry point, on
// every registered generator family.
func TestUniformSpeedsReproduceHomogeneous(t *testing.T) {
	graphs := hetTestGraphs(t, 2)
	topo := machine.Hypercube(3)
	const procs = 8
	for famName, g := range graphs {
		for _, a := range All() {
			var hom, het string
			switch a.Class {
			case BNP:
				s, err := bnp.Algorithms()[a.Name](g, procs)
				if err != nil {
					t.Fatalf("%s on %s: %v", a.Name, famName, err)
				}
				hom = s.String()
				s.Release()
				hs, err := bnp.ScheduleHet(a.Name, g, procs, uniformSpeeds(procs))
				if err != nil {
					t.Fatalf("%s het on %s: %v", a.Name, famName, err)
				}
				het = hs.String()
				hs.Release()
			case UNC:
				s, err := unc.Algorithms()[a.Name](g)
				if err != nil {
					t.Fatalf("%s on %s: %v", a.Name, famName, err)
				}
				hom = s.String()
				s.Release()
				// UNC algorithms choose their own processor count, so the
				// speed vector must cover one processor per node.
				hs, err := unc.ScheduleHet(a.Name, g, uniformSpeeds(g.NumNodes()))
				if err != nil {
					t.Fatalf("%s het on %s: %v", a.Name, famName, err)
				}
				het = hs.String()
				hs.Release()
			case APN:
				s, err := apn.Algorithms()[a.Name](g, topo)
				if err != nil {
					t.Fatalf("%s on %s: %v", a.Name, famName, err)
				}
				hom = s.String()
				hs, err := apn.ScheduleHet(a.Name, g, topo, uniformSpeeds(topo.NumProcs()))
				if err != nil {
					t.Fatalf("%s het on %s: %v", a.Name, famName, err)
				}
				het = hs.String()
			}
			if hom != het {
				t.Errorf("%s (%s) with uniform speeds diverges from homogeneous run on %s:\nhomogeneous:\n%s\nuniform speeds:\n%s",
					a.Name, a.Class, famName, hom, het)
			}
		}
	}
}

// TestRunOnHeterogeneousAllAlgorithms checks every registered algorithm
// — the 15 of the study and the 60 parameterized combos — produces a
// measurable schedule through RunOn on a genuinely heterogeneous
// machine, and that the Result is deterministic.
func TestRunOnHeterogeneousAllAlgorithms(t *testing.T) {
	g, err := gen.Generate("rgnos", 5, gen.Params{"v": "40", "ccr": "1.0"})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	ng := gen.NamedGraph{Name: "rgnos-40", G: g}
	topo := machine.Hypercube(3)
	const procs = 8
	speeds := componentsHetSpeeds(procs)
	uncSpeeds := componentsHetSpeeds(g.NumNodes())
	algs := append(All(), Parameterized()...)
	for _, a := range algs {
		sp := speeds
		if a.Class == UNC {
			sp = uncSpeeds
		}
		r1, err := a.RunOn(ng.G, procs, sp, topo)
		if err != nil {
			t.Fatalf("%s (%s): %v", a.Name, a.Class, err)
		}
		if r1.Length <= 0 || r1.Procs < 1 {
			t.Errorf("%s (%s): implausible result %+v", a.Name, a.Class, r1)
		}
		r2, err := a.RunOn(ng.G, procs, sp, topo)
		if err != nil {
			t.Fatalf("%s (%s) rerun: %v", a.Name, a.Class, err)
		}
		if r1.Length != r2.Length || r1.NSL != r2.NSL || r1.Procs != r2.Procs {
			t.Errorf("%s (%s): nondeterministic result: %+v vs %+v", a.Name, a.Class, r1, r2)
		}
	}
}

// TestRunOnRejectsBadSpeeds checks the heterogeneous entry points
// reject malformed speed vectors for every class.
func TestRunOnRejectsBadSpeeds(t *testing.T) {
	g, err := gen.Generate("rgnos", 5, gen.Params{"v": "20", "ccr": "1.0"})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	topo := machine.Hypercube(3)
	bad := map[string][]float64{
		"short":    {1.0},
		"zero":     {1, 1, 1, 0, 1, 1, 1, 1},
		"negative": {1, 1, 1, -2, 1, 1, 1, 1},
	}
	for _, a := range All() {
		for label, sp := range bad {
			if _, err := a.RunOn(g, 8, sp, topo); err == nil {
				t.Errorf("%s (%s) accepted %s speed vector %v", a.Name, a.Class, label, sp)
			}
		}
	}
}

// TestParameterizedRegistry checks the PARAM registry surface: 60
// combos, named canonically, runnable through the core Algorithm
// wrapper like any study algorithm.
func TestParameterizedRegistry(t *testing.T) {
	algs := Parameterized()
	if len(algs) != 60 {
		t.Fatalf("Parameterized() = %d algorithms, want 60", len(algs))
	}
	seen := map[string]bool{}
	for _, a := range algs {
		if a.Class != PARAM {
			t.Errorf("%s has class %s, want PARAM", a.Name, a.Class)
		}
		if seen[a.Name] {
			t.Errorf("duplicate parameterized algorithm %q", a.Name)
		}
		seen[a.Name] = true
	}
	g, err := gen.Generate("rgpos", 3, gen.Params{"v": "30", "ccr": "1.0"})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	r, err := algs[0].Run(g, 4, nil)
	if err != nil {
		t.Fatalf("%s: %v", algs[0].Name, err)
	}
	if r.Length <= 0 {
		t.Errorf("%s: implausible length %d", algs[0].Name, r.Length)
	}
	if fmt.Sprint(r.Algorithm) != algs[0].Name {
		t.Errorf("result algorithm %q, want %q", r.Algorithm, algs[0].Name)
	}
}
