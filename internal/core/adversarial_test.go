package core

import (
	"io"
	"strings"
	"testing"

	"repro/internal/adversarial"
)

// TestAlgorithmByName pins the pair-name resolution rules: plain
// registry names (DLS resolving to its BNP variant), class-qualified
// names, parameterized combo names, and fail-fast errors carrying the
// sorted menu.
func TestAlgorithmByName(t *testing.T) {
	for _, tc := range []struct {
		in    string
		class Class
		name  string
	}{
		{"MCP", BNP, "MCP"},
		{"DSC", UNC, "DSC"},
		{"BSA", APN, "BSA"},
		{"DLS", BNP, "DLS"}, // ambiguous name: BNP listed first wins
		{"BNP/DLS", BNP, "DLS"},
		{"APN/DLS", APN, "DLS"},
		{"alap/est/ins/st", PARAM, "alap/est/ins/st"},
	} {
		a, err := AlgorithmByName(tc.in)
		if err != nil {
			t.Errorf("AlgorithmByName(%q): %v", tc.in, err)
			continue
		}
		if a.Class != tc.class || a.Name != tc.name {
			t.Errorf("AlgorithmByName(%q) = %s/%s, want %s/%s", tc.in, a.Class, a.Name, tc.class, tc.name)
		}
	}
	for _, bad := range []string{"NOPE", "APN/MCP", "UNC/nope", "alap/est/ins/xx", ""} {
		if _, err := AlgorithmByName(bad); err == nil {
			t.Errorf("AlgorithmByName(%q) accepted", bad)
		}
	}
	if _, err := AlgorithmByName("NOPE"); err == nil || !strings.Contains(err.Error(), "MCP") {
		t.Errorf("unknown-name error does not list the valid names: %v", err)
	}
}

// TestParseAlgorithmPair pins the "A:B" pair syntax and its fail-fast
// validation.
func TestParseAlgorithmPair(t *testing.T) {
	a, b, err := ParseAlgorithmPair("MCP:APN/DLS")
	if err != nil || a != "MCP" || b != "APN/DLS" {
		t.Errorf("ParseAlgorithmPair(MCP:APN/DLS) = %q, %q, %v", a, b, err)
	}
	for _, bad := range []string{"MCP", "MCP:", ":LAST", "MCP:NOPE", "NOPE:LAST", ""} {
		if _, _, err := ParseAlgorithmPair(bad); err == nil {
			t.Errorf("ParseAlgorithmPair(%q) accepted", bad)
		}
	}
}

// TestAdversarialSearchWiring runs a tiny search through the real
// evaluator and checks the report is labeled and populated; invalid
// pairs fail before any evaluation.
func TestAdversarialSearchWiring(t *testing.T) {
	cfg := Config{Seed: 7, Scale: Quick, Out: io.Discard, Workers: 4}
	opts := adversarial.Defaults(7)
	opts.Generations = 2
	opts.Population = 6
	rep, err := AdversarialSearch(cfg, opts, "MCP", "LAST")
	if err != nil {
		t.Fatal(err)
	}
	if rep.AlgA != "MCP" || rep.AlgB != "LAST" {
		t.Errorf("report pair = %s:%s", rep.AlgA, rep.AlgB)
	}
	if len(rep.Trace) != 2 || len(rep.Top) == 0 {
		t.Errorf("report shape: %d trace entries, %d top", len(rep.Trace), len(rep.Top))
	}
	if _, err := AdversarialSearch(cfg, opts, "MCP", "NOPE"); err == nil {
		t.Error("unknown algB accepted")
	}
}
