package core

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/ft"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/table"
)

// This file implements the fault-injection study (experiment id
// "faults"). The paper's benchmark assumes every processor survives the
// execution; this extension measures how gracefully each algorithm's
// static schedule degrades when processors fail-stop mid-run and (for
// the APN class) links suffer transient outages, and how much of the
// loss each internal/ft recovery policy wins back. For every schedule
// the study sweeps the processor MTBF from infinity down to a quarter
// of the graph's critical-path computation cost and Monte-Carlo
// executes the schedule under the fault-capable engine, reporting the
// deadline-survival probability (SLO: 1.5x the static makespan) and
// the realized/static makespan ratio of the finished trials. Failure
// traces are paired: they depend on the instance and trial, never the
// algorithm or policy, so every scheduler faces the same crashes.

// faultsFactors is the MTBF sweep, as multiples of the instance's
// critical-path computation sum; 0 is the fault-free anchor (MTBF
// infinity), which must reproduce the static schedule exactly.
var faultsFactors = []float64{0, 4, 1, 0.25}

// faultsHarsh indexes the harshest point of the sweep, used for the
// policy comparison summary.
const faultsHarsh = 3

// faultsFactorName renders one sweep point for table headers.
func faultsFactorName(f float64) string {
	if f == 0 {
		return "inf"
	}
	return fmt.Sprintf("%gx", f)
}

// faultsTrials returns the Monte-Carlo trial count per (schedule,
// policy, MTBF) cell.
func faultsTrials(s Scale) int {
	if s == Full {
		return 100
	}
	return 5
}

// faultsSeed mixes the per-instance simulation seed. Like robustSeed it
// depends only on the instance, so failure traces are paired across
// algorithms and recovery policies; the stride differs so the faults
// study never reuses the robust study's perturbation streams.
func faultsSeed(seed int64, fi, gi int) int64 {
	return seed + int64(fi+1)*2_000_003 + int64(gi+1)*9_973
}

// faultsModel builds the fault model of one sweep point for an
// instance whose critical-path computation sum is ref. Repairs take a
// tenth of ref on average; APN executions additionally suffer link
// outages with the same MTBF and a twentieth of ref mean width.
func faultsModel(factor float64, ref int64, apnLinks bool) sim.FaultModel {
	if factor == 0 {
		return sim.FaultModel{}
	}
	mtbf := max64(1, int64(factor*float64(ref)+0.5))
	m := sim.FaultModel{
		MTBF:       mtbf,
		MeanRepair: max64(1, ref/10),
	}
	if apnLinks {
		m.LinkMTBF = mtbf
		m.MeanOutage = max64(1, ref/20)
	}
	return m
}

// faultsDeadline is the survival SLO: 1.5x the static makespan.
func faultsDeadline(static int64) int64 { return static + static/2 }

// faultsCell carries the Monte-Carlo statistics of one (algorithm x
// instance) pair over the whole sweep: stats[factor][policy].
type faultsCell struct {
	stats [][]ft.Stats
}

// runFaultsSweep Monte-Carlo executes one compiled schedule across the
// MTBF sweep for the given policies. The fault-free anchor must finish
// every trial at the static makespan exactly.
func runFaultsSweep(x *ft.Exec, seed int64, ref int64, apnLinks bool, policies []ft.RecoveryPolicy, trials int, label string) (faultsCell, error) {
	deadline := faultsDeadline(x.Static())
	cell := faultsCell{stats: make([][]ft.Stats, len(faultsFactors))}
	for fi, factor := range faultsFactors {
		cell.stats[fi] = make([]ft.Stats, len(policies))
		for pi, pol := range policies {
			opts := ft.Options{
				Sim:      sim.Options{Seed: seed},
				Faults:   faultsModel(factor, ref, apnLinks),
				Recovery: pol,
				Deadline: deadline,
			}
			st, err := ft.MonteCarlo(x, opts, trials)
			if err != nil {
				return faultsCell{}, fmt.Errorf("faults: %s: %w", label, err)
			}
			if factor == 0 && (st.Survived != trials || st.MeanRatio != 1) {
				return faultsCell{}, fmt.Errorf("faults: %s: fault-free anchor survived %d/%d trials with mean ratio %g, want all at 1",
					label, st.Survived, trials, st.MeanRatio)
			}
			cell.stats[fi][pi] = st
		}
	}
	return cell, nil
}

// faultsPolicies builds the recovery policies evaluated for one clique
// schedule: the checkpoint period is a sixteenth of the static
// makespan, the replication degree a tenth of the task count.
func faultsPolicies(static int64, numTasks int) []ft.RecoveryPolicy {
	return ft.Policies(max64(1, static/16), maxInt(1, numTasks/10))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// faultEffectiveTrials is the Monte-Carlo budget of FaultEffective.
const faultEffectiveTrials = 10

// FaultEffective measures one algorithm's schedule for g under the
// canonical fault scenario: crashes at MTBF equal to the graph's
// critical-path computation cost with 0.1x repairs (plus link outages
// for APN schedules), seed 1, reactive resubmit recovery for the
// clique classes (APN supports none), and a deadline of 1.5x the
// static makespan. It returns the fault-effective makespan — the mean
// over trials of the realized makespan, with unfinished or
// deadline-missing trials charged twice the deadline — the measure the
// adversarial fault-gap objective compares. BNP and PARAM algorithms
// receive bnpProcs processors; APN algorithms the topology.
func FaultEffective(a Algorithm, g *dag.Graph, bnpProcs int, topo *machine.Topology) (int64, error) {
	var (
		x   *ft.Exec
		err error
	)
	apnClass := a.Class == APN
	switch a.Class {
	case BNP:
		var s *sched.Schedule
		if s, err = a.runBNP(g, bnpProcs); err == nil {
			x, err = ft.Compile(s)
			s.Release()
		}
	case PARAM:
		var s *sched.Schedule
		if s, err = a.runParam(g, bnpProcs, nil); err == nil {
			x, err = ft.Compile(s)
			s.Release()
		}
	case UNC:
		var s *sched.Schedule
		if s, err = a.runUNC(g); err == nil {
			x, err = ft.Compile(s)
			s.Release()
		}
	case APN:
		if topo == nil {
			return 0, fmt.Errorf("core: APN algorithm %s needs a topology", a.Name)
		}
		var s *machine.Schedule
		if s, err = a.runAPN(g, topo); err == nil {
			x, err = ft.CompileAPN(s)
		}
	default:
		return 0, fmt.Errorf("core: unknown class %q", a.Class)
	}
	if err != nil {
		return 0, err
	}
	ref := dag.CPComputationSum(g)
	deadline := faultsDeadline(x.Static())
	opts := ft.Options{
		Sim:      sim.Options{Seed: 1},
		Faults:   faultsModel(1, ref, apnClass),
		Deadline: deadline,
	}
	if !apnClass {
		opts.Recovery = ft.Resubmit()
	}
	st, err := ft.MonteCarlo(x, opts, faultEffectiveTrials)
	if err != nil {
		return 0, err
	}
	miss := 2 * deadline
	var sum int64
	for _, mk := range st.Makespans {
		if mk < 0 || mk > deadline {
			sum += miss
		} else {
			sum += mk
		}
	}
	return sum / int64(len(st.Makespans)), nil
}

// faultsAgg accumulates survival rates, finished-trial ratios, and
// utilization fractions over a group of cells.
type faultsAgg struct {
	cells    int
	survival float64
	ratioSum float64
	ratioN   int
	busy     float64
	idle     float64
	down     float64
}

func (a *faultsAgg) add(st ft.Stats) {
	a.cells++
	a.survival += st.SurvivalRate
	if st.Finished > 0 {
		a.ratioSum += st.MeanRatio
		a.ratioN++
	}
	a.busy += st.MeanBusyFrac
	a.idle += st.MeanIdleFrac
	a.down += st.MeanDownFrac
}

// survPct returns the mean survival rate as a percentage.
func (a *faultsAgg) survPct() float64 { return 100 * a.survival / float64(a.cells) }

// cellText renders one aggregate as "surv% (mean ratio)".
func (a *faultsAgg) cellText() string {
	if a.ratioN == 0 {
		return fmt.Sprintf("%5.1f%% (-)", a.survPct())
	}
	return fmt.Sprintf("%5.1f%% (%.3f)", a.survPct(), a.ratioSum/float64(a.ratioN))
}

// Faults runs the fault-injection and recovery study: the BNP
// algorithms (clique model, 4 recovery policies) and the APN algorithms
// (hypercube with link contention, no recovery) over every registered
// generator family, Monte-Carlo executing each schedule while the
// processor MTBF sweeps from infinity down to a quarter of the
// instance's critical-path computation cost. Per policy it reports the
// degradation curve — deadline-survival probability and mean finished
// realized/static ratio per family and MTBF — then compares policies
// per algorithm at the harshest point. Failure traces are paired across
// algorithms and policies; output is deterministic in (seed, scale) and
// byte-identical for every worker count.
func Faults(cfg Config) error {
	fams, err := suiteCacheFor(cfg).robustSuite(cfg)
	if err != nil {
		return err
	}
	trials := faultsTrials(cfg.Scale)
	topo := apnTopology()
	bnpAlgs := ByClass(BNP)
	apnAlgs := ByClass(APN)
	apnPolicies := []ft.RecoveryPolicy{ft.None()}

	var p plan[faultsCell]
	for fi, fam := range fams {
		for gi, ng := range fam.graphs {
			seed := faultsSeed(cfg.Seed, fi, gi)
			ref := dag.CPComputationSum(ng.G)
			for _, a := range bnpAlgs {
				a, ng := a, ng
				label := fmt.Sprintf("%s(BNP) on %s", a.Name, ng.Name)
				procs := BNPProcs(ng.G.NumNodes())
				p.add(func() (faultsCell, error) {
					s, err := a.runBNP(ng.G, procs)
					if err != nil {
						return faultsCell{}, fmt.Errorf("faults: %s: %w", label, err)
					}
					x, err := ft.Compile(s)
					s.Release()
					if err != nil {
						return faultsCell{}, fmt.Errorf("faults: %s: %w", label, err)
					}
					pols := faultsPolicies(x.Static(), ng.G.NumNodes())
					return runFaultsSweep(x, seed, ref, false, pols, trials, label)
				})
			}
			for _, a := range apnAlgs {
				a, ng := a, ng
				label := fmt.Sprintf("%s(APN) on %s", a.Name, ng.Name)
				p.add(func() (faultsCell, error) {
					s, err := a.runAPN(ng.G, topo)
					if err != nil {
						return faultsCell{}, fmt.Errorf("faults: %s: %w", label, err)
					}
					x, err := ft.CompileAPN(s)
					if err != nil {
						return faultsCell{}, fmt.Errorf("faults: %s: %w", label, err)
					}
					return runFaultsSweep(x, seed, ref, true, apnPolicies, trials, label)
				})
			}
		}
	}
	results, err := p.run(cfg)
	if err != nil {
		return err
	}

	policyNames := ft.PolicyNames()
	fmt.Fprintf(cfg.Out, "model: fail-stop crashes (MTBF in multiples of the critical-path computation cost, repair 0.1x), APN adds link outages; deadline 1.5x static; %d trials/cell, paired failure traces\n",
		trials)

	// Replay the plan into per-group aggregates.
	byFamBNP := make([][][]faultsAgg, len(fams)) // [family][factor][policy]
	byFamAPN := make([][]faultsAgg, len(fams))   // [family][factor]
	byAlgBNP := make([][]faultsAgg, len(bnpAlgs))
	byAlgAPN := make([]faultsAgg, len(apnAlgs))
	var utilBNP faultsAgg // resubmit at the 1x sweep point
	for i := range fams {
		byFamBNP[i] = make([][]faultsAgg, len(faultsFactors))
		for fi := range faultsFactors {
			byFamBNP[i][fi] = make([]faultsAgg, len(policyNames))
		}
		byFamAPN[i] = make([]faultsAgg, len(faultsFactors))
	}
	for i := range bnpAlgs {
		byAlgBNP[i] = make([]faultsAgg, len(policyNames))
	}
	cur := cursor[faultsCell]{rs: results}
	for i := range fams {
		for range fams[i].graphs {
			for ai := range bnpAlgs {
				cell := cur.next()
				for fi := range faultsFactors {
					for pi := range policyNames {
						byFamBNP[i][fi][pi].add(cell.stats[fi][pi])
					}
				}
				for pi := range policyNames {
					byAlgBNP[ai][pi].add(cell.stats[faultsHarsh][pi])
				}
				utilBNP.add(cell.stats[2][1]) // factor 1x, resubmit
			}
			for ai := range apnAlgs {
				cell := cur.next()
				for fi := range faultsFactors {
					byFamAPN[i][fi].add(cell.stats[fi][0])
				}
				byAlgAPN[ai].add(cell.stats[faultsHarsh][0])
			}
		}
	}

	cols := []string{"family"}
	for _, f := range faultsFactors {
		cols = append(cols, "mtbf="+faultsFactorName(f))
	}
	for pi, pol := range policyNames {
		t := table.New(fmt.Sprintf("Deadline survival (mean finished ratio), BNP algorithms, recovery=%s", pol), cols...)
		for i, fam := range fams {
			row := []string{fam.name}
			for fi := range faultsFactors {
				row = append(row, byFamBNP[i][fi][pi].cellText())
			}
			t.AddRow(row...)
		}
		if err := t.Render(cfg.Out); err != nil {
			return err
		}
	}
	t := table.New(fmt.Sprintf("Deadline survival (mean finished ratio), APN algorithms on %s, recovery=none", topo.Name()), cols...)
	for i, fam := range fams {
		row := []string{fam.name}
		for fi := range faultsFactors {
			row = append(row, byFamAPN[i][fi].cellText())
		}
		t.AddRow(row...)
	}
	if err := t.Render(cfg.Out); err != nil {
		return err
	}

	harshName := faultsFactorName(faultsFactors[faultsHarsh])
	sumCols := []string{"algorithm"}
	sumCols = append(sumCols, policyNames...)
	t = table.New(fmt.Sprintf("Survival by recovery policy at mtbf=%s, BNP algorithms", harshName), sumCols...)
	for ai, a := range bnpAlgs {
		row := []string{a.Name}
		for pi := range policyNames {
			row = append(row, byAlgBNP[ai][pi].cellText())
		}
		t.AddRow(row...)
	}
	if err := t.Render(cfg.Out); err != nil {
		return err
	}

	// Class-level summary lines (parseable; pinned by the tests).
	var bnpLine [4]float64
	for pi := range policyNames {
		var agg faultsAgg
		for ai := range bnpAlgs {
			agg.survival += byAlgBNP[ai][pi].survival
			agg.cells += byAlgBNP[ai][pi].cells
		}
		bnpLine[pi] = agg.survPct()
	}
	fmt.Fprintf(cfg.Out, "BNP deadline survival at mtbf=%s: none=%.1f%% resubmit=%.1f%% checkpoint=%.1f%% replicate=%.1f%%\n",
		harshName, bnpLine[0], bnpLine[1], bnpLine[2], bnpLine[3])
	var apnAgg faultsAgg
	for ai := range apnAlgs {
		apnAgg.survival += byAlgAPN[ai].survival
		apnAgg.cells += byAlgAPN[ai].cells
	}
	fmt.Fprintf(cfg.Out, "APN deadline survival at mtbf=%s: none=%.1f%%\n", harshName, apnAgg.survPct())
	fmt.Fprintf(cfg.Out, "mean processor time at mtbf=1x (BNP, resubmit): busy=%.1f%% idle=%.1f%% down=%.1f%%\n",
		100*utilBNP.busy/float64(utilBNP.cells),
		100*utilBNP.idle/float64(utilBNP.cells),
		100*utilBNP.down/float64(utilBNP.cells))
	fmt.Fprintln(cfg.Out, "surv%: trials finishing within the deadline; ratio: realized/static makespan of the finished trials; (-): no trial finished")
	return nil
}
