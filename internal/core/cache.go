package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/gen"
	"repro/internal/optimal"
)

// SuiteCache shares generated benchmark suites — and the expensive
// RGBOS branch-and-bound optima — across experiments. Entries are keyed
// by (seed, scale), so Tables 2 and 3 solve each RGBOS instance to
// optimality exactly once, Tables 4 and 5 generate the RGPOS suite
// once, and Table 6, Figures 2-3, and the UNCCS extension share one
// RGNOS suite. Suites are deterministic in (seed, scale), which keeps
// cached runs byte-identical to cold ones.
//
// A nil *SuiteCache in Config falls back to a process-wide cache; use
// NewSuiteCache for an isolated one. Entries are retained for the
// cache's lifetime, so a sweep over many distinct seeds should supply
// its own short-lived cache rather than rely on the process-wide
// fallback, which is never evicted.
type SuiteCache struct {
	mu     sync.Mutex
	rgbos  map[suiteKey]map[float64][]degradationInstance
	rgpos  map[suiteKey]map[float64][]degradationInstance
	rgnos  map[suiteKey]map[int][]gen.NamedGraph
	genx   map[suiteKey]map[string][]gen.NamedGraph
	comp   map[suiteKey]map[string][]gen.NamedGraph
	robust map[suiteKey][]robustFamily
}

type suiteKey struct {
	seed  int64
	scale Scale
}

// NewSuiteCache returns an empty suite cache.
func NewSuiteCache() *SuiteCache {
	return &SuiteCache{
		rgbos:  map[suiteKey]map[float64][]degradationInstance{},
		rgpos:  map[suiteKey]map[float64][]degradationInstance{},
		rgnos:  map[suiteKey]map[int][]gen.NamedGraph{},
		genx:   map[suiteKey]map[string][]gen.NamedGraph{},
		comp:   map[suiteKey]map[string][]gen.NamedGraph{},
		robust: map[suiteKey][]robustFamily{},
	}
}

// processCache backs Configs that do not carry their own cache.
var processCache = NewSuiteCache()

// rgbosSolves counts branch-and-bound solves, so tests can assert that
// optima are computed exactly once per suite.
var rgbosSolves atomic.Int64

// suiteCacheFor resolves cfg's cache, defaulting to the process-wide one.
func suiteCacheFor(cfg Config) *SuiteCache {
	if cfg.Cache != nil {
		return cfg.Cache
	}
	return processCache
}

func (c *SuiteCache) key(cfg Config) suiteKey { return suiteKey{cfg.Seed, cfg.Scale} }

// rgbosInstances returns the RGBOS suite with branch-and-bound optima
// attached (the role the paper's parallel A* played), computing it on
// the first request for (seed, scale). Failed computations are not
// cached.
func (c *SuiteCache) rgbosInstances(cfg Config) (map[float64][]degradationInstance, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := c.key(cfg)
	if got, ok := c.rgbos[k]; ok {
		cacheHits.Inc()
		return got, nil
	}
	cacheMisses.Inc()
	suite, err := computeRGBOS(cfg)
	if err != nil {
		return nil, err
	}
	c.rgbos[k] = suite
	return suite, nil
}

// computeRGBOS generates the RGBOS graphs serially (the generator's rng
// is sequential) and then solves their optima as parallel cells.
func computeRGBOS(cfg Config) (map[float64][]degradationInstance, error) {
	type job struct {
		ccr float64
		ng  gen.NamedGraph
	}
	var jobs []job
	for _, ccr := range gen.PaperCCRs {
		rc := gen.DefaultRGBOSConfig(ccr, cfg.Seed)
		rc.MaxNodes = rgbosMaxNodes(cfg.Scale)
		for _, ng := range gen.RGBOS(rc) {
			jobs = append(jobs, job{ccr, ng})
		}
	}
	var p plan[degradationInstance]
	for _, j := range jobs {
		p.add(func() (degradationInstance, error) {
			rgbosSolves.Add(1)
			res, err := optimal.Schedule(j.ng.G, j.ng.G.NumNodes(), optimal.Options{})
			if err != nil {
				return degradationInstance{}, fmt.Errorf("rgbos optimum for %s: %w", j.ng.Name, err)
			}
			return degradationInstance{
				label:   fmt.Sprintf("v=%d", j.ng.G.NumNodes()),
				g:       j.ng.G,
				optimal: res.Length,
				closed:  res.Closed,
			}, nil
		})
	}
	results, err := p.run(cfg)
	if err != nil {
		return nil, err
	}
	out := map[float64][]degradationInstance{}
	for i, j := range jobs {
		out[j.ccr] = append(out[j.ccr], results[i])
	}
	return out, nil
}

// rgposInstances returns the RGPOS suite, whose optima are known by
// construction, generating it on the first request for (seed, scale).
func (c *SuiteCache) rgposInstances(cfg Config) map[float64][]degradationInstance {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := c.key(cfg)
	if got, ok := c.rgpos[k]; ok {
		cacheHits.Inc()
		return got
	}
	cacheMisses.Inc()
	out := map[float64][]degradationInstance{}
	lo, hi, step := rgposSizes(cfg.Scale)
	for _, ccr := range gen.PaperCCRs {
		rc := gen.DefaultRGPOSConfig(ccr, cfg.Seed)
		rc.MinNodes, rc.MaxNodes, rc.Step = lo, hi, step
		for _, inst := range gen.RGPOS(rc) {
			out[ccr] = append(out[ccr], degradationInstance{
				label:   fmt.Sprintf("v=%d", inst.G.NumNodes()),
				g:       inst.G,
				optimal: inst.OptimalLength,
				closed:  true,
			})
		}
	}
	c.rgpos[k] = out
	return out
}

// genxSuite returns the cross-generator study's instances grouped by
// family name, generating them on the first request for (seed, scale).
// Every registered random family contributes the same matched grid of
// (size, CCR, instance) points; per-instance seeds are mixed from the
// run seed and the point coordinates, so the suite is deterministic and
// no two points share a generator stream.
func (c *SuiteCache) genxSuite(cfg Config) (map[string][]gen.NamedGraph, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := c.key(cfg)
	if got, ok := c.genx[k]; ok {
		cacheHits.Inc()
		return got, nil
	}
	cacheMisses.Inc()
	sizes, ccrs, instances := genxPoints(cfg.Scale)
	byFam, err := matchedFamilySuite("genx", cfg.Seed, sizes, ccrs, instances)
	if err != nil {
		return nil, err
	}
	c.genx[k] = byFam
	return byFam, nil
}

// componentsSuite returns the component-attribution study's instances
// grouped by family name, generating them on the first request for
// (seed, scale). It is the same matched-grid construction as the genx
// suite on the grid of componentsPoints.
func (c *SuiteCache) componentsSuite(cfg Config) (map[string][]gen.NamedGraph, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := c.key(cfg)
	if got, ok := c.comp[k]; ok {
		cacheHits.Inc()
		return got, nil
	}
	cacheMisses.Inc()
	sizes, ccrs, instances := componentsPoints(cfg.Scale)
	byFam, err := matchedFamilySuite("components", cfg.Seed, sizes, ccrs, instances)
	if err != nil {
		return nil, err
	}
	c.comp[k] = byFam
	return byFam, nil
}

// matchedFamilySuite builds one matched (size, CCR, instance) grid of
// instances per registered random family. Per-instance seeds are mixed
// from the run seed and the point coordinates, so the suite is
// deterministic and no two points share a generator stream.
func matchedFamilySuite(exp string, runSeed int64, sizes []int, ccrs []float64, instances int) (map[string][]gen.NamedGraph, error) {
	byFam := map[string][]gen.NamedGraph{}
	for fi, f := range gen.RandomFamilies() {
		for _, v := range sizes {
			for ci, ccr := range ccrs {
				for i := 0; i < instances; i++ {
					// Distinct large-prime strides keep the mixed seeds
					// unique across the four grid coordinates.
					seed := runSeed +
						int64(fi+1)*1_000_003 +
						int64(v)*7_919 +
						int64(ci+1)*104_729 +
						int64(i+1)*15_485_863
					g, err := gen.Generate(f.Name, seed, gen.Params{
						"v":   fmt.Sprint(v),
						"ccr": fmt.Sprintf("%g", ccr),
					})
					if err != nil {
						return nil, fmt.Errorf("%s: %s v=%d ccr=%g: %w", exp, f.Name, v, ccr, err)
					}
					byFam[f.Name] = append(byFam[f.Name], gen.NamedGraph{
						Name:   fmt.Sprintf("%s-v%d-ccr%g-i%d", f.Name, v, ccr, i),
						Source: fmt.Sprintf("%s seed=%d", f.Source, seed),
						G:      g,
					})
				}
			}
		}
	}
	return byFam, nil
}

// robustSuite returns the execution-robustness study's instances, one
// entry per registered generator family in name order, generating them
// on the first request for (seed, scale). Random (v, ccr) families
// contribute a matched grid of points; every other family contributes
// one representative instance with its default parameters, so the
// study exercises the whole registry. Per-instance seeds are mixed
// from the run seed and the point coordinates, as in the genx suite.
func (c *SuiteCache) robustSuite(cfg Config) ([]robustFamily, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := c.key(cfg)
	if got, ok := c.robust[k]; ok {
		cacheHits.Inc()
		return got, nil
	}
	cacheMisses.Inc()
	sizes, ccrs, instances := robustPoints(cfg.Scale)
	var fams []robustFamily
	for fi, f := range gen.Generators() {
		fam := robustFamily{name: f.Name}
		if f.Random {
			for _, v := range sizes {
				for ci, ccr := range ccrs {
					for i := 0; i < instances; i++ {
						seed := cfg.Seed +
							int64(fi+1)*1_000_003 +
							int64(v)*7_919 +
							int64(ci+1)*104_729 +
							int64(i+1)*15_485_863
						g, err := gen.Generate(f.Name, seed, gen.Params{
							"v":   fmt.Sprint(v),
							"ccr": fmt.Sprintf("%g", ccr),
						})
						if err != nil {
							return nil, fmt.Errorf("robust: %s v=%d ccr=%g: %w", f.Name, v, ccr, err)
						}
						fam.graphs = append(fam.graphs, gen.NamedGraph{
							Name: fmt.Sprintf("%s-v%d-ccr%g-i%d", f.Name, v, ccr, i),
							G:    g,
						})
					}
				}
			}
		} else {
			g, err := gen.Generate(f.Name, cfg.Seed, robustFixedParams[f.Name])
			if err != nil {
				return nil, fmt.Errorf("robust: %s: %w", f.Name, err)
			}
			fam.graphs = append(fam.graphs, gen.NamedGraph{Name: f.Name + "-default", G: g})
		}
		fams = append(fams, fam)
	}
	c.robust[k] = fams
	return fams, nil
}

// robustFixedParams overrides defaults for non-random families whose
// default parameters do not yield a graph (psg requires a name).
var robustFixedParams = map[string]gen.Params{
	"psg": {"name": "kwok-ahmad-9"},
}

// rgnosSuite returns the RGNOS graphs grouped by size, generating them
// on the first request for (seed, scale).
func (c *SuiteCache) rgnosSuite(cfg Config) map[int][]gen.NamedGraph {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := c.key(cfg)
	if got, ok := c.rgnos[k]; ok {
		cacheHits.Inc()
		return got
	}
	cacheMisses.Inc()
	rc := gen.RGNOSConfig{
		MinNodes:    50,
		MaxNodes:    500,
		Step:        50,
		CCRs:        rgnosCCRs(cfg.Scale),
		Parallelism: rgnosParallelism(cfg.Scale),
		Seed:        cfg.Seed,
	}
	sizes := rgnosSizes(cfg.Scale)
	rc.MaxNodes = sizes[len(sizes)-1]
	bySize := map[int][]gen.NamedGraph{}
	for _, ng := range gen.RGNOS(rc) {
		bySize[ng.G.NumNodes()] = append(bySize[ng.G.NumNodes()], ng)
	}
	c.rgnos[k] = bySize
	return bySize
}
