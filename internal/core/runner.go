package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Runner executes independent experiment cells — one (algorithm ×
// instance) scheduling run each — on a bounded pool of worker
// goroutines. Cells are claimed from a shared counter, so the pool is
// always busy, but results are delivered indexed exactly as the cells
// were planned: assembling rows from them in plan order makes the
// concurrent output byte-identical to a serial run.
type Runner struct {
	workers int
}

// NewRunner returns a runner bounded to the given number of worker
// goroutines. workers <= 0 selects GOMAXPROCS.
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers}
}

// Workers returns the concurrency bound.
func (r *Runner) Workers() int { return r.workers }

// plan accumulates the cells of one experiment in output order. The
// experiment functions are producers: they plan every cell of their
// table or figure up front, run the plan, and then assemble rows from
// the ordered results with a cursor.
type plan[T any] struct {
	cells []func() (T, error)
}

// add appends one cell. Position in the plan determines the cell's
// index in the result slice.
func (p *plan[T]) add(cell func() (T, error)) { p.cells = append(p.cells, cell) }

// run executes the plan on cfg's runner and returns the results in
// plan order.
func (p *plan[T]) run(cfg Config) ([]T, error) {
	return runCells(cfg.runner(), p.cells)
}

// runCells fans the cells out across the runner's pool. On success the
// result slice is indexed exactly like cells. On failure the error of
// the lowest-indexed failing cell is returned; once any cell has
// failed, unstarted cells are skipped (best effort).
func runCells[T any](r *Runner, cells []func() (T, error)) ([]T, error) {
	n := len(cells)
	if n == 0 {
		return nil, nil
	}
	results := make([]T, n)
	workers := r.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i, cell := range cells {
			var err error
			if results[i], err = instrumentCell(cell); err != nil {
				return nil, err
			}
		}
		return results, nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	errs := make([]error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				results[i], errs[i] = instrumentCell(cells[i])
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// cursor replays planned results during row assembly. The assembly
// loops mirror the planning loops, so next() yields each cell's result
// at exactly the position it was planned.
type cursor[T any] struct {
	rs []T
	i  int
}

func (c *cursor[T]) next() T {
	v := c.rs[c.i]
	c.i++
	return v
}
