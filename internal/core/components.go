package core

import (
	"fmt"

	"repro/internal/algo/param"
	"repro/internal/gen"
	"repro/internal/table"
)

// This file implements the component-attribution study (experiment id
// "components"). In the spirit of the parameterized task graph
// scheduling analysis of Coleman, Titzer & Taufer (2024), the full
// cross-product of internal/algo/param's scheduler components — priority
// metric × processor rule × slot policy × priority regime — runs over
// every registered random family at matched (size, CCR) points, on a
// homogeneous and a heterogeneous machine, and makespan differences are
// attributed to the individual components: for each component value, the
// mean NSL over its combos, the mean NSL deviation within matched
// groups of combos that agree on every other component, and the
// fraction of matched groups it wins outright. Per-axis Kendall-tau
// across families reports whether the component rankings are stable
// across generation methods.

// componentsPoints returns the matched (size, CCR, instances-per-point)
// grid every random family is sampled on.
func componentsPoints(s Scale) (sizes []int, ccrs []float64, instances int) {
	if s == Full {
		return []int{50, 100, 200}, []float64{0.1, 0.5, 1.0, 2.0, 10.0}, 3
	}
	return []int{30, 60}, []float64{0.1, 1.0, 10.0}, 2
}

// componentsProcs is the machine size of the study; 8 processors
// matches the paper's APN machine and keeps the 60-combo cross-product
// tractable at full scale.
const componentsProcs = 8

// componentsHetSpeeds returns the heterogeneous machine's speed
// vector: processor p runs at speed {1, 2, 4}[p%3], a fixed 4:1 spread
// so fast processors are scarce.
func componentsHetSpeeds(procs int) []float64 {
	cycle := [3]float64{1.0, 2.0, 4.0}
	out := make([]float64, procs)
	for p := range out {
		out[p] = cycle[p%3]
	}
	return out
}

// componentAxis is one of the four component dimensions.
type componentAxis struct {
	name string
	n    int                   // number of values
	of   func(param.Combo) int // value index of a combo
	val  func(int) string      // value token
}

func componentAxes() []componentAxis {
	return []componentAxis{
		{"metric", 5, func(c param.Combo) int { return int(c.Metric) }, func(i int) string { return param.Metric(i).String() }},
		{"rule", 3, func(c param.Combo) int { return int(c.Rule) }, func(i int) string { return param.Rule(i).String() }},
		{"slot", 2, func(c param.Combo) int { return int(c.Slot) }, func(i int) string { return param.Slot(i).String() }},
		{"regime", 2, func(c param.Combo) int { return int(c.Regime) }, func(i int) string { return param.Regime(i).String() }},
	}
}

// Components runs the component-attribution study. Output is
// deterministic in (seed, scale) and byte-identical for every worker
// count: cells are planned machine-major, then family, instance, combo,
// and every statistic is assembled from the plan-ordered results.
func Components(cfg Config) error {
	byFam, err := suiteCacheFor(cfg).componentsSuite(cfg)
	if err != nil {
		return err
	}
	fams := gen.RandomFamilies()
	combos := param.Combos()
	algs := Parameterized()
	machines := []struct {
		label  string
		speeds []float64
	}{
		{"homogeneous", nil},
		{"heterogeneous", componentsHetSpeeds(componentsProcs)},
	}

	var p plan[Result]
	for _, m := range machines {
		for _, f := range fams {
			for _, ng := range byFam[f.Name] {
				for _, a := range algs {
					runCellOn(&p, "components", a, ng, componentsProcs, m.speeds, nil)
				}
			}
		}
	}
	results, err := p.run(cfg)
	if err != nil {
		return err
	}

	// nsl[mi][fi][ii][ci]: NSL of combo ci on instance ii of family fi
	// on machine mi, in plan order.
	cur := cursor[Result]{rs: results}
	nsl := make([][][][]float64, len(machines))
	for mi := range machines {
		nsl[mi] = make([][][]float64, len(fams))
		for fi, f := range fams {
			insts := byFam[f.Name]
			nsl[mi][fi] = make([][]float64, len(insts))
			for ii := range insts {
				vals := make([]float64, len(combos))
				for ci := range combos {
					vals[ci] = cur.next().NSL
				}
				nsl[mi][fi][ii] = vals
			}
		}
	}

	axes := componentAxes()
	for mi, m := range machines {
		if err := renderComponentsMachine(cfg, m.label, m.speeds, fams, byFam, combos, axes, nsl[mi]); err != nil {
			return err
		}
	}
	fmt.Fprintln(cfg.Out, "delta: mean NSL difference from the mean of the matched combos that agree on every other component (negative = better)")
	fmt.Fprintln(cfg.Out, "win: fraction of matched groups the value wins outright (ties win for no one)")
	fmt.Fprintln(cfg.Out, "tau: mean pairwise Kendall-tau of the per-family value rankings (1 = every family ranks the values identically)")
	return nil
}

// renderComponentsMachine aggregates and prints one machine's panel.
func renderComponentsMachine(cfg Config, label string, speeds []float64, fams []gen.Generator,
	byFam map[string][]gen.NamedGraph, combos []param.Combo, axes []componentAxis, nsl [][][]float64) error {

	title := fmt.Sprintf("Component attribution, %s machine (%d procs", label, componentsProcs)
	if speeds != nil {
		title += ", speeds 1/2/4"
	}
	title += ")"
	t := table.New(title, "component", "value", "mean NSL", "delta", "win", "tau")
	for axi, ax := range axes {
		if axi > 0 {
			t.AddSeparator()
		}
		// Matched groups: combos that agree on every axis but this one,
		// ordered by the group's representative (value index 0) in combo
		// order. Each group holds exactly ax.n combos.
		var groups [][]int
		for _, c := range combos {
			if ax.of(c) != 0 {
				continue
			}
			group := make([]int, ax.n)
			for cj, cc := range combos {
				same := true
				for _, other := range axes {
					if other.name != ax.name && other.of(cc) != other.of(c) {
						same = false
						break
					}
				}
				if same {
					group[ax.of(cc)] = cj
				}
			}
			groups = append(groups, group)
		}

		sum := make([]float64, ax.n)   // overall NSL sum per value
		count := 0                     // instances × groups (same for every value)
		delta := make([]float64, ax.n) // deviation from matched-group mean
		wins := make([]int, ax.n)
		famSum := make([][]float64, len(fams)) // per-family NSL sum per value
		for fi := range fams {
			famSum[fi] = make([]float64, ax.n)
			for ii := range nsl[fi] {
				vals := nsl[fi][ii]
				for _, group := range groups {
					var groupMean float64
					for _, ci := range group {
						groupMean += vals[ci]
					}
					groupMean /= float64(ax.n)
					best, bestTied := -1, false
					for vi, ci := range group {
						v := vals[ci]
						sum[vi] += v
						famSum[fi][vi] += v
						delta[vi] += v - groupMean
						if best == -1 || v < vals[group[best]] {
							best, bestTied = vi, false
						} else if v == vals[group[best]] {
							bestTied = true
						}
					}
					if !bestTied {
						wins[best]++
					}
					count++
				}
			}
		}

		// Per-family value rankings and their mean pairwise Kendall-tau.
		ranks := make([][]int, len(fams))
		famInsts := 0
		for fi, f := range fams {
			n := float64(len(byFam[f.Name]) * len(groups))
			means := make([]float64, ax.n)
			for vi := range means {
				means[vi] = famSum[fi][vi] / n
			}
			ranks[fi] = rankAscending(means)
			famInsts += len(byFam[f.Name])
		}
		var tauTotal float64
		pairs := 0
		for i := 0; i < len(fams); i++ {
			for j := i + 1; j < len(fams); j++ {
				tauTotal += kendallTau(ranks[i], ranks[j])
				pairs++
			}
		}
		tau := 1.0
		if pairs > 0 {
			tau = tauTotal / float64(pairs)
		}

		for vi := 0; vi < ax.n; vi++ {
			tauCell := ""
			if vi == 0 {
				tauCell = fmt.Sprintf("%.3f", tau)
			}
			t.AddRow(ax.name, ax.val(vi),
				fmt.Sprintf("%.3f", sum[vi]/float64(count)),
				fmt.Sprintf("%+.3f", delta[vi]/float64(count)),
				fmt.Sprintf("%.1f%%", 100*float64(wins[vi])/float64(count)),
				tauCell)
		}
	}
	if err := t.Render(cfg.Out); err != nil {
		return err
	}

	// The best combinations overall, with the classic algorithms they
	// correspond to (if any) for orientation.
	type comboMean struct {
		ci   int
		mean float64
	}
	totalInsts := 0
	for _, f := range fams {
		totalInsts += len(byFam[f.Name])
	}
	means := make([]comboMean, len(combos))
	for ci := range combos {
		var s float64
		for fi := range fams {
			for ii := range nsl[fi] {
				s += nsl[fi][ii][ci]
			}
		}
		means[ci] = comboMean{ci, s / float64(totalInsts)}
	}
	// Selection sort of the top 5: deterministic, ties to combo order.
	top := 5
	if top > len(means) {
		top = len(means)
	}
	named := map[string]string{}
	for _, reg := range param.Named() {
		named[reg.Combo.Name()] = reg.Name
	}
	fmt.Fprintf(cfg.Out, "best combinations (%s): ", label)
	for k := 0; k < top; k++ {
		best := k
		for i := k + 1; i < len(means); i++ {
			if means[i].mean < means[best].mean {
				best = i
			}
		}
		means[k], means[best] = means[best], means[k]
		name := combos[means[k].ci].Name()
		if alias, ok := named[name]; ok {
			name += "=" + alias
		}
		if k > 0 {
			fmt.Fprint(cfg.Out, ", ")
		}
		fmt.Fprintf(cfg.Out, "%s %.3f", name, means[k].mean)
	}
	fmt.Fprintln(cfg.Out)
	return nil
}
