package core

import (
	"time"

	"repro/internal/obs"
)

// Engine metrics: scheduling runs, runner cell fan-out, and SuiteCache
// reuse. All are gated on obs.EnableMetrics; disabled they cost one
// atomic load per site.
var (
	// algRuns counts Algorithm.RunOn invocations — one per measured
	// scheduling run, over every class.
	algRuns = obs.NewCounter("core.alg.runs")
	// cellsRun counts experiment cells executed by the runner.
	cellsRun = obs.NewCounter("core.runner.cells")
	// cellInflight tracks concurrently executing cells; its high-water
	// mark shows the parallelism an experiment actually reached.
	cellInflight = obs.NewGauge("core.runner.inflight")
	// cellMicros distributes per-cell wall time in microseconds.
	cellMicros = obs.NewHistogram("core.runner.cell_us",
		100, 1000, 10_000, 100_000, 1_000_000, 10_000_000)
	// cacheHits/cacheMisses count SuiteCache suite lookups served from
	// memory vs computed cold.
	cacheHits   = obs.NewCounter("core.cache.hit")
	cacheMisses = obs.NewCounter("core.cache.miss")
)

// instrumentCell runs one planned cell under the runner metrics. The
// timing reads the clock only when metrics are on, so the disabled path
// is exactly the bare cell call behind one atomic load.
func instrumentCell[T any](cell func() (T, error)) (T, error) {
	if !obs.MetricsEnabled() {
		return cell()
	}
	cellsRun.Inc()
	cellInflight.Add(1)
	t0 := time.Now()
	v, err := cell()
	cellMicros.Observe(time.Since(t0).Microseconds())
	cellInflight.Add(-1)
	return v, err
}
