package core

import (
	"fmt"
	"sort"

	"repro/internal/gen"
	"repro/internal/sim"
	"repro/internal/table"
)

// This file implements the execution-robustness study (experiment id
// "robust"). The paper ranks algorithms by the static makespan of the
// schedule they emit; Beránek et al. ("Analysis of Workflow Schedulers
// in Simulated Distributed Environments") show such rankings can flip
// once schedules execute under stochastic task durations and network
// contention. The study executes every schedule in the internal/sim
// discrete-event simulator under lognormal duration and communication
// noise — Monte-Carlo over many trials with paired perturbations
// across algorithms — and reports, per generator family, each
// algorithm's realized-makespan statistics and how well the realized
// ranking agrees with the static one.

// robustFamily is one generator family's instance set for the study.
type robustFamily struct {
	name   string
	graphs []gen.NamedGraph
}

// robustPoints returns the matched (size, CCR, instances-per-point)
// grid sampled from every random family.
func robustPoints(s Scale) (sizes []int, ccrs []float64, instances int) {
	if s == Full {
		return []int{50, 100, 200}, []float64{0.1, 1.0, 10.0}, 3
	}
	return []int{40, 80}, []float64{0.5, 2.0}, 2
}

// robustTrials returns the Monte-Carlo trial count per schedule.
func robustTrials(s Scale) int {
	if s == Full {
		return 200
	}
	return 25
}

// robustPerturb is the perturbation model of the study: mean-one
// lognormal multipliers with log-stddev 0.3 on both task durations and
// communication costs — heavy enough tails to surface ranking flips,
// light enough that schedules stay recognizable.
func robustPerturb() sim.Perturbation {
	return sim.Perturbation{Dist: sim.DistLognormal, TaskSpread: 0.3, CommSpread: 0.3}
}

// robustCell is one (algorithm × instance) study cell: the
// Monte-Carlo statistics of executing that schedule (Stats.Static
// carries the planned makespan).
type robustCell struct {
	stats sim.Stats
}

// robustSeed mixes the per-instance simulation seed. It depends only
// on the instance — never the algorithm — so every algorithm's
// schedule executes under identical perturbations (paired trials).
func robustSeed(seed int64, fi, gi int) int64 {
	return seed + int64(fi+1)*1_000_003 + int64(gi+1)*7_919
}

// runRobustTrials verifies the zero-variance anchor and runs the
// Monte-Carlo trials for one compiled schedule.
func runRobustTrials(plan *sim.Plan, static int64, opts sim.Options, trials int, label string) (robustCell, error) {
	zero, err := plan.Run(sim.Options{}, 0)
	if err != nil {
		return robustCell{}, fmt.Errorf("robust: %s: %w", label, err)
	}
	if zero != static {
		return robustCell{}, fmt.Errorf("robust: %s: zero-variance simulation yields %d, static makespan is %d",
			label, zero, static)
	}
	stats, err := sim.MonteCarlo(plan, opts, trials)
	if err != nil {
		return robustCell{}, fmt.Errorf("robust: %s: %w", label, err)
	}
	return robustCell{stats: stats}, nil
}

// Robust runs the Monte-Carlo execution-robustness study: the BNP
// algorithms (clique model) and the APN algorithms (hypercube with
// per-link contention) over every registered generator family,
// simulating each schedule under perturbed durations. Per family and
// algorithm it reports the mean and P99 realized/static makespan
// ratio and the realized-makespan rank; the tau column is the
// Kendall-tau agreement between the family's realized ranking and its
// static ranking (1 = execution noise never reorders the algorithms).
// Before any trial, every schedule is executed once unperturbed and
// must reproduce its static makespan exactly. Output is deterministic
// in (seed, scale) and byte-identical for every worker count.
func Robust(cfg Config) error {
	fams, err := suiteCacheFor(cfg).robustSuite(cfg)
	if err != nil {
		return err
	}
	trials := robustTrials(cfg.Scale)
	perturb := robustPerturb()
	topo := apnTopology()
	panels := []struct {
		class Class
		algs  []Algorithm
	}{{BNP, ByClass(BNP)}, {APN, ByClass(APN)}}

	var p plan[robustCell]
	for _, panel := range panels {
		for fi, fam := range fams {
			for gi, ng := range fam.graphs {
				opts := sim.Options{Perturb: perturb, Seed: robustSeed(cfg.Seed, fi, gi)}
				for _, a := range panel.algs {
					a, ng := a, ng
					label := fmt.Sprintf("%s(%s) on %s", a.Name, a.Class, ng.Name)
					switch a.Class {
					case BNP:
						procs := BNPProcs(ng.G.NumNodes())
						p.add(func() (robustCell, error) {
							s, err := a.runBNP(ng.G, procs)
							if err != nil {
								return robustCell{}, fmt.Errorf("robust: %s: %w", label, err)
							}
							static := s.Makespan()
							splan, err := sim.Compile(s)
							s.Release()
							if err != nil {
								return robustCell{}, fmt.Errorf("robust: %s: %w", label, err)
							}
							return runRobustTrials(splan, static, opts, trials, label)
						})
					case APN:
						p.add(func() (robustCell, error) {
							s, err := a.runAPN(ng.G, topo)
							if err != nil {
								return robustCell{}, fmt.Errorf("robust: %s: %w", label, err)
							}
							static := s.Makespan()
							splan, err := sim.CompileAPN(s)
							if err != nil {
								return robustCell{}, fmt.Errorf("robust: %s: %w", label, err)
							}
							return runRobustTrials(splan, static, opts, trials, label)
						})
					}
				}
			}
		}
	}
	results, err := p.run(cfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(cfg.Out, "model: %s task spread %g / comm spread %g, %d trials/schedule, timetable dispatch, paired perturbations across algorithms\n",
		perturb.Dist, perturb.TaskSpread, perturb.CommSpread, trials)
	cur := cursor[robustCell]{rs: results}
	for _, panel := range panels {
		algs := panel.algs
		cols := []string{"family", "graphs"}
		for _, a := range algs {
			cols = append(cols, a.Name)
		}
		cols = append(cols, "tau")
		title := fmt.Sprintf("Realized makespan ratio mean/P99 (realized rank), %s algorithms", panel.class)
		if panel.class == APN {
			title += " on " + topo.Name()
		}
		t := table.New(title, cols...)
		var tauSum float64
		for _, fam := range fams {
			n := len(fam.graphs)
			meanStatic := make([]float64, len(algs))
			meanRealized := make([]float64, len(algs))
			meanRatio := make([]float64, len(algs))
			p99Ratio := make([]float64, len(algs))
			allRatios := make([][]float64, len(algs))
			for range fam.graphs {
				for ai := range algs {
					c := cur.next()
					meanStatic[ai] += float64(c.stats.Static)
					meanRealized[ai] += c.stats.MeanMakespan
					allRatios[ai] = append(allRatios[ai], c.stats.Ratios...)
				}
			}
			for ai := range algs {
				meanStatic[ai] /= float64(n)
				meanRealized[ai] /= float64(n)
				var sum float64
				for _, r := range allRatios[ai] {
					sum += r
				}
				meanRatio[ai] = sum / float64(len(allRatios[ai]))
				sort.Float64s(allRatios[ai])
				p99Ratio[ai] = allRatios[ai][sim.PercentileIndex(len(allRatios[ai]), 0.99)]
			}
			staticRank := rankAscending(meanStatic)
			realizedRank := rankAscending(meanRealized)
			tau := kendallTau(realizedRank, staticRank)
			tauSum += tau
			row := []string{fam.name, fmt.Sprint(n)}
			for ai := range algs {
				row = append(row, fmt.Sprintf("%.3f/%.3f (%d)", meanRatio[ai], p99Ratio[ai], realizedRank[ai]))
			}
			row = append(row, fmt.Sprintf("%.3f", tau))
			t.AddRow(row...)
		}
		if err := t.Render(cfg.Out); err != nil {
			return err
		}
		if len(fams) > 0 {
			fmt.Fprintf(cfg.Out, "%s mean Kendall-tau (realized vs static ranking) across %d families: %.3f\n",
				panel.class, len(fams), tauSum/float64(len(fams)))
		}
	}
	fmt.Fprintln(cfg.Out, "tau: 1 = execution noise never reorders the algorithms; lower = the static ranking is fragile")
	return nil
}
