// Package table renders fixed-width text tables and series (the textual
// equivalent of the paper's figures) for the benchmark harness.
package table

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid with a header row.
type Table struct {
	title   string
	columns []string
	rows    [][]string
}

// New returns an empty table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{title: title, columns: columns}
}

// AddRow appends one row; missing cells render empty, extra cells are
// dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddSeparator appends a horizontal rule row.
func (t *Table) AddSeparator() {
	t.rows = append(t.rows, nil)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.columns))
	for i, c := range t.columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	rule := func() {
		for i := range t.columns {
			b.WriteByte('+')
			b.WriteString(strings.Repeat("-", widths[i]+2))
		}
		b.WriteString("+\n")
	}
	writeRow := func(cells []string) {
		for i := range t.columns {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, "| %-*s ", widths[i], cell)
		}
		b.WriteString("|\n")
	}
	rule()
	writeRow(t.columns)
	rule()
	for _, row := range t.rows {
		if row == nil {
			rule()
			continue
		}
		writeRow(row)
	}
	rule()
	_, err := io.WriteString(w, b.String())
	return err
}

// Series is a set of named lines sampled at shared x values — the text
// rendering of a figure. Lines keep insertion order.
type Series struct {
	title  string
	xLabel string
	xs     []string
	names  []string
	lines  map[string][]float64
}

// NewSeries returns an empty series plot.
func NewSeries(title, xLabel string, xs ...string) *Series {
	return &Series{title: title, xLabel: xLabel, xs: xs, lines: map[string][]float64{}}
}

// Set records the y value of line name at x index i.
func (s *Series) Set(name string, i int, y float64) {
	if _, ok := s.lines[name]; !ok {
		s.names = append(s.names, name)
		s.lines[name] = make([]float64, len(s.xs))
	}
	s.lines[name][i] = y
}

// Render writes the series as a table with one row per x value.
func (s *Series) Render(w io.Writer) error {
	cols := append([]string{s.xLabel}, s.names...)
	t := New(s.title, cols...)
	for i, x := range s.xs {
		row := make([]string, 0, len(cols))
		row = append(row, x)
		for _, name := range s.names {
			row = append(row, fmt.Sprintf("%.3f", s.lines[name][i]))
		}
		t.AddRow(row...)
	}
	return t.Render(w)
}
