package table

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := New("demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22")
	tb.AddSeparator()
	tb.AddRow("gamma") // missing cell renders empty
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"demo", "| name", "| alpha", "| 22", "+---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	width := len(lines[1])
	for i, l := range lines[1:] {
		if len(l) != width {
			t.Errorf("line %d has width %d, want %d:\n%s", i, len(l), width, out)
		}
	}
}

func TestTableExtraCellsDropped(t *testing.T) {
	tb := New("", "only")
	tb.AddRow("a", "extra", "more")
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "extra") {
		t.Error("extra cell rendered")
	}
}

func TestSeriesRender(t *testing.T) {
	s := NewSeries("fig", "x", "1", "2", "3")
	s.Set("up", 0, 1)
	s.Set("up", 1, 2)
	s.Set("up", 2, 3)
	s.Set("down", 2, 0.5)
	var b strings.Builder
	if err := s.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"fig", "| x", "| up", "| down", "2.000", "0.500"} {
		if !strings.Contains(out, want) {
			t.Errorf("series output missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesLineOrderStable(t *testing.T) {
	s := NewSeries("", "x", "1")
	s.Set("zeta", 0, 1)
	s.Set("alpha", 0, 2)
	var b strings.Builder
	if err := s.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Index(out, "zeta") > strings.Index(out, "alpha") {
		t.Error("line insertion order not preserved")
	}
}
