package dag

import (
	"bytes"
	"testing"
)

// FuzzTGRoundTrip feeds arbitrary bytes to the .tg text-format parser.
// Malformed input must produce an error, never a panic; input the
// parser accepts must serialize and re-parse to a byte-identical
// canonical form (WriteText is the canonicalizer: node IDs renumbered
// in insertion order, edges in CSR order), and every accepted graph
// must satisfy the structural DAG invariants.
func FuzzTGRoundTrip(f *testing.F) {
	f.Add([]byte("nodes 2\nnode 0 5\nnode 1 3\nedge 0 1 2\n"))
	f.Add([]byte("node 0 1 entry\nnode 7 2 exit\nedge 0 7 4\n"))
	f.Add([]byte("# comment\n\nnodes 1\nnode 3 0\n"))
	f.Add([]byte("nodes 0\n"))
	f.Add([]byte("edge 0 1 2\n"))
	f.Add([]byte("node 0 -1\n"))
	f.Add([]byte("nodes 9999999999999999999\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadText(bytes.NewReader(data))
		if err != nil {
			return // rejecting malformed input is the expected path
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v\ninput: %q", err, data)
		}
		var first bytes.Buffer
		if err := WriteText(&first, g); err != nil {
			t.Fatalf("serializing accepted graph: %v", err)
		}
		g2, err := ReadText(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-parsing serialized graph: %v\nserialized: %q", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := WriteText(&second, g2); err != nil {
			t.Fatalf("re-serializing graph: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("round trip is not a fixed point:\nfirst:  %q\nsecond: %q", first.Bytes(), second.Bytes())
		}
		if g.NumNodes() != g2.NumNodes() || g.NumEdges() != g2.NumEdges() {
			t.Fatalf("round trip changed size: %d/%d nodes, %d/%d edges",
				g.NumNodes(), g2.NumNodes(), g.NumEdges(), g2.NumEdges())
		}
	})
}
