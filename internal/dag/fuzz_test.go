package dag

import (
	"bytes"
	"testing"
)

// FuzzTGRoundTrip feeds arbitrary bytes to the .tg text-format parser.
// Malformed input must produce an error, never a panic; input the
// parser accepts must serialize and re-parse to a byte-identical
// canonical form (WriteText is the canonicalizer: node IDs renumbered
// in insertion order, edges in CSR order), and every accepted graph
// must satisfy the structural DAG invariants.
func FuzzTGRoundTrip(f *testing.F) {
	f.Add([]byte("nodes 2\nnode 0 5\nnode 1 3\nedge 0 1 2\n"))
	f.Add([]byte("node 0 1 entry\nnode 7 2 exit\nedge 0 7 4\n"))
	f.Add([]byte("# comment\n\nnodes 1\nnode 3 0\n"))
	f.Add([]byte("nodes 0\n"))
	f.Add([]byte("edge 0 1 2\n"))
	f.Add([]byte("node 0 -1\n"))
	f.Add([]byte("nodes 9999999999999999999\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadText(bytes.NewReader(data))
		if err != nil {
			return // rejecting malformed input is the expected path
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v\ninput: %q", err, data)
		}
		var first bytes.Buffer
		if err := WriteText(&first, g); err != nil {
			t.Fatalf("serializing accepted graph: %v", err)
		}
		g2, err := ReadText(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-parsing serialized graph: %v\nserialized: %q", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := WriteText(&second, g2); err != nil {
			t.Fatalf("re-serializing graph: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("round trip is not a fixed point:\nfirst:  %q\nsecond: %q", first.Bytes(), second.Bytes())
		}
		if g.NumNodes() != g2.NumNodes() || g.NumEdges() != g2.NumEdges() {
			t.Fatalf("round trip changed size: %d/%d nodes, %d/%d edges",
				g.NumNodes(), g2.NumNodes(), g.NumEdges(), g2.NumEdges())
		}
	})
}

// FuzzTGBRoundTrip feeds arbitrary bytes to the .tgb binary parser.
// Malformed input must produce an error, never a panic or an oversized
// allocation; input the parser accepts must satisfy the DAG invariants,
// serialize back through WriteBinaryMeta to a byte stream the parser
// maps to the same graph (ReadBinary∘WriteBinary is a fixed point past
// the first serialization), and agree with the text format's canonical
// form in both directions.
func FuzzTGBRoundTrip(f *testing.F) {
	// Seed with real encodings plus headers that probe the guards.
	for _, g := range fuzzSeedGraphs() {
		var buf bytes.Buffer
		if err := WriteBinaryMeta(&buf, g, "# adv seed\n"); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(BinaryMagic))
	f.Add([]byte(BinaryMagic + "\x01\x01\x00\x07\x00\x01\x00\x03"))
	f.Add([]byte(BinaryMagic + "\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Add([]byte("nodes 1\nnode 0 5\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, meta, err := ReadBinaryMeta(bytes.NewReader(data))
		if err != nil {
			return // rejecting malformed input is the expected path
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var first bytes.Buffer
		if err := WriteBinaryMeta(&first, g, meta); err != nil {
			t.Fatalf("serializing accepted graph: %v", err)
		}
		g2, meta2, err := ReadBinaryMeta(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-parsing serialized graph: %v", err)
		}
		if meta2 != meta {
			t.Fatalf("metadata changed: %q -> %q", meta, meta2)
		}
		var second bytes.Buffer
		if err := WriteBinaryMeta(&second, g2, meta2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("binary round trip is not a fixed point")
		}
		// Cross-format: canonical text form survives a binary hop.
		var t1, t2 bytes.Buffer
		if err := WriteText(&t1, g); err != nil {
			t.Fatal(err)
		}
		if err := WriteText(&t2, g2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
			t.Fatalf("text form changed across binary round trip")
		}
		gt, err := ReadText(bytes.NewReader(t1.Bytes()))
		if err != nil {
			t.Fatalf("canonical text form of accepted binary graph rejected: %v", err)
		}
		if gt.NumNodes() != g.NumNodes() || gt.NumEdges() != g.NumEdges() {
			t.Fatalf("text hop changed size: %d/%d nodes, %d/%d edges",
				g.NumNodes(), gt.NumNodes(), g.NumEdges(), gt.NumEdges())
		}
	})
}

func fuzzSeedGraphs() []*Graph {
	var graphs []*Graph
	empty := NewBuilder()
	graphs = append(graphs, empty.MustBuild())
	chain := NewBuilder()
	a := chain.AddLabeledNode(3, "entry")
	b := chain.AddNode(5)
	c := chain.AddLabeledNode(2, "exit")
	chain.AddEdge(a, b, 4)
	chain.AddEdge(b, c, 1)
	graphs = append(graphs, chain.MustBuild())
	fan := NewBuilder()
	root := fan.AddNode(1)
	for i := 0; i < 6; i++ {
		fan.AddEdge(root, fan.AddNode(int64(i)), int64(10*i))
	}
	graphs = append(graphs, fan.MustBuild())
	return graphs
}
