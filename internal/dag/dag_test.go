package dag

import (
	"strings"
	"testing"
)

// diamond builds the four-node diamond used by several tests:
//
//	a(2) --1--> b(3) --2--> d(1)
//	a(2) --5--> c(4) --3--> d(1)
func diamond(t *testing.T) (*Graph, [4]NodeID) {
	t.Helper()
	b := NewBuilder()
	na := b.AddLabeledNode(2, "a")
	nb := b.AddLabeledNode(3, "b")
	nc := b.AddLabeledNode(4, "c")
	nd := b.AddLabeledNode(1, "d")
	b.AddEdge(na, nb, 1)
	b.AddEdge(na, nc, 5)
	b.AddEdge(nb, nd, 2)
	b.AddEdge(nc, nd, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g, [4]NodeID{na, nb, nc, nd}
}

func TestBuilderBasics(t *testing.T) {
	g, ids := diamond(t)
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if w := g.Weight(ids[2]); w != 4 {
		t.Errorf("Weight(c) = %d, want 4", w)
	}
	if l := g.Label(ids[3]); l != "d" {
		t.Errorf("Label(d) = %q, want d", l)
	}
	if w, ok := g.EdgeWeight(ids[0], ids[2]); !ok || w != 5 {
		t.Errorf("EdgeWeight(a,c) = %d,%v want 5,true", w, ok)
	}
	if _, ok := g.EdgeWeight(ids[1], ids[2]); ok {
		t.Error("EdgeWeight(b,c) should not exist")
	}
	if g.HasEdge(ids[3], ids[0]) {
		t.Error("HasEdge(d,a) should be false")
	}
	if d := g.OutDegree(ids[0]); d != 2 {
		t.Errorf("OutDegree(a) = %d, want 2", d)
	}
	if d := g.InDegree(ids[3]); d != 2 {
		t.Errorf("InDegree(d) = %d, want 2", d)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestEntriesExits(t *testing.T) {
	g, ids := diamond(t)
	entries := g.Entries()
	if len(entries) != 1 || entries[0] != ids[0] {
		t.Errorf("Entries = %v, want [a]", entries)
	}
	exits := g.Exits()
	if len(exits) != 1 || exits[0] != ids[3] {
		t.Errorf("Exits = %v, want [d]", exits)
	}
}

func TestTotalsAndCCR(t *testing.T) {
	g, _ := diamond(t)
	if c := g.TotalComputation(); c != 10 {
		t.Errorf("TotalComputation = %d, want 10", c)
	}
	if c := g.TotalCommunication(); c != 11 {
		t.Errorf("TotalCommunication = %d, want 11", c)
	}
	// avg comm = 11/4, avg comp = 10/4 -> CCR = 11/10.
	if ccr := g.CCR(); ccr < 1.09 || ccr > 1.11 {
		t.Errorf("CCR = %v, want 1.1", ccr)
	}
}

func TestCCREmptyAndEdgeless(t *testing.T) {
	b := NewBuilder()
	b.AddNode(5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.CCR() != 0 {
		t.Errorf("edgeless CCR = %v, want 0", g.CCR())
	}
	empty, err := NewBuilder().Build()
	if err != nil {
		t.Fatal(err)
	}
	if empty.CCR() != 0 {
		t.Errorf("empty CCR = %v, want 0", empty.CCR())
	}
	if empty.NumNodes() != 0 || empty.NumEdges() != 0 {
		t.Error("empty graph should have no nodes or edges")
	}
}

func TestTopoOrderIsTopological(t *testing.T) {
	g, _ := diamond(t)
	pos := make(map[NodeID]int)
	for i, v := range g.TopoOrder() {
		pos[v] = i
	}
	if len(pos) != g.NumNodes() {
		t.Fatalf("topo order has %d nodes, want %d", len(pos), g.NumNodes())
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, a := range g.Succs(NodeID(v)) {
			if pos[NodeID(v)] >= pos[a.To] {
				t.Errorf("edge (%d,%d) violates topo order", v, a.To)
			}
		}
	}
}

func TestTopoOrderReturnsCopy(t *testing.T) {
	g, _ := diamond(t)
	o1 := g.TopoOrder()
	o1[0] = 99
	o2 := g.TopoOrder()
	if o2[0] == 99 {
		t.Error("TopoOrder aliases internal state")
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder)
	}{
		{"negative node cost", func(b *Builder) { b.AddNode(-1) }},
		{"unknown endpoint", func(b *Builder) {
			n := b.AddNode(1)
			b.AddEdge(n, n+5, 0)
		}},
		{"self loop", func(b *Builder) {
			n := b.AddNode(1)
			b.AddEdge(n, n, 1)
		}},
		{"negative edge cost", func(b *Builder) {
			u, v := b.AddNode(1), b.AddNode(1)
			b.AddEdge(u, v, -2)
		}},
		{"duplicate edge", func(b *Builder) {
			u, v := b.AddNode(1), b.AddNode(1)
			b.AddEdge(u, v, 1)
			b.AddEdge(u, v, 2)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder()
			tc.build(b)
			if _, err := b.Build(); err == nil {
				t.Error("Build succeeded, want error")
			}
		})
	}
}

func TestBuildCycleDetection(t *testing.T) {
	b := NewBuilder()
	x := b.AddNode(1)
	y := b.AddNode(1)
	z := b.AddNode(1)
	b.AddEdge(x, y, 1)
	b.AddEdge(y, z, 1)
	b.AddEdge(z, x, 1)
	if _, err := b.Build(); err != ErrCycle {
		t.Errorf("Build err = %v, want ErrCycle", err)
	}
}

func TestBuilderDetachesAfterBuild(t *testing.T) {
	b := NewBuilder()
	b.AddNode(1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the builder after Build must not affect the built graph.
	b.AddNode(7)
	if g.NumNodes() != 1 {
		t.Errorf("graph mutated through builder: NumNodes = %d", g.NumNodes())
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on invalid graph")
		}
	}()
	b := NewBuilder()
	b.AddNode(-5)
	b.MustBuild()
}

func TestReachable(t *testing.T) {
	g, ids := diamond(t)
	if !Reachable(g, ids[0], ids[3]) {
		t.Error("a should reach d")
	}
	if Reachable(g, ids[1], ids[2]) {
		t.Error("b should not reach c")
	}
	if Reachable(g, ids[3], ids[0]) {
		t.Error("d should not reach a")
	}
	if Reachable(g, ids[0], ids[0]) {
		t.Error("a is not strictly reachable from itself")
	}
}

func TestDOTContainsStructure(t *testing.T) {
	g, _ := diamond(t)
	dot := DOT(g, "demo")
	for _, want := range []string{"digraph", "0 -> 1", "2 -> 3", "label=\"a", "label=\"5\""} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g, _ := diamond(t)
	// Break the mirror invariant directly: rewrite node 3's only
	// predecessor arcs to point at the wrong parent.
	for i := g.predOff[3]; i < g.predOff[4]; i++ {
		g.predArcs[i].To = 3 - g.predArcs[i].To
		break
	}
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted corrupted graph")
	}
}
