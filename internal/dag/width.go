package dag

import "math/bits"

// Width returns the width of the DAG: the largest number of pairwise
// non-precedence-related nodes (the maximum antichain of the reachability
// partial order). The RGNOS benchmark suite controls this parameter
// through its "parallelism" knob (paper section 5.4), and Width gives the
// exact value for validating generated graphs.
//
// By Dilworth's theorem the maximum antichain equals n minus the maximum
// bipartite matching on the transitive closure (Fulkerson's reduction of
// minimum chain cover to matching). The closure is computed with bitsets
// in O(n·m/64); the matching uses Kuhn's augmenting-path algorithm, which
// is comfortably fast for benchmark-sized graphs (n ≤ a few thousand).
func Width(g *Graph) int {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	reach := transitiveClosure(g)
	// match[v] = u means chain edge u→v is in the matching, u,v in 0..n-1.
	matchTo := make([]int32, n) // right side: which left vertex claimed it
	for i := range matchTo {
		matchTo[i] = -1
	}
	seen := make([]bool, n)
	var try func(u int) bool
	try = func(u int) bool {
		row := reach[u]
		for w := 0; w < len(row); w++ {
			word := row[w]
			for word != 0 {
				v := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				if seen[v] {
					continue
				}
				seen[v] = true
				if matchTo[v] < 0 || try(int(matchTo[v])) {
					matchTo[v] = int32(u)
					return true
				}
			}
		}
		return false
	}
	matched := 0
	for u := 0; u < n; u++ {
		for i := range seen {
			seen[i] = false
		}
		if try(u) {
			matched++
		}
	}
	return n - matched
}

// transitiveClosure returns, for each node, a bitset of all strictly
// reachable nodes (excluding the node itself).
func transitiveClosure(g *Graph) [][]uint64 {
	n := g.NumNodes()
	words := (n + 63) / 64
	reach := make([][]uint64, n)
	buf := make([]uint64, n*words)
	for v := 0; v < n; v++ {
		reach[v] = buf[v*words : (v+1)*words]
	}
	topo := g.topoOrder()
	for i := n - 1; i >= 0; i-- {
		v := topo[i]
		row := reach[v]
		for _, a := range g.Succs(v) {
			row[a.To/64] |= 1 << (uint(a.To) % 64)
			child := reach[a.To]
			for w := range row {
				row[w] |= child[w]
			}
		}
	}
	return reach
}

// Reachable reports whether v is reachable from u by a non-empty directed
// path. It runs a DFS and is intended for tests and small graphs; use
// transitiveClosure-based bulk queries for large workloads.
func Reachable(g *Graph, u, v NodeID) bool {
	if u == v {
		return false
	}
	seen := make([]bool, g.NumNodes())
	stack := []NodeID{u}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.Succs(x) {
			if a.To == v {
				return true
			}
			if !seen[a.To] {
				seen[a.To] = true
				stack = append(stack, a.To)
			}
		}
	}
	return false
}
