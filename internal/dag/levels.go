package dag

// Levels bundles the standard scheduling attributes of a graph
// (paper section 3):
//
//   - T: the t-level (top level) of each node — the length of the longest
//     path from an entry node to the node, excluding the node's own
//     weight; node and edge weights both count toward path length.
//   - B: the b-level (bottom level) — the length of the longest path from
//     the node to an exit node, including the node's own weight.
//   - Static: the static level — the b-level computed with all
//     communication costs ignored (used by HLFET, ISH, ETF, DLS, MH).
//   - ALAP: the as-late-as-possible start time, CPLength − B.
//
// CPLength is the critical-path length: the maximum T+B over all nodes.
type Levels struct {
	T        []int64
	B        []int64
	Static   []int64
	ALAP     []int64
	CPLength int64
}

// ComputeLevels computes every level attribute in two passes over the
// topological order.
func ComputeLevels(g *Graph) *Levels {
	lv := &Levels{}
	lv.Compute(g)
	return lv
}

// Compute fills lv with the level attributes of g, reusing the existing
// backing arrays when they are large enough. This is the allocation-free
// path for schedulers that recompute levels per run on pooled scratch.
func (lv *Levels) Compute(g *Graph) {
	n := g.NumNodes()
	lv.T = resizeInt64(lv.T, n)
	lv.B = resizeInt64(lv.B, n)
	lv.Static = resizeInt64(lv.Static, n)
	lv.ALAP = resizeInt64(lv.ALAP, n)
	lv.CPLength = 0
	topo := g.topoOrder()
	for _, v := range topo {
		var t int64
		for _, p := range g.Preds(v) {
			if c := lv.T[p.To] + g.Weight(p.To) + p.Weight; c > t {
				t = c
			}
		}
		lv.T[v] = t
	}
	for i := n - 1; i >= 0; i-- {
		v := topo[i]
		var b, s int64
		for _, a := range g.Succs(v) {
			if c := a.Weight + lv.B[a.To]; c > b {
				b = c
			}
			if lv.Static[a.To] > s {
				s = lv.Static[a.To]
			}
		}
		lv.B[v] = b + g.Weight(v)
		lv.Static[v] = s + g.Weight(v)
	}
	for v := 0; v < n; v++ {
		if c := lv.T[v] + lv.B[v]; c > lv.CPLength {
			lv.CPLength = c
		}
	}
	for v := 0; v < n; v++ {
		lv.ALAP[v] = lv.CPLength - lv.B[v]
	}
}

// resizeInt64 returns a slice of length n, reusing s's backing array
// when it has the capacity.
func resizeInt64(s []int64, n int) []int64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int64, n)
}

// TLevels returns only the t-levels of the graph.
func TLevels(g *Graph) []int64 { return ComputeLevels(g).T }

// BLevels returns only the b-levels of the graph.
func BLevels(g *Graph) []int64 { return ComputeLevels(g).B }

// StaticLevels returns only the static (communication-free) b-levels.
func StaticLevels(g *Graph) []int64 { return ComputeLevels(g).Static }

// CriticalPathLength returns the length of the critical path: the longest
// entry-to-exit path counting node and edge weights.
func CriticalPathLength(g *Graph) int64 { return ComputeLevels(g).CPLength }

// CriticalPath returns one critical path of the graph as a node sequence
// from an entry node to an exit node. Among equal-length choices the
// smallest node ID is taken, so the result is deterministic. The empty
// graph yields nil.
func CriticalPath(g *Graph) []NodeID {
	if g.NumNodes() == 0 {
		return nil
	}
	lv := ComputeLevels(g)
	return criticalPathFrom(g, lv)
}

func criticalPathFrom(g *Graph, lv *Levels) []NodeID {
	cur := None
	for _, e := range g.Entries() {
		if lv.B[e] == lv.CPLength {
			cur = e
			break
		}
	}
	if cur == None {
		return nil
	}
	path := []NodeID{cur}
	for {
		next := None
		for _, a := range g.Succs(cur) {
			// The successor continues the critical path when the edge is
			// tight on both sides of the longest-path recurrence.
			if lv.T[cur]+g.Weight(cur)+a.Weight == lv.T[a.To] &&
				lv.T[a.To]+lv.B[a.To] == lv.CPLength {
				if next == None || a.To < next {
					next = a.To
				}
			}
		}
		if next == None {
			return path
		}
		path = append(path, next)
		cur = next
	}
}

// CPComputationSum returns the sum of the computation costs of the nodes
// on one critical path. This is the denominator of the normalized
// schedule length (NSL) measure in paper section 6, and a lower bound on
// any schedule length.
func CPComputationSum(g *Graph) int64 {
	var sum int64
	for _, n := range CriticalPath(g) {
		sum += g.Weight(n)
	}
	return sum
}

// CPNodes returns the set of all nodes that lie on at least one critical
// path, marked in a boolean slice indexed by NodeID. Critical-path-based
// algorithms (MCP, DCP, BU, BSA) give these nodes scheduling preference.
func CPNodes(g *Graph) []bool {
	lv := ComputeLevels(g)
	on := make([]bool, g.NumNodes())
	for v := range on {
		on[v] = lv.T[v]+lv.B[v] == lv.CPLength
	}
	return on
}
