package dag

import "fmt"

// TransitiveReduction returns a new graph with every redundant edge
// removed: an edge (u,v) is redundant when v is reachable from u through
// some longer path. Node weights and the weights of surviving edges are
// preserved. Scheduling semantics are *not* invariant under reduction —
// a removed edge's communication no longer costs anything — so this is
// an analysis and preprocessing tool (the paper's traced graphs come
// from compilers, which emit reduced dependence graphs), not a free
// optimization.
func TransitiveReduction(g *Graph) (*Graph, error) {
	n := g.NumNodes()
	reach := transitiveClosure(g)
	b := NewBuilder()
	for v := 0; v < n; v++ {
		b.AddLabeledNode(g.Weight(NodeID(v)), g.Label(NodeID(v)))
	}
	for u := 0; u < n; u++ {
		for _, a := range g.Succs(NodeID(u)) {
			if !reachableThroughOther(g, reach, NodeID(u), a.To) {
				b.AddEdge(NodeID(u), a.To, a.Weight)
			}
		}
	}
	return b.Build()
}

// reachableThroughOther reports whether v is reachable from u via some
// intermediate successor (making the direct edge redundant).
func reachableThroughOther(g *Graph, reach [][]uint64, u, v NodeID) bool {
	for _, a := range g.Succs(u) {
		if a.To == v {
			continue
		}
		if reach[a.To][v/64]&(1<<(uint(v)%64)) != 0 {
			return true
		}
	}
	return false
}

// Stats summarizes the structural properties that the benchmark suites
// parameterize (paper section 5): size, degree distribution, depth
// (number of nodes on the longest chain), width, and CCR.
type Stats struct {
	Nodes, Edges       int
	Entries, Exits     int
	MaxIn, MaxOut      int
	Depth              int // nodes on the longest path (ignoring weights)
	Width              int // maximum antichain; -1 when skipped (see WidthExactCutoff)
	CPLength           int64
	TotalComputation   int64
	TotalCommunication int64
	CCR                float64
}

// WidthExactCutoff is the largest node count for which ComputeStats
// computes the exact width. Width's transitive-closure bitsets cost
// O(n²/8) bytes — a terabyte at a million nodes — so past the cutoff
// ComputeStats reports Width as -1 (rendered "-") instead; every other
// statistic is O(V+E) and always computed.
const WidthExactCutoff = 10000

// ComputeStats returns the structural summary of g.
func ComputeStats(g *Graph) Stats {
	st := Stats{
		Nodes:              g.NumNodes(),
		Edges:              g.NumEdges(),
		Entries:            len(g.Entries()),
		Exits:              len(g.Exits()),
		Width:              -1,
		CPLength:           CriticalPathLength(g),
		TotalComputation:   g.TotalComputation(),
		TotalCommunication: g.TotalCommunication(),
		CCR:                g.CCR(),
	}
	if g.NumNodes() <= WidthExactCutoff {
		st.Width = Width(g)
	}
	depth := make([]int, g.NumNodes())
	for _, v := range g.topoOrder() {
		if g.InDegree(v) > st.MaxIn {
			st.MaxIn = g.InDegree(v)
		}
		if g.OutDegree(v) > st.MaxOut {
			st.MaxOut = g.OutDegree(v)
		}
		depth[v] = 1
		for _, p := range g.Preds(v) {
			if depth[p.To]+1 > depth[v] {
				depth[v] = depth[p.To] + 1
			}
		}
		if depth[v] > st.Depth {
			st.Depth = depth[v]
		}
	}
	return st
}

// String renders the stats in one line.
func (s Stats) String() string {
	width := "-"
	if s.Width >= 0 {
		width = fmt.Sprintf("%d", s.Width)
	}
	return fmt.Sprintf("v=%d e=%d entries=%d exits=%d maxIn=%d maxOut=%d depth=%d width=%s cp=%d comp=%d comm=%d ccr=%.3f",
		s.Nodes, s.Edges, s.Entries, s.Exits, s.MaxIn, s.MaxOut,
		s.Depth, width, s.CPLength, s.TotalComputation, s.TotalCommunication, s.CCR)
}
