package dag

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz dot format. Node boxes show the label
// (or ID) and the computation cost; edges show the communication cost.
func DOT(g *Graph, name string) string {
	var b strings.Builder
	if name == "" {
		name = "taskgraph"
	}
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=TB;\n  node [shape=circle];\n")
	for v := 0; v < g.NumNodes(); v++ {
		id := NodeID(v)
		label := g.Label(id)
		if label == "" {
			label = fmt.Sprintf("n%d", v)
		}
		fmt.Fprintf(&b, "  %d [label=\"%s\\n%d\"];\n", v, label, g.Weight(id))
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, a := range g.Succs(NodeID(v)) {
			fmt.Fprintf(&b, "  %d -> %d [label=\"%d\"];\n", v, a.To, a.Weight)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
