package dag

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	g, _ := diamond(t)
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	assertGraphsEqual(t, g, got)
}

func TestTextRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		g := randomLayeredGraph(rng, 1+rng.Intn(40))
		var buf bytes.Buffer
		if err := WriteText(&buf, g); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		got, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("ReadText: %v", err)
		}
		assertGraphsEqual(t, g, got)
	}
}

func assertGraphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("size mismatch: %d/%d nodes, %d/%d edges",
			a.NumNodes(), b.NumNodes(), a.NumEdges(), b.NumEdges())
	}
	for v := 0; v < a.NumNodes(); v++ {
		id := NodeID(v)
		if a.Weight(id) != b.Weight(id) {
			t.Fatalf("node %d weight %d != %d", v, a.Weight(id), b.Weight(id))
		}
		if a.Label(id) != b.Label(id) {
			t.Fatalf("node %d label %q != %q", v, a.Label(id), b.Label(id))
		}
		for _, arc := range a.Succs(id) {
			w, ok := b.EdgeWeight(id, arc.To)
			if !ok || w != arc.Weight {
				t.Fatalf("edge (%d,%d) weight %d missing or %d", v, arc.To, arc.Weight, w)
			}
		}
	}
}

func TestReadTextComments(t *testing.T) {
	src := `
# a tiny graph
nodes 2
node 0 10 first
node 1 20

edge 0 1 7
`
	g, err := ReadText(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("parsed %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Label(0) != "first" || g.Weight(1) != 20 {
		t.Error("node attributes not parsed")
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := map[string]string{
		"bad directive":     "frobnicate 1 2\n",
		"bad node count":    "nodes -3\n",
		"short node":        "node 0\n",
		"bad node weight":   "node 0 xyz\n",
		"duplicate node":    "node 0 1\nnode 0 2\n",
		"short edge":        "node 0 1\nnode 1 1\nedge 0 1\n",
		"undeclared node":   "node 0 1\nedge 0 7 3\n",
		"count mismatch":    "nodes 5\nnode 0 1\n",
		"cycle in file":     "node 0 1\nnode 1 1\nedge 0 1 1\nedge 1 0 1\n",
		"negative edge":     "node 0 1\nnode 1 1\nedge 0 1 -4\n",
		"bad edge endpoint": "node 0 1\nnode 1 1\nedge 0 q 1\n",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadText(strings.NewReader(src)); err == nil {
				t.Errorf("ReadText accepted %q", src)
			}
		})
	}
}
