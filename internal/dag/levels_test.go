package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestComputeLevelsDiamond(t *testing.T) {
	g, ids := diamond(t)
	lv := ComputeLevels(g)
	a, b, c, d := ids[0], ids[1], ids[2], ids[3]

	wantT := map[NodeID]int64{a: 0, b: 3, c: 7, d: 14}
	wantB := map[NodeID]int64{a: 15, b: 6, c: 8, d: 1}
	wantS := map[NodeID]int64{a: 7, b: 4, c: 5, d: 1}
	wantALAP := map[NodeID]int64{a: 0, b: 9, c: 7, d: 14}
	for n, want := range wantT {
		if lv.T[n] != want {
			t.Errorf("T[%s] = %d, want %d", g.Label(n), lv.T[n], want)
		}
	}
	for n, want := range wantB {
		if lv.B[n] != want {
			t.Errorf("B[%s] = %d, want %d", g.Label(n), lv.B[n], want)
		}
	}
	for n, want := range wantS {
		if lv.Static[n] != want {
			t.Errorf("Static[%s] = %d, want %d", g.Label(n), lv.Static[n], want)
		}
	}
	for n, want := range wantALAP {
		if lv.ALAP[n] != want {
			t.Errorf("ALAP[%s] = %d, want %d", g.Label(n), lv.ALAP[n], want)
		}
	}
	if lv.CPLength != 15 {
		t.Errorf("CPLength = %d, want 15", lv.CPLength)
	}
}

func TestCriticalPathDiamond(t *testing.T) {
	g, ids := diamond(t)
	cp := CriticalPath(g)
	want := []NodeID{ids[0], ids[2], ids[3]} // a -> c -> d
	if len(cp) != len(want) {
		t.Fatalf("CP = %v, want %v", cp, want)
	}
	for i := range cp {
		if cp[i] != want[i] {
			t.Fatalf("CP = %v, want %v", cp, want)
		}
	}
	if sum := CPComputationSum(g); sum != 7 {
		t.Errorf("CPComputationSum = %d, want 7 (2+4+1)", sum)
	}
}

func TestCPNodesDiamond(t *testing.T) {
	g, ids := diamond(t)
	on := CPNodes(g)
	want := map[NodeID]bool{ids[0]: true, ids[1]: false, ids[2]: true, ids[3]: true}
	for n, w := range want {
		if on[n] != w {
			t.Errorf("CPNodes[%s] = %v, want %v", g.Label(n), on[n], w)
		}
	}
}

func TestLevelsSingleNode(t *testing.T) {
	b := NewBuilder()
	n := b.AddNode(9)
	g := b.MustBuild()
	lv := ComputeLevels(g)
	if lv.T[n] != 0 || lv.B[n] != 9 || lv.Static[n] != 9 || lv.ALAP[n] != 0 {
		t.Errorf("single node levels T=%d B=%d S=%d ALAP=%d", lv.T[n], lv.B[n], lv.Static[n], lv.ALAP[n])
	}
	if lv.CPLength != 9 {
		t.Errorf("CPLength = %d, want 9", lv.CPLength)
	}
	cp := CriticalPath(g)
	if len(cp) != 1 || cp[0] != n {
		t.Errorf("CP = %v, want [%d]", cp, n)
	}
}

func TestLevelsChain(t *testing.T) {
	// Chain x(1) -3-> y(2) -4-> z(3): CP length 1+3+2+4+3 = 13.
	b := NewBuilder()
	x := b.AddNode(1)
	y := b.AddNode(2)
	z := b.AddNode(3)
	b.AddEdge(x, y, 3)
	b.AddEdge(y, z, 4)
	g := b.MustBuild()
	lv := ComputeLevels(g)
	if lv.CPLength != 13 {
		t.Fatalf("CPLength = %d, want 13", lv.CPLength)
	}
	if lv.T[z] != 10 || lv.B[x] != 13 || lv.Static[x] != 6 {
		t.Errorf("chain levels T[z]=%d B[x]=%d S[x]=%d", lv.T[z], lv.B[x], lv.Static[x])
	}
	cp := CriticalPath(g)
	if len(cp) != 3 {
		t.Errorf("CP = %v, want full chain", cp)
	}
}

func TestCriticalPathEmptyGraph(t *testing.T) {
	g := NewBuilder().MustBuild()
	if cp := CriticalPath(g); cp != nil {
		t.Errorf("CP of empty graph = %v, want nil", cp)
	}
	if s := CPComputationSum(g); s != 0 {
		t.Errorf("CPComputationSum = %d, want 0", s)
	}
}

// randomLayeredGraph builds a random DAG where edges only go from lower to
// higher IDs, so it is acyclic by construction.
func randomLayeredGraph(rng *rand.Rand, n int) *Graph {
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(1 + rng.Int63n(40))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(4) == 0 {
				b.AddEdge(NodeID(i), NodeID(j), rng.Int63n(50))
			}
		}
	}
	return b.MustBuild()
}

func TestLevelInvariantsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		g := randomLayeredGraph(rng, 2+rng.Intn(30))
		lv := ComputeLevels(g)
		for v := 0; v < g.NumNodes(); v++ {
			id := NodeID(v)
			if lv.T[id]+lv.B[id] > lv.CPLength {
				t.Fatalf("T+B exceeds CP length at node %d", v)
			}
			if lv.B[id] < g.Weight(id) {
				t.Fatalf("B < node weight at node %d", v)
			}
			if lv.Static[id] > lv.B[id] {
				t.Fatalf("static level exceeds b-level at node %d", v)
			}
			if lv.ALAP[id] < lv.T[id] {
				t.Fatalf("ALAP %d earlier than t-level %d at node %d", lv.ALAP[id], lv.T[id], v)
			}
			for _, a := range g.Succs(id) {
				if lv.T[a.To] < lv.T[id]+g.Weight(id)+a.Weight {
					t.Fatalf("t-level recurrence violated on edge (%d,%d)", v, a.To)
				}
			}
		}
		cp := CriticalPath(g)
		if len(cp) == 0 {
			t.Fatal("no critical path on non-empty graph")
		}
		var pathLen int64
		for i, n := range cp {
			pathLen += g.Weight(n)
			if i+1 < len(cp) {
				w, ok := g.EdgeWeight(n, cp[i+1])
				if !ok {
					t.Fatalf("critical path uses missing edge (%d,%d)", n, cp[i+1])
				}
				pathLen += w
			}
		}
		if pathLen != lv.CPLength {
			t.Fatalf("critical path length %d != CPLength %d", pathLen, lv.CPLength)
		}
	}
}

func TestCPLengthLowerBoundsQuick(t *testing.T) {
	// Property: CP length is at least the maximum node weight and at least
	// the computation sum along the returned critical path.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomLayeredGraph(rng, 2+rng.Intn(20))
		lv := ComputeLevels(g)
		var maxW int64
		for v := 0; v < g.NumNodes(); v++ {
			if w := g.Weight(NodeID(v)); w > maxW {
				maxW = w
			}
		}
		return lv.CPLength >= maxW && lv.CPLength >= CPComputationSum(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
