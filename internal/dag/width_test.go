package dag

import (
	"math/rand"
	"testing"
)

func TestWidthDiamond(t *testing.T) {
	g, _ := diamond(t)
	if w := Width(g); w != 2 {
		t.Errorf("Width = %d, want 2", w)
	}
}

func TestWidthChain(t *testing.T) {
	b := NewBuilder()
	prev := b.AddNode(1)
	for i := 0; i < 9; i++ {
		n := b.AddNode(1)
		b.AddEdge(prev, n, 1)
		prev = n
	}
	if w := Width(b.MustBuild()); w != 1 {
		t.Errorf("chain width = %d, want 1", w)
	}
}

func TestWidthIndependent(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 7; i++ {
		b.AddNode(1)
	}
	if w := Width(b.MustBuild()); w != 7 {
		t.Errorf("independent-set width = %d, want 7", w)
	}
}

func TestWidthForkJoin(t *testing.T) {
	// One source, k parallel middles, one sink: width k.
	const k = 5
	b := NewBuilder()
	src := b.AddNode(1)
	sink := b.AddNode(1)
	for i := 0; i < k; i++ {
		m := b.AddNode(1)
		b.AddEdge(src, m, 1)
		b.AddEdge(m, sink, 1)
	}
	if w := Width(b.MustBuild()); w != k {
		t.Errorf("fork-join width = %d, want %d", w, k)
	}
}

func TestWidthEmpty(t *testing.T) {
	if w := Width(NewBuilder().MustBuild()); w != 0 {
		t.Errorf("empty width = %d, want 0", w)
	}
}

// bruteForceWidth computes the maximum antichain by enumerating all
// subsets; usable only for very small graphs.
func bruteForceWidth(g *Graph) int {
	n := g.NumNodes()
	reach := make([][]bool, n)
	for u := 0; u < n; u++ {
		reach[u] = make([]bool, n)
		for v := 0; v < n; v++ {
			if u != v {
				reach[u][v] = Reachable(g, NodeID(u), NodeID(v))
			}
		}
	}
	best := 0
	for mask := 0; mask < 1<<n; mask++ {
		var members []int
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				members = append(members, v)
			}
		}
		ok := true
		for i := 0; i < len(members) && ok; i++ {
			for j := i + 1; j < len(members) && ok; j++ {
				u, v := members[i], members[j]
				if reach[u][v] || reach[v][u] {
					ok = false
				}
			}
		}
		if ok && len(members) > best {
			best = len(members)
		}
	}
	return best
}

func TestWidthMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		g := randomLayeredGraph(rng, 2+rng.Intn(9))
		got := Width(g)
		want := bruteForceWidth(g)
		if got != want {
			t.Fatalf("trial %d: Width = %d, brute force = %d\n%s", trial, got, want, DOT(g, "w"))
		}
	}
}

func TestWidthLargeGraphTerminates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomLayeredGraph(rng, 300)
	w := Width(g)
	if w < 1 || w > 300 {
		t.Errorf("implausible width %d", w)
	}
}
