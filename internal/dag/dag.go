// Package dag implements the weighted directed acyclic task-graph model
// used throughout the repository: the "macro-dataflow graph" of Kwok and
// Ahmad, "Benchmarking the Task Graph Scheduling Algorithms" (IPPS 1998),
// section 2.
//
// A node represents a task with a computation cost; a directed edge
// represents a precedence constraint with a communication cost that is
// incurred only when the two incident tasks execute on different
// processors. Graphs are built with a Builder and are immutable after
// Build, which lets every scheduling algorithm share one graph safely
// across goroutines.
//
// All costs and times are int64. Integer arithmetic keeps schedule
// validation exact; fractional measures such as NSL and CCR are derived
// at the metrics layer.
package dag

import (
	"errors"
	"fmt"
	"slices"
)

// NodeID identifies a node within one Graph. IDs are dense: a graph with
// n nodes uses IDs 0..n-1 in insertion order.
type NodeID int32

// None is the sentinel NodeID used where "no node" must be representable.
const None NodeID = -1

// Arc is one directed adjacency entry. In a successor list, To is the
// child and Weight the communication cost of the edge to it; in a
// predecessor list, To is the parent.
type Arc struct {
	To     NodeID
	Weight int64
}

// Graph is an immutable weighted DAG. The zero value is an empty graph;
// use a Builder to construct a non-empty one.
//
// Adjacency is stored in compressed sparse row (CSR) form: all successor
// arcs live in one shared backing array indexed by per-node offsets, and
// likewise for predecessor arcs. Schedulers iterate adjacency in their
// innermost loops, so the flat layout keeps those scans cache-friendly
// and costs two allocations per graph instead of two per node.
type Graph struct {
	weight   []int64
	label    []string
	succArcs []Arc
	succOff  []int32
	predArcs []Arc
	predOff  []int32
	topo     []NodeID
	numEdges int
}

// NumNodes returns the number of tasks in the graph.
func (g *Graph) NumNodes() int { return len(g.weight) }

// NumEdges returns the number of precedence edges in the graph.
func (g *Graph) NumEdges() int { return g.numEdges }

// Weight returns the computation cost of node n.
func (g *Graph) Weight(n NodeID) int64 { return g.weight[n] }

// Label returns the optional human-readable label of node n ("" if unset).
// Graphs without any labels keep no per-node label storage at all.
func (g *Graph) Label(n NodeID) string {
	if g.label == nil {
		return ""
	}
	return g.label[n]
}

// Succs returns the successor arcs of n. The returned slice is shared
// with the graph and must not be modified.
func (g *Graph) Succs(n NodeID) []Arc { return g.succArcs[g.succOff[n]:g.succOff[n+1]] }

// Preds returns the predecessor arcs of n. The returned slice is shared
// with the graph and must not be modified.
func (g *Graph) Preds(n NodeID) []Arc { return g.predArcs[g.predOff[n]:g.predOff[n+1]] }

// OutDegree returns the number of children of n.
func (g *Graph) OutDegree(n NodeID) int { return int(g.succOff[n+1] - g.succOff[n]) }

// InDegree returns the number of parents of n.
func (g *Graph) InDegree(n NodeID) int { return int(g.predOff[n+1] - g.predOff[n]) }

// EdgeWeight returns the communication cost of edge (u,v) and whether the
// edge exists.
func (g *Graph) EdgeWeight(u, v NodeID) (int64, bool) {
	for _, a := range g.Succs(u) {
		if a.To == v {
			return a.Weight, true
		}
	}
	return 0, false
}

// HasEdge reports whether the edge (u,v) exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, ok := g.EdgeWeight(u, v)
	return ok
}

// TopoOrder returns a topological order of the nodes. The returned slice
// is a copy and may be modified by the caller.
func (g *Graph) TopoOrder() []NodeID {
	out := make([]NodeID, len(g.topo))
	copy(out, g.topo)
	return out
}

// topoOrder returns the cached topological order without copying. For
// package-internal use where the caller promises not to mutate it.
func (g *Graph) topoOrder() []NodeID { return g.topo }

// Entries returns the nodes with no predecessors, in ID order.
func (g *Graph) Entries() []NodeID {
	return zeroDegreeNodes(g.NumNodes(), g.predOff)
}

// Exits returns the nodes with no successors, in ID order.
func (g *Graph) Exits() []NodeID {
	return zeroDegreeNodes(g.NumNodes(), g.succOff)
}

// zeroDegreeNodes returns the nodes whose CSR offset row is empty. A
// counting pass sizes the result exactly, so the caller gets one
// allocation instead of a grow-by-append sequence.
func zeroDegreeNodes(n int, off []int32) []NodeID {
	count := 0
	for v := 0; v < n; v++ {
		if off[v] == off[v+1] {
			count++
		}
	}
	out := make([]NodeID, 0, count)
	for v := 0; v < n; v++ {
		if off[v] == off[v+1] {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// TotalComputation returns the sum of all node computation costs.
func (g *Graph) TotalComputation() int64 {
	var sum int64
	for _, w := range g.weight {
		sum += w
	}
	return sum
}

// TotalCommunication returns the sum of all edge communication costs.
func (g *Graph) TotalCommunication() int64 {
	var sum int64
	for _, a := range g.succArcs {
		sum += a.Weight
	}
	return sum
}

// CCR returns the communication-to-computation ratio of the graph: the
// average edge cost divided by the average node cost (paper section 2).
// A graph with no edges has CCR 0.
func (g *Graph) CCR() float64 {
	if g.NumNodes() == 0 || g.numEdges == 0 {
		return 0
	}
	avgComm := float64(g.TotalCommunication()) / float64(g.numEdges)
	avgComp := float64(g.TotalComputation()) / float64(g.NumNodes())
	if avgComp == 0 {
		return 0
	}
	return avgComm / avgComp
}

// Validate checks the internal consistency of the graph: mirrored
// adjacency lists, non-negative costs, and acyclicity. Graphs produced by
// Builder.Build always validate; this is a guard for hand-constructed or
// deserialized graphs and for use in tests.
func (g *Graph) Validate() error {
	n := g.NumNodes()
	if g.label != nil && len(g.label) != n {
		return errors.New("dag: inconsistent slice lengths")
	}
	if n > 0 && (len(g.succOff) != n+1 || len(g.predOff) != n+1) {
		return errors.New("dag: inconsistent adjacency offsets")
	}
	edges := 0
	for u := 0; u < n; u++ {
		for _, a := range g.Succs(NodeID(u)) {
			if a.To < 0 || int(a.To) >= n {
				return fmt.Errorf("dag: edge from %d to out-of-range node %d", u, a.To)
			}
			if a.To == NodeID(u) {
				return fmt.Errorf("dag: self-loop at node %d", u)
			}
			if a.Weight < 0 {
				return fmt.Errorf("dag: negative communication cost on edge (%d,%d)", u, a.To)
			}
			w, ok := reverseLookup(g.Preds(a.To), NodeID(u))
			if !ok || w != a.Weight {
				return fmt.Errorf("dag: edge (%d,%d) not mirrored in predecessor list", u, a.To)
			}
			edges++
		}
	}
	if edges != g.numEdges {
		return fmt.Errorf("dag: edge count %d does not match stored %d", edges, g.numEdges)
	}
	for _, w := range g.weight {
		if w < 0 {
			return errors.New("dag: negative computation cost")
		}
	}
	if _, err := topoSort(g); err != nil {
		return err
	}
	return nil
}

func reverseLookup(arcs []Arc, from NodeID) (int64, bool) {
	for _, a := range arcs {
		if a.To == from {
			return a.Weight, true
		}
	}
	return 0, false
}

// Builder accumulates nodes and edges and produces an immutable Graph.
// The zero value is ready to use.
//
// Internally the builder is an arena: edges append to three flat parallel
// arrays (source, target, weight) and Build scatters them into the CSR
// backing arrays with two stable counting sorts. Nothing is allocated per
// node or per edge beyond amortized slice growth, so generators and
// parsers can stream millions of arcs through without intermediate maps
// or slice-of-slice adjacency. Grow pre-sizes the arena when the caller
// knows the instance size up front.
type Builder struct {
	weight []int64
	label  []string // nil until the first non-empty label
	efrom  []int32
	eto    []int32
	ew     []int64
	err    error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// Grow preallocates capacity for at least nodes additional nodes and
// edges additional edges, so that streaming generators of known size
// fill the arena without reallocation.
func (b *Builder) Grow(nodes, edges int) {
	if nodes > 0 {
		b.weight = slices.Grow(b.weight, nodes)
		if b.label != nil {
			b.label = slices.Grow(b.label, nodes)
		}
	}
	if edges > 0 {
		b.efrom = slices.Grow(b.efrom, edges)
		b.eto = slices.Grow(b.eto, edges)
		b.ew = slices.Grow(b.ew, edges)
	}
}

// AddNode adds a task with the given computation cost and returns its ID.
// Negative costs are recorded as a build error reported by Build.
func (b *Builder) AddNode(weight int64) NodeID {
	if weight < 0 && b.err == nil {
		b.err = fmt.Errorf("dag: node %d has negative cost %d", len(b.weight), weight)
	}
	b.weight = append(b.weight, weight)
	if b.label != nil {
		b.label = append(b.label, "")
	}
	return NodeID(len(b.weight) - 1)
}

// AddLabeledNode adds a task with a computation cost and a label.
func (b *Builder) AddLabeledNode(weight int64, label string) NodeID {
	if label == "" {
		return b.AddNode(weight)
	}
	if b.label == nil {
		// First labeled node: materialize the label column lazily so
		// unlabeled graphs never pay for per-node strings.
		b.label = make([]string, len(b.weight), cap(b.weight))
	}
	id := b.AddNode(weight)
	b.label[id] = label
	return id
}

// AddEdge adds a precedence edge from one task to another with the given
// communication cost. Invalid endpoints, self-loops, and negative costs
// are recorded immediately; duplicate edges are detected during Build's
// grouping pass. All such errors are reported by Build.
func (b *Builder) AddEdge(from, to NodeID, weight int64) {
	if b.err != nil {
		return
	}
	n := NodeID(len(b.weight))
	switch {
	case from < 0 || from >= n || to < 0 || to >= n:
		b.err = fmt.Errorf("dag: edge (%d,%d) references unknown node", from, to)
	case from == to:
		b.err = fmt.Errorf("dag: self-loop at node %d", from)
	case weight < 0:
		b.err = fmt.Errorf("dag: edge (%d,%d) has negative cost %d", from, to, weight)
	default:
		b.efrom = append(b.efrom, int32(from))
		b.eto = append(b.eto, int32(to))
		b.ew = append(b.ew, weight)
	}
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.weight) }

// Build finalizes the graph, scattering the flat edge arena into the CSR
// backing arrays with two stable counting sorts (by source for successor
// lists, by target for predecessor lists). Stability preserves per-node
// insertion order, so the resulting adjacency is byte-identical to
// appending into per-node lists. It fails if any recorded construction
// error exists, if an edge was added twice, or if the edges form a cycle.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := len(b.weight)
	m := len(b.efrom)
	// One allocation backs both arc arrays and one both offset rows.
	arcs := make([]Arc, 2*m)
	offs := make([]int32, 2*(n+1))
	g := &Graph{
		weight:   b.weight,
		label:    b.label,
		succArcs: arcs[:m:m],
		predArcs: arcs[m:],
		succOff:  offs[: n+1 : n+1],
		predOff:  offs[n+1:],
		numEdges: m,
	}
	cursor := make([]int32, n)
	scatter := func(key []int32, off []int32, dst []Arc, other []int32) {
		for _, k := range key {
			off[k+1]++
		}
		for v := 0; v < n; v++ {
			off[v+1] += off[v]
		}
		copy(cursor, off[:n])
		for i, k := range key {
			p := cursor[k]
			cursor[k] = p + 1
			dst[p] = Arc{To: NodeID(other[i]), Weight: b.ew[i]}
		}
	}
	scatter(b.efrom, g.succOff, g.succArcs, b.eto)
	scatter(b.eto, g.predOff, g.predArcs, b.efrom)
	// Duplicate detection: successor lists are now grouped by source, so
	// an epoch-marked scratch array finds repeats in one O(V+E) sweep.
	if m > 0 {
		mark := cursor
		for i := range mark {
			mark[i] = -1
		}
		for u := 0; u < n; u++ {
			for _, a := range g.Succs(NodeID(u)) {
				if mark[a.To] == int32(u) {
					return nil, fmt.Errorf("dag: duplicate edge (%d,%d)", u, a.To)
				}
				mark[a.To] = int32(u)
			}
		}
	}
	topo, err := topoSort(g)
	if err != nil {
		return nil, err
	}
	g.topo = topo
	// Detach the builder so further mutation cannot alias the graph.
	b.weight, b.label, b.efrom, b.eto, b.ew = nil, nil, nil, nil, nil
	return g, nil
}

// MustBuild is Build that panics on error, for tests and fixed fixtures.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// ErrCycle is returned when the edge set contains a directed cycle.
var ErrCycle = errors.New("dag: graph contains a cycle")

// topoSort returns a topological order using Kahn's algorithm, preferring
// smaller IDs first so the order is deterministic.
func topoSort(g *Graph) ([]NodeID, error) {
	n := g.NumNodes()
	indeg := make([]int32, n)
	for v := 0; v < n; v++ {
		indeg[v] = int32(g.InDegree(NodeID(v)))
	}
	// A simple FIFO queue seeded in ID order gives a stable order without
	// the cost of a priority queue; determinism is what matters here. The
	// order slice doubles as the queue (consumed entries are never
	// revisited), so the sort needs only one V-sized scratch array.
	order := make([]NodeID, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			order = append(order, NodeID(v))
		}
	}
	for head := 0; head < len(order); head++ {
		v := order[head]
		for _, a := range g.Succs(v) {
			indeg[a.To]--
			if indeg[a.To] == 0 {
				order = append(order, a.To)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}
