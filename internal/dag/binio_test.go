package dag

import (
	"bytes"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// synthGraph builds a deterministic pseudo-random layered graph shaped
// like the generator families (weights near 40, a few arcs per node,
// targets close to sources) for exercising the IO paths at size.
func synthGraph(t testing.TB, n int, labeled bool) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder()
	b.Grow(n, 4*n)
	for v := 0; v < n; v++ {
		if labeled && v%3 == 0 {
			b.AddLabeledNode(int64(10+rng.Intn(70)), "t"+strconv.Itoa(v))
		} else {
			b.AddNode(int64(10 + rng.Intn(70)))
		}
	}
	for v := 0; v < n-1; v++ {
		kids := rng.Intn(5)
		prev := v
		for k := 0; k < kids; k++ {
			to := prev + 1 + rng.Intn(8)
			if to >= n || to <= prev {
				break
			}
			b.AddEdge(NodeID(v), NodeID(to), int64(1+rng.Intn(80)))
			prev = to
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("building synthetic graph: %v", err)
	}
	return g
}

func graphsEqualText(t *testing.T, a, b *Graph) {
	t.Helper()
	var ta, tb bytes.Buffer
	if err := WriteText(&ta, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteText(&tb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ta.Bytes(), tb.Bytes()) {
		t.Fatalf("graphs differ in canonical text form:\n%s\nvs\n%s",
			firstLines(ta.String(), 6), firstLines(tb.String(), 6))
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 50, 1000} {
		for _, labeled := range []bool{false, true} {
			g := synthGraph(t, n, labeled)
			var buf bytes.Buffer
			if err := WriteBinary(&buf, g); err != nil {
				t.Fatalf("n=%d: WriteBinary: %v", n, err)
			}
			g2, err := ReadBinary(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("n=%d labeled=%v: ReadBinary: %v", n, labeled, err)
			}
			if err := g2.Validate(); err != nil {
				t.Fatalf("n=%d: round-tripped graph invalid: %v", n, err)
			}
			graphsEqualText(t, g, g2)
		}
	}
}

func TestBinaryMetaRoundTrip(t *testing.T) {
	g := synthGraph(t, 20, true)
	meta := "# adv pair MCP:DLS\n# adv seed 42\n"
	var buf bytes.Buffer
	if err := WriteBinaryMeta(&buf, g, meta); err != nil {
		t.Fatal(err)
	}
	g2, meta2, err := ReadBinaryMeta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if meta2 != meta {
		t.Fatalf("metadata round trip: got %q want %q", meta2, meta)
	}
	graphsEqualText(t, g, g2)
}

func TestReadAnyDetectsFormat(t *testing.T) {
	g := synthGraph(t, 100, true)
	var text, bin bytes.Buffer
	if err := WriteText(&text, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	fromText, err := ReadAny(bytes.NewReader(text.Bytes()))
	if err != nil {
		t.Fatalf("ReadAny(text): %v", err)
	}
	fromBin, err := ReadAny(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatalf("ReadAny(binary): %v", err)
	}
	graphsEqualText(t, g, fromText)
	graphsEqualText(t, g, fromBin)
	// Inputs shorter than the magic fall through to the text parser:
	// empty input is the empty text graph, junk is a parse error.
	if g, err := ReadAny(bytes.NewReader(nil)); err != nil || g.NumNodes() != 0 {
		t.Fatalf("ReadAny(empty) = %v, %v; want empty graph", g, err)
	}
	if _, err := ReadAny(strings.NewReader("hi")); err == nil {
		t.Fatal("ReadAny accepted two junk bytes")
	}
}

func TestReadBinaryRejectsMalformed(t *testing.T) {
	g := synthGraph(t, 30, false)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	cases := map[string][]byte{
		"empty":         nil,
		"bad magic":     []byte("TGB9aaaa"),
		"header only":   valid[:6],
		"truncated":     valid[:len(valid)-3],
		"deg overflow":  append([]byte(BinaryMagic), 1, 0, 0, 7, 0, 5),
		"huge nodes":    append([]byte(BinaryMagic), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01),
		"huge meta":     append([]byte(BinaryMagic), 2, 1, 0xff, 0xff, 0xff, 0xff, 0x7f),
		"self arc":      append([]byte(BinaryMagic), 1, 1, 0, 7, 0, 1, 0, 3),
		"out of range":  append([]byte(BinaryMagic), 1, 1, 0, 7, 0, 1, 2, 3),
		"edge shortage": append([]byte(BinaryMagic), 2, 1, 0, 7, 0, 7, 0, 0, 0),
	}
	for name, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: ReadBinary accepted malformed input", name)
		}
	}
	// The reader consumes exactly one graph: trailing bytes after the
	// declared records are left unread, not an error.
	if _, err := ReadBinary(bytes.NewReader(append(append([]byte{}, valid...), 0xee))); err != nil {
		t.Fatalf("valid stream with trailing bytes rejected: %v", err)
	}
}

// TestBinarySizeRatio pins the headline compression claim: on a graph
// shaped like the benchmark families, .tgb is at most 35% of .tg.
func TestBinarySizeRatio(t *testing.T) {
	g := synthGraph(t, 5000, false)
	var text, bin bytes.Buffer
	if err := WriteText(&text, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	ratio := float64(bin.Len()) / float64(text.Len())
	if ratio > 0.35 {
		t.Fatalf("binary/text size ratio %.3f exceeds 0.35 (%d / %d bytes)",
			ratio, bin.Len(), text.Len())
	}
}

// countingWriter counts bytes without retaining them, so alloc tests
// measure the serializer, not the sink.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// TestWriteAllocs is the regression guard for the streaming serializers:
// writing a large graph must cost O(1) allocations (the buffered writer
// and its scratch), not O(V+E) from per-line formatting.
func TestWriteAllocs(t *testing.T) {
	g := synthGraph(t, 20000, false)
	var sink countingWriter
	textAllocs := testing.AllocsPerRun(5, func() {
		if err := WriteText(&sink, g); err != nil {
			t.Fatal(err)
		}
	})
	if textAllocs > 4 {
		t.Errorf("WriteText allocated %.0f times per run, want <= 4", textAllocs)
	}
	binAllocs := testing.AllocsPerRun(5, func() {
		if err := WriteBinary(&sink, g); err != nil {
			t.Fatal(err)
		}
	})
	if binAllocs > 4 {
		t.Errorf("WriteBinary allocated %.0f times per run, want <= 4", binAllocs)
	}
}

// TestBuilderGrowArena verifies the arena promise: with a correct Grow
// hint, streaming an unlabeled graph through the Builder allocates only
// the arena arrays themselves (builder + four flat slices), with no
// per-node or per-edge allocation during AddNode/AddEdge.
func TestBuilderGrowArena(t *testing.T) {
	const n, m = 10000, 30000
	allocs := testing.AllocsPerRun(3, func() {
		b := NewBuilder()
		b.Grow(n, m)
		for v := 0; v < n; v++ {
			b.AddNode(40)
		}
		for e := 0; e < m; e++ {
			from := NodeID(e % (n - 1))
			b.AddEdge(from, from+1, int64(e%97))
		}
	})
	if allocs > 5 {
		t.Errorf("pre-grown Builder allocated %.0f times while streaming, want <= 5", allocs)
	}
}
