package dag

import (
	"math/rand"
	"testing"
)

func TestTransitiveReductionRemovesShortcut(t *testing.T) {
	// a -> b -> c plus shortcut a -> c: the shortcut must go.
	b := NewBuilder()
	na := b.AddNode(1)
	nb := b.AddNode(1)
	nc := b.AddNode(1)
	b.AddEdge(na, nb, 2)
	b.AddEdge(nb, nc, 3)
	b.AddEdge(na, nc, 9)
	g := b.MustBuild()
	r, err := TransitiveReduction(g)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumEdges() != 2 {
		t.Fatalf("reduction kept %d edges, want 2", r.NumEdges())
	}
	if r.HasEdge(na, nc) {
		t.Error("shortcut edge survived reduction")
	}
	if w, _ := r.EdgeWeight(na, nb); w != 2 {
		t.Error("surviving edge weight changed")
	}
}

func TestTransitiveReductionKeepsDiamond(t *testing.T) {
	g, _ := diamond(t)
	r, err := TransitiveReduction(g)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumEdges() != g.NumEdges() {
		t.Errorf("diamond has no redundant edges but %d were removed",
			g.NumEdges()-r.NumEdges())
	}
}

func TestTransitiveReductionPreservesReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		g := randomLayeredGraph(rng, 2+rng.Intn(20))
		r, err := TransitiveReduction(g)
		if err != nil {
			t.Fatal(err)
		}
		if r.NumEdges() > g.NumEdges() {
			t.Fatal("reduction added edges")
		}
		for u := 0; u < g.NumNodes(); u++ {
			for v := 0; v < g.NumNodes(); v++ {
				if u == v {
					continue
				}
				a, b := Reachable(g, NodeID(u), NodeID(v)), Reachable(r, NodeID(u), NodeID(v))
				if a != b {
					t.Fatalf("trial %d: reachability (%d,%d) changed: %v -> %v", trial, u, v, a, b)
				}
			}
		}
		// Reducing twice is a fixpoint.
		rr, err := TransitiveReduction(r)
		if err != nil {
			t.Fatal(err)
		}
		if rr.NumEdges() != r.NumEdges() {
			t.Fatalf("trial %d: reduction not idempotent", trial)
		}
	}
}

func TestComputeStatsDiamond(t *testing.T) {
	g, _ := diamond(t)
	st := ComputeStats(g)
	if st.Nodes != 4 || st.Edges != 4 {
		t.Errorf("stats size wrong: %+v", st)
	}
	if st.Entries != 1 || st.Exits != 1 {
		t.Errorf("entries/exits wrong: %+v", st)
	}
	if st.MaxIn != 2 || st.MaxOut != 2 {
		t.Errorf("degrees wrong: %+v", st)
	}
	if st.Depth != 3 {
		t.Errorf("Depth = %d, want 3 (a-b-d)", st.Depth)
	}
	if st.Width != 2 || st.CPLength != 15 {
		t.Errorf("width/CP wrong: %+v", st)
	}
	if st.String() == "" {
		t.Error("empty String()")
	}
}

func TestComputeStatsChainAndIndependent(t *testing.T) {
	b := NewBuilder()
	prev := b.AddNode(1)
	for i := 0; i < 4; i++ {
		n := b.AddNode(1)
		b.AddEdge(prev, n, 1)
		prev = n
	}
	chain := b.MustBuild()
	st := ComputeStats(chain)
	if st.Depth != 5 || st.Width != 1 {
		t.Errorf("chain stats wrong: %+v", st)
	}

	b2 := NewBuilder()
	for i := 0; i < 6; i++ {
		b2.AddNode(1)
	}
	ind := ComputeStats(b2.MustBuild())
	if ind.Depth != 1 || ind.Width != 6 || ind.Entries != 6 {
		t.Errorf("independent stats wrong: %+v", ind)
	}
}
