package dag

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is a minimal line-oriented exchange format for task
// graphs, sufficient for the cmd tools and for storing fixture graphs:
//
//	# comment lines and blank lines are ignored
//	nodes <count>
//	node <id> <weight> [label]
//	edge <from> <to> <weight>
//
// Node lines must precede edge lines that use them; the "nodes" header is
// optional and, when present, must match the number of node lines.

// WriteText writes the graph in the text exchange format. Lines are
// formatted into a reused scratch buffer with strconv appends rather
// than fmt, and flushed through one buffered writer, so serializing a
// large graph costs O(1) allocations and O(size/64KiB) syscalls.
func WriteText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 64*1024)
	var scratch [64]byte
	buf := append(scratch[:0], "nodes "...)
	buf = strconv.AppendInt(buf, int64(g.NumNodes()), 10)
	buf = append(buf, '\n')
	bw.Write(buf)
	for v := 0; v < g.NumNodes(); v++ {
		buf = append(scratch[:0], "node "...)
		buf = strconv.AppendInt(buf, int64(v), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, g.Weight(NodeID(v)), 10)
		if lbl := g.Label(NodeID(v)); lbl != "" {
			buf = append(buf, ' ')
			bw.Write(buf)
			bw.WriteString(lbl)
			bw.WriteByte('\n')
			continue
		}
		buf = append(buf, '\n')
		bw.Write(buf)
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, a := range g.Succs(NodeID(v)) {
			buf = append(scratch[:0], "edge "...)
			buf = strconv.AppendInt(buf, int64(v), 10)
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, int64(a.To), 10)
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, a.Weight, 10)
			buf = append(buf, '\n')
			bw.Write(buf)
		}
	}
	return bw.Flush()
}

// ReadText parses a graph from the text exchange format.
//
// Node IDs in the file are arbitrary; they are renumbered densely in
// declaration order. Files whose IDs are already dense and sequential
// (the form WriteText emits) are mapped with plain index arithmetic; a
// lookup map is materialized only when an out-of-sequence ID appears.
func ReadText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	b := NewBuilder()
	declared := -1
	line := 0
	var ids map[int]NodeID // nil while file IDs are exactly 0,1,2,...
	lookup := func(id int) (NodeID, bool) {
		if ids == nil {
			if id >= 0 && id < b.NumNodes() {
				return NodeID(id), true
			}
			return 0, false
		}
		v, ok := ids[id]
		return v, ok
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "nodes":
			if len(fields) != 2 {
				return nil, fmt.Errorf("dag: line %d: nodes wants 1 argument", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("dag: line %d: bad node count %q", line, fields[1])
			}
			declared = n
			if n <= binPrealloc {
				b.Grow(n-b.NumNodes(), 0)
			}
		case "node":
			if len(fields) < 3 || len(fields) > 4 {
				return nil, fmt.Errorf("dag: line %d: node wants id, weight, [label]", line)
			}
			id, err1 := strconv.Atoi(fields[1])
			w, err2 := strconv.ParseInt(fields[2], 10, 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("dag: line %d: bad node line %q", line, text)
			}
			if _, dup := lookup(id); dup {
				return nil, fmt.Errorf("dag: line %d: duplicate node id %d", line, id)
			}
			label := ""
			if len(fields) == 4 {
				label = fields[3]
			}
			if ids == nil && id != b.NumNodes() {
				// First out-of-sequence ID: fall back to mapped lookup
				// for the nodes seen so far (all dense by construction).
				ids = make(map[int]NodeID, b.NumNodes()+1)
				for v := 0; v < b.NumNodes(); v++ {
					ids[v] = NodeID(v)
				}
			}
			n := b.AddLabeledNode(w, label)
			if ids != nil {
				ids[id] = n
			}
		case "edge":
			if len(fields) != 4 {
				return nil, fmt.Errorf("dag: line %d: edge wants from, to, weight", line)
			}
			from, err1 := strconv.Atoi(fields[1])
			to, err2 := strconv.Atoi(fields[2])
			w, err3 := strconv.ParseInt(fields[3], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("dag: line %d: bad edge line %q", line, text)
			}
			u, ok1 := lookup(from)
			v, ok2 := lookup(to)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("dag: line %d: edge references undeclared node", line)
			}
			b.AddEdge(u, v, w)
		default:
			return nil, fmt.Errorf("dag: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if declared >= 0 && declared != b.NumNodes() {
		return nil, fmt.Errorf("dag: declared %d nodes but found %d", declared, b.NumNodes())
	}
	return b.Build()
}
