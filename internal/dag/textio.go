package dag

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is a minimal line-oriented exchange format for task
// graphs, sufficient for the cmd tools and for storing fixture graphs:
//
//	# comment lines and blank lines are ignored
//	nodes <count>
//	node <id> <weight> [label]
//	edge <from> <to> <weight>
//
// Node lines must precede edge lines that use them; the "nodes" header is
// optional and, when present, must match the number of node lines.

// WriteText writes the graph in the text exchange format.
func WriteText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "nodes %d\n", g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		if lbl := g.Label(NodeID(v)); lbl != "" {
			fmt.Fprintf(bw, "node %d %d %s\n", v, g.Weight(NodeID(v)), lbl)
		} else {
			fmt.Fprintf(bw, "node %d %d\n", v, g.Weight(NodeID(v)))
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, a := range g.Succs(NodeID(v)) {
			fmt.Fprintf(bw, "edge %d %d %d\n", v, a.To, a.Weight)
		}
	}
	return bw.Flush()
}

// ReadText parses a graph from the text exchange format.
func ReadText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	b := NewBuilder()
	declared := -1
	line := 0
	ids := map[int]NodeID{}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "nodes":
			if len(fields) != 2 {
				return nil, fmt.Errorf("dag: line %d: nodes wants 1 argument", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("dag: line %d: bad node count %q", line, fields[1])
			}
			declared = n
		case "node":
			if len(fields) < 3 || len(fields) > 4 {
				return nil, fmt.Errorf("dag: line %d: node wants id, weight, [label]", line)
			}
			id, err1 := strconv.Atoi(fields[1])
			w, err2 := strconv.ParseInt(fields[2], 10, 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("dag: line %d: bad node line %q", line, text)
			}
			if _, dup := ids[id]; dup {
				return nil, fmt.Errorf("dag: line %d: duplicate node id %d", line, id)
			}
			label := ""
			if len(fields) == 4 {
				label = fields[3]
			}
			ids[id] = b.AddLabeledNode(w, label)
		case "edge":
			if len(fields) != 4 {
				return nil, fmt.Errorf("dag: line %d: edge wants from, to, weight", line)
			}
			from, err1 := strconv.Atoi(fields[1])
			to, err2 := strconv.Atoi(fields[2])
			w, err3 := strconv.ParseInt(fields[3], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("dag: line %d: bad edge line %q", line, text)
			}
			u, ok1 := ids[from]
			v, ok2 := ids[to]
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("dag: line %d: edge references undeclared node", line)
			}
			b.AddEdge(u, v, w)
		default:
			return nil, fmt.Errorf("dag: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if declared >= 0 && declared != b.NumNodes() {
		return nil, fmt.Errorf("dag: declared %d nodes but found %d", declared, b.NumNodes())
	}
	return b.Build()
}
