package dag

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// The binary format (.tgb) is a compact streaming encoding of a task
// graph, roughly 3-5x smaller than the text format and readable in one
// sequential pass with O(V+E) work and no intermediate representation:
//
//	magic   "TGB1" (4 bytes)
//	header  uvarint nodes, uvarint edges,
//	        uvarint metaLen + metaLen bytes of opaque metadata
//	nodes   per node in ID order:
//	        uvarint weight, uvarint labelLen + labelLen bytes of label
//	arcs    per node u in ID order:
//	        uvarint outdeg, then per arc in successor order:
//	        varint (target - previous target) with "previous" seeded to
//	        u itself, uvarint communication weight
//
// All varints are the unsigned (uvarint) or zigzag-signed (varint) LEB128
// encodings of encoding/binary. Successor targets of generated graphs
// ascend and sit close to their source, so the zigzag deltas are almost
// always one byte. The metadata field carries provenance text (e.g. the
// "# adv" header of an adversarial fixture) without affecting the graph.
//
// docs/format.md documents the format with a worked hex example.

// BinaryMagic is the 4-byte prefix identifying the .tgb binary format.
const BinaryMagic = "TGB1"

// Hard ceilings a hostile header cannot push past: allocation before any
// payload byte is verified is capped, and declared counts are bounded so
// index arithmetic stays in int32/int range.
const (
	binMaxNodes   = 1 << 31 // NodeID is int32
	binMaxEdges   = 1 << 40 // each edge costs >= 2 bytes on the wire
	binMaxMeta    = 1 << 24
	binMaxLabel   = 1 << 20
	binPrealloc   = 1 << 20 // cap speculative Grow from declared counts
	binBufferSize = 64 * 1024
)

// WriteBinary writes the graph in the binary format with empty metadata.
func WriteBinary(w io.Writer, g *Graph) error {
	return WriteBinaryMeta(w, g, "")
}

// WriteBinaryMeta writes the graph in the binary format, embedding meta
// verbatim in the header. The writer streams straight from the graph's
// CSR arrays through a buffered writer; no intermediate representation
// of the graph is materialized.
func WriteBinaryMeta(w io.Writer, g *Graph, meta string) error {
	bw := bufio.NewWriterSize(w, binBufferSize)
	var scratch [3 * binary.MaxVarintLen64]byte
	if _, err := bw.WriteString(BinaryMagic); err != nil {
		return err
	}
	buf := scratch[:0]
	buf = binary.AppendUvarint(buf, uint64(g.NumNodes()))
	buf = binary.AppendUvarint(buf, uint64(g.NumEdges()))
	buf = binary.AppendUvarint(buf, uint64(len(meta)))
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	if _, err := bw.WriteString(meta); err != nil {
		return err
	}
	n := g.NumNodes()
	for v := 0; v < n; v++ {
		lbl := g.Label(NodeID(v))
		buf = scratch[:0]
		buf = binary.AppendUvarint(buf, uint64(g.Weight(NodeID(v))))
		buf = binary.AppendUvarint(buf, uint64(len(lbl)))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
		if _, err := bw.WriteString(lbl); err != nil {
			return err
		}
	}
	for v := 0; v < n; v++ {
		succs := g.Succs(NodeID(v))
		buf = scratch[:0]
		buf = binary.AppendUvarint(buf, uint64(len(succs)))
		prev := int64(v)
		for _, a := range succs {
			buf = binary.AppendVarint(buf, int64(a.To)-prev)
			buf = binary.AppendUvarint(buf, uint64(a.Weight))
			prev = int64(a.To)
			if len(buf) > len(scratch)-2*binary.MaxVarintLen64 {
				if _, err := bw.Write(buf); err != nil {
					return err
				}
				buf = scratch[:0]
			}
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a graph from the binary format, discarding metadata.
func ReadBinary(r io.Reader) (*Graph, error) {
	g, _, err := ReadBinaryMeta(r)
	return g, err
}

// ReadBinaryMeta parses a graph from the binary format and returns the
// header metadata alongside it. The reader is a single forward pass that
// feeds the arena Builder directly; declared counts are treated as
// untrusted and verified against the actual payload.
func ReadBinaryMeta(r io.Reader) (*Graph, string, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, binBufferSize)
	}
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, "", fmt.Errorf("dag: reading binary magic: %w", err)
	}
	if string(magic[:]) != BinaryMagic {
		return nil, "", fmt.Errorf("dag: bad binary magic %q", magic[:])
	}
	nodes, err := readUvarint(br, "node count", binMaxNodes-1)
	if err != nil {
		return nil, "", err
	}
	edges, err := readUvarint(br, "edge count", binMaxEdges)
	if err != nil {
		return nil, "", err
	}
	metaLen, err := readUvarint(br, "metadata length", binMaxMeta)
	if err != nil {
		return nil, "", err
	}
	meta := ""
	if metaLen > 0 {
		buf := make([]byte, metaLen)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, "", fmt.Errorf("dag: reading binary metadata: %w", err)
		}
		meta = string(buf)
	}
	b := NewBuilder()
	b.Grow(int(min(nodes, binPrealloc)), int(min(edges, binPrealloc)))
	for v := uint64(0); v < nodes; v++ {
		w, err := readUvarint(br, "node weight", 1<<63-1)
		if err != nil {
			return nil, "", err
		}
		lblLen, err := readUvarint(br, "label length", binMaxLabel)
		if err != nil {
			return nil, "", err
		}
		if lblLen == 0 {
			b.AddNode(int64(w))
			continue
		}
		lbl := make([]byte, lblLen)
		if _, err := io.ReadFull(br, lbl); err != nil {
			return nil, "", fmt.Errorf("dag: reading node label: %w", err)
		}
		// Labels are whitespace-free tokens, exactly as in the text
		// format, so the two encodings stay isomorphic.
		for _, c := range lbl {
			if c <= ' ' {
				return nil, "", fmt.Errorf("dag: node %d label contains whitespace or control byte %#x", v, c)
			}
		}
		b.AddLabeledNode(int64(w), string(lbl))
	}
	seen := uint64(0)
	for v := uint64(0); v < nodes; v++ {
		deg, err := readUvarint(br, "out-degree", edges)
		if err != nil {
			return nil, "", err
		}
		if seen+deg > edges {
			return nil, "", fmt.Errorf("dag: arc records exceed declared edge count %d", edges)
		}
		seen += deg
		prev := int64(v)
		for k := uint64(0); k < deg; k++ {
			delta, err := binary.ReadVarint(br)
			if err != nil {
				return nil, "", fmt.Errorf("dag: reading arc target: %w", err)
			}
			to := prev + delta
			if to < 0 || uint64(to) >= nodes {
				return nil, "", fmt.Errorf("dag: arc from %d to out-of-range node %d", v, to)
			}
			w, err := readUvarint(br, "arc weight", 1<<63-1)
			if err != nil {
				return nil, "", err
			}
			b.AddEdge(NodeID(v), NodeID(to), int64(w))
			prev = to
		}
	}
	if seen != edges {
		return nil, "", fmt.Errorf("dag: found %d arcs but header declared %d", seen, edges)
	}
	g, err := b.Build()
	if err != nil {
		return nil, "", err
	}
	return g, meta, nil
}

// readUvarint reads one unsigned varint and rejects values above limit,
// so a hostile header cannot drive allocation or index arithmetic.
func readUvarint(br *bufio.Reader, what string, limit uint64) (uint64, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("dag: reading %s: %w", what, err)
	}
	if v > limit {
		return 0, fmt.Errorf("dag: %s %d exceeds limit %d", what, v, limit)
	}
	return v, nil
}

// ReadAny parses a graph in either format, sniffing the binary magic.
// Inputs shorter than the magic are treated as text.
func ReadAny(r io.Reader) (*Graph, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, binBufferSize)
	}
	prefix, err := br.Peek(len(BinaryMagic))
	if err == nil && string(prefix) == BinaryMagic {
		return ReadBinary(br)
	}
	return ReadText(br)
}
