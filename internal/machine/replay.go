package machine

import (
	"fmt"

	"repro/internal/dag"
)

// ReplaySequences builds a complete schedule from an assignment expressed
// as one execution sequence per processor. It repeatedly places, among
// the heads of the remaining sequences whose parents are all scheduled,
// the node with the smallest earliest start time (ties toward the lower
// processor index), using non-insertion placement so each processor runs
// its sequence in the given order.
//
// Migration-style algorithms (BSA) use this to re-derive a consistent
// task-and-message schedule after moving nodes between processors.
func ReplaySequences(g *dag.Graph, topo *Topology, seqs [][]dag.NodeID) (*Schedule, error) {
	return ReplaySequencesHet(g, topo, seqs, nil)
}

// ReplaySequencesHet is ReplaySequences on heterogeneous processors:
// the optional speed vector (one positive factor per processor, nil for
// uniform) is applied to the schedule before any placement, so both the
// earliest-start selection and the committed execution times are
// speed-aware.
func ReplaySequencesHet(g *dag.Graph, topo *Topology, seqs [][]dag.NodeID, speeds []float64) (*Schedule, error) {
	if len(seqs) != topo.NumProcs() {
		return nil, fmt.Errorf("machine: %d sequences for %d processors", len(seqs), topo.NumProcs())
	}
	seen := make([]bool, g.NumNodes())
	total := 0
	for _, q := range seqs {
		for _, n := range q {
			if n < 0 || int(n) >= g.NumNodes() {
				return nil, fmt.Errorf("machine: sequence references unknown node %d", n)
			}
			if seen[n] {
				return nil, fmt.Errorf("machine: node %d appears twice in sequences", n)
			}
			seen[n] = true
			total++
		}
	}
	if total != g.NumNodes() {
		return nil, fmt.Errorf("machine: sequences cover %d of %d nodes", total, g.NumNodes())
	}

	s := NewSchedule(g, topo)
	if speeds != nil {
		if err := s.SetSpeeds(speeds); err != nil {
			return nil, err
		}
	}
	idx := make([]int, len(seqs))
	for s.Placed() < g.NumNodes() {
		bestProc := -1
		var bestEST int64
		var bestNode dag.NodeID
		for p, q := range seqs {
			if idx[p] >= len(q) {
				continue
			}
			n := q[idx[p]]
			est, ok := s.ESTOn(n, p, false)
			if !ok {
				continue // a parent is not scheduled yet
			}
			if bestProc == -1 || est < bestEST || (est == bestEST && n < bestNode) {
				bestProc, bestEST, bestNode = p, est, n
			}
		}
		if bestProc == -1 {
			return nil, fmt.Errorf("machine: sequences deadlock after %d placements "+
				"(per-processor order conflicts with precedence)", s.Placed())
		}
		s.MustPlace(bestNode, bestProc, bestEST)
		idx[bestProc]++
	}
	return s, nil
}
