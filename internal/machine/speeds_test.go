package machine

import (
	"math"
	"testing"

	"repro/internal/dag"
)

func TestAPNSetSpeedsRejections(t *testing.T) {
	b := dag.NewBuilder()
	n0 := b.AddNode(6)
	n1 := b.AddNode(4)
	b.AddEdge(n0, n1, 3)
	g := b.MustBuild()
	s := NewSchedule(g, Ring(4))
	for _, bad := range [][]float64{
		{1.0},                  // wrong length
		{1, 1, 0, 1},           // zero
		{1, 1, -3, 1},          // negative
		{1, 1, math.Inf(1), 1}, // infinite
		{1, math.NaN(), 1, 1},  // NaN
		{1, 1, 1, 1, 1},        // wrong length
	} {
		if err := s.SetSpeeds(bad); err == nil {
			t.Errorf("SetSpeeds(%v) succeeded, want error", bad)
		}
	}
	if err := s.SetSpeeds([]float64{1, 2, 4, 1}); err != nil {
		t.Fatalf("SetSpeeds(valid): %v", err)
	}
	if got := s.ExecTime(n0, 2); got != 2 { // ceil(6/4)
		t.Errorf("ExecTime(n0, p2) = %d, want 2", got)
	}
	s.MustPlace(n0, 2, 0)
	if f := s.FinishOf(n0); f != 2 {
		t.Errorf("FinishOf(n0) = %d, want 2", f)
	}
	if err := s.SetSpeeds([]float64{1, 2, 4, 1}); err == nil {
		t.Error("SetSpeeds on a non-empty schedule succeeded, want error")
	}
}

// TestReplaySequencesHetUniform pins that a uniform speed vector
// reproduces the homogeneous replay byte-identically.
func TestReplaySequencesHetUniform(t *testing.T) {
	b := dag.NewBuilder()
	n0 := b.AddNode(3)
	n1 := b.AddNode(5)
	n2 := b.AddNode(2)
	b.AddEdge(n0, n1, 4)
	b.AddEdge(n0, n2, 1)
	g := b.MustBuild()
	topo := Chain(3)
	seqs := [][]dag.NodeID{{n0}, {n1}, {n2}}
	hom, err := ReplaySequences(g, topo, seqs)
	if err != nil {
		t.Fatalf("ReplaySequences: %v", err)
	}
	het, err := ReplaySequencesHet(g, topo, seqs, []float64{1, 1, 1})
	if err != nil {
		t.Fatalf("ReplaySequencesHet: %v", err)
	}
	if hom.String() != het.String() {
		t.Errorf("uniform het replay diverges:\nhomogeneous:\n%s\nuniform:\n%s", hom, het)
	}
}
