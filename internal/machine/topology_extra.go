package machine

import "fmt"

// Torus returns the rows x cols 2-D torus: a mesh with wraparound links
// in both dimensions (needs at least 3 rows and 3 columns so wraparound
// links do not duplicate mesh links).
func Torus(rows, cols int) *Topology {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("machine: torus needs rows, cols >= 3 (got %d x %d)", rows, cols))
	}
	var links [][2]int
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			links = append(links, [2]int{id(r, c), id(r, (c+1)%cols)})
			links = append(links, [2]int{id(r, c), id((r+1)%rows, c)})
		}
	}
	t, err := newTopology(rows*cols, links, fmt.Sprintf("torus-%dx%d", rows, cols))
	if err != nil {
		panic(err)
	}
	return t
}

// BinaryTree returns a complete binary tree of the given number of
// levels: 2^levels - 1 processors with processor 0 as the root.
func BinaryTree(levels int) *Topology {
	if levels < 1 {
		panic(fmt.Sprintf("machine: binary tree needs levels >= 1, got %d", levels))
	}
	n := (1 << levels) - 1
	var links [][2]int
	for p := 0; p < n; p++ {
		if l := 2*p + 1; l < n {
			links = append(links, [2]int{p, l})
		}
		if r := 2*p + 2; r < n {
			links = append(links, [2]int{p, r})
		}
	}
	t, err := newTopology(n, links, fmt.Sprintf("btree-%d", n))
	if err != nil {
		panic(err)
	}
	return t
}
