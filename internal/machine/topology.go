// Package machine models the processor network assumed by the APN
// (arbitrary processor network) scheduling algorithms of Kwok & Ahmad
// (IPPS 1998): processors connected by an arbitrary topology whose links
// are not contention-free. In addition to tasks, messages are scheduled
// on the links (paper section 4).
//
// The model is store-and-forward with full-duplex links: each undirected
// link provides two directed channels, a message occupies each channel on
// its route for the full communication cost of the edge, and channels are
// exclusive resources with insertion-based slot search — the model used
// by the MH and BSA evaluations.
package machine

import (
	"fmt"
	"sort"
)

// Topology is an undirected, connected processor network with
// deterministic shortest-path routing. Immutable after construction.
type Topology struct {
	n      int
	adj    [][]int32 // sorted neighbor lists
	next   [][]int32 // next[s][d]: neighbor of s on a shortest s->d path
	dist   [][]int32
	routes [][]int32 // routes[s*n+d]: full s->d path, precomputed
	name   string
}

// NewTopology builds a topology for n processors from an undirected link
// list. The network must be connected, without self-links or duplicates.
func NewTopology(n int, links [][2]int) (*Topology, error) {
	return newTopology(n, links, fmt.Sprintf("custom-%dp", n))
}

func newTopology(n int, links [][2]int, name string) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("machine: topology needs at least one processor, got %d", n)
	}
	adj := make([][]int32, n)
	seen := make(map[[2]int]bool, len(links))
	for _, l := range links {
		u, v := l[0], l[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("machine: link (%d,%d) out of range", u, v)
		}
		if u == v {
			return nil, fmt.Errorf("machine: self-link at processor %d", u)
		}
		key := [2]int{min(u, v), max(u, v)}
		if seen[key] {
			return nil, fmt.Errorf("machine: duplicate link (%d,%d)", u, v)
		}
		seen[key] = true
		adj[u] = append(adj[u], int32(v))
		adj[v] = append(adj[v], int32(u))
	}
	for p := range adj {
		sort.Slice(adj[p], func(i, j int) bool { return adj[p][i] < adj[p][j] })
	}
	t := &Topology{n: n, adj: adj, name: name}
	t.computeRoutes()
	for d := 0; d < n; d++ {
		if t.dist[0][d] < 0 {
			return nil, fmt.Errorf("machine: topology is disconnected (processor %d unreachable)", d)
		}
	}
	return t, nil
}

// computeRoutes runs a BFS from every destination. Because neighbor lists
// are sorted ascending, the chosen next hop is the smallest-indexed
// neighbor on a shortest path, making routes deterministic.
func (t *Topology) computeRoutes() {
	t.next = make([][]int32, t.n)
	t.dist = make([][]int32, t.n)
	for s := 0; s < t.n; s++ {
		t.next[s] = make([]int32, t.n)
		t.dist[s] = make([]int32, t.n)
		for d := range t.next[s] {
			t.next[s][d] = -1
			t.dist[s][d] = -1
		}
	}
	queue := make([]int32, 0, t.n)
	for d := 0; d < t.n; d++ {
		// BFS outward from d; dist[v][d] and next[v][d] for all v.
		t.dist[d][d] = 0
		queue = queue[:0]
		queue = append(queue, int32(d))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, nb := range t.adj[v] {
				if t.dist[nb][d] < 0 {
					t.dist[nb][d] = t.dist[v][d] + 1
					t.next[nb][d] = v
					queue = append(queue, nb)
				}
			}
		}
	}
	// Materialize every route once so the message planners can walk
	// shortest paths without allocating per query.
	t.routes = make([][]int32, t.n*t.n)
	for s := 0; s < t.n; s++ {
		for d := 0; d < t.n; d++ {
			if t.dist[s][d] < 0 {
				continue // disconnected; NewTopology rejects these anyway
			}
			path := make([]int32, 0, t.dist[s][d]+1)
			for v := int32(s); ; v = t.next[v][d] {
				path = append(path, v)
				if v == int32(d) {
					break
				}
			}
			t.routes[s*t.n+d] = path
		}
	}
}

// route returns the precomputed shortest path from src to dst including
// both endpoints. The slice is shared with the topology and must not be
// modified.
func (t *Topology) route(src, dst int) []int32 { return t.routes[src*t.n+dst] }

// NumProcs returns the number of processors.
func (t *Topology) NumProcs() int { return t.n }

// Name returns a short descriptive name ("hypercube-8", "ring-6", ...).
func (t *Topology) Name() string { return t.name }

// Neighbors returns the processors adjacent to p in ascending order. The
// slice is shared with the topology and must not be modified.
func (t *Topology) Neighbors(p int) []int32 { return t.adj[p] }

// Degree returns the number of links at processor p.
func (t *Topology) Degree(p int) int { return len(t.adj[p]) }

// NumLinks returns the number of undirected links.
func (t *Topology) NumLinks() int {
	total := 0
	for p := range t.adj {
		total += len(t.adj[p])
	}
	return total / 2
}

// Dist returns the hop distance between two processors.
func (t *Topology) Dist(src, dst int) int { return int(t.dist[src][dst]) }

// Route returns the shortest path from src to dst as a processor
// sequence including both endpoints; Route(p, p) is [p]. The returned
// slice is a fresh copy; internal callers use the precomputed route.
func (t *Topology) Route(src, dst int) []int {
	r := t.route(src, dst)
	path := make([]int, len(r))
	for i, v := range r {
		path[i] = int(v)
	}
	return path
}

// Clique returns the fully connected topology on n processors. With a
// clique the APN model differs from BNP only in that messages still
// occupy the (single-hop) links exclusively.
func Clique(n int) *Topology {
	var links [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			links = append(links, [2]int{u, v})
		}
	}
	t, err := newTopology(n, links, fmt.Sprintf("clique-%d", n))
	if err != nil {
		panic(err) // regular constructions cannot fail
	}
	return t
}

// Ring returns the cycle topology on n >= 3 processors.
func Ring(n int) *Topology {
	links := make([][2]int, n)
	for u := 0; u < n; u++ {
		links[u] = [2]int{u, (u + 1) % n}
	}
	t, err := newTopology(n, links, fmt.Sprintf("ring-%d", n))
	if err != nil {
		panic(err)
	}
	return t
}

// Chain returns the linear array topology on n processors.
func Chain(n int) *Topology {
	links := make([][2]int, 0, n-1)
	for u := 0; u+1 < n; u++ {
		links = append(links, [2]int{u, u + 1})
	}
	t, err := newTopology(n, links, fmt.Sprintf("chain-%d", n))
	if err != nil {
		panic(err)
	}
	return t
}

// Mesh returns the rows x cols 2-D mesh (no wraparound).
func Mesh(rows, cols int) *Topology {
	var links [][2]int
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				links = append(links, [2]int{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				links = append(links, [2]int{id(r, c), id(r+1, c)})
			}
		}
	}
	t, err := newTopology(rows*cols, links, fmt.Sprintf("mesh-%dx%d", rows, cols))
	if err != nil {
		panic(err)
	}
	return t
}

// Hypercube returns the dim-dimensional hypercube on 2^dim processors.
func Hypercube(dim int) *Topology {
	n := 1 << dim
	var links [][2]int
	for u := 0; u < n; u++ {
		for b := 0; b < dim; b++ {
			v := u ^ (1 << b)
			if u < v {
				links = append(links, [2]int{u, v})
			}
		}
	}
	t, err := newTopology(n, links, fmt.Sprintf("hypercube-%d", n))
	if err != nil {
		panic(err)
	}
	return t
}

// Star returns the star topology: processor 0 is the hub.
func Star(n int) *Topology {
	links := make([][2]int, 0, n-1)
	for u := 1; u < n; u++ {
		links = append(links, [2]int{0, u})
	}
	t, err := newTopology(n, links, fmt.Sprintf("star-%d", n))
	if err != nil {
		panic(err)
	}
	return t
}
