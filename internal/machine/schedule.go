package machine

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/sched"
)

// linkKey identifies one directed channel of an undirected link.
type linkKey struct {
	from, to int32
}

// edgeKey identifies one task-graph edge whose message has been committed.
type edgeKey struct {
	parent, child dag.NodeID
}

// hopRes is one committed or planned link reservation of a message.
type hopRes struct {
	link   linkKey
	start  int64
	finish int64
}

// Schedule is a task-and-message schedule on an arbitrary processor
// network. Tasks occupy processor timelines exactly as in the clique
// model; in addition, every cross-processor message occupies each
// directed link channel on its (deterministic shortest) route for the
// full edge cost, store-and-forward, with insertion-based slot search.
type Schedule struct {
	g      *dag.Graph
	topo   *Topology
	procs  []sched.Timeline
	links  map[linkKey]*sched.Timeline
	msgs   map[edgeKey][]hopRes
	proc   []int32
	start  []int64
	finish []int64
	placed int
	maxFin int64 // cached makespan: max task finish over all processors

	// speed optionally makes the processors heterogeneous, exactly as in
	// sched.Schedule: node n on processor p runs for
	// ceil(Weight(n)/speed[p]) time units; nil means uniform unit speed.
	// Link transfer costs are unaffected.
	speed []float64

	// Query scratch, reused across planInbound calls so the hot
	// ready×processor EST scans of the APN schedulers allocate nothing.
	// A plan's hop slices point into qHops and stay readable until the
	// next query; Place copies the hops it commits.
	qOrder   []dag.Arc
	qOverlay []hopRes
	qPlan    []edgePlan
	qHops    []hopRes
	qExtra   []sched.Slot
}

// NewSchedule returns an empty schedule for g on the given topology.
func NewSchedule(g *dag.Graph, topo *Topology) *Schedule {
	n := g.NumNodes()
	s := &Schedule{
		g:      g,
		topo:   topo,
		procs:  make([]sched.Timeline, topo.NumProcs()),
		links:  make(map[linkKey]*sched.Timeline),
		msgs:   make(map[edgeKey][]hopRes),
		proc:   make([]int32, n),
		start:  make([]int64, n),
		finish: make([]int64, n),
	}
	for i := range s.proc {
		s.proc[i] = -1
	}
	return s
}

// SetSpeeds makes the processors heterogeneous: node n on processor p
// executes for ceil(Weight(n)/speeds[p]) time units. It must be called
// on an empty schedule, with one positive factor per processor; the
// vector is copied. A uniform all-ones vector reproduces the
// homogeneous model exactly.
func (s *Schedule) SetSpeeds(speeds []float64) error {
	if s.placed != 0 {
		return fmt.Errorf("machine: SetSpeeds on a schedule with %d placed tasks", s.placed)
	}
	if len(speeds) != s.NumProcs() {
		return fmt.Errorf("machine: %d speed factors for %d processors", len(speeds), s.NumProcs())
	}
	for p, sp := range speeds {
		if !(sp > 0) || math.IsInf(sp, 1) {
			return fmt.Errorf("machine: speed factor %g for processor %d must be positive and finite", sp, p)
		}
	}
	s.speed = append(s.speed[:0], speeds...)
	return nil
}

// Speeds returns the per-processor speed vector, or nil for uniform unit
// speeds. The slice is shared with the schedule and must not be modified.
func (s *Schedule) Speeds() []float64 { return s.speed }

// ExecTime returns the execution time of node n on processor p:
// ceil(Weight(n)/speed[p]), or exactly the weight under uniform speeds.
func (s *Schedule) ExecTime(n dag.NodeID, p int) int64 {
	w := s.g.Weight(n)
	if s.speed == nil {
		return w
	}
	return int64(math.Ceil(float64(w) / s.speed[p]))
}

// Graph returns the task graph being scheduled.
func (s *Schedule) Graph() *dag.Graph { return s.g }

// Topology returns the processor network.
func (s *Schedule) Topology() *Topology { return s.topo }

// NumProcs returns the number of processors.
func (s *Schedule) NumProcs() int { return s.topo.NumProcs() }

// IsScheduled reports whether node n has been placed.
func (s *Schedule) IsScheduled(n dag.NodeID) bool { return s.proc[n] >= 0 }

// Complete reports whether all nodes are placed.
func (s *Schedule) Complete() bool { return s.placed == s.g.NumNodes() }

// Placed returns the number of placed nodes.
func (s *Schedule) Placed() int { return s.placed }

// ProcOf returns the processor of n, or -1 when unscheduled.
func (s *Schedule) ProcOf(n dag.NodeID) int { return int(s.proc[n]) }

// StartOf returns the start time of a scheduled node.
func (s *Schedule) StartOf(n dag.NodeID) int64 { return s.start[n] }

// FinishOf returns the finish time of a scheduled node.
func (s *Schedule) FinishOf(n dag.NodeID) int64 { return s.finish[n] }

// Slots returns the task timeline of processor p.
func (s *Schedule) Slots(p int) []sched.Slot { return s.procs[p].Slots() }

// LinkHop is one committed link reservation of a message, exposed for
// consumers that replay schedules (the execution simulator): the
// directed channel it occupies and the reserved interval.
type LinkHop struct {
	// From and To are the channel's endpoint processors.
	From, To int
	// Start and Finish bound the reservation on the link.
	Start, Finish int64
}

// EachMessageHop calls fn for every committed link reservation of the
// message on edge (parent → child), in route order. It calls fn zero
// times when the edge needs no link time (co-located endpoints or a
// zero-cost edge) or when the edge is not committed. The callback
// style avoids allocating a hop slice per query.
func (s *Schedule) EachMessageHop(parent, child dag.NodeID, fn func(LinkHop)) {
	for _, h := range s.msgs[edgeKey{parent, child}] {
		fn(LinkHop{From: int(h.link.from), To: int(h.link.to), Start: h.start, Finish: h.finish})
	}
}

// LinkSlots returns the message reservations on the directed channel
// from processor u to its neighbor v, in start order. Nil when the
// channel carries no messages. The Slot.Node field holds the receiving
// task of each message.
func (s *Schedule) LinkSlots(u, v int) []sched.Slot {
	tl := s.links[linkKey{int32(u), int32(v)}]
	if tl == nil {
		return nil
	}
	return tl.Slots()
}

// Channels returns the directed link channels carrying at least one
// committed message reservation, sorted by (from, to) endpoint pair.
// The fault-capable replay engine uses it to enumerate a schedule's
// contention queues deterministically — the backing map's iteration
// order must never leak into an execution trace.
func (s *Schedule) Channels() [][2]int {
	out := make([][2]int, 0, len(s.links))
	for k, tl := range s.links {
		if tl.Len() > 0 {
			out = append(out, [2]int{int(k.from), int(k.to)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

func (s *Schedule) linkTimeline(k linkKey) *sched.Timeline {
	tl := s.links[k]
	if tl == nil {
		tl = &sched.Timeline{}
		s.links[k] = tl
	}
	return tl
}

// planEdge tentatively routes the message for edge (parent -> child of
// weight c) to destination processor dst, on top of the overlay of hops
// already planned in this query. The planned hops are appended to the
// qHops arena; the returned pair is the data arrival time at dst and
// the arena index the hops start at (len(qHops) when no link time is
// needed). A shortest route never visits a channel twice, so hops of
// the same message cannot conflict with each other and the overlay is
// only read, never extended, inside one planEdge call.
func (s *Schedule) planEdge(parent dag.NodeID, c int64, dst int, overlay []hopRes) (int64, int) {
	src := int(s.proc[parent])
	ready := s.finish[parent]
	first := len(s.qHops)
	if src == dst || c == 0 {
		return ready, first
	}
	route := s.topo.route(src, dst)
	for i := 0; i+1 < len(route); i++ {
		k := linkKey{route[i], route[i+1]}
		start := s.earliestLinkFit(k, overlay, ready, c)
		s.qHops = append(s.qHops, hopRes{link: k, start: start, finish: start + c})
		ready = start + c
	}
	return ready, first
}

// earliestLinkFit finds the earliest start >= ready for a reservation of
// the given duration on channel k, considering both committed slots and
// the overlay of hops planned earlier in the same query.
func (s *Schedule) earliestLinkFit(k linkKey, overlay []hopRes, ready, duration int64) int64 {
	var base []sched.Slot
	if tl := s.links[k]; tl != nil {
		base = tl.Slots()
	}
	// Collect the overlay reservations on this channel into the reused
	// scratch, keeping them sorted by start as they are inserted.
	// Overlay entries on one channel never overlap and messages have
	// positive duration here, so starts are distinct and the order is
	// uniquely determined.
	extra := s.qExtra[:0]
	for _, h := range overlay {
		if h.link == k {
			i := len(extra)
			extra = append(extra, sched.Slot{Start: h.start, Finish: h.finish})
			for i > 0 && extra[i-1].Start > extra[i].Start {
				extra[i-1], extra[i] = extra[i], extra[i-1]
				i--
			}
		}
	}
	s.qExtra = extra[:0]
	// Two-pointer gap scan over the merged slot streams: return the first
	// point cur >= ready such that [cur, cur+duration) hits no slot.
	// Slots finishing at or before ready can neither advance cur nor
	// open a usable gap (a returned start needs next.Start > cur >=
	// ready, hence next.Finish > ready), so binary-search past them.
	cur := ready
	i := sort.Search(len(base), func(i int) bool { return base[i].Finish > ready })
	j := sort.Search(len(extra), func(j int) bool { return extra[j].Finish > ready })
	for i < len(base) || j < len(extra) {
		var next sched.Slot
		if j >= len(extra) || (i < len(base) && base[i].Start <= extra[j].Start) {
			next = base[i]
			i++
		} else {
			next = extra[j]
			j++
		}
		if next.Start-cur >= duration {
			return cur
		}
		if next.Finish > cur {
			cur = next.Finish
		}
	}
	return cur
}

// edgePlan is the planned reservation chain of one inbound edge.
type edgePlan struct {
	key  edgeKey
	hops []hopRes
}

// planInbound plans the messages from all of n's parents to processor p
// in a deterministic order (parents by ascending finish time, then ID)
// and returns the overall data-ready time plus the per-edge hop plan.
// ok is false when some parent is unscheduled. The plan aliases the
// schedule's query scratch and is valid until the next planInbound
// call; Place copies what it commits.
func (s *Schedule) planInbound(n dag.NodeID, p int) (drt int64, plan []edgePlan, ok bool) {
	preds := s.g.Preds(n)
	for _, pr := range preds {
		if s.proc[pr.To] < 0 {
			return 0, nil, false
		}
	}
	// Insertion sort into the reused order scratch. The (finish, ID) key
	// is a total order — IDs are unique — so the result is the same
	// permutation any sort would produce.
	order := s.qOrder[:0]
	for _, pr := range preds {
		i := len(order)
		order = append(order, pr)
		for i > 0 {
			fi, fj := s.finish[order[i-1].To], s.finish[order[i].To]
			if fi < fj || (fi == fj && order[i-1].To < order[i].To) {
				break
			}
			order[i-1], order[i] = order[i], order[i-1]
			i--
		}
	}
	s.qOrder = order
	overlay := s.qOverlay[:0]
	plan = s.qPlan[:0]
	s.qHops = s.qHops[:0]
	for _, pr := range order {
		arrival, first := s.planEdge(pr.To, pr.Weight, p, overlay)
		if hops := s.qHops[first:]; len(hops) > 0 {
			overlay = append(overlay, hops...)
			plan = append(plan, edgePlan{key: edgeKey{pr.To, n}, hops: hops})
		}
		if arrival > drt {
			drt = arrival
		}
	}
	s.qOverlay = overlay
	s.qPlan = plan
	return drt, plan, true
}

// DataReady returns the earliest time node n's inputs can all be present
// on processor p, planning (but not committing) the necessary messages.
// ok is false when a parent is unscheduled.
func (s *Schedule) DataReady(n dag.NodeID, p int) (int64, bool) {
	drt, _, ok := s.planInbound(n, p)
	return drt, ok
}

// ESTOn returns the earliest start time of n on processor p under the
// routed message model.
func (s *Schedule) ESTOn(n dag.NodeID, p int, insertion bool) (int64, bool) {
	drt, _, ok := s.planInbound(n, p)
	if !ok {
		return 0, false
	}
	return s.procs[p].EarliestFit(drt, s.ExecTime(n, p), insertion), true
}

// BestEST returns the processor with the smallest EST for n, ties toward
// lower processor indices.
func (s *Schedule) BestEST(n dag.NodeID, insertion bool) (proc int, est int64, ok bool) {
	proc = -1
	for p := 0; p < s.NumProcs(); p++ {
		e, k := s.ESTOn(n, p, insertion)
		if !k {
			return -1, 0, false
		}
		if proc == -1 || e < est {
			proc, est = p, e
		}
	}
	return proc, est, true
}

// Place schedules n on processor p at the given start time, committing
// the message reservations of all inbound edges. The start time must be
// at or after the planned data-ready time.
func (s *Schedule) Place(n dag.NodeID, p int, start int64) error {
	if s.proc[n] >= 0 {
		return fmt.Errorf("machine: node %d already scheduled", n)
	}
	if p < 0 || p >= s.NumProcs() {
		return fmt.Errorf("machine: processor %d out of range", p)
	}
	if start < 0 {
		return fmt.Errorf("machine: negative start time %d", start)
	}
	if t := obs.ActiveTracer(); t != nil && t.InRun() {
		// Must precede planInbound: candidate probing reuses the query
		// scratch the committed plan would alias.
		s.tracePlacement(t, n, p, start)
	}
	drt, plan, ok := s.planInbound(n, p)
	if !ok {
		return fmt.Errorf("machine: node %d has unscheduled parents", n)
	}
	if start < drt {
		return fmt.Errorf("machine: node %d start %d before data-ready %d on P%d", n, start, drt, p)
	}
	finish := start + s.ExecTime(n, p)
	if err := s.procs[p].Insert(sched.Slot{Node: n, Start: start, Finish: finish}); err != nil {
		return fmt.Errorf("machine: node %d on P%d: %w", n, p, err)
	}
	for _, ep := range plan {
		// The plan aliases the query scratch; commit an owned copy.
		hops := make([]hopRes, len(ep.hops))
		copy(hops, ep.hops)
		s.msgs[ep.key] = hops
		for _, h := range hops {
			if err := s.linkTimeline(h.link).Insert(sched.Slot{Node: n, Start: h.start, Finish: h.finish}); err != nil {
				panic(fmt.Sprintf("machine: internal link conflict: %v", err))
			}
		}
	}
	s.proc[n] = int32(p)
	s.start[n] = start
	s.finish[n] = finish
	s.placed++
	if s.finish[n] > s.maxFin {
		s.maxFin = s.finish[n]
	}
	return nil
}

// MustPlace is Place that panics on error, for use by schedulers after a
// successful EST query.
func (s *Schedule) MustPlace(n dag.NodeID, p int, start int64) {
	if err := s.Place(n, p, start); err != nil {
		panic(err)
	}
}

// Unplace removes n and its inbound message reservations. It returns an
// error when a child of n is already scheduled, because the child's
// committed messages would become dangling.
func (s *Schedule) Unplace(n dag.NodeID) error {
	p := s.proc[n]
	if p < 0 {
		return nil
	}
	for _, a := range s.g.Succs(n) {
		if s.proc[a.To] >= 0 {
			return fmt.Errorf("machine: cannot unplace node %d: child %d is scheduled", n, a.To)
		}
	}
	s.procs[p].Remove(n, s.start[n])
	for _, pr := range s.g.Preds(n) {
		key := edgeKey{pr.To, n}
		for _, h := range s.msgs[key] {
			s.linkTimeline(h.link).Remove(n, h.start)
		}
		delete(s.msgs, key)
	}
	removed := s.finish[n]
	s.proc[n] = -1
	s.start[n] = 0
	s.finish[n] = 0
	s.placed--
	if removed == s.maxFin {
		// The cached makespan may have been carried by the removed
		// task; one scan over the per-processor tails restores it.
		s.maxFin = 0
		for i := range s.procs {
			if f := s.procs[i].LastFinish(); f > s.maxFin {
				s.maxFin = f
			}
		}
	}
	return nil
}

// Makespan returns the schedule length from the incrementally
// maintained cache: Place folds each new finish time in, so the query
// is O(1) instead of a scan over the processor timelines.
func (s *Schedule) Makespan() int64 { return s.maxFin }

// Length returns the makespan: the latest task finish time.
func (s *Schedule) Length() int64 { return s.maxFin }

// ProcessorsUsed returns the number of processors running at least one
// task.
func (s *Schedule) ProcessorsUsed() int {
	used := 0
	for i := range s.procs {
		if s.procs[i].Len() > 0 {
			used++
		}
	}
	return used
}

// NSL returns the normalized schedule length (makespan over the CP
// computation sum), as in the clique model.
func (s *Schedule) NSL() float64 {
	den := dag.CPComputationSum(s.g)
	if den == 0 {
		return 0
	}
	return float64(s.Length()) / float64(den)
}

// Validate checks processor timelines, link timelines, and that every
// scheduled node starts only after all parent data has arrived — locally
// for co-located parents, and through a complete, route-consistent chain
// of link reservations for remote parents.
func (s *Schedule) Validate() error {
	for p := range s.procs {
		if err := s.procs[p].Validate(); err != nil {
			return fmt.Errorf("machine: P%d: %w", p, err)
		}
		for _, sl := range s.procs[p].Slots() {
			if sl.Finish-sl.Start != s.ExecTime(sl.Node, p) {
				return fmt.Errorf("machine: node %d duration mismatch", sl.Node)
			}
			if s.proc[sl.Node] != int32(p) || s.start[sl.Node] != sl.Start {
				return fmt.Errorf("machine: node %d slot disagrees with placement arrays", sl.Node)
			}
		}
	}
	for k, tl := range s.links {
		if err := tl.Validate(); err != nil {
			return fmt.Errorf("machine: link %d->%d: %w", k.from, k.to, err)
		}
	}
	count := 0
	for v := 0; v < s.g.NumNodes(); v++ {
		n := dag.NodeID(v)
		if s.proc[n] < 0 {
			continue
		}
		count++
		for _, pr := range s.g.Preds(n) {
			if s.proc[pr.To] < 0 {
				return fmt.Errorf("machine: node %d scheduled before parent %d", n, pr.To)
			}
			if err := s.validateEdge(pr.To, n, pr.Weight); err != nil {
				return err
			}
		}
	}
	if count != s.placed {
		return fmt.Errorf("machine: placed counter %d != %d", s.placed, count)
	}
	return nil
}

func (s *Schedule) validateEdge(parent, child dag.NodeID, c int64) error {
	srcP, dstP := int(s.proc[parent]), int(s.proc[child])
	if srcP == dstP || c == 0 {
		if s.start[child] < s.finish[parent] {
			return fmt.Errorf("machine: node %d starts before parent %d finishes", child, parent)
		}
		return nil
	}
	hops := s.msgs[edgeKey{parent, child}]
	route := s.topo.Route(srcP, dstP)
	if len(hops) != len(route)-1 {
		return fmt.Errorf("machine: edge (%d,%d) has %d hops, route needs %d",
			parent, child, len(hops), len(route)-1)
	}
	prev := s.finish[parent]
	for i, h := range hops {
		want := linkKey{int32(route[i]), int32(route[i+1])}
		if h.link != want {
			return fmt.Errorf("machine: edge (%d,%d) hop %d uses link %d->%d, route says %d->%d",
				parent, child, i, h.link.from, h.link.to, want.from, want.to)
		}
		if h.start < prev {
			return fmt.Errorf("machine: edge (%d,%d) hop %d starts %d before data ready %d",
				parent, child, i, h.start, prev)
		}
		if h.finish-h.start != c {
			return fmt.Errorf("machine: edge (%d,%d) hop %d duration %d != cost %d",
				parent, child, i, h.finish-h.start, c)
		}
		found := false
		if tl := s.links[h.link]; tl != nil {
			for _, sl := range tl.Slots() {
				if sl.Node == child && sl.Start == h.start {
					found = true
					break
				}
			}
		}
		if !found {
			return fmt.Errorf("machine: edge (%d,%d) hop %d reservation missing from link timeline",
				parent, child, i)
		}
		prev = h.finish
	}
	if s.start[child] < prev {
		return fmt.Errorf("machine: node %d starts %d before message from %d arrives %d",
			child, s.start[child], parent, prev)
	}
	return nil
}

// String renders processor timelines and non-empty link channels.
func (s *Schedule) String() string {
	out := fmt.Sprintf("apn schedule length=%d procs=%d topo=%s\n",
		s.Length(), s.ProcessorsUsed(), s.topo.Name())
	for p := range s.procs {
		if s.procs[p].Len() == 0 {
			continue
		}
		out += fmt.Sprintf("P%d:", p)
		for _, sl := range s.procs[p].Slots() {
			out += fmt.Sprintf(" n%d[%d,%d)", sl.Node, sl.Start, sl.Finish)
		}
		out += "\n"
	}
	return out
}
