package machine

import (
	"math/rand"
	"testing"

	"repro/internal/dag"
)

// pair builds u(3) -c-> v(2).
func pair(t *testing.T, c int64) (*dag.Graph, dag.NodeID, dag.NodeID) {
	t.Helper()
	b := dag.NewBuilder()
	u := b.AddNode(3)
	v := b.AddNode(2)
	b.AddEdge(u, v, c)
	return b.MustBuild(), u, v
}

func TestMessageOverChain(t *testing.T) {
	g, u, v := pair(t, 5)
	topo := Chain(3) // 0-1-2
	s := NewSchedule(g, topo)
	s.MustPlace(u, 0, 0) // finishes at 3

	// On P2 the message travels two hops of 5 each: 3+5+5 = 13.
	drt, ok := s.DataReady(v, 2)
	if !ok || drt != 13 {
		t.Errorf("DataReady(v,P2) = %d,%v want 13,true", drt, ok)
	}
	// On P0 it is local.
	drt, ok = s.DataReady(v, 0)
	if !ok || drt != 3 {
		t.Errorf("DataReady(v,P0) = %d,%v want 3,true", drt, ok)
	}
	s.MustPlace(v, 2, 13)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := len(s.LinkSlots(0, 1)); got != 1 {
		t.Errorf("link 0->1 has %d reservations, want 1", got)
	}
	if got := len(s.LinkSlots(1, 2)); got != 1 {
		t.Errorf("link 1->2 has %d reservations, want 1", got)
	}
	if got := len(s.LinkSlots(1, 0)); got != 0 {
		t.Errorf("reverse channel 1->0 has %d reservations, want 0", got)
	}
}

func TestZeroCostMessageNeedsNoLink(t *testing.T) {
	g, u, v := pair(t, 0)
	s := NewSchedule(g, Chain(2))
	s.MustPlace(u, 0, 0)
	drt, ok := s.DataReady(v, 1)
	if !ok || drt != 3 {
		t.Errorf("zero-cost DRT = %d,%v want 3,true", drt, ok)
	}
	s.MustPlace(v, 1, 3)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.LinkSlots(0, 1)) != 0 {
		t.Error("zero-cost message should not occupy the link")
	}
}

// TestLinkContention checks that two messages crossing the same link are
// serialized: the core difference between APN and BNP models.
func TestLinkContention(t *testing.T) {
	// Two independent parents on P0 finishing at the same time, both
	// sending cost-4 messages to children on P1.
	b := dag.NewBuilder()
	p1 := b.AddNode(2)
	p2 := b.AddNode(2)
	c1 := b.AddNode(1)
	c2 := b.AddNode(1)
	b.AddEdge(p1, c1, 4)
	b.AddEdge(p2, c2, 4)
	g := b.MustBuild()

	s := NewSchedule(g, Chain(2))
	s.MustPlace(p1, 0, 0) // [0,2)
	s.MustPlace(p2, 0, 2) // [2,4)
	s.MustPlace(c1, 1, 6) // msg1 on link [2,6)
	// msg2 ready at 4, but the link is busy until 6: arrival 6+4=10.
	drt, ok := s.DataReady(c2, 1)
	if !ok || drt != 10 {
		t.Errorf("contended DRT = %d,%v want 10,true", drt, ok)
	}
	s.MustPlace(c2, 1, 10)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Without contention (clique model) arrival would have been 8.
}

func TestMessageInsertionIntoLinkGap(t *testing.T) {
	// A later-committed small message can use an earlier idle interval of
	// the link (insertion-based message slotting).
	b := dag.NewBuilder()
	pa := b.AddNode(10) // finishes late
	pb := b.AddNode(1)  // finishes early
	ca := b.AddNode(1)
	cb := b.AddNode(1)
	b.AddEdge(pa, ca, 3)
	b.AddEdge(pb, cb, 2)
	g := b.MustBuild()

	s := NewSchedule(g, Chain(2))
	s.MustPlace(pa, 0, 0) // [0,10)
	s.MustPlace(pb, 0, 10)
	s.MustPlace(ca, 1, 13) // msg a on link [10,13)
	// pb finishes at 11... link busy [10,13), so msg b starts at 13.
	drt, ok := s.DataReady(cb, 1)
	if !ok || drt != 15 {
		t.Errorf("DRT = %d,%v want 15,true", drt, ok)
	}
	// Now reverse: if pb had finished during an idle window before 10 the
	// message would fit before msg a. Rebuild with pb first.
	s2 := NewSchedule(g, Chain(2))
	s2.MustPlace(pb, 0, 0)  // [0,1)
	s2.MustPlace(pa, 0, 1)  // [1,11)
	s2.MustPlace(ca, 1, 14) // msg a on link [11,14)
	drt, ok = s2.DataReady(cb, 1)
	if !ok || drt != 3 {
		t.Errorf("gap DRT = %d,%v want 3,true (message fits before msg a)", drt, ok)
	}
	s2.MustPlace(cb, 1, 3)
	if err := s2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceErrors(t *testing.T) {
	g, u, v := pair(t, 5)
	s := NewSchedule(g, Chain(2))
	if err := s.Place(v, 0, 0); err == nil {
		t.Error("accepted child before parent")
	}
	s.MustPlace(u, 0, 0)
	if err := s.Place(u, 1, 9); err == nil {
		t.Error("accepted double placement")
	}
	if err := s.Place(v, 5, 0); err == nil {
		t.Error("accepted bad processor")
	}
	if err := s.Place(v, 1, -1); err == nil {
		t.Error("accepted negative start")
	}
	if err := s.Place(v, 1, 4); err == nil {
		t.Error("accepted start before message arrival (3+5=8)")
	}
	if err := s.Place(v, 1, 8); err != nil {
		t.Errorf("rejected legal placement: %v", err)
	}
}

func TestUnplaceRemovesReservations(t *testing.T) {
	g, u, v := pair(t, 5)
	s := NewSchedule(g, Chain(2))
	s.MustPlace(u, 0, 0)
	s.MustPlace(v, 1, 8)
	if err := s.Unplace(u); err == nil {
		t.Error("unplaced a node with a scheduled child")
	}
	if err := s.Unplace(v); err != nil {
		t.Fatalf("Unplace(v): %v", err)
	}
	if len(s.LinkSlots(0, 1)) != 0 {
		t.Error("reservation not removed with node")
	}
	if s.Placed() != 1 {
		t.Errorf("Placed = %d, want 1", s.Placed())
	}
	// The link is free again: a re-placement gets the original time.
	drt, ok := s.DataReady(v, 1)
	if !ok || drt != 8 {
		t.Errorf("DRT after unplace = %d,%v want 8,true", drt, ok)
	}
	if err := s.Unplace(v); err != nil {
		t.Errorf("Unplace of unscheduled node should be a no-op, got %v", err)
	}
}

func TestBestESTPrefersLocal(t *testing.T) {
	g, u, v := pair(t, 50)
	s := NewSchedule(g, Ring(4))
	s.MustPlace(u, 2, 0)
	p, est, ok := s.BestEST(v, false)
	if !ok || p != 2 || est != 3 {
		t.Errorf("BestEST = P%d@%d,%v want P2@3,true", p, est, ok)
	}
}

func TestValidateCatchesForeignCorruption(t *testing.T) {
	g, u, v := pair(t, 5)
	s := NewSchedule(g, Chain(2))
	s.MustPlace(u, 0, 0)
	s.MustPlace(v, 1, 8)
	// Corrupt: drop the link reservation behind the schedule's back.
	s.linkTimeline(linkKey{0, 1}).Remove(v, 3)
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted missing link reservation")
	}
}

func TestReplaySequencesDiamond(t *testing.T) {
	b := dag.NewBuilder()
	na := b.AddNode(2)
	nb := b.AddNode(3)
	nc := b.AddNode(4)
	nd := b.AddNode(1)
	b.AddEdge(na, nb, 1)
	b.AddEdge(na, nc, 5)
	b.AddEdge(nb, nd, 2)
	b.AddEdge(nc, nd, 3)
	g := b.MustBuild()

	topo := Chain(2)
	s, err := ReplaySequences(g, topo, [][]dag.NodeID{{na, nc, nd}, {nb}})
	if err != nil {
		t.Fatalf("ReplaySequences: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !s.Complete() {
		t.Error("replay incomplete")
	}
	if s.ProcOf(nb) != 1 || s.ProcOf(nc) != 0 {
		t.Error("assignment not respected")
	}
	// a [0,2) on P0; b: msg arrives 2+1=3, b [3,6) on P1;
	// c [2,6) on P0; d: b's msg 6+2=8 arrives P0 at 8, c local at 6 -> d [8,9).
	if s.StartOf(nd) != 8 {
		t.Errorf("d starts %d, want 8", s.StartOf(nd))
	}
}

func TestReplaySequencesErrors(t *testing.T) {
	g, u, v := pair(t, 1)
	topo := Chain(2)
	if _, err := ReplaySequences(g, topo, [][]dag.NodeID{{u, v}}); err == nil {
		t.Error("accepted wrong sequence count")
	}
	if _, err := ReplaySequences(g, topo, [][]dag.NodeID{{u, u}, {v}}); err == nil {
		t.Error("accepted duplicate node")
	}
	if _, err := ReplaySequences(g, topo, [][]dag.NodeID{{u}, nil}); err == nil {
		t.Error("accepted missing node")
	}
	if _, err := ReplaySequences(g, topo, [][]dag.NodeID{{v, u}, nil}); err == nil {
		t.Error("accepted precedence-violating sequence")
	}
}

func TestRandomAPNSchedulesValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	topos := []*Topology{Chain(3), Ring(4), Hypercube(3), Star(4), Clique(3)}
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng, 2+rng.Intn(20))
		topo := topos[trial%len(topos)]
		s := NewSchedule(g, topo)
		for _, n := range g.TopoOrder() {
			p, est, ok := s.BestEST(n, rng.Intn(2) == 0)
			if !ok {
				t.Fatal("BestEST failed in topo order")
			}
			s.MustPlace(n, p, est)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d (%s): %v", trial, topo.Name(), err)
		}
		if s.NSL() < 1.0-1e-9 {
			t.Fatalf("NSL %v < 1", s.NSL())
		}
	}
}

func TestReplayMatchesRandomAssignments(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 2+rng.Intn(15))
		topo := Ring(4)
		// Random assignment; per-proc order = topological order.
		seqs := make([][]dag.NodeID, topo.NumProcs())
		for _, n := range g.TopoOrder() {
			p := rng.Intn(topo.NumProcs())
			seqs[p] = append(seqs[p], n)
		}
		s, err := ReplaySequences(g, topo, seqs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func randomGraph(rng *rand.Rand, n int) *dag.Graph {
	b := dag.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(1 + rng.Int63n(20))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(4) == 0 {
				b.AddEdge(dag.NodeID(i), dag.NodeID(j), rng.Int63n(30))
			}
		}
	}
	return b.MustBuild()
}
