package machine

import (
	"testing"
)

func TestTopologyConstructions(t *testing.T) {
	cases := []struct {
		name      string
		topo      *Topology
		wantProcs int
		wantLinks int
	}{
		{"ring-6", Ring(6), 6, 6},
		{"chain-5", Chain(5), 5, 4},
		{"mesh-2x3", Mesh(2, 3), 6, 7},
		{"hypercube-8", Hypercube(3), 8, 12},
		{"star-5", Star(5), 5, 4},
		{"clique-4", Clique(4), 4, 6},
		{"clique-1", Clique(1), 1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.topo.NumProcs(); got != tc.wantProcs {
				t.Errorf("NumProcs = %d, want %d", got, tc.wantProcs)
			}
			if got := tc.topo.NumLinks(); got != tc.wantLinks {
				t.Errorf("NumLinks = %d, want %d", got, tc.wantLinks)
			}
			if tc.topo.Name() == "" {
				t.Error("empty topology name")
			}
		})
	}
}

func TestTopologyErrors(t *testing.T) {
	if _, err := NewTopology(0, nil); err == nil {
		t.Error("accepted zero processors")
	}
	if _, err := NewTopology(3, [][2]int{{0, 1}}); err == nil {
		t.Error("accepted disconnected topology")
	}
	if _, err := NewTopology(2, [][2]int{{0, 0}}); err == nil {
		t.Error("accepted self-link")
	}
	if _, err := NewTopology(2, [][2]int{{0, 1}, {1, 0}}); err == nil {
		t.Error("accepted duplicate link")
	}
	if _, err := NewTopology(2, [][2]int{{0, 5}}); err == nil {
		t.Error("accepted out-of-range link")
	}
}

func TestDistProperties(t *testing.T) {
	topos := []*Topology{Ring(7), Mesh(3, 4), Hypercube(4), Star(6), Chain(8)}
	for _, topo := range topos {
		n := topo.NumProcs()
		for u := 0; u < n; u++ {
			if topo.Dist(u, u) != 0 {
				t.Errorf("%s: Dist(%d,%d) != 0", topo.Name(), u, u)
			}
			for v := 0; v < n; v++ {
				if topo.Dist(u, v) != topo.Dist(v, u) {
					t.Errorf("%s: asymmetric dist (%d,%d)", topo.Name(), u, v)
				}
			}
		}
	}
}

func TestHypercubeDistIsHamming(t *testing.T) {
	topo := Hypercube(4)
	for u := 0; u < 16; u++ {
		for v := 0; v < 16; v++ {
			want := popcount(u ^ v)
			if got := topo.Dist(u, v); got != want {
				t.Fatalf("Dist(%d,%d) = %d, want hamming %d", u, v, got, want)
			}
		}
	}
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		c += x & 1
		x >>= 1
	}
	return c
}

func TestRingDist(t *testing.T) {
	topo := Ring(8)
	if d := topo.Dist(0, 4); d != 4 {
		t.Errorf("Dist(0,4) = %d, want 4", d)
	}
	if d := topo.Dist(0, 6); d != 2 {
		t.Errorf("Dist(0,6) = %d, want 2 (wrap)", d)
	}
}

func TestRoutesAreValidShortestPaths(t *testing.T) {
	topos := []*Topology{Ring(6), Mesh(2, 4), Hypercube(3), Star(5), Clique(5)}
	for _, topo := range topos {
		n := topo.NumProcs()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				route := topo.Route(u, v)
				if route[0] != u || route[len(route)-1] != v {
					t.Fatalf("%s: route(%d,%d) endpoints wrong: %v", topo.Name(), u, v, route)
				}
				if len(route)-1 != topo.Dist(u, v) {
					t.Fatalf("%s: route(%d,%d) length %d != dist %d",
						topo.Name(), u, v, len(route)-1, topo.Dist(u, v))
				}
				for i := 0; i+1 < len(route); i++ {
					if !adjacent(topo, route[i], route[i+1]) {
						t.Fatalf("%s: route(%d,%d) hop %d-%d not adjacent",
							topo.Name(), u, v, route[i], route[i+1])
					}
				}
			}
		}
	}
}

func adjacent(t *Topology, u, v int) bool {
	for _, nb := range t.Neighbors(u) {
		if int(nb) == v {
			return true
		}
	}
	return false
}

func TestRoutesDeterministic(t *testing.T) {
	topo := Hypercube(3)
	r1 := topo.Route(0, 7)
	r2 := topo.Route(0, 7)
	if len(r1) != len(r2) {
		t.Fatal("route length changed between calls")
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("route not deterministic")
		}
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	topo := Star(5)
	if topo.Degree(0) != 4 {
		t.Errorf("hub degree = %d, want 4", topo.Degree(0))
	}
	if topo.Degree(3) != 1 {
		t.Errorf("leaf degree = %d, want 1", topo.Degree(3))
	}
	nb := topo.Neighbors(0)
	for i := 1; i < len(nb); i++ {
		if nb[i-1] >= nb[i] {
			t.Error("neighbors not sorted ascending")
		}
	}
}
