package machine

import (
	"testing"

	"repro/internal/dag"
)

// TestMakespanCacheAPN checks the cached makespan against a full
// timeline scan through placements and an unplace of the carrying
// task.
func TestMakespanCacheAPN(t *testing.T) {
	b := dag.NewBuilder()
	a := b.AddNode(3)
	c := b.AddNode(4)
	d := b.AddNode(5)
	b.AddEdge(a, d, 2)
	g := b.MustBuild()
	s := NewSchedule(g, Chain(3))
	scan := func() int64 {
		var max int64
		for p := 0; p < s.NumProcs(); p++ {
			if f := s.procs[p].LastFinish(); f > max {
				max = f
			}
		}
		return max
	}
	if s.Makespan() != 0 {
		t.Fatalf("empty Makespan = %d", s.Makespan())
	}
	s.MustPlace(a, 0, 0)
	s.MustPlace(c, 1, 0)
	est, ok := s.ESTOn(d, 2, false)
	if !ok {
		t.Fatal("EST for d failed")
	}
	s.MustPlace(d, 2, est)
	if got, want := s.Makespan(), scan(); got != want || s.Length() != want {
		t.Fatalf("Makespan %d / Length %d, scan says %d", got, s.Length(), want)
	}
	// d carries the maximum; removing it must fall back to the scan.
	if err := s.Unplace(d); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Makespan(), scan(); got != want {
		t.Fatalf("after unplace: Makespan %d != scanned %d", got, want)
	}
}
