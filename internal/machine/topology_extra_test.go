package machine

import (
	"testing"

	"repro/internal/dag"
)

func TestTorus(t *testing.T) {
	topo := Torus(3, 4)
	if topo.NumProcs() != 12 {
		t.Fatalf("NumProcs = %d, want 12", topo.NumProcs())
	}
	// Torus: every node has degree 4, links = 2*rows*cols.
	for p := 0; p < 12; p++ {
		if topo.Degree(p) != 4 {
			t.Errorf("P%d degree = %d, want 4", p, topo.Degree(p))
		}
	}
	if topo.NumLinks() != 24 {
		t.Errorf("NumLinks = %d, want 24", topo.NumLinks())
	}
	// Wraparound shortens the path: 0 to 3 in one hop, not three.
	if d := topo.Dist(0, 3); d != 1 {
		t.Errorf("Dist(0,3) = %d, want 1 (wraparound)", d)
	}
}

func TestTorusPanicsWhenTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("2x2 torus should panic (duplicate links)")
		}
	}()
	Torus(2, 2)
}

func TestBinaryTree(t *testing.T) {
	topo := BinaryTree(3)
	if topo.NumProcs() != 7 {
		t.Fatalf("NumProcs = %d, want 7", topo.NumProcs())
	}
	if topo.NumLinks() != 6 {
		t.Errorf("NumLinks = %d, want 6", topo.NumLinks())
	}
	if topo.Degree(0) != 2 {
		t.Errorf("root degree = %d, want 2", topo.Degree(0))
	}
	// Leaf to leaf crosses the root: distance 4 between 3 and 6.
	if d := topo.Dist(3, 6); d != 4 {
		t.Errorf("Dist(3,6) = %d, want 4", d)
	}
	if topo.Dist(1, 4) != 1 {
		t.Error("parent-child distance should be 1")
	}
}

func TestExtraTopologiesSchedule(t *testing.T) {
	// The new topologies must work with the APN schedule machinery.
	g, u, v := pairGraph(t)
	for _, topo := range []*Topology{Torus(3, 3), BinaryTree(3)} {
		s := NewSchedule(g, topo)
		s.MustPlace(u, 0, 0)
		p, est, ok := s.BestEST(v, false)
		if !ok {
			t.Fatalf("%s: BestEST failed", topo.Name())
		}
		s.MustPlace(v, p, est)
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", topo.Name(), err)
		}
	}
}

func pairGraph(t *testing.T) (*dag.Graph, dag.NodeID, dag.NodeID) {
	t.Helper()
	return pair(t, 7)
}
