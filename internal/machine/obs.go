package machine

import (
	"repro/internal/dag"
	"repro/internal/obs"
)

// traceCandidateCap mirrors the sched package's bound on recorded
// candidates per placement.
const traceCandidateCap = 32

// tracePlacement emits the decision record for an imminent Place. It
// must run before Place's own planInbound call: ESTOn reuses the query
// scratch that the committed message plan aliases, so probing
// candidates afterwards would corrupt the plan. Everything here is a
// query; tracing cannot change the schedule.
func (s *Schedule) tracePlacement(t *obs.Tracer, n dag.NodeID, p int, start int64) {
	insertion := start < s.procs[p].LastFinish()
	cands := t.CandidateBuf()
	np := s.NumProcs()
	if np > traceCandidateCap {
		np = traceCandidateCap
	}
	for q := 0; q < np; q++ {
		est, ok := s.ESTOn(n, q, insertion)
		if !ok {
			cands = cands[:0]
			break
		}
		cands = append(cands, obs.Candidate{Proc: int32(q), EST: est})
	}
	t.Placement(int32(n), int32(p), start, start+s.ExecTime(n, p), insertion, cands)
}
