package optimal

import (
	"math/rand"
	"testing"

	"repro/internal/algo/bnp"
	"repro/internal/dag"
	"repro/internal/sched"
)

func randomGraph(rng *rand.Rand, n int, commScale int64) *dag.Graph {
	b := dag.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(1 + rng.Int63n(20))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(3) == 0 {
				b.AddEdge(dag.NodeID(i), dag.NodeID(j), rng.Int63n(commScale))
			}
		}
	}
	return b.MustBuild()
}

// bruteForce finds the optimal makespan by enumerating every topological
// permutation of the nodes and every processor assignment, replaying
// each with append-at-EST placement. Only usable for tiny graphs; serves
// as an independent oracle for the branch-and-bound.
func bruteForce(g *dag.Graph, numProcs int) int64 {
	n := g.NumNodes()
	best := int64(1) << 62
	perm := make([]dag.NodeID, 0, n)
	used := make([]bool, n)
	assign := make([]int, n)

	var replayAssignments func(i int)
	replayAssignments = func(i int) {
		if i == n {
			s := sched.New(g, numProcs)
			for _, node := range perm {
				est, ok := s.ESTOn(node, assign[node], false)
				if !ok {
					panic("brute force permutation not topological")
				}
				s.MustPlace(node, assign[node], est)
			}
			if l := s.Length(); l < best {
				best = l
			}
			return
		}
		for p := 0; p < numProcs; p++ {
			assign[perm[i]] = p
			replayAssignments(i + 1)
		}
	}

	var permute func()
	permute = func() {
		if len(perm) == n {
			replayAssignments(0)
			return
		}
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			ok := true
			for _, pr := range g.Preds(dag.NodeID(v)) {
				if !used[pr.To] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			used[v] = true
			perm = append(perm, dag.NodeID(v))
			permute()
			perm = perm[:len(perm)-1]
			used[v] = false
		}
	}
	permute()
	return best
}

func TestMatchesBruteForceTinyGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 2+rng.Intn(4), 30) // 2..5 nodes
		for _, p := range []int{1, 2, 3} {
			want := bruteForce(g, p)
			res, err := Schedule(g, p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Closed {
				t.Fatalf("trial %d: tiny search not closed", trial)
			}
			if res.Length != want {
				t.Fatalf("trial %d p=%d: B&B found %d, brute force %d\n%s",
					trial, p, res.Length, want, dag.DOT(g, "g"))
			}
			if err := res.Schedule.Validate(); err != nil {
				t.Fatalf("trial %d: invalid optimal schedule: %v", trial, err)
			}
			if res.Schedule.Length() != res.Length {
				t.Fatalf("trial %d: result length %d != schedule length %d",
					trial, res.Length, res.Schedule.Length())
			}
		}
	}
}

func TestKnownOptimaChain(t *testing.T) {
	// A chain is inherently serial: optimum = total weight regardless of
	// processor count.
	b := dag.NewBuilder()
	prev := b.AddNode(3)
	total := int64(3)
	for i := 0; i < 5; i++ {
		n := b.AddNode(int64(2 + i))
		total += int64(2 + i)
		b.AddEdge(prev, n, 10)
		prev = n
	}
	g := b.MustBuild()
	res, err := Schedule(g, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Closed || res.Length != total {
		t.Errorf("chain optimum = %d (closed=%v), want %d", res.Length, res.Closed, total)
	}
}

func TestKnownOptimaIndependent(t *testing.T) {
	// 6 unit tasks on 2 processors: optimum 3.
	b := dag.NewBuilder()
	for i := 0; i < 6; i++ {
		b.AddNode(1)
	}
	g := b.MustBuild()
	res, err := Schedule(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Closed || res.Length != 3 {
		t.Errorf("independent optimum = %d (closed=%v), want 3", res.Length, res.Closed)
	}
}

func TestKnownOptimaForkJoin(t *testing.T) {
	// root(2) -> 2 middles(4) -> sink(2), comm 1. On 2 processors the
	// optimum is 9: P0 runs root[0,2) m1[2,6); P1 runs m2[3,7) (message
	// from root arrives at 3) and sink[7,9) (m1's message arrives 6+1=7,
	// m2 is local). The serial schedule is 12.
	b := dag.NewBuilder()
	root := b.AddNode(2)
	m1 := b.AddNode(4)
	m2 := b.AddNode(4)
	sink := b.AddNode(2)
	b.AddEdge(root, m1, 1)
	b.AddEdge(root, m2, 1)
	b.AddEdge(m1, sink, 1)
	b.AddEdge(m2, sink, 1)
	g := b.MustBuild()
	res, err := Schedule(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Closed || res.Length != 9 {
		t.Errorf("fork-join optimum = %d (closed=%v), want 9\n%s",
			res.Length, res.Closed, res.Schedule)
	}
}

func TestOptimalNeverWorseThanHeuristics(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 6+rng.Intn(6), 40)
		res, err := Schedule(g, 3, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for name, h := range bnp.Algorithms() {
			hs, err := h(g, 3)
			if err != nil {
				t.Fatal(err)
			}
			if res.Closed && hs.Length() < res.Length {
				t.Fatalf("trial %d: heuristic %s (%d) beat 'optimal' (%d)",
					trial, name, hs.Length(), res.Length)
			}
		}
	}
}

func TestExpansionBudgetTruncates(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	g := randomGraph(rng, 24, 60)
	res, err := Schedule(g, 4, Options{MaxExpansions: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Closed {
		t.Error("50-expansion search on 24 nodes claims to be closed")
	}
	if res.Schedule == nil || res.Schedule.Validate() != nil {
		t.Error("truncated search must still return the heuristic incumbent")
	}
}

func TestUpperBoundSeeding(t *testing.T) {
	b := dag.NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddNode(2)
	}
	g := b.MustBuild()
	// Optimum on 2 procs is 4. An upper bound of 3 is infeasible.
	res, err := Schedule(g, 2, Options{UpperBound: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule != nil {
		t.Errorf("found schedule of length %d under infeasible bound", res.Length)
	}
	// A bound of 4 is exactly feasible.
	res, err = Schedule(g, 2, Options{UpperBound: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule == nil || res.Length != 4 {
		t.Errorf("bound-4 search: length %d, want 4", res.Length)
	}
}

func TestArgumentErrors(t *testing.T) {
	if _, err := Schedule(nil, 2, Options{}); err == nil {
		t.Error("accepted nil graph")
	}
	g := dag.NewBuilder().MustBuild()
	if _, err := Schedule(g, 0, Options{}); err == nil {
		t.Error("accepted zero processors")
	}
	res, err := Schedule(g, 2, Options{})
	if err != nil || !res.Closed || res.Length != 0 {
		t.Errorf("empty graph: %+v, %v", res, err)
	}
}

func TestRGBOSSizedInstanceCloses(t *testing.T) {
	if testing.Short() {
		t.Skip("branch-and-bound on 12 nodes in -short mode")
	}
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 12, 40)
	res, err := Schedule(g, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Closed {
		t.Errorf("12-node instance did not close within %d expansions", DefaultMaxExpansions)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}
