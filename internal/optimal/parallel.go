package optimal

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dag"
	"repro/internal/sched"
)

// ScheduleParallel is the multi-goroutine variant of Schedule, mirroring
// the parallel A* the paper used to obtain its RGBOS optima [Ahmad &
// Kwok, "A Parallel Approach to Multiprocessor Scheduling", IPPS 1995].
// The search tree is expanded breadth-first into a frontier of
// independent subproblems, which workers then explore depth-first while
// sharing one incumbent: any worker's improvement immediately tightens
// every other worker's pruning bound.
//
// workers <= 0 selects GOMAXPROCS. Results are identical to Schedule in
// value (length and closedness); the returned schedule may be a
// different optimal schedule, and Expansions aggregates all workers.
func ScheduleParallel(g *dag.Graph, numProcs int, opts Options, workers int) (*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return Schedule(g, numProcs, opts)
	}
	// Validate arguments and seed the incumbent with the sequential
	// searcher's setup by running it with a zero budget... a tiny helper
	// search with MaxExpansions=1 would mark truncated; instead replicate
	// the argument checks and seeding here via a throwaway searcher.
	probe, err := Schedule(g, numProcs, Options{MaxExpansions: 1, UpperBound: opts.UpperBound})
	if err != nil {
		return nil, err
	}
	if probe.Closed {
		// The instance is trivial (empty or single placement closed it).
		return probe, nil
	}

	// probe.Length is the incumbent length when a schedule exists, and
	// the exclusive acceptance threshold (UpperBound+1) when it does not;
	// either way it is the correct shared pruning threshold.
	shared := &sharedIncumbent{schedule: probe.Schedule}
	shared.length.Store(probe.Length)

	maxExp := opts.MaxExpansions
	if maxExp <= 0 {
		maxExp = DefaultMaxExpansions
	}

	// Breadth-first frontier expansion to get enough independent
	// subproblems: each subproblem is a placement prefix.
	type prefix []placementStep
	frontier := []prefix{{}}
	base := newWorkerSearcher(g, numProcs, shared, maxExp)
	for len(frontier) > 0 && len(frontier) < workers*8 {
		cur := frontier[0]
		frontier = frontier[1:]
		steps, done := base.expandPrefix(cur)
		if done {
			continue // prefix was a complete schedule; handled inside
		}
		if len(steps) == 0 {
			continue
		}
		for _, st := range steps {
			child := append(append(prefix{}, cur...), st)
			frontier = append(frontier, child)
		}
	}

	var expansions atomic.Int64
	var truncated atomic.Bool
	work := make(chan prefix)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			se := newWorkerSearcher(g, numProcs, shared, maxExp)
			for pre := range work {
				se.runPrefix(pre)
				expansions.Add(se.expansions)
				se.expansions = 0
				if se.truncated {
					truncated.Store(true)
					se.truncated = false
				}
			}
		}()
	}
	for _, pre := range frontier {
		work <- pre
	}
	close(work)
	wg.Wait()

	shared.mu.Lock()
	defer shared.mu.Unlock()
	return &Result{
		Schedule:   shared.schedule,
		Length:     shared.length.Load(),
		Closed:     !truncated.Load(),
		Expansions: expansions.Load() + probe.Expansions,
	}, nil
}

// sharedIncumbent is the cross-worker best solution: the length is read
// lock-free on the hot pruning path, the schedule under the mutex.
type sharedIncumbent struct {
	length   atomic.Int64
	mu       sync.Mutex
	schedule *sched.Schedule
}

type placementStep struct {
	n   dag.NodeID
	p   int
	est int64
}

// newWorkerSearcher builds a searcher wired to the shared incumbent.
func newWorkerSearcher(g *dag.Graph, numProcs int, shared *sharedIncumbent, maxExp int64) *searcher {
	se := &searcher{
		g:        g,
		numProcs: numProcs,
		s:        sched.New(g, numProcs),
		sl:       dag.StaticLevels(g),
		maxExp:   maxExp,
		lbStart:  make([]int64, g.NumNodes()),
		topo:     g.TopoOrder(),
		shared:   shared,
	}
	se.bestLen = shared.length.Load()
	se.remaining = make([]int, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		se.remaining[v] = g.InDegree(dag.NodeID(v))
		if se.remaining[v] == 0 {
			se.ready = append(se.ready, dag.NodeID(v))
		}
	}
	return se
}

// expandPrefix applies a prefix and returns its child branching steps
// (without recursing). done reports that the prefix completed the
// schedule (the incumbent is updated in that case).
func (se *searcher) expandPrefix(pre []placementStep) (steps []placementStep, done bool) {
	for _, st := range pre {
		se.apply(st.n, st.p, st.est)
	}
	defer func() {
		for i := len(pre) - 1; i >= 0; i-- {
			se.undo(pre[i].n)
		}
	}()
	if se.s.Complete() {
		se.offerIncumbent()
		return nil, true
	}
	if se.lowerBound() >= se.effectiveBest() {
		return nil, false
	}
	for _, b := range se.branches() {
		steps = append(steps, placementStep{b.n, b.p, b.est})
	}
	return steps, false
}

// runPrefix applies a prefix and explores its subtree depth-first.
func (se *searcher) runPrefix(pre []placementStep) {
	for _, st := range pre {
		se.apply(st.n, st.p, st.est)
	}
	se.dfs()
	for i := len(pre) - 1; i >= 0; i-- {
		se.undo(pre[i].n)
	}
}

// effectiveBest returns the tightest known incumbent length.
func (se *searcher) effectiveBest() int64 {
	if se.shared != nil {
		if s := se.shared.length.Load(); s < se.bestLen {
			se.bestLen = s
		}
	}
	return se.bestLen
}

// offerIncumbent records the current complete schedule if it strictly
// improves the (sequential or shared) incumbent. Strictness matters:
// bestLen is an exclusive threshold when an UpperBound seeded the search
// without a schedule, so an equal-length schedule must not be adopted.
func (se *searcher) offerIncumbent() {
	l := se.s.Length()
	if se.shared == nil {
		if l < se.bestLen {
			se.best = snapshot(se.s, se.numProcs)
			se.bestLen = l
		}
		return
	}
	se.shared.mu.Lock()
	defer se.shared.mu.Unlock()
	if l < se.shared.length.Load() {
		se.shared.schedule = snapshot(se.s, se.numProcs)
		se.shared.length.Store(l)
		se.bestLen = l
	}
}

// branchCandidates mirrors the branch enumeration of dfs for reuse by
// the frontier expansion.
type branchCandidate struct {
	n   dag.NodeID
	p   int
	est int64
}

func (se *searcher) branches() []branchCandidate {
	var out []branchCandidate
	readySnapshot := append([]dag.NodeID(nil), se.ready...)
	for _, n := range readySnapshot {
		seenEmpty := false
		for p := 0; p < se.numProcs; p++ {
			if len(se.s.Slots(p)) == 0 {
				if seenEmpty {
					continue
				}
				seenEmpty = true
			}
			est, ok := se.s.ESTOn(n, p, false)
			if !ok {
				panic("optimal: ready node has unscheduled parent")
			}
			out = append(out, branchCandidate{n, p, est})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		bi, bj := out[i], out[j]
		if bi.est != bj.est {
			return bi.est < bj.est
		}
		if se.sl[bi.n] != se.sl[bj.n] {
			return se.sl[bi.n] > se.sl[bj.n]
		}
		if bi.n != bj.n {
			return bi.n < bj.n
		}
		return bi.p < bj.p
	})
	return out
}
