// Package optimal implements an exact branch-and-bound scheduler for the
// clique machine model. The paper obtained optimal solutions for its
// RGBOS benchmark suite (random graphs of 10–32 nodes) with a parallel
// A* search [Kwok & Ahmad, "Optimal and Near-Optimal Allocation of
// Precedence-Constrained Tasks to Parallel Processors"]; this package
// plays that role with a sequential depth-first branch-and-bound using
// the same admissible lower bounds.
//
// # Search space
//
// States are partial schedules grown append-only: at each step one ready
// task (all parents scheduled) is appended to one processor at its
// earliest start time there. This space always contains an optimal
// schedule: replaying any optimal schedule in ascending start-time order
// appends every task no later than its optimal start. Branching
// considers every ready task on every non-empty processor plus exactly
// one empty processor (empty processors are interchangeable — a cheap
// symmetry reduction that removes a factorial factor).
//
// # Bounds
//
// A node is pruned when max(current length, critical-path bound, load
// bound) reaches the incumbent:
//
//   - critical-path bound: earliest conceivable start of each unscheduled
//     task (communication optimistically zero) plus its static level;
//   - load bound: processors cannot finish before busy time plus
//     remaining work spreads across them.
//
// The incumbent is seeded with heuristic schedules (MCP and DCP), so the
// search only has to prove optimality or find rare improvements.
package optimal

import (
	"fmt"
	"sort"

	"repro/internal/algo/bnp"
	"repro/internal/algo/unc"
	"repro/internal/dag"
	"repro/internal/sched"
)

// Options configures the search.
type Options struct {
	// MaxExpansions caps the number of search-tree nodes expanded. 0
	// means DefaultMaxExpansions. When the cap is hit the best schedule
	// found so far is returned with Closed=false.
	MaxExpansions int64
	// UpperBound, when non-zero, seeds the incumbent: only schedules of
	// length <= UpperBound are searched for. If none exists the Result
	// carries a nil Schedule. When zero, MCP and DCP seed the incumbent.
	UpperBound int64
}

// DefaultMaxExpansions bounds the search effort when Options.MaxExpansions
// is zero. RGBOS-sized instances (10–32 nodes) close well within it.
const DefaultMaxExpansions = 3_000_000

// Result is the outcome of a search.
type Result struct {
	Schedule   *sched.Schedule // best schedule found
	Length     int64           // its makespan
	Closed     bool            // true when Length is proven optimal
	Expansions int64           // search-tree nodes expanded
}

type searcher struct {
	g          *dag.Graph
	numProcs   int
	s          *sched.Schedule
	sl         []int64 // static levels
	best       *sched.Schedule
	bestLen    int64
	expansions int64
	maxExp     int64
	truncated  bool
	shared     *sharedIncumbent // non-nil only in parallel search
	lbStart    []int64          // scratch for the critical-path bound
	topo       []dag.NodeID
	remaining  []int // unscheduled parent count
	ready      []dag.NodeID
}

// Schedule finds a minimum-makespan schedule of g on numProcs identical
// processors under the clique communication model.
func Schedule(g *dag.Graph, numProcs int, opts Options) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("optimal: nil graph")
	}
	if numProcs < 1 {
		return nil, fmt.Errorf("optimal: need at least one processor, got %d", numProcs)
	}
	if g.NumNodes() == 0 {
		return &Result{Schedule: sched.New(g, numProcs), Closed: true}, nil
	}

	se := &searcher{
		g:        g,
		numProcs: numProcs,
		s:        sched.New(g, numProcs),
		sl:       dag.StaticLevels(g),
		maxExp:   opts.MaxExpansions,
		lbStart:  make([]int64, g.NumNodes()),
		topo:     g.TopoOrder(),
	}
	if se.maxExp <= 0 {
		se.maxExp = DefaultMaxExpansions
	}

	// Incumbent: the best schedule over every clique-model heuristic,
	// unless the caller seeds a bound. A tight incumbent is what lets
	// the communication-heavy (CCR 10) instances close.
	se.bestLen = opts.UpperBound + 1
	if opts.UpperBound <= 0 {
		for _, h := range bnp.Algorithms() {
			if m, err := h(g, numProcs); err == nil {
				if se.best == nil || m.Length() < se.bestLen {
					se.best, se.bestLen = m, m.Length()
				}
			}
		}
		for _, h := range unc.Algorithms() {
			if d, err := h(g); err == nil && d.ProcessorsUsed() <= numProcs {
				if dl := d.Length(); se.best == nil || dl < se.bestLen {
					se.best, se.bestLen = compact(g, d, numProcs), dl
				}
			}
		}
		if se.best == nil {
			m, err := bnp.HLFET(g, numProcs)
			if err != nil {
				return nil, err
			}
			se.best, se.bestLen = m, m.Length()
		}
	}

	se.remaining = make([]int, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		se.remaining[v] = g.InDegree(dag.NodeID(v))
		if se.remaining[v] == 0 {
			se.ready = append(se.ready, dag.NodeID(v))
		}
	}
	se.dfs()
	return &Result{
		Schedule:   se.best,
		Length:     se.bestLen,
		Closed:     !se.truncated,
		Expansions: se.expansions,
	}, nil
}

// compact re-homes a schedule that may use more processor slots than
// numProcs but no more distinct processors; used to adopt UNC incumbents.
func compact(g *dag.Graph, s *sched.Schedule, numProcs int) *sched.Schedule {
	remap := map[int]int{}
	out := sched.New(g, numProcs)
	type placement struct {
		n     dag.NodeID
		p     int
		start int64
	}
	var ps []placement
	for v := 0; v < g.NumNodes(); v++ {
		n := dag.NodeID(v)
		p := s.ProcOf(n)
		if _, ok := remap[p]; !ok {
			remap[p] = len(remap)
		}
		ps = append(ps, placement{n, remap[p], s.StartOf(n)})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].start < ps[j].start })
	for _, pl := range ps {
		out.MustPlace(pl.n, pl.p, pl.start)
	}
	return out
}

func (se *searcher) dfs() {
	if se.truncated {
		return
	}
	if se.s.Complete() {
		se.offerIncumbent()
		return
	}
	if se.expansions >= se.maxExp {
		se.truncated = true
		return
	}
	se.expansions++
	if se.lowerBound() >= se.effectiveBest() {
		return
	}

	// Branch: every ready task on every non-empty processor plus the
	// first empty one, ordered by EST so promising children go first.
	for _, b := range se.branches() {
		se.apply(b.n, b.p, b.est)
		se.dfs()
		se.undo(b.n)
		if se.truncated {
			return
		}
	}
}

func (se *searcher) apply(n dag.NodeID, p int, est int64) {
	se.s.MustPlace(n, p, est)
	for i, m := range se.ready {
		if m == n {
			se.ready = append(se.ready[:i], se.ready[i+1:]...)
			break
		}
	}
	for _, a := range se.g.Succs(n) {
		se.remaining[a.To]--
		if se.remaining[a.To] == 0 {
			se.ready = append(se.ready, a.To)
		}
	}
}

func (se *searcher) undo(n dag.NodeID) {
	for _, a := range se.g.Succs(n) {
		if se.remaining[a.To] == 0 {
			for i := len(se.ready) - 1; i >= 0; i-- {
				if se.ready[i] == a.To {
					se.ready = append(se.ready[:i], se.ready[i+1:]...)
					break
				}
			}
		}
		se.remaining[a.To]++
	}
	se.s.Unplace(n)
	se.ready = append(se.ready, n)
}

// lowerBound returns an admissible bound on the best completion time
// reachable from the current partial schedule.
func (se *searcher) lowerBound() int64 {
	lb := se.s.Length()

	// Critical-path bound. The recursion is optimistic about
	// communication (a child might co-locate with any parent), except
	// for the join refinement: a node can share a processor with at most
	// one group of scheduled parents, so at least the second-largest
	// arrival (counting communication from other processors) constrains
	// its start.
	for _, v := range se.topo {
		if se.s.IsScheduled(v) {
			se.lbStart[v] = se.s.StartOf(v)
			continue
		}
		var t int64
		for _, pr := range se.g.Preds(v) {
			var f int64
			if se.s.IsScheduled(pr.To) {
				f = se.s.FinishOf(pr.To)
			} else {
				f = se.lbStart[pr.To] + se.g.Weight(pr.To)
			}
			if f > t {
				t = f
			}
		}
		if jb := se.joinBound(v); jb > t {
			t = jb
		}
		se.lbStart[v] = t
		if c := t + se.sl[v]; c > lb {
			lb = c
		}
	}

	// Load bound: busy-or-committed processor time plus remaining work,
	// spread over all processors.
	var committed int64
	for p := 0; p < se.numProcs; p++ {
		if slots := se.s.Slots(p); len(slots) > 0 {
			committed += slots[len(slots)-1].Finish
		}
	}
	var remainingWork int64
	for v := 0; v < se.g.NumNodes(); v++ {
		if !se.s.IsScheduled(dag.NodeID(v)) {
			remainingWork += se.g.Weight(dag.NodeID(v))
		}
	}
	if load := ceilDiv(committed+remainingWork, int64(se.numProcs)); load > lb {
		lb = load
	}
	return lb
}

// joinBound lower-bounds the start of unscheduled node v from its
// scheduled parents: v lands on some processor q, so it starts no
// earlier than min over q of max(local finishes on q, remote arrivals
// finish+c from elsewhere). The minimum is attained either on the
// processor of the latest-arriving parent or on a fresh processor, so
// two arrival maxima suffice.
func (se *searcher) joinBound(v dag.NodeID) int64 {
	var a1 int64 = -1 // largest arrival (finish + c) among scheduled parents
	p1 := -1          // its processor
	for _, pr := range se.g.Preds(v) {
		if !se.s.IsScheduled(pr.To) {
			continue
		}
		if arr := se.s.FinishOf(pr.To) + pr.Weight; arr > a1 {
			a1 = arr
			p1 = se.s.ProcOf(pr.To)
		}
	}
	if p1 < 0 {
		return 0
	}
	var a2, f1 int64 // max arrival off p1; max finish on p1
	for _, pr := range se.g.Preds(v) {
		if !se.s.IsScheduled(pr.To) {
			continue
		}
		if se.s.ProcOf(pr.To) == p1 {
			if f := se.s.FinishOf(pr.To); f > f1 {
				f1 = f
			}
		} else if arr := se.s.FinishOf(pr.To) + pr.Weight; arr > a2 {
			a2 = arr
		}
	}
	onP1 := f1
	if a2 > onP1 {
		onP1 = a2
	}
	if a1 < onP1 {
		return a1
	}
	return onP1
}

func ceilDiv(a, b int64) int64 {
	return (a + b - 1) / b
}

// snapshot deep-copies the current partial schedule (which is complete
// when called) into a fresh Schedule.
func snapshot(s *sched.Schedule, numProcs int) *sched.Schedule {
	g := s.Graph()
	out := sched.New(g, numProcs)
	type placement struct {
		n     dag.NodeID
		p     int
		start int64
	}
	var ps []placement
	for v := 0; v < g.NumNodes(); v++ {
		n := dag.NodeID(v)
		ps = append(ps, placement{n, s.ProcOf(n), s.StartOf(n)})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].start < ps[j].start })
	for _, pl := range ps {
		out.MustPlace(pl.n, pl.p, pl.start)
	}
	return out
}
