package optimal

import (
	"math/rand"
	"testing"

	"repro/internal/dag"
)

func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 12; trial++ {
		g := randomGraph(rng, 4+rng.Intn(7), 40)
		for _, p := range []int{2, 4} {
			seq, err := Schedule(g, p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			par, err := ScheduleParallel(g, p, Options{}, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !seq.Closed || !par.Closed {
				t.Fatalf("trial %d: searches did not close (seq=%v par=%v)",
					trial, seq.Closed, par.Closed)
			}
			if seq.Length != par.Length {
				t.Fatalf("trial %d p=%d: sequential %d != parallel %d",
					trial, p, seq.Length, par.Length)
			}
			if par.Schedule == nil {
				t.Fatalf("trial %d: parallel returned nil schedule", trial)
			}
			if err := par.Schedule.Validate(); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if par.Schedule.Length() != par.Length {
				t.Fatalf("trial %d: schedule length %d != reported %d",
					trial, par.Schedule.Length(), par.Length)
			}
		}
	}
}

func TestParallelSingleWorkerDelegates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 6, 30)
	seq, err := Schedule(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ScheduleParallel(g, 2, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Length != par.Length {
		t.Errorf("1-worker parallel %d != sequential %d", par.Length, seq.Length)
	}
}

func TestParallelErrors(t *testing.T) {
	if _, err := ScheduleParallel(nil, 2, Options{}, 4); err == nil {
		t.Error("accepted nil graph")
	}
}

func TestParallelUpperBoundInfeasible(t *testing.T) {
	// Same setup as the sequential upper-bound test: optimum 4, bound 3.
	bld := newFourTaskBuilder()
	res, err := ScheduleParallel(bld, 2, Options{UpperBound: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule != nil {
		t.Errorf("found schedule of length %d under infeasible bound", res.Length)
	}
}

func TestParallelDeterministicValue(t *testing.T) {
	// Parallel search may return different optimal schedules between
	// runs, but the optimal value must be stable.
	rng := rand.New(rand.NewSource(41))
	g := randomGraph(rng, 9, 60)
	var lengths []int64
	for i := 0; i < 3; i++ {
		res, err := ScheduleParallel(g, 3, Options{}, 6)
		if err != nil {
			t.Fatal(err)
		}
		lengths = append(lengths, res.Length)
	}
	if lengths[0] != lengths[1] || lengths[1] != lengths[2] {
		t.Errorf("optimal value varies across parallel runs: %v", lengths)
	}
}

// newFourTaskBuilder builds 4 independent weight-2 tasks (optimum 4 on
// two processors).
func newFourTaskBuilder() *dag.Graph {
	b := dag.NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddNode(2)
	}
	return b.MustBuild()
}
