package ft

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Stats summarizes a Monte-Carlo fault-injection study of one compiled
// schedule: the distribution of realized makespans, the survival rate
// against the deadline, and the mean utilization split.
type Stats struct {
	// Static is the planned makespan of the schedule.
	Static int64
	// Trials is the number of simulated executions.
	Trials int
	// Finished counts the trials in which every task completed.
	Finished int
	// Survived counts the trials that finished with a makespan at or
	// under Options.Deadline (every finished trial when no deadline is
	// set).
	Survived int
	// SurvivalRate is Survived/Trials.
	SurvivalRate float64
	// MeanRatio is the mean realized/static ratio over the finished
	// trials (0 when none finished).
	MeanRatio float64
	// P99Ratio is the nearest-rank 99th-percentile ratio over all
	// trials, with unfinished trials counted as +Inf — the SLO view.
	P99Ratio float64
	// MeanCrashes is the mean number of processor crashes per trial
	// within the execution horizon.
	MeanCrashes float64
	// MeanBusyFrac, MeanIdleFrac, and MeanDownFrac split the mean
	// processor-time of the execution horizon (they sum to 1 whenever
	// some trial had a positive horizon).
	MeanBusyFrac, MeanIdleFrac, MeanDownFrac float64
	// Ratios holds the per-trial ratios in trial order (+Inf for
	// unfinished trials), for callers that aggregate across schedules.
	Ratios []float64
	// Makespans holds the per-trial realized makespans in trial order,
	// -1 for unfinished trials.
	Makespans []int64
}

// MonteCarlo executes the schedule for the given number of independent
// trials (trial numbers 0..trials-1) and returns the fault-injection
// statistics. Results are deterministic in (opts, trials) and
// byte-reproducible at any concurrency, exactly as sim.MonteCarlo.
func MonteCarlo(x *Exec, opts Options, trials int) (Stats, error) {
	if trials < 1 {
		return Stats{}, fmt.Errorf("ft: MonteCarlo needs at least one trial, got %d", trials)
	}
	if err := opts.validate(x.numProcs); err != nil {
		return Stats{}, err
	}
	if x.apn != nil && opts.recovery().Name() != "none" {
		return Stats{}, fmt.Errorf("ft: recovery policy %q is not supported on APN schedules", opts.recovery().Name())
	}
	st := Stats{
		Static:    x.static,
		Trials:    trials,
		Ratios:    make([]float64, trials),
		Makespans: make([]int64, trials),
	}
	var sumRatio, sumBusy, sumIdle, sumDown float64
	var sumCrashes int64
	for t := 0; t < trials; t++ {
		var res Result
		if x.apn != nil {
			res = x.apn.run(&opts, t)
		} else {
			res = x.clique.run(&opts, opts.recovery(), t)
		}
		st.Ratios[t] = res.Ratio
		sumCrashes += int64(res.Crashes)
		if res.Finished {
			st.Finished++
			st.Makespans[t] = res.Makespan
			sumRatio += res.Ratio
			if opts.Deadline == 0 || res.Makespan <= opts.Deadline {
				st.Survived++
			}
		} else {
			st.Makespans[t] = -1
		}
		if res.Horizon > 0 {
			span := float64(res.Horizon) * float64(x.numProcs)
			var b, i, d int64
			for p := 0; p < x.numProcs; p++ {
				b += res.Busy[p]
				i += res.Idle[p]
				d += res.Down[p]
			}
			sumBusy += float64(b) / span
			sumIdle += float64(i) / span
			sumDown += float64(d) / span
		} else {
			sumIdle++ // an empty horizon is all idle
		}
	}
	st.SurvivalRate = float64(st.Survived) / float64(trials)
	if st.Finished > 0 {
		st.MeanRatio = sumRatio / float64(st.Finished)
	}
	sorted := append([]float64(nil), st.Ratios...)
	sort.Float64s(sorted)
	st.P99Ratio = sorted[sim.PercentileIndex(trials, 0.99)]
	st.MeanCrashes = float64(sumCrashes) / float64(trials)
	st.MeanBusyFrac = sumBusy / float64(trials)
	st.MeanIdleFrac = sumIdle / float64(trials)
	st.MeanDownFrac = sumDown / float64(trials)
	return st, nil
}
