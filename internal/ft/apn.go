package ft

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dag"
	"repro/internal/machine"
	"repro/internal/pq"
	"repro/internal/sim"
)

// ajob is one unit of APN work: a task execution on a processor, or a
// message transfer on a directed link channel.
type ajob struct {
	base  int64  // unperturbed duration
	floor int64  // static start (the timetable release floor)
	ent   uint64 // perturbation entity key
	proc  int32  // processor of a task job, -1 for message transfers
	ch    int32  // channel index of a message job, -1 for tasks
}

// apnExec is the immutable compilation of an APN schedule for
// fault-injected replay: sim.CompileAPN's job DAG (tasks, per-hop
// message transfers, processor chains, route chains, per-channel
// contention chains), plus the channel endpoint table the link-outage
// model draws its windows for. All arcs are lag-free — APN
// communication is explicit message jobs, never an arc lag.
type apnExec struct {
	tasks    int
	numProcs int
	static   int64
	jobs     []ajob
	arcs     []int32
	arcOff   []int32
	indeg    []int32
	channels [][2]int // directed channel endpoints, indexed by ajob.ch
}

// CompileAPN translates a complete APN schedule into a fault-capable
// Exec. The job DAG mirrors sim.CompileAPN exactly — same jobs, same
// chains, same entity keys — so the zero-fault replay is byte-identical
// to the fault-free simulator; channels are additionally enumerated (in
// deterministic endpoint order, via machine.Schedule.Channels) so
// outage windows can be drawn per directed link.
func CompileAPN(s *machine.Schedule) (*Exec, error) {
	if !s.Complete() {
		return nil, fmt.Errorf("ft: cannot compile a partial APN schedule (%d of %d tasks placed)",
			s.Placed(), s.Graph().NumNodes())
	}
	g := s.Graph()
	n := g.NumNodes()
	x := &apnExec{
		tasks:    n,
		numProcs: s.NumProcs(),
		static:   s.Makespan(),
		channels: s.Channels(),
	}
	chanIndex := make(map[[2]int]int32, len(x.channels))
	for i, ch := range x.channels {
		chanIndex[ch] = int32(i)
	}
	for v := 0; v < n; v++ {
		node := dag.NodeID(v)
		x.jobs = append(x.jobs, ajob{
			base:  s.FinishOf(node) - s.StartOf(node),
			floor: s.StartOf(node),
			ent:   sim.TaskEntity(node),
			proc:  int32(s.ProcOf(node)),
			ch:    -1,
		})
	}
	var from, to []int32
	addArc := func(u, v int32) { from = append(from, u); to = append(to, v) }
	for p := 0; p < s.NumProcs(); p++ {
		slots := s.Slots(p)
		for i := 1; i < len(slots); i++ {
			addArc(int32(slots[i-1].Node), int32(slots[i].Node))
		}
	}
	type chanHop struct {
		job   int32
		start int64
	}
	chanHops := make([][]chanHop, len(x.channels))
	for v := 0; v < n; v++ {
		child := dag.NodeID(v)
		for _, pr := range g.Preds(child) {
			parent := pr.To
			prev := int32(parent)
			s.EachMessageHop(parent, child, func(h machine.LinkHop) {
				ci := chanIndex[[2]int{h.From, h.To}]
				job := int32(len(x.jobs))
				x.jobs = append(x.jobs, ajob{
					base:  h.Finish - h.Start,
					floor: h.Start,
					ent:   sim.CommEntity(parent, child),
					proc:  -1,
					ch:    ci,
				})
				addArc(prev, job)
				chanHops[ci] = append(chanHops[ci], chanHop{job: job, start: h.Start})
				prev = job
			})
			addArc(prev, int32(child))
		}
	}
	// Contention queues: chain each channel's transfers in static start
	// order (starts are distinct: committed reservations on one channel
	// never overlap and have positive duration).
	for _, hops := range chanHops {
		sort.Slice(hops, func(i, j int) bool { return hops[i].start < hops[j].start })
		for i := 1; i < len(hops); i++ {
			addArc(hops[i-1].job, hops[i].job)
		}
	}
	// CSR layout.
	m := len(x.jobs)
	x.arcOff = make([]int32, m+1)
	for _, u := range from {
		x.arcOff[u+1]++
	}
	for i := 1; i <= m; i++ {
		x.arcOff[i] += x.arcOff[i-1]
	}
	x.arcs = make([]int32, len(to))
	next := make([]int32, m)
	for i, u := range from {
		x.arcs[x.arcOff[u]+next[u]] = to[i]
		next[u]++
	}
	x.indeg = make([]int32, m)
	for _, v := range x.arcs {
		x.indeg[v]++
	}
	return &Exec{apn: x, numProcs: x.numProcs, static: x.static}, nil
}

// outGen lazily materializes the outage-window sequence of one directed
// channel: alternating exponential up and outage draws along the draw
// counter, generated strictly in time order so the realized windows are
// independent of the order transfers query them.
type outGen struct {
	wins [][2]int64
	k    int   // next draw index
	t    int64 // end of the last generated window
}

// apnRuntime is the mutable state of one fault-injected APN execution:
// sim's arc-based event loop plus processor fail-stop state and
// per-channel outage generators.
type apnRuntime struct {
	x     *apnExec
	opts  *Options
	trial uint64

	deps     []int32
	ready    []int64
	startAt  []int64 // realized start of a released job
	epoch    []int32
	released []bool
	finished []bool // per task
	alive    []bool // per task; false once its processor crashed

	gens []outGen

	downAt   []int64
	repairAt []int64
	faultK   []int

	busy, down []int64
	crashes    int

	heap      *pq.Heap[event]
	pending   int
	remaining int
	now       int64
	horizon   int64
	makespan  int64
}

// run executes the compiled APN schedule once under faults. Only the
// None recovery policy applies (rerouting messages around failures is
// out of scope): crashes permanently kill the unfinished tasks of the
// processor, and link outages delay the start of message transfers on
// the affected channel while in-flight transfers complete.
func (x *apnExec) run(opts *Options, trial int) Result {
	m := len(x.jobs)
	rt := &apnRuntime{
		x:     x,
		opts:  opts,
		trial: sim.TrialSeed(opts.Sim.Seed, trial),

		deps:     make([]int32, m),
		ready:    make([]int64, m),
		startAt:  make([]int64, m),
		epoch:    make([]int32, m),
		released: make([]bool, m),
		finished: make([]bool, x.tasks),
		alive:    make([]bool, x.tasks),
		gens:     make([]outGen, len(x.channels)),

		downAt:   make([]int64, x.numProcs),
		repairAt: make([]int64, x.numProcs),
		faultK:   make([]int, x.numProcs),

		busy: make([]int64, x.numProcs),
		down: make([]int64, x.numProcs),

		heap:      pq.New[event](eventLess),
		remaining: x.tasks,
	}
	copy(rt.deps, x.indeg)
	timetable := opts.Sim.Policy == sim.PolicyTimetable
	for j := range rt.ready {
		if timetable {
			rt.ready[j] = x.jobs[j].floor
		}
	}
	for v := range rt.alive {
		rt.alive[v] = true
	}
	for p := 0; p < x.numProcs; p++ {
		rt.downAt[p] = -1
		rt.repairAt[p] = never
	}
	if opts.Faults.MTBF > 0 {
		for p := 0; p < x.numProcs; p++ {
			up := sim.ExpDuration(opts.Faults.MTBF, rt.trial, sim.ProcFaultEntity(p, rt.faultK[p]))
			rt.faultK[p]++
			rt.heap.Push(event{t: up, kind: evCrash, id: int32(p)})
		}
	}
	for j := 0; j < m; j++ {
		if rt.deps[j] == 0 {
			rt.release(int32(j))
		}
	}
	for rt.remaining > 0 && rt.pending > 0 {
		ev := rt.heap.Pop()
		rt.now = ev.t
		if ev.t > rt.horizon {
			rt.horizon = ev.t
		}
		switch ev.kind {
		case evComplete:
			rt.complete(ev)
		case evCrash:
			rt.crash(int(ev.id))
		case evRepair:
			rt.repairProc(int(ev.id))
		}
	}
	return rt.result()
}

// release starts job j at its accumulated ready time — pushed past any
// outage window for a message transfer — and schedules its completion.
// A task whose processor already crashed is dead and never starts.
func (rt *apnRuntime) release(j int32) {
	jb := &rt.x.jobs[j]
	if jb.proc >= 0 && !rt.alive[j] {
		return
	}
	dur := jb.base
	if rt.opts.Sim.Perturb.Dist != sim.DistNone {
		dur = sim.ScaleDur(dur, rt.opts.Sim.Perturb.Multiplier(rt.trial, jb.ent))
	}
	if rt.opts.Sim.Speed != nil && jb.proc >= 0 {
		dur = sim.ScaleDur(dur, rt.opts.Sim.Speed[jb.proc])
	}
	start := rt.ready[j]
	if jb.ch >= 0 && rt.opts.Faults.LinkMTBF > 0 {
		start = rt.pushPastOutages(int(jb.ch), start)
	}
	rt.startAt[j] = start
	rt.released[j] = true
	rt.heap.Push(event{t: start + dur, kind: evComplete, id: j, epoch: rt.epoch[j]})
	rt.pending++
}

// pushPastOutages returns the earliest time at or after r not covered
// by an outage window of channel ch, generating windows on demand.
func (rt *apnRuntime) pushPastOutages(ch int, r int64) int64 {
	g := &rt.gens[ch]
	u, v := rt.x.channels[ch][0], rt.x.channels[ch][1]
	for {
		for g.t <= r {
			up := sim.ExpDuration(rt.opts.Faults.LinkMTBF, rt.trial, sim.LinkFaultEntity(u, v, g.k))
			g.k++
			out := sim.ExpDuration(rt.opts.Faults.MeanOutage, rt.trial, sim.LinkFaultEntity(u, v, g.k))
			g.k++
			ws := g.t + up
			g.t = ws + out
			g.wins = append(g.wins, [2]int64{ws, g.t})
		}
		moved := false
		for i := range g.wins {
			if r >= g.wins[i][0] && r < g.wins[i][1] {
				r = g.wins[i][1]
				moved = true
			}
		}
		if !moved {
			return r
		}
	}
}

// complete processes one job completion, folding the clock into each
// successor's ready time and releasing those whose dependencies clear.
func (rt *apnRuntime) complete(ev event) {
	j := ev.id
	if rt.epoch[j] != ev.epoch || !rt.released[j] {
		return // killed while in flight; pending was already adjusted
	}
	rt.pending--
	rt.released[j] = false
	t := ev.t
	jb := &rt.x.jobs[j]
	if jb.proc >= 0 {
		rt.busy[jb.proc] += t - rt.startAt[j]
		rt.finished[j] = true
		rt.remaining--
		if t > rt.makespan {
			rt.makespan = t
		}
	}
	for _, to := range rt.x.arcs[rt.x.arcOff[j]:rt.x.arcOff[j+1]] {
		if t > rt.ready[to] {
			rt.ready[to] = t
		}
		if rt.deps[to]--; rt.deps[to] == 0 {
			rt.release(to)
		}
	}
}

// crash processes the fail-stop crash of processor p: every unfinished
// task placed on p is killed — the running one loses its partial work,
// released-but-not-started ones are cancelled — and a repair is
// scheduled when the model allows one. Messages are unaffected:
// store-and-forward transfers run on the links, not the processors.
func (rt *apnRuntime) crash(p int) {
	rt.crashes++
	tc := rt.now
	rt.downAt[p] = tc
	if rt.opts.Faults.MeanRepair > 0 {
		d := sim.ExpDuration(rt.opts.Faults.MeanRepair, rt.trial, sim.ProcFaultEntity(p, rt.faultK[p]))
		rt.faultK[p]++
		rt.repairAt[p] = tc + d
		rt.heap.Push(event{t: tc + d, kind: evRepair, id: int32(p)})
	}
	for j := 0; j < rt.x.tasks; j++ {
		if int(rt.x.jobs[j].proc) != p || rt.finished[j] || !rt.alive[j] {
			continue
		}
		if rt.released[j] {
			if rt.startAt[j] <= tc {
				rt.busy[p] += tc - rt.startAt[j]
			}
			rt.epoch[j]++
			rt.released[j] = false
			rt.pending--
		}
		rt.alive[j] = false
	}
}

// repairProc returns processor p to service and draws its next crash.
// Under the None policy no new work is placed on it — its tasks died
// with the crash — but downtime accounting needs the boundary.
func (rt *apnRuntime) repairProc(p int) {
	tr := rt.now
	rt.down[p] += tr - rt.downAt[p]
	rt.downAt[p] = -1
	rt.repairAt[p] = never
	up := sim.ExpDuration(rt.opts.Faults.MTBF, rt.trial, sim.ProcFaultEntity(p, rt.faultK[p]))
	rt.faultK[p]++
	rt.heap.Push(event{t: tr + up, kind: evCrash, id: int32(p)})
}

// result assembles the run's Result, clamping trailing downtime to the
// horizon exactly as the clique engine does.
func (rt *apnRuntime) result() Result {
	res := Result{
		Static:  rt.x.static,
		Horizon: rt.horizon,
		Crashes: rt.crashes,
		Lost:    rt.remaining,
		Busy:    rt.busy,
		Down:    rt.down,
		Idle:    make([]int64, rt.x.numProcs),
	}
	for p := 0; p < rt.x.numProcs; p++ {
		if rt.downAt[p] >= 0 && rt.horizon > rt.downAt[p] {
			res.Down[p] += rt.horizon - rt.downAt[p]
		}
		res.Idle[p] = rt.horizon - res.Busy[p] - res.Down[p]
	}
	if rt.remaining == 0 {
		res.Finished = true
		res.Makespan = rt.makespan
		res.Ratio = ratio(rt.makespan, rt.x.static)
	} else {
		res.Ratio = math.Inf(1)
	}
	return res
}
