package ft

import "repro/internal/obs"

// Fault-injection metrics: executions, events drained from the queue,
// crashes injected, and tasks lost unrecoverably. Accumulated locally
// per execution and folded in once at the end.
var (
	ftRuns    = obs.NewCounter("ft.runs")
	ftEvents  = obs.NewCounter("ft.events")
	ftCrashes = obs.NewCounter("ft.crashes")
	ftLost    = obs.NewCounter("ft.lost")
)
