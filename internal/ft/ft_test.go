package ft_test

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/algo/apn"
	"repro/internal/algo/bnp"
	"repro/internal/algo/unc"
	"repro/internal/dag"
	"repro/internal/ft"
	"repro/internal/gen"
	"repro/internal/machine"
	"repro/internal/sim"
)

var (
	bnpNames = []string{"HLFET", "ISH", "ETF", "LAST", "MCP", "DLS"}
	uncNames = []string{"EZ", "LC", "DSC", "MD", "DCP"}
	apnNames = []string{"MH", "DLS", "BU", "BSA"}
)

// familyGraphs returns one instance per registered generator family:
// the full breadth of the registry at a size small enough for an
// exhaustive invariant sweep.
func familyGraphs(t *testing.T) []gen.NamedGraph {
	t.Helper()
	fixed := map[string]gen.Params{
		"psg": {"name": "kwok-ahmad-9"},
	}
	var out []gen.NamedGraph
	for fi, f := range gen.Generators() {
		var (
			g   *dag.Graph
			err error
		)
		if f.Random {
			g, err = gen.Generate(f.Name, int64(100+fi), gen.Params{"v": "40", "ccr": "1"})
		} else {
			g, err = gen.Generate(f.Name, int64(100+fi), fixed[f.Name])
		}
		if err != nil {
			t.Fatalf("generate %s: %v", f.Name, err)
		}
		out = append(out, gen.NamedGraph{Name: f.Name, G: g})
	}
	if len(out) < 11 {
		t.Fatalf("expected at least 11 families, got %d", len(out))
	}
	return out
}

// altSpeeds returns a deterministic heterogeneous speed vector.
func altSpeeds(n int) []float64 {
	sp := make([]float64, n)
	for i := range sp {
		switch i % 3 {
		case 0:
			sp[i] = 1
		case 1:
			sp[i] = 1.5
		default:
			sp[i] = 0.75
		}
	}
	return sp
}

// checkZeroFault runs a fault-free ft execution against the plain
// simulator for trials 0..2 and requires byte-identical makespans.
func checkZeroFault(t *testing.T, label string, plan *sim.Plan, x *ft.Exec, opts sim.Options) {
	t.Helper()
	for trial := 0; trial < 3; trial++ {
		want, err := plan.Run(opts, trial)
		if err != nil {
			t.Fatalf("%s trial %d: sim: %v", label, trial, err)
		}
		res, err := x.Run(ft.Options{Sim: opts}, trial)
		if err != nil {
			t.Fatalf("%s trial %d: ft: %v", label, trial, err)
		}
		if !res.Finished {
			t.Fatalf("%s trial %d: fault-free run did not finish", label, trial)
		}
		if res.Makespan != want {
			t.Fatalf("%s trial %d: ft makespan %d, sim makespan %d", label, trial, res.Makespan, want)
		}
		if res.Crashes != 0 || res.Lost != 0 {
			t.Fatalf("%s trial %d: fault-free run reports %d crashes, %d lost", label, trial, res.Crashes, res.Lost)
		}
		for p, d := range res.Down {
			if d != 0 {
				t.Fatalf("%s trial %d: processor %d has downtime %d without faults", label, trial, p, d)
			}
		}
		if res.Static != plan.Static() {
			t.Fatalf("%s trial %d: static %d vs plan %d", label, trial, res.Static, plan.Static())
		}
	}
}

// zeroFaultOptions returns the simulator option sets the invariant is
// checked under: deterministic replay, lognormal noise with eager
// dispatch, and uniform noise with an optional runtime speed vector.
func zeroFaultOptions(numProcs int, runtimeSpeeds bool) []sim.Options {
	opts := []sim.Options{
		{},
		{Perturb: sim.Perturbation{Dist: sim.DistLognormal, TaskSpread: 0.3, CommSpread: 0.3}, Policy: sim.PolicyEager, Seed: 11},
		{Perturb: sim.Perturbation{Dist: sim.DistUniform, TaskSpread: 0.4, CommSpread: 0.4}, Seed: 5},
	}
	if runtimeSpeeds {
		opts = append(opts, sim.Options{
			Perturb: sim.Perturbation{Dist: sim.DistLognormal, TaskSpread: 0.2, CommSpread: 0.2},
			Seed:    23,
			Speed:   altSpeeds(numProcs),
		})
	}
	return opts
}

// checkCliqueZeroFault compiles a clique schedule for both engines and
// checks the invariant under every option set.
func checkCliqueZeroFault(t *testing.T, label string, s interface {
	Makespan() int64
	NumProcs() int
}, plan *sim.Plan, x *ft.Exec) {
	t.Helper()
	for oi, opts := range zeroFaultOptions(s.NumProcs(), true) {
		checkZeroFault(t, fmt.Sprintf("%s opts[%d]", label, oi), plan, x, opts)
	}
}

// TestZeroFaultMatchesSim is the invariant the whole package hangs on:
// with the zero fault model the fault-capable engines reproduce
// sim.Plan.Run byte-identically for all 15 algorithms over every
// registered generator family, clique and APN, homogeneous and
// heterogeneous, under every perturbation/policy combination.
func TestZeroFaultMatchesSim(t *testing.T) {
	fams := familyGraphs(t)
	topo := machine.Hypercube(3)
	for _, ng := range fams {
		procs := 8
		for _, name := range bnpNames {
			s, err := bnp.ScheduleHet(name, ng.G, procs, nil)
			if err != nil {
				t.Fatalf("bnp %s on %s: %v", name, ng.Name, err)
			}
			plan, err := sim.Compile(s)
			if err != nil {
				t.Fatalf("bnp %s on %s: compile sim: %v", name, ng.Name, err)
			}
			x, err := ft.Compile(s)
			if err != nil {
				t.Fatalf("bnp %s on %s: compile ft: %v", name, ng.Name, err)
			}
			checkCliqueZeroFault(t, fmt.Sprintf("BNP %s on %s", name, ng.Name), s, plan, x)
			s.Release()
		}
		for _, name := range uncNames {
			s, err := unc.ScheduleHet(name, ng.G, nil)
			if err != nil {
				t.Fatalf("unc %s on %s: %v", name, ng.Name, err)
			}
			plan, err := sim.Compile(s)
			if err != nil {
				t.Fatalf("unc %s on %s: compile sim: %v", name, ng.Name, err)
			}
			x, err := ft.Compile(s)
			if err != nil {
				t.Fatalf("unc %s on %s: compile ft: %v", name, ng.Name, err)
			}
			checkCliqueZeroFault(t, fmt.Sprintf("UNC %s on %s", name, ng.Name), s, plan, x)
			s.Release()
		}
		for _, name := range apnNames {
			s, err := apn.ScheduleHet(name, ng.G, topo, nil)
			if err != nil {
				t.Fatalf("apn %s on %s: %v", name, ng.Name, err)
			}
			plan, err := sim.CompileAPN(s)
			if err != nil {
				t.Fatalf("apn %s on %s: compile sim: %v", name, ng.Name, err)
			}
			x, err := ft.CompileAPN(s)
			if err != nil {
				t.Fatalf("apn %s on %s: compile ft: %v", name, ng.Name, err)
			}
			for oi, opts := range zeroFaultOptions(s.NumProcs(), true) {
				checkZeroFault(t, fmt.Sprintf("APN %s on %s opts[%d]", name, ng.Name, oi), plan, x, opts)
			}
		}
	}
}

// TestZeroFaultMatchesSimHetSchedules repeats the invariant for
// schedules built with per-processor speed vectors (speed-aware static
// plans), one algorithm per class.
func TestZeroFaultMatchesSimHetSchedules(t *testing.T) {
	fams := familyGraphs(t)
	topo := machine.Hypercube(3)
	for _, ng := range fams {
		{
			s, err := bnp.ScheduleHet("MCP", ng.G, 8, altSpeeds(8))
			if err != nil {
				t.Fatalf("bnp MCP het on %s: %v", ng.Name, err)
			}
			plan, err := sim.Compile(s)
			if err != nil {
				t.Fatalf("bnp MCP het on %s: %v", ng.Name, err)
			}
			x, err := ft.Compile(s)
			if err != nil {
				t.Fatalf("bnp MCP het on %s: %v", ng.Name, err)
			}
			checkCliqueZeroFault(t, "BNP MCP het on "+ng.Name, s, plan, x)
			s.Release()
		}
		{
			n := ng.G.NumNodes()
			s, err := unc.ScheduleHet("DCP", ng.G, altSpeeds(max(n, 1)))
			if err != nil {
				t.Fatalf("unc DCP het on %s: %v", ng.Name, err)
			}
			plan, err := sim.Compile(s)
			if err != nil {
				t.Fatalf("unc DCP het on %s: %v", ng.Name, err)
			}
			x, err := ft.Compile(s)
			if err != nil {
				t.Fatalf("unc DCP het on %s: %v", ng.Name, err)
			}
			checkCliqueZeroFault(t, "UNC DCP het on "+ng.Name, s, plan, x)
			s.Release()
		}
		{
			s, err := apn.ScheduleHet("MH", ng.G, topo, altSpeeds(topo.NumProcs()))
			if err != nil {
				t.Fatalf("apn MH het on %s: %v", ng.Name, err)
			}
			plan, err := sim.CompileAPN(s)
			if err != nil {
				t.Fatalf("apn MH het on %s: %v", ng.Name, err)
			}
			x, err := ft.CompileAPN(s)
			if err != nil {
				t.Fatalf("apn MH het on %s: %v", ng.Name, err)
			}
			for oi, opts := range zeroFaultOptions(s.NumProcs(), true) {
				checkZeroFault(t, fmt.Sprintf("APN MH het on %s opts[%d]", ng.Name, oi), plan, x, opts)
			}
		}
	}
}

// faultyExec builds a medium clique execution used by the fault tests.
func faultyExec(t *testing.T) *ft.Exec {
	t.Helper()
	g, err := gen.Generate("layered", 42, gen.Params{"v": "60", "ccr": "1"})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	s, err := bnp.ScheduleHet("MCP", g, 6, nil)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	defer s.Release()
	x, err := ft.Compile(s)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return x
}

// faultyOptions returns a fault model aggressive enough that crashes
// are near-certain within the static span.
func faultyOptions(x *ft.Exec, pol ft.RecoveryPolicy) ft.Options {
	static := x.Static()
	return ft.Options{
		Faults: sim.FaultModel{
			MTBF:       max64(1, static/2),
			MeanRepair: max64(1, static/10),
		},
		Recovery: pol,
		Deadline: static + static/2,
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// TestUtilizationAccounting checks the exact utilization identity
// Busy[p] + Idle[p] + Down[p] == Horizon for every processor, under
// every recovery policy, with faults injected.
func TestUtilizationAccounting(t *testing.T) {
	x := faultyExec(t)
	static := x.Static()
	for _, pol := range ft.Policies(max64(1, static/16), 6) {
		for trial := 0; trial < 12; trial++ {
			res, err := x.Run(faultyOptions(x, pol), trial)
			if err != nil {
				t.Fatalf("%s trial %d: %v", pol.Name(), trial, err)
			}
			if len(res.Busy) != x.NumProcs() || len(res.Idle) != x.NumProcs() || len(res.Down) != x.NumProcs() {
				t.Fatalf("%s trial %d: utilization arrays not sized to %d processors", pol.Name(), trial, x.NumProcs())
			}
			for p := 0; p < x.NumProcs(); p++ {
				b, i, d := res.Busy[p], res.Idle[p], res.Down[p]
				if b < 0 || i < 0 || d < 0 {
					t.Fatalf("%s trial %d proc %d: negative utilization (%d, %d, %d)", pol.Name(), trial, p, b, i, d)
				}
				if got := b + i + d; got != res.Horizon {
					t.Fatalf("%s trial %d proc %d: busy+idle+down = %d, horizon = %d", pol.Name(), trial, p, got, res.Horizon)
				}
			}
			if res.Finished {
				if res.Makespan > res.Horizon {
					t.Fatalf("%s trial %d: makespan %d beyond horizon %d", pol.Name(), trial, res.Makespan, res.Horizon)
				}
				if want := float64(res.Makespan) / float64(static); res.Ratio != want {
					t.Fatalf("%s trial %d: ratio %g, want %g", pol.Name(), trial, res.Ratio, want)
				}
			} else {
				if !math.IsInf(res.Ratio, 1) {
					t.Fatalf("%s trial %d: unfinished run has finite ratio %g", pol.Name(), trial, res.Ratio)
				}
			}
		}
	}
}

// TestRecoveryDominatesNone pins the headline claim: under crash
// faults, resubmit and checkpoint finish strictly more trials than no
// recovery, and every trial the none policy finishes is crash-free.
func TestRecoveryDominatesNone(t *testing.T) {
	x := faultyExec(t)
	const trials = 40
	finished := map[string]int{}
	for _, pol := range ft.Policies(max64(1, x.Static()/16), 6) {
		st, err := ft.MonteCarlo(x, faultyOptions(x, pol), trials)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		finished[pol.Name()] = st.Finished
		if st.Survived > st.Finished {
			t.Fatalf("%s: survived %d > finished %d", pol.Name(), st.Survived, st.Finished)
		}
	}
	if finished["none"] >= trials {
		t.Fatalf("fault model too weak: none finished all %d trials", trials)
	}
	if finished["resubmit"] <= finished["none"] {
		t.Fatalf("resubmit finished %d trials, none finished %d: no strict improvement", finished["resubmit"], finished["none"])
	}
	if finished["checkpoint"] <= finished["none"] {
		t.Fatalf("checkpoint finished %d trials, none finished %d: no strict improvement", finished["checkpoint"], finished["none"])
	}
}

// TestCheckpointReducesRework compares checkpoint against resubmit on
// identical failure traces: on trials both finish, the mean checkpoint
// makespan must not exceed the mean resubmit makespan (checkpoints can
// only reduce re-executed work).
func TestCheckpointReducesRework(t *testing.T) {
	x := faultyExec(t)
	const trials = 40
	rs, err := ft.MonteCarlo(x, faultyOptions(x, ft.Resubmit()), trials)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	cp, err := ft.MonteCarlo(x, faultyOptions(x, ft.Checkpoint(max64(1, x.Static()/16))), trials)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	var sumRS, sumCP, n int64
	for tr := 0; tr < trials; tr++ {
		if rs.Makespans[tr] >= 0 && cp.Makespans[tr] >= 0 {
			sumRS += rs.Makespans[tr]
			sumCP += cp.Makespans[tr]
			n++
		}
	}
	if n == 0 {
		t.Fatal("no trial finished under both policies")
	}
	if sumCP > sumRS {
		t.Fatalf("checkpoint mean makespan %d over %d paired trials exceeds resubmit %d", sumCP/n, n, sumRS/n)
	}
}

// TestReplicateSurvivesPrimaryCrash builds a single critical task on
// two processors and shows trials where the primary's processor
// crashes but the replica finishes.
func TestReplicateSurvivesPrimaryCrash(t *testing.T) {
	b := dag.NewBuilder()
	v := b.AddNode(100)
	g := b.MustBuild()
	s, err := bnp.ScheduleHet("HLFET", g, 2, nil)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	if s.ProcOf(v) != 0 {
		t.Fatalf("expected the task on processor 0, got %d", s.ProcOf(v))
	}
	x, err := ft.Compile(s)
	s.Release()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	opts := ft.Options{
		Faults: sim.FaultModel{MTBF: 60}, // no repair: a crash is permanent
	}
	var noneMiss, replicateSave int
	for trial := 0; trial < 60; trial++ {
		rn, err := x.Run(opts, trial)
		if err != nil {
			t.Fatalf("none trial %d: %v", trial, err)
		}
		ropts := opts
		ropts.Recovery = ft.Replicate(1)
		rr, err := x.Run(ropts, trial)
		if err != nil {
			t.Fatalf("replicate trial %d: %v", trial, err)
		}
		if !rn.Finished {
			noneMiss++
			if rr.Finished {
				replicateSave++
			}
		}
		if rn.Finished && !rr.Finished {
			t.Fatalf("trial %d: replication lost a trial the baseline finished", trial)
		}
	}
	if noneMiss == 0 {
		t.Fatal("fault model too weak: the unreplicated task always finished")
	}
	if replicateSave == 0 {
		t.Fatal("replication never saved a trial the baseline lost")
	}
}

// TestAPNFaultRuns exercises the APN engine under processor crashes
// and link outages: utilization must balance and recovery policies
// other than none must be rejected.
func TestAPNFaultRuns(t *testing.T) {
	g, err := gen.Generate("layered", 7, gen.Params{"v": "40", "ccr": "2"})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	topo := machine.Hypercube(3)
	s, err := apn.ScheduleHet("MH", g, topo, nil)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	x, err := ft.CompileAPN(s)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	static := x.Static()
	opts := ft.Options{
		Faults: sim.FaultModel{
			MTBF:       max64(1, static),
			MeanRepair: max64(1, static/10),
			LinkMTBF:   max64(1, static),
			MeanOutage: max64(1, static/20),
		},
	}
	var unfinished int
	for trial := 0; trial < 20; trial++ {
		res, err := x.Run(opts, trial)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for p := 0; p < x.NumProcs(); p++ {
			if got := res.Busy[p] + res.Idle[p] + res.Down[p]; got != res.Horizon {
				t.Fatalf("trial %d proc %d: busy+idle+down = %d, horizon = %d", trial, p, got, res.Horizon)
			}
		}
		if !res.Finished {
			unfinished++
			if res.Lost == 0 {
				t.Fatalf("trial %d: unfinished with zero lost tasks", trial)
			}
		}
	}
	if unfinished == 0 {
		t.Fatal("fault model too weak: every APN trial finished without recovery")
	}
	if _, err := x.Run(ft.Options{Faults: opts.Faults, Recovery: ft.Resubmit()}, 0); err == nil {
		t.Fatal("APN execution accepted a resubmit policy")
	}
	if _, err := ft.MonteCarlo(x, ft.Options{Recovery: ft.Replicate(2)}, 4); err == nil {
		t.Fatal("APN MonteCarlo accepted a replicate policy")
	}
}

// TestRunDeterminism requires repeat executions and repeat Monte-Carlo
// studies to be byte-identical.
func TestRunDeterminism(t *testing.T) {
	x := faultyExec(t)
	opts := faultyOptions(x, ft.Checkpoint(max64(1, x.Static()/16)))
	for trial := 0; trial < 8; trial++ {
		a, err := x.Run(opts, trial)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		b, err := x.Run(opts, trial)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: repeat run differs:\n%+v\n%+v", trial, a, b)
		}
	}
	s1, err := ft.MonteCarlo(x, opts, 25)
	if err != nil {
		t.Fatalf("monte carlo: %v", err)
	}
	s2, err := ft.MonteCarlo(x, opts, 25)
	if err != nil {
		t.Fatalf("monte carlo: %v", err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("repeat MonteCarlo differs:\n%+v\n%+v", s1, s2)
	}
}

// TestOptionValidation covers the error paths of Run and MonteCarlo.
func TestOptionValidation(t *testing.T) {
	x := faultyExec(t)
	if _, err := x.Run(ft.Options{Deadline: -1}, 0); err == nil {
		t.Fatal("negative deadline accepted")
	}
	if _, err := x.Run(ft.Options{Faults: sim.FaultModel{MTBF: -1}}, 0); err == nil {
		t.Fatal("negative MTBF accepted")
	}
	if _, err := x.Run(ft.Options{Faults: sim.FaultModel{LinkMTBF: 5}}, 0); err == nil {
		t.Fatal("link faults without a mean outage accepted")
	}
	if _, err := ft.MonteCarlo(x, ft.Options{}, 0); err == nil {
		t.Fatal("zero trials accepted")
	}
	bad := make([]float64, x.NumProcs()+1)
	for i := range bad {
		bad[i] = 1
	}
	if _, err := x.Run(ft.Options{Sim: sim.Options{Speed: bad}}, 0); err == nil {
		t.Fatal("mis-sized speed vector accepted")
	}
}
