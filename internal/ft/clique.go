package ft

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/pq"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Exec is a compiled schedule ready for fault-injected execution. Like
// sim.Plan it is immutable after compilation and safe for concurrent
// Run calls; unlike sim.Plan it keeps the task graph and placement (not
// just a job DAG), because recovery policies re-place work at runtime.
type Exec struct {
	clique *cliqueExec
	apn    *apnExec

	numProcs int
	static   int64
}

// Static returns the planned (unperturbed) makespan of the compiled
// schedule.
func (x *Exec) Static() int64 { return x.static }

// NumProcs returns the processor count of the compiled machine.
func (x *Exec) NumProcs() int { return x.numProcs }

// Run executes the schedule once under the given options and trial
// number. Runs are deterministic in (Options, trial) and independent of
// each other.
func (x *Exec) Run(opts Options, trial int) (Result, error) {
	if err := opts.validate(x.numProcs); err != nil {
		return Result{}, err
	}
	pol := opts.recovery()
	if x.apn != nil {
		if pol.Name() != "none" {
			return Result{}, fmt.Errorf("ft: recovery policy %q is not supported on APN schedules", pol.Name())
		}
		return x.apn.run(&opts, trial), nil
	}
	return x.clique.run(&opts, pol, trial), nil
}

// cliqueExec is the immutable compilation of a clique-model schedule:
// the graph, the static placement, the per-processor execution orders,
// and the static b-levels that prioritize repair and replication.
type cliqueExec struct {
	g        *dag.Graph
	numProcs int
	static   int64
	speeds   []float64 // schedule-level speed vector, nil when homogeneous
	proc     []int32   // static processor per task
	floor    []int64   // static start per task (the timetable floor)
	order    [][]int32 // static task order per processor
	blevel   []int64   // static b-levels (repair priority)
}

// Compile translates a complete clique-model schedule (BNP and UNC
// classes) into a fault-capable Exec.
func Compile(s *sched.Schedule) (*Exec, error) {
	if !s.Complete() {
		return nil, fmt.Errorf("ft: cannot compile a partial schedule (%d of %d tasks placed)",
			s.Placed(), s.Graph().NumNodes())
	}
	g := s.Graph()
	n := g.NumNodes()
	c := &cliqueExec{
		g:        g,
		numProcs: s.NumProcs(),
		static:   s.Makespan(),
		proc:     make([]int32, n),
		floor:    make([]int64, n),
		order:    make([][]int32, s.NumProcs()),
		blevel:   dag.BLevels(g),
	}
	if sp := s.Speeds(); sp != nil {
		c.speeds = append([]float64(nil), sp...)
	}
	for v := 0; v < n; v++ {
		node := dag.NodeID(v)
		c.proc[v] = int32(s.ProcOf(node))
		c.floor[v] = s.StartOf(node)
	}
	for p := 0; p < s.NumProcs(); p++ {
		slots := s.Slots(p)
		if len(slots) == 0 {
			continue
		}
		c.order[p] = make([]int32, len(slots))
		for i, sl := range slots {
			c.order[p][i] = int32(sl.Node)
		}
	}
	return &Exec{clique: c, numProcs: c.numProcs, static: c.static}, nil
}

// execTime returns the static execution-time estimate of task v on
// processor p: the node weight, or ceil(weight/speed[p]) on a
// heterogeneous machine — identical to sched.Schedule.ExecTime, so for
// the static placement it equals the committed slot duration exactly.
func (c *cliqueExec) execTime(v int32, p int) int64 {
	w := c.g.Weight(dag.NodeID(v))
	if c.speeds == nil {
		return w
	}
	return int64(math.Ceil(float64(w) / c.speeds[p]))
}

// Event kinds, in tie-break order: completions before crashes before
// repairs at the same instant, so a task finishing exactly when its
// processor dies survives, and work never starts on a processor in the
// instant before its crash is processed.
const (
	evComplete int8 = iota
	evCrash
	evRepair
)

// event is one entry on the simulation clock: a copy completion, a
// processor crash, or a processor repair.
type event struct {
	t     int64
	kind  int8
	id    int32 // copy index for completions, processor for crash/repair
	epoch int32 // completion validity stamp, see copyRec.epoch
}

func eventLess(a, b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.id < b.id
}

// copyRec is one scheduled execution attempt of a task: its primary
// placement, or a replica added by the replicate policy, or its
// re-placement after a repair pass. Copies are processor-specific
// because data-arrival lags depend on where the copy runs.
type copyRec struct {
	task     int32
	proc     int32
	floor    int64 // release floor (static or repaired start; 0 under eager)
	ready    int64 // floor folded with realized data arrivals
	start    int64 // realized start once released
	finish   int64
	released bool
	dead     bool
	// epoch invalidates in-flight completion events: cancelling or
	// killing a released copy bumps it, so the stale heap entry is
	// skipped when popped.
	epoch int32
}

// runtime is the mutable state of one fault-injected clique execution.
type runtime struct {
	x     *cliqueExec
	opts  *Options
	pol   RecoveryPolicy
	trial uint64

	copies   []copyRec
	copiesOf [][]int32 // task -> copy indices (usually exactly one)
	deps     []int32   // unfinished predecessors per task
	done     []bool
	finTime  []int64 // realized finish of the first finisher
	finStart []int64 // realized start of the first finisher
	finProc  []int32
	saved    []int64 // checkpoint credit per task

	queue     [][]int32 // per processor: copy indices in execution order
	qpos      []int
	runningOn []int32 // released copy occupying the processor, -1 if none
	freeAt    []int64 // last realized completion per processor
	upAt      []int64 // last repair time per processor
	downAt    []int64 // crash time while down, -1 while up
	repairAt  []int64 // scheduled repair while down, never otherwise
	faultK    []int   // per-processor fault draw counter

	busy, down []int64
	crashes    int
	lost       int

	heap      *pq.Heap[event]
	pending   int // completion events in flight
	remaining int // tasks not yet finished
	aborted   bool
	now       int64
	horizon   int64
	makespan  int64
}

// run executes the compiled schedule once. The engine is a replay of
// sim's event loop in queue form: a task copy is released when its
// processor is up and free, the copies ahead of it in the processor
// queue are finished, and its unfinished-predecessor count is zero; its
// start is the max of its ready time (floor plus realized data
// arrivals), the processor's last completion, and the processor's last
// repair. With the zero fault model this reproduces sim.Plan.Run
// byte-identically: the same durations, lags, and max-folds, just
// grouped per processor instead of per arc.
func (c *cliqueExec) run(opts *Options, pol RecoveryPolicy, trial int) Result {
	n := c.g.NumNodes()
	rt := &runtime{
		x:     c,
		opts:  opts,
		pol:   pol,
		trial: sim.TrialSeed(opts.Sim.Seed, trial),

		copies:   make([]copyRec, n),
		copiesOf: make([][]int32, n),
		deps:     make([]int32, n),
		done:     make([]bool, n),
		finTime:  make([]int64, n),
		finStart: make([]int64, n),
		finProc:  make([]int32, n),
		saved:    make([]int64, n),

		queue:     make([][]int32, c.numProcs),
		qpos:      make([]int, c.numProcs),
		runningOn: make([]int32, c.numProcs),
		freeAt:    make([]int64, c.numProcs),
		upAt:      make([]int64, c.numProcs),
		downAt:    make([]int64, c.numProcs),
		repairAt:  make([]int64, c.numProcs),
		faultK:    make([]int, c.numProcs),

		busy: make([]int64, c.numProcs),
		down: make([]int64, c.numProcs),

		heap:      pq.New[event](eventLess),
		remaining: n,
	}
	prim := make([]int32, n)
	for v := 0; v < n; v++ {
		rt.copies[v] = copyRec{task: int32(v), proc: c.proc[v], floor: c.floor[v]}
		prim[v] = int32(v)
		rt.copiesOf[v] = prim[v : v+1 : v+1]
		rt.deps[v] = int32(c.g.InDegree(dag.NodeID(v)))
	}
	for p := range rt.queue {
		rt.queue[p] = append([]int32(nil), c.order[p]...)
		rt.runningOn[p] = -1
		rt.downAt[p] = -1
		rt.repairAt[p] = never
	}
	pol.prepare(rt)
	if opts.Sim.Policy == sim.PolicyEager {
		for i := range rt.copies {
			rt.copies[i].floor = 0
		}
	}
	for i := range rt.copies {
		rt.copies[i].ready = rt.copies[i].floor
	}
	if opts.Faults.MTBF > 0 {
		for p := 0; p < c.numProcs; p++ {
			up := sim.ExpDuration(opts.Faults.MTBF, rt.trial, sim.ProcFaultEntity(p, rt.faultK[p]))
			rt.faultK[p]++
			rt.heap.Push(event{t: up, kind: evCrash, id: int32(p)})
		}
	}
	for p := range rt.queue {
		rt.tryRelease(p)
	}
	var events int64
	for !rt.aborted && rt.remaining > 0 {
		if rt.pending == 0 && !rt.repairCanUnblock() {
			break // lost tasks block all remaining work forever
		}
		if rt.heap.Len() == 0 {
			break
		}
		ev := rt.heap.Pop()
		events++
		rt.now = ev.t
		if ev.t > rt.horizon {
			rt.horizon = ev.t
		}
		switch ev.kind {
		case evComplete:
			rt.complete(ev)
		case evCrash:
			rt.crash(int(ev.id))
		case evRepair:
			rt.repairProc(int(ev.id))
		}
	}
	if obs.MetricsEnabled() {
		ftRuns.Inc()
		ftEvents.Add(events)
		ftCrashes.Add(int64(rt.crashes))
		ftLost.Add(int64(rt.remaining))
	}
	return rt.result()
}

// execDur returns the realized duration of one execution attempt of
// task v on processor p: the static estimate, scaled by the task's
// perturbation multiplier and the runtime speed factor exactly as sim's
// engine does, minus any checkpoint credit.
func (rt *runtime) execDur(v int32, p int) int64 {
	dur := rt.x.execTime(v, p)
	if rt.opts.Sim.Perturb.Dist != sim.DistNone {
		dur = sim.ScaleDur(dur, rt.opts.Sim.Perturb.Multiplier(rt.trial, sim.TaskEntity(dag.NodeID(v))))
	}
	if rt.opts.Sim.Speed != nil {
		dur = sim.ScaleDur(dur, rt.opts.Sim.Speed[p])
	}
	if rt.saved[v] > 0 {
		dur -= rt.saved[v]
		if dur < 1 {
			dur = 1
		}
	}
	return dur
}

// commLag returns the realized communication lag of edge a out of u,
// scaled by the edge's multiplier when the arc carries weight — the
// same entity and scaling as sim's engine, so co-located copies read
// data for free and remote copies pay the perturbed cost.
func (rt *runtime) commLag(u dag.NodeID, a dag.Arc) int64 {
	if a.Weight == 0 {
		return 0
	}
	lag := a.Weight
	if rt.opts.Sim.Perturb.Dist != sim.DistNone {
		lag = sim.ScaleDur(lag, rt.opts.Sim.Perturb.Multiplier(rt.trial, sim.CommEntity(u, a.To)))
	}
	return lag
}

// tryRelease starts the next runnable copy on processor p, if any: the
// processor must be up and unoccupied, and the queue head (skipping
// dead and already-finished entries) must have no unfinished
// predecessors.
func (rt *runtime) tryRelease(p int) {
	if rt.runningOn[p] >= 0 || rt.downAt[p] >= 0 {
		return
	}
	for rt.qpos[p] < len(rt.queue[p]) {
		ci := rt.queue[p][rt.qpos[p]]
		c := &rt.copies[ci]
		if c.dead || rt.done[c.task] {
			rt.qpos[p]++
			continue
		}
		if rt.deps[c.task] > 0 {
			return
		}
		start := c.ready
		if rt.freeAt[p] > start {
			start = rt.freeAt[p]
		}
		if rt.upAt[p] > start {
			start = rt.upAt[p]
		}
		c.released = true
		c.start = start
		c.finish = start + rt.execDur(c.task, p)
		rt.runningOn[p] = ci
		rt.heap.Push(event{t: c.finish, kind: evComplete, id: ci, epoch: c.epoch})
		rt.pending++
		return
	}
}

// complete processes one copy completion: the first finisher of a task
// records the result, folds realized data arrivals into every live copy
// of each child, and cancels sibling copies that have not started;
// later finishers (a replica racing a survivor) just free their
// processor.
func (rt *runtime) complete(ev event) {
	c := &rt.copies[ev.id]
	if c.dead || c.epoch != ev.epoch {
		return // cancelled while in flight; pending was already adjusted
	}
	rt.pending--
	t := ev.t
	p := int(c.proc)
	c.released = false
	rt.runningOn[p] = -1
	rt.busy[p] += t - c.start
	if t > rt.freeAt[p] {
		rt.freeAt[p] = t
	}
	if !rt.done[c.task] {
		rt.done[c.task] = true
		rt.finTime[c.task] = t
		rt.finStart[c.task] = c.start
		rt.finProc[c.task] = c.proc
		rt.remaining--
		if t > rt.makespan {
			rt.makespan = t
		}
		for _, si := range rt.copiesOf[c.task] {
			if si == ev.id {
				continue
			}
			s := &rt.copies[si]
			if s.dead {
				continue
			}
			if s.released && s.start <= t {
				continue // already running: let it finish and free its processor
			}
			if s.released {
				s.epoch++
				s.released = false
				rt.runningOn[s.proc] = -1
				rt.pending--
			}
			s.dead = true
			rt.tryRelease(int(s.proc))
		}
		node := dag.NodeID(c.task)
		for _, a := range rt.x.g.Succs(node) {
			child := int32(a.To)
			if !rt.done[child] {
				lag := rt.commLag(node, a)
				for _, cc := range rt.copiesOf[child] {
					k := &rt.copies[cc]
					if k.dead {
						continue
					}
					arr := t
					if k.proc != c.proc {
						arr += lag
					}
					if arr > k.ready {
						k.ready = arr
					}
				}
			}
			if rt.deps[child]--; rt.deps[child] == 0 && !rt.done[child] {
				for _, cc := range rt.copiesOf[child] {
					if !rt.copies[cc].dead {
						rt.tryRelease(int(rt.copies[cc].proc))
					}
				}
			}
		}
	}
	rt.tryRelease(p)
}

// crash processes the fail-stop crash of processor p: the running copy
// and every unstarted copy queued on p are killed, downtime begins, an
// optional repair is scheduled, and the recovery policy reacts.
func (rt *runtime) crash(p int) {
	rt.crashes++
	tc := rt.now
	rt.downAt[p] = tc
	if rt.opts.Faults.MeanRepair > 0 {
		d := sim.ExpDuration(rt.opts.Faults.MeanRepair, rt.trial, sim.ProcFaultEntity(p, rt.faultK[p]))
		rt.faultK[p]++
		rt.repairAt[p] = tc + d
		rt.heap.Push(event{t: tc + d, kind: evRepair, id: int32(p)})
	} else {
		rt.repairAt[p] = never
	}
	// Kill the copy occupying the processor first: after a repair pass,
	// running copies are no longer in the rebuilt queues, so the queue
	// scan below would miss them.
	if ci := rt.runningOn[p]; ci >= 0 {
		c := &rt.copies[ci]
		if c.start <= tc {
			rt.busy[p] += tc - c.start
			if iv := rt.pol.interval(); iv > 0 {
				// Progress up to the last completed checkpoint boundary
				// survives the crash; elapsed < duration (the completion
				// would have fired first), so the credit never covers the
				// whole task.
				rt.saved[c.task] += (tc - c.start) / iv * iv
			}
		}
		c.epoch++
		c.released = false
		rt.pending--
		c.dead = true
		rt.runningOn[p] = -1
	}
	// Unstarted work queued on the processor dies with it; a released
	// copy is always the runningOn occupant, so everything left here is
	// unreleased.
	for i := rt.qpos[p]; i < len(rt.queue[p]); i++ {
		c := &rt.copies[rt.queue[p][i]]
		if c.dead || rt.done[c.task] {
			continue
		}
		c.dead = true
	}
	rt.pol.onCrash(rt, p)
}

// repairProc returns processor p to service: downtime is accounted, the
// next crash is drawn, and queued work may start.
func (rt *runtime) repairProc(p int) {
	tr := rt.now
	rt.down[p] += tr - rt.downAt[p]
	rt.downAt[p] = -1
	rt.repairAt[p] = never
	rt.upAt[p] = tr
	up := sim.ExpDuration(rt.opts.Faults.MTBF, rt.trial, sim.ProcFaultEntity(p, rt.faultK[p]))
	rt.faultK[p]++
	rt.heap.Push(event{t: tr + up, kind: evCrash, id: int32(p)})
	rt.tryRelease(p)
}

// repairCanUnblock reports whether some currently-down processor with a
// scheduled repair has a runnable copy waiting: only then can the
// execution still make progress once no completion is in flight.
func (rt *runtime) repairCanUnblock() bool {
	for p := range rt.queue {
		if rt.downAt[p] < 0 || rt.repairAt[p] == never {
			continue
		}
		for i := rt.qpos[p]; i < len(rt.queue[p]); i++ {
			c := &rt.copies[rt.queue[p][i]]
			if c.dead || rt.done[c.task] {
				continue
			}
			if rt.deps[c.task] == 0 {
				return true
			}
			break // blocked behind a copy whose predecessors cannot finish
		}
	}
	return false
}

// resubmit is the repair pass of the resubmit and checkpoint policies:
// it rebuilds a schedule for the unfinished suffix on the processors
// still in service and swaps the runtime's queues over to it. Finished
// tasks are pinned at their realized intervals and running tasks at
// their committed finish times; everything else is list-scheduled by
// descending static b-level with non-insertion best-EST queries under
// the availability mask (down processors become available at their
// scheduled repair; dead ones never).
func (rt *runtime) resubmit() {
	tc := rt.now
	g := rt.x.g
	n := g.NumNodes()
	// Unstarted released copies on surviving processors go back into the
	// pool: the repair pass may move them somewhere better.
	for ci := range rt.copies {
		c := &rt.copies[ci]
		if c.released && c.start > tc {
			c.epoch++
			c.released = false
			rt.runningOn[c.proc] = -1
			rt.pending--
		}
	}
	s := sched.Acquire(g, rt.x.numProcs)
	defer s.Release()
	if rt.x.speeds != nil {
		if err := s.SetSpeeds(rt.x.speeds); err != nil {
			panic(err)
		}
	}
	avail := make([]int64, rt.x.numProcs)
	for p := range avail {
		switch {
		case rt.downAt[p] < 0:
			avail[p] = tc
		case rt.repairAt[p] != never:
			avail[p] = rt.repairAt[p]
		default:
			avail[p] = sched.Never
		}
	}
	if err := s.SetAvailableFrom(avail); err != nil {
		panic(err)
	}
	running := make([]bool, n)
	for v := 0; v < n; v++ {
		if rt.done[v] {
			if err := s.PlaceFixed(dag.NodeID(v), int(rt.finProc[v]), rt.finStart[v], rt.finTime[v]); err != nil {
				panic(err)
			}
		}
	}
	for ci := range rt.copies {
		c := &rt.copies[ci]
		if c.released && !rt.done[c.task] {
			running[c.task] = true
			if err := s.PlaceFixed(dag.NodeID(c.task), int(c.proc), c.start, c.finish); err != nil {
				panic(err)
			}
		}
	}
	// List-schedule the rest: a ready heap keyed (b-level desc, id asc)
	// over the tasks whose predecessors are all placed — b-level order
	// alone is not guaranteed topological on zero-weight nodes, the
	// ready filter is.
	rest := 0
	remPreds := make([]int32, n)
	ready := pq.New[int32](func(a, b int32) bool {
		if rt.x.blevel[a] != rt.x.blevel[b] {
			return rt.x.blevel[a] > rt.x.blevel[b]
		}
		return a < b
	})
	inRest := func(v int32) bool { return !rt.done[v] && !running[v] }
	for v := int32(0); v < int32(n); v++ {
		if !inRest(v) {
			continue
		}
		rest++
		for _, pr := range g.Preds(dag.NodeID(v)) {
			if inRest(int32(pr.To)) {
				remPreds[v]++
			}
		}
		if remPreds[v] == 0 {
			ready.Push(v)
		}
	}
	for ready.Len() > 0 {
		v := ready.Pop()
		p, est, ok := s.BestEST(dag.NodeID(v), false)
		if !ok || p < 0 {
			// No processor will ever be available again; the remaining
			// tasks cannot be placed and the run is lost.
			rt.aborted = true
			return
		}
		s.MustPlace(dag.NodeID(v), p, est)
		rest--
		for _, a := range g.Succs(dag.NodeID(v)) {
			w := int32(a.To)
			if !inRest(w) {
				continue
			}
			if remPreds[w]--; remPreds[w] == 0 {
				ready.Push(w)
			}
		}
	}
	if rest != 0 {
		panic("ft: repair pass left tasks unplaced")
	}
	// Swap the runtime over to the repaired schedule: fresh queues from
	// the repaired slot order, floors from the repaired starts, ready
	// times refolded from the arrivals already realized.
	eager := rt.opts.Sim.Policy == sim.PolicyEager
	for p := 0; p < rt.x.numProcs; p++ {
		rt.queue[p] = rt.queue[p][:0]
		rt.qpos[p] = 0
		for _, sl := range s.Slots(p) {
			v := int32(sl.Node)
			if rt.done[v] || running[v] {
				continue
			}
			rt.queue[p] = append(rt.queue[p], v)
		}
	}
	for v := int32(0); v < int32(n); v++ {
		if !inRest(v) {
			continue
		}
		c := &rt.copies[v]
		c.proc = int32(s.ProcOf(dag.NodeID(v)))
		c.floor = s.StartOf(dag.NodeID(v))
		if eager {
			c.floor = 0
		}
		// A re-placement decided at tc cannot start before tc, even under
		// eager dispatch.
		c.ready = max64i(c.floor, tc)
		c.dead = false
		c.released = false
		deps := int32(0)
		for _, pr := range g.Preds(dag.NodeID(v)) {
			u := int32(pr.To)
			if !rt.done[u] {
				deps++
				continue
			}
			arr := rt.finTime[u]
			if rt.finProc[u] != c.proc {
				arr += rt.commLag(dag.NodeID(u), dag.Arc{To: pr.To, Weight: pr.Weight})
			}
			if arr > c.ready {
				c.ready = arr
			}
		}
		rt.deps[v] = deps
	}
	for p := 0; p < rt.x.numProcs; p++ {
		rt.tryRelease(p)
	}
}

// addReplicas implements the replicate policy's prepare step: the k
// tasks with the highest static b-level get one replica each on the
// processor (distinct from the primary's) that can finish it earliest
// against the static timetable, appended to that processor's queue in
// the spare capacity after its planned work.
func (rt *runtime) addReplicas(k int) {
	x := rt.x
	if x.numProcs < 2 {
		return
	}
	n := x.g.NumNodes()
	if k > n {
		k = n
	}
	order := make([]int32, n)
	for v := range order {
		order[v] = int32(v)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if x.blevel[a] != x.blevel[b] {
			return x.blevel[a] > x.blevel[b]
		}
		return a < b
	})
	staticFin := func(v int32) int64 { return x.floor[v] + x.execTime(v, int(x.proc[v])) }
	lastFin := make([]int64, x.numProcs)
	for v := int32(0); v < int32(n); v++ {
		if f := staticFin(v); f > lastFin[x.proc[v]] {
			lastFin[x.proc[v]] = f
		}
	}
	for _, v := range order[:k] {
		primary := int(x.proc[v])
		best := -1
		var bestStart, bestFin int64
		for q := 0; q < x.numProcs; q++ {
			if q == primary {
				continue
			}
			var drt int64
			for _, pr := range x.g.Preds(dag.NodeID(v)) {
				f := staticFin(int32(pr.To))
				if int(x.proc[pr.To]) != q {
					f += pr.Weight
				}
				if f > drt {
					drt = f
				}
			}
			start := drt
			if lastFin[q] > start {
				start = lastFin[q]
			}
			fin := start + x.execTime(v, q)
			if best < 0 || fin < bestFin {
				best, bestStart, bestFin = q, start, fin
			}
		}
		ci := int32(len(rt.copies))
		rt.copies = append(rt.copies, copyRec{task: v, proc: int32(best), floor: bestStart})
		rt.copiesOf[v] = []int32{v, ci}
		rt.queue[best] = append(rt.queue[best], ci)
		lastFin[best] = bestFin
	}
}

// max64i returns the larger of two int64 values.
func max64i(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// result assembles the run's Result: trailing downtime is clamped to
// the horizon so Busy + Idle + Down partitions each processor's share
// of it exactly.
func (rt *runtime) result() Result {
	res := Result{
		Static:  rt.x.static,
		Horizon: rt.horizon,
		Crashes: rt.crashes,
		Lost:    rt.remaining,
		Busy:    rt.busy,
		Down:    rt.down,
		Idle:    make([]int64, rt.x.numProcs),
	}
	for p := 0; p < rt.x.numProcs; p++ {
		if rt.downAt[p] >= 0 && rt.horizon > rt.downAt[p] {
			res.Down[p] += rt.horizon - rt.downAt[p]
		}
		res.Idle[p] = rt.horizon - res.Busy[p] - res.Down[p]
	}
	if rt.remaining == 0 && !rt.aborted {
		res.Finished = true
		res.Makespan = rt.makespan
		res.Ratio = ratio(rt.makespan, rt.x.static)
	} else {
		res.Ratio = math.Inf(1)
	}
	return res
}
