// Package ft executes static schedules on machines that fail: a
// fault-capable replay of the discrete-event execution model of
// internal/sim, extended with fail-stop processor crashes, transient
// link outages, and pluggable recovery policies that react to failures
// at runtime.
//
// The paper's benchmark — and PR 4's simulator — assume every processor
// survives the execution. This package closes that gap: a compiled
// Exec replays a clique schedule (sched.Schedule) or an APN schedule
// (machine.Schedule) under the fault model of sim.FaultModel, where a
// crash kills the task running on the processor and all unstarted work
// placed there, and a RecoveryPolicy decides what happens next.
//
// # Determinism contract
//
// Every random quantity of a run — duration multipliers, uptimes,
// downtimes, outage windows — is a counter-based hash of
// (seed, trial, entity), exactly as in internal/sim: failure traces are
// a property of the machine and the trial, not of the schedule being
// executed, so the same trial presents the same failures to every
// algorithm and every recovery policy (paired comparisons), and results
// are byte-reproducible at any worker count.
//
// With the zero fault model the engines reproduce sim.Plan.Run
// byte-identically for every schedule, policy, perturbation, and
// heterogeneous speed vector — the fault path is provably a superset of
// the fault-free simulator (pinned by the invariant tests).
//
// # Recovery policies
//
// None lets lost work stay lost: a run whose tasks cannot all finish
// reports Finished == false and a +Inf ratio (an SLO miss). Resubmit
// remaps the unfinished suffix of the execution onto the surviving
// processors with a list-scheduling repair pass (descending static
// b-level) that reuses the incremental EST cache of internal/sched,
// restricted by a per-processor availability mask. Checkpoint is
// resubmit plus periodic checkpoints: a re-executed task resumes from
// its last checkpoint boundary instead of from zero. Replicate
// duplicates the top-k static-b-level tasks on distinct processors at
// compile time and takes the first finisher at runtime. Recovery
// policies apply to clique schedules; APN executions support None
// (rerouting around failures is out of scope — see docs/faults.md).
package ft

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// RecoveryPolicy reacts to processor failures during a simulated
// execution. Implementations are stateless and safe for concurrent use
// by independent runs.
type RecoveryPolicy interface {
	// Name identifies the policy in experiment output.
	Name() string

	// prepare augments the runtime before execution starts (replicate
	// adds its task copies here); most policies do nothing.
	prepare(rt *runtime)

	// onCrash reacts to the crash of processor p at the runtime's
	// current clock, after the engine has killed the processor's work.
	onCrash(rt *runtime, p int)

	// interval returns the checkpoint period, or 0 when the policy does
	// not checkpoint. The engine credits completed intervals of a killed
	// task's progress against its re-execution.
	interval() int64
}

type nonePolicy struct{}

func (nonePolicy) Name() string          { return "none" }
func (nonePolicy) prepare(*runtime)      {}
func (nonePolicy) onCrash(*runtime, int) {}
func (nonePolicy) interval() int64       { return 0 }

// None is the degradation baseline: no recovery. Tasks lost to a crash
// never finish and the run reports an SLO miss.
func None() RecoveryPolicy { return nonePolicy{} }

type resubmitPolicy struct{}

func (resubmitPolicy) Name() string               { return "resubmit" }
func (resubmitPolicy) prepare(*runtime)           {}
func (resubmitPolicy) onCrash(rt *runtime, p int) { rt.resubmit() }
func (resubmitPolicy) interval() int64            { return 0 }

// Resubmit remaps the unfinished suffix of the execution onto the
// surviving processors at every crash, re-executing killed tasks from
// zero.
func Resubmit() RecoveryPolicy { return resubmitPolicy{} }

type checkpointPolicy struct{ every int64 }

func (c checkpointPolicy) Name() string               { return "checkpoint" }
func (c checkpointPolicy) prepare(*runtime)           {}
func (c checkpointPolicy) onCrash(rt *runtime, p int) { rt.resubmit() }
func (c checkpointPolicy) interval() int64            { return c.every }

// Checkpoint is Resubmit with periodic checkpoints of period every: a
// killed task resumes from its last completed checkpoint boundary
// instead of from zero. A non-positive period is clamped to 1.
func Checkpoint(every int64) RecoveryPolicy {
	if every < 1 {
		every = 1
	}
	return checkpointPolicy{every: every}
}

type replicatePolicy struct{ k int }

func (r replicatePolicy) Name() string { return "replicate" }

// prepare adds the replicas only when the fault model can actually
// crash a processor: a replica that wins the first-finisher race can
// reroute a child's data arrival through a cross-processor lag the
// static schedule never paid, so speculative copies are pure overhead
// (and would break the zero-fault invariant) on a reliable machine.
func (r replicatePolicy) prepare(rt *runtime) {
	if rt.opts.Faults.MTBF > 0 {
		rt.addReplicas(r.k)
	}
}
func (r replicatePolicy) onCrash(*runtime, int) {}
func (r replicatePolicy) interval() int64       { return 0 }

// Replicate duplicates the k tasks with the highest static b-level
// (the critical-path prefix) on distinct processors in the spare
// capacity of the static schedule; the execution takes each task's
// first finisher and cancels the not-yet-started sibling. k is clamped
// to the task count; on a single processor no replica can be placed,
// and with a fault model that cannot crash processors none is.
func Replicate(k int) RecoveryPolicy {
	if k < 1 {
		k = 1
	}
	return replicatePolicy{k: k}
}

// Policies returns one instance of every recovery policy with the given
// checkpoint period and replication degree, in the canonical order the
// faults experiment reports them.
func Policies(checkpointEvery int64, replicateK int) []RecoveryPolicy {
	return []RecoveryPolicy{None(), Resubmit(), Checkpoint(checkpointEvery), Replicate(replicateK)}
}

// PolicyNames returns the canonical policy order of Policies.
func PolicyNames() []string { return []string{"none", "resubmit", "checkpoint", "replicate"} }

// Options parameterizes one fault-injected execution.
type Options struct {
	// Sim carries the perturbation model, dispatch policy, base seed,
	// and optional runtime speed factors, exactly as in sim.Options.
	Sim sim.Options
	// Faults is the failure model; the zero value injects no faults and
	// reproduces sim.Plan.Run byte-identically.
	Faults sim.FaultModel
	// Recovery selects the failure response; nil means None.
	Recovery RecoveryPolicy
	// Deadline, when positive, is the SLO used by MonteCarlo's survival
	// statistic: a trial survives when it finishes with a makespan at or
	// under the deadline. The engine itself does not stop at it.
	Deadline int64
}

// validate checks the options against a processor count.
func (o *Options) validate(numProcs int) error {
	if err := o.Sim.Validate(numProcs); err != nil {
		return err
	}
	if err := o.Faults.Validate(); err != nil {
		return err
	}
	if o.Deadline < 0 {
		return fmt.Errorf("ft: negative deadline %d", o.Deadline)
	}
	return nil
}

// recovery returns the configured policy, defaulting to None.
func (o *Options) recovery() RecoveryPolicy {
	if o.Recovery == nil {
		return nonePolicy{}
	}
	return o.Recovery
}

// Result reports one fault-injected execution of a schedule.
type Result struct {
	// Static is the makespan of the schedule as planned.
	Static int64
	// Finished reports whether every task completed. A run with lost
	// tasks (or an aborted repair pass with no surviving processors)
	// does not finish.
	Finished bool
	// Makespan is the realized makespan when Finished; 0 otherwise.
	Makespan int64
	// Ratio is Makespan/Static for a finished run (1 when Static is 0)
	// and +Inf otherwise — an unfinished schedule misses every deadline.
	Ratio float64
	// Horizon is the time of the last processed event: the span the
	// utilization accounting covers. Horizon >= Makespan on a finished
	// run.
	Horizon int64
	// Crashes counts processor crash events within the horizon.
	Crashes int
	// Lost counts the tasks that never finished.
	Lost int
	// Busy, Idle, and Down split each processor's share of the horizon:
	// Busy[p] + Idle[p] + Down[p] == Horizon for every p. Busy covers
	// task execution (including killed partial runs and wasted replica
	// runs); Down covers crash-to-repair intervals clamped to the
	// horizon.
	Busy, Idle, Down []int64
}

// ratio divides realized by static makespan, defining 0/0 as 1, as in
// internal/sim.
func ratio(makespan, static int64) float64 {
	if static == 0 {
		return 1
	}
	return float64(makespan) / float64(static)
}

// never marks a repair that will not happen.
const never int64 = math.MaxInt64
