package algo

import (
	"sync"

	"repro/internal/dag"
)

// ReadyHeap is the ready set for list schedulers whose priorities are
// fixed before the loop starts (static regimes such as HLFET). It pops
// the maximum-priority ready node in O(log w) instead of the O(w)
// linear scan a ReadySet plus MaxBy costs per step, where w is the
// ready width. The order is the exact total order MaxBy uses —
// priority descending, ties toward the smaller node ID — so replacing
// a MaxBy scan with a ReadyHeap changes the pop sequence of no graph:
// on wide instances (many thousands of simultaneously ready nodes) the
// scan dominates the whole scheduler and the heap turns the list phase
// from O(v·w) into O((v+e)·log w).
type ReadyHeap struct {
	prio      []int64 // node -> fixed priority, aliased from the caller
	remaining []int32 // unscheduled parent count per node
	heap      []dag.NodeID
}

// NewReadyHeap returns a ready heap holding the entry nodes of g,
// ordered by prio (which must have one entry per node and stay
// unchanged while the heap is in use).
func NewReadyHeap(g *dag.Graph, prio []int64) *ReadyHeap {
	r := &ReadyHeap{}
	r.Reset(g, prio)
	return r
}

// Reset reinitializes the heap to the entry nodes of g under prio,
// reusing the backing arrays when they are large enough.
func (r *ReadyHeap) Reset(g *dag.Graph, prio []int64) {
	n := g.NumNodes()
	r.prio = prio
	if cap(r.remaining) >= n {
		r.remaining = r.remaining[:n]
	} else {
		r.remaining = make([]int32, n)
	}
	r.heap = r.heap[:0]
	for v := 0; v < n; v++ {
		r.remaining[v] = int32(g.InDegree(dag.NodeID(v)))
		if r.remaining[v] == 0 {
			r.push(dag.NodeID(v))
		}
	}
}

// readyHeapPool recycles ReadyHeaps between AcquireReadyHeap and
// Release so steady-state runs do not reallocate the arrays.
var readyHeapPool = sync.Pool{New: func() any { return new(ReadyHeap) }}

// AcquireReadyHeap returns a ready heap for g from the pool.
func AcquireReadyHeap(g *dag.Graph, prio []int64) *ReadyHeap {
	r := readyHeapPool.Get().(*ReadyHeap)
	r.Reset(g, prio)
	return r
}

// Release returns the heap to the pool and drops its priority alias.
// The caller must not use r afterwards.
func (r *ReadyHeap) Release() {
	r.prio = nil
	readyHeapPool.Put(r)
}

// Empty reports whether no node is ready.
func (r *ReadyHeap) Empty() bool { return len(r.heap) == 0 }

// Len returns the number of ready nodes.
func (r *ReadyHeap) Len() int { return len(r.heap) }

// before reports whether a pops before b: higher priority first, ties
// toward the smaller node ID — MaxBy's total order.
func (r *ReadyHeap) before(a, b dag.NodeID) bool {
	pa, pb := r.prio[a], r.prio[b]
	return pa > pb || (pa == pb && a < b)
}

// push adds n and restores the heap invariant bottom-up.
func (r *ReadyHeap) push(n dag.NodeID) {
	r.heap = append(r.heap, n)
	i := len(r.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !r.before(r.heap[i], r.heap[parent]) {
			break
		}
		r.heap[i], r.heap[parent] = r.heap[parent], r.heap[i]
		i = parent
	}
}

// PopMax removes and returns the ready node that MaxBy would select:
// maximum priority, ties broken toward the smaller ID. It panics on an
// empty heap, which would indicate a scheduler bug.
func (r *ReadyHeap) PopMax() dag.NodeID {
	top := r.heap[0]
	last := len(r.heap) - 1
	r.heap[0] = r.heap[last]
	r.heap = r.heap[:last]
	i := 0
	for {
		l, rt := 2*i+1, 2*i+2
		best := i
		if l < last && r.before(r.heap[l], r.heap[best]) {
			best = l
		}
		if rt < last && r.before(r.heap[rt], r.heap[best]) {
			best = rt
		}
		if best == i {
			break
		}
		r.heap[i], r.heap[best] = r.heap[best], r.heap[i]
		i = best
	}
	return top
}

// MarkScheduled records that n (previously popped) has been scheduled
// and pushes any children that became ready.
func (r *ReadyHeap) MarkScheduled(g *dag.Graph, n dag.NodeID) {
	for _, a := range g.Succs(n) {
		r.remaining[a.To]--
		if r.remaining[a.To] == 0 {
			r.push(a.To)
		}
	}
}
