// Package algo provides the pieces shared by the scheduling algorithm
// implementations in its subpackages bnp, unc, and apn: ready-set
// bookkeeping for list scheduling and deterministic priority selection
// helpers.
//
// The three subpackages mirror the taxonomy of Kwok & Ahmad (IPPS 1998,
// section 4): BNP algorithms schedule onto a bounded clique of
// processors, UNC algorithms cluster onto an unbounded set, and APN
// algorithms schedule both tasks and messages onto an arbitrary network.
package algo

import (
	"sync"

	"repro/internal/dag"
)

// ReadySet tracks which unscheduled nodes have all parents scheduled.
// List schedulers pop nodes from it in priority order and feed newly
// released children back in.
type ReadySet struct {
	remaining []int32 // unscheduled parent count per node
	ready     []dag.NodeID
	pos       []int32 // node -> index in ready, -1 when not ready
}

// NewReadySet returns a ready set holding the entry nodes of g.
func NewReadySet(g *dag.Graph) *ReadySet {
	r := &ReadySet{}
	r.Reset(g)
	return r
}

// Reset reinitializes the set to the entry nodes of g, reusing the
// backing arrays when they are large enough.
func (r *ReadySet) Reset(g *dag.Graph) {
	n := g.NumNodes()
	if cap(r.remaining) >= n {
		r.remaining = r.remaining[:n]
		r.pos = r.pos[:n]
	} else {
		r.remaining = make([]int32, n)
		r.pos = make([]int32, n)
	}
	r.ready = r.ready[:0]
	for v := 0; v < n; v++ {
		r.remaining[v] = int32(g.InDegree(dag.NodeID(v)))
		r.pos[v] = -1
		if r.remaining[v] == 0 {
			r.pos[v] = int32(len(r.ready))
			r.ready = append(r.ready, dag.NodeID(v))
		}
	}
}

// readyPool recycles ReadySets between AcquireReadySet and Release so
// steady-state scheduling runs do not reallocate the bookkeeping arrays.
var readyPool = sync.Pool{New: func() any { return new(ReadySet) }}

// AcquireReadySet returns a ready set for g from the pool.
func AcquireReadySet(g *dag.Graph) *ReadySet {
	r := readyPool.Get().(*ReadySet)
	r.Reset(g)
	return r
}

// Release returns the set to the pool. The caller must not use r
// afterwards.
func (r *ReadySet) Release() { readyPool.Put(r) }

// Ready returns the current ready nodes. The slice is shared with the
// set; callers must not modify it and must not hold it across Pop or
// MarkScheduled calls. The order is unspecified: Pop swap-removes, so
// callers must select by a total order (MaxBy/MinBy), never by index.
func (r *ReadySet) Ready() []dag.NodeID { return r.ready }

// Empty reports whether no node is ready.
func (r *ReadySet) Empty() bool { return len(r.ready) == 0 }

// Pop removes n from the ready list in O(1) by swapping the last entry
// into its tracked position; it panics if n is not ready, which would
// indicate a scheduler bug.
func (r *ReadySet) Pop(n dag.NodeID) {
	i := r.pos[n]
	if i < 0 {
		panic("algo: Pop of non-ready node")
	}
	last := len(r.ready) - 1
	moved := r.ready[last]
	r.ready[i] = moved
	r.pos[moved] = i
	r.ready = r.ready[:last]
	r.pos[n] = -1
}

// MarkScheduled records that n (previously popped) has been scheduled
// and inserts any children that became ready. The newly ready nodes are
// returned as a sub-slice of the internal ready list, valid until the
// next Pop or MarkScheduled; incremental schedulers evaluate exactly
// these instead of rescanning the whole ready set.
func (r *ReadySet) MarkScheduled(g *dag.Graph, n dag.NodeID) []dag.NodeID {
	first := len(r.ready)
	for _, a := range g.Succs(n) {
		r.remaining[a.To]--
		if r.remaining[a.To] == 0 {
			r.pos[a.To] = int32(len(r.ready))
			r.ready = append(r.ready, a.To)
		}
	}
	return r.ready[first:]
}

// MaxBy returns the element of ready that maximizes priority, breaking
// ties toward the smaller node ID. It panics on an empty slice.
func MaxBy(ready []dag.NodeID, priority func(dag.NodeID) int64) dag.NodeID {
	best := ready[0]
	bestP := priority(best)
	for _, n := range ready[1:] {
		p := priority(n)
		if p > bestP || (p == bestP && n < best) {
			best, bestP = n, p
		}
	}
	return best
}

// MinBy returns the element of ready that minimizes priority, breaking
// ties toward the smaller node ID. It panics on an empty slice.
func MinBy(ready []dag.NodeID, priority func(dag.NodeID) int64) dag.NodeID {
	best := ready[0]
	bestP := priority(best)
	for _, n := range ready[1:] {
		p := priority(n)
		if p < bestP || (p == bestP && n < best) {
			best, bestP = n, p
		}
	}
	return best
}
