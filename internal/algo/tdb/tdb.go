// Package tdb implements task-duplication-based (TDB) scheduling, the
// fourth algorithm family in the taxonomy of Kwok & Ahmad (IPPS 1998,
// section 4). TDB algorithms reduce communication by redundantly
// executing ancestor tasks on multiple processors. The paper describes
// the family but excludes it from its 15-algorithm study ("to narrow the
// scope of this paper, we do not consider TDB algorithms"); this package
// reproduces the family's classic representative, DSH, as an extension.
//
// Duplication breaks the one-copy-per-task invariant of sched.Schedule,
// so this package carries its own DupSchedule with per-task copy lists
// and a validator aware of "data available from the earliest copy".
package tdb

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/sched"
)

// Copy is one execution instance of a task on a processor.
type Copy struct {
	Proc   int
	Start  int64
	Finish int64
}

// DupSchedule is a schedule in which a task may execute on several
// processors. Placement is append-only per processor, matching the
// duplication heuristics' "fill the idle slot before the node" behaviour.
type DupSchedule struct {
	g       *dag.Graph
	procs   []sched.Timeline
	copies  [][]Copy // per node
	primary int      // number of nodes with at least one copy
}

// NewDupSchedule returns an empty duplication schedule on numProcs
// processors.
func NewDupSchedule(g *dag.Graph, numProcs int) *DupSchedule {
	if numProcs < 1 {
		numProcs = 1
	}
	return &DupSchedule{
		g:      g,
		procs:  make([]sched.Timeline, numProcs),
		copies: make([][]Copy, g.NumNodes()),
	}
}

// Graph returns the scheduled graph.
func (d *DupSchedule) Graph() *dag.Graph { return d.g }

// NumProcs returns the processor count.
func (d *DupSchedule) NumProcs() int { return len(d.procs) }

// Copies returns the execution instances of node n.
func (d *DupSchedule) Copies(n dag.NodeID) []Copy { return d.copies[n] }

// IsScheduled reports whether n has at least one copy.
func (d *DupSchedule) IsScheduled(n dag.NodeID) bool { return len(d.copies[n]) > 0 }

// Complete reports whether every node has at least one copy.
func (d *DupSchedule) Complete() bool { return d.primary == d.g.NumNodes() }

// ProcEnd returns the current frontier (last finish time) of processor p.
func (d *DupSchedule) ProcEnd(p int) int64 { return d.procs[p].LastFinish() }

// Length returns the makespan: the latest finish over all copies.
func (d *DupSchedule) Length() int64 {
	var max int64
	for i := range d.procs {
		if f := d.procs[i].LastFinish(); f > max {
			max = f
		}
	}
	return max
}

// ProcessorsUsed returns the number of processors running any copy.
func (d *DupSchedule) ProcessorsUsed() int {
	used := 0
	for i := range d.procs {
		if d.procs[i].Len() > 0 {
			used++
		}
	}
	return used
}

// NSL returns the normalized schedule length.
func (d *DupSchedule) NSL() float64 {
	den := dag.CPComputationSum(d.g)
	if den == 0 {
		return 0
	}
	return float64(d.Length()) / float64(den)
}

// Arrival returns the earliest time node n's output can be available on
// processor p, over all copies of n (0 cost for a local copy). ok is
// false when n has no copy.
func (d *DupSchedule) Arrival(n dag.NodeID, p int, edgeCost int64) (int64, bool) {
	if len(d.copies[n]) == 0 {
		return 0, false
	}
	best := int64(-1)
	for _, c := range d.copies[n] {
		t := c.Finish
		if c.Proc != p {
			t += edgeCost
		}
		if best < 0 || t < best {
			best = t
		}
	}
	return best, true
}

// DataReady returns the earliest time all of n's inputs can be present
// on processor p given the current copies. ok is false when a parent has
// no copy yet.
func (d *DupSchedule) DataReady(n dag.NodeID, p int) (int64, bool) {
	var drt int64
	for _, pr := range d.g.Preds(n) {
		arr, ok := d.Arrival(pr.To, p, pr.Weight)
		if !ok {
			return 0, false
		}
		if arr > drt {
			drt = arr
		}
	}
	return drt, true
}

// place appends a copy of n on processor p at the given start time,
// which must be at or after the processor frontier.
func (d *DupSchedule) place(n dag.NodeID, p int, start int64) error {
	if start < d.procs[p].LastFinish() {
		return fmt.Errorf("tdb: copy of %d at %d before frontier %d on P%d",
			n, start, d.procs[p].LastFinish(), p)
	}
	finish := start + d.g.Weight(n)
	if err := d.procs[p].Insert(sched.Slot{Node: n, Start: start, Finish: finish}); err != nil {
		return err
	}
	if len(d.copies[n]) == 0 {
		d.primary++
	}
	d.copies[n] = append(d.copies[n], Copy{Proc: p, Start: start, Finish: finish})
	return nil
}

// Validate checks timeline exclusivity and that every copy starts only
// after all parent data is available on its processor from some copy.
func (d *DupSchedule) Validate() error {
	for p := range d.procs {
		if err := d.procs[p].Validate(); err != nil {
			return fmt.Errorf("tdb: P%d: %w", p, err)
		}
		for _, sl := range d.procs[p].Slots() {
			if sl.Finish-sl.Start != d.g.Weight(sl.Node) {
				return fmt.Errorf("tdb: copy of %d has wrong duration", sl.Node)
			}
			for _, pr := range d.g.Preds(sl.Node) {
				arr, ok := d.Arrival(pr.To, p, pr.Weight)
				if !ok {
					return fmt.Errorf("tdb: copy of %d has parent %d with no copy", sl.Node, pr.To)
				}
				if arr > sl.Start {
					return fmt.Errorf("tdb: copy of %d at %d starts before parent %d data at %d",
						sl.Node, sl.Start, pr.To, arr)
				}
			}
		}
	}
	return nil
}

// String renders the per-processor copy timelines.
func (d *DupSchedule) String() string {
	out := fmt.Sprintf("tdb schedule length=%d procs=%d\n", d.Length(), d.ProcessorsUsed())
	for p := range d.procs {
		if d.procs[p].Len() == 0 {
			continue
		}
		out += fmt.Sprintf("P%d:", p)
		for _, sl := range d.procs[p].Slots() {
			out += fmt.Sprintf(" n%d[%d,%d)", sl.Node, sl.Start, sl.Finish)
		}
		out += "\n"
	}
	return out
}
