package tdb

import (
	"math/rand"
	"testing"

	"repro/internal/algo/bnp"
	"repro/internal/dag"
)

func randomGraph(rng *rand.Rand, n int, commScale int64) *dag.Graph {
	b := dag.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(1 + rng.Int63n(20))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(4) == 0 {
				b.AddEdge(dag.NodeID(i), dag.NodeID(j), rng.Int63n(commScale))
			}
		}
	}
	return b.MustBuild()
}

func TestDSHProducesValidSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng, 2+rng.Intn(25), 80)
		for _, p := range []int{1, 2, 4} {
			d, err := DSH(g, p)
			if err != nil {
				t.Fatalf("trial %d p=%d: %v", trial, p, err)
			}
			if !d.Complete() {
				t.Fatalf("trial %d: incomplete", trial)
			}
			if err := d.Validate(); err != nil {
				t.Fatalf("trial %d p=%d: %v", trial, p, err)
			}
			if d.NSL() < 1.0-1e-9 {
				t.Fatalf("trial %d: NSL %v < 1", trial, d.NSL())
			}
		}
	}
}

func TestDSHErrors(t *testing.T) {
	if _, err := DSH(nil, 2); err == nil {
		t.Error("accepted nil graph")
	}
	g := dag.NewBuilder().MustBuild()
	if _, err := DSH(g, 0); err == nil {
		t.Error("accepted zero processors")
	}
	if d, err := DSH(g, 2); err != nil || d.Length() != 0 {
		t.Errorf("empty graph: %v", err)
	}
}

// TestDSHDuplicatesHeavyFork: a fork with enormous edge costs is the
// textbook duplication case — each child's processor should run its own
// copy of the root instead of waiting for the message.
func TestDSHDuplicatesHeavyFork(t *testing.T) {
	b := dag.NewBuilder()
	root := b.AddNode(2)
	c1 := b.AddNode(5)
	c2 := b.AddNode(5)
	b.AddEdge(root, c1, 100)
	b.AddEdge(root, c2, 100)
	g := b.MustBuild()
	d, err := DSH(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Without duplication the best is serial on one processor (12) or
	// paying a 100-unit message (107+). With duplication: both
	// processors run root then a child: length 7.
	if d.Length() != 7 {
		t.Errorf("DSH length = %d, want 7 (duplicated root)\n%s", d.Length(), d)
	}
	if len(d.Copies(root)) != 2 {
		t.Errorf("root has %d copies, want 2", len(d.Copies(root)))
	}
}

// TestDSHNeverWorseThanHLFETOnForks: on communication-dominated
// fork-join graphs duplication can only help relative to HLFET.
func TestDSHNeverWorseThanHLFETOnForks(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		b := dag.NewBuilder()
		root := b.AddNode(1 + rng.Int63n(5))
		sink := b.AddNode(1 + rng.Int63n(5))
		k := 2 + rng.Intn(6)
		for i := 0; i < k; i++ {
			m := b.AddNode(1 + rng.Int63n(10))
			b.AddEdge(root, m, 20+rng.Int63n(80))
			b.AddEdge(m, sink, 20+rng.Int63n(80))
		}
		g := b.MustBuild()
		d, err := DSH(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		h, err := bnp.HLFET(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		if d.Length() > h.Length() {
			t.Errorf("trial %d: DSH %d worse than HLFET %d", trial, d.Length(), h.Length())
		}
	}
}

func TestDupScheduleSingleNode(t *testing.T) {
	b := dag.NewBuilder()
	b.AddNode(9)
	g := b.MustBuild()
	d, err := DSH(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Length() != 9 || d.ProcessorsUsed() != 1 {
		t.Errorf("single node: length %d procs %d", d.Length(), d.ProcessorsUsed())
	}
}

func TestDupScheduleAccessors(t *testing.T) {
	b := dag.NewBuilder()
	x := b.AddNode(3)
	y := b.AddNode(2)
	b.AddEdge(x, y, 50)
	g := b.MustBuild()
	d, err := DSH(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsScheduled(x) || !d.IsScheduled(y) {
		t.Error("nodes not marked scheduled")
	}
	if d.Graph() != g || d.NumProcs() != 2 {
		t.Error("accessors wrong")
	}
	arr, ok := d.Arrival(x, d.Copies(y)[0].Proc, 50)
	if !ok || arr > d.Copies(y)[0].Start {
		t.Errorf("arrival %d after consumer start %d", arr, d.Copies(y)[0].Start)
	}
}
