package tdb

import (
	"fmt"

	"repro/internal/algo"
	"repro/internal/dag"
)

// DSH is the Duplication Scheduling Heuristic of Kruatrachue and Lewis
// (1988), the earliest widely cited TDB algorithm (paper section 4's
// chronology).
//
// DSH is HLFET with a duplication pass: nodes are taken in descending
// static-level order, and for each candidate processor the idle period
// between the processor's frontier and the node's communication-bound
// earliest start (the "duplication time slot") is filled with copies of
// the node's critical parents — the parents whose messages arrive last —
// as long as each copy reduces the node's start time. The processor with
// the smallest resulting start wins.
func DSH(g *dag.Graph, numProcs int) (*DupSchedule, error) {
	if g == nil {
		return nil, fmt.Errorf("tdb: nil graph")
	}
	if numProcs < 1 {
		return nil, fmt.Errorf("tdb: need at least one processor, got %d", numProcs)
	}
	sl := dag.StaticLevels(g)
	d := NewDupSchedule(g, numProcs)
	ready := algo.NewReadySet(g)
	for !ready.Empty() {
		n := algo.MaxBy(ready.Ready(), func(m dag.NodeID) int64 { return sl[m] })
		ready.Pop(n)

		bestProc := -1
		var bestStart int64
		var bestDups []dupPlan
		for p := 0; p < numProcs; p++ {
			start, dups := d.evaluateWithDuplication(n, p)
			if bestProc == -1 || start < bestStart {
				bestProc, bestStart, bestDups = p, start, dups
			}
		}
		for _, dup := range bestDups {
			if err := d.place(dup.node, bestProc, dup.start); err != nil {
				return nil, err
			}
		}
		if err := d.place(n, bestProc, bestStart); err != nil {
			return nil, err
		}
		ready.MarkScheduled(g, n)
	}
	return d, nil
}

// dupPlan is one planned duplicate: a copy of node starting at start on
// the candidate processor.
type dupPlan struct {
	node  dag.NodeID
	start int64
}

// evaluateWithDuplication computes the start time of n on processor p if
// the duplication slot is filled greedily with critical parents, without
// mutating the schedule. Returned dups are in execution order.
func (d *DupSchedule) evaluateWithDuplication(n dag.NodeID, p int) (int64, []dupPlan) {
	frontier := d.ProcEnd(p)
	// local tracks tentative extra copies on p: node -> finish time.
	local := map[dag.NodeID]int64{}
	var dups []dupPlan

	arrival := func(m dag.NodeID, edgeCost int64) int64 {
		if f, ok := local[m]; ok {
			return f // tentative local copy
		}
		a, ok := d.Arrival(m, p, edgeCost)
		if !ok {
			panic("tdb: DSH parent without copy")
		}
		return a
	}
	drt := func(m dag.NodeID) (int64, dag.NodeID) {
		var t int64
		crit := dag.None
		for _, pr := range d.g.Preds(m) {
			if a := arrival(pr.To, pr.Weight); a > t {
				t = a
				crit = pr.To
			}
		}
		return t, crit
	}

	start := func() int64 {
		t, _ := drt(n)
		if t < frontier {
			t = frontier
		}
		return t
	}

	cur := start()
	for {
		_, crit := drt(n)
		if crit == dag.None {
			break // no remote critical parent left
		}
		if _, already := local[crit]; already {
			break
		}
		if hasCopyOn(d, crit, p) {
			break // critical parent is already local; nothing to gain
		}
		// A duplicate of crit must itself wait for crit's inputs on p.
		dupDRT, _ := drt(crit)
		dupStart := dupDRT
		if dupStart < frontier {
			dupStart = frontier
		}
		dupFinish := dupStart + d.g.Weight(crit)
		// Tentatively adopt the duplicate and see whether n improves.
		local[crit] = dupFinish
		oldFrontier := frontier
		frontier = dupFinish
		if newStart := start(); newStart < cur {
			cur = newStart
			dups = append(dups, dupPlan{crit, dupStart})
			continue
		}
		// No improvement: roll back and stop.
		delete(local, crit)
		frontier = oldFrontier
		break
	}
	return cur, dups
}

func hasCopyOn(d *DupSchedule, n dag.NodeID, p int) bool {
	for _, c := range d.copies[n] {
		if c.Proc == p {
			return true
		}
	}
	return false
}
