package algo

import (
	"math/bits"
	"sort"

	"repro/internal/dag"
)

// ALAPListOrder returns the nodes sorted by ascending lexicographic
// order of their ALAP lists: each node's own ALAP time followed by the
// ALAP times of all its descendants, sorted ascending. This is the
// static scheduling order of MCP (Wu & Gajski 1990) — critical-path
// nodes have the smallest ALAP times and come first — shared by the MCP
// kernel and the parameterized component schedulers.
func ALAPListOrder(g *dag.Graph) []dag.NodeID {
	n := g.NumNodes()
	lv := dag.ComputeLevels(g)
	lists := make([][]int64, n)
	// Descendant sets via reverse-topological accumulation of bitsets.
	words := (n + 63) / 64
	desc := make([][]uint64, n)
	topo := g.TopoOrder()
	for i := n - 1; i >= 0; i-- {
		v := topo[i]
		row := make([]uint64, words)
		for _, a := range g.Succs(v) {
			row[a.To/64] |= 1 << (uint(a.To) % 64)
			for w, b := range desc[a.To] {
				row[w] |= b
			}
		}
		desc[v] = row
	}
	for v := 0; v < n; v++ {
		list := []int64{lv.ALAP[v]}
		for w := 0; w < words; w++ {
			word := desc[v][w]
			for word != 0 {
				d := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				list = append(list, lv.ALAP[d])
			}
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		lists[v] = list
	}
	// Rank nodes by lexicographic list order, then emit them with a
	// priority-driven topological pass. For positive node weights a
	// parent's list always precedes its child's, so the pass reproduces
	// plain lexicographic order; with zero-weight nodes it still yields a
	// valid scheduling order.
	rank := make([]int, n)
	byList := make([]dag.NodeID, n)
	for v := range byList {
		byList[v] = dag.NodeID(v)
	}
	sort.SliceStable(byList, func(i, j int) bool {
		a, b := lists[byList[i]], lists[byList[j]]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return byList[i] < byList[j]
	})
	for i, v := range byList {
		rank[v] = i
	}
	ready := NewReadySet(g)
	order := make([]dag.NodeID, 0, n)
	for !ready.Empty() {
		next := MinBy(ready.Ready(), func(n dag.NodeID) int64 { return int64(rank[n]) })
		ready.Pop(next)
		ready.MarkScheduled(g, next)
		order = append(order, next)
	}
	return order
}
