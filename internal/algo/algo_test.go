package algo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
)

func diamond(t *testing.T) (*dag.Graph, [4]dag.NodeID) {
	t.Helper()
	b := dag.NewBuilder()
	a := b.AddNode(2)
	nb := b.AddNode(3)
	c := b.AddNode(4)
	d := b.AddNode(1)
	b.AddEdge(a, nb, 1)
	b.AddEdge(a, c, 5)
	b.AddEdge(nb, d, 2)
	b.AddEdge(c, d, 3)
	return b.MustBuild(), [4]dag.NodeID{a, nb, c, d}
}

func TestReadySetLifecycle(t *testing.T) {
	g, ids := diamond(t)
	r := NewReadySet(g)
	if r.Empty() {
		t.Fatal("entry node should be ready")
	}
	ready := r.Ready()
	if len(ready) != 1 || ready[0] != ids[0] {
		t.Fatalf("Ready = %v, want [a]", ready)
	}
	r.Pop(ids[0])
	if !r.Empty() {
		t.Fatal("popping the only ready node should empty the set")
	}
	r.MarkScheduled(g, ids[0])
	if len(r.Ready()) != 2 {
		t.Fatalf("b and c should be released, got %v", r.Ready())
	}
	r.Pop(ids[1])
	r.MarkScheduled(g, ids[1])
	// d still blocked by c.
	for _, n := range r.Ready() {
		if n == ids[3] {
			t.Fatal("d released before c scheduled")
		}
	}
	r.Pop(ids[2])
	r.MarkScheduled(g, ids[2])
	if len(r.Ready()) != 1 || r.Ready()[0] != ids[3] {
		t.Fatalf("Ready = %v, want [d]", r.Ready())
	}
}

func TestReadySetPopPanicsOnNonReady(t *testing.T) {
	g, ids := diamond(t)
	r := NewReadySet(g)
	defer func() {
		if recover() == nil {
			t.Error("Pop of blocked node did not panic")
		}
	}()
	r.Pop(ids[3])
}

func TestMaxByMinBy(t *testing.T) {
	ids := []dag.NodeID{3, 1, 2}
	prio := map[dag.NodeID]int64{1: 10, 2: 30, 3: 30}
	get := func(n dag.NodeID) int64 { return prio[n] }
	if m := MaxBy(ids, get); m != 2 {
		t.Errorf("MaxBy = %d, want 2 (tie broken toward smaller ID)", m)
	}
	if m := MinBy(ids, get); m != 1 {
		t.Errorf("MinBy = %d, want 1", m)
	}
	same := func(dag.NodeID) int64 { return 7 }
	if m := MaxBy(ids, same); m != 1 {
		t.Errorf("all-equal MaxBy = %d, want smallest ID 1", m)
	}
}

// TestReadySetDrainsInTopologicalOrder is the central property: any
// pop/schedule order produced through a ReadySet is topological.
func TestReadySetDrainsInTopologicalOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		b := dag.NewBuilder()
		for i := 0; i < n; i++ {
			b.AddNode(1)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					b.AddEdge(dag.NodeID(i), dag.NodeID(j), 1)
				}
			}
		}
		g := b.MustBuild()
		r := NewReadySet(g)
		pos := make([]int, n)
		order := 0
		for !r.Empty() {
			ready := r.Ready()
			pick := ready[rng.Intn(len(ready))]
			r.Pop(pick)
			r.MarkScheduled(g, pick)
			pos[pick] = order
			order++
		}
		if order != n {
			return false
		}
		for v := 0; v < n; v++ {
			for _, a := range g.Succs(dag.NodeID(v)) {
				if pos[v] >= pos[a.To] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
