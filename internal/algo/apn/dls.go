package apn

import (
	"repro/internal/algo"
	"repro/internal/dag"
	"repro/internal/machine"
)

// DLS is the Dynamic Level Scheduling algorithm of Sih and Lee (1993) in
// its APN form: identical to the BNP variant except that earliest start
// times are obtained by tentatively routing every parent message over
// the contended network links.
//
// At each step the (ready node, processor) pair maximizing the dynamic
// level DL(n,p) = SL(n) − EST(n,p) is committed. The exhaustive pair
// scan, with a message-routing query per pair, makes DLS the slowest
// APN algorithm in the paper's running-time comparison (section 6.4.3)
// while keeping its schedule quality stable across graph sizes.
func DLS(g *dag.Graph, topo *machine.Topology) (*machine.Schedule, error) {
	if err := checkArgs(g, topo); err != nil {
		return nil, err
	}
	return runDLS(g, topo, nil)
}

// runDLS is APN DLS with an optional heterogeneous speed vector.
func runDLS(g *dag.Graph, topo *machine.Topology, speeds []float64) (*machine.Schedule, error) {
	sl := dag.StaticLevels(g)
	s, err := newSchedule(g, topo, speeds)
	if err != nil {
		return nil, err
	}
	ready := algo.NewReadySet(g)
	for !ready.Empty() {
		bestNode := dag.None
		bestProc := -1
		var bestDL, bestEST int64
		for _, n := range ready.Ready() {
			for p := 0; p < topo.NumProcs(); p++ {
				est, ok := s.ESTOn(n, p, false)
				if !ok {
					panic("apn: DLS ready node has unscheduled parent")
				}
				dl := sl[n] - est
				if bestNode == dag.None || dl > bestDL ||
					(dl == bestDL && (n < bestNode || (n == bestNode && p < bestProc))) {
					bestNode, bestProc, bestDL, bestEST = n, p, dl, est
				}
			}
		}
		ready.Pop(bestNode)
		s.MustPlace(bestNode, bestProc, bestEST)
		ready.MarkScheduled(g, bestNode)
	}
	return s, nil
}
