package apn

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dag"
	"repro/internal/machine"
)

func allAlgorithms() []struct {
	name string
	run  Scheduler
} {
	m := Algorithms()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]struct {
		name string
		run  Scheduler
	}, 0, len(m))
	for _, n := range names {
		out = append(out, struct {
			name string
			run  Scheduler
		}{n, m[n]})
	}
	return out
}

func randomGraph(rng *rand.Rand, n int, commScale int64) *dag.Graph {
	b := dag.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(1 + rng.Int63n(25))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(4) == 0 {
				b.AddEdge(dag.NodeID(i), dag.NodeID(j), rng.Int63n(commScale))
			}
		}
	}
	return b.MustBuild()
}

func TestAlgorithmsRegistry(t *testing.T) {
	m := Algorithms()
	if len(m) != 4 {
		t.Fatalf("registry has %d algorithms, want 4", len(m))
	}
	for _, want := range []string{"MH", "DLS", "BU", "BSA"} {
		if m[want] == nil {
			t.Errorf("registry missing %s", want)
		}
	}
}

func TestAllProduceValidSchedulesAcrossTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	topos := []*machine.Topology{
		machine.Ring(4),
		machine.Hypercube(3),
		machine.Mesh(2, 3),
		machine.Star(5),
		machine.Chain(4),
		machine.Clique(4),
	}
	graphs := make([]*dag.Graph, 0, 6)
	for i := 0; i < 6; i++ {
		graphs = append(graphs, randomGraph(rng, 2+rng.Intn(25), 1+rng.Int63n(60)))
	}
	for _, tc := range allAlgorithms() {
		t.Run(tc.name, func(t *testing.T) {
			for gi, g := range graphs {
				for _, topo := range topos {
					s, err := tc.run(g, topo)
					if err != nil {
						t.Fatalf("graph %d on %s: %v", gi, topo.Name(), err)
					}
					if !s.Complete() {
						t.Fatalf("graph %d on %s: incomplete", gi, topo.Name())
					}
					if err := s.Validate(); err != nil {
						t.Fatalf("graph %d on %s: %v", gi, topo.Name(), err)
					}
					if s.NSL() < 1.0-1e-9 {
						t.Fatalf("graph %d on %s: NSL %v < 1", gi, topo.Name(), s.NSL())
					}
				}
			}
		})
	}
}

func TestAllDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	g := randomGraph(rng, 20, 40)
	topo := machine.Hypercube(3)
	for _, tc := range allAlgorithms() {
		s1, err := tc.run(g, topo)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := tc.run(g, topo)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumNodes(); v++ {
			n := dag.NodeID(v)
			if s1.ProcOf(n) != s2.ProcOf(n) || s1.StartOf(n) != s2.StartOf(n) {
				t.Fatalf("%s: node %d differs across runs", tc.name, v)
			}
		}
	}
}

func TestErrorAndDegenerateCases(t *testing.T) {
	topo := machine.Ring(3)
	for _, tc := range allAlgorithms() {
		if _, err := tc.run(nil, topo); err == nil {
			t.Errorf("%s accepted nil graph", tc.name)
		}
		empty := dag.NewBuilder().MustBuild()
		if _, err := tc.run(empty, nil); err == nil {
			t.Errorf("%s accepted nil topology", tc.name)
		}
		if s, err := tc.run(empty, topo); err != nil || s.Length() != 0 {
			t.Errorf("%s empty graph: %v", tc.name, err)
		}
		b := dag.NewBuilder()
		b.AddNode(6)
		single := b.MustBuild()
		s, err := tc.run(single, topo)
		if err != nil || s.Length() != 6 {
			t.Errorf("%s single node: length %d, err %v", tc.name, s.Length(), err)
		}
	}
}

func TestSingleProcessorTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 15, 30)
	topo := machine.Clique(1)
	for _, tc := range allAlgorithms() {
		s, err := tc.run(g, topo)
		if err != nil {
			t.Fatal(err)
		}
		if s.Length() != g.TotalComputation() {
			t.Errorf("%s: 1-proc length %d, want serial %d", tc.name, s.Length(), g.TotalComputation())
		}
	}
}

func TestCPNDominantOrderProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng, 2+rng.Intn(25), 50)
		order := cpnDominantOrder(g)
		if len(order) != g.NumNodes() {
			t.Fatalf("order covers %d of %d nodes", len(order), g.NumNodes())
		}
		pos := make(map[dag.NodeID]int, len(order))
		for i, n := range order {
			if _, dup := pos[n]; dup {
				t.Fatalf("node %d appears twice", n)
			}
			pos[n] = i
		}
		// Topological consistency.
		for v := 0; v < g.NumNodes(); v++ {
			for _, a := range g.Succs(dag.NodeID(v)) {
				if pos[dag.NodeID(v)] >= pos[a.To] {
					t.Fatalf("order violates edge (%d,%d)", v, a.To)
				}
			}
		}
		// The first critical-path node is preceded only by its ancestors.
		cp := dag.CriticalPath(g)
		first := cp[0]
		for _, m := range order[:pos[first]] {
			if !dag.Reachable(g, m, first) {
				t.Fatalf("non-ancestor %d precedes first CP node %d", m, first)
			}
		}
	}
}

func TestBSAMigratesOffCongestedPivot(t *testing.T) {
	// Two independent heavy tasks: serialized on the pivot they finish at
	// 10 and 20; bubbling must move one to a neighbor.
	b := dag.NewBuilder()
	b.AddNode(10)
	b.AddNode(10)
	g := b.MustBuild()
	s, err := BSA(g, machine.Chain(2))
	if err != nil {
		t.Fatal(err)
	}
	if s.Length() != 10 {
		t.Errorf("BSA length = %d, want 10 (one migration)\n%s", s.Length(), s)
	}
	if s.ProcessorsUsed() != 2 {
		t.Errorf("BSA used %d processors, want 2", s.ProcessorsUsed())
	}
}

func TestBSAKeepsChainOnPivot(t *testing.T) {
	// A heavy-communication chain gains nothing from migration: BSA must
	// leave it serialized on the pivot.
	b := dag.NewBuilder()
	prev := b.AddNode(2)
	for i := 0; i < 5; i++ {
		n := b.AddNode(2)
		b.AddEdge(prev, n, 50)
		prev = n
	}
	g := b.MustBuild()
	s, err := BSA(g, machine.Ring(4))
	if err != nil {
		t.Fatal(err)
	}
	if s.ProcessorsUsed() != 1 {
		t.Errorf("BSA split a heavy chain across %d processors\n%s", s.ProcessorsUsed(), s)
	}
	if s.Length() != 12 {
		t.Errorf("BSA chain length = %d, want 12", s.Length())
	}
}

func TestBUPlacesCPTogether(t *testing.T) {
	// Star topology: the hub has the highest degree, so BU maps the
	// critical path there.
	b := dag.NewBuilder()
	x := b.AddNode(5)
	y := b.AddNode(5)
	z := b.AddNode(5)
	b.AddEdge(x, y, 20)
	b.AddEdge(y, z, 20)
	w := b.AddNode(1) // off-CP node
	b.AddEdge(x, w, 1)
	g := b.MustBuild()
	s, err := BU(g, machine.Star(4))
	if err != nil {
		t.Fatal(err)
	}
	if s.ProcOf(x) != 0 || s.ProcOf(y) != 0 || s.ProcOf(z) != 0 {
		t.Errorf("BU did not map the CP to the hub:\n%s", s)
	}
}

func TestMHRespectsContention(t *testing.T) {
	// One parent, two children, tiny weights but large messages, on a
	// two-processor chain: whatever MH does must validate, and any
	// remote child must start no earlier than finish+c.
	b := dag.NewBuilder()
	p := b.AddNode(2)
	c1 := b.AddNode(1)
	c2 := b.AddNode(1)
	b.AddEdge(p, c1, 10)
	b.AddEdge(p, c2, 10)
	g := b.MustBuild()
	s, err := MH(g, machine.Chain(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, c := range []dag.NodeID{c1, c2} {
		if s.ProcOf(c) != s.ProcOf(p) && s.StartOf(c) < 12 {
			t.Errorf("remote child starts at %d before message arrival", s.StartOf(c))
		}
	}
}

// TestDenseTopologyNoWorse reflects the paper's observation that "all
// algorithms perform better on networks with more communication links"
// (section 6.4.1): moving from a chain to a clique should not hurt, in
// aggregate, for any APN algorithm.
func TestDenseTopologyNoWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, tc := range allAlgorithms() {
		var chainTotal, cliqueTotal int64
		for i := 0; i < 8; i++ {
			g := randomGraph(rng, 18, 60)
			sChain, err := tc.run(g, machine.Chain(4))
			if err != nil {
				t.Fatal(err)
			}
			sClique, err := tc.run(g, machine.Clique(4))
			if err != nil {
				t.Fatal(err)
			}
			chainTotal += sChain.Length()
			cliqueTotal += sClique.Length()
		}
		if cliqueTotal > chainTotal+chainTotal/10 {
			t.Errorf("%s: clique total %d clearly worse than chain total %d",
				tc.name, cliqueTotal, chainTotal)
		}
	}
}
