package apn

import (
	"repro/internal/algo"
	"repro/internal/dag"
	"repro/internal/machine"
)

// MH is the Mapping Heuristic of El-Rewini and Lewis (1990), the classic
// list scheduler for arbitrary topologies.
//
// Ready nodes are prioritized by static level. The selected node is
// placed on the processor with the smallest earliest start time, where
// start times account for message routing over the network: each
// parent's message is routed hop-by-hop along the shortest path and
// queued behind earlier traffic on every link (El-Rewini and Lewis
// model link delay with routing tables updated as messages commit; the
// machine package's store-and-forward link timelines play that role
// here). Placement on the processor is non-insertion.
//
// The paper observes MH "yields fairly long schedule lengths for large
// graphs" (section 6.4.1) — priorities ignore communication, and no
// insertion is attempted.
func MH(g *dag.Graph, topo *machine.Topology) (*machine.Schedule, error) {
	if err := checkArgs(g, topo); err != nil {
		return nil, err
	}
	return runMH(g, topo, nil)
}

// runMH is MH with an optional heterogeneous speed vector.
func runMH(g *dag.Graph, topo *machine.Topology, speeds []float64) (*machine.Schedule, error) {
	sl := dag.StaticLevels(g)
	s, err := newSchedule(g, topo, speeds)
	if err != nil {
		return nil, err
	}
	ready := algo.NewReadySet(g)
	for !ready.Empty() {
		n := algo.MaxBy(ready.Ready(), func(m dag.NodeID) int64 { return sl[m] })
		ready.Pop(n)
		p, est, ok := s.BestEST(n, false)
		if !ok {
			panic("apn: MH popped node with unscheduled parent")
		}
		s.MustPlace(n, p, est)
		ready.MarkScheduled(g, n)
	}
	return s, nil
}
