// Package apn implements the four APN (arbitrary processor network)
// scheduling algorithms benchmarked by Kwok & Ahmad (IPPS 1998): MH,
// DLS, BU, and BSA. APN algorithms drop the clique assumption: the
// processors form an arbitrary topology with contention-prone links, and
// the algorithms schedule messages on links in addition to tasks on
// processors (paper section 4), using the store-and-forward model of
// internal/machine.
//
// Every scheduler has the signature
//
//	func(g *dag.Graph, topo *machine.Topology) (*machine.Schedule, error)
package apn

import (
	"fmt"

	"repro/internal/algo"
	"repro/internal/dag"
	"repro/internal/machine"
)

// Scheduler is the common signature of all APN algorithms.
type Scheduler func(g *dag.Graph, topo *machine.Topology) (*machine.Schedule, error)

// Algorithms returns the four APN algorithms by name.
func Algorithms() map[string]Scheduler {
	return map[string]Scheduler{
		"MH":  MH,
		"DLS": DLS,
		"BU":  BU,
		"BSA": BSA,
	}
}

func checkArgs(g *dag.Graph, topo *machine.Topology) error {
	if g == nil {
		return fmt.Errorf("apn: nil graph")
	}
	if topo == nil {
		return fmt.Errorf("apn: nil topology")
	}
	return nil
}

// runs maps algorithm names to their speed-threaded inner entry points.
var runs = map[string]func(*dag.Graph, *machine.Topology, []float64) (*machine.Schedule, error){
	"MH":  runMH,
	"DLS": runDLS,
	"BU":  runBU,
	"BSA": runBSA,
}

// ScheduleHet runs the named APN algorithm with per-processor speeds
// (one positive factor per topology processor, nil for the homogeneous
// model, where the result is byte-identical to the plain entry point).
// Placement queries, migration evaluations, and committed execution
// times are speed-aware; link transfer costs are unaffected.
func ScheduleHet(name string, g *dag.Graph, topo *machine.Topology, speeds []float64) (*machine.Schedule, error) {
	run, ok := runs[name]
	if !ok {
		return nil, fmt.Errorf("apn: unknown algorithm %q", name)
	}
	if err := checkArgs(g, topo); err != nil {
		return nil, err
	}
	return run(g, topo, speeds)
}

// newSchedule builds an empty schedule with the optional speeds applied.
func newSchedule(g *dag.Graph, topo *machine.Topology, speeds []float64) (*machine.Schedule, error) {
	s := machine.NewSchedule(g, topo)
	if speeds != nil {
		if err := s.SetSpeeds(speeds); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// cpnDominantOrder returns the CPN-dominant sequence of the graph used
// by BSA: critical-path nodes appear as early as their precedence
// constraints allow, each preceded by its not-yet-listed ancestors
// (in-branch nodes) in descending b-level order; the remaining
// (out-branch) nodes follow, also by descending b-level.
func cpnDominantOrder(g *dag.Graph) []dag.NodeID {
	bl := dag.BLevels(g)
	cp := dag.CriticalPath(g)
	emitted := make([]bool, g.NumNodes())
	ready := algo.NewReadySet(g)
	order := make([]dag.NodeID, 0, g.NumNodes())

	emit := func(n dag.NodeID) {
		ready.Pop(n)
		ready.MarkScheduled(g, n)
		emitted[n] = true
		order = append(order, n)
	}
	// ancestorsOf marks all strict ancestors of c.
	ancestorsOf := func(c dag.NodeID) []bool {
		anc := make([]bool, g.NumNodes())
		stack := []dag.NodeID{c}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range g.Preds(x) {
				if !anc[p.To] {
					anc[p.To] = true
					stack = append(stack, p.To)
				}
			}
		}
		return anc
	}

	for _, c := range cp {
		if emitted[c] {
			continue
		}
		anc := ancestorsOf(c)
		// Drain the ready ancestors of c (highest b-level first) until c
		// itself becomes ready, then emit c.
		for {
			candidate := dag.None
			for _, r := range ready.Ready() {
				if r == c {
					continue
				}
				if !anc[r] {
					continue
				}
				if candidate == dag.None || bl[r] > bl[candidate] ||
					(bl[r] == bl[candidate] && r < candidate) {
					candidate = r
				}
			}
			if candidate == dag.None {
				break
			}
			emit(candidate)
		}
		emit(c)
	}
	// Out-branch nodes: descending b-level, topologically consistent.
	for !ready.Empty() {
		n := algo.MaxBy(ready.Ready(), func(m dag.NodeID) int64 { return bl[m] })
		emit(n)
	}
	return order
}
