package apn

import (
	"repro/internal/algo"
	"repro/internal/dag"
	"repro/internal/machine"
)

// BU is the Bottom-Up algorithm of Mehdiratta and Ghose (1994).
//
// BU first maps every critical-path node to a single processor — the
// best-connected one — and then assigns the remaining nodes in reverse
// topological order (hence bottom-up): each node goes to the processor
// that minimizes its outgoing communication, weighted by the hop
// distance to its already-assigned children, with processor load as the
// tie-breaker. Once the assignment is fixed, tasks and messages are
// scheduled by replaying the per-processor sequences in b-level order.
//
// The paper finds BU the fastest APN algorithm but with erratic schedule
// quality (section 6.4): assignment decisions never revisit start times.
func BU(g *dag.Graph, topo *machine.Topology) (*machine.Schedule, error) {
	if err := checkArgs(g, topo); err != nil {
		return nil, err
	}
	return runBU(g, topo, nil)
}

// runBU is BU with an optional heterogeneous speed vector, applied when
// the fixed assignment is replayed into a schedule (the assignment pass
// itself is load- and distance-driven, not time-driven).
func runBU(g *dag.Graph, topo *machine.Topology, speeds []float64) (*machine.Schedule, error) {
	n := g.NumNodes()
	if n == 0 {
		return newSchedule(g, topo, speeds)
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	// Critical path onto the best-connected processor.
	pivot := bestConnectedProc(topo)
	for _, c := range dag.CriticalPath(g) {
		assign[c] = pivot
	}
	load := make([]int64, topo.NumProcs())
	for v := 0; v < n; v++ {
		if assign[v] == pivot {
			load[pivot] += g.Weight(dag.NodeID(v))
		}
	}
	// Remaining nodes in reverse topological order: children first.
	topoOrder := g.TopoOrder()
	for i := n - 1; i >= 0; i-- {
		v := topoOrder[i]
		if assign[v] >= 0 {
			continue
		}
		bestP := -1
		var bestCost, bestLoad int64
		for p := 0; p < topo.NumProcs(); p++ {
			// Outgoing communication weighted by hop distance, plus the
			// processor's accumulated load: Mehdiratta and Ghose's
			// bottom-up pass minimizes communication while spreading
			// computation, so pure pivot-stacking is penalized.
			cost := load[p]
			for _, a := range g.Succs(v) {
				if assign[a.To] >= 0 {
					cost += a.Weight * int64(topo.Dist(p, assign[a.To]))
				}
			}
			if bestP == -1 || cost < bestCost || (cost == bestCost && load[p] < bestLoad) {
				bestP, bestCost, bestLoad = p, cost, load[p]
			}
		}
		assign[v] = bestP
		load[bestP] += g.Weight(v)
	}
	// Per-processor sequences in global b-level order.
	seqs := make([][]dag.NodeID, topo.NumProcs())
	for _, v := range blevelOrder(g) {
		seqs[assign[v]] = append(seqs[assign[v]], v)
	}
	return machine.ReplaySequencesHet(g, topo, seqs, speeds)
}

// bestConnectedProc returns the processor with the highest degree,
// breaking ties toward the lowest index.
func bestConnectedProc(topo *machine.Topology) int {
	best := 0
	for p := 1; p < topo.NumProcs(); p++ {
		if topo.Degree(p) > topo.Degree(best) {
			best = p
		}
	}
	return best
}

// blevelOrder returns nodes in descending b-level order, kept
// topological by a priority-driven Kahn pass.
func blevelOrder(g *dag.Graph) []dag.NodeID {
	bl := dag.BLevels(g)
	ready := algo.NewReadySet(g)
	order := make([]dag.NodeID, 0, g.NumNodes())
	for !ready.Empty() {
		n := algo.MaxBy(ready.Ready(), func(m dag.NodeID) int64 { return bl[m] })
		ready.Pop(n)
		ready.MarkScheduled(g, n)
		order = append(order, n)
	}
	return order
}
