package apn

import (
	"repro/internal/dag"
	"repro/internal/machine"
)

// BSA is the Bubble Scheduling and Allocation algorithm of Kwok and
// Ahmad (1995).
//
// BSA first serializes the whole graph onto a pivot processor (the
// best-connected one) in CPN-dominant order — critical-path nodes as
// early as possible, each preceded by its ancestors. It then visits the
// processors in breadth-first order from the pivot; on each processor it
// reconsiders every resident node and migrates it to an adjacent
// processor when that strictly reduces the node's start time, letting
// the nodes left behind "bubble up" into the vacated slack. Messages are
// rescheduled along with every accepted migration, which is why the
// paper credits BSA's strength on large graphs to its "efficient
// scheduling of communication messages" (section 6.4.1).
//
// Implementation note: the published algorithm updates the schedule
// incrementally around each migration; this implementation evaluates a
// candidate migration with a cheap routed-EST estimate and, when the
// estimate promises an improvement, rebuilds the schedule by replaying
// the per-processor sequences (machine.ReplaySequences), keeping the
// migration only if the node's start time actually improved. The
// resulting schedules follow the published behaviour; only the running
// time constant differs.
func BSA(g *dag.Graph, topo *machine.Topology) (*machine.Schedule, error) {
	if err := checkArgs(g, topo); err != nil {
		return nil, err
	}
	return runBSA(g, topo, nil)
}

// runBSA is BSA with an optional heterogeneous speed vector: the serial
// pivot schedule, every migration-candidate replay, and the migration
// accept/reject comparisons are all speed-aware.
func runBSA(g *dag.Graph, topo *machine.Topology, speeds []float64) (*machine.Schedule, error) {
	if g.NumNodes() == 0 {
		return newSchedule(g, topo, speeds)
	}
	order := cpnDominantOrder(g)
	rank := make([]int, g.NumNodes())
	for i, n := range order {
		rank[n] = i
	}
	pivot := bestConnectedProc(topo)
	seqs := make([][]dag.NodeID, topo.NumProcs())
	seqs[pivot] = append([]dag.NodeID(nil), order...)

	s, err := machine.ReplaySequencesHet(g, topo, seqs, speeds)
	if err != nil {
		return nil, err
	}

	for _, p := range bfsProcs(topo, pivot) {
		// Snapshot: migrations mutate seqs[p] as we iterate.
		resident := append([]dag.NodeID(nil), seqs[p]...)
		for _, n := range resident {
			if current := s.ProcOf(n); current != p {
				continue // migrated away by an earlier step
			}
			bestProc := -1
			bestEst := s.StartOf(n)
			for _, nb := range topo.Neighbors(p) {
				est, ok := s.ESTOn(n, int(nb), true)
				if !ok {
					continue
				}
				if est < bestEst {
					bestEst, bestProc = est, int(nb)
				}
			}
			if bestProc < 0 {
				continue
			}
			candidate := moveNode(seqs, n, p, bestProc, rank)
			ns, err := machine.ReplaySequencesHet(g, topo, candidate, speeds)
			if err != nil || ns.StartOf(n) >= s.StartOf(n) || ns.Length() > s.Length() {
				// The estimate was optimistic, or bubbling this node
				// earlier pushed its successors' messages onto busier
				// links and lengthened the schedule: keep the old state.
				// (The published BSA's incremental update reconsiders
				// displaced successors later; with whole-schedule
				// replays the makespan guard plays that role.)
				continue
			}
			seqs = candidate
			s = ns
		}
	}
	return s, nil
}

// moveNode returns a copy of seqs with n moved from processor from to
// processor to, inserted by CPN-dominant rank so every per-processor
// sequence stays a subsequence of the global order.
func moveNode(seqs [][]dag.NodeID, n dag.NodeID, from, to int, rank []int) [][]dag.NodeID {
	out := make([][]dag.NodeID, len(seqs))
	for i := range seqs {
		switch i {
		case from:
			for _, m := range seqs[i] {
				if m != n {
					out[i] = append(out[i], m)
				}
			}
		case to:
			inserted := false
			for _, m := range seqs[i] {
				if !inserted && rank[n] < rank[m] {
					out[i] = append(out[i], n)
					inserted = true
				}
				out[i] = append(out[i], m)
			}
			if !inserted {
				out[i] = append(out[i], n)
			}
		default:
			out[i] = append([]dag.NodeID(nil), seqs[i]...)
		}
	}
	return out
}

// bfsProcs returns the processors in breadth-first order from the pivot.
func bfsProcs(topo *machine.Topology, pivot int) []int {
	seen := make([]bool, topo.NumProcs())
	order := []int{pivot}
	seen[pivot] = true
	for head := 0; head < len(order); head++ {
		for _, nb := range topo.Neighbors(order[head]) {
			if !seen[nb] {
				seen[nb] = true
				order = append(order, int(nb))
			}
		}
	}
	return order
}
