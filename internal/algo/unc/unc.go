// Package unc implements the five UNC (unbounded number of clusters)
// scheduling algorithms benchmarked by Kwok & Ahmad (IPPS 1998): EZ, LC,
// DSC, MD, and DCP. UNC algorithms assume as many fully connected
// processors as needed and work by clustering: initially every node is
// its own cluster, and clusters are merged when doing so promises a
// shorter schedule (paper section 4).
//
// Every scheduler has the signature
//
//	func(g *dag.Graph) (*sched.Schedule, error)
//
// and returns a complete schedule on at most NumNodes processors, one
// processor per final cluster. The number of processors actually used is
// itself a benchmark measure (paper Figure 3a).
package unc

import (
	"fmt"

	"repro/internal/algo"
	"repro/internal/dag"
	"repro/internal/sched"
)

// Scheduler is the common signature of all UNC algorithms.
type Scheduler func(g *dag.Graph) (*sched.Schedule, error)

// Algorithms returns the five UNC algorithms by name.
func Algorithms() map[string]Scheduler {
	return map[string]Scheduler{
		"EZ":  EZ,
		"LC":  LC,
		"DSC": DSC,
		"MD":  MD,
		"DCP": DCP,
	}
}

func checkGraph(g *dag.Graph) error {
	if g == nil {
		return fmt.Errorf("unc: nil graph")
	}
	return nil
}

// blevelOrder returns the nodes in descending b-level order, enforced to
// be topological via a priority-driven Kahn pass (for positive node
// weights descending b-level is already topological; zero-weight nodes
// need the guard). This is the standard intra-cluster ordering used when
// converting a clustering into a schedule.
func blevelOrder(g *dag.Graph) []dag.NodeID {
	bl := dag.BLevels(g)
	ready := algo.NewReadySet(g)
	order := make([]dag.NodeID, 0, g.NumNodes())
	for !ready.Empty() {
		n := algo.MaxBy(ready.Ready(), func(n dag.NodeID) int64 { return bl[n] })
		ready.Pop(n)
		ready.MarkScheduled(g, n)
		order = append(order, n)
	}
	return order
}

// scheduleAssignment converts a node-to-cluster assignment into a
// concrete schedule: nodes are placed in the given order (which must be
// topological), each at its earliest start time on its assigned
// processor without insertion. This is the cluster-ordering step shared
// by EZ and LC.
func scheduleAssignment(g *dag.Graph, order []dag.NodeID, assign []int, numProcs int) *sched.Schedule {
	s := sched.Acquire(g, numProcs)
	for _, n := range order {
		est, ok := s.ESTOn(n, assign[n], false)
		if !ok {
			panic("unc: assignment order is not topological")
		}
		s.MustPlace(n, assign[n], est)
	}
	return s
}
