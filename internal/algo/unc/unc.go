// Package unc implements the five UNC (unbounded number of clusters)
// scheduling algorithms benchmarked by Kwok & Ahmad (IPPS 1998): EZ, LC,
// DSC, MD, and DCP. UNC algorithms assume as many fully connected
// processors as needed and work by clustering: initially every node is
// its own cluster, and clusters are merged when doing so promises a
// shorter schedule (paper section 4).
//
// Every scheduler has the signature
//
//	func(g *dag.Graph) (*sched.Schedule, error)
//
// and returns a complete schedule on at most NumNodes processors, one
// processor per final cluster. The number of processors actually used is
// itself a benchmark measure (paper Figure 3a).
package unc

import (
	"fmt"

	"repro/internal/algo"
	"repro/internal/dag"
	"repro/internal/sched"
)

// Scheduler is the common signature of all UNC algorithms.
type Scheduler func(g *dag.Graph) (*sched.Schedule, error)

// Algorithms returns the five UNC algorithms by name.
func Algorithms() map[string]Scheduler {
	return map[string]Scheduler{
		"EZ":  EZ,
		"LC":  LC,
		"DSC": DSC,
		"MD":  MD,
		"DCP": DCP,
	}
}

func checkGraph(g *dag.Graph) error {
	if g == nil {
		return fmt.Errorf("unc: nil graph")
	}
	return nil
}

// runs maps algorithm names to their speed-threaded inner entry points.
var runs = map[string]func(*dag.Graph, []float64) (*sched.Schedule, error){
	"EZ":  runEZ,
	"LC":  runLC,
	"DSC": runDSC,
	"MD":  runMD,
	"DCP": runDCP,
}

// ScheduleHet runs the named UNC algorithm with per-processor speeds.
// UNC algorithms open processors as they cluster, up to one per node, so
// speeds must cover g.NumNodes() processors (at least one); every
// schedule the algorithm builds — including tentative estimates — uses
// the matching prefix, so clustering decisions see the heterogeneous
// execution times. Nil speeds reproduce the plain entry point
// byte-identically.
func ScheduleHet(name string, g *dag.Graph, speeds []float64) (*sched.Schedule, error) {
	run, ok := runs[name]
	if !ok {
		return nil, fmt.Errorf("unc: unknown algorithm %q", name)
	}
	if err := checkGraph(g); err != nil {
		return nil, err
	}
	if speeds != nil {
		need := max(g.NumNodes(), 1)
		if len(speeds) < need {
			return nil, fmt.Errorf("unc: %d speed factors cannot cover %d processors", len(speeds), need)
		}
		for p, sp := range speeds {
			if !(sp > 0) {
				return nil, fmt.Errorf("unc: speed factor %g for processor %d must be positive", sp, p)
			}
		}
	}
	return run(g, speeds)
}

// acquire returns an empty schedule on numProcs processors with the
// optional speed prefix applied. ScheduleHet validated the vector.
func acquire(g *dag.Graph, numProcs int, speeds []float64) *sched.Schedule {
	s := sched.Acquire(g, numProcs)
	if speeds != nil {
		if err := s.SetSpeeds(speeds[:numProcs]); err != nil {
			panic(err)
		}
	}
	return s
}

// blevelOrder returns the nodes in descending b-level order, enforced to
// be topological via a priority-driven Kahn pass (for positive node
// weights descending b-level is already topological; zero-weight nodes
// need the guard). This is the standard intra-cluster ordering used when
// converting a clustering into a schedule.
func blevelOrder(g *dag.Graph) []dag.NodeID {
	bl := dag.BLevels(g)
	ready := algo.NewReadySet(g)
	order := make([]dag.NodeID, 0, g.NumNodes())
	for !ready.Empty() {
		n := algo.MaxBy(ready.Ready(), func(n dag.NodeID) int64 { return bl[n] })
		ready.Pop(n)
		ready.MarkScheduled(g, n)
		order = append(order, n)
	}
	return order
}

// scheduleAssignment converts a node-to-cluster assignment into a
// concrete schedule: nodes are placed in the given order (which must be
// topological), each at its earliest start time on its assigned
// processor without insertion. This is the cluster-ordering step shared
// by EZ and LC.
func scheduleAssignment(g *dag.Graph, order []dag.NodeID, assign []int, numProcs int, speeds []float64) *sched.Schedule {
	s := acquire(g, numProcs, speeds)
	for _, n := range order {
		est, ok := s.ESTOn(n, assign[n], false)
		if !ok {
			panic("unc: assignment order is not topological")
		}
		s.MustPlace(n, assign[n], est)
	}
	return s
}
