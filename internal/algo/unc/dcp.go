package unc

import (
	"repro/internal/dag"
	"repro/internal/sched"
)

// DCP is the Dynamic Critical Path algorithm of Kwok and Ahmad (1996),
// the strongest UNC algorithm in the paper's comparison (it produces the
// best solutions across every benchmark suite, sections 6.1–6.3).
//
// Its three ingredients:
//
//  1. Dynamic critical path: after every placement the absolute earliest
//     start times (AEST) and absolute latest start times (ALST) are
//     recomputed on the partially scheduled graph; the next node is the
//     ready node with the smallest mobility ALST − AEST (zero for nodes
//     on the current DCP), ties toward smaller ALST.
//  2. Lookahead: a candidate processor is scored by the node's start
//     time plus the estimated start time of its critical child (the
//     unscheduled child with the smallest ALST) on that processor, so a
//     placement that strands the critical child is penalized.
//  3. Processor economy: only processors holding the node's parents —
//     plus one fresh processor — are examined, in that order, and a
//     fresh processor is chosen only when it strictly improves the
//     score. This is why DCP uses far fewer processors than DSC or LC
//     (paper Figure 3b discussion).
//
// Placement uses insertion. Starts are committed on placement (the
// published algorithm keeps them floating until the end; committing
// keeps every intermediate schedule concrete and validated).
func DCP(g *dag.Graph) (*sched.Schedule, error) {
	if err := checkGraph(g); err != nil {
		return nil, err
	}
	return runDCP(g, nil)
}

// runDCP is DCP with an optional heterogeneous speed prefix: placement
// queries against the partial schedule are speed-aware.
func runDCP(g *dag.Graph, speeds []float64) (*sched.Schedule, error) {
	n := g.NumNodes()
	s := acquire(g, max(n, 1), speeds)
	if n == 0 {
		return s, nil
	}
	topo := g.TopoOrder()
	tl := make([]int64, n) // AEST
	bl := make([]int64, n)
	usedProcs := 0

	for s.Placed() < n {
		L := currentLevels(g, s, topo, tl, bl)
		// Ready node with minimum mobility (ALST - AEST = L - bl - tl).
		best := dag.None
		var bestMob, bestALST int64
		for v := 0; v < n; v++ {
			node := dag.NodeID(v)
			if s.IsScheduled(node) || !allParentsScheduled(g, s, node) {
				continue
			}
			mob := L - bl[node] - tl[node]
			alst := L - bl[node]
			if best == dag.None || mob < bestMob || (mob == bestMob && alst < bestALST) {
				best, bestMob, bestALST = node, mob, alst
			}
		}
		if best == dag.None {
			panic("unc: DCP found no ready node")
		}

		proc, start := dcpChooseProc(g, s, tl, bl, best, usedProcs)
		s.MustPlace(best, proc, start)
		if proc == usedProcs {
			usedProcs++
		}
	}
	return s, nil
}

// dcpChooseProc scores every used processor (ascending) plus one fresh
// processor by EST(best) + estimated EST(critical child) and returns the
// first strict winner with its start time. The published DCP examines
// the processors holding the node's parents and children plus one more;
// because this implementation schedules in ready order, children are
// never placed yet, and scanning all used processors (still "plus one
// more") preserves DCP's processor economy: a fresh processor is opened
// only when it strictly improves the composite score.
func dcpChooseProc(g *dag.Graph, s *sched.Schedule, tl, bl []int64, node dag.NodeID, fresh int) (int, int64) {
	candidates := make([]int, 0, fresh+1)
	for p := 0; p <= fresh; p++ {
		candidates = append(candidates, p)
	}

	cc := criticalChild(g, s, bl, tl, node)
	bestProc := -1
	var bestStart, bestScore int64
	for _, p := range candidates {
		est, ok := s.ESTOn(node, p, true)
		if !ok {
			panic("unc: DCP candidate with unscheduled parent")
		}
		score := est
		if cc != dag.None {
			score += childEstimate(g, s, tl, node, cc, p, est)
		}
		if bestProc == -1 || score < bestScore || (score == bestScore && est < bestStart) {
			bestProc, bestStart, bestScore = p, est, score
		}
	}
	return bestProc, bestStart
}

// criticalChild returns node's unscheduled child with the smallest ALST
// (equivalently the largest b-level among equals), or None.
func criticalChild(g *dag.Graph, s *sched.Schedule, bl, tl []int64, node dag.NodeID) dag.NodeID {
	best := dag.None
	var bestBL int64
	for _, a := range g.Succs(node) {
		if s.IsScheduled(a.To) {
			continue
		}
		if best == dag.None || bl[a.To] > bestBL || (bl[a.To] == bestBL && a.To < best) {
			best, bestBL = a.To, bl[a.To]
		}
	}
	return best
}

// childEstimate estimates how early the critical child could start on
// processor p if node were placed there finishing at est + w(node).
// Scheduled other-parents contribute concrete arrival times; unscheduled
// ones contribute their AEST-based estimates (assumed remote).
func childEstimate(g *dag.Graph, s *sched.Schedule, tl []int64, node, child dag.NodeID, p int, est int64) int64 {
	ready := est + g.Weight(node) // same processor: edge zeroed
	for _, pr := range g.Preds(child) {
		if pr.To == node {
			continue
		}
		var arrival int64
		if s.IsScheduled(pr.To) {
			arrival = s.FinishOf(pr.To)
			if s.ProcOf(pr.To) != p {
				arrival += pr.Weight
			}
		} else {
			arrival = tl[pr.To] + g.Weight(pr.To) + pr.Weight
		}
		if arrival > ready {
			ready = arrival
		}
	}
	return ready
}
