package unc

import (
	"repro/internal/dag"
	"repro/internal/sched"
)

// LC is the Linear Clustering algorithm of Kim and Browne (1988).
//
// LC repeatedly identifies the critical path of the not-yet-clustered
// part of the graph — path length counts node weights and the
// communication costs of edges between unclustered nodes — peels all of
// its nodes off into one new linear cluster, and continues until every
// node is clustered. Clusters are then ordered by descending b-level and
// placed one per processor.
//
// Like EZ, LC pays no attention to processor economy: the paper observes
// it uses more than 100 processors on 500-node graphs (section 6.4.2).
func LC(g *dag.Graph) (*sched.Schedule, error) {
	if err := checkGraph(g); err != nil {
		return nil, err
	}
	return runLC(g, nil)
}

// runLC is LC with an optional heterogeneous speed prefix applied to
// the final cluster schedule (the clustering itself is graph-driven).
func runLC(g *dag.Graph, speeds []float64) (*sched.Schedule, error) {
	n := g.NumNodes()
	if n == 0 {
		return acquire(g, 1, speeds), nil
	}

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	clustered := make([]bool, n)
	topo := g.TopoOrder()
	tl := make([]int64, n)
	bl := make([]int64, n)
	nextCluster := 0
	remaining := n
	for remaining > 0 {
		// Levels restricted to unclustered nodes and the edges between
		// them.
		for _, v := range topo {
			if clustered[v] {
				continue
			}
			tl[v] = 0
			for _, p := range g.Preds(v) {
				if clustered[p.To] {
					continue
				}
				if c := tl[p.To] + g.Weight(p.To) + p.Weight; c > tl[v] {
					tl[v] = c
				}
			}
		}
		var cpLen int64 = -1
		for i := n - 1; i >= 0; i-- {
			v := topo[i]
			if clustered[v] {
				continue
			}
			bl[v] = 0
			for _, a := range g.Succs(v) {
				if clustered[a.To] {
					continue
				}
				if c := a.Weight + bl[a.To]; c > bl[v] {
					bl[v] = c
				}
			}
			bl[v] += g.Weight(v)
			if c := tl[v] + bl[v]; c > cpLen {
				cpLen = c
			}
		}
		// Walk one critical path deterministically: start at the
		// smallest-ID unclustered entry achieving the CP length.
		cur := dag.None
		for _, v := range topo {
			if !clustered[v] && tl[v] == 0 && bl[v] == cpLen {
				cur = v
				break
			}
		}
		if cur == dag.None {
			panic("unc: LC found no critical-path head")
		}
		cluster := nextCluster
		nextCluster++
		for cur != dag.None {
			assign[cur] = cluster
			clustered[cur] = true
			remaining--
			next := dag.None
			for _, a := range g.Succs(cur) {
				if clustered[a.To] {
					continue
				}
				if tl[cur]+g.Weight(cur)+a.Weight == tl[a.To] &&
					tl[a.To]+bl[a.To] == cpLen {
					if next == dag.None || a.To < next {
						next = a.To
					}
				}
			}
			cur = next
		}
	}
	return scheduleAssignment(g, blevelOrder(g), assign, nextCluster, speeds), nil
}
