package unc

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/algo/bnp"
	"repro/internal/dag"
)

func allAlgorithms() []struct {
	name string
	run  Scheduler
} {
	m := Algorithms()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]struct {
		name string
		run  Scheduler
	}, 0, len(m))
	for _, n := range names {
		out = append(out, struct {
			name string
			run  Scheduler
		}{n, m[n]})
	}
	return out
}

func randomGraph(rng *rand.Rand, n int, commScale int64) *dag.Graph {
	b := dag.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(1 + rng.Int63n(30))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(4) == 0 {
				b.AddEdge(dag.NodeID(i), dag.NodeID(j), rng.Int63n(commScale))
			}
		}
	}
	return b.MustBuild()
}

func TestAlgorithmsRegistry(t *testing.T) {
	m := Algorithms()
	if len(m) != 5 {
		t.Fatalf("registry has %d algorithms, want 5", len(m))
	}
	for _, want := range []string{"EZ", "LC", "DSC", "MD", "DCP"} {
		if m[want] == nil {
			t.Errorf("registry missing %s", want)
		}
	}
}

func TestAllProduceValidCompleteSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	graphs := make([]*dag.Graph, 0, 10)
	for i := 0; i < 10; i++ {
		graphs = append(graphs, randomGraph(rng, 2+rng.Intn(35), 1+rng.Int63n(80)))
	}
	for _, tc := range allAlgorithms() {
		t.Run(tc.name, func(t *testing.T) {
			for gi, g := range graphs {
				s, err := tc.run(g)
				if err != nil {
					t.Fatalf("graph %d: %v", gi, err)
				}
				if !s.Complete() {
					t.Fatalf("graph %d: incomplete", gi)
				}
				if err := s.Validate(); err != nil {
					t.Fatalf("graph %d: %v", gi, err)
				}
				if s.NSL() < 1.0-1e-9 {
					t.Fatalf("graph %d: NSL %v < 1", gi, s.NSL())
				}
			}
		})
	}
}

func TestAllDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	g := randomGraph(rng, 25, 50)
	for _, tc := range allAlgorithms() {
		s1, err := tc.run(g)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := tc.run(g)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumNodes(); v++ {
			n := dag.NodeID(v)
			if s1.ProcOf(n) != s2.ProcOf(n) || s1.StartOf(n) != s2.StartOf(n) {
				t.Fatalf("%s: node %d placed differently across runs", tc.name, v)
			}
		}
	}
}

func TestErrorAndDegenerateCases(t *testing.T) {
	for _, tc := range allAlgorithms() {
		if _, err := tc.run(nil); err == nil {
			t.Errorf("%s accepted nil graph", tc.name)
		}
		empty := dag.NewBuilder().MustBuild()
		if s, err := tc.run(empty); err != nil || s.Length() != 0 {
			t.Errorf("%s failed on empty graph: %v", tc.name, err)
		}
		b := dag.NewBuilder()
		b.AddNode(5)
		single := b.MustBuild()
		s, err := tc.run(single)
		if err != nil || s.Length() != 5 {
			t.Errorf("%s single node: length %d err %v", tc.name, s.Length(), err)
		}
	}
}

// TestChainCollapsesToOneProcessor: a linear chain with heavy
// communication must be clustered onto a single processor by every UNC
// algorithm (zeroing every edge is always a win on a chain).
func TestChainCollapsesToOneProcessor(t *testing.T) {
	b := dag.NewBuilder()
	prev := b.AddNode(2)
	var total int64 = 2
	for i := 0; i < 8; i++ {
		n := b.AddNode(3)
		total += 3
		b.AddEdge(prev, n, 40)
		prev = n
	}
	g := b.MustBuild()
	for _, tc := range allAlgorithms() {
		s, err := tc.run(g)
		if err != nil {
			t.Fatal(err)
		}
		if s.ProcessorsUsed() != 1 {
			t.Errorf("%s used %d processors on a chain, want 1\n%s", tc.name, s.ProcessorsUsed(), s)
		}
		if s.Length() != total {
			t.Errorf("%s chain length %d, want %d", tc.name, s.Length(), total)
		}
	}
}

// TestIndependentTasksStaySeparate: with no communication at all, no
// merge can ever help, so independent tasks must run fully in parallel.
func TestIndependentTasksStaySeparate(t *testing.T) {
	b := dag.NewBuilder()
	for i := 0; i < 6; i++ {
		b.AddNode(4)
	}
	g := b.MustBuild()
	for _, tc := range allAlgorithms() {
		s, err := tc.run(g)
		if err != nil {
			t.Fatal(err)
		}
		if s.Length() != 4 {
			t.Errorf("%s: independent tasks length %d, want 4\n%s", tc.name, s.Length(), s)
		}
	}
}

// forkJoin builds the canonical trade-off graph: a root, k middles, and
// a sink, where communication is expensive relative to computation.
func forkJoin(k int, w, c int64) *dag.Graph {
	b := dag.NewBuilder()
	root := b.AddNode(w)
	sink := b.AddNode(w)
	for i := 0; i < k; i++ {
		m := b.AddNode(w)
		b.AddEdge(root, m, c)
		b.AddEdge(m, sink, c)
	}
	return b.MustBuild()
}

func TestForkJoinHeavyCommSerializes(t *testing.T) {
	// With c >> k*w, the serial schedule (length (k+2)*w) beats any
	// parallel split. Every UNC algorithm except LC should find it or
	// match it. LC cannot: linear clustering only merges path-shaped
	// clusters, so the parallel middles keep their heavy edges — exactly
	// the structural weakness the paper's section 6.1 reports for LC.
	g := forkJoin(3, 2, 100)
	serial := int64(5 * 2)
	for _, tc := range allAlgorithms() {
		s, err := tc.run(g)
		if err != nil {
			t.Fatal(err)
		}
		if tc.name == "LC" {
			if s.Length() != dag.CriticalPathLength(g) {
				t.Errorf("LC: fork-join length %d, want CP length %d",
					s.Length(), dag.CriticalPathLength(g))
			}
			continue
		}
		if s.Length() > serial {
			t.Errorf("%s: fork-join length %d, want <= serial %d\n%s",
				tc.name, s.Length(), serial, s)
		}
	}
}

func TestForkJoinCheapCommParallelizes(t *testing.T) {
	// With c = 0 the parallel schedule has length 3w; no algorithm
	// should serialize the middles.
	g := forkJoin(4, 5, 0)
	for _, tc := range allAlgorithms() {
		s, err := tc.run(g)
		if err != nil {
			t.Fatal(err)
		}
		if s.Length() != 15 {
			t.Errorf("%s: zero-comm fork-join length %d, want 15", tc.name, s.Length())
		}
	}
}

// TestDCPBeatsOrMatchesWeakUNC reflects the paper's central finding: on
// communication-heavy random graphs DCP should, in aggregate, be at
// least as good as EZ and LC.
func TestDCPBeatsOrMatchesWeakUNC(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	var dcpTotal, ezTotal, lcTotal int64
	for i := 0; i < 12; i++ {
		g := randomGraph(rng, 15+rng.Intn(20), 120)
		d, err := DCP(g)
		if err != nil {
			t.Fatal(err)
		}
		e, err := EZ(g)
		if err != nil {
			t.Fatal(err)
		}
		l, err := LC(g)
		if err != nil {
			t.Fatal(err)
		}
		dcpTotal += d.Length()
		ezTotal += e.Length()
		lcTotal += l.Length()
	}
	if dcpTotal > ezTotal {
		t.Errorf("DCP total %d worse than EZ total %d", dcpTotal, ezTotal)
	}
	if dcpTotal > lcTotal {
		t.Errorf("DCP total %d worse than LC total %d", dcpTotal, lcTotal)
	}
}

// TestProcessorEconomyOrdering checks the paper's Figure 3a shape: DSC
// and LC use liberally many processors, DCP and MD comparatively few.
func TestProcessorEconomyOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var dsc, lc, dcp, md int
	for i := 0; i < 10; i++ {
		g := randomGraph(rng, 40, 30)
		sDSC, _ := DSC(g)
		sLC, _ := LC(g)
		sDCP, _ := DCP(g)
		sMD, _ := MD(g)
		dsc += sDSC.ProcessorsUsed()
		lc += sLC.ProcessorsUsed()
		dcp += sDCP.ProcessorsUsed()
		md += sMD.ProcessorsUsed()
	}
	if dcp > dsc {
		t.Errorf("DCP used more processors (%d) than DSC (%d) in aggregate", dcp, dsc)
	}
	if md > lc {
		t.Errorf("MD used more processors (%d) than LC (%d) in aggregate", md, lc)
	}
}

// TestLCClusterCountEqualsPeeledPaths: on a known graph LC's cluster
// structure is predictable: peeling the diamond's CP (a,c,d) leaves b.
func TestLCDiamondClusters(t *testing.T) {
	b := dag.NewBuilder()
	na := b.AddNode(2)
	nb := b.AddNode(3)
	nc := b.AddNode(4)
	nd := b.AddNode(1)
	b.AddEdge(na, nb, 1)
	b.AddEdge(na, nc, 5)
	b.AddEdge(nb, nd, 2)
	b.AddEdge(nc, nd, 3)
	g := b.MustBuild()
	s, err := LC(g)
	if err != nil {
		t.Fatal(err)
	}
	if s.ProcOf(na) != s.ProcOf(nc) || s.ProcOf(nc) != s.ProcOf(nd) {
		t.Errorf("LC did not cluster the critical path a-c-d together:\n%s", s)
	}
	if s.ProcOf(nb) == s.ProcOf(na) {
		t.Errorf("LC placed b in the CP cluster:\n%s", s)
	}
}

// TestDSCReducesJoinStart: DSC must zero the heavier incoming edge of a
// join when that reduces the join node's start time.
func TestDSCReducesJoinStart(t *testing.T) {
	b := dag.NewBuilder()
	x := b.AddNode(4)
	y := b.AddNode(2)
	j := b.AddNode(1)
	b.AddEdge(x, j, 10)
	b.AddEdge(y, j, 1)
	g := b.MustBuild()
	s, err := DSC(g)
	if err != nil {
		t.Fatal(err)
	}
	// Unmerged start would be max(4+10, 2+1) = 14; joining x's cluster
	// gives max(4, 2+1) = 4... j must land with x.
	if s.ProcOf(j) != s.ProcOf(x) {
		t.Errorf("DSC did not merge join into heavy parent's cluster:\n%s", s)
	}
	if s.StartOf(j) != 4 {
		t.Errorf("join starts at %d, want 4", s.StartOf(j))
	}
}

// TestUNCBoundedByWork: a loose but universal sanity bound — no UNC
// schedule can exceed the total computation plus total communication of
// the graph (LC legitimately exceeds the serial computation length on
// communication-heavy graphs because it never merges parallel branches).
func TestUNCBoundedByWork(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for i := 0; i < 6; i++ {
		g := randomGraph(rng, 10+rng.Intn(25), 200)
		bound := g.TotalComputation() + g.TotalCommunication()
		for _, tc := range allAlgorithms() {
			s, err := tc.run(g)
			if err != nil {
				t.Fatal(err)
			}
			if s.Length() > bound {
				t.Errorf("%s: length %d exceeds comp+comm bound %d", tc.name, s.Length(), bound)
			}
		}
	}
}

// TestDCPCompetitiveWithBNP: sanity comparison across classes — with
// unlimited processors DCP should not lose badly to HLFET given the
// same graphs (the paper compares UNC and BNP on equal footing in
// Table 1).
func TestDCPCompetitiveWithBNP(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var dcpTotal, hlfetTotal int64
	for i := 0; i < 10; i++ {
		g := randomGraph(rng, 20, 60)
		d, err := DCP(g)
		if err != nil {
			t.Fatal(err)
		}
		h, err := bnp.HLFET(g, g.NumNodes())
		if err != nil {
			t.Fatal(err)
		}
		dcpTotal += d.Length()
		hlfetTotal += h.Length()
	}
	if float64(dcpTotal) > 1.1*float64(hlfetTotal) {
		t.Errorf("DCP total %d much worse than HLFET total %d", dcpTotal, hlfetTotal)
	}
}
