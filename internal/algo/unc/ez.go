package unc

import (
	"sort"

	"repro/internal/dag"
	"repro/internal/sched"
)

// EZ is Sarkar's Edge Zeroing algorithm (1989).
//
// Edges are examined in descending order of communication cost. For each
// edge, the clusters of its endpoints are tentatively merged ("the edge
// is zeroed"); the merge is kept if the estimated parallel time — the
// length of the schedule obtained by placing each cluster on its own
// processor with nodes in descending b-level order — does not increase.
//
// EZ is non-greedy (it does not minimize individual start times) and not
// critical-path driven; the paper finds it and LC generally behind the
// greedy BNP algorithms (section 6.1), at O(e·(e+v)) cost.
func EZ(g *dag.Graph) (*sched.Schedule, error) {
	if err := checkGraph(g); err != nil {
		return nil, err
	}
	return runEZ(g, nil)
}

// runEZ is EZ with an optional heterogeneous speed prefix: both the
// per-merge parallel-time estimates and the final schedule use it, so
// the zeroing decisions account for processor speeds.
func runEZ(g *dag.Graph, speeds []float64) (*sched.Schedule, error) {
	n := g.NumNodes()
	if n == 0 {
		return acquire(g, 1, speeds), nil
	}

	type edge struct {
		from, to dag.NodeID
		weight   int64
	}
	edges := make([]edge, 0, g.NumEdges())
	for v := 0; v < n; v++ {
		for _, a := range g.Succs(dag.NodeID(v)) {
			edges = append(edges, edge{dag.NodeID(v), a.To, a.Weight})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].weight != edges[j].weight {
			return edges[i].weight > edges[j].weight
		}
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})

	order := blevelOrder(g)
	assign := make([]int, n) // node -> cluster label
	members := make([][]dag.NodeID, n)
	for v := 0; v < n; v++ {
		assign[v] = v
		members[v] = []dag.NodeID{dag.NodeID(v)}
	}
	estimate := func() int64 {
		s := scheduleAssignment(g, order, assign, n, speeds)
		l := s.Length()
		s.Release() // estimates are per-edge; recycle the trial schedule
		return l
	}
	merge := func(dst, src int) {
		for _, m := range members[src] {
			assign[m] = dst
		}
		members[dst] = append(members[dst], members[src]...)
		members[src] = nil
	}

	best := estimate()
	for _, e := range edges {
		cu, cv := assign[e.from], assign[e.to]
		if cu == cv {
			continue // already zeroed transitively
		}
		// Merge the smaller membership list into the larger.
		if len(members[cu]) < len(members[cv]) {
			cu, cv = cv, cu
		}
		moved := len(members[cv])
		merge(cu, cv)
		if l := estimate(); l <= best {
			best = l // keep the merge
			continue
		}
		// Roll back: the moved nodes are the tail of members[cu].
		tail := members[cu][len(members[cu])-moved:]
		for _, m := range tail {
			assign[m] = cv
		}
		members[cv] = append(members[cv], tail...)
		members[cu] = members[cu][:len(members[cu])-moved]
	}
	return scheduleAssignment(g, order, assign, n, speeds), nil
}
