package unc

import (
	"repro/internal/algo"
	"repro/internal/dag"
	"repro/internal/sched"
)

// DSC is the Dominant Sequence Clustering algorithm of Yang and
// Gerasoulis (1994).
//
// Nodes are examined in a topological sweep: a node is free once all its
// parents have been examined, and among free nodes the one with the
// highest t-level + b-level priority — the head of the current dominant
// sequence — is examined next. The node joins the cluster of one of its
// parents when doing so strictly reduces its start time (zeroing the
// edge from that parent); otherwise it starts a new cluster. Because
// examination order is topological, start times are final as soon as a
// node is examined.
//
// This implementation follows DSC-I, without the DSRW (dominant sequence
// reduction warranty) refinement for partially free nodes; the paper's
// qualitative findings — DSC close behind DCP, large processor counts
// because every non-reducing node opens a new cluster (Figure 3a) — are
// driven by the merge rule implemented here.
func DSC(g *dag.Graph) (*sched.Schedule, error) {
	if err := checkGraph(g); err != nil {
		return nil, err
	}
	return runDSC(g, nil)
}

// runDSC is DSC with an optional heterogeneous speed prefix: the
// incremental start times that drive the merge decisions are speed-aware.
func runDSC(g *dag.Graph, speeds []float64) (*sched.Schedule, error) {
	n := g.NumNodes()
	s := acquire(g, max(n, 1), speeds)
	if n == 0 {
		return s, nil
	}
	bl := dag.BLevels(g) // descendants are unexamined, so static b-levels stay exact
	clusterEnd := make([]int64, n)
	clusterUsed := make([]bool, n)
	nextCluster := 0

	free := algo.NewReadySet(g)
	for !free.Empty() {
		// Priority = current t-level (earliest start with all incoming
		// edges still carrying communication) + static b-level.
		node := algo.MaxBy(free.Ready(), func(m dag.NodeID) int64 {
			return currentTLevel(g, s, m) + bl[m]
		})
		free.Pop(node)

		// Starting a fresh cluster keeps every incoming edge unzeroed.
		newEST := currentTLevel(g, s, node)
		// Joining a parent's cluster zeroes the edges from co-located
		// parents but must wait for the cluster to drain.
		bestCluster := -1
		var bestEST int64
		for _, pr := range g.Preds(node) {
			c := s.ProcOf(pr.To)
			if c < 0 {
				panic("unc: DSC free node has unexamined parent")
			}
			est := clusterEnd[c]
			for _, q := range g.Preds(node) {
				arrival := s.FinishOf(q.To)
				if s.ProcOf(q.To) != c {
					arrival += q.Weight
				}
				if arrival > est {
					est = arrival
				}
			}
			if bestCluster == -1 || est < bestEST || (est == bestEST && c < bestCluster) {
				bestCluster, bestEST = c, est
			}
		}
		var proc int
		var start int64
		if bestCluster >= 0 && bestEST < newEST {
			proc, start = bestCluster, bestEST
		} else {
			proc, start = nextCluster, newEST
			nextCluster++
		}
		s.MustPlace(node, proc, start)
		clusterUsed[proc] = true
		clusterEnd[proc] = s.FinishOf(node)
		free.MarkScheduled(g, node)
	}
	return s, nil
}

// currentTLevel is the earliest start of an unexamined free node with all
// incoming communication costs charged (its t-level in the current
// partially zeroed graph).
func currentTLevel(g *dag.Graph, s *sched.Schedule, n dag.NodeID) int64 {
	var t int64
	for _, pr := range g.Preds(n) {
		if c := s.FinishOf(pr.To) + pr.Weight; c > t {
			t = c
		}
	}
	return t
}
