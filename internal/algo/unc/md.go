package unc

import (
	"repro/internal/dag"
	"repro/internal/sched"
)

// MD is the Mobility Directed algorithm of Wu and Gajski (1990).
//
// The relative mobility of an unscheduled node is
//
//	M(n) = (L − (t-level(n) + b-level(n))) / w(n)
//
// computed on the current graph, in which the communication cost of an
// edge is zeroed once both endpoints sit on the same processor and
// scheduled nodes are pinned at their start times. Nodes on the current
// critical path have zero mobility. MD repeatedly schedules the
// minimum-mobility node onto the first processor (in index order) that
// has an idle slot starting within the node's mobility window
// [t-level, ALAP]; if no used processor fits, a new one is opened —
// this scanning of used processors first is why MD needs relatively few
// processors (paper section 6.4.2).
//
// Simplification: the published MD can also displace previously placed
// nodes whose mobility windows allow it; here starts are committed on
// placement and node selection is restricted to nodes whose parents are
// scheduled, which keeps every intermediate schedule concrete. Mobility
// order still follows the dynamic critical path, which is the behaviour
// the paper's comparisons rest on.
func MD(g *dag.Graph) (*sched.Schedule, error) {
	if err := checkGraph(g); err != nil {
		return nil, err
	}
	return runMD(g, nil)
}

// runMD is MD with an optional heterogeneous speed prefix: placement
// queries against the partial schedule are speed-aware.
func runMD(g *dag.Graph, speeds []float64) (*sched.Schedule, error) {
	n := g.NumNodes()
	s := acquire(g, max(n, 1), speeds)
	if n == 0 {
		return s, nil
	}
	topo := g.TopoOrder()
	tl := make([]int64, n)
	bl := make([]int64, n)
	usedProcs := 0

	for s.Placed() < n {
		L := currentLevels(g, s, topo, tl, bl)
		// Minimum relative mobility among ready unscheduled nodes.
		best := dag.None
		for v := 0; v < n; v++ {
			node := dag.NodeID(v)
			if s.IsScheduled(node) || !allParentsScheduled(g, s, node) {
				continue
			}
			if best == dag.None || lessMobility(g, L, tl, bl, node, best) {
				best = node
			}
		}
		if best == dag.None {
			panic("unc: MD found no ready node")
		}
		alap := L - bl[best]
		placed := false
		for p := 0; p < usedProcs; p++ {
			est, ok := s.ESTOn(best, p, true)
			if !ok {
				panic("unc: MD ready node has unscheduled parent")
			}
			if est <= alap {
				s.MustPlace(best, p, est)
				placed = true
				break
			}
		}
		if !placed {
			est, _ := s.ESTOn(best, usedProcs, true)
			s.MustPlace(best, usedProcs, est)
			usedProcs++
		}
	}
	return s, nil
}

// currentLevels fills tl and bl for the current partial schedule and
// returns the current critical-path length L = max(tl+bl). Scheduled
// nodes are pinned at their actual start; edges between co-located
// scheduled nodes carry no cost.
func currentLevels(g *dag.Graph, s *sched.Schedule, topo []dag.NodeID, tl, bl []int64) int64 {
	for _, v := range topo {
		if s.IsScheduled(v) {
			tl[v] = s.StartOf(v)
			continue
		}
		var t int64
		for _, p := range g.Preds(v) {
			c := p.Weight
			// The child is unscheduled, so the edge keeps its cost
			// unless the parent is unscheduled too — estimates stay
			// conservative either way.
			if arr := tl[p.To] + g.Weight(p.To) + c; arr > t {
				t = arr
			}
		}
		tl[v] = t
	}
	var L int64
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		var b int64
		for _, a := range g.Succs(v) {
			c := a.Weight
			if s.IsScheduled(v) && s.IsScheduled(a.To) && s.ProcOf(v) == s.ProcOf(a.To) {
				c = 0
			}
			if arr := c + bl[a.To]; arr > b {
				b = arr
			}
		}
		bl[v] = b + g.Weight(v)
		if c := tl[v] + bl[v]; c > L {
			L = c
		}
	}
	return L
}

func allParentsScheduled(g *dag.Graph, s *sched.Schedule, n dag.NodeID) bool {
	for _, p := range g.Preds(n) {
		if !s.IsScheduled(p.To) {
			return false
		}
	}
	return true
}

// lessMobility reports whether a has strictly smaller relative mobility
// than b (ties toward the smaller node ID), comparing
// (L-path(a))/w(a) < (L-path(b))/w(b) by cross multiplication.
func lessMobility(g *dag.Graph, L int64, tl, bl []int64, a, b dag.NodeID) bool {
	ma := L - (tl[a] + bl[a])
	mb := L - (tl[b] + bl[b])
	wa, wb := g.Weight(a), g.Weight(b)
	if wa == 0 {
		wa = 1
	}
	if wb == 0 {
		wb = 1
	}
	la := ma * wb
	lb := mb * wa
	if la != lb {
		return la < lb
	}
	return a < b
}
