package algo

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dag"
	"repro/internal/gen"
)

// naiveReady is the pre-optimization reference semantics of ReadySet:
// an unordered set of ready nodes with O(n)-scan removal.
type naiveReady struct {
	remaining map[dag.NodeID]int
	ready     map[dag.NodeID]bool
}

func newNaiveReady(g *dag.Graph) *naiveReady {
	r := &naiveReady{remaining: map[dag.NodeID]int{}, ready: map[dag.NodeID]bool{}}
	for v := 0; v < g.NumNodes(); v++ {
		n := dag.NodeID(v)
		r.remaining[n] = g.InDegree(n)
		if g.InDegree(n) == 0 {
			r.ready[n] = true
		}
	}
	return r
}

func (r *naiveReady) markScheduled(g *dag.Graph, n dag.NodeID) {
	for _, a := range g.Succs(n) {
		r.remaining[a.To]--
		if r.remaining[a.To] == 0 {
			r.ready[a.To] = true
		}
	}
}

func sortedIDs(nodes []dag.NodeID) []dag.NodeID {
	out := append([]dag.NodeID(nil), nodes...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestReadySetPopMatchesNaiveSet drives the position-tracked ReadySet
// and a naive map-based reference through the same randomized
// pop/release sequence on every generator family and checks the ready
// memberships stay identical at each step. Combined with the Ready()
// contract (callers select by total order, never by slice index), set
// equality is exactly what schedule byte-identity needs; the bnp
// equivalence suite pins the schedules themselves.
func TestReadySetPopMatchesNaiveSet(t *testing.T) {
	for _, fam := range gen.Generators() {
		params := gen.Params{}
		if fam.Random {
			params["v"] = "60"
			params["ccr"] = "1.0"
		}
		if fam.Name == "psg" {
			params["name"] = "wu-gajski-18"
		}
		g, err := gen.Generate(fam.Name, 3, params)
		if err != nil {
			t.Fatalf("generate %s: %v", fam.Name, err)
		}
		rng := rand.New(rand.NewSource(42))
		rs := NewReadySet(g)
		ref := newNaiveReady(g)
		for step := 0; !rs.Empty(); step++ {
			got := sortedIDs(rs.Ready())
			if len(got) != len(ref.ready) {
				t.Fatalf("%s step %d: ready size %d, reference %d", fam.Name, step, len(got), len(ref.ready))
			}
			for _, n := range got {
				if !ref.ready[n] {
					t.Fatalf("%s step %d: node %d ready but not in reference set", fam.Name, step, n)
				}
			}
			// Pop a pseudo-random ready node by total order, the only
			// access pattern the Ready() contract permits.
			n := got[rng.Intn(len(got))]
			rs.Pop(n)
			delete(ref.ready, n)
			rs.MarkScheduled(g, n)
			ref.markScheduled(g, n)
		}
		if len(ref.ready) != 0 {
			t.Fatalf("%s: optimized set drained but reference still has %d ready", fam.Name, len(ref.ready))
		}
	}
}

// TestReadySetDrainAllocs pins the O(1) swap-remove Pop: a full
// reset/drain cycle on warm backing arrays allocates nothing.
func TestReadySetDrainAllocs(t *testing.T) {
	g, err := gen.Generate("rgnos", 9, gen.Params{"v": "80", "ccr": "1.0"})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	rs := NewReadySet(g)
	run := func() {
		rs.Reset(g)
		for !rs.Empty() {
			n := MinBy(rs.Ready(), func(m dag.NodeID) int64 { return int64(m) })
			rs.Pop(n)
			rs.MarkScheduled(g, n)
		}
	}
	run() // warm capacities
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Errorf("ready-set drain allocates %.1f objects per run, want 0", allocs)
	}
}
