package bnp

import (
	"math/bits"
	"sort"

	"repro/internal/algo"
	"repro/internal/dag"
	"repro/internal/sched"
)

// MCP is the Modified Critical Path algorithm of Wu and Gajski (1990).
//
// Every node receives a list consisting of its own ALAP time followed by
// the ALAP times of all its descendants, sorted ascending. Nodes are
// scheduled in increasing lexicographic order of these lists — a static
// critical-path-driven order, since CP nodes have the smallest ALAP
// times — and each node is placed on the processor that allows its
// earliest start time, considering insertion into idle slots.
//
// The paper finds MCP to be the best BNP algorithm overall and the
// fastest in running time despite its static priorities (section 7).
func MCP(g *dag.Graph, numProcs int) (*sched.Schedule, error) {
	if err := checkArgs(g, numProcs); err != nil {
		return nil, err
	}
	order := mcpOrder(g)
	s := sched.Acquire(g, numProcs)
	mcpPlace(order, s)
	return s, nil
}

// mcpPlace runs MCP's placement loop — insertion-based earliest start
// on the best processor, in the precomputed order — on a preallocated
// schedule. Split out so the steady-state inner loop can be measured
// (and asserted) allocation-free on its own.
func mcpPlace(order []dag.NodeID, s *sched.Schedule) {
	for _, n := range order {
		p, est, ok := s.BestEST(n, true)
		if !ok {
			panic("bnp: MCP order is not topological")
		}
		s.MustPlace(n, p, est)
	}
}

// mcpOrder returns the nodes sorted by ascending lexicographic order of
// their ALAP lists (own ALAP plus every descendant's, ascending).
func mcpOrder(g *dag.Graph) []dag.NodeID {
	n := g.NumNodes()
	lv := dag.ComputeLevels(g)
	lists := make([][]int64, n)
	// Descendant sets via reverse-topological accumulation of bitsets.
	words := (n + 63) / 64
	desc := make([][]uint64, n)
	topo := g.TopoOrder()
	for i := n - 1; i >= 0; i-- {
		v := topo[i]
		row := make([]uint64, words)
		for _, a := range g.Succs(v) {
			row[a.To/64] |= 1 << (uint(a.To) % 64)
			for w, bits := range desc[a.To] {
				row[w] |= bits
			}
		}
		desc[v] = row
	}
	for v := 0; v < n; v++ {
		list := []int64{lv.ALAP[v]}
		for w := 0; w < words; w++ {
			word := desc[v][w]
			for word != 0 {
				d := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				list = append(list, lv.ALAP[d])
			}
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		lists[v] = list
	}
	// Rank nodes by lexicographic list order, then emit them with a
	// priority-driven topological pass. For positive node weights a
	// parent's list always precedes its child's, so the pass reproduces
	// plain lexicographic order; with zero-weight nodes it still yields a
	// valid scheduling order.
	rank := make([]int, n)
	byList := make([]dag.NodeID, n)
	for v := range byList {
		byList[v] = dag.NodeID(v)
	}
	sort.SliceStable(byList, func(i, j int) bool {
		a, b := lists[byList[i]], lists[byList[j]]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return byList[i] < byList[j]
	})
	for i, v := range byList {
		rank[v] = i
	}
	ready := algo.NewReadySet(g)
	order := make([]dag.NodeID, 0, n)
	for !ready.Empty() {
		next := algo.MinBy(ready.Ready(), func(n dag.NodeID) int64 { return int64(rank[n]) })
		ready.Pop(next)
		ready.MarkScheduled(g, next)
		order = append(order, next)
	}
	return order
}
