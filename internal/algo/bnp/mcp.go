package bnp

import (
	"repro/internal/algo"
	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/sched"
)

// MCP is the Modified Critical Path algorithm of Wu and Gajski (1990).
//
// Every node receives a list consisting of its own ALAP time followed by
// the ALAP times of all its descendants, sorted ascending. Nodes are
// scheduled in increasing lexicographic order of these lists — a static
// critical-path-driven order, since CP nodes have the smallest ALAP
// times — and each node is placed on the processor that allows its
// earliest start time, considering insertion into idle slots.
//
// The paper finds MCP to be the best BNP algorithm overall and the
// fastest in running time despite its static priorities (section 7).
func MCP(g *dag.Graph, numProcs int) (*sched.Schedule, error) {
	return runBNP(g, numProcs, nil, runMCP)
}

// runMCP computes the ALAP-list order and runs the placement loop.
func runMCP(g *dag.Graph, s *sched.Schedule) {
	order := algo.ALAPListOrder(g)
	if t := obs.ActiveTracer(); t != nil && t.InRun() {
		// Traced runs take a separate loop that stages each node's ALAP
		// time, so the untraced hot path stays exactly mcpPlace.
		alap := dag.ComputeLevels(g).ALAP
		for _, n := range order {
			p, est, ok := s.BestEST(n, true)
			if !ok {
				panic("bnp: MCP order is not topological")
			}
			t.Priority(int32(n), alap[n])
			s.MustPlace(n, p, est)
		}
		return
	}
	mcpPlace(order, s)
}

// mcpPlace runs MCP's placement loop — insertion-based earliest start
// on the best processor, in the precomputed order — on a preallocated
// schedule. Split out so the steady-state inner loop can be measured
// (and asserted) allocation-free on its own.
func mcpPlace(order []dag.NodeID, s *sched.Schedule) {
	for _, n := range order {
		p, est, ok := s.BestEST(n, true)
		if !ok {
			panic("bnp: MCP order is not topological")
		}
		s.MustPlace(n, p, est)
	}
}
