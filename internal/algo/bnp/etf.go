package bnp

import (
	"repro/internal/algo"
	"repro/internal/dag"
	"repro/internal/sched"
)

// ETF is the Earliest Time First algorithm of Hwang, Chow, Anger and Lee
// (1989).
//
// At each step ETF computes the earliest start time of every ready node
// on every processor and selects the (node, processor) pair with the
// smallest value; ties are broken toward the node with the higher static
// level, then the smaller node ID and lower processor index. Placement
// is non-insertion.
//
// The paper implements ETF as an exhaustive ready×processor pair scan
// with an O(indegree) EST recomputation per pair — O(p·v^2) overall and
// one of the two slowest BNP algorithms in Table 6. This implementation
// produces the identical schedule incrementally: each ready node caches
// its best (processor, EST) pair, and after a placement only the nodes
// whose cached processor just received the task — the only processor
// whose availability changed — plus the newly released nodes are
// re-evaluated, each in O(p) with the O(1) EST query.
func ETF(g *dag.Graph, numProcs int) (*sched.Schedule, error) {
	return runBNP(g, numProcs, nil, runETF)
}

// runETF acquires the pooled state and runs the ETF loop.
func runETF(g *dag.Graph, s *sched.Schedule) {
	sc := acquireScratch(g)
	defer sc.release()
	ready := algo.AcquireReadySet(g)
	defer ready.Release()
	etf(g, s, ready, sc)
}

// etf runs the ETF loop on preallocated state.
//
// Correctness of the incremental re-evaluation: a ready node's data
// arrivals are fixed (all parents scheduled before it became ready), so
// its non-insertion EST on processor p changes only when p's last
// finish time grows — that is, only for the processor that received the
// last placement, and only upward. A cached best on another processor
// therefore stays optimal: its own value is unchanged and the touched
// processor only got worse.
func etf(g *dag.Graph, s *sched.Schedule, ready *algo.ReadySet, sc *scratch) {
	sl := sc.lv.Static
	for _, n := range ready.Ready() {
		evalBest(s, sc, n)
	}
	for !ready.Empty() {
		bestNode := dag.None
		var bestProc int32
		var bestEST int64
		for _, n := range ready.Ready() {
			est := sc.bestEST[n]
			if bestNode == dag.None || est < bestEST ||
				(est == bestEST && betterETFTie(sl, n, int(sc.bestProc[n]), bestNode, int(bestProc))) {
				bestNode, bestProc, bestEST = n, sc.bestProc[n], est
			}
		}
		ready.Pop(bestNode)
		tracePriority(bestNode, bestEST)
		s.MustPlace(bestNode, int(bestProc), bestEST)
		for _, m := range ready.Ready() {
			if sc.bestProc[m] == bestProc {
				evalBest(s, sc, m)
			}
		}
		for _, m := range ready.MarkScheduled(g, bestNode) {
			evalBest(s, sc, m)
		}
	}
}

// betterETFTie reports whether candidate (n,p) wins the tie against the
// incumbent (bn,bp) at equal EST: higher static level, then smaller node
// ID, then lower processor index.
func betterETFTie(sl []int64, n dag.NodeID, p int, bn dag.NodeID, bp int) bool {
	if sl[n] != sl[bn] {
		return sl[n] > sl[bn]
	}
	if n != bn {
		return n < bn
	}
	return p < bp
}
