package bnp

import (
	"repro/internal/algo"
	"repro/internal/dag"
	"repro/internal/sched"
)

// ETF is the Earliest Time First algorithm of Hwang, Chow, Anger and Lee
// (1989).
//
// At each step ETF computes the earliest start time of every ready node
// on every processor and selects the (node, processor) pair with the
// smallest value; ties are broken toward the node with the higher static
// level, then the smaller node ID and lower processor index. Placement
// is non-insertion. The exhaustive pair scan makes ETF one of the two
// slowest BNP algorithms in the paper's Table 6, with complexity
// O(p·v^2).
func ETF(g *dag.Graph, numProcs int) (*sched.Schedule, error) {
	if err := checkArgs(g, numProcs); err != nil {
		return nil, err
	}
	sl := dag.StaticLevels(g)
	s := sched.New(g, numProcs)
	ready := algo.NewReadySet(g)
	for !ready.Empty() {
		bestNode := dag.None
		bestProc := -1
		var bestEST int64
		for _, n := range ready.Ready() {
			for p := 0; p < numProcs; p++ {
				est, ok := s.ESTOn(n, p, false)
				if !ok {
					panic("bnp: ETF ready node has unscheduled parent")
				}
				if bestNode == dag.None || est < bestEST ||
					(est == bestEST && betterETFTie(sl, n, p, bestNode, bestProc)) {
					bestNode, bestProc, bestEST = n, p, est
				}
			}
		}
		ready.Pop(bestNode)
		s.MustPlace(bestNode, bestProc, bestEST)
		ready.MarkScheduled(g, bestNode)
	}
	return s, nil
}

// betterETFTie reports whether candidate (n,p) wins the tie against the
// incumbent (bn,bp) at equal EST: higher static level, then smaller node
// ID, then lower processor index.
func betterETFTie(sl []int64, n dag.NodeID, p int, bn dag.NodeID, bp int) bool {
	if sl[n] != sl[bn] {
		return sl[n] > sl[bn]
	}
	if n != bn {
		return n < bn
	}
	return p < bp
}
