package bnp

import (
	"repro/internal/algo"
	"repro/internal/dag"
	"repro/internal/sched"
)

// ISH is the Insertion Scheduling Heuristic of Kruatrachue and Lewis
// (1987). It extends HLFET by filling the idle "hole" that a placement
// creates on a processor with other ready nodes.
//
// At each step the ready node with the highest static level is placed at
// its earliest start time over all processors (non-insertion). If the
// placement leaves an idle gap between the previous finish time on that
// processor and the node's start, ISH repeatedly picks the
// highest-priority ready node that can complete inside the gap and
// inserts it there. The paper (section 7) singles ISH out as evidence
// that "insertion is better than non-insertion": the hole filling yields
// dramatic improvements over plain HLFET at almost no complexity cost.
func ISH(g *dag.Graph, numProcs int) (*sched.Schedule, error) {
	return runBNP(g, numProcs, nil, runISH)
}

// runISH is the ISH loop on a prepared schedule.
func runISH(g *dag.Graph, s *sched.Schedule) {
	sc := acquireScratch(g)
	defer sc.release()
	sl := sc.lv.Static
	ready := algo.AcquireReadySet(g)
	defer ready.Release()
	for !ready.Empty() {
		n := algo.MaxBy(ready.Ready(), func(n dag.NodeID) int64 { return sl[n] })
		ready.Pop(n)
		p, est, ok := s.BestEST(n, false)
		if !ok {
			panic("bnp: ISH popped node with unscheduled parent")
		}
		tracePriority(n, sl[n])
		var holeStart int64
		if slots := s.Slots(p); len(slots) > 0 {
			holeStart = slots[len(slots)-1].Finish
		}
		s.MustPlace(n, p, est)
		ready.MarkScheduled(g, n)
		if est > holeStart {
			fillHole(g, s, ready, sl, p, est)
		}
	}
}

// fillHole inserts ready nodes into idle time on processor p before the
// hole end, highest static level first, until no ready node fits.
func fillHole(g *dag.Graph, s *sched.Schedule, ready *algo.ReadySet, sl []int64, p int, holeEnd int64) {
	for {
		best := dag.None
		var bestStart int64
		for _, m := range ready.Ready() {
			est, ok := s.ESTOn(m, p, true)
			if !ok {
				continue
			}
			if est+s.ExecTime(m, p) > holeEnd {
				continue // does not complete inside the hole
			}
			if best == dag.None || sl[m] > sl[best] || (sl[m] == sl[best] && m < best) {
				best, bestStart = m, est
			}
		}
		if best == dag.None {
			return
		}
		ready.Pop(best)
		tracePriority(best, sl[best])
		s.MustPlace(best, p, bestStart)
		ready.MarkScheduled(g, best)
	}
}
