package bnp

import (
	"fmt"
	"testing"

	"repro/internal/algo"
	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/sched"
)

// This file pins the optimized kernels to the pre-refactor reference
// implementations. The references reproduce the original algorithms
// verbatim — exhaustive ready×processor pair scans with an O(indegree)
// predecessor scan per EST query — written against the public Schedule
// accessors only, so they share none of the incremental caching under
// test. Every registered generator family, across seeds, CCRs, and
// processor counts, must yield byte-identical schedules.

// refDataReady is the original DataReadyTime: a full predecessor scan.
func refDataReady(s *sched.Schedule, g *dag.Graph, n dag.NodeID, p int) (int64, bool) {
	var drt int64
	for _, pr := range g.Preds(n) {
		if !s.IsScheduled(pr.To) {
			return 0, false
		}
		arrival := s.FinishOf(pr.To)
		if s.ProcOf(pr.To) != p {
			arrival += pr.Weight
		}
		if arrival > drt {
			drt = arrival
		}
	}
	return drt, true
}

// refESTOn is the original ESTOn: scan data-ready time, then the
// original EarliestFit gap scan over the processor's slots.
func refESTOn(s *sched.Schedule, g *dag.Graph, n dag.NodeID, p int, insertion bool) (int64, bool) {
	drt, ok := refDataReady(s, g, n, p)
	if !ok {
		return 0, false
	}
	slots := s.Slots(p)
	if len(slots) == 0 {
		return drt, true
	}
	if !insertion {
		if last := slots[len(slots)-1].Finish; last > drt {
			return last, true
		}
		return drt, true
	}
	duration := g.Weight(n)
	prevFinish := int64(0)
	for i := 0; i < len(slots); i++ {
		gapStart := prevFinish
		if gapStart < drt {
			gapStart = drt
		}
		if slots[i].Start-gapStart >= duration {
			return gapStart, true
		}
		prevFinish = slots[i].Finish
	}
	if prevFinish < drt {
		return drt, true
	}
	return prevFinish, true
}

// refBestEST is the original BestEST loop.
func refBestEST(s *sched.Schedule, g *dag.Graph, n dag.NodeID, insertion bool) (int, int64, bool) {
	proc := -1
	var est int64
	for p := 0; p < s.NumProcs(); p++ {
		e, ok := refESTOn(s, g, n, p, insertion)
		if !ok {
			return -1, 0, false
		}
		if proc == -1 || e < est {
			proc, est = p, e
		}
	}
	return proc, est, true
}

// refETF is the original ETF: the full ready×processor pair scan per
// step.
func refETF(g *dag.Graph, numProcs int) *sched.Schedule {
	sl := dag.StaticLevels(g)
	s := sched.New(g, numProcs)
	ready := algo.NewReadySet(g)
	for !ready.Empty() {
		bestNode := dag.None
		bestProc := -1
		var bestEST int64
		for _, n := range ready.Ready() {
			for p := 0; p < numProcs; p++ {
				est, ok := refESTOn(s, g, n, p, false)
				if !ok {
					panic("refETF: ready node has unscheduled parent")
				}
				if bestNode == dag.None || est < bestEST ||
					(est == bestEST && betterETFTie(sl, n, p, bestNode, bestProc)) {
					bestNode, bestProc, bestEST = n, p, est
				}
			}
		}
		ready.Pop(bestNode)
		s.MustPlace(bestNode, bestProc, bestEST)
		ready.MarkScheduled(g, bestNode)
	}
	return s
}

// refDLS is the original DLS pair scan.
func refDLS(g *dag.Graph, numProcs int) *sched.Schedule {
	sl := dag.StaticLevels(g)
	s := sched.New(g, numProcs)
	ready := algo.NewReadySet(g)
	for !ready.Empty() {
		bestNode := dag.None
		bestProc := -1
		var bestDL, bestEST int64
		for _, n := range ready.Ready() {
			for p := 0; p < numProcs; p++ {
				est, ok := refESTOn(s, g, n, p, false)
				if !ok {
					panic("refDLS: ready node has unscheduled parent")
				}
				dl := sl[n] - est
				if bestNode == dag.None || dl > bestDL ||
					(dl == bestDL && (n < bestNode || (n == bestNode && p < bestProc))) {
					bestNode, bestProc, bestDL, bestEST = n, p, dl, est
				}
			}
		}
		ready.Pop(bestNode)
		s.MustPlace(bestNode, bestProc, bestEST)
		ready.MarkScheduled(g, bestNode)
	}
	return s
}

// refHLFET is the original HLFET list scheduler (non-insertion BestEST).
func refHLFET(g *dag.Graph, numProcs int) *sched.Schedule {
	sl := dag.StaticLevels(g)
	s := sched.New(g, numProcs)
	ready := algo.NewReadySet(g)
	for !ready.Empty() {
		n := algo.MaxBy(ready.Ready(), func(n dag.NodeID) int64 { return sl[n] })
		ready.Pop(n)
		p, est, ok := refBestEST(s, g, n, false)
		if !ok {
			panic("refHLFET: popped node with unscheduled parent")
		}
		s.MustPlace(n, p, est)
		ready.MarkScheduled(g, n)
	}
	return s
}

// refMCP is the original MCP placement loop (insertion BestEST) over
// the unchanged ALAP-list order.
func refMCP(g *dag.Graph, numProcs int) *sched.Schedule {
	s := sched.New(g, numProcs)
	for _, n := range algo.ALAPListOrder(g) {
		p, est, ok := refBestEST(s, g, n, true)
		if !ok {
			panic("refMCP: order is not topological")
		}
		s.MustPlace(n, p, est)
	}
	return s
}

// equivalenceGraphs generates one instance per registered generator
// family for the given seed and CCR, sized to keep the quadratic
// references fast.
func equivalenceGraphs(t *testing.T, seed int64, ccr float64) map[string]*dag.Graph {
	t.Helper()
	out := map[string]*dag.Graph{}
	for _, fam := range gen.Generators() {
		params := gen.Params{}
		if fam.Random {
			params["v"] = "50"
			params["ccr"] = fmt.Sprint(ccr)
		}
		if fam.Name == "psg" {
			// The psg meta-generator requires a graph name; its members
			// are also registered individually and covered that way.
			params["name"] = "wu-gajski-18"
		}
		g, err := gen.Generate(fam.Name, seed, params)
		if err != nil {
			t.Fatalf("generate %s: %v", fam.Name, err)
		}
		out[fam.Name] = g
	}
	return out
}

// TestOptimizedKernelsMatchReference compares the optimized schedulers
// against the pre-refactor references over every registered generator
// family × seeds × CCRs × processor counts, requiring byte-identical
// schedules.
func TestOptimizedKernelsMatchReference(t *testing.T) {
	refs := map[string]func(*dag.Graph, int) *sched.Schedule{
		"ETF":   refETF,
		"DLS":   refDLS,
		"HLFET": refHLFET,
		"MCP":   refMCP,
	}
	for _, seed := range []int64{1, 2, 3} {
		for _, ccr := range []float64{0.5, 2.0} {
			graphs := equivalenceGraphs(t, seed, ccr)
			for famName, g := range graphs {
				for _, procs := range []int{2, 8} {
					for algName, ref := range refs {
						want := ref(g, procs).String()
						s, err := Algorithms()[algName](g, procs)
						if err != nil {
							t.Fatalf("%s on %s: %v", algName, famName, err)
						}
						if got := s.String(); got != want {
							t.Errorf("%s diverges from reference on %s (seed=%d ccr=%g procs=%d):\noptimized:\n%s\nreference:\n%s",
								algName, famName, seed, ccr, procs, got, want)
						}
					}
				}
			}
		}
	}
}

// TestInsertionKernelsMatchReferenceQueries cross-checks the insertion
// EST path (used by ISH hole filling and MCP) query by query on
// partial optimized schedules: every ESTOn answer must match the
// reference scan.
func TestInsertionKernelsMatchReferenceQueries(t *testing.T) {
	graphs := equivalenceGraphs(t, 5, 1.0)
	for famName, g := range graphs {
		s := sched.New(g, 4)
		for _, n := range g.TopoOrder() {
			for p := 0; p < s.NumProcs(); p++ {
				for _, insertion := range []bool{false, true} {
					want, wantOK := refESTOn(s, g, n, p, insertion)
					got, gotOK := s.ESTOn(n, p, insertion)
					if got != want || gotOK != wantOK {
						t.Fatalf("%s: ESTOn(n%d, P%d, insertion=%v) = (%d,%v), reference (%d,%v)",
							famName, n, p, insertion, got, gotOK, want, wantOK)
					}
				}
			}
			p, est, ok := s.BestEST(n, true)
			if !ok {
				t.Fatalf("%s: BestEST failed in topo order", famName)
			}
			s.MustPlace(n, p, est)
		}
	}
}
