package bnp

import (
	"math/rand"
	"testing"

	"repro/internal/algo"
	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/sched"
)

// Allocation-count assertions for the steady-state scheduling inner
// loops. The loops are measured on preallocated scratch — exactly the
// state a warm pool hands out — so the assertion is deterministic:
// zero allocations, not "few".

func allocTestGraph(tb testing.TB) *dag.Graph {
	tb.Helper()
	g, err := gen.Generate("rgnos", 9, gen.Params{"v": "80", "ccr": "1.0"})
	if err != nil {
		tb.Fatalf("generate: %v", err)
	}
	return g
}

func TestETFInnerLoopAllocs(t *testing.T) {
	g := allocTestGraph(t)
	const procs = 8
	s := sched.New(g, procs)
	ready := algo.NewReadySet(g)
	sc := &scratch{}
	run := func() {
		s.Reset(g, procs)
		ready.Reset(g)
		sc.grow(g)
		etf(g, s, ready, sc)
	}
	run() // warm capacities
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Errorf("steady-state ETF allocates %.1f objects per run, want 0", allocs)
	}
}

func TestDLSInnerLoopAllocs(t *testing.T) {
	g := allocTestGraph(t)
	const procs = 8
	s := sched.New(g, procs)
	ready := algo.NewReadySet(g)
	sc := &scratch{}
	run := func() {
		s.Reset(g, procs)
		ready.Reset(g)
		sc.grow(g)
		dls(g, s, ready, sc)
	}
	run()
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Errorf("steady-state DLS allocates %.1f objects per run, want 0", allocs)
	}
}

func TestMCPInnerLoopAllocs(t *testing.T) {
	g := allocTestGraph(t)
	const procs = 8
	order := algo.ALAPListOrder(g) // priority computation is per-graph, not per-run
	s := sched.New(g, procs)
	run := func() {
		s.Reset(g, procs)
		mcpPlace(order, s)
	}
	run()
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Errorf("steady-state MCP placement allocates %.1f objects per run, want 0", allocs)
	}
}

// TestPooledSchedulersStayCorrect runs the pooled public entry points
// repeatedly with interleaved releases and checks the output never
// drifts — the pool must hand back fully reset state.
func TestPooledSchedulersStayCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	graphs := []*dag.Graph{allocTestGraph(t)}
	g2, err := gen.Generate("rgnos", 11, gen.Params{"v": "40", "ccr": "2.0"})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	graphs = append(graphs, g2)
	algs := Algorithms()
	want := map[string]string{}
	for name, alg := range algs {
		for gi, g := range graphs {
			s, err := alg(g, 8)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			want[name+string(rune('0'+gi))] = s.String()
			s.Release()
		}
	}
	for round := 0; round < 10; round++ {
		name := []string{"HLFET", "ISH", "ETF", "LAST", "MCP", "DLS"}[rng.Intn(6)]
		gi := rng.Intn(len(graphs))
		s, err := algs[name](graphs[gi], 8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := s.String(); got != want[name+string(rune('0'+gi))] {
			t.Fatalf("round %d: %s on graph %d drifted:\n%s\nwant:\n%s",
				round, name, gi, got, want[name+string(rune('0'+gi))])
		}
		s.Release()
	}
}

// BenchmarkETFSteadyState measures the pooled end-to-end ETF call — the
// per-cell cost a warm experiment worker pays.
func BenchmarkETFSteadyState(b *testing.B) {
	g := allocTestGraph(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := ETF(g, 8)
		if err != nil {
			b.Fatal(err)
		}
		s.Release()
	}
}
