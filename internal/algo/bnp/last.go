package bnp

import (
	"repro/internal/algo"
	"repro/internal/dag"
	"repro/internal/sched"
)

// LAST is the Localized Allocation of Static Tasks algorithm of Baxter
// and Patel (1989). Unlike the other BNP algorithms it is not level
// driven: its goal is to minimize communication by preferring nodes that
// are strongly connected to the already-scheduled part of the graph.
//
// Each ready node carries the D_NODE attribute
//
//	D_NODE(n) = Σ edge costs to scheduled neighbors / Σ all edge costs
//
// over both incoming and outgoing edges. The ready node with the highest
// D_NODE is scheduled next, on the processor giving its earliest start
// time (non-insertion). Ties break toward the higher static level, then
// the smaller ID. The paper finds LAST the worst-performing BNP
// algorithm (section 6.2) — localizing communication alone does not
// shorten the critical path.
func LAST(g *dag.Graph, numProcs int) (*sched.Schedule, error) {
	return runBNP(g, numProcs, nil, runLAST)
}

// runLAST is the LAST loop on a prepared schedule.
func runLAST(g *dag.Graph, s *sched.Schedule) {
	sc := acquireScratch(g)
	defer sc.release()
	sl := sc.lv.Static
	ready := algo.AcquireReadySet(g)
	defer ready.Release()
	for !ready.Empty() {
		best := dag.None
		var bestD float64
		for _, n := range ready.Ready() {
			d := dNode(g, s, n)
			if best == dag.None || d > bestD ||
				(d == bestD && (sl[n] > sl[best] || (sl[n] == sl[best] && n < best))) {
				best, bestD = n, d
			}
		}
		ready.Pop(best)
		p, est, ok := s.BestEST(best, false)
		if !ok {
			panic("bnp: LAST popped node with unscheduled parent")
		}
		// D_NODE is a fraction in [0,1]; stage it in micro-units.
		tracePriority(best, int64(bestD*1e6))
		s.MustPlace(best, p, est)
		ready.MarkScheduled(g, best)
	}
}

// dNode computes the D_NODE attribute: the fraction of n's total
// adjacent edge weight that connects to already-scheduled nodes. Nodes
// whose adjacent edges all have zero cost get 1 if any neighbor is
// scheduled and 0 otherwise, so edge count substitutes for edge weight.
func dNode(g *dag.Graph, s *sched.Schedule, n dag.NodeID) float64 {
	var total, scheduled int64
	var totalCnt, schedCnt int
	for _, a := range g.Preds(n) {
		total += a.Weight
		totalCnt++
		if s.IsScheduled(a.To) {
			scheduled += a.Weight
			schedCnt++
		}
	}
	for _, a := range g.Succs(n) {
		total += a.Weight
		totalCnt++
		if s.IsScheduled(a.To) {
			scheduled += a.Weight
			schedCnt++
		}
	}
	if totalCnt == 0 {
		return 0 // isolated node
	}
	if total == 0 {
		return float64(schedCnt) / float64(totalCnt)
	}
	return float64(scheduled) / float64(total)
}
