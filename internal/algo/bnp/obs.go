package bnp

import (
	"repro/internal/dag"
	"repro/internal/obs"
)

// tracePriority stages node n's selection priority on the active
// tracer, for attachment to the placement record the imminent Place
// will emit. The disabled path is one atomic load and a nil check, and
// it runs once per placement, not per candidate pair. Each kernel
// stages its own selection metric — static level for HLFET/ISH, the
// winning EST for ETF, the dynamic level for DLS, the ALAP time for
// MCP, and D_NODE in micro-units for LAST — documented per algorithm in
// docs/observability.md.
func tracePriority(n dag.NodeID, prio int64) {
	if t := obs.ActiveTracer(); t != nil && t.InRun() {
		t.Priority(int32(n), prio)
	}
}
