package bnp

import (
	"repro/internal/algo"
	"repro/internal/dag"
	"repro/internal/sched"
)

// DLS is the Dynamic Level Scheduling algorithm of Sih and Lee (1993),
// in its BNP form (the APN form, which also schedules messages, lives in
// internal/algo/apn).
//
// The dynamic level of a ready node n on processor p is
//
//	DL(n, p) = SL(n) − EST(n, p)
//
// where SL is the static level. At each step the (node, processor) pair
// with the largest dynamic level is selected; placement is
// non-insertion.
//
// The paper implements DLS, like ETF, as an exhaustive pair scan — the
// two slowest BNP algorithms of Table 6 at O(p·v^2). This
// implementation produces the identical schedule incrementally: for a
// fixed ready node the dynamic level is maximized exactly where the EST
// is minimized, so each ready node caches its best (processor, EST)
// pair and only the nodes whose cached processor just received a task,
// plus the newly released nodes, are re-evaluated per step (see etf for
// the argument).
func DLS(g *dag.Graph, numProcs int) (*sched.Schedule, error) {
	return runBNP(g, numProcs, nil, runDLS)
}

// runDLS acquires the pooled state and runs the DLS loop.
func runDLS(g *dag.Graph, s *sched.Schedule) {
	sc := acquireScratch(g)
	defer sc.release()
	ready := algo.AcquireReadySet(g)
	defer ready.Release()
	dls(g, s, ready, sc)
}

// dls runs the DLS loop on preallocated state.
func dls(g *dag.Graph, s *sched.Schedule, ready *algo.ReadySet, sc *scratch) {
	sl := sc.lv.Static
	for _, n := range ready.Ready() {
		evalBest(s, sc, n)
	}
	for !ready.Empty() {
		bestNode := dag.None
		var bestProc int32
		var bestDL, bestEST int64
		for _, n := range ready.Ready() {
			dl := sl[n] - sc.bestEST[n]
			if bestNode == dag.None || dl > bestDL || (dl == bestDL && n < bestNode) {
				bestNode, bestProc, bestDL, bestEST = n, sc.bestProc[n], dl, sc.bestEST[n]
			}
		}
		ready.Pop(bestNode)
		tracePriority(bestNode, bestDL)
		s.MustPlace(bestNode, int(bestProc), bestEST)
		for _, m := range ready.Ready() {
			if sc.bestProc[m] == bestProc {
				evalBest(s, sc, m)
			}
		}
		for _, m := range ready.MarkScheduled(g, bestNode) {
			evalBest(s, sc, m)
		}
	}
}
