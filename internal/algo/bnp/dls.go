package bnp

import (
	"repro/internal/algo"
	"repro/internal/dag"
	"repro/internal/sched"
)

// DLS is the Dynamic Level Scheduling algorithm of Sih and Lee (1993),
// in its BNP form (the APN form, which also schedules messages, lives in
// internal/algo/apn).
//
// The dynamic level of a ready node n on processor p is
//
//	DL(n, p) = SL(n) − EST(n, p)
//
// where SL is the static level. At each step the (node, processor) pair
// with the largest dynamic level is selected; placement is
// non-insertion. Like ETF this scans all ready-node/processor pairs, and
// the paper ranks the two slowest among the BNP class (Table 6).
func DLS(g *dag.Graph, numProcs int) (*sched.Schedule, error) {
	if err := checkArgs(g, numProcs); err != nil {
		return nil, err
	}
	sl := dag.StaticLevels(g)
	s := sched.New(g, numProcs)
	ready := algo.NewReadySet(g)
	for !ready.Empty() {
		bestNode := dag.None
		bestProc := -1
		var bestDL, bestEST int64
		for _, n := range ready.Ready() {
			for p := 0; p < numProcs; p++ {
				est, ok := s.ESTOn(n, p, false)
				if !ok {
					panic("bnp: DLS ready node has unscheduled parent")
				}
				dl := sl[n] - est
				if bestNode == dag.None || dl > bestDL ||
					(dl == bestDL && (n < bestNode || (n == bestNode && p < bestProc))) {
					bestNode, bestProc, bestDL, bestEST = n, p, dl, est
				}
			}
		}
		ready.Pop(bestNode)
		s.MustPlace(bestNode, bestProc, bestEST)
		ready.MarkScheduled(g, bestNode)
	}
	return s, nil
}
