package bnp

import (
	"repro/internal/algo"
	"repro/internal/dag"
	"repro/internal/sched"
)

// HLFET is the Highest Level First with Estimated Times algorithm of
// Adam, Chandy and Dickson (1974), one of the earliest list schedulers.
//
// Priorities are static levels (b-levels with communication ignored).
// At each step the ready node with the highest static level is scheduled
// onto the processor that allows its earliest start time, without
// insertion. Complexity O(v^2) for the list plus O(v·p) placements.
func HLFET(g *dag.Graph, numProcs int) (*sched.Schedule, error) {
	return runBNP(g, numProcs, nil, runHLFET)
}

// runHLFET is the HLFET loop on a prepared schedule.
func runHLFET(g *dag.Graph, s *sched.Schedule) {
	sc := acquireScratch(g)
	defer sc.release()
	sl := sc.lv.Static
	ready := algo.AcquireReadySet(g)
	defer ready.Release()
	for !ready.Empty() {
		n := algo.MaxBy(ready.Ready(), func(n dag.NodeID) int64 { return sl[n] })
		ready.Pop(n)
		p, est, ok := s.BestEST(n, false)
		if !ok {
			panic("bnp: HLFET popped node with unscheduled parent")
		}
		s.MustPlace(n, p, est)
		ready.MarkScheduled(g, n)
	}
}
