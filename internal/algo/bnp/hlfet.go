package bnp

import (
	"repro/internal/algo"
	"repro/internal/dag"
	"repro/internal/sched"
)

// HLFET is the Highest Level First with Estimated Times algorithm of
// Adam, Chandy and Dickson (1974), one of the earliest list schedulers.
//
// Priorities are static levels (b-levels with communication ignored).
// At each step the ready node with the highest static level is scheduled
// onto the processor that allows its earliest start time, without
// insertion. The static priorities let a ReadyHeap drive the list in
// O((v+e)·log v) + O(v·p) placements, so HLFET stays near-linear even
// on million-node graphs.
func HLFET(g *dag.Graph, numProcs int) (*sched.Schedule, error) {
	return runBNP(g, numProcs, nil, runHLFET)
}

// runHLFET is the HLFET loop on a prepared schedule.
func runHLFET(g *dag.Graph, s *sched.Schedule) {
	sc := acquireScratch(g)
	defer sc.release()
	ready := algo.AcquireReadyHeap(g, sc.lv.Static)
	defer ready.Release()
	for !ready.Empty() {
		n := ready.PopMax()
		p, est, ok := s.BestEST(n, false)
		if !ok {
			panic("bnp: HLFET popped node with unscheduled parent")
		}
		tracePriority(n, sc.lv.Static[n])
		s.MustPlace(n, p, est)
		ready.MarkScheduled(g, n)
	}
}
