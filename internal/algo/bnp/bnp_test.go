package bnp

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/algo"
	"repro/internal/dag"
	"repro/internal/sched"
)

// allAlgorithms in deterministic name order for table-driven tests.
func allAlgorithms() []struct {
	name string
	run  Scheduler
} {
	m := Algorithms()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]struct {
		name string
		run  Scheduler
	}, 0, len(m))
	for _, n := range names {
		out = append(out, struct {
			name string
			run  Scheduler
		}{n, m[n]})
	}
	return out
}

func randomGraph(rng *rand.Rand, n int, commScale int64) *dag.Graph {
	b := dag.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(1 + rng.Int63n(30))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(4) == 0 {
				b.AddEdge(dag.NodeID(i), dag.NodeID(j), rng.Int63n(commScale))
			}
		}
	}
	return b.MustBuild()
}

func TestAlgorithmsRegistry(t *testing.T) {
	m := Algorithms()
	if len(m) != 6 {
		t.Fatalf("registry has %d algorithms, want 6", len(m))
	}
	for _, want := range []string{"HLFET", "ISH", "MCP", "ETF", "DLS", "LAST"} {
		if m[want] == nil {
			t.Errorf("registry missing %s", want)
		}
	}
}

func TestAllProduceValidCompleteSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	graphs := make([]*dag.Graph, 0, 12)
	for i := 0; i < 12; i++ {
		graphs = append(graphs, randomGraph(rng, 2+rng.Intn(40), 1+rng.Int63n(60)))
	}
	for _, tc := range allAlgorithms() {
		t.Run(tc.name, func(t *testing.T) {
			for gi, g := range graphs {
				for _, p := range []int{1, 2, 4, 9} {
					s, err := tc.run(g, p)
					if err != nil {
						t.Fatalf("graph %d procs %d: %v", gi, p, err)
					}
					if !s.Complete() {
						t.Fatalf("graph %d procs %d: incomplete schedule", gi, p)
					}
					if err := s.Validate(); err != nil {
						t.Fatalf("graph %d procs %d: %v", gi, p, err)
					}
					if used := s.ProcessorsUsed(); used > p {
						t.Fatalf("graph %d: used %d of %d processors", gi, used, p)
					}
					if s.NSL() < 1.0-1e-9 {
						t.Fatalf("graph %d procs %d: NSL %v < 1", gi, p, s.NSL())
					}
				}
			}
		})
	}
}

func TestAllDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	g := randomGraph(rng, 30, 40)
	for _, tc := range allAlgorithms() {
		s1, err := tc.run(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := tc.run(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		if s1.Length() != s2.Length() {
			t.Errorf("%s: lengths differ between runs: %d vs %d", tc.name, s1.Length(), s2.Length())
		}
		for v := 0; v < g.NumNodes(); v++ {
			n := dag.NodeID(v)
			if s1.ProcOf(n) != s2.ProcOf(n) || s1.StartOf(n) != s2.StartOf(n) {
				t.Fatalf("%s: node %d placed differently between runs", tc.name, v)
			}
		}
	}
}

func TestSingleProcessorIsSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := randomGraph(rng, 20, 50)
	for _, tc := range allAlgorithms() {
		s, err := tc.run(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		if s.Length() != g.TotalComputation() {
			t.Errorf("%s: 1-proc length %d, want serial %d (no idle should be needed)",
				tc.name, s.Length(), g.TotalComputation())
		}
	}
}

func TestSingleNodeGraph(t *testing.T) {
	b := dag.NewBuilder()
	b.AddNode(7)
	g := b.MustBuild()
	for _, tc := range allAlgorithms() {
		s, err := tc.run(g, 3)
		if err != nil {
			t.Fatal(err)
		}
		if s.Length() != 7 {
			t.Errorf("%s: length = %d, want 7", tc.name, s.Length())
		}
	}
}

func TestIndependentTasksSpread(t *testing.T) {
	// Four equal independent tasks on four processors must run in
	// parallel under every greedy EST-based algorithm.
	b := dag.NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddNode(5)
	}
	g := b.MustBuild()
	for _, tc := range allAlgorithms() {
		s, err := tc.run(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		if s.Length() != 5 {
			t.Errorf("%s: length = %d, want 5 (perfect spread)", tc.name, s.Length())
		}
		if s.ProcessorsUsed() != 4 {
			t.Errorf("%s: used %d processors, want 4", tc.name, s.ProcessorsUsed())
		}
	}
}

func TestErrorCases(t *testing.T) {
	g := dag.NewBuilder().MustBuild()
	for _, tc := range allAlgorithms() {
		if _, err := tc.run(nil, 2); err == nil {
			t.Errorf("%s accepted nil graph", tc.name)
		}
		if _, err := tc.run(g, 0); err == nil {
			t.Errorf("%s accepted zero processors", tc.name)
		}
		s, err := tc.run(g, 2)
		if err != nil || s.Length() != 0 {
			t.Errorf("%s failed on empty graph: %v", tc.name, err)
		}
	}
}

// ishHoleGraph is crafted so that plain HLFET leaves an idle hole on P0
// that ISH fills with node M:
//
//	A(2)=n0 entry, Z(1)=n1 entry,
//	C(4)=n2 with parents A (c=9) and Z (c=5),
//	M(3)=n3 child of A (c=4).
func ishHoleGraph(t *testing.T) (*dag.Graph, [4]dag.NodeID) {
	t.Helper()
	b := dag.NewBuilder()
	a := b.AddLabeledNode(2, "A")
	z := b.AddLabeledNode(1, "Z")
	c := b.AddLabeledNode(4, "C")
	m := b.AddLabeledNode(3, "M")
	b.AddEdge(a, c, 9)
	b.AddEdge(z, c, 5)
	b.AddEdge(a, m, 4)
	return b.MustBuild(), [4]dag.NodeID{a, z, c, m}
}

func TestISHFillsHole(t *testing.T) {
	g, ids := ishHoleGraph(t)
	s, err := ISH(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// A on P0 [0,2), Z on P1 [0,1), C on P0 [6,10) leaving hole [2,6);
	// ISH inserts M into the hole at [2,5).
	if s.ProcOf(ids[3]) != 0 || s.StartOf(ids[3]) != 2 {
		t.Errorf("M placed on P%d at %d, want P0 at 2 (hole filling)\n%s",
			s.ProcOf(ids[3]), s.StartOf(ids[3]), s)
	}
	if s.Length() != 10 {
		t.Errorf("ISH length = %d, want 10", s.Length())
	}

	h, err := HLFET(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	// HLFET cannot insert: M lands after C or on P1, never inside the hole.
	if h.ProcOf(ids[3]) == 0 && h.StartOf(ids[3]) < 6 {
		t.Errorf("HLFET unexpectedly filled the hole:\n%s", h)
	}
}

func TestMCPOrderDiamond(t *testing.T) {
	// Diamond a(2)->{b(3,c=1), c(4,c=5)}->d(1): ALAPs a=0, b=9, c=7, d=14.
	// MCP order must be a, c, b, d (ascending ALAP lists).
	b := dag.NewBuilder()
	na := b.AddNode(2)
	nb := b.AddNode(3)
	nc := b.AddNode(4)
	nd := b.AddNode(1)
	b.AddEdge(na, nb, 1)
	b.AddEdge(na, nc, 5)
	b.AddEdge(nb, nd, 2)
	b.AddEdge(nc, nd, 3)
	g := b.MustBuild()
	order := algo.ALAPListOrder(g)
	want := []dag.NodeID{na, nc, nb, nd}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ALAPListOrder = %v, want %v", order, want)
		}
	}
}

func TestMCPListTieBrokenByDescendants(t *testing.T) {
	// Two entry nodes with equal ALAP but different descendant lists:
	// the lexicographically smaller list must come first.
	//
	//	x(5) -> u(1); y(5) -> v(1) with edge costs making u tighter.
	b := dag.NewBuilder()
	x := b.AddNode(5)
	y := b.AddNode(5)
	u := b.AddNode(3)
	v := b.AddNode(3)
	b.AddEdge(x, u, 4) // path length 12
	b.AddEdge(y, v, 2) // path length 10
	g := b.MustBuild()
	// CP = 12 via x-u. ALAP: x = 0, u = 9, y = 2, v = 9.
	// Lists: x = [0,9], y = [2,9]; x first. Then u (9 at head after
	// parents) vs v [9]... order positions of x and y are what we check.
	order := algo.ALAPListOrder(g)
	posX, posY := -1, -1
	for i, n := range order {
		if n == x {
			posX = i
		}
		if n == y {
			posY = i
		}
	}
	if posX > posY {
		t.Errorf("MCP scheduled y before x: order %v", order)
	}
	_ = u
	_ = v
}

func TestETFPicksGlobalEarliestPair(t *testing.T) {
	// Entry e(4); children f(1, c=10) and g2(1, c=1).
	// After e on P0: f EST on P0 = 4, on P1 = 14; g2 on P0 = 4 (after... )
	b := dag.NewBuilder()
	e := b.AddNode(4)
	f := b.AddNode(1)
	g2 := b.AddNode(1)
	b.AddEdge(e, f, 10)
	b.AddEdge(e, g2, 1)
	g := b.MustBuild()
	s, err := ETF(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Both children have EST 4 on P0; the first scheduled there, the
	// second must compare P0 (after first child) vs P1 (comm).
	if s.Length() != 6 {
		t.Errorf("ETF length = %d, want 6\n%s", s.Length(), s)
	}
}

func TestDLSPrefersHighLevelUnderEqualEST(t *testing.T) {
	// Two ready entries with equal EST 0 on both processors: the one
	// with the higher static level must be picked first.
	b := dag.NewBuilder()
	lo := b.AddNode(1)  // SL 1
	hi := b.AddNode(10) // SL 10
	g := b.MustBuild()
	s, err := DLS(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.StartOf(hi) != 0 {
		t.Errorf("DLS scheduled low-level node first:\n%s", s)
	}
	if s.StartOf(lo) != 10 {
		t.Errorf("lo starts at %d, want 10", s.StartOf(lo))
	}
}

func TestLASTPrefersConnectedNode(t *testing.T) {
	// After the entry is scheduled, LAST must pick the child with the
	// heaviest connection to it, even if another ready node has a much
	// higher level.
	b := dag.NewBuilder()
	e := b.AddNode(2)
	heavy := b.AddNode(1) // child of e with cost 50 edge
	b.AddNode(9)          // independent entry: D_NODE 0 until neighbors scheduled
	b.AddEdge(e, heavy, 50)
	g := b.MustBuild()
	s, err := LAST(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// e first (D_NODE 0 for both entries, e has SL 3 vs other's 9...).
	// other actually wins the first pick by static level; after that e
	// is the remaining entry, then heavy (D_NODE 1) must precede nothing
	// else. The invariant we check: heavy lands on e's processor.
	if s.ProcOf(heavy) != s.ProcOf(e) {
		t.Errorf("LAST separated strongly-connected pair:\n%s", s)
	}
}

func TestDNodeComputation(t *testing.T) {
	b := dag.NewBuilder()
	x := b.AddNode(1)
	y := b.AddNode(1)
	z := b.AddNode(1)
	b.AddEdge(x, z, 30)
	b.AddEdge(y, z, 10)
	g := b.MustBuild()
	s := sched.New(g, 2)
	if d := dNode(g, s, z); d != 0 {
		t.Errorf("D_NODE with nothing scheduled = %v, want 0", d)
	}
	s.MustPlace(x, 0, 0)
	if d := dNode(g, s, z); d != 0.75 {
		t.Errorf("D_NODE = %v, want 0.75 (30 of 40)", d)
	}
	s.MustPlace(y, 1, 0)
	if d := dNode(g, s, z); d != 1 {
		t.Errorf("D_NODE = %v, want 1", d)
	}
	// x's only neighbor is z, which is unscheduled: D_NODE(x) = 0.
	if d := dNode(g, s, x); d != 0 {
		t.Errorf("D_NODE(x) = %v, want 0 (only neighbor unscheduled)", d)
	}
}

func TestDNodeZeroWeightEdges(t *testing.T) {
	b := dag.NewBuilder()
	x := b.AddNode(1)
	z := b.AddNode(1)
	b.AddEdge(x, z, 0)
	g := b.MustBuild()
	s := sched.New(g, 1)
	s.MustPlace(x, 0, 0)
	if d := dNode(g, s, z); d != 1 {
		t.Errorf("zero-weight D_NODE = %v, want 1 (count fallback)", d)
	}
}

// TestNoCommChainStaysLocal: with zero communication costs every
// algorithm should schedule a chain serially with no idle time.
func TestNoCommChainStaysLocal(t *testing.T) {
	b := dag.NewBuilder()
	prev := b.AddNode(3)
	var total int64 = 3
	for i := 0; i < 9; i++ {
		n := b.AddNode(int64(1 + i%4))
		total += int64(1 + i%4)
		b.AddEdge(prev, n, 0)
		prev = n
	}
	g := b.MustBuild()
	for _, tc := range allAlgorithms() {
		s, err := tc.run(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		if s.Length() != total {
			t.Errorf("%s: chain length = %d, want %d", tc.name, s.Length(), total)
		}
	}
}

// TestMoreProcsNeverWorseForked: for a fork of independent children,
// adding processors must not increase any algorithm's schedule length.
func TestMoreProcsNeverWorseForked(t *testing.T) {
	b := dag.NewBuilder()
	root := b.AddNode(2)
	for i := 0; i < 8; i++ {
		c := b.AddNode(4)
		b.AddEdge(root, c, 1)
	}
	g := b.MustBuild()
	for _, tc := range allAlgorithms() {
		prev := int64(-1)
		for _, p := range []int{1, 2, 4, 8} {
			s, err := tc.run(g, p)
			if err != nil {
				t.Fatal(err)
			}
			if prev >= 0 && s.Length() > prev {
				t.Errorf("%s: length increased from %d to %d when procs doubled to %d",
					tc.name, prev, s.Length(), p)
			}
			prev = s.Length()
		}
	}
}

func TestDLSMatchesETFOnIndependentTasks(t *testing.T) {
	// With no edges static levels equal weights, so DLS and ETF may
	// differ in pick order, but both must produce optimal-length
	// schedules for uniform tasks (pure load balancing).
	b := dag.NewBuilder()
	for i := 0; i < 12; i++ {
		b.AddNode(2)
	}
	g := b.MustBuild()
	d, _ := DLS(g, 3)
	e, _ := ETF(g, 3)
	if d.Length() != 8 || e.Length() != 8 {
		t.Errorf("DLS length %d, ETF length %d, want both 8", d.Length(), e.Length())
	}
}
