// Package bnp implements the six BNP (bounded number of processors)
// scheduling algorithms benchmarked by Kwok & Ahmad (IPPS 1998): HLFET,
// ISH, MCP, ETF, DLS, and LAST. All assume a fully connected,
// contention-free set of homogeneous processors (the clique model of
// internal/sched).
//
// Every scheduler has the signature
//
//	func(g *dag.Graph, numProcs int) (*sched.Schedule, error)
//
// and returns a complete, validated-by-construction schedule. The
// schedulers are deterministic: all ties break toward smaller node IDs
// and lower processor indices.
package bnp

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/sched"
)

// Scheduler is the common signature of all BNP algorithms.
type Scheduler func(g *dag.Graph, numProcs int) (*sched.Schedule, error)

// Algorithms returns the BNP algorithms in the order used by the paper's
// tables: HLFET, ISH, ETF, LAST, MCP, DLS.
func Algorithms() map[string]Scheduler {
	return map[string]Scheduler{
		"HLFET": HLFET,
		"ISH":   ISH,
		"ETF":   ETF,
		"LAST":  LAST,
		"MCP":   MCP,
		"DLS":   DLS,
	}
}

func checkArgs(g *dag.Graph, numProcs int) error {
	if g == nil {
		return fmt.Errorf("bnp: nil graph")
	}
	if numProcs < 1 {
		return fmt.Errorf("bnp: need at least one processor, got %d", numProcs)
	}
	return nil
}
