// Package bnp implements the six BNP (bounded number of processors)
// scheduling algorithms benchmarked by Kwok & Ahmad (IPPS 1998): HLFET,
// ISH, MCP, ETF, DLS, and LAST. All assume a fully connected,
// contention-free set of homogeneous processors (the clique model of
// internal/sched).
//
// Every scheduler has the signature
//
//	func(g *dag.Graph, numProcs int) (*sched.Schedule, error)
//
// and returns a complete, validated-by-construction schedule. The
// schedulers are deterministic: all ties break toward smaller node IDs
// and lower processor indices.
package bnp

import (
	"fmt"
	"sync"

	"repro/internal/dag"
	"repro/internal/sched"
)

// Scheduler is the common signature of all BNP algorithms.
type Scheduler func(g *dag.Graph, numProcs int) (*sched.Schedule, error)

// Algorithms returns the BNP algorithms in the order used by the paper's
// tables: HLFET, ISH, ETF, LAST, MCP, DLS.
func Algorithms() map[string]Scheduler {
	return map[string]Scheduler{
		"HLFET": HLFET,
		"ISH":   ISH,
		"ETF":   ETF,
		"LAST":  LAST,
		"MCP":   MCP,
		"DLS":   DLS,
	}
}

func checkArgs(g *dag.Graph, numProcs int) error {
	if g == nil {
		return fmt.Errorf("bnp: nil graph")
	}
	if numProcs < 1 {
		return fmt.Errorf("bnp: need at least one processor, got %d", numProcs)
	}
	return nil
}

// runs maps algorithm names to their inner loops, which operate on a
// prepared (possibly heterogeneous) schedule.
var runs = map[string]func(*dag.Graph, *sched.Schedule){
	"HLFET": runHLFET,
	"ISH":   runISH,
	"ETF":   runETF,
	"LAST":  runLAST,
	"MCP":   runMCP,
	"DLS":   runDLS,
}

// runBNP is the shared entry path of every BNP scheduler: validate,
// acquire a schedule, optionally make it heterogeneous, and hand it to
// the algorithm's inner loop.
func runBNP(g *dag.Graph, numProcs int, speeds []float64, run func(*dag.Graph, *sched.Schedule)) (*sched.Schedule, error) {
	if err := checkArgs(g, numProcs); err != nil {
		return nil, err
	}
	s := sched.Acquire(g, numProcs)
	if speeds != nil {
		if err := s.SetSpeeds(speeds); err != nil {
			s.Release()
			return nil, err
		}
	}
	run(g, s)
	return s, nil
}

// ScheduleHet runs the named BNP algorithm on numProcs processors with
// the given per-processor speed vector (nil for the homogeneous model,
// where the result is byte-identical to the plain entry point). The
// algorithms' priority attributes stay weight-based — only placement
// queries and execution times are speed-aware; the component schedulers
// of internal/algo/param add heterogeneity-aware selection rules.
func ScheduleHet(name string, g *dag.Graph, numProcs int, speeds []float64) (*sched.Schedule, error) {
	run, ok := runs[name]
	if !ok {
		return nil, fmt.Errorf("bnp: unknown algorithm %q", name)
	}
	return runBNP(g, numProcs, speeds, run)
}

// scratch bundles the per-run working state shared by the BNP
// schedulers: the level attributes and, for the incremental ETF/DLS
// kernels, the cached best (processor, EST) per ready node. Instances
// are pooled so steady-state scheduling runs reuse the arrays.
type scratch struct {
	lv       dag.Levels
	bestProc []int32
	bestEST  []int64
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// acquireScratch returns pooled scratch with levels computed for g and
// the per-node arrays sized to g.
func acquireScratch(g *dag.Graph) *scratch {
	sc := scratchPool.Get().(*scratch)
	sc.grow(g)
	return sc
}

// grow sizes the scratch for g and computes its levels.
func (sc *scratch) grow(g *dag.Graph) {
	sc.lv.Compute(g)
	n := g.NumNodes()
	if cap(sc.bestProc) >= n {
		sc.bestProc = sc.bestProc[:n]
		sc.bestEST = sc.bestEST[:n]
	} else {
		sc.bestProc = make([]int32, n)
		sc.bestEST = make([]int64, n)
	}
}

func (sc *scratch) release() { scratchPool.Put(sc) }

// evalBest computes and caches the earliest-start placement of ready
// node n: the processor with the smallest non-insertion EST, ties
// toward lower indices. O(procs) with the O(1) EST query.
func evalBest(s *sched.Schedule, sc *scratch, n dag.NodeID) {
	p, e, ok := s.BestESTNonInsertion(n)
	if !ok {
		panic("bnp: ready node has unscheduled parent")
	}
	sc.bestProc[n] = int32(p)
	sc.bestEST[n] = e
}
