// Package cs implements cluster scheduling (CS): the post-processing
// step that maps the clusters produced by a UNC algorithm onto a bounded
// number of physical processors. Kwok & Ahmad (IPPS 1998, section 7)
// describe the two classical algorithms implemented here and pose the
// BNP-versus-UNC+CS comparison as an open study; the harness's "unccs"
// experiment runs that comparison.
//
//   - Sarkar's assignment algorithm [Sarkar 1989] combines cluster
//     merging and node ordering in one pass: nodes are visited in
//     descending b-level order and each unmapped cluster is merged into
//     the physical processor that minimizes the resulting schedule
//     length estimate, considering execution order.
//
//   - Yang's RCP ("ready critical path") algorithm [Yang 1993] merges
//     clusters without considering execution order: clusters are sorted
//     by aggregate work and wrap-mapped onto the processors to balance
//     load, after which nodes are list-scheduled in b-level order. RCP
//     has lower complexity but can make poor merging decisions, exactly
//     the trade-off the paper describes.
package cs

import (
	"fmt"
	"sort"

	"repro/internal/algo"
	"repro/internal/dag"
	"repro/internal/sched"
)

// Mapper maps a clustering (the UNC schedule s, whose processors are
// clusters) onto numProcs physical processors.
type Mapper func(s *sched.Schedule, numProcs int) (*sched.Schedule, error)

// Mappers returns the registered cluster-scheduling algorithms.
func Mappers() map[string]Mapper {
	return map[string]Mapper{
		"SARKAR": Sarkar,
		"RCP":    RCP,
	}
}

// clustersOf extracts the non-empty clusters of a UNC schedule as node
// lists ordered by start time.
func clustersOf(s *sched.Schedule) [][]dag.NodeID {
	var out [][]dag.NodeID
	for p := 0; p < s.NumProcs(); p++ {
		slots := s.Slots(p)
		if len(slots) == 0 {
			continue
		}
		cluster := make([]dag.NodeID, len(slots))
		for i, sl := range slots {
			cluster[i] = sl.Node
		}
		out = append(out, cluster)
	}
	return out
}

// scheduleMapped list-schedules the graph in descending b-level order
// with every node pinned to the processor its cluster was mapped to.
func scheduleMapped(g *dag.Graph, proc []int, numProcs int) *sched.Schedule {
	bl := dag.BLevels(g)
	out := sched.Acquire(g, numProcs)
	ready := algo.NewReadySet(g)
	for !ready.Empty() {
		n := algo.MaxBy(ready.Ready(), func(m dag.NodeID) int64 { return bl[m] })
		ready.Pop(n)
		est, ok := out.ESTOn(n, proc[n], true)
		if !ok {
			panic("cs: b-level order not topological")
		}
		out.MustPlace(n, proc[n], est)
		ready.MarkScheduled(g, n)
	}
	return out
}

// Sarkar maps clusters onto processors one cluster at a time, in
// descending order of the clusters' highest b-level, choosing for each
// cluster the processor that minimizes the schedule length of the
// partial mapping (estimated by the pinned list schedule above, which
// interleaves execution orders as Sarkar's algorithm does).
func Sarkar(s *sched.Schedule, numProcs int) (*sched.Schedule, error) {
	if numProcs < 1 {
		return nil, fmt.Errorf("cs: need at least one processor, got %d", numProcs)
	}
	g := s.Graph()
	clusters := clustersOf(s)
	bl := dag.BLevels(g)
	sort.SliceStable(clusters, func(i, j int) bool {
		return maxBL(bl, clusters[i]) > maxBL(bl, clusters[j])
	})

	proc := make([]int, g.NumNodes())
	for i := range proc {
		proc[i] = -1
	}
	mapped := make([]dag.NodeID, 0, g.NumNodes())
	for _, cluster := range clusters {
		bestProc := -1
		var bestLen int64
		for p := 0; p < numProcs; p++ {
			for _, n := range cluster {
				proc[n] = p
			}
			l := partialLength(g, proc, append(mapped, cluster...), numProcs)
			if bestProc == -1 || l < bestLen {
				bestProc, bestLen = p, l
			}
		}
		for _, n := range cluster {
			proc[n] = bestProc
		}
		mapped = append(mapped, cluster...)
	}
	return scheduleMapped(g, proc, numProcs), nil
}

// partialLength estimates the schedule length of the already-mapped
// nodes by list-scheduling the induced subgraph in b-level order.
func partialLength(g *dag.Graph, proc []int, mapped []dag.NodeID, numProcs int) int64 {
	inSet := make([]bool, g.NumNodes())
	for _, n := range mapped {
		inSet[n] = true
	}
	bl := dag.BLevels(g)
	order := append([]dag.NodeID(nil), mapped...)
	sort.SliceStable(order, func(i, j int) bool {
		if bl[order[i]] != bl[order[j]] {
			return bl[order[i]] > bl[order[j]]
		}
		return order[i] < order[j]
	})
	out := sched.Acquire(g, numProcs)
	// Place in b-level order, skipping dependencies outside the mapped
	// set (their data is treated as available at time 0).
	for _, n := range order {
		drt := int64(0)
		for _, pr := range g.Preds(n) {
			if !inSet[pr.To] {
				continue
			}
			arrival := out.FinishOf(pr.To)
			if out.ProcOf(pr.To) != proc[n] {
				arrival += pr.Weight
			}
			if arrival > drt {
				drt = arrival
			}
		}
		// Manual placement: earliest gap on the pinned processor.
		est := drt
		for _, sl := range out.Slots(proc[n]) {
			if sl.Finish > est {
				est = sl.Finish
			}
		}
		out.MustPlace(n, proc[n], est)
	}
	l := out.Length()
	out.Release() // trial schedule: only its length is used
	return l
}

func maxBL(bl []int64, cluster []dag.NodeID) int64 {
	var m int64
	for _, n := range cluster {
		if bl[n] > m {
			m = bl[n]
		}
	}
	return m
}

// RCP wrap-maps clusters onto processors by descending aggregate
// computation (largest cluster to the least-loaded processor), ignoring
// execution order during merging, then list-schedules the pinned nodes.
func RCP(s *sched.Schedule, numProcs int) (*sched.Schedule, error) {
	if numProcs < 1 {
		return nil, fmt.Errorf("cs: need at least one processor, got %d", numProcs)
	}
	g := s.Graph()
	clusters := clustersOf(s)
	work := func(cluster []dag.NodeID) int64 {
		var w int64
		for _, n := range cluster {
			w += g.Weight(n)
		}
		return w
	}
	sort.SliceStable(clusters, func(i, j int) bool {
		return work(clusters[i]) > work(clusters[j])
	})
	proc := make([]int, g.NumNodes())
	load := make([]int64, numProcs)
	for _, cluster := range clusters {
		best := 0
		for p := 1; p < numProcs; p++ {
			if load[p] < load[best] {
				best = p
			}
		}
		for _, n := range cluster {
			proc[n] = best
		}
		load[best] += work(cluster)
	}
	return scheduleMapped(g, proc, numProcs), nil
}
