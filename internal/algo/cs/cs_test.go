package cs

import (
	"math/rand"
	"testing"

	"repro/internal/algo/bnp"
	"repro/internal/algo/unc"
	"repro/internal/dag"
)

func randomGraph(rng *rand.Rand, n int, commScale int64) *dag.Graph {
	b := dag.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(1 + rng.Int63n(30))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(4) == 0 {
				b.AddEdge(dag.NodeID(i), dag.NodeID(j), rng.Int63n(commScale))
			}
		}
	}
	return b.MustBuild()
}

func TestMappersRegistry(t *testing.T) {
	m := Mappers()
	if len(m) != 2 || m["SARKAR"] == nil || m["RCP"] == nil {
		t.Fatalf("registry = %v, want SARKAR and RCP", m)
	}
}

func TestMappedSchedulesAreValid(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 5+rng.Intn(30), 60)
		clustering, err := unc.DCP(g)
		if err != nil {
			t.Fatal(err)
		}
		for name, mapper := range Mappers() {
			for _, p := range []int{1, 2, 4} {
				s, err := mapper(clustering, p)
				if err != nil {
					t.Fatalf("%s p=%d: %v", name, p, err)
				}
				if !s.Complete() {
					t.Fatalf("%s p=%d: incomplete", name, p)
				}
				if err := s.Validate(); err != nil {
					t.Fatalf("%s p=%d: %v", name, p, err)
				}
				if s.ProcessorsUsed() > p {
					t.Fatalf("%s used %d of %d processors", name, s.ProcessorsUsed(), p)
				}
			}
		}
	}
}

func TestMappersRespectBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomGraph(rng, 20, 40)
	clustering, err := unc.DSC(g) // DSC produces many clusters
	if err != nil {
		t.Fatal(err)
	}
	if clustering.ProcessorsUsed() <= 2 {
		t.Skip("clustering too small to compress")
	}
	for name, mapper := range Mappers() {
		s, err := mapper(clustering, 2)
		if err != nil {
			t.Fatal(err)
		}
		if s.ProcessorsUsed() > 2 {
			t.Errorf("%s: %d clusters forced onto 2 procs but used %d",
				name, clustering.ProcessorsUsed(), s.ProcessorsUsed())
		}
	}
}

func TestMappersErrors(t *testing.T) {
	g := dag.NewBuilder()
	g.AddNode(1)
	clustering, err := unc.LC(g.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	for name, mapper := range Mappers() {
		if _, err := mapper(clustering, 0); err == nil {
			t.Errorf("%s accepted zero processors", name)
		}
	}
}

// TestRCPBalancesLoad: with independent equal clusters RCP's wrap
// mapping must spread them evenly.
func TestRCPBalancesLoad(t *testing.T) {
	b := dag.NewBuilder()
	for i := 0; i < 8; i++ {
		b.AddNode(5)
	}
	g := b.MustBuild()
	clustering, err := unc.DCP(g) // independent tasks: 8 singleton clusters
	if err != nil {
		t.Fatal(err)
	}
	s, err := RCP(clustering, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Length() != 10 {
		t.Errorf("RCP length = %d, want 10 (2 tasks per processor)", s.Length())
	}
}

// TestUNCCSCompetitiveWithBNP runs the comparison the paper poses as
// future work: DCP+Sarkar on p processors versus MCP on p processors.
// We only assert sanity (within 2x of each other in aggregate), not a
// winner — that is the experiment's job.
func TestUNCCSCompetitiveWithBNP(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	var csTotal, bnpTotal int64
	for i := 0; i < 8; i++ {
		g := randomGraph(rng, 25, 50)
		clustering, err := unc.DCP(g)
		if err != nil {
			t.Fatal(err)
		}
		mapped, err := Sarkar(clustering, 4)
		if err != nil {
			t.Fatal(err)
		}
		m, err := bnp.MCP(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		csTotal += mapped.Length()
		bnpTotal += m.Length()
	}
	if csTotal > 2*bnpTotal {
		t.Errorf("UNC+CS total %d far above BNP total %d", csTotal, bnpTotal)
	}
	if bnpTotal > 2*csTotal {
		t.Errorf("BNP total %d far above UNC+CS total %d", bnpTotal, csTotal)
	}
}
