package param

import (
	"repro/internal/dag"
	"repro/internal/obs"
)

// tracePriority stages node n's selection value on the active tracer
// for the placement record the imminent Place emits: the static rank in
// the static regime, the rule objective in the dynamic one. One atomic
// load and a nil check when disabled.
func tracePriority(n dag.NodeID, prio int64) {
	if t := obs.ActiveTracer(); t != nil && t.InRun() {
		t.Priority(int32(n), prio)
	}
}
