package param

import (
	"sort"
	"sync"

	"repro/internal/algo"
	"repro/internal/dag"
	"repro/internal/sched"
)

// engine is the pooled per-run state of the generic component
// scheduler: level attributes, the static priority ranks, the median
// execution times (RuleDL only), and the per-ready-node cache of the
// best placement under the combo's rule.
type engine struct {
	lv       dag.Levels
	rank     []int32
	med      []int64
	execBuf  []int64
	nodes    []dag.NodeID
	bestProc []int32
	bestEST  []int64
	bestObj  []int64
}

var enginePool = sync.Pool{New: func() any { return new(engine) }}

func acquireEngine(g *dag.Graph) *engine {
	e := enginePool.Get().(*engine)
	e.lv.Compute(g)
	n := g.NumNodes()
	if cap(e.rank) >= n {
		e.rank = e.rank[:n]
		e.med = e.med[:n]
		e.bestProc = e.bestProc[:n]
		e.bestEST = e.bestEST[:n]
		e.bestObj = e.bestObj[:n]
	} else {
		e.rank = make([]int32, n)
		e.med = make([]int64, n)
		e.bestProc = make([]int32, n)
		e.bestEST = make([]int64, n)
		e.bestObj = make([]int64, n)
	}
	return e
}

func (e *engine) release() { enginePool.Put(e) }

// run executes the combo on a prepared (possibly heterogeneous)
// schedule.
func run(c Combo, g *dag.Graph, s *sched.Schedule) {
	e := acquireEngine(g)
	defer e.release()
	e.computeRanks(c.Metric, g)
	if c.Rule == RuleDL {
		e.computeMedians(g, s)
	}
	ready := algo.AcquireReadySet(g)
	defer ready.Release()

	if c.Regime == RegimeStatic {
		// Fixed priority list: pop by static rank, place by rule+slot.
		for !ready.Empty() {
			n := algo.MinBy(ready.Ready(), func(m dag.NodeID) int64 { return int64(e.rank[m]) })
			ready.Pop(n)
			e.eval(c, s, n)
			tracePriority(n, int64(e.rank[n]))
			s.MustPlace(n, int(e.bestProc[n]), e.bestEST[n])
			ready.MarkScheduled(g, n)
		}
		return
	}

	// Dynamic regime: every ready node caches its best placement under
	// the rule; each step schedules the globally best (node, processor)
	// pair and re-evaluates only the nodes whose cached processor just
	// changed, plus the newly released ones. The incremental argument is
	// the one proved for the ETF kernel (internal/algo/bnp): a
	// placement only affects the receiving processor, and only for the
	// worse — under either slot policy, adding a slot can never open an
	// earlier fit on it — so a cached best on another processor stays
	// optimal.
	for _, m := range ready.Ready() {
		e.eval(c, s, m)
	}
	for !ready.Empty() {
		bestNode := dag.None
		if c.Metric == MetricDL {
			// Maximize the dynamic level SL − objective, ties toward the
			// smaller node ID (Sih & Lee).
			var bestDL int64
			for _, m := range ready.Ready() {
				dl := e.lv.Static[m] - e.bestObj[m]
				if bestNode == dag.None || dl > bestDL || (dl == bestDL && m < bestNode) {
					bestNode, bestDL = m, dl
				}
			}
		} else {
			// Minimize the objective, ties by static rank (for MetricSL
			// this is ETF's higher-static-level-then-smaller-ID chain).
			var bestObj int64
			for _, m := range ready.Ready() {
				obj := e.bestObj[m]
				if bestNode == dag.None || obj < bestObj ||
					(obj == bestObj && e.rank[m] < e.rank[bestNode]) {
					bestNode, bestObj = m, obj
				}
			}
		}
		placed := e.bestProc[bestNode]
		ready.Pop(bestNode)
		tracePriority(bestNode, e.bestObj[bestNode])
		s.MustPlace(bestNode, int(placed), e.bestEST[bestNode])
		for _, m := range ready.Ready() {
			if e.bestProc[m] == placed {
				e.eval(c, s, m)
			}
		}
		for _, m := range ready.MarkScheduled(g, bestNode) {
			e.eval(c, s, m)
		}
	}
}

// eval caches the best placement of ready node n under the combo's rule
// and slot policy: the processor minimizing the rule's objective, ties
// toward lower indices, with the EST at that processor.
func (e *engine) eval(c Combo, s *sched.Schedule, n dag.NodeID) {
	insertion := c.Slot == SlotInsertion
	if c.Rule == RuleEST {
		var (
			p   int
			est int64
			ok  bool
		)
		if insertion {
			p, est, ok = s.BestEST(n, true)
		} else {
			p, est, ok = s.BestESTNonInsertion(n)
		}
		if !ok {
			panic("param: ready node has unscheduled parent")
		}
		e.bestProc[n], e.bestEST[n], e.bestObj[n] = int32(p), est, est
		return
	}
	best := -1
	var bestEST, bestObj int64
	for p := 0; p < s.NumProcs(); p++ {
		est, ok := s.ESTOn(n, p, insertion)
		if !ok {
			panic("param: ready node has unscheduled parent")
		}
		obj := est + s.ExecTime(n, p)
		if best == -1 || obj < bestObj {
			best, bestEST, bestObj = p, est, obj
		}
	}
	if c.Rule == RuleDL {
		// The median is a per-node constant: it cannot change the argmin
		// over processors, only the objective value carried into dynamic
		// node selection.
		bestObj -= e.med[n]
	}
	e.bestProc[n], e.bestEST[n], e.bestObj[n] = int32(best), bestEST, bestObj
}

// computeRanks fills e.rank with the metric's static total order:
// rank 0 is scheduled first. Every order ties toward the smaller node
// ID, so ranks are a permutation.
func (e *engine) computeRanks(m Metric, g *dag.Graph) {
	n := g.NumNodes()
	if m == MetricALAP {
		for i, nd := range algo.ALAPListOrder(g) {
			e.rank[nd] = int32(i)
		}
		return
	}
	nodes := e.nodes[:0]
	for v := 0; v < n; v++ {
		nodes = append(nodes, dag.NodeID(v))
	}
	e.nodes = nodes
	var key func(dag.NodeID) int64
	switch m {
	case MetricSL, MetricDL:
		// Descending static level; MetricDL's static part is the static
		// level, so the two share a rank order.
		key = func(v dag.NodeID) int64 { return -e.lv.Static[v] }
	case MetricTL:
		// Ascending t-level: earliest possible start first.
		key = func(v dag.NodeID) int64 { return e.lv.T[v] }
	case MetricBT:
		// Descending t-level + b-level: critical-path nodes first.
		key = func(v dag.NodeID) int64 { return -(e.lv.T[v] + e.lv.B[v]) }
	default:
		panic("param: unknown metric")
	}
	sort.Slice(nodes, func(i, j int) bool {
		ki, kj := key(nodes[i]), key(nodes[j])
		if ki != kj {
			return ki < kj
		}
		return nodes[i] < nodes[j]
	})
	for i, nd := range nodes {
		e.rank[nd] = int32(i)
	}
}

// computeMedians fills e.med with each node's lower median execution
// time across processors, the reference point of RuleDL's objective. On
// a homogeneous schedule this is simply the node weight.
func (e *engine) computeMedians(g *dag.Graph, s *sched.Schedule) {
	if s.Speeds() == nil {
		for v := 0; v < g.NumNodes(); v++ {
			e.med[v] = g.Weight(dag.NodeID(v))
		}
		return
	}
	numProcs := s.NumProcs()
	buf := e.execBuf[:0]
	for v := 0; v < g.NumNodes(); v++ {
		buf = buf[:0]
		for p := 0; p < numProcs; p++ {
			// Insertion sort: numProcs is small (≤ 32 in the study).
			t := s.ExecTime(dag.NodeID(v), p)
			i := len(buf)
			buf = append(buf, t)
			for i > 0 && buf[i-1] > buf[i] {
				buf[i-1], buf[i] = buf[i], buf[i-1]
				i--
			}
		}
		e.med[v] = buf[(numProcs-1)/2]
	}
	e.execBuf = buf
}
