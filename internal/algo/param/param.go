// Package param decomposes clique-model list scheduling into orthogonal
// components and composes schedulers from them, in the spirit of the
// parameterized task graph scheduling algorithm (PTGS) of Coleman,
// Titzer and Taufer (2024): instead of comparing monolithic algorithms,
// every point of the design space
//
//	priority metric × processor-selection rule × slot policy × regime
//
// is a scheduler, so makespan differences can be attributed to the
// individual design choices.
//
// The four axes are:
//
//   - Metric — the node priority: static b-level (sl), t-level (tl),
//     b-level + t-level (bt), the ALAP-list order of MCP (alap), or the
//     dynamic level of DLS (dl).
//   - Rule — the processor choice for the selected node: earliest start
//     time (est), earliest finish time (eft), or the dynamic-level rule
//     of Sih & Lee (dl), which charges a processor the node's execution
//     time relative to its median across processors.
//   - Slot — whether a node may be inserted into an idle gap between
//     already scheduled tasks (ins) or only appended after the last one
//     (ni).
//   - Regime — whether the priority list is fixed up front (st) and
//     nodes are popped in that order, or every ready node is re-scored
//     against the partial schedule at each step and the best
//     (node, processor) pair wins (dy).
//
// Four classic BNP algorithms are registered combinations, byte-
// identical to the optimized kernels in internal/algo/bnp (pinned by
// equivalence tests): HLFET = sl/est/ni/st, MCP = alap/est/ins/st,
// ETF = sl/est/ni/dy, DLS = dl/est/ni/dy.
//
// Degeneracies worth knowing about, all deliberate consequences of the
// published component definitions rather than implementation accidents:
//
//   - MetricDL under RegimeStatic falls back to the metric's static part
//     (the static level), so dl/·/·/st duplicates sl/·/·/st.
//   - RuleDL picks the same processor as RuleEFT (their objectives
//     differ by a per-node constant, the median execution time), but
//     carries a different objective into dynamic node selection.
//   - On homogeneous machines every execution time equals the node
//     weight, so RuleDL's objective collapses to RuleEST's; the rules
//     only separate on heterogeneous machines.
//
// Schedulers run on homogeneous or heterogeneous machines: Schedule
// takes an optional per-processor speed vector, applied via
// sched.Schedule.SetSpeeds (execution time ceil(weight/speed)).
package param

import (
	"fmt"
	"sort"

	"repro/internal/dag"
	"repro/internal/sched"
)

// Metric is the node-priority component.
type Metric uint8

// The five priority metrics.
const (
	// MetricSL prioritizes by static level: the b-level with
	// communication costs ignored, descending (HLFET).
	MetricSL Metric = iota
	// MetricTL prioritizes by t-level, ascending: nodes that can start
	// earliest first.
	MetricTL
	// MetricBT prioritizes by t-level + b-level, descending: the length
	// of the longest path through the node, so critical-path nodes come
	// first.
	MetricBT
	// MetricALAP prioritizes by the lexicographic ALAP-list order of Wu
	// & Gajski's MCP: own ALAP time, then every descendant's, ascending.
	MetricALAP
	// MetricDL prioritizes by the dynamic level of Sih & Lee: static
	// level minus the node's placement objective. Under RegimeStatic the
	// objective is not yet known and the metric degenerates to MetricSL.
	MetricDL
)

// Rule is the processor-selection component.
type Rule uint8

// The three processor-selection rules.
const (
	// RuleEST places the node where it starts earliest.
	RuleEST Rule = iota
	// RuleEFT places the node where it finishes earliest — on
	// heterogeneous machines a fast processor can win over an earlier
	// but slower start (the HEFT processor rule).
	RuleEFT
	// RuleDL places the node by Sih & Lee's heterogeneous dynamic level:
	// EST plus execution time minus the node's median execution time
	// across processors. The chosen processor always matches RuleEFT's;
	// the objective value carried into dynamic node selection differs.
	RuleDL
)

// Slot is the slot-policy component.
type Slot uint8

// The two slot policies.
const (
	// SlotNonInsertion appends the node after the last task of the
	// chosen processor.
	SlotNonInsertion Slot = iota
	// SlotInsertion may place the node into an earlier idle gap that
	// fits it.
	SlotInsertion
)

// Regime is the priority-regime component.
type Regime uint8

// The two priority regimes.
const (
	// RegimeStatic fixes the priority list up front and pops nodes in
	// that order.
	RegimeStatic Regime = iota
	// RegimeDynamic re-scores every ready node against the partial
	// schedule at each step and schedules the best (node, processor)
	// pair.
	RegimeDynamic
)

var (
	metricNames = [...]string{"sl", "tl", "bt", "alap", "dl"}
	ruleNames   = [...]string{"est", "eft", "dl"}
	slotNames   = [...]string{"ni", "ins"}
	regimeNames = [...]string{"st", "dy"}
)

// String returns the metric's short token.
func (m Metric) String() string { return name(metricNames[:], int(m), "Metric") }

// String returns the rule's short token.
func (r Rule) String() string { return name(ruleNames[:], int(r), "Rule") }

// String returns the slot policy's short token.
func (s Slot) String() string { return name(slotNames[:], int(s), "Slot") }

// String returns the regime's short token.
func (r Regime) String() string { return name(regimeNames[:], int(r), "Regime") }

func name(names []string, i int, kind string) string {
	if i < 0 || i >= len(names) {
		return fmt.Sprintf("%s(%d)", kind, i)
	}
	return names[i]
}

// Combo is one point of the component cross-product: a complete list
// scheduler.
type Combo struct {
	Metric Metric
	Rule   Rule
	Slot   Slot
	Regime Regime
}

// Name returns the canonical combo name, e.g. "alap/est/ins/st" for
// MCP: metric/rule/slot/regime with the short component tokens.
func (c Combo) Name() string {
	return c.Metric.String() + "/" + c.Rule.String() + "/" + c.Slot.String() + "/" + c.Regime.String()
}

// validate rejects out-of-range component values.
func (c Combo) validate() error {
	if int(c.Metric) >= len(metricNames) || int(c.Rule) >= len(ruleNames) ||
		int(c.Slot) >= len(slotNames) || int(c.Regime) >= len(regimeNames) {
		return fmt.Errorf("param: invalid combo %+v", c)
	}
	return nil
}

// Combos returns the full component cross-product (currently 5×3×2×2 =
// 60 schedulers) in a fixed deterministic order: metric-major, then
// rule, slot, regime.
func Combos() []Combo {
	out := make([]Combo, 0, len(metricNames)*len(ruleNames)*len(slotNames)*len(regimeNames))
	for m := range metricNames {
		for r := range ruleNames {
			for sl := range slotNames {
				for re := range regimeNames {
					out = append(out, Combo{Metric(m), Rule(r), Slot(sl), Regime(re)})
				}
			}
		}
	}
	return out
}

// ParseCombo parses a canonical combo name (see Combo.Name) back into a
// Combo.
func ParseCombo(s string) (Combo, error) {
	var c Combo
	rest := s
	next := func() string {
		for i := 0; i < len(rest); i++ {
			if rest[i] == '/' {
				tok := rest[:i]
				rest = rest[i+1:]
				return tok
			}
		}
		tok := rest
		rest = ""
		return tok
	}
	find := func(names []string, tok string) (int, bool) {
		for i, n := range names {
			if n == tok {
				return i, true
			}
		}
		return 0, false
	}
	m, ok1 := find(metricNames[:], next())
	r, ok2 := find(ruleNames[:], next())
	sl, ok3 := find(slotNames[:], next())
	re, ok4 := find(regimeNames[:], next())
	if !ok1 || !ok2 || !ok3 || !ok4 || rest != "" {
		return c, fmt.Errorf("param: cannot parse combo %q", s)
	}
	return Combo{Metric(m), Rule(r), Slot(sl), Regime(re)}, nil
}

// Registration is one named combo in the registry.
type Registration struct {
	// Name is the registered name, e.g. "MCP".
	Name string
	// Combo is the component combination it denotes.
	Combo Combo
	// Doc is a one-line description.
	Doc string
}

var registry = map[string]Registration{}

// Register adds a named combo to the registry. It fails on an empty
// name, a duplicate, or an invalid combo.
func Register(name string, c Combo, doc string) error {
	if name == "" {
		return fmt.Errorf("param: empty registration name")
	}
	if err := c.validate(); err != nil {
		return err
	}
	if _, dup := registry[name]; dup {
		return fmt.Errorf("param: duplicate registration %q", name)
	}
	registry[name] = Registration{Name: name, Combo: c, Doc: doc}
	return nil
}

// MustRegister is Register that panics on error, for init-time
// one-liners.
func MustRegister(name string, c Combo, doc string) {
	if err := Register(name, c, doc); err != nil {
		panic(err)
	}
}

// Lookup returns the combo registered under name.
func Lookup(name string) (Combo, bool) {
	reg, ok := registry[name]
	return reg.Combo, ok
}

// Named returns all registrations sorted by name.
func Named() []Registration {
	out := make([]Registration, 0, len(registry))
	for _, reg := range registry {
		out = append(out, reg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Schedule runs the combo on g with numProcs processors and an optional
// per-processor speed vector (nil for the homogeneous model). The
// returned schedule is complete; hand it back with Release when done.
func (c Combo) Schedule(g *dag.Graph, numProcs int, speeds []float64) (*sched.Schedule, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("param: nil graph")
	}
	if numProcs < 1 {
		return nil, fmt.Errorf("param: need at least one processor, got %d", numProcs)
	}
	s := sched.Acquire(g, numProcs)
	if speeds != nil {
		if err := s.SetSpeeds(speeds); err != nil {
			s.Release()
			return nil, err
		}
	}
	run(c, g, s)
	return s, nil
}
