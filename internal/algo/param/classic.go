package param

// The classic BNP algorithms that are pure points of the component
// space, registered under their paper names. Equivalence tests pin each
// one byte-identical to its optimized kernel in internal/algo/bnp.
func init() {
	MustRegister("HLFET", Combo{MetricSL, RuleEST, SlotNonInsertion, RegimeStatic},
		"Adam/Chandy/Dickson 1974: static levels, earliest start, no insertion")
	MustRegister("MCP", Combo{MetricALAP, RuleEST, SlotInsertion, RegimeStatic},
		"Wu/Gajski 1990: ALAP-list order, earliest start, insertion")
	MustRegister("ETF", Combo{MetricSL, RuleEST, SlotNonInsertion, RegimeDynamic},
		"Hwang/Chow/Anger/Lee 1989: globally earliest-starting ready node each step")
	MustRegister("DLS", Combo{MetricDL, RuleEST, SlotNonInsertion, RegimeDynamic},
		"Sih/Lee 1993: highest dynamic level (static level minus start) each step")
}
