package param

import (
	"testing"

	"repro/internal/algo/bnp"
)

// TestRegisteredCombosMatchKernels pins the tentpole claim: the four
// classic algorithms expressed as component combinations produce
// byte-identical schedules to the optimized monolithic kernels in
// internal/algo/bnp, over every registered generator family × seeds ×
// CCRs × processor counts.
func TestRegisteredCombosMatchKernels(t *testing.T) {
	kernels := bnp.Algorithms()
	for _, seed := range []int64{1, 2, 3} {
		for _, ccr := range []float64{0.5, 2.0} {
			graphs := equivalenceGraphs(t, seed, ccr)
			for famName, g := range graphs {
				for _, procs := range []int{2, 8} {
					for _, name := range []string{"HLFET", "MCP", "ETF", "DLS"} {
						combo, ok := Lookup(name)
						if !ok {
							t.Fatalf("combo %q not registered", name)
						}
						ref, err := kernels[name](g, procs)
						if err != nil {
							t.Fatalf("bnp %s on %s: %v", name, famName, err)
						}
						want := ref.String()
						ref.Release()
						s, err := combo.Schedule(g, procs, nil)
						if err != nil {
							t.Fatalf("combo %s on %s: %v", name, famName, err)
						}
						if got := s.String(); got != want {
							t.Errorf("combo %s (%s) diverges from bnp kernel on %s (seed=%d ccr=%g procs=%d):\ncombo:\n%s\nkernel:\n%s",
								name, combo.Name(), famName, seed, ccr, procs, got, want)
						}
						s.Release()
					}
				}
			}
		}
	}
}
