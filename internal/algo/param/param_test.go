package param

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/gen"
)

// equivalenceGraphs generates one instance per registered generator
// family for the given seed and CCR, sized to keep the full combo
// sweeps fast (mirrors the bnp equivalence suite).
func equivalenceGraphs(t *testing.T, seed int64, ccr float64) map[string]*dag.Graph {
	t.Helper()
	out := map[string]*dag.Graph{}
	for _, fam := range gen.Generators() {
		params := gen.Params{}
		if fam.Random {
			params["v"] = "50"
			params["ccr"] = fmt.Sprint(ccr)
		}
		if fam.Name == "psg" {
			// The psg meta-generator requires a graph name; its members
			// are also registered individually and covered that way.
			params["name"] = "wu-gajski-18"
		}
		g, err := gen.Generate(fam.Name, seed, params)
		if err != nil {
			t.Fatalf("generate %s: %v", fam.Name, err)
		}
		out[fam.Name] = g
	}
	return out
}

func TestCombosEnumeration(t *testing.T) {
	combos := Combos()
	if len(combos) != 60 {
		t.Fatalf("Combos() = %d schedulers, want 60", len(combos))
	}
	seen := map[string]bool{}
	for _, c := range combos {
		name := c.Name()
		if seen[name] {
			t.Errorf("duplicate combo name %q", name)
		}
		seen[name] = true
		if strings.Count(name, "/") != 3 {
			t.Errorf("combo name %q is not metric/rule/slot/regime", name)
		}
		parsed, err := ParseCombo(name)
		if err != nil {
			t.Errorf("ParseCombo(%q): %v", name, err)
		} else if parsed != c {
			t.Errorf("ParseCombo(%q) = %+v, want %+v", name, parsed, c)
		}
	}
}

func TestParseComboErrors(t *testing.T) {
	for _, bad := range []string{
		"", "sl", "sl/est", "sl/est/ni", "sl/est/ni/st/x",
		"xx/est/ni/st", "sl/xx/ni/st", "sl/est/xx/st", "sl/est/ni/xx",
	} {
		if _, err := ParseCombo(bad); err == nil {
			t.Errorf("ParseCombo(%q) succeeded, want error", bad)
		}
	}
}

func TestRegistry(t *testing.T) {
	named := Named()
	wantCombos := map[string]string{
		"HLFET": "sl/est/ni/st",
		"MCP":   "alap/est/ins/st",
		"ETF":   "sl/est/ni/dy",
		"DLS":   "dl/est/ni/dy",
	}
	if len(named) < len(wantCombos) {
		t.Fatalf("Named() = %d registrations, want at least %d", len(named), len(wantCombos))
	}
	for i := 1; i < len(named); i++ {
		if named[i-1].Name >= named[i].Name {
			t.Fatalf("Named() not sorted: %q before %q", named[i-1].Name, named[i].Name)
		}
	}
	for name, combo := range wantCombos {
		c, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) missing", name)
		}
		if c.Name() != combo {
			t.Errorf("Lookup(%q) = %s, want %s", name, c.Name(), combo)
		}
	}
	if _, ok := Lookup("no-such-scheduler"); ok {
		t.Error("Lookup of unregistered name succeeded")
	}
	if err := Register("", Combo{}, ""); err == nil {
		t.Error("Register with empty name succeeded")
	}
	if err := Register("HLFET", Combo{}, ""); err == nil {
		t.Error("duplicate Register succeeded")
	}
	if err := Register("bad-combo", Combo{Metric: Metric(99)}, ""); err == nil {
		t.Error("Register of invalid combo succeeded")
	}
}

func TestScheduleArgErrors(t *testing.T) {
	b := dag.NewBuilder()
	b.AddNode(1)
	g := b.MustBuild()
	c := Combo{MetricSL, RuleEST, SlotNonInsertion, RegimeStatic}
	if _, err := c.Schedule(nil, 2, nil); err == nil {
		t.Error("Schedule(nil graph) succeeded")
	}
	if _, err := c.Schedule(g, 0, nil); err == nil {
		t.Error("Schedule with 0 processors succeeded")
	}
	if _, err := (Combo{Metric: Metric(99)}).Schedule(g, 2, nil); err == nil {
		t.Error("Schedule of invalid combo succeeded")
	}
	for _, speeds := range [][]float64{
		{1.0},              // wrong length
		{1.0, 0.0},         // zero
		{1.0, -2.0},        // negative
		{1.0, math.Inf(1)}, // infinite
		{1.0, math.NaN()},  // NaN
	} {
		if _, err := c.Schedule(g, 2, speeds); err == nil {
			t.Errorf("Schedule with speeds %v succeeded, want error", speeds)
		}
	}
}

// TestAllCombosValid runs every point of the component space on one
// graph per family, homogeneous and heterogeneous, and checks the
// schedules are complete and constraint-clean.
func TestAllCombosValid(t *testing.T) {
	het := []float64{1.0, 2.5, 4.0, 1.5}
	graphs := equivalenceGraphs(t, 7, 1.0)
	for famName, g := range graphs {
		for _, speeds := range [][]float64{nil, het} {
			for _, c := range Combos() {
				s, err := c.Schedule(g, len(het), speeds)
				if err != nil {
					t.Fatalf("%s on %s (speeds=%v): %v", c.Name(), famName, speeds, err)
				}
				if !s.Complete() {
					t.Fatalf("%s on %s: incomplete schedule", c.Name(), famName)
				}
				if err := s.Validate(); err != nil {
					t.Fatalf("%s on %s (speeds=%v): invalid schedule: %v", c.Name(), famName, speeds, err)
				}
				s.Release()
			}
		}
	}
}

// TestDocumentedDegeneracies pins the two identities called out in the
// package doc: MetricDL under RegimeStatic equals MetricSL, and on
// homogeneous machines RuleDL schedules exactly like RuleEST (their
// objectives coincide when every execution time is the node weight).
func TestDocumentedDegeneracies(t *testing.T) {
	graphs := equivalenceGraphs(t, 11, 2.0)
	for famName, g := range graphs {
		for _, slot := range []Slot{SlotNonInsertion, SlotInsertion} {
			a, err := Combo{MetricDL, RuleEST, slot, RegimeStatic}.Schedule(g, 4, nil)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Combo{MetricSL, RuleEST, slot, RegimeStatic}.Schedule(g, 4, nil)
			if err != nil {
				t.Fatal(err)
			}
			if a.String() != b.String() {
				t.Errorf("dl/est/%s/st diverges from sl/est/%s/st on %s", slot, slot, famName)
			}
			a.Release()
			b.Release()
			for _, regime := range []Regime{RegimeStatic, RegimeDynamic} {
				d, err := Combo{MetricSL, RuleDL, slot, regime}.Schedule(g, 4, nil)
				if err != nil {
					t.Fatal(err)
				}
				e, err := Combo{MetricSL, RuleEST, slot, regime}.Schedule(g, 4, nil)
				if err != nil {
					t.Fatal(err)
				}
				if d.String() != e.String() {
					t.Errorf("homogeneous sl/dl/%s/%s diverges from sl/est/%s/%s on %s",
						slot, regime, slot, regime, famName)
				}
				d.Release()
				e.Release()
			}
		}
	}
}

// TestHeterogeneousEFTGolden pins the canonical separation of the
// processor rules on a heterogeneous machine: two independent tasks of
// weight 8 on processors with speeds {1, 4}. RuleEST ties both
// processors at start 0 and wastes the fast one on only one task
// (makespan 8); RuleEFT stacks both tasks on the fast processor
// (makespan 4) — the HEFT-style placement.
func TestHeterogeneousEFTGolden(t *testing.T) {
	b := dag.NewBuilder()
	na := b.AddNode(8)
	nb := b.AddNode(8)
	g := b.MustBuild()
	speeds := []float64{1.0, 4.0}

	est, err := Combo{MetricSL, RuleEST, SlotNonInsertion, RegimeStatic}.Schedule(g, 2, speeds)
	if err != nil {
		t.Fatal(err)
	}
	defer est.Release()
	if got := est.Makespan(); got != 8 {
		t.Errorf("EST het makespan = %d, want 8\n%s", got, est)
	}
	if est.ProcOf(na) != 0 || est.ProcOf(nb) != 1 {
		t.Errorf("EST placement = {%d, %d}, want {0, 1}\n%s", est.ProcOf(na), est.ProcOf(nb), est)
	}

	eft, err := Combo{MetricSL, RuleEFT, SlotNonInsertion, RegimeStatic}.Schedule(g, 2, speeds)
	if err != nil {
		t.Fatal(err)
	}
	defer eft.Release()
	if got := eft.Makespan(); got != 4 {
		t.Errorf("EFT het makespan = %d, want 4\n%s", got, eft)
	}
	if eft.ProcOf(na) != 1 || eft.ProcOf(nb) != 1 {
		t.Errorf("EFT placement = {%d, %d}, want both on fast processor 1\n%s",
			eft.ProcOf(na), eft.ProcOf(nb), eft)
	}
	if eft.FinishOf(na) != 2 || eft.FinishOf(nb) != 4 {
		t.Errorf("EFT finishes = {%d, %d}, want {2, 4} (exec time ceil(8/4)=2)\n%s",
			eft.FinishOf(na), eft.FinishOf(nb), eft)
	}
}
