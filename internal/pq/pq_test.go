package pq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapOrdering(t *testing.T) {
	h := New(func(a, b int) bool { return a < b })
	for _, x := range []int{5, 3, 8, 1, 9, 2, 7} {
		h.Push(x)
	}
	want := []int{1, 2, 3, 5, 7, 8, 9}
	for i, w := range want {
		if h.Len() != len(want)-i {
			t.Fatalf("Len = %d, want %d", h.Len(), len(want)-i)
		}
		if got := h.Pop(); got != w {
			t.Fatalf("Pop #%d = %d, want %d", i, got, w)
		}
	}
	if h.Len() != 0 {
		t.Errorf("heap not empty after draining")
	}
}

func TestHeapPeek(t *testing.T) {
	h := New(func(a, b int) bool { return a > b }) // max-heap
	h.Push(4)
	h.Push(10)
	h.Push(6)
	if p := h.Peek(); p != 10 {
		t.Errorf("Peek = %d, want 10", p)
	}
	if h.Len() != 3 {
		t.Errorf("Peek consumed an element")
	}
}

func TestHeapReset(t *testing.T) {
	h := NewWithCapacity(func(a, b string) bool { return a < b }, 4)
	h.Push("b")
	h.Push("a")
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len after Reset = %d", h.Len())
	}
	h.Push("z")
	if h.Pop() != "z" {
		t.Error("heap unusable after Reset")
	}
}

func TestHeapStructTieBreak(t *testing.T) {
	type task struct {
		prio int64
		id   int
	}
	h := New(func(a, b task) bool {
		if a.prio != b.prio {
			return a.prio > b.prio // higher priority first
		}
		return a.id < b.id // smaller id breaks ties
	})
	h.Push(task{5, 2})
	h.Push(task{5, 1})
	h.Push(task{9, 3})
	if got := h.Pop(); got.id != 3 {
		t.Errorf("first pop id = %d, want 3", got.id)
	}
	if got := h.Pop(); got.id != 1 {
		t.Errorf("tie-break pop id = %d, want 1", got.id)
	}
}

func TestHeapMatchesSortQuick(t *testing.T) {
	f := func(xs []int) bool {
		h := New(func(a, b int) bool { return a < b })
		for _, x := range xs {
			h.Push(x)
		}
		sorted := append([]int(nil), xs...)
		sort.Ints(sorted)
		for _, want := range sorted {
			if h.Pop() != want {
				return false
			}
		}
		return h.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHeapInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := New(func(a, b int) bool { return a < b })
	var mirror []int
	for op := 0; op < 2000; op++ {
		if h.Len() == 0 || rng.Intn(2) == 0 {
			x := rng.Intn(1000)
			h.Push(x)
			mirror = append(mirror, x)
			sort.Ints(mirror)
		} else {
			got := h.Pop()
			if got != mirror[0] {
				t.Fatalf("op %d: Pop = %d, want %d", op, got, mirror[0])
			}
			mirror = mirror[1:]
		}
	}
}
