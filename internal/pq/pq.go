// Package pq provides a small generic binary min-heap used by the list
// schedulers and the exact branch-and-bound search. Ordering is supplied
// as a less function at construction, so one type serves max-heaps,
// min-heaps, and composite tie-broken priorities.
package pq

// Heap is a binary heap ordered by the less function given to New. The
// zero value is not usable; call New.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// New returns an empty heap whose minimum element (per less) is popped
// first.
func New[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// NewWithCapacity returns an empty heap with pre-allocated storage.
func NewWithCapacity[T any](less func(a, b T) bool, capacity int) *Heap[T] {
	return &Heap[T]{less: less, items: make([]T, 0, capacity)}
}

// Len returns the number of elements in the heap.
func (h *Heap[T]) Len() int { return len(h.items) }

// Push adds x to the heap.
func (h *Heap[T]) Push(x T) {
	h.items = append(h.items, x)
	h.up(len(h.items) - 1)
}

// Pop removes and returns the minimum element. It panics on an empty heap.
func (h *Heap[T]) Pop() T {
	n := len(h.items) - 1
	h.items[0], h.items[n] = h.items[n], h.items[0]
	x := h.items[n]
	var zero T
	h.items[n] = zero // release references for the garbage collector
	h.items = h.items[:n]
	if n > 0 {
		h.down(0)
	}
	return x
}

// Peek returns the minimum element without removing it. It panics on an
// empty heap.
func (h *Heap[T]) Peek() T { return h.items[0] }

// Reset empties the heap, keeping its storage for reuse.
func (h *Heap[T]) Reset() {
	var zero T
	for i := range h.items {
		h.items[i] = zero
	}
	h.items = h.items[:0]
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(h.items[l], h.items[smallest]) {
			smallest = l
		}
		if r < n && h.less(h.items[r], h.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
