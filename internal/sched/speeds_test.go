package sched

import (
	"math"
	"testing"

	"repro/internal/dag"
)

func speedsTestGraph(t *testing.T) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder()
	n0 := b.AddNode(5)
	n1 := b.AddNode(7)
	b.AddEdge(n0, n1, 2)
	return b.MustBuild()
}

func TestSetSpeedsRejections(t *testing.T) {
	g := speedsTestGraph(t)
	s := New(g, 2)
	for _, bad := range [][]float64{
		{1.0},              // wrong length
		{1.0, 1.0, 1.0},    // wrong length
		{1.0, 0.0},         // zero
		{1.0, -1.0},        // negative
		{1.0, math.Inf(1)}, // infinite
		{math.NaN(), 1.0},  // NaN
	} {
		if err := s.SetSpeeds(bad); err == nil {
			t.Errorf("SetSpeeds(%v) succeeded, want error", bad)
		}
	}
	if err := s.SetSpeeds([]float64{1.0, 2.0}); err != nil {
		t.Fatalf("SetSpeeds(valid): %v", err)
	}
	// Once anything is placed the machine model is locked in.
	s.MustPlace(0, 0, 0)
	if err := s.SetSpeeds([]float64{1.0, 2.0}); err == nil {
		t.Error("SetSpeeds on a non-empty schedule succeeded, want error")
	}
}

func TestSpeedsScaleExecution(t *testing.T) {
	g := speedsTestGraph(t)
	s := New(g, 2)
	if err := s.SetSpeeds([]float64{1.0, 2.0}); err != nil {
		t.Fatal(err)
	}
	// Defensive copy: mutating the caller's vector must not leak in.
	sp := s.Speeds()
	if len(sp) != 2 || sp[0] != 1.0 || sp[1] != 2.0 {
		t.Fatalf("Speeds() = %v", sp)
	}
	if got := s.ExecTime(0, 0); got != 5 {
		t.Errorf("ExecTime(n0, p0) = %d, want 5", got)
	}
	if got := s.ExecTime(0, 1); got != 3 { // ceil(5/2)
		t.Errorf("ExecTime(n0, p1) = %d, want 3", got)
	}
	s.MustPlace(0, 1, 0)
	if f := s.FinishOf(0); f != 3 {
		t.Errorf("FinishOf(n0) = %d, want 3", f)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Reset drops the speed vector: the next user of a pooled schedule
	// must get the homogeneous model back.
	s.Reset(g, 2)
	if s.Speeds() != nil {
		t.Errorf("Speeds() after Reset = %v, want nil", s.Speeds())
	}
	if got := s.ExecTime(0, 1); got != 5 {
		t.Errorf("ExecTime after Reset = %d, want weight 5", got)
	}
}
