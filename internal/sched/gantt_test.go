package sched

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dag"
)

func builtSchedule(t *testing.T) (*dag.Graph, *Schedule) {
	t.Helper()
	g, ids := diamond(t)
	s := New(g, 2)
	s.MustPlace(ids[0], 0, 0)
	s.MustPlace(ids[1], 0, 2)
	s.MustPlace(ids[2], 1, 7)
	s.MustPlace(ids[3], 1, 14)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return g, s
}

func TestGanttRender(t *testing.T) {
	_, s := builtSchedule(t)
	var buf bytes.Buffer
	if err := Gantt(&buf, s, 30); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "P0") || !strings.Contains(out, "P1") {
		t.Errorf("Gantt missing processor rows:\n%s", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "d") {
		t.Errorf("Gantt missing task glyphs:\n%s", out)
	}
	if !strings.Contains(out, ".") {
		t.Errorf("Gantt missing idle cells:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	g, _ := diamond(t)
	var buf bytes.Buffer
	if err := Gantt(&buf, New(g, 2), 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Error("empty schedule not labelled")
	}
}

func TestScheduleTextRoundTrip(t *testing.T) {
	g, s := builtSchedule(t)
	var buf bytes.Buffer
	if err := WriteText(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if back.Length() != s.Length() {
		t.Errorf("round trip length %d != %d", back.Length(), s.Length())
	}
	for v := 0; v < g.NumNodes(); v++ {
		n := dag.NodeID(v)
		if back.ProcOf(n) != s.ProcOf(n) || back.StartOf(n) != s.StartOf(n) {
			t.Errorf("node %d placement changed in round trip", v)
		}
	}
}

func TestScheduleReadTextRejectsInvalid(t *testing.T) {
	g, _ := diamond(t)
	cases := map[string]string{
		"missing header":   "place 0 0 0\n",
		"unknown node":     "procs 2\nplace 9 0 0\n",
		"bad directive":    "procs 2\nfrobnicate\n",
		"overlap":          "procs 1\nplace 0 0 0\nplace 1 0 0\n",
		"precedence break": "procs 2\nplace 1 0 0\n",
		"empty":            "",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadText(strings.NewReader(src), g); err == nil {
				t.Errorf("accepted %q", src)
			}
		})
	}
}

func TestSpeedupAndEfficiency(t *testing.T) {
	_, s := builtSchedule(t)
	// Total computation 10, length 15: speedup 2/3, two processors used.
	if sp := s.Speedup(); sp < 0.66 || sp > 0.67 {
		t.Errorf("Speedup = %v, want 10/15", sp)
	}
	if e := s.Efficiency(); e < 0.33 || e > 0.34 {
		t.Errorf("Efficiency = %v, want speedup/2", e)
	}
	g, _ := diamond(t)
	empty := New(g, 2)
	if empty.Speedup() != 0 || empty.Efficiency() != 0 {
		t.Error("empty schedule should report zero speedup/efficiency")
	}
}
