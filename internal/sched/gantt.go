package sched

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/dag"
)

// Gantt renders the schedule as a text Gantt chart, one row per used
// processor, with time quantized into at most maxCols character cells.
// Cells show the node's last label character or its ID digit; idle time
// renders as '.'; a cell spanning several tasks shows '#'.
func Gantt(w io.Writer, s *Schedule, maxCols int) error {
	if maxCols < 10 {
		maxCols = 10
	}
	length := s.Length()
	if length == 0 {
		_, err := fmt.Fprintln(w, "(empty schedule)")
		return err
	}
	scale := float64(maxCols) / float64(length)
	var b strings.Builder
	fmt.Fprintf(&b, "time 0..%d, %d cols (1 col = %.2f time units)\n",
		length, maxCols, float64(length)/float64(maxCols))
	for p := 0; p < s.NumProcs(); p++ {
		slots := s.Slots(p)
		if len(slots) == 0 {
			continue
		}
		row := make([]byte, maxCols)
		for i := range row {
			row[i] = '.'
		}
		for _, sl := range slots {
			from := int(float64(sl.Start) * scale)
			to := int(float64(sl.Finish) * scale)
			if to <= from {
				to = from + 1
			}
			if to > maxCols {
				to = maxCols
			}
			mark := glyphFor(s.g, sl.Node)
			for i := from; i < to; i++ {
				if row[i] != '.' {
					row[i] = '#'
				} else {
					row[i] = mark
				}
			}
		}
		fmt.Fprintf(&b, "P%-3d |%s|\n", p, row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func glyphFor(g *dag.Graph, n dag.NodeID) byte {
	if label := g.Label(n); label != "" {
		return label[len(label)-1]
	}
	return byte('0' + int(n)%10)
}

// WriteText serializes the schedule placements as text, one line per
// node: "place <node> <proc> <start>". Paired with ReadText it allows
// storing schedules next to their graphs.
func WriteText(w io.Writer, s *Schedule) error {
	var b strings.Builder
	fmt.Fprintf(&b, "procs %d\n", s.NumProcs())
	for p := 0; p < s.NumProcs(); p++ {
		for _, sl := range s.Slots(p) {
			fmt.Fprintf(&b, "place %d %d %d\n", sl.Node, p, sl.Start)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ReadText parses a schedule for g from the text format and validates
// it.
func ReadText(r io.Reader, g *dag.Graph) (*Schedule, error) {
	var procs int
	var s *Schedule
	var n, p int
	var start int64
	line := 0
	for {
		line++
		var directive string
		_, err := fmt.Fscan(r, &directive)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("sched: line %d: %w", line, err)
		}
		switch directive {
		case "procs":
			if _, err := fmt.Fscan(r, &procs); err != nil {
				return nil, fmt.Errorf("sched: line %d: %w", line, err)
			}
			s = New(g, procs)
		case "place":
			if s == nil {
				return nil, fmt.Errorf("sched: line %d: place before procs", line)
			}
			if _, err := fmt.Fscan(r, &n, &p, &start); err != nil {
				return nil, fmt.Errorf("sched: line %d: %w", line, err)
			}
			if n < 0 || n >= g.NumNodes() {
				return nil, fmt.Errorf("sched: line %d: unknown node %d", line, n)
			}
			if err := s.Place(dag.NodeID(n), p, start); err != nil {
				return nil, fmt.Errorf("sched: line %d: %w", line, err)
			}
		default:
			return nil, fmt.Errorf("sched: line %d: unknown directive %q", line, directive)
		}
	}
	if s == nil {
		return nil, fmt.Errorf("sched: missing procs header")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Speedup returns the ratio of the serial execution time (the sum of all
// computation costs) to the schedule length. Together with
// ProcessorsUsed it yields Efficiency.
func (s *Schedule) Speedup() float64 {
	l := s.Length()
	if l == 0 {
		return 0
	}
	return float64(s.g.TotalComputation()) / float64(l)
}

// Efficiency returns Speedup divided by the number of processors used.
func (s *Schedule) Efficiency() float64 {
	used := s.ProcessorsUsed()
	if used == 0 {
		return 0
	}
	return s.Speedup() / float64(used)
}
