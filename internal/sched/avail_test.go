package sched

import "testing"

func TestSetAvailableFromClampsEST(t *testing.T) {
	g, ids := diamond(t)
	s := New(g, 2)
	if err := s.SetAvailableFrom([]int64{10, 0}); err != nil {
		t.Fatalf("SetAvailableFrom: %v", err)
	}
	if got := s.AvailableFrom(0); got != 10 {
		t.Fatalf("AvailableFrom(0) = %d, want 10", got)
	}
	est, ok := s.ESTOn(ids[0], 0, false)
	if !ok || est != 10 {
		t.Fatalf("ESTOn proc 0 = (%d, %v), want (10, true)", est, ok)
	}
	est, ok = s.ESTOn(ids[0], 1, false)
	if !ok || est != 0 {
		t.Fatalf("ESTOn proc 1 = (%d, %v), want (0, true)", est, ok)
	}
	p, est, ok := s.BestEST(ids[0], false)
	if !ok || p != 1 || est != 0 {
		t.Fatalf("BestEST = (%d, %d, %v), want (1, 0, true)", p, est, ok)
	}
	p, est, ok = s.BestESTNonInsertion(ids[0])
	if !ok || p != 1 || est != 0 {
		t.Fatalf("BestESTNonInsertion = (%d, %d, %v), want (1, 0, true)", p, est, ok)
	}
	// Clearing the mask restores the unrestricted queries.
	if err := s.SetAvailableFrom(nil); err != nil {
		t.Fatalf("clear: %v", err)
	}
	if est, ok := s.ESTOn(ids[0], 0, false); !ok || est != 0 {
		t.Fatalf("cleared ESTOn proc 0 = (%d, %v), want (0, true)", est, ok)
	}
}

func TestSetAvailableFromNeverExcludes(t *testing.T) {
	g, ids := diamond(t)
	s := New(g, 2)
	if err := s.SetAvailableFrom([]int64{Never, 3}); err != nil {
		t.Fatalf("SetAvailableFrom: %v", err)
	}
	if est, ok := s.ESTOn(ids[0], 0, false); !ok || est != Never {
		t.Fatalf("excluded ESTOn = (%d, %v), want (Never, true)", est, ok)
	}
	p, est, ok := s.BestEST(ids[0], false)
	if !ok || p != 1 || est != 3 {
		t.Fatalf("BestEST = (%d, %d, %v), want (1, 3, true)", p, est, ok)
	}
	p, est, ok = s.BestESTNonInsertion(ids[0])
	if !ok || p != 1 || est != 3 {
		t.Fatalf("BestESTNonInsertion = (%d, %d, %v), want (1, 3, true)", p, est, ok)
	}
	// All processors excluded: no placement target.
	if err := s.SetAvailableFrom([]int64{Never, Never}); err != nil {
		t.Fatalf("SetAvailableFrom: %v", err)
	}
	if p, _, _ := s.BestEST(ids[0], false); p != -1 {
		t.Fatalf("all-excluded BestEST proc = %d, want -1", p)
	}
	if p, _, _ := s.BestESTNonInsertion(ids[0]); p != -1 {
		t.Fatalf("all-excluded BestESTNonInsertion proc = %d, want -1", p)
	}
}

func TestSetAvailableFromValidates(t *testing.T) {
	g, _ := diamond(t)
	s := New(g, 2)
	if err := s.SetAvailableFrom([]int64{1}); err == nil {
		t.Error("mis-sized mask accepted")
	}
	if err := s.SetAvailableFrom([]int64{-1, 0}); err == nil {
		t.Error("negative availability accepted")
	}
	// The mask is copied, not aliased.
	mask := []int64{5, 0}
	if err := s.SetAvailableFrom(mask); err != nil {
		t.Fatalf("SetAvailableFrom: %v", err)
	}
	mask[0] = 99
	if got := s.AvailableFrom(0); got != 5 {
		t.Fatalf("mask aliased: AvailableFrom(0) = %d, want 5", got)
	}
}

func TestPlaceFixed(t *testing.T) {
	g, ids := diamond(t)
	s := New(g, 2)
	// A fixed interval longer than the nominal execution time (a
	// perturbed realized run) validates.
	if err := s.PlaceFixed(ids[0], 0, 0, 7); err != nil {
		t.Fatalf("PlaceFixed: %v", err)
	}
	if s.StartOf(ids[0]) != 0 || s.FinishOf(ids[0]) != 7 {
		t.Fatalf("fixed interval = [%d, %d], want [0, 7]", s.StartOf(ids[0]), s.FinishOf(ids[0]))
	}
	// The mask does not apply to fixed placements: they record history.
	if err := s.SetAvailableFrom([]int64{Never, Never}); err != nil {
		t.Fatalf("SetAvailableFrom: %v", err)
	}
	if err := s.PlaceFixed(ids[1], 0, 8, 8); err != nil {
		t.Fatalf("zero-length PlaceFixed on excluded proc: %v", err)
	}
	if err := s.SetAvailableFrom(nil); err != nil {
		t.Fatalf("clear: %v", err)
	}
	if err := s.PlaceFixed(ids[2], 1, 12, 16); err != nil {
		t.Fatalf("PlaceFixed: %v", err)
	}
	if err := s.Place(ids[3], 1, 20); err != nil {
		t.Fatalf("Place after fixed: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate with fixed slots: %v", err)
	}
	// Errors: inverted interval, overlap.
	s2 := New(g, 2)
	if err := s2.PlaceFixed(ids[0], 0, 5, 4); err == nil {
		t.Error("inverted interval accepted")
	}
	if err := s2.PlaceFixed(ids[0], 0, 0, 10); err != nil {
		t.Fatalf("PlaceFixed: %v", err)
	}
	if err := s2.PlaceFixed(ids[1], 0, 3, 6); err == nil {
		t.Error("overlapping fixed interval accepted")
	}
}
