package sched

import (
	"fmt"
	"sort"

	"repro/internal/dag"
)

// Timeline is a sorted, non-overlapping sequence of slots on one
// exclusive resource: a processor in this package, a network link in
// internal/machine. The zero value is an empty timeline.
type Timeline struct {
	slots []Slot
}

// Len returns the number of slots.
func (tl *Timeline) Len() int { return len(tl.slots) }

// Slots returns the slots in start order. The slice is shared with the
// timeline and must not be modified.
func (tl *Timeline) Slots() []Slot { return tl.slots }

// LastFinish returns the finish time of the final slot, 0 when empty.
func (tl *Timeline) LastFinish() int64 {
	if len(tl.slots) == 0 {
		return 0
	}
	return tl.slots[len(tl.slots)-1].Finish
}

// EarliestFit returns the earliest start time >= ready at which a slot of
// the given duration fits. With insertion enabled, idle gaps between
// existing slots are considered (MCP/ISH/DCP style); otherwise only the
// open-ended gap after the last slot is used (HLFET/ETF/DLS style).
func (tl *Timeline) EarliestFit(ready, duration int64, insertion bool) int64 {
	if len(tl.slots) == 0 {
		return ready
	}
	if !insertion {
		if last := tl.LastFinish(); last > ready {
			return last
		}
		return ready
	}
	// Slots finishing at or before ready cannot bound the search: the
	// gap start is clamped to ready and a usable gap must begin at or
	// after it. Binary-search past them; timelines are finish-sorted.
	prevFinish := int64(0)
	first := sort.Search(len(tl.slots), func(i int) bool { return tl.slots[i].Finish > ready })
	for i := first; i < len(tl.slots); i++ {
		gapStart := prevFinish
		if gapStart < ready {
			gapStart = ready
		}
		if tl.slots[i].Start-gapStart >= duration {
			return gapStart
		}
		prevFinish = tl.slots[i].Finish
	}
	if prevFinish < ready {
		return ready
	}
	return prevFinish
}

// Insert adds a slot, keeping the timeline sorted. It returns an error if
// the slot would overlap an existing one.
func (tl *Timeline) Insert(s Slot) error {
	i := sort.Search(len(tl.slots), func(i int) bool { return tl.slots[i].Start >= s.Start })
	if i > 0 && tl.slots[i-1].Finish > s.Start {
		prev := tl.slots[i-1]
		return fmt.Errorf("sched: slot n%d[%d,%d) overlaps n%d[%d,%d)",
			s.Node, s.Start, s.Finish, prev.Node, prev.Start, prev.Finish)
	}
	if i < len(tl.slots) && tl.slots[i].Start < s.Finish {
		next := tl.slots[i]
		return fmt.Errorf("sched: slot n%d[%d,%d) overlaps n%d[%d,%d)",
			s.Node, s.Start, s.Finish, next.Node, next.Start, next.Finish)
	}
	tl.slots = append(tl.slots, Slot{})
	copy(tl.slots[i+1:], tl.slots[i:])
	tl.slots[i] = s
	return nil
}

// Remove deletes the slot identified by (node, start) and reports whether
// it was present. The slot is located by binary search on the start
// time; only zero-duration slots can share a start, so at most a couple
// of entries are inspected after the search.
func (tl *Timeline) Remove(node dag.NodeID, start int64) bool {
	i := sort.Search(len(tl.slots), func(i int) bool { return tl.slots[i].Start >= start })
	for ; i < len(tl.slots) && tl.slots[i].Start == start; i++ {
		if tl.slots[i].Node == node {
			tl.slots = append(tl.slots[:i], tl.slots[i+1:]...)
			return true
		}
	}
	return false
}

// reset empties the timeline, keeping the slot capacity for reuse.
func (tl *Timeline) reset() { tl.slots = tl.slots[:0] }

// Validate checks the slots are sorted and non-overlapping.
func (tl *Timeline) Validate() error {
	for i := 1; i < len(tl.slots); i++ {
		if tl.slots[i-1].Finish > tl.slots[i].Start {
			return fmt.Errorf("sched: timeline slots %d and %d overlap", i-1, i)
		}
	}
	return nil
}
