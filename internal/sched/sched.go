// Package sched implements the processor-schedule model shared by the BNP
// and UNC algorithm classes of Kwok & Ahmad (IPPS 1998): a set of
// homogeneous processors that are fully connected by contention-free
// links (the "clique" communication model). A message from a parent to a
// child costs the edge weight when the two tasks are on different
// processors and nothing when they are co-located.
//
// A Schedule maintains one timeline per processor plus per-node placement
// arrays, supports insertion and non-insertion earliest-start-time
// queries, placement and removal (for migration-style algorithms and
// branch-and-bound backtracking), and full validation of precedence and
// processor-exclusivity constraints.
//
// The APN class uses internal/machine instead, which schedules messages
// on the links of an arbitrary topology.
package sched

import (
	"fmt"

	"repro/internal/dag"
)

// Slot is one contiguous task execution on a processor timeline.
type Slot struct {
	Node   dag.NodeID
	Start  int64
	Finish int64
}

// Schedule is a (possibly partial) mapping of tasks to processors and
// start times under the clique communication model.
type Schedule struct {
	g      *dag.Graph
	procs  []Timeline
	proc   []int32 // node -> processor, -1 when unscheduled
	start  []int64
	finish []int64
	placed int
}

// New returns an empty schedule for g on numProcs processors.
// For UNC (unbounded-processor) algorithms pass numProcs equal to the
// number of nodes: one task per cluster is the worst case.
func New(g *dag.Graph, numProcs int) *Schedule {
	if numProcs < 1 {
		numProcs = 1
	}
	n := g.NumNodes()
	s := &Schedule{
		g:      g,
		procs:  make([]Timeline, numProcs),
		proc:   make([]int32, n),
		start:  make([]int64, n),
		finish: make([]int64, n),
	}
	for i := range s.proc {
		s.proc[i] = -1
	}
	return s
}

// Graph returns the task graph this schedule is for.
func (s *Schedule) Graph() *dag.Graph { return s.g }

// NumProcs returns the number of processors available to the schedule.
func (s *Schedule) NumProcs() int { return len(s.procs) }

// IsScheduled reports whether node n has been placed.
func (s *Schedule) IsScheduled(n dag.NodeID) bool { return s.proc[n] >= 0 }

// Complete reports whether every node has been placed.
func (s *Schedule) Complete() bool { return s.placed == s.g.NumNodes() }

// Placed returns the number of nodes placed so far.
func (s *Schedule) Placed() int { return s.placed }

// ProcOf returns the processor of node n, or -1 if unscheduled.
func (s *Schedule) ProcOf(n dag.NodeID) int { return int(s.proc[n]) }

// StartOf returns the start time of a scheduled node.
func (s *Schedule) StartOf(n dag.NodeID) int64 { return s.start[n] }

// FinishOf returns the finish time of a scheduled node.
func (s *Schedule) FinishOf(n dag.NodeID) int64 { return s.finish[n] }

// Slots returns the timeline of processor p, sorted by start time. The
// returned slice is shared with the schedule and must not be modified.
func (s *Schedule) Slots(p int) []Slot { return s.procs[p].Slots() }

// Place schedules node n on processor p starting at the given time. It
// returns an error if n is already scheduled, the processor index or
// start time is invalid, or the slot would overlap an existing one.
// Place does not verify precedence feasibility; use Validate or the EST
// helpers for that — heuristics deliberately query EST first.
func (s *Schedule) Place(n dag.NodeID, p int, start int64) error {
	if s.proc[n] >= 0 {
		return fmt.Errorf("sched: node %d already scheduled", n)
	}
	if p < 0 || p >= len(s.procs) {
		return fmt.Errorf("sched: processor %d out of range [0,%d)", p, len(s.procs))
	}
	if start < 0 {
		return fmt.Errorf("sched: negative start time %d for node %d", start, n)
	}
	finish := start + s.g.Weight(n)
	if err := s.procs[p].Insert(Slot{Node: n, Start: start, Finish: finish}); err != nil {
		return fmt.Errorf("sched: node %d on P%d: %w", n, p, err)
	}
	s.proc[n] = int32(p)
	s.start[n] = start
	s.finish[n] = finish
	s.placed++
	return nil
}

// MustPlace is Place that panics on error; schedulers use it after they
// have computed a start time from an EST query, where failure indicates
// an algorithm bug rather than a user error.
func (s *Schedule) MustPlace(n dag.NodeID, p int, start int64) {
	if err := s.Place(n, p, start); err != nil {
		panic(err)
	}
}

// Unplace removes node n from the schedule so it can be migrated or the
// search can backtrack. It is a no-op for unscheduled nodes.
func (s *Schedule) Unplace(n dag.NodeID) {
	p := s.proc[n]
	if p < 0 {
		return
	}
	s.procs[p].Remove(n, s.start[n])
	s.proc[n] = -1
	s.start[n] = 0
	s.finish[n] = 0
	s.placed--
}

// Length returns the schedule length (makespan): the latest finish time
// over all processors, 0 for an empty schedule.
func (s *Schedule) Length() int64 {
	var max int64
	for i := range s.procs {
		if f := s.procs[i].LastFinish(); f > max {
			max = f
		}
	}
	return max
}

// ProcessorsUsed returns the number of processors with at least one task
// (paper section 6.4.2).
func (s *Schedule) ProcessorsUsed() int {
	used := 0
	for i := range s.procs {
		if s.procs[i].Len() > 0 {
			used++
		}
	}
	return used
}

// DataReadyTime returns the earliest time all of n's input data can be
// available on processor p: the max over parents of the parent's finish
// time plus the edge cost if the parent sits on a different processor.
// ok is false if some parent is not yet scheduled.
func (s *Schedule) DataReadyTime(n dag.NodeID, p int) (drt int64, ok bool) {
	for _, pr := range s.g.Preds(n) {
		pp := s.proc[pr.To]
		if pp < 0 {
			return 0, false
		}
		arrival := s.finish[pr.To]
		if int(pp) != p {
			arrival += pr.Weight
		}
		if arrival > drt {
			drt = arrival
		}
	}
	return drt, true
}

// EnablingProc returns the processor choice that maximizes locality for
// DataReadyTime: the processor of the parent whose message arrives last
// (the "very important parent"). Scheduling n there removes that edge's
// cost. Returns -1 when n has no scheduled parents.
func (s *Schedule) EnablingProc(n dag.NodeID) int {
	best := -1
	var bestArrival int64 = -1
	for _, pr := range s.g.Preds(n) {
		pp := s.proc[pr.To]
		if pp < 0 {
			continue
		}
		arrival := s.finish[pr.To] + pr.Weight
		if arrival > bestArrival {
			bestArrival = arrival
			best = int(pp)
		}
	}
	return best
}

// ESTOn returns the earliest start time of node n on processor p.
// With insertion enabled the earliest sufficient idle gap at or after the
// data-ready time is used (MCP/ISH/DCP style); otherwise the node can
// only go after the last task on p (HLFET/ETF/DLS style). ok is false if
// a parent is unscheduled.
func (s *Schedule) ESTOn(n dag.NodeID, p int, insertion bool) (est int64, ok bool) {
	drt, ok := s.DataReadyTime(n, p)
	if !ok {
		return 0, false
	}
	return s.procs[p].EarliestFit(drt, s.g.Weight(n), insertion), true
}

// BestEST returns the processor giving the smallest EST for n over all
// processors, breaking ties toward lower processor indices. ok is false
// if a parent is unscheduled.
func (s *Schedule) BestEST(n dag.NodeID, insertion bool) (proc int, est int64, ok bool) {
	proc = -1
	for p := range s.procs {
		e, k := s.ESTOn(n, p, insertion)
		if !k {
			return -1, 0, false
		}
		if proc == -1 || e < est {
			proc, est = p, e
		}
	}
	return proc, est, true
}

// Validate checks that the partial or complete schedule is consistent:
// every placed node's parents are placed, precedence plus communication
// delays are respected under the clique model, timelines are sorted and
// non-overlapping, and slot durations equal node weights.
func (s *Schedule) Validate() error {
	for p := range s.procs {
		if err := s.procs[p].Validate(); err != nil {
			return fmt.Errorf("sched: P%d: %w", p, err)
		}
		for _, sl := range s.procs[p].Slots() {
			if sl.Finish-sl.Start != s.g.Weight(sl.Node) {
				return fmt.Errorf("sched: node %d duration %d != weight %d",
					sl.Node, sl.Finish-sl.Start, s.g.Weight(sl.Node))
			}
			if s.proc[sl.Node] != int32(p) || s.start[sl.Node] != sl.Start {
				return fmt.Errorf("sched: node %d slot disagrees with placement arrays", sl.Node)
			}
		}
	}
	count := 0
	for v := 0; v < s.g.NumNodes(); v++ {
		n := dag.NodeID(v)
		if s.proc[n] < 0 {
			continue
		}
		count++
		for _, pr := range s.g.Preds(n) {
			if s.proc[pr.To] < 0 {
				return fmt.Errorf("sched: node %d scheduled before parent %d", n, pr.To)
			}
			arrival := s.finish[pr.To]
			if s.proc[pr.To] != s.proc[n] {
				arrival += pr.Weight
			}
			if s.start[n] < arrival {
				return fmt.Errorf("sched: node %d starts at %d before data from parent %d arrives at %d",
					n, s.start[n], pr.To, arrival)
			}
		}
	}
	if count != s.placed {
		return fmt.Errorf("sched: placed counter %d != %d placed nodes", s.placed, count)
	}
	return nil
}

// NSL returns the normalized schedule length: the makespan divided by the
// sum of computation costs on a critical path (paper section 6). Only
// meaningful for complete schedules; returns 0 when the denominator is 0.
func (s *Schedule) NSL() float64 {
	den := dag.CPComputationSum(s.g)
	if den == 0 {
		return 0
	}
	return float64(s.Length()) / float64(den)
}

// String renders the schedule as a compact per-processor listing, for
// debugging and the cmd tools.
func (s *Schedule) String() string {
	out := fmt.Sprintf("schedule length=%d procs=%d\n", s.Length(), s.ProcessorsUsed())
	for p := range s.procs {
		if s.procs[p].Len() == 0 {
			continue
		}
		out += fmt.Sprintf("P%d:", p)
		for _, sl := range s.procs[p].Slots() {
			out += fmt.Sprintf(" n%d[%d,%d)", sl.Node, sl.Start, sl.Finish)
		}
		out += "\n"
	}
	return out
}
