// Package sched implements the processor-schedule model shared by the BNP
// and UNC algorithm classes of Kwok & Ahmad (IPPS 1998): a set of
// homogeneous processors that are fully connected by contention-free
// links (the "clique" communication model). A message from a parent to a
// child costs the edge weight when the two tasks are on different
// processors and nothing when they are co-located.
//
// A Schedule maintains one timeline per processor plus per-node placement
// arrays, supports insertion and non-insertion earliest-start-time
// queries, placement and removal (for migration-style algorithms and
// branch-and-bound backtracking), and full validation of precedence and
// processor-exclusivity constraints.
//
// The APN class uses internal/machine instead, which schedules messages
// on the links of an arbitrary topology.
package sched

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/dag"
	"repro/internal/obs"
)

// Slot is one contiguous task execution on a processor timeline.
type Slot struct {
	Node   dag.NodeID
	Start  int64
	Finish int64
}

// Schedule is a (possibly partial) mapping of tasks to processors and
// start times under the clique communication model.
//
// Alongside the placement arrays, the schedule maintains an incremental
// data-arrival cache: for every node it tracks, over the node's already
// scheduled parents, the top-2 values of finish+communication on
// distinct processors plus the maximum bare finish time. The cache is
// updated in O(outdegree) on Place, which makes DataReadyTime — and
// with it the non-insertion ESTOn — an O(1) query instead of a scan
// over all predecessors. Unplace marks affected children dirty; their
// cache rows are rebuilt lazily by one predecessor scan on next query.
type Schedule struct {
	g      *dag.Graph
	procs  []Timeline
	proc   []int32 // node -> processor, -1 when unscheduled
	start  []int64
	finish []int64
	placed int

	// Data-arrival cache, one row per node, valid while dirty is unset:
	//   arrM1:  max over scheduled parents q of finish[q]+comm(q,n)
	//   arrP1:  processor of the first parent to reach arrM1 (-1 before
	//           any positive arrival)
	//   arrM2:  max over scheduled parents on processors != arrP1
	//   arrFin: max over scheduled parents of bare finish[q]
	schedPreds []int32 // number of scheduled parents
	arrM1      []int64
	arrP1      []int32
	arrM2      []int64
	arrFin     []int64
	dirty      []bool // row must be rebuilt by a predecessor scan

	// lastFin mirrors procs[p].LastFinish() in a flat array so the
	// non-insertion best-processor scan touches one cache line per few
	// processors instead of chasing a slot slice per processor.
	lastFin []int64

	// maxFin caches the makespan (max over lastFin): Place folds each
	// new finish in, so Makespan is O(1) instead of a scan. Unplace
	// rebuilds it from lastFin only when the removed task carried it.
	maxFin int64

	// speed optionally makes the processors heterogeneous (HEFT-style):
	// node n on processor p executes for ceil(Weight(n)/speed[p]) time
	// units. Nil means uniform unit speed, where the execution time is
	// exactly the node weight — the paper's homogeneous model.
	speed []float64

	// avail optionally floors the EST of every processor (repair-pass
	// availability mask, see SetAvailableFrom); nil means every
	// processor is available from time 0. The Never sentinel excludes a
	// processor from EST queries entirely.
	avail []int64

	// hasFixed records that PlaceFixed committed at least one slot whose
	// duration is an observed execution time rather than ExecTime, so
	// Validate skips the duration check.
	hasFixed bool
}

// Never is the availability sentinel for a processor that will not
// return to service; see SetAvailableFrom.
const Never int64 = math.MaxInt64

// New returns an empty schedule for g on numProcs processors.
// For UNC (unbounded-processor) algorithms pass numProcs equal to the
// number of nodes: one task per cluster is the worst case.
func New(g *dag.Graph, numProcs int) *Schedule {
	s := &Schedule{}
	s.Reset(g, numProcs)
	return s
}

// Reset rebinds the schedule to g on numProcs processors and empties it,
// reusing every backing array that is large enough. A Reset schedule is
// indistinguishable from a New one; steady-state experiment loops reset
// pooled schedules instead of allocating fresh ones.
func (s *Schedule) Reset(g *dag.Graph, numProcs int) {
	if numProcs < 1 {
		numProcs = 1
	}
	s.g = g
	if cap(s.procs) >= numProcs {
		s.procs = s.procs[:numProcs]
		for i := range s.procs {
			s.procs[i].reset()
		}
	} else {
		// Carry the old timelines over so their slot capacity survives.
		old := s.procs[:cap(s.procs)]
		for i := range old {
			old[i].reset()
		}
		s.procs = make([]Timeline, numProcs)
		copy(s.procs, old)
	}
	s.lastFin = resize(s.lastFin, numProcs)
	for i := range s.lastFin {
		s.lastFin[i] = 0
	}
	n := g.NumNodes()
	s.proc = resize(s.proc, n)
	s.start = resize(s.start, n)
	s.finish = resize(s.finish, n)
	s.schedPreds = resize(s.schedPreds, n)
	s.arrM1 = resize(s.arrM1, n)
	s.arrP1 = resize(s.arrP1, n)
	s.arrM2 = resize(s.arrM2, n)
	s.arrFin = resize(s.arrFin, n)
	s.dirty = resize(s.dirty, n)
	// Per-array clears compile to vectorized memclr, which beats a
	// combined 9-stream loop once n reaches the scaling ladder's sizes.
	clear(s.start)
	clear(s.finish)
	clear(s.schedPreds)
	clear(s.arrM1)
	clear(s.arrM2)
	clear(s.arrFin)
	clear(s.dirty)
	for i := 0; i < n; i++ {
		s.proc[i] = -1
	}
	for i := 0; i < n; i++ {
		s.arrP1[i] = -1
	}
	s.placed = 0
	s.maxFin = 0
	s.speed = nil
	s.avail = nil
	s.hasFixed = false
}

// SetSpeeds makes the processors heterogeneous: node n on processor p
// executes for ceil(Weight(n)/speeds[p]) time units. It must be called
// on an empty schedule (speeds change every execution time, so placed
// slots would become inconsistent), with one positive factor per
// processor. The vector is copied. A uniform all-ones vector reproduces
// the homogeneous model exactly: ceil(w/1) == w.
func (s *Schedule) SetSpeeds(speeds []float64) error {
	if s.placed != 0 {
		return fmt.Errorf("sched: SetSpeeds on a schedule with %d placed tasks", s.placed)
	}
	if len(speeds) != len(s.procs) {
		return fmt.Errorf("sched: %d speed factors for %d processors", len(speeds), len(s.procs))
	}
	for p, sp := range speeds {
		if !(sp > 0) || math.IsInf(sp, 1) {
			return fmt.Errorf("sched: speed factor %g for processor %d must be positive and finite", sp, p)
		}
	}
	s.speed = append(s.speed[:0], speeds...)
	return nil
}

// Speeds returns the per-processor speed vector, or nil for uniform unit
// speeds. The slice is shared with the schedule and must not be modified.
func (s *Schedule) Speeds() []float64 { return s.speed }

// SetAvailableFrom restricts when each processor may run newly queried
// work: every EST query on processor p is floored at avail[p], and a
// processor whose entry is the Never sentinel is skipped by BestEST
// entirely (BestEST returns proc == -1 when every processor is Never).
// The mask models machine availability after failures — a repair pass
// fixes the realized prefix of an execution with PlaceFixed (which the
// mask deliberately does not constrain) and then list-schedules the
// unfinished suffix onto the processors still in service. Nil clears
// the mask; the vector is copied.
func (s *Schedule) SetAvailableFrom(avail []int64) error {
	if avail == nil {
		s.avail = nil
		return nil
	}
	if len(avail) != len(s.procs) {
		return fmt.Errorf("sched: %d availability entries for %d processors", len(avail), len(s.procs))
	}
	for p, a := range avail {
		if a < 0 {
			return fmt.Errorf("sched: negative availability %d for processor %d", a, p)
		}
	}
	s.avail = append(s.avail[:0], avail...)
	return nil
}

// AvailableFrom returns the availability floor of processor p: 0
// without a mask, otherwise the time set by SetAvailableFrom (possibly
// Never).
func (s *Schedule) AvailableFrom(p int) int64 {
	if s.avail == nil {
		return 0
	}
	return s.avail[p]
}

// ExecTime returns the execution time of node n on processor p:
// ceil(Weight(n)/speed[p]), or exactly the weight under uniform speeds.
func (s *Schedule) ExecTime(n dag.NodeID, p int) int64 {
	w := s.g.Weight(n)
	if s.speed == nil {
		return w
	}
	return int64(math.Ceil(float64(w) / s.speed[p]))
}

// resize returns a slice of length n, reusing s's backing array when it
// has the capacity. Contents are unspecified; Reset overwrites every
// element.
func resize[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// pool recycles schedules between Acquire and Release so steady-state
// experiment cells reuse backing arrays instead of reallocating them.
var pool = sync.Pool{New: func() any { return new(Schedule) }}

// Acquire returns an empty schedule for g on numProcs processors,
// reusing a pooled one when available. Callers that are done with the
// schedule may hand it back with Release; keeping it forever is also
// fine — it just never returns to the pool.
func Acquire(g *dag.Graph, numProcs int) *Schedule {
	s := pool.Get().(*Schedule)
	s.Reset(g, numProcs)
	return s
}

// Release returns the schedule to the pool. The caller must not use s
// afterwards.
func (s *Schedule) Release() {
	if s == nil {
		return
	}
	s.g = nil // do not pin the graph while pooled
	pool.Put(s)
}

// Graph returns the task graph this schedule is for.
func (s *Schedule) Graph() *dag.Graph { return s.g }

// NumProcs returns the number of processors available to the schedule.
func (s *Schedule) NumProcs() int { return len(s.procs) }

// IsScheduled reports whether node n has been placed.
func (s *Schedule) IsScheduled(n dag.NodeID) bool { return s.proc[n] >= 0 }

// Complete reports whether every node has been placed.
func (s *Schedule) Complete() bool { return s.placed == s.g.NumNodes() }

// Placed returns the number of nodes placed so far.
func (s *Schedule) Placed() int { return s.placed }

// ProcOf returns the processor of node n, or -1 if unscheduled.
func (s *Schedule) ProcOf(n dag.NodeID) int { return int(s.proc[n]) }

// StartOf returns the start time of a scheduled node.
func (s *Schedule) StartOf(n dag.NodeID) int64 { return s.start[n] }

// FinishOf returns the finish time of a scheduled node.
func (s *Schedule) FinishOf(n dag.NodeID) int64 { return s.finish[n] }

// Slots returns the timeline of processor p, sorted by start time. The
// returned slice is shared with the schedule and must not be modified.
func (s *Schedule) Slots(p int) []Slot { return s.procs[p].Slots() }

// Place schedules node n on processor p starting at the given time. It
// returns an error if n is already scheduled, the processor index or
// start time is invalid, or the slot would overlap an existing one.
// Place does not verify precedence feasibility; use Validate or the EST
// helpers for that — heuristics deliberately query EST first.
func (s *Schedule) Place(n dag.NodeID, p int, start int64) error {
	if s.proc[n] >= 0 {
		return fmt.Errorf("sched: node %d already scheduled", n)
	}
	if p < 0 || p >= len(s.procs) {
		return fmt.Errorf("sched: processor %d out of range [0,%d)", p, len(s.procs))
	}
	if start < 0 {
		return fmt.Errorf("sched: negative start time %d for node %d", start, n)
	}
	finish := start + s.ExecTime(n, p)
	return s.commit(n, p, start, finish)
}

// PlaceFixed schedules node n on processor p over an explicit
// [start, finish) interval instead of deriving the duration from
// ExecTime. Repair passes use it to pin the realized prefix of an
// execution — finished tasks at their observed durations, running tasks
// at their committed finish times — before list-scheduling the
// unfinished suffix with the estimated durations. The availability mask
// does not apply: the interval is history, not a new decision. A
// zero-length interval is allowed (a task whose realized duration
// rounded to nothing).
func (s *Schedule) PlaceFixed(n dag.NodeID, p int, start, finish int64) error {
	if s.proc[n] >= 0 {
		return fmt.Errorf("sched: node %d already scheduled", n)
	}
	if p < 0 || p >= len(s.procs) {
		return fmt.Errorf("sched: processor %d out of range [0,%d)", p, len(s.procs))
	}
	if start < 0 {
		return fmt.Errorf("sched: negative start time %d for node %d", start, n)
	}
	if finish < start {
		return fmt.Errorf("sched: node %d finish %d before start %d", n, finish, start)
	}
	if err := s.commit(n, p, start, finish); err != nil {
		return err
	}
	s.hasFixed = true
	return nil
}

// commit inserts the slot and maintains every incremental structure:
// placement arrays, last-finish mirror, makespan, and the children's
// data-arrival cache rows.
func (s *Schedule) commit(n dag.NodeID, p int, start, finish int64) error {
	if t := obs.ActiveTracer(); t != nil && t.InRun() {
		// Before the insert: the record captures the pre-decision state.
		s.tracePlacement(t, n, p, start, finish)
	}
	if err := s.procs[p].Insert(Slot{Node: n, Start: start, Finish: finish}); err != nil {
		return fmt.Errorf("sched: node %d on P%d: %w", n, p, err)
	}
	s.proc[n] = int32(p)
	s.start[n] = start
	s.finish[n] = finish
	s.placed++
	if finish > s.lastFin[p] {
		s.lastFin[p] = finish
	}
	if finish > s.maxFin {
		s.maxFin = finish
	}
	// Fold the new arrival into each child's data-arrival cache.
	pp := int32(p)
	for _, a := range s.g.Succs(n) {
		c := a.To
		s.schedPreds[c]++
		if s.dirty[c] {
			continue // row will be rebuilt from scratch anyway
		}
		if finish > s.arrFin[c] {
			s.arrFin[c] = finish
		}
		arr := finish + a.Weight
		switch {
		case pp == s.arrP1[c]:
			if arr > s.arrM1[c] {
				s.arrM1[c] = arr
			}
		case arr > s.arrM1[c]:
			s.arrM2[c] = s.arrM1[c]
			s.arrM1[c] = arr
			s.arrP1[c] = pp
		case arr > s.arrM2[c]:
			s.arrM2[c] = arr
		}
	}
	return nil
}

// MustPlace is Place that panics on error; schedulers use it after they
// have computed a start time from an EST query, where failure indicates
// an algorithm bug rather than a user error.
func (s *Schedule) MustPlace(n dag.NodeID, p int, start int64) {
	if err := s.Place(n, p, start); err != nil {
		panic(err)
	}
}

// Unplace removes node n from the schedule so it can be migrated or the
// search can backtrack. It is a no-op for unscheduled nodes.
func (s *Schedule) Unplace(n dag.NodeID) {
	p := s.proc[n]
	if p < 0 {
		return
	}
	s.procs[p].Remove(n, s.start[n])
	s.lastFin[p] = s.procs[p].LastFinish()
	removed := s.finish[n]
	s.proc[n] = -1
	s.start[n] = 0
	s.finish[n] = 0
	s.placed--
	if removed == s.maxFin {
		s.maxFin = 0
		for _, f := range s.lastFin {
			if f > s.maxFin {
				s.maxFin = f
			}
		}
	}
	// Removing an arrival cannot be undone in O(1); mark each child's
	// cache row for a lazy rebuild.
	for _, a := range s.g.Succs(n) {
		s.schedPreds[a.To]--
		s.dirty[a.To] = true
	}
}

// Makespan returns the schedule length from the incrementally
// maintained cache: Place folds each new finish time into a running
// maximum over the last-finish mirror, so the query is O(1) instead of
// a scan over all processors. 0 for an empty schedule.
func (s *Schedule) Makespan() int64 { return s.maxFin }

// Length returns the schedule length (makespan): the latest finish time
// over all processors, 0 for an empty schedule.
func (s *Schedule) Length() int64 { return s.maxFin }

// ProcessorsUsed returns the number of processors with at least one task
// (paper section 6.4.2).
func (s *Schedule) ProcessorsUsed() int {
	used := 0
	for i := range s.procs {
		if s.procs[i].Len() > 0 {
			used++
		}
	}
	return used
}

// DataReadyTime returns the earliest time all of n's input data can be
// available on processor p: the max over parents of the parent's finish
// time plus the edge cost if the parent sits on a different processor.
// ok is false if some parent is not yet scheduled.
//
// The query is answered in O(1) from the incremental arrival cache.
// With M1 the maximum finish+comm over parents (on processor P1), M2
// the maximum over parents on other processors, and F the maximum bare
// finish: querying p != P1 yields M1 (every co-located parent's bare
// finish is dominated by its own finish+comm <= M1); querying p == P1
// removes P1's communication edge, leaving max(M2, F) — F is safe to
// take over all parents because a parent off p has bare finish <= its
// finish+comm <= M2.
func (s *Schedule) DataReadyTime(n dag.NodeID, p int) (drt int64, ok bool) {
	estQueries.Inc()
	if int(s.schedPreds[n]) != s.g.InDegree(n) {
		return 0, false
	}
	if s.dirty[n] {
		s.rebuildArrival(n)
	}
	if s.arrP1[n] != int32(p) {
		return s.arrM1[n], true
	}
	drt = s.arrM2[n]
	if f := s.arrFin[n]; f > drt {
		drt = f
	}
	return drt, true
}

// rebuildArrival recomputes node n's data-arrival cache row with one
// scan over its (fully scheduled) predecessors, after Unplace
// invalidated it.
func (s *Schedule) rebuildArrival(n dag.NodeID) {
	estRebuilds.Inc()
	var m1, m2, fmax int64
	p1 := int32(-1)
	for _, pr := range s.g.Preds(n) {
		f := s.finish[pr.To]
		if f > fmax {
			fmax = f
		}
		arr := f + pr.Weight
		pp := s.proc[pr.To]
		switch {
		case pp == p1:
			if arr > m1 {
				m1 = arr
			}
		case arr > m1:
			m2 = m1
			m1 = arr
			p1 = pp
		case arr > m2:
			m2 = arr
		}
	}
	s.arrM1[n] = m1
	s.arrP1[n] = p1
	s.arrM2[n] = m2
	s.arrFin[n] = fmax
	s.dirty[n] = false
}

// EnablingProc returns the processor choice that maximizes locality for
// DataReadyTime: the processor of the parent whose message arrives last
// (the "very important parent"). Scheduling n there removes that edge's
// cost. Returns -1 when n has no scheduled parents.
func (s *Schedule) EnablingProc(n dag.NodeID) int {
	best := -1
	var bestArrival int64 = -1
	for _, pr := range s.g.Preds(n) {
		pp := s.proc[pr.To]
		if pp < 0 {
			continue
		}
		arrival := s.finish[pr.To] + pr.Weight
		if arrival > bestArrival {
			bestArrival = arrival
			best = int(pp)
		}
	}
	return best
}

// ESTOn returns the earliest start time of node n on processor p.
// With insertion enabled the earliest sufficient idle gap at or after the
// data-ready time is used (MCP/ISH/DCP style); otherwise the node can
// only go after the last task on p (HLFET/ETF/DLS style). ok is false if
// a parent is unscheduled.
func (s *Schedule) ESTOn(n dag.NodeID, p int, insertion bool) (est int64, ok bool) {
	drt, ok := s.DataReadyTime(n, p)
	if !ok {
		return 0, false
	}
	if s.avail != nil {
		a := s.avail[p]
		if a == Never {
			// The sentinel propagates: an excluded processor has no
			// finite start time.
			return Never, true
		}
		if a > drt {
			drt = a
		}
	}
	if !insertion {
		// Non-insertion placement never looks at gaps; the open-ended
		// slot after the last task is read off the flat mirror.
		if lf := s.lastFin[p]; lf > drt {
			return lf, true
		}
		return drt, true
	}
	return s.procs[p].EarliestFit(drt, s.ExecTime(n, p), insertion), true
}

// BestEST returns the processor giving the smallest EST for n over all
// processors, breaking ties toward lower processor indices. ok is false
// if a parent is unscheduled. Under an availability mask, processors
// marked Never are skipped; when every processor is excluded the result
// is proc == -1 with ok still true.
func (s *Schedule) BestEST(n dag.NodeID, insertion bool) (proc int, est int64, ok bool) {
	if !insertion {
		return s.BestESTNonInsertion(n)
	}
	proc = -1
	for p := range s.procs {
		e, k := s.ESTOn(n, p, insertion)
		if !k {
			return -1, 0, false
		}
		if e == Never && s.avail != nil {
			continue
		}
		if proc == -1 || e < est {
			proc, est = p, e
		}
	}
	return proc, est, true
}

// BestESTNonInsertion is BestEST(n, false) on the fast path: the cached
// arrival row gives the data-ready time as one of two precomputed
// values (co-located with the dominant parent or not), so the scan over
// processors reduces to a tight loop over the flat last-finish array.
func (s *Schedule) BestESTNonInsertion(n dag.NodeID) (proc int, est int64, ok bool) {
	estQueries.Inc()
	if int(s.schedPreds[n]) != s.g.InDegree(n) {
		return -1, 0, false
	}
	if s.dirty[n] {
		s.rebuildArrival(n)
	}
	m1 := s.arrM1[n]
	p1 := int(s.arrP1[n])
	mloc := s.arrM2[n]
	if f := s.arrFin[n]; f > mloc {
		mloc = f
	}
	proc = -1
	for p, lf := range s.lastFin {
		drt := m1
		if p == p1 {
			drt = mloc
		}
		if lf > drt {
			drt = lf
		}
		if s.avail != nil {
			a := s.avail[p]
			if a == Never {
				continue
			}
			if a > drt {
				drt = a
			}
		}
		if proc == -1 || drt < est {
			proc, est = p, drt
		}
	}
	return proc, est, true
}

// Validate checks that the partial or complete schedule is consistent:
// every placed node's parents are placed, precedence plus communication
// delays are respected under the clique model, timelines are sorted and
// non-overlapping, and slot durations equal node weights.
func (s *Schedule) Validate() error {
	for p := range s.procs {
		if err := s.procs[p].Validate(); err != nil {
			return fmt.Errorf("sched: P%d: %w", p, err)
		}
		for _, sl := range s.procs[p].Slots() {
			if !s.hasFixed && sl.Finish-sl.Start != s.ExecTime(sl.Node, p) {
				// PlaceFixed commits observed durations, which legitimately
				// differ from the static execution-time estimate.
				return fmt.Errorf("sched: node %d duration %d != execution time %d",
					sl.Node, sl.Finish-sl.Start, s.ExecTime(sl.Node, p))
			}
			if s.proc[sl.Node] != int32(p) || s.start[sl.Node] != sl.Start {
				return fmt.Errorf("sched: node %d slot disagrees with placement arrays", sl.Node)
			}
		}
	}
	count := 0
	for v := 0; v < s.g.NumNodes(); v++ {
		n := dag.NodeID(v)
		if s.proc[n] < 0 {
			continue
		}
		count++
		for _, pr := range s.g.Preds(n) {
			if s.proc[pr.To] < 0 {
				return fmt.Errorf("sched: node %d scheduled before parent %d", n, pr.To)
			}
			arrival := s.finish[pr.To]
			if s.proc[pr.To] != s.proc[n] {
				arrival += pr.Weight
			}
			if s.start[n] < arrival {
				return fmt.Errorf("sched: node %d starts at %d before data from parent %d arrives at %d",
					n, s.start[n], pr.To, arrival)
			}
		}
	}
	if count != s.placed {
		return fmt.Errorf("sched: placed counter %d != %d placed nodes", s.placed, count)
	}
	return nil
}

// NSL returns the normalized schedule length: the makespan divided by the
// sum of computation costs on a critical path (paper section 6). Only
// meaningful for complete schedules; returns 0 when the denominator is 0.
func (s *Schedule) NSL() float64 {
	den := dag.CPComputationSum(s.g)
	if den == 0 {
		return 0
	}
	return float64(s.Length()) / float64(den)
}

// String renders the schedule as a compact per-processor listing, for
// debugging and the cmd tools.
func (s *Schedule) String() string {
	out := fmt.Sprintf("schedule length=%d procs=%d\n", s.Length(), s.ProcessorsUsed())
	for p := range s.procs {
		if s.procs[p].Len() == 0 {
			continue
		}
		out += fmt.Sprintf("P%d:", p)
		for _, sl := range s.procs[p].Slots() {
			out += fmt.Sprintf(" n%d[%d,%d)", sl.Node, sl.Start, sl.Finish)
		}
		out += "\n"
	}
	return out
}
