package sched

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dag"
)

// diamond: a(2) -1-> b(3) -2-> d(1); a -5-> c(4) -3-> d.
func diamond(t *testing.T) (*dag.Graph, [4]dag.NodeID) {
	t.Helper()
	b := dag.NewBuilder()
	na := b.AddLabeledNode(2, "a")
	nb := b.AddLabeledNode(3, "b")
	nc := b.AddLabeledNode(4, "c")
	nd := b.AddLabeledNode(1, "d")
	b.AddEdge(na, nb, 1)
	b.AddEdge(na, nc, 5)
	b.AddEdge(nb, nd, 2)
	b.AddEdge(nc, nd, 3)
	return b.MustBuild(), [4]dag.NodeID{na, nb, nc, nd}
}

func TestPlaceAndAccessors(t *testing.T) {
	g, ids := diamond(t)
	s := New(g, 2)
	if err := s.Place(ids[0], 0, 0); err != nil {
		t.Fatalf("Place: %v", err)
	}
	if !s.IsScheduled(ids[0]) || s.ProcOf(ids[0]) != 0 {
		t.Error("placement not recorded")
	}
	if s.StartOf(ids[0]) != 0 || s.FinishOf(ids[0]) != 2 {
		t.Errorf("start/finish = %d/%d, want 0/2", s.StartOf(ids[0]), s.FinishOf(ids[0]))
	}
	if s.Placed() != 1 || s.Complete() {
		t.Error("placed bookkeeping wrong")
	}
	if s.Length() != 2 {
		t.Errorf("Length = %d, want 2", s.Length())
	}
	if s.ProcessorsUsed() != 1 {
		t.Errorf("ProcessorsUsed = %d, want 1", s.ProcessorsUsed())
	}
}

func TestPlaceErrors(t *testing.T) {
	g, ids := diamond(t)
	s := New(g, 2)
	if err := s.Place(ids[0], 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Place(ids[0], 1, 5); err == nil {
		t.Error("double placement accepted")
	}
	if err := s.Place(ids[1], 5, 0); err == nil {
		t.Error("bad processor accepted")
	}
	if err := s.Place(ids[1], 0, -3); err == nil {
		t.Error("negative start accepted")
	}
	// a occupies [0,2) on P0; b for [1,4) overlaps.
	if err := s.Place(ids[1], 0, 1); err == nil {
		t.Error("overlapping slot accepted")
	}
	// Touching at the boundary is fine.
	if err := s.Place(ids[1], 0, 2); err != nil {
		t.Errorf("boundary placement rejected: %v", err)
	}
}

func TestOverlapAgainstLaterSlot(t *testing.T) {
	g, ids := diamond(t)
	s := New(g, 1)
	if err := s.Place(ids[1], 0, 10); err != nil { // b in [10,13)
		t.Fatal(err)
	}
	if err := s.Place(ids[0], 0, 9); err == nil { // a in [9,11) overlaps
		t.Error("overlap with later slot accepted")
	}
	if err := s.Place(ids[0], 0, 8); err != nil { // a in [8,10) touches
		t.Errorf("touching placement rejected: %v", err)
	}
}

func TestUnplace(t *testing.T) {
	g, ids := diamond(t)
	s := New(g, 2)
	s.MustPlace(ids[0], 0, 0)
	s.MustPlace(ids[1], 0, 2)
	s.Unplace(ids[0])
	if s.IsScheduled(ids[0]) {
		t.Error("node still scheduled after Unplace")
	}
	if s.Placed() != 1 {
		t.Errorf("Placed = %d, want 1", s.Placed())
	}
	// The freed interval can be reused.
	if err := s.Place(ids[2], 0, 0); err == nil {
		// c has weight 4: [0,4) overlaps b at [2,5)? b occupies [2,5).
		// So this must actually fail; re-check with a fitting start.
		t.Error("overlap after Unplace accepted")
	}
	s.Unplace(ids[3]) // no-op for unscheduled node
	if s.Placed() != 1 {
		t.Error("Unplace of unscheduled node changed counter")
	}
}

func TestDataReadyTime(t *testing.T) {
	g, ids := diamond(t)
	s := New(g, 2)
	s.MustPlace(ids[0], 0, 0) // a on P0, finish 2
	drt, ok := s.DataReadyTime(ids[1], 0)
	if !ok || drt != 2 {
		t.Errorf("DRT(b,P0) = %d,%v want 2,true (same proc, no comm)", drt, ok)
	}
	drt, ok = s.DataReadyTime(ids[1], 1)
	if !ok || drt != 3 {
		t.Errorf("DRT(b,P1) = %d,%v want 3,true (2 + c=1)", drt, ok)
	}
	if _, ok := s.DataReadyTime(ids[3], 0); ok {
		t.Error("DRT with unscheduled parents should not be ok")
	}
	// Entry node: DRT is 0 everywhere.
	s2 := New(g, 2)
	if drt, ok := s2.DataReadyTime(ids[0], 1); !ok || drt != 0 {
		t.Errorf("entry DRT = %d,%v want 0,true", drt, ok)
	}
}

func TestESTInsertionFindsGap(t *testing.T) {
	g, ids := diamond(t)
	s := New(g, 1)
	// Occupy [0,2) and [10,13): gap [2,10) of size 8.
	s.MustPlace(ids[0], 0, 0)
	s.MustPlace(ids[1], 0, 10)
	// c (weight 4, parent a on same proc -> drt 2).
	est, ok := s.ESTOn(ids[2], 0, true)
	if !ok || est != 2 {
		t.Errorf("insertion EST = %d,%v want 2,true", est, ok)
	}
	est, ok = s.ESTOn(ids[2], 0, false)
	if !ok || est != 13 {
		t.Errorf("non-insertion EST = %d,%v want 13,true", est, ok)
	}
}

func TestESTInsertionSkipsTooSmallGap(t *testing.T) {
	g, ids := diamond(t)
	s := New(g, 1)
	// a:[0,2), b:[5,8): gap [2,5) of size 3 < weight(c)=4.
	s.MustPlace(ids[0], 0, 0)
	s.MustPlace(ids[1], 0, 5)
	est, ok := s.ESTOn(ids[2], 0, true)
	if !ok || est != 8 {
		t.Errorf("EST = %d,%v want 8,true (gap too small)", est, ok)
	}
}

func TestESTGapConstrainedByReadyTime(t *testing.T) {
	g, ids := diamond(t)
	s := New(g, 2)
	s.MustPlace(ids[0], 1, 0) // a on P1, finish 2; crossing edge a->c costs 5.
	// On P0 c's drt is 2+5=7.
	est, ok := s.ESTOn(ids[2], 0, true)
	if !ok || est != 7 {
		t.Errorf("EST = %d,%v want 7,true", est, ok)
	}
}

func TestBestEST(t *testing.T) {
	g, ids := diamond(t)
	s := New(g, 3)
	s.MustPlace(ids[0], 0, 0)
	// b: on P0 drt=2 (no comm), on P1/P2 drt=3. P0 wins.
	p, est, ok := s.BestEST(ids[1], false)
	if !ok || p != 0 || est != 2 {
		t.Errorf("BestEST = P%d@%d,%v want P0@2,true", p, est, ok)
	}
	if _, _, ok := s.BestEST(ids[3], false); ok {
		t.Error("BestEST with unscheduled parents should not be ok")
	}
}

func TestEnablingProc(t *testing.T) {
	g, ids := diamond(t)
	s := New(g, 3)
	s.MustPlace(ids[0], 0, 0)
	s.MustPlace(ids[1], 1, 3) // b finishes 6, edge b->d = 2 -> arrival 8
	s.MustPlace(ids[2], 2, 7) // c finishes 11, edge c->d = 3 -> arrival 14
	if p := s.EnablingProc(ids[3]); p != 2 {
		t.Errorf("EnablingProc(d) = %d, want 2 (c's processor)", p)
	}
	if p := s.EnablingProc(ids[0]); p != -1 {
		t.Errorf("EnablingProc(entry) = %d, want -1", p)
	}
}

func TestValidateAcceptsHandSchedule(t *testing.T) {
	g, ids := diamond(t)
	s := New(g, 2)
	s.MustPlace(ids[0], 0, 0)  // a [0,2) P0
	s.MustPlace(ids[1], 0, 2)  // b [2,5) P0 (same proc, drt 2)
	s.MustPlace(ids[2], 1, 7)  // c [7,11) P1 (drt 2+5)
	s.MustPlace(ids[3], 1, 14) // d [14,15) P1 (b cross 5+2=7, c local 11 -> 14? c local=11, b arrives 7; want >= 11)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !s.Complete() {
		t.Error("schedule should be complete")
	}
	if s.Length() != 15 {
		t.Errorf("Length = %d, want 15", s.Length())
	}
}

func TestValidateRejectsPrecedenceViolation(t *testing.T) {
	g, ids := diamond(t)
	s := New(g, 2)
	s.MustPlace(ids[0], 0, 0) // a finishes 2
	s.MustPlace(ids[1], 1, 2) // b on P1 starts 2 < 2+c(1)=3
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted early cross-processor start")
	}
}

func TestValidateRejectsChildBeforeParentScheduled(t *testing.T) {
	g, ids := diamond(t)
	s := New(g, 2)
	s.MustPlace(ids[1], 0, 0) // b placed, parent a is not
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted child without scheduled parent")
	}
}

func TestNSL(t *testing.T) {
	g, ids := diamond(t)
	s := New(g, 1)
	// Serial schedule on one processor: length 10 (sum of weights).
	s.MustPlace(ids[0], 0, 0)
	s.MustPlace(ids[1], 0, 2)
	s.MustPlace(ids[2], 0, 5)
	s.MustPlace(ids[3], 0, 9)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// CP computation sum = 7 (a,c,d); NSL = 10/7.
	if nsl := s.NSL(); nsl < 10.0/7-1e-9 || nsl > 10.0/7+1e-9 {
		t.Errorf("NSL = %v, want %v", nsl, 10.0/7)
	}
}

func TestStringOutput(t *testing.T) {
	g, ids := diamond(t)
	s := New(g, 2)
	s.MustPlace(ids[0], 1, 0)
	str := s.String()
	if !strings.Contains(str, "P1:") || !strings.Contains(str, "n0[0,2)") {
		t.Errorf("String output unexpected:\n%s", str)
	}
}

func TestMinProcsClamped(t *testing.T) {
	g, _ := diamond(t)
	s := New(g, 0)
	if s.NumProcs() != 1 {
		t.Errorf("NumProcs = %d, want clamp to 1", s.NumProcs())
	}
}

// TestRandomScheduleValidates drives random (but legal) list scheduling
// and checks Validate accepts every intermediate state.
func TestRandomScheduleValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 2+rng.Intn(25))
		s := New(g, 1+rng.Intn(4))
		for _, n := range g.TopoOrder() {
			insertion := rng.Intn(2) == 0
			p, est, ok := s.BestEST(n, insertion)
			if !ok {
				t.Fatal("BestEST failed in topo order")
			}
			s.MustPlace(n, p, est)
			if err := s.Validate(); err != nil {
				t.Fatalf("intermediate validate: %v", err)
			}
		}
		if !s.Complete() {
			t.Fatal("schedule incomplete after placing all nodes")
		}
		if s.NSL() < 1.0-1e-9 {
			t.Fatalf("NSL %v < 1", s.NSL())
		}
	}
}

func randomGraph(rng *rand.Rand, n int) *dag.Graph {
	b := dag.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(1 + rng.Int63n(30))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(4) == 0 {
				b.AddEdge(dag.NodeID(i), dag.NodeID(j), rng.Int63n(40))
			}
		}
	}
	return b.MustBuild()
}
