package sched

import (
	"repro/internal/dag"
	"repro/internal/obs"
)

// EST-cache metrics: queries answered and cache rows rebuilt. The
// difference is the number of O(1) fast-path answers the incremental
// arrival cache served without a predecessor scan.
var (
	estQueries  = obs.NewCounter("sched.est.query")
	estRebuilds = obs.NewCounter("sched.est.rebuild")
)

// traceCandidateCap bounds the candidate processors recorded per
// placement: the UNC class runs with one processor per node, and a
// million-node trace recording a million ESTs per record would be
// useless as well as enormous. The cap matches the BNPProcs ceiling, so
// every bounded-processor run records its full candidate set.
const traceCandidateCap = 32

// tracePlacement emits the decision record for an imminent commit. It
// runs before the slot is inserted, so the candidate ESTs are exactly
// the values the scheduler could have seen when it chose; everything it
// reads is a query, so tracing cannot change the schedule.
func (s *Schedule) tracePlacement(t *obs.Tracer, n dag.NodeID, p int, start, finish int64) {
	// A start before the processor's last finish means the slot went
	// into an idle gap: an insertion placement.
	insertion := start < s.lastFin[p]
	cands := t.CandidateBuf()
	np := len(s.procs)
	if np > traceCandidateCap {
		np = traceCandidateCap
	}
	for q := 0; q < np; q++ {
		est, ok := s.ESTOn(n, q, insertion)
		if !ok {
			// Cluster-class schedulers may place a node before all its
			// parents; there is no candidate set to report then.
			cands = cands[:0]
			break
		}
		cands = append(cands, obs.Candidate{Proc: int32(q), EST: est})
	}
	t.Placement(int32(n), int32(p), start, finish, insertion, cands)
}
