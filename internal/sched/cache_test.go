package sched

import (
	"math/rand"
	"testing"

	"repro/internal/dag"
)

// This file pins the incremental data-arrival cache to the definition
// it replaces: a full predecessor scan per query. Random graphs are
// scheduled with random interleavings of Place, Unplace, and queries,
// and every cached answer must equal the scan's.

// scanDataReadyTime is the pre-cache reference implementation of
// DataReadyTime, written against the public placement accessors only.
func scanDataReadyTime(s *Schedule, g *dag.Graph, n dag.NodeID, p int) (int64, bool) {
	var drt int64
	for _, pr := range g.Preds(n) {
		if !s.IsScheduled(pr.To) {
			return 0, false
		}
		arrival := s.FinishOf(pr.To)
		if s.ProcOf(pr.To) != p {
			arrival += pr.Weight
		}
		if arrival > drt {
			drt = arrival
		}
	}
	return drt, true
}

// scanBestESTNonInsertion is the pre-cache reference for
// BestEST(n, false): minimum over processors of max(scan DRT, last
// finish), ties toward lower indices.
func scanBestESTNonInsertion(s *Schedule, g *dag.Graph, n dag.NodeID) (int, int64, bool) {
	proc := -1
	var best int64
	for p := 0; p < s.NumProcs(); p++ {
		drt, ok := scanDataReadyTime(s, g, n, p)
		if !ok {
			return -1, 0, false
		}
		var last int64
		if slots := s.Slots(p); len(slots) > 0 {
			last = slots[len(slots)-1].Finish
		}
		if last > drt {
			drt = last
		}
		if proc == -1 || drt < best {
			proc, best = p, drt
		}
	}
	return proc, best, true
}

func randomTestGraph(rng *rand.Rand, n int) *dag.Graph {
	b := dag.NewBuilder()
	for i := 0; i < n; i++ {
		// Positive weights: zero-duration slots cannot always be
		// re-inserted at the same position (a pre-existing Timeline
		// quirk), which would break the backtracking exercise below.
		// Zero-weight arrival math is covered by
		// TestArrivalCacheZeroWeights.
		b.AddNode(1 + int64(rng.Intn(9)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Intn(4) == 0 {
				b.AddEdge(dag.NodeID(u), dag.NodeID(v), int64(rng.Intn(15)))
			}
		}
	}
	return b.MustBuild()
}

// TestArrivalCacheZeroWeights pins the cache's edge cases around
// zero-cost nodes and edges, where every arrival can be 0 and the
// dominant-processor slot of the cache never fills in.
func TestArrivalCacheZeroWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		b := dag.NewBuilder()
		n := 16
		for i := 0; i < n; i++ {
			b.AddNode(int64(rng.Intn(3))) // zero-weight nodes included
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(3) == 0 {
					b.AddEdge(dag.NodeID(u), dag.NodeID(v), int64(rng.Intn(3)))
				}
			}
		}
		g := b.MustBuild()
		s := New(g, 1+rng.Intn(4))
		for _, node := range g.TopoOrder() {
			checkAllQueries(t, s, g)
			p := rng.Intn(s.NumProcs())
			est, ok := s.ESTOn(node, p, false)
			if !ok {
				t.Fatalf("ESTOn failed for node %d in topo order", node)
			}
			// Zero-duration slots can block the exact EST position (a
			// pre-existing Timeline degeneracy, same in the scan-based
			// code); any start >= EST keeps precedence valid and is
			// just as good for exercising the cache.
			for s.Place(node, p, est) != nil {
				est++
			}
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// checkAllQueries compares every (node, processor) cache answer with
// the scan reference on the current partial schedule.
func checkAllQueries(t *testing.T, s *Schedule, g *dag.Graph) {
	t.Helper()
	for v := 0; v < g.NumNodes(); v++ {
		n := dag.NodeID(v)
		if s.IsScheduled(n) {
			continue
		}
		for p := 0; p < s.NumProcs(); p++ {
			want, wantOK := scanDataReadyTime(s, g, n, p)
			got, gotOK := s.DataReadyTime(n, p)
			if got != want || gotOK != wantOK {
				t.Fatalf("DataReadyTime(n%d, P%d) = (%d,%v), scan says (%d,%v)",
					n, p, got, gotOK, want, wantOK)
			}
		}
		wp, we, wok := scanBestESTNonInsertion(s, g, n)
		gp, ge, gok := s.BestESTNonInsertion(n)
		if gp != wp || ge != we || gok != wok {
			t.Fatalf("BestESTNonInsertion(n%d) = (P%d,%d,%v), scan says (P%d,%d,%v)",
				n, gp, ge, gok, wp, we, wok)
		}
	}
}

func TestArrivalCacheMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		g := randomTestGraph(rng, 24)
		s := New(g, 1+rng.Intn(5))
		var placed []dag.NodeID
		for _, n := range g.TopoOrder() {
			// Occasionally backtrack: unplace a node with no scheduled
			// children (reverse placement order guarantees that), then
			// re-place it, exercising the dirty-rebuild path.
			if len(placed) > 0 && rng.Intn(3) == 0 {
				victim := placed[len(placed)-1]
				vp, vs := s.ProcOf(victim), s.StartOf(victim)
				s.Unplace(victim)
				checkAllQueries(t, s, g)
				s.MustPlace(victim, vp, vs)
			}
			p := rng.Intn(s.NumProcs())
			est, ok := s.ESTOn(n, p, rng.Intn(2) == 0)
			if !ok {
				t.Fatalf("ESTOn failed for node %d in topo order", n)
			}
			s.MustPlace(n, p, est)
			placed = append(placed, n)
			if rng.Intn(2) == 0 {
				checkAllQueries(t, s, g)
			}
		}
		checkAllQueries(t, s, g)
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestResetReusesCleanState runs a schedule, resets it onto a second
// graph, and verifies the reset schedule behaves exactly like a fresh
// one on every query.
func TestResetReusesCleanState(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g1 := randomTestGraph(rng, 20)
	g2 := randomTestGraph(rng, 28)
	s := New(g1, 4)
	for _, n := range g1.TopoOrder() {
		p, est, ok := s.BestEST(n, false)
		if !ok {
			t.Fatal("BestEST failed in topo order")
		}
		s.MustPlace(n, p, est)
	}
	s.Reset(g2, 3)
	fresh := New(g2, 3)
	if s.Placed() != 0 || s.Length() != 0 {
		t.Fatalf("reset schedule not empty: placed=%d length=%d", s.Placed(), s.Length())
	}
	for _, n := range g2.TopoOrder() {
		checkAllQueries(t, s, g2)
		p, est, ok := s.BestEST(n, true)
		fp, fe, fok := fresh.BestEST(n, true)
		if p != fp || est != fe || ok != fok {
			t.Fatalf("reset schedule diverges from fresh at node %d: (P%d,%d,%v) vs (P%d,%d,%v)",
				n, p, est, ok, fp, fe, fok)
		}
		s.MustPlace(n, p, est)
		fresh.MustPlace(n, fp, fe)
	}
	if s.String() != fresh.String() {
		t.Fatalf("reset schedule produced different bytes:\n%s\nvs fresh:\n%s", s, fresh)
	}
}

// TestAcquireReleaseRoundTrip exercises the pool path.
func TestAcquireReleaseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomTestGraph(rng, 16)
	want := ""
	for round := 0; round < 5; round++ {
		s := Acquire(g, 4)
		for _, n := range g.TopoOrder() {
			p, est, ok := s.BestEST(n, false)
			if !ok {
				t.Fatal("BestEST failed")
			}
			s.MustPlace(n, p, est)
		}
		got := s.String()
		if round == 0 {
			want = got
		} else if got != want {
			t.Fatalf("round %d produced different schedule:\n%s\nwant:\n%s", round, got, want)
		}
		s.Release()
	}
}

// TestScheduleSteadyStateAllocs pins the zero-allocation property of
// the scheduling hot path: once a schedule has been through one run,
// Reset + a full place loop with non-insertion EST queries must not
// allocate at all.
func TestScheduleSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomTestGraph(rng, 40)
	topo := g.TopoOrder()
	s := New(g, 8)
	run := func() {
		s.Reset(g, 8)
		for _, n := range topo {
			p, est, ok := s.BestESTNonInsertion(n)
			if !ok {
				t.Fatal("BestESTNonInsertion failed")
			}
			s.MustPlace(n, p, est)
		}
	}
	run() // warm the slot capacities
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Errorf("steady-state place loop allocates %.1f objects per run, want 0", allocs)
	}
}
