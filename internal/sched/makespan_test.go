package sched

import (
	"math/rand"
	"testing"

	"repro/internal/dag"
)

// scanMakespan recomputes the makespan the slow way, straight from the
// timelines, as the oracle for the cached value.
func scanMakespan(s *Schedule) int64 {
	var max int64
	for p := 0; p < s.NumProcs(); p++ {
		for _, sl := range s.Slots(p) {
			if sl.Finish > max {
				max = sl.Finish
			}
		}
	}
	return max
}

// TestMakespanCache drives a random place/unplace sequence and checks
// the O(1) cached makespan against a full timeline scan after every
// mutation — including removals of the task that carried the maximum.
func TestMakespanCache(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := dag.NewBuilder()
	const n = 40
	for i := 0; i < n; i++ {
		b.AddNode(int64(1 + rng.Intn(20)))
	}
	// A sparse chain keeps placements precedence-free so the test can
	// place and remove in any order.
	g := b.MustBuild()
	s := New(g, 6)
	if s.Makespan() != 0 {
		t.Fatalf("empty schedule Makespan = %d", s.Makespan())
	}
	placed := map[dag.NodeID]bool{}
	for step := 0; step < 400; step++ {
		node := dag.NodeID(rng.Intn(n))
		if placed[node] && rng.Intn(3) == 0 {
			s.Unplace(node)
			delete(placed, node)
		} else if !placed[node] {
			p := rng.Intn(6)
			est, ok := s.ESTOn(node, p, false)
			if !ok {
				continue
			}
			s.MustPlace(node, p, est)
			placed[node] = true
		}
		if got, want := s.Makespan(), scanMakespan(s); got != want {
			t.Fatalf("step %d: cached Makespan %d != scanned %d", step, got, want)
		}
		if s.Length() != s.Makespan() {
			t.Fatalf("Length %d disagrees with Makespan %d", s.Length(), s.Makespan())
		}
	}
	// Reset must clear the cache.
	s.Reset(g, 4)
	if s.Makespan() != 0 {
		t.Errorf("Makespan after Reset = %d, want 0", s.Makespan())
	}
}
