package gen

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dag"
)

// graphBytes renders a graph in the text exchange format, the byte-level
// identity used by the determinism tests.
func graphBytes(t *testing.T, g *dag.Graph) string {
	t.Helper()
	var sb strings.Builder
	if err := dag.WriteText(&sb, g); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// weakComponents counts the weakly connected components of g.
func weakComponents(g *dag.Graph) int {
	n := g.NumNodes()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for u := 0; u < n; u++ {
		for _, a := range g.Succs(dag.NodeID(u)) {
			ru, rv := find(u), find(int(a.To))
			if ru != rv {
				parent[ru] = rv
			}
		}
	}
	comps := 0
	for i := 0; i < n; i++ {
		if find(i) == i {
			comps++
		}
	}
	return comps
}

func TestRegistryHasAllFamilies(t *testing.T) {
	want := []string{
		"cholesky", "erdos", "faninout", "fft", "gauss",
		"layered", "lu", "psg", "rgbos", "rgnos", "rgpos",
	}
	names := GeneratorNames()
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("registry missing generator %q (have %v)", w, names)
		}
	}
	gens := Generators()
	for i := 1; i < len(gens); i++ {
		if gens[i-1].Name >= gens[i].Name {
			t.Errorf("Generators() not sorted: %q before %q", gens[i-1].Name, gens[i].Name)
		}
	}
	for _, g := range gens {
		if g.Doc == "" || g.Source == "" {
			t.Errorf("%s: missing Doc or Source", g.Name)
		}
	}
}

func TestRandomFamiliesDeclareSizeAndCCR(t *testing.T) {
	fams := RandomFamilies()
	if len(fams) < 4 {
		t.Fatalf("only %d random families registered, want >= 4", len(fams))
	}
	for _, f := range fams {
		if _, err := Generate(f.Name, 3, Params{"v": "30", "ccr": "1"}); err != nil {
			t.Errorf("%s: Generate(v=30, ccr=1): %v", f.Name, err)
		}
	}
}

// TestGenerateDeterministic checks the registry's central contract: the
// same (name, seed, params) yields byte-identical text-format output,
// and a different seed yields a different graph for the random families.
func TestGenerateDeterministic(t *testing.T) {
	for _, g := range Generators() {
		if g.Name == "psg" {
			continue // fixed graphs, selected by name
		}
		p := Params{}
		if g.Random {
			p["v"] = "40"
		}
		a, err := Generate(g.Name, 11, p)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		b, err := Generate(g.Name, 11, p)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if ba, bb := graphBytes(t, a), graphBytes(t, b); ba != bb {
			t.Errorf("%s: same seed produced different graphs", g.Name)
		}
		if !g.Random {
			continue
		}
		c, err := Generate(g.Name, 12, p)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if graphBytes(t, a) == graphBytes(t, c) {
			t.Errorf("%s: seeds 11 and 12 produced identical graphs (suspicious)", g.Name)
		}
	}
}

// TestGenerateValid checks structural validity (which includes
// acyclicity) for every family over a parameter spread.
func TestGenerateValid(t *testing.T) {
	for _, g := range Generators() {
		if g.Name == "psg" {
			continue // covered by TestPeerSetSuite
		}
		for seed := int64(1); seed <= 3; seed++ {
			p := Params{}
			if g.Random {
				p["v"] = "60"
			}
			built, err := Generate(g.Name, seed, p)
			if err != nil {
				t.Fatalf("%s seed %d: %v", g.Name, seed, err)
			}
			if err := built.Validate(); err != nil {
				t.Errorf("%s seed %d: %v", g.Name, seed, err)
			}
			if g.Random && built.NumNodes() != 60 {
				t.Errorf("%s seed %d: %d nodes, want 60", g.Name, seed, built.NumNodes())
			}
		}
	}
}

func TestConnectOptionHonored(t *testing.T) {
	for _, name := range []string{"layered", "erdos"} {
		for seed := int64(1); seed <= 5; seed++ {
			// Sparse settings that would typically leave isolated nodes.
			g, err := Generate(name, seed, Params{"v": "80", "p": "0.02", "connect": "true"})
			if err != nil {
				t.Fatal(err)
			}
			if c := weakComponents(g); c != 1 {
				t.Errorf("%s seed %d: connect=true left %d components", name, seed, c)
			}
		}
	}
	// connect=false must leave the raw structure alone: at p=0 the graph
	// is v isolated nodes.
	g, err := Generate("erdos", 1, Params{"v": "10", "p": "0", "connect": "false"})
	if err != nil {
		t.Fatal(err)
	}
	if c := weakComponents(g); c != 10 {
		t.Errorf("connect=false with p=0: %d components, want 10", c)
	}
	// faninout grows from a single root, so it is always one component.
	g, err = Generate("faninout", 4, Params{"v": "80"})
	if err != nil {
		t.Fatal(err)
	}
	if c := weakComponents(g); c != 1 {
		t.Errorf("faninout: %d components, want 1 by construction", c)
	}
}

// TestFamiliesCCRAccuracy checks that the realized CCR of every random
// family tracks the requested one within the suite tolerance (factor 2,
// as for the original RGBOS test).
func TestFamiliesCCRAccuracy(t *testing.T) {
	for _, f := range RandomFamilies() {
		for _, ccr := range []float64{0.1, 1.0, 10.0} {
			var total float64
			n := 0
			for seed := int64(1); seed <= 5; seed++ {
				g, err := Generate(f.Name, seed, Params{"v": "100", "ccr": floatText(ccr)})
				if err != nil {
					t.Fatal(err)
				}
				if g.NumEdges() == 0 {
					continue
				}
				total += g.CCR()
				n++
			}
			if n == 0 {
				t.Fatalf("%s ccr=%g: no instances with edges", f.Name, ccr)
			}
			avg := total / float64(n)
			if avg < ccr/2 || avg > ccr*2 {
				t.Errorf("%s: requested CCR %g, measured average %.3f (off by more than 2x)", f.Name, ccr, avg)
			}
		}
	}
}

func floatText(f float64) string {
	switch f {
	case 0.1:
		return "0.1"
	case 1.0:
		return "1"
	case 10.0:
		return "10"
	}
	return "1"
}

// isGraded reports whether a layer assignment exists in which every
// edge joins consecutive layers: labels are propagated over the
// undirected structure (+1 along an edge, -1 against it) and any
// contradiction falsifies the property.
func isGraded(g *dag.Graph) bool {
	n := g.NumNodes()
	label := make([]int, n)
	seen := make([]bool, n)
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		seen[start] = true
		queue := []int{start}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, a := range g.Succs(dag.NodeID(u)) {
				if !seen[a.To] {
					seen[a.To] = true
					label[a.To] = label[u] + 1
					queue = append(queue, int(a.To))
				} else if label[a.To] != label[u]+1 {
					return false
				}
			}
			for _, a := range g.Preds(dag.NodeID(u)) {
				if !seen[a.To] {
					seen[a.To] = true
					label[a.To] = label[u] - 1
					queue = append(queue, int(a.To))
				} else if label[a.To] != label[u]-1 {
					return false
				}
			}
		}
	}
	return true
}

// TestLayeredConnectKeepsLayering checks that the connect option's
// stitch edges respect the family's consecutive-layer invariant: the
// connected result must still admit a layer assignment in which every
// edge spans exactly one layer.
func TestLayeredConnectKeepsLayering(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		g, err := Generate("layered", seed, Params{"v": "80", "p": "0.02", "connect": "true"})
		if err != nil {
			t.Fatal(err)
		}
		if c := weakComponents(g); c != 1 {
			t.Errorf("seed %d: %d components, want 1", seed, c)
		}
		if !isGraded(g) {
			t.Errorf("seed %d: connect broke the consecutive-layer structure", seed)
		}
	}
	// A single-layer graph of several nodes admits no legal stitch, so
	// requesting connect must be an explicit error, while connect=false
	// keeps the degenerate edge-free graph available.
	if _, err := Generate("layered", 3, Params{"v": "5", "layers": "1", "connect": "true"}); err == nil {
		t.Error("connect=true with a single layer should error")
	}
	g, err := Generate("layered", 3, Params{"v": "5", "layers": "1", "connect": "false"})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Errorf("single-layer graph has %d edges, want 0", g.NumEdges())
	}
	// Tiny graphs must still connect: auto layer selection and the
	// layer-assignment draw may not leave a single non-empty layer.
	for seed := int64(1); seed <= 20; seed++ {
		g, err := Generate("layered", seed, Params{"v": "2"})
		if err != nil {
			t.Fatal(err)
		}
		if c := weakComponents(g); c != 1 {
			t.Errorf("seed %d: v=2 layered graph has %d components, want 1", seed, c)
		}
	}
}

func TestRegisterRejectsReservedParamNames(t *testing.T) {
	for _, reserved := range []string{"suite", "seed", "list", "h", "help"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register accepted reserved parameter name %q", reserved)
				}
			}()
			Register(Generator{
				Name:   "bad-" + reserved,
				Doc:    "x",
				Source: "x",
				Params: []ParamSpec{{Name: reserved, Kind: IntParam, Default: "1"}},
				Fn:     func(int64, Resolved) (*dag.Graph, error) { return nil, nil },
			})
		}()
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate("no-such-family", 1, nil); err == nil {
		t.Error("unknown generator accepted")
	}
	if _, err := Generate("rgbos", 1, Params{"parallelism": "3"}); err == nil {
		t.Error("rgbos accepted a parameter it does not declare")
	}
	if _, err := Generate("rgbos", 1, Params{"v": "many"}); err == nil {
		t.Error("malformed int parameter accepted")
	}
	if _, err := Generate("erdos", 1, Params{"p": "1.5"}); err == nil {
		t.Error("out-of-range edge probability accepted")
	}
	if _, err := Generate("erdos", 1, Params{"connect": "maybe"}); err == nil {
		t.Error("malformed bool parameter accepted")
	}
	if _, err := Generate("psg", 1, nil); err == nil {
		t.Error("psg with no name should error (and list the names)")
	} else if !strings.Contains(err.Error(), "kwok-ahmad-9") {
		t.Errorf("psg listing error does not name the graphs: %v", err)
	}
	if _, err := Generate("psg", 1, Params{"name": "kwok-ahmad-9"}); err != nil {
		t.Errorf("psg by name: %v", err)
	}
}

func TestLUStructure(t *testing.T) {
	// Task count: sum over k of 1 + 2(n-k) + (n-k)^2.
	for _, n := range []int{1, 2, 3, 5} {
		g, err := LU(n, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for k := 1; k <= n; k++ {
			m := n - k
			want += 1 + 2*m + m*m
		}
		if g.NumNodes() != want {
			t.Errorf("LU(%d) has %d tasks, want %d", n, g.NumNodes(), want)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		entries, exits := g.Entries(), g.Exits()
		if len(entries) != 1 || g.Label(entries[0]) != "lu1" {
			t.Errorf("LU(%d): entries %v, want only lu1", n, entries)
		}
		if len(exits) != 1 {
			t.Errorf("LU(%d): %d exits, want the final factorization only", n, len(exits))
		}
	}
	if _, err := LU(0, 1.0); err == nil {
		t.Error("LU accepted n=0")
	}
}

func TestLayerByLayerShape(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, err := LayerByLayer(rng, 100, 10, 0.3, 1.0, true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 100 {
		t.Errorf("node count %d, want 100", g.NumNodes())
	}
	// With ~10 nodes per layer and only consecutive-layer edges, depth is
	// bounded by the layer count.
	lv := dag.ComputeLevels(g)
	_ = lv
	if w := dag.Width(g); w < 5 {
		t.Errorf("width %d suspiciously small for 10-layer construction", w)
	}
	if _, err := LayerByLayer(rng, 0, 0, 0.5, 1, true); err == nil {
		t.Error("accepted v=0")
	}
	if _, err := LayerByLayer(rng, 10, 0, 1.5, 1, true); err == nil {
		t.Error("accepted p>1")
	}
}

func TestFanInFanOutDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g, err := FanInFanOut(rng, 200, 4, 3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 200 {
		t.Fatalf("node count %d, want 200", g.NumNodes())
	}
	// Fan-out children get exactly one parent and fan-in joins at most
	// maxin, so in-degree is hard-bounded by maxin. (Out-degree is not: a
	// node can be picked for fan-out repeatedly.)
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.InDegree(dag.NodeID(v)); d > 3 {
			t.Fatalf("node %d has in-degree %d, want <= maxin=3", v, d)
		}
	}
	if _, err := FanInFanOut(rng, 10, 0, 1, 1); err == nil {
		t.Error("accepted maxout=0")
	}
}
