package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/dag"
)

// The shape generators below produce the special-structure graphs that
// the paper's taxonomy (section 4) identifies as the restricted cases
// earlier algorithms were built for: trees, fork-joins, and chains. They
// feed the examples and the ablation benchmarks.

// OutTree builds a complete out-tree (every node spawns `branch`
// children) of the given depth. Costs are drawn from the suite
// distributions with the given CCR.
func OutTree(rng *rand.Rand, depth, branch int, ccr float64) (*dag.Graph, error) {
	if depth < 1 || branch < 1 {
		return nil, fmt.Errorf("gen: OutTree needs depth, branch >= 1 (got %d, %d)", depth, branch)
	}
	b := dag.NewBuilder()
	cm := commMean(ccr)
	level := []dag.NodeID{b.AddNode(uniformCost(rng, meanNodeCost, 2))}
	for d := 1; d < depth; d++ {
		var next []dag.NodeID
		for _, parent := range level {
			for c := 0; c < branch; c++ {
				child := b.AddNode(uniformCost(rng, meanNodeCost, 2))
				b.AddEdge(parent, child, uniformCost(rng, cm, 1))
				next = append(next, child)
			}
		}
		level = next
	}
	return b.Build()
}

// InTree builds the mirror image of OutTree: leaves reduce toward a
// single root, the classic join-dominated workload.
func InTree(rng *rand.Rand, depth, branch int, ccr float64) (*dag.Graph, error) {
	if depth < 1 || branch < 1 {
		return nil, fmt.Errorf("gen: InTree needs depth, branch >= 1 (got %d, %d)", depth, branch)
	}
	b := dag.NewBuilder()
	cm := commMean(ccr)
	// Width of the leaf level.
	width := 1
	for d := 1; d < depth; d++ {
		width *= branch
	}
	level := make([]dag.NodeID, width)
	for i := range level {
		level[i] = b.AddNode(uniformCost(rng, meanNodeCost, 2))
	}
	for len(level) > 1 {
		var next []dag.NodeID
		for i := 0; i < len(level); i += branch {
			parent := b.AddNode(uniformCost(rng, meanNodeCost, 2))
			for j := i; j < i+branch && j < len(level); j++ {
				b.AddEdge(level[j], parent, uniformCost(rng, cm, 1))
			}
			next = append(next, parent)
		}
		level = next
	}
	return b.Build()
}

// ForkJoin builds `stages` consecutive fork-join diamonds of the given
// width — the prototypical data-parallel loop nest.
func ForkJoin(rng *rand.Rand, stages, width int, ccr float64) (*dag.Graph, error) {
	if stages < 1 || width < 1 {
		return nil, fmt.Errorf("gen: ForkJoin needs stages, width >= 1 (got %d, %d)", stages, width)
	}
	b := dag.NewBuilder()
	cm := commMean(ccr)
	join := b.AddNode(uniformCost(rng, meanNodeCost, 2))
	for s := 0; s < stages; s++ {
		fork := join
		join = b.AddNode(uniformCost(rng, meanNodeCost, 2))
		for w := 0; w < width; w++ {
			mid := b.AddNode(uniformCost(rng, meanNodeCost, 2))
			b.AddEdge(fork, mid, uniformCost(rng, cm, 1))
			b.AddEdge(mid, join, uniformCost(rng, cm, 1))
		}
	}
	return b.Build()
}

// Chain builds a linear pipeline of the given length.
func Chain(rng *rand.Rand, length int, ccr float64) (*dag.Graph, error) {
	if length < 1 {
		return nil, fmt.Errorf("gen: Chain needs length >= 1, got %d", length)
	}
	b := dag.NewBuilder()
	cm := commMean(ccr)
	prev := b.AddNode(uniformCost(rng, meanNodeCost, 2))
	for i := 1; i < length; i++ {
		n := b.AddNode(uniformCost(rng, meanNodeCost, 2))
		b.AddEdge(prev, n, uniformCost(rng, cm, 1))
		prev = n
	}
	return b.Build()
}
