package gen

import (
	"math"
	"strconv"
	"testing"
)

// fuzzParamsFor derives an in-schema parameter set for g from raw fuzz
// inputs: every declared parameter gets a value clamped into its
// declared bounds (open sides use small finite caps so fuzzing stays
// fast — large-instance behavior is the scaling benchmarks' job, not
// the fuzzer's).
func fuzzParamsFor(g Generator, i1, i2 int64, f1, f2 float64, flip bool) Params {
	// fuzzCap bounds unb- or wide-bounded int parameters so a single
	// fuzz execution never builds a huge graph.
	const fuzzCap = 48
	p := Params{}
	ints := [2]int64{i1, i2}
	floats := [2]float64{f1, f2}
	ii, fi := 0, 0
	for _, ps := range g.Params {
		switch ps.Kind {
		case IntParam:
			lo, hi := intBounds(ps)
			if hi > fuzzCap {
				hi = fuzzCap
			}
			if hi < lo {
				hi = lo
			}
			raw := ints[ii%2]
			ii++
			span := uint64(hi-lo) + 1
			// Unsigned conversion handles math.MinInt64, which negation
			// cannot.
			p[ps.Name] = strconv.Itoa(lo + int(uint64(raw)%span))
		case FloatParam:
			lo, hi := floatBounds(ps)
			if hi > 100 {
				hi = 100
			}
			if hi < lo {
				hi = lo
			}
			raw := floats[fi%2]
			fi++
			p[ps.Name] = FormatFloatParam(foldIntoRange(raw, lo, hi))
		case BoolParam:
			if flip {
				p[ps.Name] = "true"
			} else {
				p[ps.Name] = "false"
			}
		case StringParam:
			// The only string parameter in the registry is psg's graph
			// name; exercise both a valid name and the error path.
			if flip {
				p[ps.Name] = "kwok-ahmad-9"
			}
		}
	}
	return p
}

// foldIntoRange maps an arbitrary float (including NaN and infinities)
// into [lo, hi] deterministically.
func foldIntoRange(x, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	if x != x { // NaN
		return lo
	}
	if x < 0 {
		x = -x
	}
	span := hi - lo
	x = math.Mod(x, span)
	if x != x || x < 0 { // Mod of +Inf is NaN
		x = 0
	}
	return lo + x
}

// FuzzGenerate feeds arbitrary in-schema parameter sets to every
// registered family: Generate must never panic, and whenever it
// succeeds the result must be a structurally valid DAG (consistent
// adjacency, no cycles, non-negative costs). Errors are legal — some
// in-schema parameter combinations are still rejected by individual
// families (an FFT size that is not a power of two, a single-layer
// layered graph asked to connect) — but they must be errors, not
// panics.
func FuzzGenerate(f *testing.F) {
	f.Add(uint(0), int64(1998), int64(7), int64(13), 1.0, 0.25, true)
	f.Add(uint(1), int64(1), int64(-3), int64(40), 10.0, 0.9, false)
	f.Add(uint(2), int64(42), int64(0), int64(0), 0.0, 0.0, true)
	f.Add(uint(7), int64(2024), int64(99), int64(5), 0.1, 1e30, false)
	f.Fuzz(func(t *testing.T, fam uint, seed, i1, i2 int64, f1, f2 float64, flip bool) {
		gens := Generators()
		g := gens[int(fam)%len(gens)]
		p := fuzzParamsFor(g, i1, i2, f1, f2, flip)
		if err := g.ValidateParams(p); err != nil {
			t.Fatalf("fuzzParamsFor(%s) produced out-of-schema params %v: %v", g.Name, p, err)
		}
		graph, err := Generate(g.Name, seed, p)
		if err != nil {
			return // in-schema yet family-rejected combinations are fine
		}
		if err := graph.Validate(); err != nil {
			t.Fatalf("%s seed=%d params=%v: generated invalid DAG: %v",
				g.Name, seed, CanonicalParams(p), err)
		}
	})
}
