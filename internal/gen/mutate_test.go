package gen

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/dag"
)

// TestMutationStaysInSchema is the mutation-validity property test: for
// every registered family, a chain of 1000 seeded mutations starting
// from the declared defaults must at every step produce a parameter set
// that validates against the family's full ParamSpec schema — known
// names, parseable kinds, and declared bounds. This is the contract the
// adversarial search leans on: it mutates blindly and never re-checks.
func TestMutationStaysInSchema(t *testing.T) {
	for _, g := range Generators() {
		t.Run(g.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			p := Params{}
			for i := 0; i < 1000; i++ {
				p = MutateParams(g, p, rng)
				if err := g.ValidateParams(p); err != nil {
					t.Fatalf("mutation %d of %s produced out-of-schema params %v: %v",
						i, g.Name, p, err)
				}
			}
		})
	}
}

// TestMutationIsDeterministic pins that equal rng seeds yield equal
// mutation chains, which the adversarial search's reproducibility
// contract depends on.
func TestMutationIsDeterministic(t *testing.T) {
	for _, g := range Generators() {
		chain := func() string {
			rng := rand.New(rand.NewSource(7))
			p := Params{}
			s := ""
			for i := 0; i < 50; i++ {
				p = MutateParams(g, p, rng)
				s += CanonicalParams(p) + "\n"
			}
			return s
		}
		if a, b := chain(), chain(); a != b {
			t.Errorf("%s: two identically seeded mutation chains differ", g.Name)
		}
	}
}

// TestMutationMovesNumericParams checks mutation actually explores: over
// many steps every mutable numeric parameter of a random family takes
// at least two distinct values.
func TestMutationMovesNumericParams(t *testing.T) {
	for _, g := range RandomFamilies() {
		rng := rand.New(rand.NewSource(3))
		seen := map[string]map[string]bool{}
		p := Params{}
		for i := 0; i < 400; i++ {
			p = MutateParams(g, p, rng)
			for name, v := range p {
				if seen[name] == nil {
					seen[name] = map[string]bool{}
				}
				seen[name][v] = true
			}
		}
		for _, ps := range g.Params {
			if ps.Kind != IntParam && ps.Kind != FloatParam {
				continue
			}
			if len(seen[ps.Name]) < 2 {
				t.Errorf("%s: parameter %s never moved (values %v)", g.Name, ps.Name, seen[ps.Name])
			}
		}
	}
}

// TestValidateParamsBounds pins that out-of-bounds values are rejected
// with the declared bound in the message, and in-bounds ones accepted.
func TestValidateParamsBounds(t *testing.T) {
	g, ok := Lookup("erdos")
	if !ok {
		t.Fatal("erdos not registered")
	}
	if err := g.ValidateParams(Params{"p": "0.5"}); err != nil {
		t.Errorf("in-bounds p rejected: %v", err)
	}
	if err := g.ValidateParams(Params{"p": "1.5"}); err == nil {
		t.Error("out-of-bounds p accepted")
	}
	if err := g.ValidateParams(Params{"v": "0"}); err == nil {
		t.Error("v below declared minimum accepted")
	}
	if err := g.ValidateParams(Params{"nope": "1"}); err == nil {
		t.Error("unknown parameter accepted")
	}
}

// TestClampHelpers pins the clamp helpers on declared and open bounds.
func TestClampHelpers(t *testing.T) {
	ps := ParamSpec{Name: "x", Kind: IntParam, Default: "5", Min: "2", Max: "9"}
	for _, tc := range []struct{ in, want int }{{1, 2}, {2, 2}, {5, 5}, {9, 9}, {10, 9}} {
		if got := ClampInt(ps, tc.in); got != tc.want {
			t.Errorf("ClampInt(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	fs := ParamSpec{Name: "y", Kind: FloatParam, Default: "0.5", Min: "0", Max: "1"}
	if got := ClampFloat(fs, 2.5); got != 1 {
		t.Errorf("ClampFloat(2.5) = %g, want 1", got)
	}
	if got := ClampFloat(fs, -1); got != 0 {
		t.Errorf("ClampFloat(-1) = %g, want 0", got)
	}
}

// TestCanonicalParamsRoundTrip pins the textual candidate-key format.
func TestCanonicalParamsRoundTrip(t *testing.T) {
	p := Params{"v": "30", "ccr": "0.5", "connect": "true"}
	s := CanonicalParams(p)
	if s != "ccr=0.5 connect=true v=30" {
		t.Errorf("CanonicalParams = %q", s)
	}
	back, err := ParseCanonicalParams(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(p) {
		t.Fatalf("round trip lost entries: %v", back)
	}
	for k, v := range p {
		if back[k] != v {
			t.Errorf("round trip %s: got %q want %q", k, back[k], v)
		}
	}
	if _, err := ParseCanonicalParams("novalue"); err == nil {
		t.Error("malformed entry accepted")
	}
}

// TestBoundsRegistration pins that Register rejects inverted bounds and
// out-of-bounds defaults.
func TestBoundsRegistration(t *testing.T) {
	mustPanic := func(name string, ps ParamSpec) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register accepted invalid bounds", name)
			}
		}()
		Register(Generator{Name: name, Params: []ParamSpec{ps},
			Fn: func(int64, Resolved) (*dag.Graph, error) { return nil, nil }})
	}
	mustPanic("bad-inverted", ParamSpec{Name: "x", Kind: IntParam, Default: "5", Min: "9", Max: "2"})
	mustPanic("bad-default", ParamSpec{Name: "x", Kind: IntParam, Default: "1", Min: "2", Max: "9"})
	mustPanic("bad-kind", ParamSpec{Name: "x", Kind: BoolParam, Default: "true", Min: "0", Max: "1"})
	// strconv sanity for every registered family: all declared bounds parse.
	for _, g := range Generators() {
		for _, ps := range g.Params {
			for _, b := range []string{ps.Min, ps.Max} {
				if b == "" {
					continue
				}
				var err error
				switch ps.Kind {
				case IntParam:
					_, err = strconv.Atoi(b)
				case FloatParam:
					_, err = strconv.ParseFloat(b, 64)
				}
				if err != nil {
					t.Errorf("%s.%s: unparseable bound %q", g.Name, ps.Name, b)
				}
			}
		}
	}
}
