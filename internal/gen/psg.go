package gen

import (
	"fmt"
	"strings"

	"repro/internal/dag"
)

func init() {
	Register(Generator{
		Name:   "psg",
		Doc:    "peer set graphs: fixed small example DAGs from the literature, selected by name",
		Source: "Kwok & Ahmad (IPPS 1998), section 5.1",
		Params: []ParamSpec{
			{Name: "name", Kind: StringParam, Default: "", Doc: "PSG graph name (empty lists the available names)"},
		},
		Fn: func(seed int64, p Resolved) (*dag.Graph, error) {
			want := p.String("name")
			var names []string
			for _, ng := range PeerSet() {
				if ng.Name == want {
					return ng.G, nil
				}
				names = append(names, ng.Name)
			}
			return nil, fmt.Errorf("gen: psg needs name=<graph> (have %s)", strings.Join(names, ", "))
		},
	})
}

// PeerSet returns the Peer Set Graphs (PSG) suite: small example task
// graphs of the kind published alongside the original algorithm papers
// (paper section 5.1). The paper collected its PSGs from the cited
// publications; several of those figures are out of print, so these are
// documented reconstructions that preserve the published sizes and
// structural character (fork/join mixes, join-dominated lattices,
// communication-heavy diamonds). Each graph records its inspiration in
// Source.
func PeerSet() []NamedGraph {
	return []NamedGraph{
		kwokAhmad9(),
		wuGajski18(),
		yangGerasoulis7(),
		sihLee8(),
		colinChretienne9(),
		chungRanka11(),
		mccrearyGill10(),
		alMaasarani16(),
		diamondLattice9(),
		irregular13(),
	}
}

// kwokAhmad9 is the running macro-dataflow example of Kwok & Ahmad's DCP
// paper: one entry fanning out to a middle layer that funnels into two
// join nodes and a single exit, with strongly asymmetric edge costs.
func kwokAhmad9() NamedGraph {
	b := dag.NewBuilder()
	n1 := b.AddLabeledNode(2, "n1")
	n2 := b.AddLabeledNode(3, "n2")
	n3 := b.AddLabeledNode(3, "n3")
	n4 := b.AddLabeledNode(4, "n4")
	n5 := b.AddLabeledNode(5, "n5")
	n6 := b.AddLabeledNode(4, "n6")
	n7 := b.AddLabeledNode(4, "n7")
	n8 := b.AddLabeledNode(4, "n8")
	n9 := b.AddLabeledNode(1, "n9")
	b.AddEdge(n1, n2, 4)
	b.AddEdge(n1, n3, 1)
	b.AddEdge(n1, n4, 1)
	b.AddEdge(n1, n5, 1)
	b.AddEdge(n1, n7, 10)
	b.AddEdge(n2, n6, 1)
	b.AddEdge(n2, n7, 1)
	b.AddEdge(n3, n8, 1)
	b.AddEdge(n4, n8, 1)
	b.AddEdge(n5, n8, 1)
	b.AddEdge(n6, n9, 5)
	b.AddEdge(n7, n9, 6)
	b.AddEdge(n8, n9, 5)
	return NamedGraph{
		Name:   "kwok-ahmad-9",
		Source: "reconstruction after Kwok & Ahmad (1996), DCP example",
		G:      b.MustBuild(),
	}
}

// wuGajski18 mirrors the 18-node Gaussian-elimination program graph used
// to introduce MCP and MD: a triangular cascade of pivot/update tasks.
func wuGajski18() NamedGraph {
	g, err := GaussianElimination(5, 0.8)
	if err != nil {
		panic(err)
	}
	return NamedGraph{
		Name:   "wu-gajski-18",
		Source: "reconstruction after Wu & Gajski (1990), Gaussian elimination N=5",
		G:      g,
	}
}

// yangGerasoulis7 is the seven-node DSC illustration: two chains joined
// at the exit with a communication-heavy shortcut.
func yangGerasoulis7() NamedGraph {
	b := dag.NewBuilder()
	n1 := b.AddLabeledNode(3, "n1")
	n2 := b.AddLabeledNode(2, "n2")
	n3 := b.AddLabeledNode(4, "n3")
	n4 := b.AddLabeledNode(4, "n4")
	n5 := b.AddLabeledNode(3, "n5")
	n6 := b.AddLabeledNode(2, "n6")
	n7 := b.AddLabeledNode(5, "n7")
	b.AddEdge(n1, n2, 1)
	b.AddEdge(n1, n3, 6)
	b.AddEdge(n2, n4, 2)
	b.AddEdge(n2, n5, 4)
	b.AddEdge(n3, n6, 1)
	b.AddEdge(n4, n7, 3)
	b.AddEdge(n5, n7, 8)
	b.AddEdge(n6, n7, 2)
	return NamedGraph{
		Name:   "yang-gerasoulis-7",
		Source: "reconstruction after Yang & Gerasoulis (1994), DSC example",
		G:      b.MustBuild(),
	}
}

// sihLee8 reflects the DLS paper's example: two independent entry chains
// competing for processors before a join.
func sihLee8() NamedGraph {
	b := dag.NewBuilder()
	a1 := b.AddLabeledNode(4, "a1")
	a2 := b.AddLabeledNode(3, "a2")
	a3 := b.AddLabeledNode(2, "a3")
	b1 := b.AddLabeledNode(2, "b1")
	b2 := b.AddLabeledNode(5, "b2")
	b3 := b.AddLabeledNode(3, "b3")
	j := b.AddLabeledNode(4, "join")
	x := b.AddLabeledNode(1, "exit")
	b.AddEdge(a1, a2, 2)
	b.AddEdge(a2, a3, 7)
	b.AddEdge(b1, b2, 3)
	b.AddEdge(b2, b3, 1)
	b.AddEdge(a3, j, 4)
	b.AddEdge(b3, j, 2)
	b.AddEdge(a1, b2, 5)
	b.AddEdge(j, x, 1)
	return NamedGraph{
		Name:   "sih-lee-8",
		Source: "reconstruction after Sih & Lee (1993), DLS example",
		G:      b.MustBuild(),
	}
}

// colinChretienne9 is a small-communication graph in the spirit of the
// LWB paper's examples: unit-ish communication against larger node
// weights, where duplication-free scheduling is nearly free of penalty.
func colinChretienne9() NamedGraph {
	b := dag.NewBuilder()
	var n [9]dag.NodeID
	weights := []int64{5, 4, 4, 6, 3, 4, 5, 3, 6}
	for i, w := range weights {
		n[i] = b.AddLabeledNode(w, "")
	}
	edges := [][3]int64{
		{0, 1, 1}, {0, 2, 1}, {1, 3, 2}, {1, 4, 1}, {2, 5, 1},
		{3, 6, 1}, {4, 6, 2}, {4, 7, 1}, {5, 7, 1}, {6, 8, 1}, {7, 8, 2},
	}
	for _, e := range edges {
		b.AddEdge(n[e[0]], n[e[1]], e[2])
	}
	return NamedGraph{
		Name:   "colin-chretienne-9",
		Source: "reconstruction after Colin & Chretienne (1991), small-delay example",
		G:      b.MustBuild(),
	}
}

// chungRanka11 is a join-heavy graph after the BTDH paper's running
// example: wide fan-in with large messages.
func chungRanka11() NamedGraph {
	b := dag.NewBuilder()
	root := b.AddLabeledNode(3, "root")
	var mids [6]dag.NodeID
	for i := range mids {
		mids[i] = b.AddLabeledNode(int64(2+i%3), "")
		b.AddEdge(root, mids[i], int64(5+3*i))
	}
	j1 := b.AddLabeledNode(4, "j1")
	j2 := b.AddLabeledNode(4, "j2")
	j3 := b.AddLabeledNode(2, "j3")
	exit := b.AddLabeledNode(3, "exit")
	b.AddEdge(mids[0], j1, 6)
	b.AddEdge(mids[1], j1, 2)
	b.AddEdge(mids[2], j2, 9)
	b.AddEdge(mids[3], j2, 3)
	b.AddEdge(mids[4], j3, 4)
	b.AddEdge(mids[5], j3, 12)
	b.AddEdge(j1, exit, 5)
	b.AddEdge(j2, exit, 1)
	b.AddEdge(j3, exit, 7)
	return NamedGraph{
		Name:   "chung-ranka-11",
		Source: "reconstruction after Chung & Ranka (1992), BTDH example",
		G:      b.MustBuild(),
	}
}

// mccrearyGill10 follows the CLANS paper's clan-decomposition example:
// two parallel clans with internal structure.
func mccrearyGill10() NamedGraph {
	b := dag.NewBuilder()
	s := b.AddLabeledNode(2, "s")
	a1 := b.AddLabeledNode(3, "a1")
	a2 := b.AddLabeledNode(4, "a2")
	a3 := b.AddLabeledNode(3, "a3")
	c1 := b.AddLabeledNode(5, "c1")
	c2 := b.AddLabeledNode(2, "c2")
	c3 := b.AddLabeledNode(4, "c3")
	c4 := b.AddLabeledNode(3, "c4")
	t := b.AddLabeledNode(2, "t")
	u := b.AddLabeledNode(4, "u")
	b.AddEdge(s, a1, 3)
	b.AddEdge(s, c1, 4)
	b.AddEdge(a1, a2, 2)
	b.AddEdge(a1, a3, 5)
	b.AddEdge(a2, t, 3)
	b.AddEdge(a3, t, 2)
	b.AddEdge(c1, c2, 1)
	b.AddEdge(c1, c3, 6)
	b.AddEdge(c2, c4, 2)
	b.AddEdge(c3, c4, 3)
	b.AddEdge(c4, u, 2)
	b.AddEdge(t, u, 4)
	return NamedGraph{
		Name:   "mccreary-gill-10",
		Source: "reconstruction after McCreary & Gill (1989), CLANS example",
		G:      b.MustBuild(),
	}
}

// alMaasarani16 is the 16-node diamond lattice used in priority-based
// scheduling theses: a 4-wide, 7-rank diamond with uniform costs.
func alMaasarani16() NamedGraph {
	b := dag.NewBuilder()
	// Diamond lattice: ranks of sizes 1,2,3,4,3,2,1.
	sizes := []int{1, 2, 3, 4, 3, 2, 1}
	var ranks [][]dag.NodeID
	for _, sz := range sizes {
		var rank []dag.NodeID
		for i := 0; i < sz; i++ {
			rank = append(rank, b.AddLabeledNode(4, ""))
		}
		ranks = append(ranks, rank)
	}
	for r := 0; r+1 < len(ranks); r++ {
		cur, next := ranks[r], ranks[r+1]
		for i, u := range cur {
			if len(next) >= len(cur) {
				b.AddEdge(u, next[i], 3)
				if i+1 < len(next) {
					b.AddEdge(u, next[i+1], 3)
				}
			} else {
				if i < len(next) {
					b.AddEdge(u, next[i], 3)
				}
				if i-1 >= 0 {
					b.AddEdge(u, next[i-1], 3)
				}
			}
		}
	}
	return NamedGraph{
		Name:   "al-maasarani-16",
		Source: "reconstruction after Al-Maasarani (1993), diamond lattice",
		G:      b.MustBuild(),
	}
}

// diamondLattice9 is the small diamond with communication triple the
// computation — a UNC stress case.
func diamondLattice9() NamedGraph {
	b := dag.NewBuilder()
	sizes := []int{1, 3, 1, 3, 1}
	var ranks [][]dag.NodeID
	for _, sz := range sizes {
		var rank []dag.NodeID
		for i := 0; i < sz; i++ {
			rank = append(rank, b.AddLabeledNode(2, ""))
		}
		ranks = append(ranks, rank)
	}
	for r := 0; r+1 < len(ranks); r++ {
		for _, u := range ranks[r] {
			for _, v := range ranks[r+1] {
				b.AddEdge(u, v, 6)
			}
		}
	}
	return NamedGraph{
		Name:   "diamond-9",
		Source: "synthetic: comm-dominated diamond (CCR 3)",
		G:      b.MustBuild(),
	}
}

// irregular13 is a deliberately unstructured graph mixing chains, forks
// and a long shortcut edge, so that no single heuristic family is
// favoured.
func irregular13() NamedGraph {
	b := dag.NewBuilder()
	var n [13]dag.NodeID
	weights := []int64{6, 2, 7, 3, 4, 2, 8, 3, 5, 2, 6, 4, 3}
	for i, w := range weights {
		n[i] = b.AddLabeledNode(w, "")
	}
	edges := [][3]int64{
		{0, 1, 2}, {0, 2, 11}, {0, 3, 1}, {1, 4, 3}, {2, 4, 1},
		{2, 5, 8}, {3, 5, 2}, {3, 6, 4}, {4, 7, 2}, {5, 8, 6},
		{6, 8, 1}, {6, 9, 9}, {7, 10, 3}, {8, 10, 2}, {8, 11, 5},
		{9, 11, 1}, {10, 12, 4}, {11, 12, 2}, {0, 12, 30},
	}
	for _, e := range edges {
		b.AddEdge(n[e[0]], n[e[1]], e[2])
	}
	return NamedGraph{
		Name:   "irregular-13",
		Source: "synthetic: mixed chain/fork with long shortcut",
		G:      b.MustBuild(),
	}
}
