package gen

import (
	"math"
	"math/rand"

	"repro/internal/dag"
)

// Large-instance streaming paths for the Bernoulli-edge families.
//
// The textbook construction of an Erdős–Rényi or layer-by-layer DAG
// draws one uniform variate per candidate node pair — Θ(V²) draws even
// when the expected edge count is linear. Above streamCutoff nodes the
// families switch to geometric skip sampling: the gap until the next
// success of a Bernoulli(p) sequence is Geometric(p), so the generator
// jumps straight from edge to edge and emits a million-node instance in
// O(V+E) time and memory, already in CSR source order for the arena
// Builder. Skip sampling realizes the same edge distribution but
// consumes the random stream differently, so instances above the cutoff
// are not byte-comparable with the pair-by-pair construction; below the
// cutoff the original draw order is kept so every existing benchmark
// instance stays byte-identical (pinned by the equivalence tests).
const streamCutoff = 4096

// geomSkip returns the number of Bernoulli(p) failures before the next
// success, computed by inversion from one uniform draw: floor(ln U /
// ln(1-p)). logq is ln(1-p), negative for p in (0,1). Values at or past
// limit are clamped to limit, so callers can index safely.
func geomSkip(rng *rand.Rand, logq float64, limit int) int {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	s := math.Log(u) / logq
	if s >= float64(limit) {
		return limit
	}
	return int(s)
}

// streamBernoulliRow emits the successes of one Bernoulli(p) row over
// targets[0:], calling emit for each hit, using expected p·len(targets)
// draws. p must be in (0,1); callers special-case 0 and 1.
func streamBernoulliRow(rng *rand.Rand, logq float64, targets []dag.NodeID, emit func(dag.NodeID)) {
	j := geomSkip(rng, logq, len(targets))
	for j < len(targets) {
		emit(targets[j])
		j += 1 + geomSkip(rng, logq, len(targets)-j)
	}
}

// erdosStream is the streaming edge phase of ErdosRenyi for v above
// streamCutoff: per source, geometric skips over the higher-numbered
// targets. Nodes must already exist in the builder.
func erdosStream(b *dag.Builder, rng *rand.Rand, v int, p float64, cm int64, linked *linkTracker) {
	if p <= 0 {
		return
	}
	if p >= 1 {
		for i := 0; i < v; i++ {
			for j := i + 1; j < v; j++ {
				b.AddEdge(dag.NodeID(i), dag.NodeID(j), uniformCost(rng, cm, 1))
				linked.union(dag.NodeID(i), dag.NodeID(j))
			}
		}
		return
	}
	logq := math.Log1p(-p)
	for i := 0; i < v; i++ {
		remaining := v - i - 1
		j := i + 1 + geomSkip(rng, logq, remaining)
		for j < v {
			b.AddEdge(dag.NodeID(i), dag.NodeID(j), uniformCost(rng, cm, 1))
			linked.union(dag.NodeID(i), dag.NodeID(j))
			j += 1 + geomSkip(rng, logq, v-j)
		}
	}
}

// layeredStream is the streaming edge phase of LayerByLayer for v above
// streamCutoff: per parent, geometric skips across the next layer's
// node slice instead of one draw per (parent, child) pair.
func layeredStream(b *dag.Builder, rng *rand.Rand, p float64, cm int64, layerNodes [][]dag.NodeID, linked *linkTracker) {
	if p <= 0 {
		return
	}
	emitAll := p >= 1
	var logq float64
	if !emitAll {
		logq = math.Log1p(-p)
	}
	for k := 1; k < len(layerNodes); k++ {
		next := layerNodes[k]
		for _, u := range layerNodes[k-1] {
			if emitAll {
				for _, w := range next {
					b.AddEdge(u, w, uniformCost(rng, cm, 1))
					linked.union(u, w)
				}
				continue
			}
			streamBernoulliRow(rng, logq, next, func(w dag.NodeID) {
				b.AddEdge(u, w, uniformCost(rng, cm, 1))
				linked.union(u, w)
			})
		}
	}
}

// connectLayersStream links the weakly connected components of a large
// layered graph into one, like connectLayers, but computes each layer's
// root-connected parent candidates once per layer instead of rescanning
// per node, so the whole pass is O(V). Because a stitched node joins the
// root component immediately, every node of layer k-1 is root-connected
// by the time layer k is processed; the candidate set can only differ
// from the legacy per-node rescan when a component spans both layers,
// which only shifts the stitch-partner distribution — structure and
// family invariants are identical.
func connectLayersStream(b *dag.Builder, rng *rand.Rand, commMean int64, layers [][]dag.NodeID, linked *linkTracker) {
	if len(layers) < 2 {
		return
	}
	root := layers[0][0]
	inRoot := func(n dag.NodeID) bool { return linked.find(int(n)) == linked.find(int(root)) }
	var candidates []dag.NodeID
	for k := 1; k < len(layers); k++ {
		candidates = candidates[:0]
		for _, u := range layers[k-1] {
			if inRoot(u) {
				candidates = append(candidates, u)
			}
		}
		for _, w := range layers[k] {
			if inRoot(w) {
				continue
			}
			u := candidates[rng.Intn(len(candidates))]
			b.AddEdge(u, w, uniformCost(rng, commMean, 1))
			linked.union(u, w)
		}
	}
	for _, x := range layers[0] {
		if !inRoot(x) {
			w := layers[1][rng.Intn(len(layers[1]))]
			b.AddEdge(x, w, uniformCost(rng, commMean, 1))
			linked.union(x, w)
		}
	}
}
