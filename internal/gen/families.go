package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dag"
)

// This file implements the three random-DAG families of Canon, Héam &
// Philippe, "A Comparison of Random Task Graph Generation Methods for
// Scheduling Problems" (Euro-Par 2019): layer-by-layer, Erdős–Rényi,
// and fan-in/fan-out. Canon et al. show scheduler rankings are
// sensitive to the generation method, which is why the registry carries
// all of them side by side with the paper's own suites — the genx
// experiment quantifies exactly that sensitivity. Costs follow the
// suite distributions (node costs uniform with mean 40, edge costs
// uniform with mean 40·CCR) so instances from different families are
// comparable at matched (size, CCR) points.

func init() {
	Register(Generator{
		Name:   "layered",
		Doc:    "layer-by-layer random DAGs: uniform layer assignment, consecutive-layer edges with probability p",
		Source: "Tobita & Kasahara (2002), as surveyed by Canon et al. (2019)",
		Random: true,
		Params: []ParamSpec{
			{Name: "v", Kind: IntParam, Default: "50", Min: "1", Max: "1000000", Doc: "node count"},
			ccrParam(),
			{Name: "layers", Kind: IntParam, Default: "0", Min: "0", Max: "10000", Doc: "layer count (0 selects round(sqrt(v)))"},
			{Name: "p", Kind: FloatParam, Default: "0.25", Min: "0", Max: "1", Doc: "edge probability between consecutive layers"},
			{Name: "connect", Kind: BoolParam, Default: "true", Doc: "link weakly connected components into one"},
		},
		Fn: func(seed int64, p Resolved) (*dag.Graph, error) {
			rng := rand.New(rand.NewSource(seed))
			return LayerByLayer(rng, p.Int("v"), p.Int("layers"), p.Float("p"), p.Float("ccr"), p.Bool("connect"))
		},
	})
	Register(Generator{
		Name:   "erdos",
		Doc:    "Erdős–Rényi random DAGs: each forward pair (i, j), i < j, is an edge with probability p",
		Source: "Erdős & Rényi (1959) DAG variant, as surveyed by Canon et al. (2019)",
		Random: true,
		Params: []ParamSpec{
			{Name: "v", Kind: IntParam, Default: "50", Min: "1", Max: "1000000", Doc: "node count"},
			ccrParam(),
			{Name: "p", Kind: FloatParam, Default: "0.1", Min: "0", Max: "1", Doc: "edge probability per forward node pair"},
			{Name: "connect", Kind: BoolParam, Default: "true", Doc: "link weakly connected components into one"},
		},
		Fn: func(seed int64, p Resolved) (*dag.Graph, error) {
			rng := rand.New(rand.NewSource(seed))
			return ErdosRenyi(rng, p.Int("v"), p.Float("p"), p.Float("ccr"), p.Bool("connect"))
		},
	})
	Register(Generator{
		Name:   "faninout",
		Doc:    "fan-in/fan-out random DAGs grown by randomly interleaved expansion and contraction steps",
		Source: "Dick, Rhodes & Wolf (TGFF, 1998), as surveyed by Canon et al. (2019)",
		Random: true,
		Params: []ParamSpec{
			{Name: "v", Kind: IntParam, Default: "50", Min: "1", Max: "1000000", Doc: "node count"},
			ccrParam(),
			{Name: "maxout", Kind: IntParam, Default: "3", Min: "1", Max: "100", Doc: "maximum children added per fan-out step"},
			{Name: "maxin", Kind: IntParam, Default: "3", Min: "1", Max: "100", Doc: "maximum parents joined per fan-in step"},
		},
		Fn: func(seed int64, p Resolved) (*dag.Graph, error) {
			rng := rand.New(rand.NewSource(seed))
			return FanInFanOut(rng, p.Int("v"), p.Int("maxout"), p.Int("maxin"), p.Float("ccr"))
		},
	})
}

// LayerByLayer builds a layer-by-layer random DAG: v nodes are assigned
// to layers uniformly at random, and each pair of nodes in consecutive
// layers is linked with probability p (edges point from the earlier
// layer to the later one, so the result is acyclic by construction).
// layers <= 0 selects round(sqrt(v)), which balances depth against
// width. With connect, the weakly connected components are afterwards
// linked into a single component by extra edges that also only join
// consecutive layers, preserving the family's layered structure; since
// a single-layer graph of several nodes admits no legal stitch at all,
// requesting connect for one is an error rather than a silent no-op.
func LayerByLayer(rng *rand.Rand, v, layers int, p, ccr float64, connect bool) (*dag.Graph, error) {
	if v < 1 {
		return nil, fmt.Errorf("gen: LayerByLayer needs v >= 1, got %d", v)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("gen: LayerByLayer needs p in [0,1], got %g", p)
	}
	if layers <= 0 {
		layers = int(math.Round(math.Sqrt(float64(v))))
		if layers < 2 && v > 1 {
			layers = 2 // auto-selection must leave connect feasible
		}
	}
	if layers > v {
		layers = v
	}
	if connect && layers == 1 && v > 1 {
		return nil, fmt.Errorf("gen: LayerByLayer cannot connect a single-layer graph of %d nodes (edges only join consecutive layers); set connect=false or layers >= 2", v)
	}
	// Draw each node's layer, then materialize nodes in layer order so
	// every edge goes from a lower to a higher node ID.
	counts := make([]int, layers)
	for i := 0; i < v; i++ {
		counts[rng.Intn(layers)]++
	}
	if connect && v > 1 {
		// The multinomial draw can concentrate every node in one layer
		// (likely only for tiny v); connect needs at least two non-empty
		// layers, so shift one node to a neighboring layer.
		nonEmpty, last := 0, 0
		for i, c := range counts {
			if c > 0 {
				nonEmpty++
				last = i
			}
		}
		if nonEmpty == 1 {
			counts[last]--
			if last+1 < layers {
				counts[last+1]++
			} else {
				counts[last-1]++
			}
		}
	}
	b := dag.NewBuilder()
	b.Grow(v, 0)
	var layerNodes [][]dag.NodeID
	for _, c := range counts {
		if c == 0 {
			continue // empty layers collapse; consecutive means adjacent non-empty
		}
		layer := make([]dag.NodeID, c)
		for i := range layer {
			layer[i] = b.AddNode(uniformCost(rng, meanNodeCost, 2))
		}
		layerNodes = append(layerNodes, layer)
	}
	cm := commMean(ccr)
	linked := newLinkTracker(v)
	if v > streamCutoff {
		// Streaming regime: geometric skips over each consecutive-layer
		// pair grid and an O(V) connect pass (see streaming.go).
		layeredStream(b, rng, p, cm, layerNodes, linked)
		if connect {
			connectLayersStream(b, rng, cm, layerNodes, linked)
		}
		return b.Build()
	}
	for k := 1; k < len(layerNodes); k++ {
		for _, u := range layerNodes[k-1] {
			for _, w := range layerNodes[k] {
				if rng.Float64() < p {
					b.AddEdge(u, w, uniformCost(rng, cm, 1))
					linked.union(u, w)
				}
			}
		}
	}
	if connect {
		connectLayers(b, rng, cm, layerNodes, linked)
	}
	return b.Build()
}

// connectLayers links the weakly connected components of a layered
// graph into one without breaking the family's invariant that edges
// only join consecutive layers. Pass one walks layers top-down and
// attaches every node not yet reachable from the root component to a
// parent that is — for layer 1 that parent set starts as just the first
// node, for deeper layers the whole previous layer qualifies — so
// afterwards every node below layer 0 is connected. Pass two attaches
// the remaining layer-0 nodes to a layer-1 node. A chosen partner is
// always in the opposite component, so no stitch can duplicate an
// existing edge, and every stitch points from a lower to a higher node
// ID, preserving acyclicity.
func connectLayers(b *dag.Builder, rng *rand.Rand, commMean int64, layers [][]dag.NodeID, linked *linkTracker) {
	if len(layers) < 2 {
		return
	}
	root := layers[0][0]
	inRoot := func(n dag.NodeID) bool { return linked.find(int(n)) == linked.find(int(root)) }
	for k := 1; k < len(layers); k++ {
		var candidates []dag.NodeID
		for _, w := range layers[k] {
			if inRoot(w) {
				continue
			}
			candidates = candidates[:0]
			for _, u := range layers[k-1] {
				if inRoot(u) {
					candidates = append(candidates, u)
				}
			}
			u := candidates[rng.Intn(len(candidates))]
			b.AddEdge(u, w, uniformCost(rng, commMean, 1))
			linked.union(u, w)
		}
	}
	for _, x := range layers[0] {
		if !inRoot(x) {
			w := layers[1][rng.Intn(len(layers[1]))]
			b.AddEdge(x, w, uniformCost(rng, commMean, 1))
			linked.union(x, w)
		}
	}
}

// ErdosRenyi builds the DAG variant of an Erdős–Rényi random graph on v
// nodes: for every ordered pair (i, j) with i < j, the edge i→j exists
// with probability p. The fixed node order makes the result acyclic.
// With connect, weakly connected components are linked into one.
func ErdosRenyi(rng *rand.Rand, v int, p, ccr float64, connect bool) (*dag.Graph, error) {
	if v < 1 {
		return nil, fmt.Errorf("gen: ErdosRenyi needs v >= 1, got %d", v)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("gen: ErdosRenyi needs p in [0,1], got %g", p)
	}
	b := dag.NewBuilder()
	b.Grow(v, 0)
	for i := 0; i < v; i++ {
		b.AddNode(uniformCost(rng, meanNodeCost, 2))
	}
	cm := commMean(ccr)
	linked := newLinkTracker(v)
	if v > streamCutoff {
		// Streaming regime: geometric skips instead of one draw per
		// forward pair (see streaming.go).
		erdosStream(b, rng, v, p, cm, linked)
	} else {
		for i := 0; i < v; i++ {
			for j := i + 1; j < v; j++ {
				if rng.Float64() < p {
					b.AddEdge(dag.NodeID(i), dag.NodeID(j), uniformCost(rng, cm, 1))
					linked.union(dag.NodeID(i), dag.NodeID(j))
				}
			}
		}
	}
	if connect {
		linked.connect(b, rng, cm)
	}
	return b.Build()
}

// FanInFanOut grows a random DAG from a single root by randomly
// interleaving two moves (a fair coin per iteration) until v nodes
// exist: a fan-out step picks a random existing node and attaches up to
// maxout fresh children; a fan-in step creates one fresh node whose
// parents are up to maxin distinct existing nodes.
// Every new node attaches to the existing graph, so the result is a
// single weakly connected component by construction.
func FanInFanOut(rng *rand.Rand, v, maxout, maxin int, ccr float64) (*dag.Graph, error) {
	if v < 1 {
		return nil, fmt.Errorf("gen: FanInFanOut needs v >= 1, got %d", v)
	}
	if maxout < 1 || maxin < 1 {
		return nil, fmt.Errorf("gen: FanInFanOut needs maxout, maxin >= 1 (got %d, %d)", maxout, maxin)
	}
	b := dag.NewBuilder()
	b.Grow(v, 0)
	cm := commMean(ccr)
	b.AddNode(uniformCost(rng, meanNodeCost, 2))
	// Epoch-marked scratch dedups each fan-in step's parent draws with
	// no per-step map; the draw sequence is exactly the map version's.
	mark := make([]int32, v)
	for i := range mark {
		mark[i] = -1
	}
	epoch := int32(0)
	for b.NumNodes() < v {
		n := b.NumNodes()
		if rng.Intn(2) == 0 {
			// Fan-out: expand below a random existing node.
			parent := dag.NodeID(rng.Intn(n))
			kids := 1 + rng.Intn(maxout)
			if kids > v-n {
				kids = v - n
			}
			for c := 0; c < kids; c++ {
				child := b.AddNode(uniformCost(rng, meanNodeCost, 2))
				b.AddEdge(parent, child, uniformCost(rng, cm, 1))
			}
		} else {
			// Fan-in: contract several existing nodes into a fresh join.
			parents := 1 + rng.Intn(maxin)
			if parents > n {
				parents = n
			}
			join := b.AddNode(uniformCost(rng, meanNodeCost, 2))
			taken := 0
			for taken < parents {
				p := dag.NodeID(rng.Intn(n))
				if mark[p] == epoch {
					continue
				}
				mark[p] = epoch
				taken++
				b.AddEdge(p, join, uniformCost(rng, cm, 1))
			}
			epoch++
		}
	}
	return b.Build()
}

// linkTracker is a union-find over node IDs that mirrors the edges a
// generator adds, so components can afterwards be stitched together
// without re-deriving the edge set.
type linkTracker struct {
	parent []int
}

func newLinkTracker(n int) *linkTracker {
	t := &linkTracker{parent: make([]int, n)}
	for i := range t.parent {
		t.parent[i] = i
	}
	return t
}

func (t *linkTracker) find(x int) int {
	for t.parent[x] != x {
		t.parent[x] = t.parent[t.parent[x]]
		x = t.parent[x]
	}
	return x
}

func (t *linkTracker) union(a, b dag.NodeID) {
	ra, rb := t.find(int(a)), t.find(int(b))
	if ra != rb {
		t.parent[ra] = rb
	}
}

// connect links the remaining weakly connected components into one by
// walking the nodes in ID order and adding an edge (m-1)→m whenever node
// m starts a new component. Each added edge merges two components, so
// exactly components-1 edges are added, and since every generator in
// this file only creates edges from lower to higher IDs, the extra edges
// preserve acyclicity.
func (t *linkTracker) connect(b *dag.Builder, rng *rand.Rand, commMean int64) {
	for m := 1; m < len(t.parent); m++ {
		if t.find(m) != t.find(m-1) {
			b.AddEdge(dag.NodeID(m-1), dag.NodeID(m), uniformCost(rng, commMean, 1))
			t.union(dag.NodeID(m-1), dag.NodeID(m))
		}
	}
}
