package gen

import (
	"fmt"
	"math"

	"repro/internal/dag"
)

func init() {
	Register(Generator{
		Name:   "cholesky",
		Doc:    "traced graph of column-oriented Cholesky factorization of an n x n matrix",
		Source: "Kwok & Ahmad (IPPS 1998), section 5.5",
		Params: []ParamSpec{
			{Name: "n", Kind: IntParam, Default: "8", Min: "1", Max: "512", Doc: "matrix dimension (tasks grow as O(n^2))"},
			ccrParam(),
		},
		Fn: func(seed int64, p Resolved) (*dag.Graph, error) {
			return Cholesky(p.Int("n"), p.Float("ccr"))
		},
	})
	Register(Generator{
		Name:   "gauss",
		Doc:    "traced graph of Gaussian elimination without pivoting on an n x n matrix",
		Source: "scheduling-literature standard (extension of the paper's TG suite)",
		Params: []ParamSpec{
			{Name: "n", Kind: IntParam, Default: "8", Min: "1", Max: "512", Doc: "matrix dimension (tasks grow as O(n^2))"},
			ccrParam(),
		},
		Fn: func(seed int64, p Resolved) (*dag.Graph, error) {
			return GaussianElimination(p.Int("n"), p.Float("ccr"))
		},
	})
	Register(Generator{
		Name:   "fft",
		Doc:    "butterfly graph of a points-sized fast Fourier transform (points a power of two)",
		Source: "scheduling-literature standard (extension of the paper's TG suite)",
		Params: []ParamSpec{
			{Name: "points", Kind: IntParam, Default: "16", Min: "2", Max: "1048576", Doc: "FFT size (power of two)"},
			ccrParam(),
		},
		Fn: func(seed int64, p Resolved) (*dag.Graph, error) {
			return FFT(p.Int("points"), p.Float("ccr"))
		},
	})
}

// Cholesky builds the task graph of column-oriented Cholesky
// factorization of an N x N matrix — the traced-graph (TG) suite of the
// paper (section 5.5), which obtained these DAGs from a parallelizing
// compiler. The dependence structure of column Cholesky is fully
// determined by the algorithm, so generating it analytically yields the
// same graph family:
//
//   - cdiv(k), k = 1..N: factor column k (entry for k = 1);
//     cdiv(k) depends on every update cmod(k, j) with j < k.
//   - cmod(k, j), j < k: update column k with factored column j;
//     depends on cdiv(j).
//
// Task count is N + N(N-1)/2 = O(N^2), matching the paper's note that a
// matrix of dimension N yields a graph of size O(N^2).
//
// Costs follow the operation counts of the kernels on columns of length
// N-k+1 (scaled to the suite's mean-40 cost units), and each message
// carries a column, so its cost is proportional to the column length
// times the requested CCR.
func Cholesky(n int, ccr float64) (*dag.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: Cholesky needs N >= 1, got %d", n)
	}
	b := dag.NewBuilder()
	cdiv := make([]dag.NodeID, n+1)
	const unit = 8 // cost scale: keeps weights in the suite's usual range
	colLen := func(k int) int64 { return int64(n - k + 1) }
	commCost := func(k int) int64 {
		c := int64(math.Round(float64(colLen(k)) * unit * ccr))
		if c < 1 {
			c = 1
		}
		return c
	}
	for k := 1; k <= n; k++ {
		cdiv[k] = b.AddLabeledNode(colLen(k)*unit, fmt.Sprintf("cdiv%d", k))
	}
	for k := 2; k <= n; k++ {
		for j := 1; j < k; j++ {
			cmod := b.AddLabeledNode(colLen(k)*2*unit, fmt.Sprintf("cmod%d_%d", k, j))
			b.AddEdge(cdiv[j], cmod, commCost(j))
			b.AddEdge(cmod, cdiv[k], commCost(k))
		}
	}
	return b.Build()
}

// GaussianElimination builds the task graph of Gaussian elimination
// without pivoting on an N x N matrix, a second traced-graph family
// commonly used in the scheduling literature:
//
//   - pivot(k): prepare row k (divide by the pivot);
//   - update(k, i), i > k: eliminate row i using row k; depends on
//     pivot(k) and on update(k-1, i).
func GaussianElimination(n int, ccr float64) (*dag.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: GaussianElimination needs N >= 1, got %d", n)
	}
	b := dag.NewBuilder()
	const unit = 8
	rowLen := func(k int) int64 { return int64(n - k + 1) }
	commCost := func(k int) int64 {
		c := int64(math.Round(float64(rowLen(k)) * unit * ccr))
		if c < 1 {
			c = 1
		}
		return c
	}
	// prevUpdate[i] is the update task of row i from the previous step.
	prevUpdate := make([]dag.NodeID, n+1)
	for i := range prevUpdate {
		prevUpdate[i] = dag.None
	}
	for k := 1; k < n; k++ {
		pivot := b.AddLabeledNode(rowLen(k)*unit, fmt.Sprintf("piv%d", k))
		if prevUpdate[k] != dag.None {
			b.AddEdge(prevUpdate[k], pivot, commCost(k))
		}
		for i := k + 1; i <= n; i++ {
			upd := b.AddLabeledNode(rowLen(k)*2*unit, fmt.Sprintf("upd%d_%d", k, i))
			b.AddEdge(pivot, upd, commCost(k))
			if prevUpdate[i] != dag.None {
				b.AddEdge(prevUpdate[i], upd, commCost(k))
			}
			prevUpdate[i] = upd
		}
	}
	if n == 1 {
		b.AddLabeledNode(unit, "piv1")
	}
	return b.Build()
}

// FFT builds the butterfly task graph of an N-point fast Fourier
// transform (N must be a power of two): log2(N) ranks of N/2 butterfly
// tasks plus N input tasks.
func FFT(points int, ccr float64) (*dag.Graph, error) {
	if points < 2 || points&(points-1) != 0 {
		return nil, fmt.Errorf("gen: FFT needs a power-of-two point count, got %d", points)
	}
	b := dag.NewBuilder()
	const unit = 20
	comm := int64(math.Round(unit * ccr))
	if comm < 1 {
		comm = 1
	}
	// current[i] produces the value at position i of the current rank.
	current := make([]dag.NodeID, points)
	for i := range current {
		current[i] = b.AddLabeledNode(unit, fmt.Sprintf("in%d", i))
	}
	for span := 1; span < points; span *= 2 {
		next := make([]dag.NodeID, points)
		for i := 0; i < points; i++ {
			partner := i ^ span
			if i < partner {
				bf := b.AddLabeledNode(2*unit, fmt.Sprintf("bf%d_%d", span, i))
				b.AddEdge(current[i], bf, comm)
				b.AddEdge(current[partner], bf, comm)
				next[i] = bf
			}
		}
		for i := 0; i < points; i++ {
			partner := i ^ span
			if i > partner {
				next[i] = next[partner]
			}
		}
		current = next
	}
	return b.Build()
}
