// Package gen generates the five benchmark graph suites of Kwok & Ahmad
// (IPPS 1998, section 5):
//
//   - PSG — peer set graphs: small example DAGs of the kind published
//     alongside the original algorithm papers;
//   - RGBOS — random graphs whose optimal schedules are obtained by
//     branch-and-bound (10–32 nodes, CCR ∈ {0.1, 1, 10});
//   - RGPOS — larger random graphs constructed around a pre-determined
//     optimal schedule (50–500 nodes, CCR ∈ {0.1, 1, 10});
//   - RGNOS — 250 large random graphs without known optima, varying
//     size × CCR × parallelism (width);
//   - TG — traced graphs of parallel numerical programs: Cholesky
//     factorization (the paper's choice), plus Gaussian elimination and
//     FFT generators as extensions.
//
// Beyond the paper's suites the package carries the random-DAG families
// of Canon, Héam & Philippe (Euro-Par 2019) — layer-by-layer,
// Erdős–Rényi, and fan-in/fan-out — and a tiled-LU traced kernel, so
// scheduler rankings can be stress-tested across generation methods.
//
// Every family is registered in a generator registry (see Register,
// Generators, Generate): a registered Generator carries its name, a
// parameter schema with defaults, and a deterministic construction
// function, which is what cmd/daggen and the cross-generator
// sensitivity experiment (dagbench -exp genx) enumerate. All generators
// are deterministic given their seed, so every experiment in the
// repository is reproducible.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dag"
)

// NamedGraph pairs a benchmark graph with its provenance.
type NamedGraph struct {
	Name   string
	Source string // citation or generator parameters
	G      *dag.Graph
}

// PaperCCRs are the CCR values used for the RGBOS and RGPOS suites
// (paper sections 5.2, 5.3).
var PaperCCRs = []float64{0.1, 1.0, 10.0}

// RGNOSCCRs are the five CCR values of the RGNOS suite (section 5.4).
var RGNOSCCRs = []float64{0.1, 0.5, 1.0, 2.0, 10.0}

// meanNodeCost is the paper's mean computation cost (section 5.2).
const meanNodeCost = 40

// uniformCost draws an integer from a uniform distribution with the
// given mean: U[2, 2·mean-2] for the paper's node costs (mean 40 gives
// the documented [2,78] range) and U[1, 2·mean-1] in general.
func uniformCost(rng *rand.Rand, mean int64, lo int64) int64 {
	hi := 2*mean - lo
	if hi <= lo {
		return mean
	}
	return lo + rng.Int63n(hi-lo+1)
}

// commMean converts a CCR value into the mean communication cost used by
// the random suites: 40·CCR, at least 1.
func commMean(ccr float64) int64 {
	m := int64(math.Round(meanNodeCost * ccr))
	if m < 1 {
		m = 1
	}
	return m
}

// randomDAG is the shared RGBOS/RGNOS body: v nodes with U[2,78] costs,
// each node sprouting a uniform number of children with the given mean
// fanout toward random higher-numbered targets, edge costs uniform with
// mean 40·CCR.
func randomDAG(rng *rand.Rand, v int, meanFanout float64, ccr float64) *dag.Graph {
	b := dag.NewBuilder()
	b.Grow(v, 0)
	for i := 0; i < v; i++ {
		b.AddNode(uniformCost(rng, meanNodeCost, 2))
	}
	cm := commMean(ccr)
	maxFan := int(2*meanFanout) + 1
	// Epoch-marked scratch dedups each source's target draws with no
	// per-node map; the draw sequence is exactly the map version's.
	mark := make([]int32, v)
	for i := range mark {
		mark[i] = -1
	}
	for i := 0; i < v-1; i++ {
		kids := rng.Intn(maxFan) // uniform over [0, 2*meanFanout]
		for k := 0; k < kids; k++ {
			j := i + 1 + rng.Intn(v-i-1)
			if mark[j] == int32(i) {
				continue
			}
			mark[j] = int32(i)
			b.AddEdge(dag.NodeID(i), dag.NodeID(j), uniformCost(rng, cm, 1))
		}
	}
	return b.MustBuild()
}

// ccrLabel renders a CCR for use in graph names.
func ccrLabel(ccr float64) string {
	return fmt.Sprintf("ccr%g", ccr)
}
