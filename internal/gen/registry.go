package gen

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/dag"
)

// This file implements the generator registry: every graph family in the
// package — the paper's five suites and the extension families — is
// registered as a Generator, so commands and experiments can enumerate,
// document, and invoke workloads uniformly. Adding a new workload is a
// one-file job: implement the generator and call Register from an init
// function next to it.

// ParamKind is the value type of one generator parameter.
type ParamKind int

// The parameter kinds understood by the registry.
const (
	// IntParam is a decimal integer parameter.
	IntParam ParamKind = iota
	// FloatParam is a decimal floating-point parameter.
	FloatParam
	// BoolParam is a true/false parameter (strconv.ParseBool syntax).
	BoolParam
	// StringParam is an uninterpreted text parameter.
	StringParam
)

// String returns the kind's name as shown in usage text.
func (k ParamKind) String() string {
	switch k {
	case IntParam:
		return "int"
	case FloatParam:
		return "float"
	case BoolParam:
		return "bool"
	case StringParam:
		return "string"
	}
	return "unknown"
}

// ParamSpec declares one parameter of a registered generator: its name,
// kind, textual default, optional inclusive bounds, and a one-line
// description used in generated usage text. Bounds apply to int and
// float parameters only; an empty Min or Max leaves that side open.
// Declared bounds are what schema-driven tools — the adversarial
// instance search's mutation operators in particular — rely on to stay
// inside each family's meaningful parameter region.
type ParamSpec struct {
	Name    string
	Kind    ParamKind
	Default string
	Min     string // inclusive lower bound ("" = unbounded)
	Max     string // inclusive upper bound ("" = unbounded)
	Doc     string
}

// Params maps parameter names to textual values, as written on a command
// line. Parameters a generator declares but the caller omits take their
// declared defaults; parameters the generator does not declare are
// rejected by Generate.
type Params map[string]string

// Resolved is a validated parameter set with every declared parameter
// present, either caller-supplied or defaulted. Generator functions read
// their parameters through the typed accessors; asking for a parameter
// that was not declared with the matching kind is a programming error
// and panics.
type Resolved struct {
	ints    map[string]int
	floats  map[string]float64
	bools   map[string]bool
	strings map[string]string
}

// Int returns a declared IntParam value.
func (r Resolved) Int(name string) int {
	v, ok := r.ints[name]
	if !ok {
		panic(fmt.Sprintf("gen: no int parameter %q resolved", name))
	}
	return v
}

// Float returns a declared FloatParam value.
func (r Resolved) Float(name string) float64 {
	v, ok := r.floats[name]
	if !ok {
		panic(fmt.Sprintf("gen: no float parameter %q resolved", name))
	}
	return v
}

// Bool returns a declared BoolParam value.
func (r Resolved) Bool(name string) bool {
	v, ok := r.bools[name]
	if !ok {
		panic(fmt.Sprintf("gen: no bool parameter %q resolved", name))
	}
	return v
}

// String returns a declared StringParam value.
func (r Resolved) String(name string) string {
	v, ok := r.strings[name]
	if !ok {
		panic(fmt.Sprintf("gen: no string parameter %q resolved", name))
	}
	return v
}

// Generator is one registered graph family.
type Generator struct {
	// Name is the registry key, as accepted by daggen -suite and
	// Generate. Lowercase, no spaces.
	Name string
	// Doc is a one-line description used in generated usage text.
	Doc string
	// Source cites the family's origin (paper section or publication).
	Source string
	// Random marks a random family parameterized by node count and CCR:
	// the registry guarantees such a family declares "v" (IntParam) and
	// "ccr" (FloatParam), which is what the cross-generator sensitivity
	// study (dagbench -exp genx) relies on to generate matched
	// (size, CCR) points across families.
	Random bool
	// Params declares the accepted parameters and their defaults.
	Params []ParamSpec
	// Fn builds one graph. It must be deterministic in (seed, params):
	// the same inputs yield byte-identical graphs.
	Fn func(seed int64, p Resolved) (*dag.Graph, error)
}

// registry holds the registered generators by name. Registration happens
// in init functions, so no locking is needed after package init.
var registry = map[string]Generator{}

// reservedParamNames are parameter names claimed by cmd/daggen's own
// flags (-suite, -seed, -list) or by flag-package conventions (-h,
// -help). The registry rejects them so the flags daggen auto-generates
// from parameter schemas can never collide with its built-ins — keeping
// "register a family and daggen picks it up for free" true for every
// registration that compiles.
var reservedParamNames = map[string]bool{
	"suite": true, "seed": true, "list": true, "h": true, "help": true,
}

// Register adds a generator to the registry. It panics on invalid or
// duplicate registrations, since those are programming errors surfaced
// at package init.
func Register(g Generator) {
	if g.Name == "" || g.Fn == nil {
		panic("gen: Register needs a name and a generator function")
	}
	if _, dup := registry[g.Name]; dup {
		panic(fmt.Sprintf("gen: duplicate generator %q", g.Name))
	}
	seen := map[string]bool{}
	for _, ps := range g.Params {
		if ps.Name == "" {
			panic(fmt.Sprintf("gen: %s: parameter without a name", g.Name))
		}
		if seen[ps.Name] {
			panic(fmt.Sprintf("gen: %s: duplicate parameter %q", g.Name, ps.Name))
		}
		if reservedParamNames[ps.Name] {
			panic(fmt.Sprintf("gen: %s: parameter name %q is reserved for command-line use", g.Name, ps.Name))
		}
		seen[ps.Name] = true
		if _, err := parseParam(ps, ps.Default); err != nil {
			panic(fmt.Sprintf("gen: %s: bad default for %q: %v", g.Name, ps.Name, err))
		}
		if err := validateBounds(ps); err != nil {
			panic(fmt.Sprintf("gen: %s: %v", g.Name, err))
		}
	}
	if g.Random {
		ints, floats := false, false
		for _, ps := range g.Params {
			ints = ints || (ps.Name == "v" && ps.Kind == IntParam)
			floats = floats || (ps.Name == "ccr" && ps.Kind == FloatParam)
		}
		if !ints || !floats {
			panic(fmt.Sprintf("gen: random family %q must declare v (int) and ccr (float)", g.Name))
		}
	}
	registry[g.Name] = g
}

// Generators returns every registered generator, sorted by name.
func Generators() []Generator {
	out := make([]Generator, 0, len(registry))
	for _, g := range registry {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RandomFamilies returns the registered random (v, ccr)-parameterized
// families, sorted by name.
func RandomFamilies() []Generator {
	var out []Generator
	for _, g := range Generators() {
		if g.Random {
			out = append(out, g)
		}
	}
	return out
}

// Lookup returns the generator registered under name.
func Lookup(name string) (Generator, bool) {
	g, ok := registry[name]
	return g, ok
}

// GeneratorNames returns the registered names, sorted.
func GeneratorNames() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Generate builds one graph from the named family. Parameters not in p
// take their declared defaults; unknown parameter names and malformed
// values are errors. Generation is deterministic in (name, seed, p).
func Generate(name string, seed int64, p Params) (*dag.Graph, error) {
	g, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("gen: unknown generator %q (have %v)", name, GeneratorNames())
	}
	r, err := g.resolve(p)
	if err != nil {
		return nil, err
	}
	return g.Fn(seed, r)
}

// resolve validates p against the generator's parameter specs and fills
// in defaults.
func (g Generator) resolve(p Params) (Resolved, error) {
	specs := map[string]ParamSpec{}
	for _, ps := range g.Params {
		specs[ps.Name] = ps
	}
	for name := range p {
		if _, ok := specs[name]; !ok {
			var have []string
			for _, ps := range g.Params {
				have = append(have, ps.Name)
			}
			return Resolved{}, fmt.Errorf("gen: %s has no parameter %q (has %v)", g.Name, name, have)
		}
	}
	r := Resolved{
		ints:    map[string]int{},
		floats:  map[string]float64{},
		bools:   map[string]bool{},
		strings: map[string]string{},
	}
	for _, ps := range g.Params {
		text, given := p[ps.Name]
		if !given {
			text = ps.Default
		}
		v, err := parseParam(ps, text)
		if err != nil {
			return Resolved{}, fmt.Errorf("gen: %s: parameter %s: %v", g.Name, ps.Name, err)
		}
		if err := checkBounds(ps, v); err != nil {
			return Resolved{}, fmt.Errorf("gen: %s: parameter %s: %v", g.Name, ps.Name, err)
		}
		switch ps.Kind {
		case IntParam:
			r.ints[ps.Name] = v.(int)
		case FloatParam:
			r.floats[ps.Name] = v.(float64)
		case BoolParam:
			r.bools[ps.Name] = v.(bool)
		case StringParam:
			r.strings[ps.Name] = v.(string)
		}
	}
	return r, nil
}

// parseParam parses one textual parameter value according to its spec.
func parseParam(ps ParamSpec, text string) (any, error) {
	switch ps.Kind {
	case IntParam:
		v, err := strconv.Atoi(text)
		if err != nil {
			return nil, fmt.Errorf("want an integer, got %q", text)
		}
		return v, nil
	case FloatParam:
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("want a number, got %q", text)
		}
		return v, nil
	case BoolParam:
		v, err := strconv.ParseBool(text)
		if err != nil {
			return nil, fmt.Errorf("want true or false, got %q", text)
		}
		return v, nil
	case StringParam:
		return text, nil
	}
	return nil, fmt.Errorf("unknown parameter kind %d", ps.Kind)
}

// ccrParam is the CCR parameter spec shared by most generators.
func ccrParam() ParamSpec {
	return ParamSpec{Name: "ccr", Kind: FloatParam, Default: "1", Min: "0.001", Max: "1000", Doc: "communication-to-computation ratio"}
}

// validateBounds checks a spec's declared Min/Max at registration time:
// they must parse as the parameter's kind, be orderable (int or float),
// and bracket the declared default.
func validateBounds(ps ParamSpec) error {
	if ps.Min == "" && ps.Max == "" {
		return nil
	}
	if ps.Kind != IntParam && ps.Kind != FloatParam {
		return fmt.Errorf("parameter %q: bounds need an int or float kind, got %s", ps.Name, ps.Kind)
	}
	for _, text := range []string{ps.Min, ps.Max} {
		if text == "" {
			continue
		}
		if _, err := parseParam(ps, text); err != nil {
			return fmt.Errorf("parameter %q: bad bound %q: %v", ps.Name, text, err)
		}
	}
	def, _ := parseParam(ps, ps.Default)
	if err := checkBounds(ps, def); err != nil {
		return fmt.Errorf("parameter %q: default out of bounds: %v", ps.Name, err)
	}
	if ps.Min != "" && ps.Max != "" {
		lo, _ := parseParam(ps, ps.Min)
		hi, _ := parseParam(ps, ps.Max)
		switch ps.Kind {
		case IntParam:
			if lo.(int) > hi.(int) {
				return fmt.Errorf("parameter %q: min %s > max %s", ps.Name, ps.Min, ps.Max)
			}
		case FloatParam:
			if lo.(float64) > hi.(float64) {
				return fmt.Errorf("parameter %q: min %s > max %s", ps.Name, ps.Min, ps.Max)
			}
		}
	}
	return nil
}

// checkBounds rejects a parsed value outside the spec's declared bounds.
func checkBounds(ps ParamSpec, v any) error {
	switch ps.Kind {
	case IntParam:
		x := v.(int)
		if ps.Min != "" {
			if lo, _ := strconv.Atoi(ps.Min); x < lo {
				return fmt.Errorf("value %d below minimum %s", x, ps.Min)
			}
		}
		if ps.Max != "" {
			if hi, _ := strconv.Atoi(ps.Max); x > hi {
				return fmt.Errorf("value %d above maximum %s", x, ps.Max)
			}
		}
	case FloatParam:
		x := v.(float64)
		if math.IsNaN(x) && (ps.Min != "" || ps.Max != "") {
			return fmt.Errorf("value NaN cannot satisfy declared bounds")
		}
		if ps.Min != "" {
			if lo, _ := strconv.ParseFloat(ps.Min, 64); x < lo {
				return fmt.Errorf("value %g below minimum %s", x, ps.Min)
			}
		}
		if ps.Max != "" {
			if hi, _ := strconv.ParseFloat(ps.Max, 64); x > hi {
				return fmt.Errorf("value %g above maximum %s", x, ps.Max)
			}
		}
	}
	return nil
}
