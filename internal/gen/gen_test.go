package gen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dag"
)

func TestPeerSetSuite(t *testing.T) {
	psgs := PeerSet()
	if len(psgs) != 10 {
		t.Fatalf("PeerSet has %d graphs, want 10", len(psgs))
	}
	seen := map[string]bool{}
	for _, ng := range psgs {
		if ng.Name == "" || ng.Source == "" {
			t.Errorf("graph missing name or source: %+v", ng.Name)
		}
		if seen[ng.Name] {
			t.Errorf("duplicate PSG name %q", ng.Name)
		}
		seen[ng.Name] = true
		if err := ng.G.Validate(); err != nil {
			t.Errorf("%s: %v", ng.Name, err)
		}
		if ng.G.NumNodes() < 4 || ng.G.NumNodes() > 32 {
			t.Errorf("%s: %d nodes, PSGs should be small", ng.Name, ng.G.NumNodes())
		}
	}
}

func TestRGBOSSuiteShape(t *testing.T) {
	suite := RGBOS(DefaultRGBOSConfig(1.0, 42))
	if len(suite) != 12 {
		t.Fatalf("RGBOS subset has %d graphs, want 12 (10..32 step 2)", len(suite))
	}
	for i, ng := range suite {
		want := 10 + 2*i
		if ng.G.NumNodes() != want {
			t.Errorf("graph %d has %d nodes, want %d", i, ng.G.NumNodes(), want)
		}
		if err := ng.G.Validate(); err != nil {
			t.Errorf("%s: %v", ng.Name, err)
		}
	}
}

func TestRGBOSDeterministic(t *testing.T) {
	a := RGBOS(DefaultRGBOSConfig(1.0, 7))
	b := RGBOS(DefaultRGBOSConfig(1.0, 7))
	for i := range a {
		if a[i].G.NumEdges() != b[i].G.NumEdges() {
			t.Fatalf("graph %d differs between equal-seed runs", i)
		}
	}
	c := RGBOS(DefaultRGBOSConfig(1.0, 8))
	same := true
	for i := range a {
		if a[i].G.NumEdges() != c[i].G.NumEdges() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical suites (suspicious)")
	}
}

func TestRGBOSCCRTracksTarget(t *testing.T) {
	for _, ccr := range PaperCCRs {
		suite := RGBOS(DefaultRGBOSConfig(ccr, 3))
		var total float64
		n := 0
		for _, ng := range suite {
			if ng.G.NumEdges() == 0 {
				continue
			}
			total += ng.G.CCR()
			n++
		}
		avg := total / float64(n)
		if avg < ccr/2 || avg > ccr*2 {
			t.Errorf("CCR=%g: measured average %.3f is off by more than 2x", ccr, avg)
		}
	}
}

func TestRGPOSConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, v := range []int{50, 120, 300} {
		inst := RGPOSGraph(rng, v, 8, 1.0)
		if err := inst.G.Validate(); err != nil {
			t.Fatalf("v=%d: %v", v, err)
		}
		// The construction schedule must be a valid schedule of exactly
		// the promised length with every processor fully busy.
		if err := inst.Optimal.Validate(); err != nil {
			t.Fatalf("v=%d: optimal schedule invalid: %v", v, err)
		}
		if !inst.Optimal.Complete() {
			t.Fatalf("v=%d: optimal schedule incomplete", v)
		}
		if inst.Optimal.Length() != inst.OptimalLength {
			t.Fatalf("v=%d: optimal length %d != promised %d",
				v, inst.Optimal.Length(), inst.OptimalLength)
		}
		// No idle: per-processor busy time equals the span.
		for p := 0; p < inst.Procs; p++ {
			var busy int64
			for _, sl := range inst.Optimal.Slots(p) {
				busy += sl.Finish - sl.Start
			}
			if busy != inst.OptimalLength {
				t.Fatalf("v=%d: P%d busy %d of %d (idle time in 'optimal' schedule)",
					v, p, busy, inst.OptimalLength)
			}
		}
		// Total work = procs * L means L is a hard lower bound.
		if inst.G.TotalComputation() != int64(inst.Procs)*inst.OptimalLength {
			t.Fatalf("v=%d: total work %d != p*L = %d",
				v, inst.G.TotalComputation(), int64(inst.Procs)*inst.OptimalLength)
		}
		// Chain edges pin most per-processor sequences (70% of the
		// consecutive pairs): verify the majority is chained, which is
		// what keeps unbounded-processor schedules from beating L.
		chained, pairs := 0, 0
		for p := 0; p < inst.Procs; p++ {
			slots := inst.Optimal.Slots(p)
			for i := 1; i < len(slots); i++ {
				pairs++
				if inst.G.HasEdge(slots[i-1].Node, slots[i].Node) {
					chained++
				}
			}
		}
		if pairs > 0 && float64(chained)/float64(pairs) < 0.5 {
			t.Fatalf("v=%d: only %d of %d consecutive pairs chained", v, chained, pairs)
		}
	}
}

func TestRGPOSSuiteShape(t *testing.T) {
	suite := RGPOS(DefaultRGPOSConfig(0.1, 11))
	if len(suite) != 10 {
		t.Fatalf("RGPOS subset has %d instances, want 10", len(suite))
	}
	for _, inst := range suite {
		if inst.Name == "" {
			t.Error("instance missing name")
		}
	}
}

func TestRGNOSSuiteShape(t *testing.T) {
	cfg := DefaultRGNOSConfig(1)
	cfg.MaxNodes = 150 // keep the test fast: 3 sizes x 5 CCR x 5 par = 75
	suite := RGNOS(cfg)
	if len(suite) != 75 {
		t.Fatalf("RGNOS suite has %d graphs, want 75", len(suite))
	}
	for _, ng := range suite {
		if err := ng.G.Validate(); err != nil {
			t.Fatalf("%s: %v", ng.Name, err)
		}
	}
}

func TestRGNOSWidthTracksParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	v := 100
	w1 := dag.Width(RGNOSGraph(rng, v, 1.0, 1))
	w5 := dag.Width(RGNOSGraph(rng, v, 1.0, 5))
	t1 := math.Sqrt(float64(v))     // target 10
	t5 := 5 * math.Sqrt(float64(v)) // target 50
	if float64(w1) > 3*t1 {
		t.Errorf("parallelism 1: width %d far above target %.0f", w1, t1)
	}
	if float64(w5) < t5/3 {
		t.Errorf("parallelism 5: width %d far below target %.0f", w5, t5)
	}
	if w5 <= w1 {
		t.Errorf("width does not grow with parallelism: w1=%d w5=%d", w1, w5)
	}
}

func TestRGNOSNodeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, v := range []int{50, 250, 500} {
		g := RGNOSGraph(rng, v, 1.0, 3)
		if g.NumNodes() != v {
			t.Errorf("RGNOSGraph(%d) has %d nodes", v, g.NumNodes())
		}
	}
}

func TestCholeskyStructure(t *testing.T) {
	for _, n := range []int{1, 2, 5, 10} {
		g, err := Cholesky(n, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		want := n + n*(n-1)/2
		if g.NumNodes() != want {
			t.Errorf("Cholesky(%d) has %d tasks, want %d", n, g.NumNodes(), want)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Cholesky(0, 1.0); err == nil {
		t.Error("Cholesky accepted N=0")
	}
}

func TestCholeskyDependencies(t *testing.T) {
	g, err := Cholesky(3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// cdiv1 is the only entry; cdiv3 the only exit.
	entries := g.Entries()
	if len(entries) != 1 || g.Label(entries[0]) != "cdiv1" {
		t.Errorf("entries = %v, want only cdiv1", entries)
	}
	exits := g.Exits()
	if len(exits) != 1 || g.Label(exits[0]) != "cdiv3" {
		t.Errorf("exits = %v, want only cdiv3", exits)
	}
}

func TestGaussianEliminationStructure(t *testing.T) {
	g, err := GaussianElimination(5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Tasks: sum over k=1..4 of 1 pivot + (5-k) updates = 4 + (4+3+2+1) = 14... wait:
	// k runs 1..n-1: pivots = 4; updates per k = n-k: 4+3+2+1 = 10; total 14... hmm.
	want := 4 + 10
	if g.NumNodes() != want {
		t.Errorf("GaussianElimination(5) has %d tasks, want %d", g.NumNodes(), want)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := GaussianElimination(0, 1.0); err == nil {
		t.Error("accepted N=0")
	}
}

func TestFFTStructure(t *testing.T) {
	g, err := FFT(8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// 8 inputs + 3 ranks x 4 butterflies = 20 tasks.
	if g.NumNodes() != 20 {
		t.Errorf("FFT(8) has %d tasks, want 20", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := FFT(6, 1.0); err == nil {
		t.Error("accepted non-power-of-two point count")
	}
	if _, err := FFT(1, 1.0); err == nil {
		t.Error("accepted single point")
	}
}

func TestShapeGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ot, err := OutTree(rng, 3, 2, 1.0)
	if err != nil || ot.NumNodes() != 7 {
		t.Errorf("OutTree(3,2): %d nodes, err %v; want 7", ot.NumNodes(), err)
	}
	it, err := InTree(rng, 3, 2, 1.0)
	if err != nil || it.NumNodes() != 7 {
		t.Errorf("InTree(3,2): %d nodes, err %v; want 7", it.NumNodes(), err)
	}
	if len(it.Exits()) != 1 {
		t.Error("InTree should reduce to a single root")
	}
	fj, err := ForkJoin(rng, 2, 3, 1.0)
	if err != nil || fj.NumNodes() != 9 {
		t.Errorf("ForkJoin(2,3): %d nodes, err %v; want 9", fj.NumNodes(), err)
	}
	ch, err := Chain(rng, 5, 1.0)
	if err != nil || ch.NumNodes() != 5 {
		t.Errorf("Chain(5): %d nodes, err %v", ch.NumNodes(), err)
	}
	if w := dag.Width(ch); w != 1 {
		t.Errorf("chain width = %d", w)
	}
	for _, bad := range []error{
		errOf(OutTree(rng, 0, 2, 1)), errOf(InTree(rng, 1, 0, 1)),
		errOf(ForkJoin(rng, 0, 1, 1)), errOf(Chain(rng, 0, 1)),
	} {
		if bad == nil {
			t.Error("shape generator accepted invalid arguments")
		}
	}
}

func errOf(_ *dag.Graph, err error) error { return err }

func TestUniformCostRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var sum int64
	const trials = 20000
	for i := 0; i < trials; i++ {
		c := uniformCost(rng, 40, 2)
		if c < 2 || c > 78 {
			t.Fatalf("cost %d outside [2,78]", c)
		}
		sum += c
	}
	mean := float64(sum) / trials
	if mean < 38 || mean > 42 {
		t.Errorf("mean cost %.2f, want ~40", mean)
	}
}

func TestCommMean(t *testing.T) {
	cases := map[float64]int64{0.1: 4, 0.5: 20, 1: 40, 2: 80, 10: 400, 0.001: 1}
	for ccr, want := range cases {
		if got := commMean(ccr); got != want {
			t.Errorf("commMean(%g) = %d, want %d", ccr, got, want)
		}
	}
}
