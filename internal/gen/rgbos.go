package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/dag"
)

func init() {
	Register(Generator{
		Name:   "rgbos",
		Doc:    "RGBOS-style random graphs: mean fanout v/10, node costs U[2,78]",
		Source: "Kwok & Ahmad (IPPS 1998), section 5.2",
		Random: true,
		Params: []ParamSpec{
			{Name: "v", Kind: IntParam, Default: "20", Min: "1", Max: "1000000", Doc: "node count"},
			ccrParam(),
		},
		Fn: func(seed int64, p Resolved) (*dag.Graph, error) {
			v := p.Int("v")
			if v < 1 {
				return nil, fmt.Errorf("gen: rgbos needs v >= 1, got %d", v)
			}
			return RGBOSGraph(rand.New(rand.NewSource(seed)), v, p.Float("ccr")), nil
		},
	})
}

// RGBOSConfig parameterizes the "random graphs with branch-and-bound
// optimal solutions" suite (paper section 5.2).
type RGBOSConfig struct {
	CCR      float64
	MinNodes int // inclusive, paper: 10
	MaxNodes int // inclusive, paper: 32
	Step     int // paper: 2
	Seed     int64
}

// DefaultRGBOSConfig returns the paper's parameters for one CCR subset:
// 12 graphs of 10..32 nodes in steps of 2.
func DefaultRGBOSConfig(ccr float64, seed int64) RGBOSConfig {
	return RGBOSConfig{CCR: ccr, MinNodes: 10, MaxNodes: 32, Step: 2, Seed: seed}
}

// RGBOS generates one CCR subset of the suite. Optimal lengths are not
// attached here — internal/core pairs each instance with a
// branch-and-bound result, mirroring the paper's use of a separate
// (parallel A*) optimal solver.
func RGBOS(cfg RGBOSConfig) []NamedGraph {
	if cfg.Step <= 0 {
		cfg.Step = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []NamedGraph
	for v := cfg.MinNodes; v <= cfg.MaxNodes; v += cfg.Step {
		out = append(out, NamedGraph{
			Name:   fmt.Sprintf("rgbos-v%d-%s", v, ccrLabel(cfg.CCR)),
			Source: fmt.Sprintf("RGBOS v=%d CCR=%g seed=%d", v, cfg.CCR, cfg.Seed),
			G:      RGBOSGraph(rng, v, cfg.CCR),
		})
	}
	return out
}

// RGBOSGraph generates a single RGBOS-style graph: node costs U[2,78]
// (mean 40), mean fanout v/10, edge costs uniform with mean 40·CCR.
func RGBOSGraph(rng *rand.Rand, v int, ccr float64) *dag.Graph {
	return randomDAG(rng, v, float64(v)/10, ccr)
}
