package gen

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dag"
)

// This file pins the streaming/arena rewrites of the generator families
// to the original implementations: below the streaming cutoff every
// family must produce byte-identical graphs to the pre-rewrite code
// (same RNG draw sequence, map dedup replaced by epoch marks), and above
// the cutoff the streaming paths must preserve the family invariants.
// The ref* functions are faithful copies of the original map-based
// constructions, kept verbatim as executable specifications.

func refRandomDAG(rng *rand.Rand, v int, meanFanout float64, ccr float64) *dag.Graph {
	b := dag.NewBuilder()
	for i := 0; i < v; i++ {
		b.AddNode(uniformCost(rng, meanNodeCost, 2))
	}
	cm := commMean(ccr)
	maxFan := int(2*meanFanout) + 1
	for i := 0; i < v-1; i++ {
		kids := rng.Intn(maxFan)
		seen := map[int]bool{}
		for k := 0; k < kids; k++ {
			j := i + 1 + rng.Intn(v-i-1)
			if seen[j] {
				continue
			}
			seen[j] = true
			b.AddEdge(dag.NodeID(i), dag.NodeID(j), uniformCost(rng, cm, 1))
		}
	}
	return b.MustBuild()
}

func refErdosRenyi(rng *rand.Rand, v int, p, ccr float64, connect bool) (*dag.Graph, error) {
	b := dag.NewBuilder()
	for i := 0; i < v; i++ {
		b.AddNode(uniformCost(rng, meanNodeCost, 2))
	}
	cm := commMean(ccr)
	linked := newLinkTracker(v)
	for i := 0; i < v; i++ {
		for j := i + 1; j < v; j++ {
			if rng.Float64() < p {
				b.AddEdge(dag.NodeID(i), dag.NodeID(j), uniformCost(rng, cm, 1))
				linked.union(dag.NodeID(i), dag.NodeID(j))
			}
		}
	}
	if connect {
		linked.connect(b, rng, cm)
	}
	return b.Build()
}

func refLayerByLayer(rng *rand.Rand, v, layers int, p, ccr float64, connect bool) (*dag.Graph, error) {
	if layers <= 0 {
		layers = int(math.Round(math.Sqrt(float64(v))))
		if layers < 2 && v > 1 {
			layers = 2
		}
	}
	if layers > v {
		layers = v
	}
	counts := make([]int, layers)
	for i := 0; i < v; i++ {
		counts[rng.Intn(layers)]++
	}
	if connect && v > 1 {
		nonEmpty, last := 0, 0
		for i, c := range counts {
			if c > 0 {
				nonEmpty++
				last = i
			}
		}
		if nonEmpty == 1 {
			counts[last]--
			if last+1 < layers {
				counts[last+1]++
			} else {
				counts[last-1]++
			}
		}
	}
	b := dag.NewBuilder()
	var layerNodes [][]dag.NodeID
	for _, c := range counts {
		if c == 0 {
			continue
		}
		layer := make([]dag.NodeID, c)
		for i := range layer {
			layer[i] = b.AddNode(uniformCost(rng, meanNodeCost, 2))
		}
		layerNodes = append(layerNodes, layer)
	}
	cm := commMean(ccr)
	linked := newLinkTracker(v)
	for k := 1; k < len(layerNodes); k++ {
		for _, u := range layerNodes[k-1] {
			for _, w := range layerNodes[k] {
				if rng.Float64() < p {
					b.AddEdge(u, w, uniformCost(rng, cm, 1))
					linked.union(u, w)
				}
			}
		}
	}
	if connect {
		// Legacy connect pass: per-node rescan of root-connected parents.
		if len(layerNodes) >= 2 {
			root := layerNodes[0][0]
			inRoot := func(n dag.NodeID) bool { return linked.find(int(n)) == linked.find(int(root)) }
			for k := 1; k < len(layerNodes); k++ {
				var candidates []dag.NodeID
				for _, w := range layerNodes[k] {
					if inRoot(w) {
						continue
					}
					candidates = candidates[:0]
					for _, u := range layerNodes[k-1] {
						if inRoot(u) {
							candidates = append(candidates, u)
						}
					}
					u := candidates[rng.Intn(len(candidates))]
					b.AddEdge(u, w, uniformCost(rng, cm, 1))
					linked.union(u, w)
				}
			}
			for _, x := range layerNodes[0] {
				if !inRoot(x) {
					w := layerNodes[1][rng.Intn(len(layerNodes[1]))]
					b.AddEdge(x, w, uniformCost(rng, cm, 1))
					linked.union(x, w)
				}
			}
		}
	}
	return b.Build()
}

func refFanInFanOut(rng *rand.Rand, v, maxout, maxin int, ccr float64) (*dag.Graph, error) {
	b := dag.NewBuilder()
	cm := commMean(ccr)
	b.AddNode(uniformCost(rng, meanNodeCost, 2))
	for b.NumNodes() < v {
		n := b.NumNodes()
		if rng.Intn(2) == 0 {
			parent := dag.NodeID(rng.Intn(n))
			kids := 1 + rng.Intn(maxout)
			if kids > v-n {
				kids = v - n
			}
			for c := 0; c < kids; c++ {
				child := b.AddNode(uniformCost(rng, meanNodeCost, 2))
				b.AddEdge(parent, child, uniformCost(rng, cm, 1))
			}
		} else {
			parents := 1 + rng.Intn(maxin)
			if parents > n {
				parents = n
			}
			seen := map[dag.NodeID]bool{}
			join := b.AddNode(uniformCost(rng, meanNodeCost, 2))
			for len(seen) < parents {
				p := dag.NodeID(rng.Intn(n))
				if seen[p] {
					continue
				}
				seen[p] = true
				b.AddEdge(p, join, uniformCost(rng, cm, 1))
			}
		}
	}
	return b.Build()
}

func refRGNOSGraph(rng *rand.Rand, v int, ccr float64, parallelism int) *dag.Graph {
	if parallelism < 1 {
		parallelism = 1
	}
	targetWidth := int(math.Round(float64(parallelism) * math.Sqrt(float64(v))))
	if targetWidth < 1 {
		targetWidth = 1
	}
	if targetWidth > v {
		targetWidth = v
	}
	b := dag.NewBuilder()
	var layers [][]dag.NodeID
	placed := 0
	for placed < v {
		w := int(uniformCost(rng, int64(targetWidth), 1))
		if w > v-placed {
			w = v - placed
		}
		layer := make([]dag.NodeID, 0, w)
		for i := 0; i < w; i++ {
			layer = append(layer, b.AddNode(uniformCost(rng, meanNodeCost, 2)))
		}
		layers = append(layers, layer)
		placed += w
	}
	cm := commMean(ccr)
	type edgeKey struct{ u, v dag.NodeID }
	added := map[edgeKey]bool{}
	addEdge := func(u, v dag.NodeID) {
		if added[edgeKey{u, v}] {
			return
		}
		added[edgeKey{u, v}] = true
		b.AddEdge(u, v, uniformCost(rng, cm, 1))
	}
	for k := 1; k < len(layers); k++ {
		prev := layers[k-1]
		for _, n := range layers[k] {
			addEdge(prev[rng.Intn(len(prev))], n)
		}
	}
	maxFan := int(float64(v)/5) + 1
	for k := 0; k+1 < len(layers); k++ {
		for _, u := range layers[k] {
			kids := rng.Intn(maxFan)
			for e := 0; e < kids; e++ {
				tl := k + 1 + rng.Intn(len(layers)-k-1)
				addEdge(u, layers[tl][rng.Intn(len(layers[tl]))])
			}
		}
	}
	return b.MustBuild()
}

func canonicalBytes(t *testing.T, g *dag.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := dag.WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func requireIdentical(t *testing.T, label string, got, want *dag.Graph) {
	t.Helper()
	gb, wb := canonicalBytes(t, got), canonicalBytes(t, want)
	if !bytes.Equal(gb, wb) {
		t.Fatalf("%s: rewritten generator diverged from reference implementation (%d vs %d bytes of canonical text)",
			label, len(gb), len(wb))
	}
}

// TestGeneratorEquivalence pins the rewritten families byte-identical to
// the original implementations at (and past) every size the committed
// benchmarks use, for a spread of CCRs and seeds.
func TestGeneratorEquivalence(t *testing.T) {
	sizes := []int{1, 2, 7, 50, 257, 1000}
	if testing.Short() {
		sizes = []int{1, 2, 7, 50}
	}
	ccrs := []float64{0.1, 1.0, 10.0}
	for _, v := range sizes {
		for ci, ccr := range ccrs {
			seed := int64(1000*v + ci)
			label := fmt.Sprintf("v=%d ccr=%g", v, ccr)

			got := randomDAG(rand.New(rand.NewSource(seed)), v, float64(v)/10, ccr)
			want := refRandomDAG(rand.New(rand.NewSource(seed)), v, float64(v)/10, ccr)
			requireIdentical(t, "randomDAG "+label, got, want)

			got, err1 := ErdosRenyi(rand.New(rand.NewSource(seed)), v, 0.1, ccr, true)
			want, err2 := refErdosRenyi(rand.New(rand.NewSource(seed)), v, 0.1, ccr, true)
			if err1 != nil || err2 != nil {
				t.Fatalf("erdos %s: %v / %v", label, err1, err2)
			}
			requireIdentical(t, "erdos "+label, got, want)

			got, err1 = LayerByLayer(rand.New(rand.NewSource(seed)), v, 0, 0.25, ccr, true)
			want, err2 = refLayerByLayer(rand.New(rand.NewSource(seed)), v, 0, 0.25, ccr, true)
			if err1 != nil || err2 != nil {
				t.Fatalf("layered %s: %v / %v", label, err1, err2)
			}
			requireIdentical(t, "layered "+label, got, want)

			got, err1 = FanInFanOut(rand.New(rand.NewSource(seed)), v, 3, 3, ccr)
			want, err2 = refFanInFanOut(rand.New(rand.NewSource(seed)), v, 3, 3, ccr)
			if err1 != nil || err2 != nil {
				t.Fatalf("faninout %s: %v / %v", label, err1, err2)
			}
			requireIdentical(t, "faninout "+label, got, want)

			if v <= 500 { // reference dedup map is quadratic in memory past this
				got = RGNOSGraph(rand.New(rand.NewSource(seed)), v, ccr, 3)
				want = refRGNOSGraph(rand.New(rand.NewSource(seed)), v, ccr, 3)
				requireIdentical(t, "rgnos "+label, got, want)
			}
		}
	}
}

// TestStreamingRegimeInvariants exercises the geometric-skip paths past
// the cutoff: valid DAGs, deterministic for a seed, single weakly
// connected component under connect, and an edge count near p x pairs.
func TestStreamingRegimeInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("streaming-regime instances are large")
	}
	v := streamCutoff * 2
	p := 8.0 / float64(v-1) // E[edges] = 4v on the full pair grid

	g, err := ErdosRenyi(rand.New(rand.NewSource(5)), v, p, 1.0, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("streaming erdos invalid: %v", err)
	}
	expected := p * float64(v) * float64(v-1) / 2
	if got := float64(g.NumEdges()); got < 0.8*expected || got > 1.3*expected {
		t.Errorf("streaming erdos edge count %v far from expected %v", got, expected)
	}
	again, err := ErdosRenyi(rand.New(rand.NewSource(5)), v, p, 1.0, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canonicalBytes(t, g), canonicalBytes(t, again)) {
		t.Error("streaming erdos is not deterministic for a fixed seed")
	}
	assertConnected(t, "erdos", g)

	lg, err := LayerByLayer(rand.New(rand.NewSource(5)), v, 0, 4/math.Sqrt(float64(v)), 1.0, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Validate(); err != nil {
		t.Fatalf("streaming layered invalid: %v", err)
	}
	assertConnected(t, "layered", lg)
}

func assertConnected(t *testing.T, label string, g *dag.Graph) {
	t.Helper()
	linked := newLinkTracker(g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		for _, a := range g.Succs(dag.NodeID(v)) {
			linked.union(dag.NodeID(v), a.To)
		}
	}
	root := linked.find(0)
	for v := 1; v < g.NumNodes(); v++ {
		if linked.find(v) != root {
			t.Fatalf("%s: node %d not weakly connected to node 0", label, v)
		}
	}
}

// TestCrossFormatAllFamilies is the cross-format property test: every
// registered family's output survives text and binary serialization
// with an identical canonical form.
func TestCrossFormatAllFamilies(t *testing.T) {
	for _, gen := range Generators() {
		params := Params{}
		for _, spec := range gen.Params {
			if spec.Name == "v" {
				params["v"] = "60"
			}
		}
		if gen.Name == "psg" {
			params["name"] = "kwok-ahmad-9" // psg has no default graph
		}
		g, err := Generate(gen.Name, 11, params)
		if err != nil {
			t.Fatalf("%s: generate: %v", gen.Name, err)
		}
		canon := canonicalBytes(t, g)

		var bin bytes.Buffer
		if err := dag.WriteBinary(&bin, g); err != nil {
			t.Fatalf("%s: WriteBinary: %v", gen.Name, err)
		}
		fromBin, err := dag.ReadBinary(bytes.NewReader(bin.Bytes()))
		if err != nil {
			t.Fatalf("%s: ReadBinary: %v", gen.Name, err)
		}
		if !bytes.Equal(canon, canonicalBytes(t, fromBin)) {
			t.Errorf("%s: binary round trip changed the canonical form", gen.Name)
		}

		fromText, err := dag.ReadAny(bytes.NewReader(canon))
		if err != nil {
			t.Fatalf("%s: ReadAny(text): %v", gen.Name, err)
		}
		if !bytes.Equal(canon, canonicalBytes(t, fromText)) {
			t.Errorf("%s: text round trip changed the canonical form", gen.Name)
		}

		if bin.Len() >= len(canon)/2 {
			t.Errorf("%s: binary form (%d bytes) not under half the text form (%d bytes)",
				gen.Name, bin.Len(), len(canon))
		}
	}
}
