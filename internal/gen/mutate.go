package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// This file implements schema-driven parameter mutation: given a
// registered generator and a textual parameter set, MutateParams
// perturbs one parameter inside the generator's declared ParamSpec
// bounds. The adversarial instance search (internal/adversarial) is the
// primary client — it walks a family's parameter space by repeated
// mutation and relies on every mutant still resolving against the
// schema — but the helpers are generic: any registered family can be
// mutated, and ValidateParams reports whether a parameter set is
// in-schema without generating anything.

// ValidateParams checks p against the generator's parameter schema:
// unknown names, malformed values, and values outside declared bounds
// are errors. It is Generate's validation without the generation.
func (g Generator) ValidateParams(p Params) error {
	_, err := g.resolve(p)
	return err
}

// intBounds returns the spec's declared int range, substituting wide
// finite defaults for open sides so mutation always has a range to
// clamp into.
func intBounds(ps ParamSpec) (lo, hi int) {
	lo, hi = 0, 1<<20
	if ps.Min != "" {
		lo, _ = strconv.Atoi(ps.Min)
	}
	if ps.Max != "" {
		hi, _ = strconv.Atoi(ps.Max)
	}
	return lo, hi
}

// floatBounds is intBounds for float parameters.
func floatBounds(ps ParamSpec) (lo, hi float64) {
	lo, hi = 0, 1e6
	if ps.Min != "" {
		lo, _ = strconv.ParseFloat(ps.Min, 64)
	}
	if ps.Max != "" {
		hi, _ = strconv.ParseFloat(ps.Max, 64)
	}
	return lo, hi
}

// ClampInt clamps v into the spec's declared bounds (open sides use
// wide finite defaults).
func ClampInt(ps ParamSpec, v int) int {
	lo, hi := intBounds(ps)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampFloat clamps v into the spec's declared bounds (open sides use
// wide finite defaults).
func ClampFloat(ps ParamSpec, v float64) float64 {
	lo, hi := floatBounds(ps)
	if math.IsNaN(v) || v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// FormatFloatParam renders a float parameter value in the canonical
// textual form used by mutated parameter sets: shortest representation
// that round-trips exactly.
func FormatFloatParam(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// mutableSpecs returns the generator's parameters that MutateParams
// knows how to perturb — int, float, and bool kinds — in schema order.
func (g Generator) mutableSpecs() []ParamSpec {
	var out []ParamSpec
	for _, ps := range g.Params {
		if ps.Kind == IntParam || ps.Kind == FloatParam || ps.Kind == BoolParam {
			out = append(out, ps)
		}
	}
	return out
}

// MutateParams returns a copy of p with one randomly chosen mutable
// parameter perturbed inside its declared bounds:
//
//   - int parameters take a relative step of up to ±40% (at least ±1),
//     clamped to [Min, Max];
//   - float parameters are scaled by exp(U[-0.4, 0.4]) (zero values take
//     a small absolute step instead), clamped to [Min, Max];
//   - bool parameters flip.
//
// Parameters absent from p mutate from their declared defaults; string
// parameters and parameters of a generator with no mutable parameters
// are left untouched. The result is always in-schema: it resolves
// against every ParamSpec of the generator, including bounds. Mutation
// is deterministic in (g, p, rng state).
func MutateParams(g Generator, p Params, rng *rand.Rand) Params {
	out := make(Params, len(p)+1)
	for k, v := range p {
		out[k] = v
	}
	specs := g.mutableSpecs()
	if len(specs) == 0 {
		return out
	}
	ps := specs[rng.Intn(len(specs))]
	cur, given := out[ps.Name]
	if !given {
		cur = ps.Default
	}
	switch ps.Kind {
	case IntParam:
		v, err := strconv.Atoi(cur)
		if err != nil {
			v, _ = strconv.Atoi(ps.Default)
		}
		// Relative step, minimum magnitude 1, either direction.
		step := int(math.Ceil(math.Abs(float64(v)) * rng.Float64() * 0.4))
		if step < 1 {
			step = 1
		}
		if rng.Intn(2) == 0 {
			step = -step
		}
		out[ps.Name] = strconv.Itoa(ClampInt(ps, v+step))
	case FloatParam:
		v, err := strconv.ParseFloat(cur, 64)
		if err != nil || math.IsNaN(v) {
			v, _ = strconv.ParseFloat(ps.Default, 64)
		}
		if v == 0 {
			lo, hi := floatBounds(ps)
			span := hi - lo
			if span > 1 {
				span = 1
			}
			v += rng.Float64() * 0.1 * span
		} else {
			v *= math.Exp((rng.Float64() - 0.5) * 0.8)
		}
		out[ps.Name] = FormatFloatParam(ClampFloat(ps, v))
	case BoolParam:
		v, err := strconv.ParseBool(cur)
		if err != nil {
			v, _ = strconv.ParseBool(ps.Default)
		}
		out[ps.Name] = strconv.FormatBool(!v)
	}
	return out
}

// CanonicalParams renders a parameter set as a deterministic
// space-separated "name=value" list in name order, for candidate keys
// and fixture provenance lines.
func CanonicalParams(p Params) string {
	names := make([]string, 0, len(p))
	for n := range p {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for i, n := range names {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%s", n, p[n])
	}
	return s
}

// ParseCanonicalParams parses CanonicalParams output back into a
// parameter set; malformed entries are errors.
func ParseCanonicalParams(s string) (Params, error) {
	p := Params{}
	for _, field := range strings.Fields(s) {
		name, value, ok := strings.Cut(field, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("gen: malformed parameter entry %q", field)
		}
		p[name] = value
	}
	return p, nil
}
