package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/dag"
	"repro/internal/sched"
)

func init() {
	// RGPOS is registered for generation but not as a Random family: its
	// node count is only approximate (the construction partitions
	// processor timelines) and its case-I edge weights are clamped to
	// fit schedule gaps, so it cannot honor matched (size, CCR) points
	// the way the genx sensitivity study requires.
	Register(Generator{
		Name:   "rgpos",
		Doc:    "random graphs constructed around a hidden optimal schedule (graph only)",
		Source: "Kwok & Ahmad (IPPS 1998), section 5.3",
		Params: []ParamSpec{
			{Name: "v", Kind: IntParam, Default: "50", Min: "1", Max: "1000000", Doc: "approximate node count"},
			ccrParam(),
			{Name: "procs", Kind: IntParam, Default: "8", Min: "1", Max: "512", Doc: "processors of the hidden construction schedule"},
		},
		Fn: func(seed int64, p Resolved) (*dag.Graph, error) {
			v, procs := p.Int("v"), p.Int("procs")
			if v < 1 || procs < 1 {
				return nil, fmt.Errorf("gen: rgpos needs v, procs >= 1 (got %d, %d)", v, procs)
			}
			inst := RGPOSGraph(rand.New(rand.NewSource(seed)), v, procs, p.Float("ccr"))
			return inst.G, nil
		},
	})
}

// RGPOSInstance is one "random graph with pre-determined optimal
// schedule" (paper section 5.3): the graph, the schedule it was built
// around, and that schedule's length, which is optimal for the given
// processor count because every processor is busy for the entire span.
type RGPOSInstance struct {
	NamedGraph
	Procs         int
	OptimalLength int64
	// Optimal is the construction schedule: v tasks packed with no idle
	// time onto Procs processors.
	Optimal *sched.Schedule
}

// RGPOSConfig parameterizes the suite.
type RGPOSConfig struct {
	CCR      float64
	MinNodes int // paper: 50
	MaxNodes int // paper: 500
	Step     int // paper: 50
	Procs    int // processors of the pre-determined schedule
	Seed     int64
}

// DefaultRGPOSConfig returns the paper's shape for one CCR subset: 10
// graphs of 50..500 nodes. The paper does not state its processor count;
// 8 matches the APN experiments ("a 500-node task graph is scheduled to
// 8 processors").
func DefaultRGPOSConfig(ccr float64, seed int64) RGPOSConfig {
	return RGPOSConfig{CCR: ccr, MinNodes: 50, MaxNodes: 500, Step: 50, Procs: 8, Seed: seed}
}

// RGPOS generates one CCR subset of the suite.
func RGPOS(cfg RGPOSConfig) []RGPOSInstance {
	if cfg.Step <= 0 {
		cfg.Step = 50
	}
	if cfg.Procs <= 0 {
		cfg.Procs = 8
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []RGPOSInstance
	for v := cfg.MinNodes; v <= cfg.MaxNodes; v += cfg.Step {
		inst := RGPOSGraph(rng, v, cfg.Procs, cfg.CCR)
		inst.Name = fmt.Sprintf("rgpos-v%d-%s", v, ccrLabel(cfg.CCR))
		inst.Source = fmt.Sprintf("RGPOS v≈%d p=%d CCR=%g seed=%d", v, cfg.Procs, cfg.CCR, cfg.Seed)
		out = append(out, inst)
	}
	return out
}

// RGPOSGraph builds a single instance following the paper's recipe:
//
//  1. Fix the optimal length L and partition each processor's [0, L]
//     into x_i busy sections (x_i uniform with mean v/p), yielding the
//     tasks and a no-idle schedule of length L.
//  2. Add edges only between task pairs (a, b) with FT(a) <= ST(b). If
//     the two tasks sit on different processors the edge cost is drawn
//     uniformly below ST(b) − FT(a), so the message arrives before b
//     starts; if they share a processor the cost is unconstrained and is
//     drawn from the CCR-scaled distribution.
//
// Most (85%) consecutive same-processor task pairs are additionally
// linked by cheap case-II chain edges. For bounded-processor (BNP) runs
// L is a hard lower bound regardless, because total work equals p·L;
// the chains exist to keep unbounded-processor (UNC) schedules from
// undercutting L through the construction's slack, while the unchained
// 15% leaves the heuristics genuine decisions to get wrong. See
// DESIGN.md for the full rationale.
func RGPOSGraph(rng *rand.Rand, v, procs int, ccr float64) RGPOSInstance {
	meanPerProc := v / procs
	if meanPerProc < 1 {
		meanPerProc = 1
	}
	// L such that mean task cost is the suite's 40.
	L := int64(meanPerProc) * meanNodeCost

	b := dag.NewBuilder()
	type task struct {
		id     dag.NodeID
		proc   int
		st, ft int64
	}
	var tasks []task
	for p := 0; p < procs; p++ {
		x := int(uniformCost(rng, int64(meanPerProc), 1))
		if x > int(L) {
			x = int(L) // sections must be at least one time unit long
		}
		cuts := samplePartition(rng, L, x)
		prev := int64(0)
		for _, c := range cuts {
			id := b.AddNode(c - prev)
			tasks = append(tasks, task{id: id, proc: p, st: prev, ft: c})
			prev = c
		}
	}
	// Sort tasks by start time for edge sampling.
	byStart := append([]task(nil), tasks...)
	sort.Slice(byStart, func(i, j int) bool { return byStart[i].st < byStart[j].st })

	cm := commMean(ccr)
	eTarget := 5 * len(tasks)
	// Packed (u,v) keys, same idiom as RGNOSGraph's dedup set.
	edgeKey := func(u, v dag.NodeID) uint64 { return uint64(uint32(u))<<32 | uint64(uint32(v)) }
	seen := map[uint64]struct{}{}
	// Chain edges between most pairs of consecutive tasks of each
	// processor (case II: co-located, so any weight preserves the
	// construction schedule). The chains serve two purposes, both about
	// keeping the degradation measure meaningful:
	//
	//   - For the bounded (BNP) runs of Table 5, the work bound alone
	//     (total computation = p·L) makes L a hard lower bound, so the
	//     chains may be partial; the unchained gaps are what give the
	//     heuristics room to make real mistakes.
	//   - For the unbounded (UNC) runs of Table 4, the near-complete
	//     chains leave too little slack for extra processors to beat L
	//     in practice, avoiding negative degradations.
	//
	// The weights are small and CCR-independent: with CCR-scaled chain
	// weights every scheduler just zeroes the heaviest edges and decodes
	// the hidden construction schedule verbatim.
	for i := 1; i < len(tasks); i++ {
		a, c := tasks[i-1], tasks[i]
		if a.proc == c.proc && rng.Intn(100) < 85 {
			seen[edgeKey(a.id, c.id)] = struct{}{}
			b.AddEdge(a.id, c.id, uniformCost(rng, 4, 1))
		}
	}
	for attempts := 0; attempts < 20*eTarget && len(seen) < eTarget; attempts++ {
		a := tasks[rng.Intn(len(tasks))]
		c := tasks[rng.Intn(len(tasks))]
		if a.id == c.id || a.ft > c.st {
			continue
		}
		key := edgeKey(a.id, c.id)
		if _, dup := seen[key]; dup {
			continue
		}
		var w int64
		if a.proc == c.proc {
			// Case II: co-located, any weight works.
			w = uniformCost(rng, cm, 1)
		} else {
			// Case I: the message must fit in the gap.
			gap := c.st - a.ft
			if gap <= 0 {
				continue
			}
			w = uniformCost(rng, cm, 1)
			if w > gap {
				w = gap
			}
		}
		seen[key] = struct{}{}
		b.AddEdge(a.id, c.id, w)
	}

	g := b.MustBuild()
	opt := sched.New(g, procs)
	for _, tk := range byStart {
		opt.MustPlace(tk.id, tk.proc, tk.st)
	}
	return RGPOSInstance{
		NamedGraph:    NamedGraph{G: g},
		Procs:         procs,
		OptimalLength: L,
		Optimal:       opt,
	}
}

// samplePartition splits [0, L] into parts (>= 1 each) sections and
// returns the ascending cut points ending at L.
func samplePartition(rng *rand.Rand, L int64, parts int) []int64 {
	if parts < 1 {
		parts = 1
	}
	if int64(parts) > L {
		parts = int(L)
	}
	cutSet := map[int64]bool{}
	for int64(len(cutSet)) < int64(parts-1) {
		cutSet[1+rng.Int63n(L-1)] = true
	}
	cuts := make([]int64, 0, parts)
	for c := range cutSet {
		cuts = append(cuts, c)
	}
	cuts = append(cuts, L)
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	return cuts
}
