package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dag"
)

func init() {
	Register(Generator{
		Name:   "rgnos",
		Doc:    "RGNOS-style layered random graphs with a width (parallelism) target",
		Source: "Kwok & Ahmad (IPPS 1998), section 5.4",
		Random: true,
		Params: []ParamSpec{
			{Name: "v", Kind: IntParam, Default: "50", Min: "1", Max: "1000000", Doc: "node count"},
			ccrParam(),
			{Name: "parallelism", Kind: IntParam, Default: "3", Min: "1", Max: "100", Doc: "width parameter (width ≈ parallelism·sqrt(v))"},
		},
		Fn: func(seed int64, p Resolved) (*dag.Graph, error) {
			v := p.Int("v")
			if v < 1 {
				return nil, fmt.Errorf("gen: rgnos needs v >= 1, got %d", v)
			}
			return RGNOSGraph(rand.New(rand.NewSource(seed)), v, p.Float("ccr"), p.Int("parallelism")), nil
		},
	})
}

// RGNOSConfig parameterizes the "random graphs with no known optimal
// solutions" suite (paper section 5.4): 250 graphs spanning
// 10 sizes × 5 CCRs × 5 parallelism degrees.
type RGNOSConfig struct {
	MinNodes    int       // paper: 50
	MaxNodes    int       // paper: 500
	Step        int       // paper: 50
	CCRs        []float64 // paper: 0.1, 0.5, 1, 2, 10
	Parallelism []int     // paper: 1..5 (width ≈ parallelism·sqrt(v))
	Seed        int64
}

// DefaultRGNOSConfig returns the paper's full 250-graph suite shape.
func DefaultRGNOSConfig(seed int64) RGNOSConfig {
	return RGNOSConfig{
		MinNodes:    50,
		MaxNodes:    500,
		Step:        50,
		CCRs:        RGNOSCCRs,
		Parallelism: []int{1, 2, 3, 4, 5},
		Seed:        seed,
	}
}

// RGNOS generates the suite. With the default configuration it returns
// 250 graphs.
func RGNOS(cfg RGNOSConfig) []NamedGraph {
	if cfg.Step <= 0 {
		cfg.Step = 50
	}
	if len(cfg.CCRs) == 0 {
		cfg.CCRs = RGNOSCCRs
	}
	if len(cfg.Parallelism) == 0 {
		cfg.Parallelism = []int{1, 2, 3, 4, 5}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []NamedGraph
	for v := cfg.MinNodes; v <= cfg.MaxNodes; v += cfg.Step {
		for _, ccr := range cfg.CCRs {
			for _, par := range cfg.Parallelism {
				out = append(out, NamedGraph{
					Name:   fmt.Sprintf("rgnos-v%d-%s-w%d", v, ccrLabel(ccr), par),
					Source: fmt.Sprintf("RGNOS v=%d CCR=%g parallelism=%d seed=%d", v, ccr, par, cfg.Seed),
					G:      RGNOSGraph(rng, v, ccr, par),
				})
			}
		}
	}
	return out
}

// RGNOSGraph generates one RGNOS graph: v nodes in layers whose width is
// uniform around parallelism·sqrt(v); every non-entry node has at least
// one parent in the previous layer (keeping the width close to the
// target), plus RGBOS-style random extra edges with mean fanout v/10.
// Costs follow the RGBOS distributions.
func RGNOSGraph(rng *rand.Rand, v int, ccr float64, parallelism int) *dag.Graph {
	if parallelism < 1 {
		parallelism = 1
	}
	targetWidth := int(math.Round(float64(parallelism) * math.Sqrt(float64(v))))
	if targetWidth < 1 {
		targetWidth = 1
	}
	if targetWidth > v {
		targetWidth = v
	}

	b := dag.NewBuilder()
	b.Grow(v, 0)
	var layers [][]dag.NodeID
	placed := 0
	for placed < v {
		w := int(uniformCost(rng, int64(targetWidth), 1))
		if w > v-placed {
			w = v - placed
		}
		layer := make([]dag.NodeID, 0, w)
		for i := 0; i < w; i++ {
			layer = append(layer, b.AddNode(uniformCost(rng, meanNodeCost, 2)))
		}
		layers = append(layers, layer)
		placed += w
	}

	cm := commMean(ccr)
	// Dedup on a packed (u,v) key: half the map overhead of a struct
	// key, and the only remaining per-edge bookkeeping in this family
	// (its mean fanout of v/10 makes the edge set inherently quadratic,
	// which is why the scaling ladder caps rgnos instead of streaming it).
	added := map[uint64]struct{}{}
	addEdge := func(u, v dag.NodeID) {
		key := uint64(uint32(u))<<32 | uint64(uint32(v))
		if _, dup := added[key]; dup {
			return
		}
		added[key] = struct{}{}
		b.AddEdge(u, v, uniformCost(rng, cm, 1))
	}
	// Backbone: each node in layer k>0 draws one parent from layer k-1,
	// which keeps the realized width near the layer widths.
	for k := 1; k < len(layers); k++ {
		prev := layers[k-1]
		for _, n := range layers[k] {
			addEdge(prev[rng.Intn(len(prev))], n)
		}
	}
	// Extra RGBOS-style edges toward random later layers (mean fanout
	// v/10, as in section 5.2).
	maxFan := int(float64(v)/5) + 1
	for k := 0; k+1 < len(layers); k++ {
		for _, u := range layers[k] {
			kids := rng.Intn(maxFan)
			for e := 0; e < kids; e++ {
				tl := k + 1 + rng.Intn(len(layers)-k-1)
				addEdge(u, layers[tl][rng.Intn(len(layers[tl]))])
			}
		}
	}
	return b.MustBuild()
}
