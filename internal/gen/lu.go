package gen

import (
	"fmt"
	"math"

	"repro/internal/dag"
)

func init() {
	Register(Generator{
		Name:   "lu",
		Doc:    "traced graph of tiled right-looking LU decomposition on an n x n tile grid",
		Source: "tiled dense LU without pivoting (cf. PLASMA/DPLASMA task graphs)",
		Params: []ParamSpec{
			{Name: "n", Kind: IntParam, Default: "5", Min: "1", Max: "128", Doc: "tile grid dimension (tasks grow as O(n^3))"},
			ccrParam(),
		},
		Fn: func(seed int64, p Resolved) (*dag.Graph, error) {
			return LU(p.Int("n"), p.Float("ccr"))
		},
	})
}

// LU builds the task graph of tiled right-looking LU decomposition
// (without pivoting) of a matrix split into an n x n grid of tiles — the
// third traced kernel next to Cholesky and Gaussian elimination, with a
// denser O(n^3)-task dependence structure. Step k factors the diagonal
// tile, solves the remaining tiles of row k and column k against it, and
// then updates the trailing (n-k) x (n-k) submatrix:
//
//   - lu(k): factor tile (k,k); depends on upd(k-1,k,k);
//   - u(k,j), j > k: triangular solve for tile (k,j); depends on lu(k)
//     and upd(k-1,k,j);
//   - l(i,k), i > k: triangular solve for tile (i,k); depends on lu(k)
//     and upd(k-1,i,k);
//   - upd(k,i,j), i,j > k: A(i,j) -= L(i,k)·U(k,j); depends on l(i,k),
//     u(k,j), and upd(k-1,i,j).
//
// Task costs follow the per-tile flop ratios of the four kernels
// (factor : solve : update = 1 : 1.5 : 3); every message carries one
// tile, so edge costs are a constant scaled by the requested CCR. The
// graph has a single entry lu(1) and a single exit lu(n), and
// n + n(n-1) + Σ (n-k)² = O(n³)/3 tasks in total.
func LU(n int, ccr float64) (*dag.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: LU needs n >= 1, got %d", n)
	}
	const unit = 20 // factor-kernel cost; solves are 1.5x, updates 3x
	comm := int64(math.Round(2 * unit * ccr))
	if comm < 1 {
		comm = 1
	}
	b := dag.NewBuilder()
	// prev[i][j] is the task that last wrote tile (i,j) (1-indexed), i.e.
	// the trailing update of the previous step.
	prev := make([][]dag.NodeID, n+1)
	for i := range prev {
		prev[i] = make([]dag.NodeID, n+1)
		for j := range prev[i] {
			prev[i][j] = dag.None
		}
	}
	dep := func(from, to dag.NodeID) {
		if from != dag.None {
			b.AddEdge(from, to, comm)
		}
	}
	for k := 1; k <= n; k++ {
		diag := b.AddLabeledNode(unit, fmt.Sprintf("lu%d", k))
		dep(prev[k][k], diag)
		rowSolve := make([]dag.NodeID, n+1)
		colSolve := make([]dag.NodeID, n+1)
		for j := k + 1; j <= n; j++ {
			rowSolve[j] = b.AddLabeledNode(unit*3/2, fmt.Sprintf("u%d_%d", k, j))
			dep(diag, rowSolve[j])
			dep(prev[k][j], rowSolve[j])
		}
		for i := k + 1; i <= n; i++ {
			colSolve[i] = b.AddLabeledNode(unit*3/2, fmt.Sprintf("l%d_%d", i, k))
			dep(diag, colSolve[i])
			dep(prev[i][k], colSolve[i])
		}
		for i := k + 1; i <= n; i++ {
			for j := k + 1; j <= n; j++ {
				upd := b.AddLabeledNode(unit*3, fmt.Sprintf("upd%d_%d_%d", k, i, j))
				dep(colSolve[i], upd)
				dep(rowSolve[j], upd)
				dep(prev[i][j], upd)
				prev[i][j] = upd
			}
		}
	}
	return b.Build()
}
