package taskgraph

// The observability invariant: metrics and decision tracing never
// change an output byte. These tests pin it at both ends of the stack —
// every algorithm's schedule timeline on every generator family, and
// whole experiment tables.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/algo/apn"
	"repro/internal/algo/bnp"
	"repro/internal/algo/unc"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/machine"
	"repro/internal/obs"
)

// obsOff makes sure the test leaves the process with observability
// fully disabled, the state every other test assumes.
func obsOff(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		obs.SetTracer(nil)
		obs.EnableMetrics(false)
	})
}

// invariantGraphs is one instance per registered generator family,
// sized to keep the quadratic algorithms fast.
func invariantGraphs(t *testing.T) map[string]*dag.Graph {
	t.Helper()
	out := map[string]*dag.Graph{}
	for _, fam := range gen.Generators() {
		params := gen.Params{}
		if fam.Random {
			params["v"] = "40"
			params["ccr"] = "1.0"
		}
		if fam.Name == "psg" {
			params["name"] = "wu-gajski-18"
		}
		g, err := gen.Generate(fam.Name, 5, params)
		if err != nil {
			t.Fatalf("generate %s: %v", fam.Name, err)
		}
		out[fam.Name] = g
	}
	return out
}

// scheduleTimeline runs one algorithm through its class entry point and
// returns the schedule's full textual timeline.
func scheduleTimeline(t *testing.T, a core.Algorithm, g *dag.Graph, procs int, topo *machine.Topology) string {
	t.Helper()
	switch a.Class {
	case core.BNP:
		s, err := bnp.Algorithms()[a.Name](g, procs)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Release()
		return s.String()
	case core.UNC:
		s, err := unc.Algorithms()[a.Name](g)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Release()
		return s.String()
	case core.APN:
		s, err := apn.Algorithms()[a.Name](g, topo)
		if err != nil {
			t.Fatal(err)
		}
		return s.String()
	}
	t.Fatalf("unexpected class %s", a.Class)
	return ""
}

// TestObsInvariantAllAlgorithms schedules every registered algorithm on
// every generator family twice — observability fully off, then with
// metrics on and a live decision tracer bracketing the run — and
// requires byte-identical timelines. It also requires the trace to be
// non-empty, so the invariant is not satisfied vacuously.
func TestObsInvariantAllAlgorithms(t *testing.T) {
	obsOff(t)
	graphs := invariantGraphs(t)
	topo := machine.Hypercube(3)
	const procs = 8
	for famName, g := range graphs {
		for _, a := range core.All() {
			baseline := scheduleTimeline(t, a, g, procs, topo)

			var trace bytes.Buffer
			obs.EnableMetrics(true)
			tr := obs.NewTracer(&trace, obs.TraceJSONL)
			obs.SetTracer(tr)
			tr.BeginRun(a.Name, string(a.Class), g.NumNodes(), procs)
			traced := scheduleTimeline(t, a, g, procs, topo)
			tr.EndRun()
			obs.SetTracer(nil)
			obs.EnableMetrics(false)
			if err := tr.Close(); err != nil {
				t.Fatalf("%s on %s: tracer: %v", a.Name, famName, err)
			}

			if traced != baseline {
				t.Errorf("%s on %s: timeline changed under observability\nbaseline:\n%s\ntraced:\n%s",
					a.Name, famName, baseline, traced)
			}
			if !strings.Contains(trace.String(), `"type":"place"`) {
				t.Errorf("%s on %s: tracer recorded no placements", a.Name, famName)
			}
		}
	}
}

// TestObsInvariantParameterizedSpace extends the invariant over a
// sample of the parameterized scheduler space, through the measured
// core entry point (the same bracket dagbench runs use).
func TestObsInvariantParameterizedSpace(t *testing.T) {
	obsOff(t)
	g, err := gen.Generate("rgnos", 6, gen.Params{"v": "40", "ccr": "1.0"})
	if err != nil {
		t.Fatal(err)
	}
	combos := core.Parameterized()
	if len(combos) == 0 {
		t.Fatal("no parameterized combos registered")
	}
	// Every 7th combo samples all four component axes without running
	// the full 60-point space.
	for i := 0; i < len(combos); i += 7 {
		a := combos[i]
		base, err := a.Run(g, 8, nil)
		if err != nil {
			t.Fatal(err)
		}

		obs.EnableMetrics(true)
		var trace bytes.Buffer
		tr := obs.NewTracer(&trace, obs.TraceJSONL)
		obs.SetTracer(tr)
		got, err := a.Run(g, 8, nil)
		obs.SetTracer(nil)
		obs.EnableMetrics(false)
		if err != nil {
			t.Fatal(err)
		}

		if got.Length != base.Length || got.Procs != base.Procs || got.NSL != base.NSL {
			t.Errorf("%s: result changed under observability: (%d,%d,%g) vs (%d,%d,%g)",
				a.Name, got.Length, got.Procs, got.NSL, base.Length, base.Procs, base.NSL)
		}
		if !strings.Contains(trace.String(), `"type":"place"`) {
			t.Errorf("%s: tracer recorded no placements", a.Name)
		}
	}
}

// TestObsInvariantExperimentOutput pins the invariant on whole
// experiment tables: a serial run with metrics and tracing enabled
// produces byte-identical stdout to a bare run. table6 is excluded (its
// cells are wall-clock timings, documented as run-varying).
func TestObsInvariantExperimentOutput(t *testing.T) {
	obsOff(t)
	for _, id := range []string{"table1", "fig2"} {
		cfg := core.Config{Seed: 1998, Scale: core.Quick, Workers: 1, Cache: core.NewSuiteCache()}

		var base bytes.Buffer
		cfg.Out = &base
		if err := core.RunExperiment(id, cfg); err != nil {
			t.Fatalf("%s: %v", id, err)
		}

		obs.EnableMetrics(true)
		var trace bytes.Buffer
		tr := obs.NewTracer(&trace, obs.TraceChrome)
		obs.SetTracer(tr)
		var traced bytes.Buffer
		cfg.Out = &traced
		err := core.RunExperiment(id, cfg)
		obs.SetTracer(nil)
		obs.EnableMetrics(false)
		if err != nil {
			t.Fatalf("%s traced: %v", id, err)
		}
		if err := tr.Close(); err != nil {
			t.Fatalf("%s: tracer: %v", id, err)
		}

		if !bytes.Equal(base.Bytes(), traced.Bytes()) {
			t.Errorf("%s: output changed under observability (%d vs %d bytes)",
				id, base.Len(), traced.Len())
		}
		if trace.Len() == 0 {
			t.Errorf("%s: tracer recorded nothing", id)
		}
	}
}
