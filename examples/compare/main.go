// Compare: run all 15 algorithms of the study on one realistic workload
// (a Gaussian-elimination traced graph) and print the paper-style
// comparison: schedule length, NSL, processors used, and running time,
// grouped by class.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	taskgraph "repro"
)

type row struct {
	name    string
	class   string
	length  int64
	nsl     float64
	procs   int
	elapsed time.Duration
}

func main() {
	g, err := taskgraph.GaussianElimination(10, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Gaussian elimination N=10: %d tasks, %d edges, CCR %.2f\n\n",
		g.NumNodes(), g.NumEdges(), g.CCR())

	var rows []row
	run := func(name, class string, f func() (int64, float64, int, error)) {
		start := time.Now()
		length, nsl, procs, err := f()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		rows = append(rows, row{name, class, length, nsl, procs, time.Since(start)})
	}

	for _, name := range taskgraph.AlgorithmNames(taskgraph.BNP) {
		name := name
		run(name, "BNP", func() (int64, float64, int, error) {
			s, err := taskgraph.ScheduleBNP(name, g, 8)
			if err != nil {
				return 0, 0, 0, err
			}
			return s.Length(), s.NSL(), s.ProcessorsUsed(), nil
		})
	}
	for _, name := range taskgraph.AlgorithmNames(taskgraph.UNC) {
		name := name
		run(name, "UNC", func() (int64, float64, int, error) {
			s, err := taskgraph.ScheduleUNC(name, g)
			if err != nil {
				return 0, 0, 0, err
			}
			return s.Length(), s.NSL(), s.ProcessorsUsed(), nil
		})
	}
	topo := taskgraph.Hypercube(3)
	for _, name := range taskgraph.AlgorithmNames(taskgraph.APN) {
		name := name
		run(name+"*", "APN", func() (int64, float64, int, error) {
			s, err := taskgraph.ScheduleAPN(name, g, topo)
			if err != nil {
				return 0, 0, 0, err
			}
			return s.Length(), s.NSL(), s.ProcessorsUsed(), nil
		})
	}

	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].class != rows[j].class {
			return rows[i].class < rows[j].class
		}
		return rows[i].length < rows[j].length
	})
	fmt.Println("class  algorithm  length   NSL     procs  time")
	for _, r := range rows {
		fmt.Printf("%-6s %-9s  %-7d  %-6.3f  %-5d  %s\n",
			r.class, r.name, r.length, r.nsl, r.procs, r.elapsed.Round(time.Microsecond))
	}
	fmt.Println("\n* APN algorithms schedule messages on an 8-processor hypercube;")
	fmt.Println("  their lengths include link contention and are not directly")
	fmt.Println("  comparable to the clique-model classes.")
}
