// APN: demonstrate link contention on an arbitrary processor network.
// The same graph is scheduled by MH and BSA on a chain, a ring, and a
// hypercube, showing how topology density and message scheduling change
// the outcome — the paper's section 6.4 finding that BSA's message
// scheduling wins on sparse networks.
package main

import (
	"fmt"
	"log"

	taskgraph "repro"
)

func main() {
	// A two-stage wide fork-join with heavy messages: the worst case for
	// a sparse network, because all messages funnel over few links.
	b := taskgraph.NewBuilder()
	root := b.AddLabeledNode(4, "root")
	join := b.AddLabeledNode(4, "join")
	for i := 0; i < 12; i++ {
		m := b.AddLabeledNode(10, fmt.Sprintf("w%d", i))
		b.AddEdge(root, m, 25)
		b.AddEdge(m, join, 25)
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d tasks, CCR %.2f\n\n", g.NumNodes(), g.CCR())

	topos := []*taskgraph.Topology{
		taskgraph.Chain(8),
		taskgraph.Ring(8),
		taskgraph.Hypercube(3),
		taskgraph.Clique(8),
	}
	fmt.Println("topology      links  MH-length  BSA-length")
	for _, topo := range topos {
		mh, err := taskgraph.ScheduleAPN("MH", g, topo)
		if err != nil {
			log.Fatal(err)
		}
		bsa, err := taskgraph.ScheduleAPN("BSA", g, topo)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s %-6d %-10d %-10d\n",
			topo.Name(), topo.NumLinks(), mh.Length(), bsa.Length())
	}

	// Custom topology: a 6-processor "dumbbell" — two cliques bridged by
	// one link, the classic contention bottleneck.
	links := [][2]int{{0, 1}, {0, 2}, {1, 2}, {3, 4}, {3, 5}, {4, 5}, {2, 3}}
	dumbbell, err := taskgraph.NewTopology(6, links)
	if err != nil {
		log.Fatal(err)
	}
	bsa, err := taskgraph.ScheduleAPN("BSA", g, dumbbell)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBSA on a 6-processor dumbbell: length %d, %d processors used\n",
		bsa.Length(), bsa.ProcessorsUsed())
	fmt.Printf("messages over the bridge 2->3: %d\n", len(bsa.LinkSlots(2, 3)))
}
