// Cholesky: schedule the traced graph of a Cholesky factorization (the
// paper's TG benchmark suite) with one algorithm from each class and
// compare schedule lengths, NSL, and processor usage as the matrix
// dimension grows.
package main

import (
	"fmt"
	"log"

	taskgraph "repro"
)

func main() {
	topo := taskgraph.Hypercube(3) // 8 processors, as in the paper's APN runs

	fmt.Println("Cholesky factorization task graphs (CCR 1.0)")
	fmt.Println("N    tasks  MCP/8procs        DCP/unbounded      BSA/hypercube-8")
	for _, n := range []int{4, 8, 12, 16} {
		g, err := taskgraph.Cholesky(n, 1.0)
		if err != nil {
			log.Fatal(err)
		}
		mcp, err := taskgraph.ScheduleBNP("MCP", g, 8)
		if err != nil {
			log.Fatal(err)
		}
		dcp, err := taskgraph.ScheduleUNC("DCP", g)
		if err != nil {
			log.Fatal(err)
		}
		bsa, err := taskgraph.ScheduleAPN("BSA", g, topo)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d %-6d len=%-6d nsl=%.2f   len=%-6d nsl=%.2f   len=%-6d nsl=%.2f\n",
			n, g.NumNodes(),
			mcp.Length(), mcp.NSL(),
			dcp.Length(), dcp.NSL(),
			bsa.Length(), bsa.NSL())
	}

	// The paper's observation: the UNC class can exploit extra
	// processors on these regular graphs, while the APN class pays for
	// link contention on the hypercube.
	g, err := taskgraph.Cholesky(12, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	dcp, err := taskgraph.ScheduleUNC("DCP", g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDCP on N=12 uses %d processors for %d tasks\n",
		dcp.ProcessorsUsed(), g.NumNodes())
}
