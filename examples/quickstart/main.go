// Quickstart: build a small task graph by hand, inspect its scheduling
// attributes, and schedule it with a BNP list scheduler, a UNC
// clustering algorithm, and the exact branch-and-bound solver.
package main

import (
	"fmt"
	"log"

	taskgraph "repro"
)

func main() {
	// The diamond used throughout the repository's documentation:
	//
	//	a(2) --1--> b(3) --2--> d(1)
	//	a(2) --5--> c(4) --3--> d(1)
	b := taskgraph.NewBuilder()
	a := b.AddLabeledNode(2, "a")
	nb := b.AddLabeledNode(3, "b")
	c := b.AddLabeledNode(4, "c")
	d := b.AddLabeledNode(1, "d")
	b.AddEdge(a, nb, 1)
	b.AddEdge(a, c, 5)
	b.AddEdge(nb, d, 2)
	b.AddEdge(c, d, 3)
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	lv := taskgraph.ComputeLevels(g)
	fmt.Printf("graph: %d tasks, %d edges, CCR %.2f, width %d\n",
		g.NumNodes(), g.NumEdges(), g.CCR(), taskgraph.Width(g))
	fmt.Printf("critical path %v, length %d\n\n", taskgraph.CriticalPath(g), lv.CPLength)

	// MCP: the paper's best BNP algorithm, on two processors.
	mcp, err := taskgraph.ScheduleBNP("MCP", g, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MCP on 2 processors (NSL %.3f):\n%s\n", mcp.NSL(), mcp)

	// DCP: the paper's best UNC algorithm, unbounded processors.
	dcp, err := taskgraph.ScheduleUNC("DCP", g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DCP with unbounded processors (NSL %.3f):\n%s\n", dcp.NSL(), dcp)

	// Exact optimum for reference.
	opt, err := taskgraph.ScheduleOptimal(g, 2, taskgraph.OptimalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("branch-and-bound optimum on 2 processors: %d (proven=%v)\n",
		opt.Length, opt.Closed)
}
