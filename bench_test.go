package taskgraph

// One testing.B benchmark per table and figure of the paper, plus
// ablation benchmarks for the design axes the paper's conclusions rest
// on (insertion vs non-insertion, static vs dynamic priority, CP-based
// vs non-CP-based priorities, topology density).
//
// The table/figure benchmarks run the Quick-scale experiment workload;
// use cmd/dagbench -scale=full for the paper-sized runs. Quality
// ablations report NSL through b.ReportMetric in addition to time.

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/machine"
	"repro/internal/obs"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	benchExperimentWorkers(b, id, 0)
}

func benchExperimentWorkers(b *testing.B, id string, workers int) {
	b.Helper()
	cfg := core.Config{Seed: 1998, Scale: core.Quick, Out: io.Discard, Workers: workers, Cache: core.NewSuiteCache()}
	// Warm the suite cache so iterations measure scheduling, not suite
	// generation or the RGBOS branch-and-bound.
	if err := core.RunExperiment(id, cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.RunExperiment(id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1PSG(b *testing.B)          { benchExperiment(b, "table1") }
func BenchmarkTable2RGBOSUNC(b *testing.B)     { benchExperiment(b, "table2") }
func BenchmarkTable3RGBOSBNP(b *testing.B)     { benchExperiment(b, "table3") }
func BenchmarkTable4RGPOSUNC(b *testing.B)     { benchExperiment(b, "table4") }
func BenchmarkTable5RGPOSBNP(b *testing.B)     { benchExperiment(b, "table5") }
func BenchmarkTable6RunningTimes(b *testing.B) { benchExperiment(b, "table6") }
func BenchmarkFigure2NSL(b *testing.B)         { benchExperiment(b, "fig2") }
func BenchmarkFigure3Processors(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFigure4Cholesky(b *testing.B)    { benchExperiment(b, "fig4") }

// BenchmarkRobustExperiment runs the quick-scale Monte-Carlo
// execution-robustness study end to end: every registered family,
// BNP + APN schedules, 25 simulated executions each.
func BenchmarkRobustExperiment(b *testing.B) { benchExperiment(b, "robust") }

// BenchmarkComponents measures the component-attribution experiment:
// the full 60-combo parameterized scheduler space over the matched
// random-family grid on homogeneous and heterogeneous machines. It is
// part of the tracked benchmark trajectory (scripts/bench.sh).
func BenchmarkComponents(b *testing.B) { benchExperiment(b, "components") }

// BenchmarkAdversarialGeneration measures one generation of the
// adversarial instance search: building a 16-candidate population and
// scheduling it with the default MCP:LAST pair through the experiment
// pool. This is the per-generation kernel behind -exp adversarial and
// part of the tracked benchmark trajectory (scripts/bench.sh).
func BenchmarkAdversarialGeneration(b *testing.B) {
	cfg := core.Config{Seed: 1998, Scale: core.Quick, Out: io.Discard, Cache: core.NewSuiteCache()}
	opts := AdversarialDefaults(1998)
	opts.Generations = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := AdversarialSearch(cfg, opts, "MCP", "LAST")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rep.Top) > 0 {
			b.ReportMetric(rep.Top[0].Score, "best-gap")
		}
	}
}

// BenchmarkSimMonteCarlo measures the execution simulator's
// steady-state Monte-Carlo loop — schedule once, compile once, then
// 100 perturbed discrete-event executions of a 100-node MCP schedule.
// This is the per-cell kernel behind -exp robust and the simulator's
// entry in the tracked BENCH_*.json trajectory.
func BenchmarkSimMonteCarlo(b *testing.B) {
	g, err := gen.Generate("rgnos", 7, gen.Params{"v": "100", "ccr": "1"})
	if err != nil {
		b.Fatal(err)
	}
	s, err := ScheduleBNP("MCP", g, 8)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := CompileSim(s)
	if err != nil {
		b.Fatal(err)
	}
	opts := SimOptions{
		Perturb: SimPerturbation{Dist: DistLognormal, TaskSpread: 0.3, CommSpread: 0.3},
		Seed:    1998,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := SimMonteCarlo(plan, opts, 100)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(st.MeanRatio, "mean-ratio")
		}
	}
}

// BenchmarkFaultMonteCarlo measures the fault-injection engine's
// steady-state Monte-Carlo loop — schedule once, compile once, then
// 100 crash-injected executions of a 100-node MCP schedule under
// checkpoint recovery at an MTBF harsh enough that most trials crash
// and repair. This is the per-cell kernel behind -exp faults and the
// fault engine's entry in the tracked BENCH_*.json trajectory.
func BenchmarkFaultMonteCarlo(b *testing.B) {
	g, err := gen.Generate("rgnos", 7, gen.Params{"v": "100", "ccr": "1"})
	if err != nil {
		b.Fatal(err)
	}
	s, err := ScheduleBNP("MCP", g, 8)
	if err != nil {
		b.Fatal(err)
	}
	x, err := CompileFaults(s)
	if err != nil {
		b.Fatal(err)
	}
	static := s.Makespan()
	opts := FaultOptions{
		Sim:      SimOptions{Seed: 1998},
		Faults:   FaultModel{MTBF: static, MeanRepair: static / 10},
		Recovery: RecoveryCheckpoint(static / 16),
		Deadline: 3 * static / 2,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := FaultMonteCarlo(x, opts, 100)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(st.SurvivalRate, "survival")
			b.ReportMetric(st.MeanCrashes, "mean-crashes")
		}
	}
}

// BenchmarkScalingLadder measures the streaming million-node pipeline
// behind the scaling experiment at one mid-ladder rung per family,
// inside the streaming-generator regime: generate the graph, encode it
// to the binary .tgb form, decode it back, and schedule the re-read
// graph with HLFET (the roster's near-linear representative, heap-
// driven). Each sub-benchmark also reports the deterministic encoding
// density (tgb-B/node) and the structural power-law exponent of the
// encoded size against a rung at v/4 (tgb-slope, ~1.0 = the encoding
// scales linearly). Part of the tracked benchmark trajectory
// (scripts/bench.sh, BENCH_5.json).
func BenchmarkScalingLadder(b *testing.B) {
	families := []struct {
		name   string
		v      int
		params func(v int) gen.Params
	}{
		{"layered", 32000, func(v int) gen.Params {
			return gen.Params{"v": fmt.Sprint(v), "p": fmt.Sprintf("%g", 4/math.Sqrt(float64(v)))}
		}},
		{"erdos", 32000, func(v int) gen.Params {
			return gen.Params{"v": fmt.Sprint(v), "p": fmt.Sprintf("%g", 8/float64(v-1))}
		}},
		{"faninout", 32000, func(v int) gen.Params {
			return gen.Params{"v": fmt.Sprint(v)}
		}},
	}
	encodedLen := func(fam string, seed int64, params gen.Params) int {
		g, err := gen.Generate(fam, seed, params)
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		if err := dag.WriteBinary(&buf, g); err != nil {
			b.Fatal(err)
		}
		return buf.Len()
	}
	for _, fam := range families {
		b.Run(fmt.Sprintf("%s-%d", fam.name, fam.v), func(b *testing.B) {
			small := encodedLen(fam.name, 1998, fam.params(fam.v/4))
			large := encodedLen(fam.name, 1998, fam.params(fam.v))
			var buf bytes.Buffer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, err := gen.Generate(fam.name, 1998, fam.params(fam.v))
				if err != nil {
					b.Fatal(err)
				}
				buf.Reset()
				if err := dag.WriteBinary(&buf, g); err != nil {
					b.Fatal(err)
				}
				g2, err := dag.ReadBinary(&buf)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ScheduleBNP("HLFET", g2, 32); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(large)/float64(fam.v), "tgb-B/node")
			b.ReportMetric(math.Log(float64(large)/float64(small))/math.Log(4), "tgb-slope")
		})
	}
}

// BenchmarkExperimentWorkers measures the parallel experiment runner's
// scaling on table6, the heaviest quick-scale sweep (all 15 algorithms
// over the RGNOS suite). Compare the workers=1 and workers=N lines to
// see the wall-clock speedup on a multi-core machine.
func BenchmarkExperimentWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchExperimentWorkers(b, "table6", w)
		})
	}
}

// benchGraphs is a fixed workload of mid-size RGNOS-style graphs shared
// by the per-algorithm and ablation benchmarks.
func benchGraphs() []*dag.Graph {
	rng := rand.New(rand.NewSource(7))
	graphs := make([]*dag.Graph, 0, 6)
	for _, ccr := range []float64{0.5, 2.0} {
		for _, par := range []int{1, 3, 5} {
			graphs = append(graphs, gen.RGNOSGraph(rng, 100, ccr, par))
		}
	}
	return graphs
}

// BenchmarkAlgorithm measures each of the 15 algorithms on the shared
// 100-node workload — the per-algorithm running-time comparison behind
// Table 6.
func BenchmarkAlgorithm(b *testing.B) {
	graphs := benchGraphs()
	topo := machine.Hypercube(3)
	for _, a := range core.All() {
		a := a
		b.Run(string(a.Class)+"/"+a.Name, func(b *testing.B) {
			var nsl float64
			for i := 0; i < b.N; i++ {
				nsl = 0
				for _, g := range graphs {
					res, err := a.Run(g, core.BNPProcs(g.NumNodes()), topo)
					if err != nil {
						b.Fatal(err)
					}
					nsl += res.NSL
				}
			}
			b.ReportMetric(nsl/float64(len(graphs)), "nsl")
		})
	}
}

// BenchmarkAblationInsertion isolates the paper's "insertion is better
// than non-insertion" finding: ISH is HLFET plus hole filling, so the
// NSL gap between the two sub-benchmarks is the value of insertion.
func BenchmarkAblationInsertion(b *testing.B) {
	graphs := benchGraphs()
	for _, alg := range []string{"HLFET", "ISH"} {
		alg := alg
		b.Run(alg, func(b *testing.B) {
			var nsl float64
			for i := 0; i < b.N; i++ {
				nsl = 0
				for _, g := range graphs {
					s, err := ScheduleBNP(alg, g, 8)
					if err != nil {
						b.Fatal(err)
					}
					nsl += s.NSL()
				}
			}
			b.ReportMetric(nsl/float64(len(graphs)), "nsl")
		})
	}
}

// BenchmarkAblationPriority isolates "dynamic priority beats static,
// except MCP": HLFET (static level list) vs ETF and DLS (dynamic
// node-processor selection) vs MCP (static ALAP list, the exception).
func BenchmarkAblationPriority(b *testing.B) {
	graphs := benchGraphs()
	for _, alg := range []string{"HLFET", "ETF", "DLS", "MCP"} {
		alg := alg
		b.Run(alg, func(b *testing.B) {
			var nsl float64
			for i := 0; i < b.N; i++ {
				nsl = 0
				for _, g := range graphs {
					s, err := ScheduleBNP(alg, g, 8)
					if err != nil {
						b.Fatal(err)
					}
					nsl += s.NSL()
				}
			}
			b.ReportMetric(nsl/float64(len(graphs)), "nsl")
		})
	}
}

// BenchmarkAblationCriticalPath isolates "CP-based beats non-CP-based"
// within the UNC class: DCP and DSC (CP-driven) against EZ and LC.
func BenchmarkAblationCriticalPath(b *testing.B) {
	graphs := benchGraphs()
	for _, alg := range []string{"DCP", "DSC", "EZ", "LC"} {
		alg := alg
		b.Run(alg, func(b *testing.B) {
			var nsl float64
			for i := 0; i < b.N; i++ {
				nsl = 0
				for _, g := range graphs {
					s, err := ScheduleUNC(alg, g)
					if err != nil {
						b.Fatal(err)
					}
					nsl += s.NSL()
				}
			}
			b.ReportMetric(nsl/float64(len(graphs)), "nsl")
		})
	}
}

// BenchmarkAblationTopology isolates the paper's observation that "all
// algorithms perform better on networks with more communication links":
// BSA on progressively denser 8-processor networks.
func BenchmarkAblationTopology(b *testing.B) {
	graphs := benchGraphs()
	topos := map[string]*machine.Topology{
		"chain":     machine.Chain(8),
		"ring":      machine.Ring(8),
		"hypercube": machine.Hypercube(3),
		"clique":    machine.Clique(8),
	}
	for _, name := range []string{"chain", "ring", "hypercube", "clique"} {
		topo := topos[name]
		b.Run(name, func(b *testing.B) {
			var nsl float64
			for i := 0; i < b.N; i++ {
				nsl = 0
				for _, g := range graphs {
					s, err := ScheduleAPN("BSA", g, topo)
					if err != nil {
						b.Fatal(err)
					}
					nsl += s.NSL()
				}
			}
			b.ReportMetric(nsl/float64(len(graphs)), "nsl")
		})
	}
}

// BenchmarkObsOverhead measures what observability costs the ETF
// steady-state scheduling loop (the paper's heaviest BNP kernel) in
// three regimes: fully off (the default every experiment runs under —
// this sub-benchmark is the disabled-path contract, expected within
// noise of the pre-observability kernel and 0 allocs/op from the
// schedule pool), metrics on, and a live JSONL decision tracer. Part of
// the tracked benchmark trajectory (scripts/bench.sh).
func BenchmarkObsOverhead(b *testing.B) {
	graphs := benchGraphs()
	loop := func(b *testing.B) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			for _, g := range graphs {
				s, err := ScheduleBNP("ETF", g, 8)
				if err != nil {
					b.Fatal(err)
				}
				s.Release()
			}
		}
	}
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		loop(b)
	})
	b.Run("metrics", func(b *testing.B) {
		obs.EnableMetrics(true)
		defer obs.EnableMetrics(false)
		b.ReportAllocs()
		b.ResetTimer()
		loop(b)
	})
	b.Run("trace", func(b *testing.B) {
		tr := obs.NewTracer(io.Discard, obs.TraceJSONL)
		obs.SetTracer(tr)
		defer obs.SetTracer(nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, g := range graphs {
				tr.BeginRun("ETF", "BNP", g.NumNodes(), 8)
				s, err := ScheduleBNP("ETF", g, 8)
				tr.EndRun()
				if err != nil {
					b.Fatal(err)
				}
				s.Release()
			}
		}
	})
}

// BenchmarkOptimalSearch measures the branch-and-bound on an
// RGBOS-sized instance (the cost behind Tables 2 and 3).
func BenchmarkOptimalSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := gen.RGBOSGraph(rng, 14, 1.0)
	for i := 0; i < b.N; i++ {
		if _, err := ScheduleOptimal(g, g.NumNodes(), OptimalOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
