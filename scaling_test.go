package taskgraph

import (
	"bytes"
	"runtime"
	"testing"
	"time"
)

// countingWriter counts bytes without retaining them.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) { w.n += int64(len(p)); return len(p), nil }

// TestMillionNodePipeline is the scale acceptance test behind the
// scaling experiment: generate a million-node layered graph through
// the streaming generator, encode it to the binary .tgb form, read it
// back through the auto-detecting reader, and schedule the re-read
// graph with HLFET — all within a 30-second wall-clock budget — then
// check the encoding stays under 35% of the text form and the decoded
// graph's steady-state heap stays linear with a small constant.
func TestMillionNodePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping the million-node pipeline in short mode")
	}
	const v = 1_000_000
	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	start := time.Now()
	// The scaling ladder's layered shape: p = 4/sqrt(v), so E = 4V.
	g, err := Generate("layered", 7, GeneratorParams{"v": "1000000", "p": "0.004"})
	if err != nil {
		t.Fatal(err)
	}
	var tgb bytes.Buffer
	if err := WriteGraphBinary(&tgb, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(bytes.NewReader(tgb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("binary round trip changed the graph: %d/%d nodes, %d/%d edges",
			g2.NumNodes(), g.NumNodes(), g2.NumEdges(), g.NumEdges())
	}
	s, err := ScheduleBNP("HLFET", g2, 32)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if s.Makespan() <= 0 {
		t.Errorf("HLFET makespan = %d, want > 0", s.Makespan())
	}
	if elapsed > 30*time.Second {
		t.Errorf("generate + encode + decode + HLFET took %.1fs at v=%d, want < 30s", elapsed.Seconds(), v)
	}
	t.Logf("pipeline: v=%d e=%d in %.1fs, .tgb %.1f B/node", v, g.NumEdges(), elapsed.Seconds(), float64(tgb.Len())/v)

	var tg countingWriter
	if err := WriteGraph(&tg, g); err != nil {
		t.Fatal(err)
	}
	if ratio := float64(tgb.Len()) / float64(tg.n); ratio > 0.35 {
		t.Errorf(".tgb is %.0f%% of .tg (%d / %d bytes), want <= 35%%", 100*ratio, tgb.Len(), tg.n)
	}

	// Steady-state heap of one decoded million-node graph: CSR holds
	// both adjacency directions (16-byte arcs), weights, offsets, and
	// the cached topological order — ~150 bytes/node at E = 4V. Assert
	// the linear bound with headroom for allocator slack; a regression
	// to per-node allocations would blow far past it.
	s, g = nil, nil
	tgb.Reset()
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	live := float64(after.HeapAlloc) - float64(before.HeapAlloc)
	if perNode := live / v; perNode > 250 {
		t.Errorf("decoded graph holds %.0f live heap bytes/node, want <= 250", perNode)
	} else {
		t.Logf("steady-state heap: %.0f bytes/node", perNode)
	}
	runtime.KeepAlive(g2)
}
